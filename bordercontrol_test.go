package bordercontrol_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	bc "bordercontrol"
)

// The facade tests exercise the library the way a downstream user would:
// only through the public API.

func TestWorkloadsAndModes(t *testing.T) {
	ws := bc.Workloads()
	if len(ws) != 7 {
		t.Fatalf("workloads = %v", ws)
	}
	if ws[0] != "backprop" || ws[6] != "pathfinder" {
		t.Errorf("workload order = %v", ws)
	}
	if len(bc.Modes()) != 5 {
		t.Error("five configurations under study")
	}
}

func TestRunPublicAPI(t *testing.T) {
	res, err := bc.Run(bc.BCBCC, bc.ModeratelyThreaded, "lud", bc.DefaultParams(), bc.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Errorf("results wrong: %v", res.VerifyErr)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
	if _, err := bc.Run(bc.BCBCC, bc.HighlyThreaded, "nonesuch", bc.DefaultParams(), bc.RunOptions{}); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestTablesPublicAPI(t *testing.T) {
	if !strings.Contains(bc.RenderTable1(), "Border Control") {
		t.Error("table 1 wrong")
	}
	if !strings.Contains(bc.RenderTable2(), "configurations") {
		t.Error("table 2 wrong")
	}
	if !strings.Contains(bc.RenderTable3(bc.DefaultParams()), "700 MHz") {
		t.Error("table 3 wrong")
	}
}

func TestProtectionTableBytes(t *testing.T) {
	// 16 GB -> 1 MB: the 0.006% headline.
	if got := bc.ProtectionTableBytes((16 << 30) / 4096); got != 1<<20 {
		t.Errorf("table bytes = %d", got)
	}
}

func TestMechanismLevelAPI(t *testing.T) {
	store, err := bc.NewStore(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bc.NewProtectionTable(store, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pt.Set(7, bc.PermRW)
	if pt.Lookup(7) != bc.PermRW {
		t.Error("protection table via facade broken")
	}
	cache, err := bc.NewBCC(bc.BCCConfig{Entries: 4, PagesPerEntry: 512, TagBits: 36})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Fill(7, pt); got != bc.PermRW {
		t.Errorf("BCC fill = %v", got)
	}
}

func TestTrojanScenarioPublicAPI(t *testing.T) {
	sys, err := bc.NewSystem(bc.BCBCC, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sys.OS.KeepProcessOnViolation = true
	victim, err := sys.OS.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := victim.Mmap(4096, bc.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(buf, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	user, err := sys.OS.NewProcess("user")
	if err != nil {
		t.Fatal(err)
	}
	sys.ATS.Activate(sys.Name, user.ASID())
	if err := sys.BC.ProcessStart(user.ASID()); err != nil {
		t.Fatal(err)
	}
	ppn, _ := victim.PPNOf(buf.PageOf())
	trojan := bc.NewTrojan(sys)
	if _, ok := trojan.TryRead(0, ppn.Base()); ok {
		t.Error("trojan read should be blocked under Border Control")
	}
	if len(sys.OS.Violations) == 0 {
		t.Error("violation not reported")
	}
}

func TestUnsafeBaselineIsUnsafe(t *testing.T) {
	sys, err := bc.NewSystem(bc.ATSOnly, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := sys.OS.NewProcess("victim")
	buf, _ := victim.Mmap(4096, bc.PermRW)
	if err := victim.Write(buf, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	ppn, _ := victim.PPNOf(buf.PageOf())
	trojan := bc.NewTrojan(sys)
	data, ok := trojan.TryRead(0, ppn.Base())
	if !ok || string(data[:6]) != "secret" {
		t.Error("the ATS-only baseline should NOT stop the trojan — that is the paper's threat")
	}
}

func TestRunCtxCancelledPublicAPI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := bc.RunCtx(ctx, bc.BCBCC, bc.HighlyThreaded, "bfs", bc.DefaultParams(), bc.RunOptions{})
	var re *bc.RunError
	if !errors.As(err, &re) {
		t.Fatalf("error = %T %v, want *bc.RunError", err, err)
	}
	if re.Workload != "bfs" || !errors.Is(err, context.Canceled) {
		t.Errorf("RunError detail lost: %+v", re)
	}
}

func TestRunAllCancelled(t *testing.T) {
	// A pre-cancelled context: the first simulation sweep fails, the error
	// names the artifact, and no partial artifact slice leaks out.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arts, err := bc.RunAll(ctx, bc.Config{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "fig4") {
		t.Errorf("error %q does not name the failing artifact", err)
	}
	if arts != nil {
		t.Errorf("got %d artifacts alongside the error, want nil", len(arts))
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	var jobs int
	cfg := bc.Config{Exec: bc.Exec{Progress: func(r bc.JobResult) {
		jobs++
		if r.Err != nil {
			t.Errorf("job %s failed: %v", r.Name, r.Err)
		}
	}}}
	arts, err := bc.RunAll(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "security"}
	if len(arts) != len(want) {
		t.Fatalf("got %d artifacts, want %d", len(arts), len(want))
	}
	for i, a := range arts {
		if a.Name != want[i] {
			t.Errorf("artifact %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Text == "" {
			t.Errorf("artifact %s is empty", a.Name)
		}
	}
	if jobs < 200 {
		t.Errorf("progress saw %d jobs; the full sweep runs 200+ simulations", jobs)
	}
}
