package bordercontrol_test

import (
	"strings"
	"testing"

	bc "bordercontrol"
)

// The facade tests exercise the library the way a downstream user would:
// only through the public API.

func TestWorkloadsAndModes(t *testing.T) {
	ws := bc.Workloads()
	if len(ws) != 7 {
		t.Fatalf("workloads = %v", ws)
	}
	if ws[0] != "backprop" || ws[6] != "pathfinder" {
		t.Errorf("workload order = %v", ws)
	}
	if len(bc.Modes()) != 5 {
		t.Error("five configurations under study")
	}
}

func TestRunPublicAPI(t *testing.T) {
	res, err := bc.Run(bc.BCBCC, bc.ModeratelyThreaded, "lud", bc.DefaultParams(), bc.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Errorf("results wrong: %v", res.VerifyErr)
	}
	if res.Cycles == 0 {
		t.Error("no cycles measured")
	}
	if _, err := bc.Run(bc.BCBCC, bc.HighlyThreaded, "nonesuch", bc.DefaultParams(), bc.RunOptions{}); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestTablesPublicAPI(t *testing.T) {
	if !strings.Contains(bc.RenderTable1(), "Border Control") {
		t.Error("table 1 wrong")
	}
	if !strings.Contains(bc.RenderTable2(), "configurations") {
		t.Error("table 2 wrong")
	}
	if !strings.Contains(bc.RenderTable3(bc.DefaultParams()), "700 MHz") {
		t.Error("table 3 wrong")
	}
}

func TestProtectionTableBytes(t *testing.T) {
	// 16 GB -> 1 MB: the 0.006% headline.
	if got := bc.ProtectionTableBytes((16 << 30) / 4096); got != 1<<20 {
		t.Errorf("table bytes = %d", got)
	}
}

func TestMechanismLevelAPI(t *testing.T) {
	store, err := bc.NewStore(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bc.NewProtectionTable(store, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pt.Set(7, bc.PermRW)
	if pt.Lookup(7) != bc.PermRW {
		t.Error("protection table via facade broken")
	}
	cache, err := bc.NewBCC(bc.BCCConfig{Entries: 4, PagesPerEntry: 512, TagBits: 36})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Fill(7, pt); got != bc.PermRW {
		t.Errorf("BCC fill = %v", got)
	}
}

func TestTrojanScenarioPublicAPI(t *testing.T) {
	sys, err := bc.NewSystem(bc.BCBCC, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sys.OS.KeepProcessOnViolation = true
	victim, err := sys.OS.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := victim.Mmap(4096, bc.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(buf, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	user, err := sys.OS.NewProcess("user")
	if err != nil {
		t.Fatal(err)
	}
	sys.ATS.Activate(sys.Name, user.ASID())
	if err := sys.BC.ProcessStart(user.ASID()); err != nil {
		t.Fatal(err)
	}
	ppn, _ := victim.PPNOf(buf.PageOf())
	trojan := bc.NewTrojan(sys)
	if _, ok := trojan.TryRead(0, ppn.Base()); ok {
		t.Error("trojan read should be blocked under Border Control")
	}
	if len(sys.OS.Violations) == 0 {
		t.Error("violation not reported")
	}
}

func TestUnsafeBaselineIsUnsafe(t *testing.T) {
	sys, err := bc.NewSystem(bc.ATSOnly, bc.HighlyThreaded, bc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := sys.OS.NewProcess("victim")
	buf, _ := victim.Mmap(4096, bc.PermRW)
	if err := victim.Write(buf, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	ppn, _ := victim.PPNOf(buf.PageOf())
	trojan := bc.NewTrojan(sys)
	data, ok := trojan.TryRead(0, ppn.Base())
	if !ok || string(data[:6]) != "secret" {
		t.Error("the ATS-only baseline should NOT stop the trojan — that is the paper's threat")
	}
}
