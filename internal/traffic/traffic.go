// Package traffic generates synthetic accelerator traffic as recorded
// traces (tracerec.Trace), giving the sweep harness workload shapes the
// Rodinia-derived generators do not produce: multi-tenant process churn,
// bursty DMA-style streaming, LLM-inference-like weight streaming, and
// adversarial mixes that interleave benign traffic with border probes.
//
// Generation is deterministic and worker-count-independent: every segment
// and every wavefront derives its own RNG stream from (Config.Seed, its
// index) alone, so the same seed produces a byte-identical trace whether
// the generator runs on one worker or sixteen. Workers only parallelize
// generation; they never influence content.
//
// All benign references fall inside the segment's reserved ranges; the only
// out-of-range traffic a shape emits is explicitly flagged as adversarial
// (tracerec.Probe). Segments pre-fault every reserved page, so replay needs
// no demand paging beyond the recorded first-touch order.
package traffic

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/tracerec"
)

// Shape names, in sorted order.
const (
	Bursty = "bursty"
	Churn  = "churn"
	Mix    = "mix"
	Stream = "stream"
)

// Shapes returns all generator shapes in deterministic order.
func Shapes() []string { return []string{Bursty, Churn, Mix, Stream} }

// Config selects and seeds a generator. The zero value of every knob means
// "the shape's default"; defaults are deliberately small so a sweep cell
// stays cheap.
type Config struct {
	// Shape is one of Shapes().
	Shape string
	// Seed drives all pseudo-randomness. Equal seeds give byte-identical
	// traces.
	Seed uint64
	// Segments is the number of short-lived processes (churn and mix
	// shapes; others always emit one segment).
	Segments int
	// Wavefronts per phase.
	Wavefronts int
	// Ops per wavefront.
	Ops int
	// Workers bounds generation parallelism. It has no effect on the
	// generated trace — only on how fast it is produced. 0 means
	// GOMAXPROCS.
	Workers int
}

// Generate produces the trace cfg describes.
func Generate(cfg Config) (*tracerec.Trace, error) {
	switch cfg.Shape {
	case Churn:
		return genChurn(cfg), nil
	case Bursty:
		return genBursty(cfg), nil
	case Stream:
		return genStream(cfg), nil
	case Mix:
		return genMix(cfg), nil
	default:
		return nil, fmt.Errorf("traffic: unknown shape %q (have %v)", cfg.Shape, Shapes())
	}
}

// rng is a splitmix64 stream — tiny, fast, and stable. Each segment and
// wavefront owns a private stream keyed by its index, which is what makes
// generation order (and worker count) irrelevant to the output.
type rng struct{ s uint64 }

func newRNG(seed uint64, idx ...uint64) *rng {
	s := seed ^ 0x9e3779b97f4a7c15
	for _, i := range idx {
		s = mix(s ^ mix(i+0x632be59bd9b4e019))
	}
	if s == 0 {
		s = 1
	}
	return &rng{s: s}
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix(r.s)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// layout mirrors hostos.Process address-space reservation exactly (brk at
// 0x1000_0000, aligned bases, a one-page guard gap), so the Mmap records a
// shape emits match the bases replay will observe — tracerec.BuildSegment
// validates them.
type layout struct {
	brk   arch.Virt
	mmaps []tracerec.Mmap
}

func newLayout() *layout { return &layout{brk: 0x1000_0000} }

func (l *layout) mmap(size uint64, perm arch.Perm, huge bool) arch.Virt {
	align := uint64(arch.PageSize)
	if huge {
		align = arch.HugePageSize
	}
	size = arch.AlignUp(size, align)
	base := arch.Virt(arch.AlignUp(uint64(l.brk), align))
	l.mmaps = append(l.mmaps, tracerec.Mmap{Base: base, Size: size, Perm: perm, Huge: huge})
	l.brk = base + arch.Virt(size) + arch.PageSize
	return base
}

// faults returns every reserved page in reservation order — synthetic
// segments pre-touch their whole footprint.
func (l *layout) faults() []arch.VPN {
	var vpns []arch.VPN
	for _, m := range l.mmaps {
		for off := uint64(0); off < m.Size; off += arch.PageSize {
			vpns = append(vpns, (m.Base + arch.Virt(off)).PageOf())
		}
	}
	return vpns
}

// forEachIndex runs fn(i) for i in [0, n) across at most workers
// goroutines. fn must write results only into its own index's slot.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// Per-shape defaults. Small on purpose: a sweep multiplies these by
// thousands of cells.
func defaulted(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// genChurn emits many short-lived single-phase processes — the
// multi-tenant churn scenario. Every segment is a fresh ASID hammering
// ProcessStart / ProcessComplete and the downgrade-flush path at exit; its
// handful of wavefronts touch a few pages and die.
func genChurn(cfg Config) *tracerec.Trace {
	nseg := defaulted(cfg.Segments, 12)
	nwf := defaulted(cfg.Wavefronts, 2)
	nops := defaulted(cfg.Ops, 24)
	segs := make([]tracerec.Segment, nseg)
	forEachIndex(nseg, cfg.Workers, func(i int) {
		r := newRNG(cfg.Seed, uint64(i))
		l := newLayout()
		pages := 1 + r.intn(4)
		base := l.mmap(uint64(pages)*arch.PageSize, arch.PermRW, false)
		span := uint64(pages) * arch.PageSize
		seg := tracerec.Segment{
			Name:   fmt.Sprintf("churn-%04d", i),
			Mmaps:  l.mmaps,
			Faults: l.faults(),
		}
		seg.Phases = []accel.Phase{{
			Name:   "touch",
			Traces: genTraces(cfg.Seed, uint64(i), nwf, nops, base, span, 3),
		}}
		segs[i] = seg
	})
	return &tracerec.Trace{Workload: Churn, Scale: nseg, Segments: segs}
}

// genBursty emits DMA-like traffic: long back-to-back sequential bursts
// separated by large compute gaps, alternating read and write bursts.
func genBursty(cfg Config) *tracerec.Trace {
	nwf := defaulted(cfg.Wavefronts, 4)
	nops := defaulted(cfg.Ops, 192)
	l := newLayout()
	const pages = 64
	base := l.mmap(pages*arch.PageSize, arch.PermRW, false)
	span := uint64(pages * arch.PageSize)
	traces := make([]accel.Trace, nwf)
	forEachIndex(nwf, cfg.Workers, func(w int) {
		r := newRNG(cfg.Seed, 0, uint64(w))
		tr := make(accel.Trace, 0, nops)
		addr := base + arch.Virt(uint64(r.next())%span)&^31
		write := w%2 == 1
		for len(tr) < nops {
			burst := 32 + r.intn(32)
			gap := uint16(20000 + r.intn(30000))
			for b := 0; b < burst && len(tr) < nops; b++ {
				op := accel.Op{Size: 32, Addr: addr}
				if b == 0 {
					op.Compute = gap // the inter-burst silence
				}
				if write {
					op.Kind = arch.Write
					op.Data = payload(r, 32)
				}
				tr = append(tr, op)
				addr += 32
				if uint64(addr-base) >= span {
					addr = base
				}
			}
			write = !write
		}
		traces[w] = tr
	})
	seg := tracerec.Segment{
		Name:   "bursty-dma",
		Mmaps:  l.mmaps,
		Faults: l.faults(),
		Phases: []accel.Phase{{Name: "dma", Traces: traces}},
	}
	return &tracerec.Trace{Workload: Bursty, Scale: 1, Segments: []tracerec.Segment{seg}}
}

// genStream emits inference-like traffic: wavefronts stream sequential
// reads over a huge-page weights region (read-only, shared working set far
// larger than any L1) with sparse small writes into an activations buffer.
func genStream(cfg Config) *tracerec.Trace {
	nwf := defaulted(cfg.Wavefronts, 8)
	nops := defaulted(cfg.Ops, 256)
	l := newLayout()
	weights := l.mmap(arch.HugePageSize, arch.PermRead, true)
	acts := l.mmap(8*arch.PageSize, arch.PermRW, false)
	traces := make([]accel.Trace, nwf)
	forEachIndex(nwf, cfg.Workers, func(w int) {
		r := newRNG(cfg.Seed, 1, uint64(w))
		// Each wavefront owns a disjoint stripe of the weights.
		stripe := uint64(arch.HugePageSize) / uint64(nwf) &^ 31
		addr := weights + arch.Virt(uint64(w)*stripe)
		tr := make(accel.Trace, 0, nops)
		for i := 0; i < nops; i++ {
			if i%16 == 15 {
				// Accumulate an activation.
				tr = append(tr, accel.Op{
					Kind:    arch.Write,
					Size:    16,
					Addr:    acts + arch.Virt(uint64(w*64+r.intn(4)*16)),
					Data:    payload(r, 16),
					Compute: uint16(200 + r.intn(100)),
				})
				continue
			}
			tr = append(tr, accel.Op{Size: 32, Addr: addr, Compute: uint16(10 + r.intn(20))})
			addr += 32
			if uint64(addr-weights) >= uint64(w+1)*stripe {
				addr = weights + arch.Virt(uint64(w)*stripe)
			}
		}
		traces[w] = tr
	})
	seg := tracerec.Segment{
		Name:   "stream-infer",
		Mmaps:  l.mmaps,
		Faults: l.faults(),
		Phases: []accel.Phase{{Name: "decode", Traces: traces}},
	}
	return &tracerec.Trace{Workload: Stream, Scale: 1, Segments: []tracerec.Segment{seg}}
}

// genMix interleaves benign churn-style segments with adversarial border
// probes: each segment carries fabricated physical-address crossings fired
// at deterministic simulated times while the benign traffic runs. Probes
// are the only references outside granted ranges, and they are explicitly
// flagged as such in the trace.
func genMix(cfg Config) *tracerec.Trace {
	nseg := defaulted(cfg.Segments, 4)
	nwf := defaulted(cfg.Wavefronts, 4)
	nops := defaulted(cfg.Ops, 96)
	segs := make([]tracerec.Segment, nseg)
	forEachIndex(nseg, cfg.Workers, func(i int) {
		r := newRNG(cfg.Seed, 2, uint64(i))
		l := newLayout()
		pages := 4 + r.intn(8)
		base := l.mmap(uint64(pages)*arch.PageSize, arch.PermRW, false)
		span := uint64(pages) * arch.PageSize
		seg := tracerec.Segment{
			Name:   fmt.Sprintf("mix-%04d", i),
			Mmaps:  l.mmaps,
			Faults: l.faults(),
			Phases: []accel.Phase{{
				Name:   "benign",
				Traces: genTraces(cfg.Seed, uint64(0x1000+i), nwf, nops, base, span, 4),
			}},
		}
		// A handful of probes spread across the expected run window,
		// aimed at physical addresses the segment was never granted.
		nprobe := 4 + r.intn(4)
		for p := 0; p < nprobe; p++ {
			pr := tracerec.Probe{
				At:   sim.Time(p+1) * 5 * sim.Microsecond,
				Addr: arch.Phys(uint64(r.next()) % (1 << 30) &^ (arch.BlockSize - 1)),
			}
			if r.intn(2) == 1 {
				pr.Kind = arch.Write
			}
			seg.Probes = append(seg.Probes, pr)
		}
		sort.Slice(seg.Probes, func(a, b int) bool { return seg.Probes[a].At < seg.Probes[b].At })
		segs[i] = seg
	})
	return &tracerec.Trace{Workload: Mix, Scale: nseg, Segments: segs}
}

// genTraces builds nwf wavefronts of mixed random-access traffic within
// [base, base+span), each from its own (seed, segment, wavefront) stream.
// One in writeRatio ops is a store carrying payload bytes.
func genTraces(seed, segIdx uint64, nwf, nops int, base arch.Virt, span uint64, writeRatio int) []accel.Trace {
	sizes := []uint8{4, 8, 16, 32}
	traces := make([]accel.Trace, nwf)
	for w := range traces {
		r := newRNG(seed, segIdx, uint64(w)+0x10000)
		tr := make(accel.Trace, 0, nops)
		for i := 0; i < nops; i++ {
			size := sizes[r.intn(len(sizes))]
			addr := base + arch.Virt(uint64(r.next())%(span-uint64(size)))&^arch.Virt(size-1)
			op := accel.Op{Size: size, Addr: addr, Compute: uint16(r.intn(400))}
			if r.intn(writeRatio) == 0 {
				op.Kind = arch.Write
				op.Data = payload(r, int(size))
			}
			tr = append(tr, op)
		}
		traces[w] = tr
	}
	return traces
}

func payload(r *rng, n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.next()
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}
