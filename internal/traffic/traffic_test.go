package traffic

import (
	"bytes"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/harness"
	"bordercontrol/internal/tracerec"
)

// TestSameSeedWorkerIndependent: the generator's core determinism
// property. Equal (shape, seed) must produce byte-identical traces at any
// worker count, because every segment and wavefront derives its stream
// from its index alone; and a different seed must actually change the
// bytes (the streams are live, not constant).
func TestSameSeedWorkerIndependent(t *testing.T) {
	for _, shape := range Shapes() {
		var want []byte
		for _, workers := range []int{1, 3, 8} {
			tr, err := Generate(Config{Shape: shape, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", shape, err)
			}
			blob, err := tracerec.Encode(tr)
			if err != nil {
				t.Fatalf("%s: %v", shape, err)
			}
			if want == nil {
				want = blob
			} else if !bytes.Equal(want, blob) {
				t.Errorf("%s: workers=%d changed the generated trace", shape, workers)
			}
		}
		other, err := Generate(Config{Shape: shape, Seed: 43})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		blob, err := tracerec.Encode(other)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if bytes.Equal(want, blob) {
			t.Errorf("%s: seed change did not change the trace", shape)
		}
	}
}

// TestBenignReferencesInsideGrants: every op a shape emits must fall
// entirely inside one of its segment's reserved mmap ranges. The only
// out-of-range references allowed are the explicitly flagged adversarial
// probes, and only the mix shape emits those.
func TestBenignReferencesInsideGrants(t *testing.T) {
	inGrant := func(ms []tracerec.Mmap, addr arch.Virt, size uint8) bool {
		for _, m := range ms {
			if addr >= m.Base && uint64(addr-m.Base)+uint64(size) <= m.Size {
				return true
			}
		}
		return false
	}
	for _, shape := range Shapes() {
		tr, err := Generate(Config{Shape: shape, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		for _, seg := range tr.Segments {
			for _, ph := range seg.Phases {
				for _, wf := range ph.Traces {
					for _, op := range wf {
						if op.Size == 0 || op.Size > 32 {
							t.Fatalf("%s/%s: op size %d out of range", shape, seg.Name, op.Size)
						}
						if !inGrant(seg.Mmaps, op.Addr, op.Size) {
							t.Fatalf("%s/%s: benign op at %#x size %d outside every grant",
								shape, seg.Name, op.Addr, op.Size)
						}
					}
				}
			}
			if shape != Mix && len(seg.Probes) > 0 {
				t.Errorf("%s/%s: unexpected adversarial probes", shape, seg.Name)
			}
			if shape == Mix && len(seg.Probes) == 0 {
				t.Errorf("%s/%s: mix segment carries no probes", shape, seg.Name)
			}
			for i, pr := range seg.Probes {
				if pr.Addr%arch.BlockSize != 0 {
					t.Errorf("%s/%s: probe %d not block-aligned", shape, seg.Name, i)
				}
				if i > 0 && seg.Probes[i-1].At > pr.At {
					t.Errorf("%s/%s: probes not time-sorted", shape, seg.Name)
				}
			}
		}
	}
}

// TestLayoutMatchesReplay: the layout arithmetic the generators use must
// agree with what hostos actually assigns at replay time —
// tracerec.BuildSegment validates every mmap base, so a full replay of
// each shape is the proof. Churn additionally asserts its headline
// property: the OS hands every short-lived segment a fresh ASID, never
// one that is (or ever was) live.
func TestLayoutMatchesReplay(t *testing.T) {
	for _, shape := range Shapes() {
		tr, err := Generate(Config{Shape: shape, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		res, err := harness.RunTrace(harness.BCBCC, harness.ModeratelyThreaded, tr,
			harness.DefaultParams(), harness.RunOptions{})
		if err != nil {
			t.Fatalf("%s: replay: %v", shape, err)
		}
		if len(res.Segments) != len(tr.Segments) {
			t.Fatalf("%s: replayed %d of %d segments", shape, len(res.Segments), len(tr.Segments))
		}
		seen := make(map[arch.ASID]bool)
		for _, s := range res.Segments {
			if s.VerifyErr != nil {
				t.Errorf("%s/%s: verify: %v", shape, s.Name, s.VerifyErr)
			}
			if seen[s.ASID] {
				t.Errorf("%s/%s: ASID %d reused across segments", shape, s.Name, s.ASID)
			}
			seen[s.ASID] = true
		}
	}
}

func TestUnknownShape(t *testing.T) {
	if _, err := Generate(Config{Shape: "nope"}); err == nil {
		t.Fatal("unknown shape accepted")
	}
}
