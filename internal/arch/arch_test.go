package arch

import (
	"testing"
	"testing/quick"
)

func TestPageMath(t *testing.T) {
	cases := []struct {
		addr Phys
		ppn  PPN
		off  uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{4095, 0, 4095},
		{4096, 1, 0},
		{0x12345678, 0x12345, 0x678},
	}
	for _, c := range cases {
		if got := c.addr.PageOf(); got != c.ppn {
			t.Errorf("PageOf(%#x) = %#x, want %#x", c.addr, got, c.ppn)
		}
		if got := c.addr.Offset(); got != c.off {
			t.Errorf("Offset(%#x) = %#x, want %#x", c.addr, got, c.off)
		}
	}
}

func TestPageRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		p := Phys(a)
		return p.PageOf().Base()+Phys(p.Offset()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVirtRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		v := Virt(a)
		return v.PageOf().Base()+Virt(v.Offset()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOf(t *testing.T) {
	if got := Phys(0x1234).BlockOf(); got != 0x1200 {
		t.Errorf("BlockOf(0x1234) = %#x, want 0x1200", got)
	}
	f := func(a uint64) bool {
		b := Phys(a).BlockOf()
		return uint64(b)%BlockSize == 0 && uint64(a)-uint64(b) < BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHugeAlignment(t *testing.T) {
	if !PPN(0).HugeAligned() || !PPN(512).HugeAligned() {
		t.Error("0 and 512 should be huge-aligned")
	}
	if PPN(511).HugeAligned() || PPN(513).HugeAligned() {
		t.Error("511 and 513 should not be huge-aligned")
	}
	if PagesPerHugePage != 512 {
		t.Errorf("PagesPerHugePage = %d, want 512", PagesPerHugePage)
	}
}

func TestPermBits(t *testing.T) {
	if PermNone.CanRead() || PermNone.CanWrite() || PermNone.CanExec() {
		t.Error("PermNone grants something")
	}
	if !PermRead.CanRead() || PermRead.CanWrite() {
		t.Error("PermRead wrong")
	}
	if !PermRW.Allows(PermRead) || !PermRW.Allows(PermWrite) || !PermRW.Allows(PermRW) {
		t.Error("PermRW should allow read, write, and both")
	}
	if PermRead.Allows(PermWrite) {
		t.Error("read-only should not allow write")
	}
	if got := (PermRead | PermExec).Border(); got != PermRead {
		t.Errorf("Border() kept exec: %v", got)
	}
	if got := PermRead.Union(PermWrite); got != PermRW {
		t.Errorf("Union = %v, want rw", got)
	}
}

func TestPermUnionMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		pa, pb := Perm(a&7), Perm(b&7)
		u := pa.Union(pb)
		return u.Allows(pa) && u.Allows(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone:             "---",
		PermRead:             "r--",
		PermWrite:            "-w-",
		PermRW:               "rw-",
		PermRW | PermExec:    "rwx",
		PermRead | PermExec:  "r-x",
		PermWrite | PermExec: "-wx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestAccessKind(t *testing.T) {
	if Read.Need() != PermRead || Write.Need() != PermWrite {
		t.Error("Need() wrong")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("String() wrong")
	}
	if AccessKind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		a    Virt
		size uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4096, 1},
		{0, 4097, 2},
		{4095, 2, 2},
		{4095, 1, 1},
		{8192, 3 * 4096, 3},
	}
	for _, c := range cases {
		if got := PagesSpanned(c.a, c.size); got != c.want {
			t.Errorf("PagesSpanned(%#x, %d) = %d, want %d", c.a, c.size, got, c.want)
		}
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(4097, 4096) != 4096 || AlignUp(4097, 4096) != 8192 {
		t.Error("align wrong")
	}
	if AlignUp(4096, 4096) != 4096 || AlignDown(4096, 4096) != 4096 {
		t.Error("aligned values must be fixed points")
	}
	f := func(a uint64) bool {
		a &= 1<<40 - 1 // keep AlignUp from overflowing
		d, u := AlignDown(a, BlockSize), AlignUp(a, BlockSize)
		return d%BlockSize == 0 && u%BlockSize == 0 && d <= a && a <= u && u-d < 2*BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
