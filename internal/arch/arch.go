// Package arch defines the base architectural vocabulary shared by every
// component of the simulator: physical and virtual addresses, page numbers,
// page geometry, access permissions, and cache-block geometry.
//
// The values follow the system evaluated in the paper (Table 3): 4 KB base
// pages, optional 2 MB huge pages, and 128-byte memory blocks.
package arch

import "fmt"

// Phys is a host physical address.
type Phys uint64

// Virt is a process virtual address.
type Virt uint64

// PPN is a physical page number (Phys >> PageShift).
type PPN uint64

// VPN is a virtual page number (Virt >> PageShift).
type VPN uint64

// ASID identifies a process address space.
type ASID uint16

// Page geometry. The minimum page size is 4 KB; huge pages are 2 MB.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1

	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift // 2 MiB
	// PagesPerHugePage is the number of base pages a huge page spans.
	PagesPerHugePage = HugePageSize / PageSize // 512
)

// Cache-block geometry. The evaluated memory system uses 128-byte blocks,
// so one block of the Protection Table covers 512 pages (2 bits per page).
const (
	BlockShift = 7
	BlockSize  = 1 << BlockShift // 128
	BlockMask  = BlockSize - 1
)

// PageOf returns the physical page number containing p.
func (p Phys) PageOf() PPN { return PPN(p >> PageShift) }

// BlockOf returns the address of the memory block containing p.
func (p Phys) BlockOf() Phys { return p &^ Phys(BlockMask) }

// Offset returns the offset of p within its page.
func (p Phys) Offset() uint64 { return uint64(p) & PageMask }

// PageOf returns the virtual page number containing v.
func (v Virt) PageOf() VPN { return VPN(v >> PageShift) }

// Offset returns the offset of v within its page.
func (v Virt) Offset() uint64 { return uint64(v) & PageMask }

// Base returns the first physical address of the page.
func (n PPN) Base() Phys { return Phys(n) << PageShift }

// Base returns the first virtual address of the page.
func (n VPN) Base() Virt { return Virt(n) << PageShift }

// HugeAligned reports whether the page number is 2 MB aligned.
func (n PPN) HugeAligned() bool { return n%PagesPerHugePage == 0 }

// HugeAligned reports whether the page number is 2 MB aligned.
func (n VPN) HugeAligned() bool { return n%PagesPerHugePage == 0 }

// Perm is a page access-permission set. Border Control tracks only read and
// write: once a block is inside the accelerator the border cannot observe
// whether it is consumed as data or instructions (paper §3.1.1), so execute
// permission is not represented at the border. The OS-side page tables still
// carry NX for completeness.
type Perm uint8

const (
	// PermNone grants nothing; the Protection Table's fail-closed default.
	PermNone Perm = 0
	// PermRead grants read access.
	PermRead Perm = 1 << 0
	// PermWrite grants write access.
	PermWrite Perm = 1 << 1
	// PermExec marks an executable mapping in the OS page tables. It never
	// reaches the Protection Table.
	PermExec Perm = 1 << 2

	// PermRW is the common read-write grant.
	PermRW = PermRead | PermWrite
)

// CanRead reports whether p includes read permission.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports whether p includes write permission.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 }

// CanExec reports whether p includes execute permission.
func (p Perm) CanExec() bool { return p&PermExec != 0 }

// Allows reports whether p grants everything need does.
func (p Perm) Allows(need Perm) bool { return p&need == need }

// Union returns the union of the two permission sets. Multiprocess
// accelerators are checked against the union of all co-scheduled processes'
// permissions (paper §3.3).
func (p Perm) Union(q Perm) Perm { return p | q }

// Border returns the permission restricted to the bits Border Control
// stores (read and write).
func (p Perm) Border() Perm { return p & PermRW }

func (p Perm) String() string {
	buf := []byte{'-', '-', '-'}
	if p.CanRead() {
		buf[0] = 'r'
	}
	if p.CanWrite() {
		buf[1] = 'w'
	}
	if p.CanExec() {
		buf[2] = 'x'
	}
	return string(buf)
}

// AccessKind distinguishes the two request types checked at the border.
type AccessKind uint8

const (
	// Read is a load, instruction fetch, or cache-fill request.
	Read AccessKind = iota
	// Write is a store, or a dirty writeback crossing the border.
	Write
)

func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Need returns the permission an access of kind k requires.
func (k AccessKind) Need() Perm {
	if k == Write {
		return PermWrite
	}
	return PermRead
}

// PagesSpanned returns how many pages the byte range [a, a+size) touches.
func PagesSpanned(a Virt, size uint64) int {
	if size == 0 {
		return 0
	}
	first := uint64(a) >> PageShift
	last := (uint64(a) + size - 1) >> PageShift
	return int(last - first + 1)
}

// AlignDown rounds a down to a multiple of align (a power of two).
func AlignDown(a, align uint64) uint64 { return a &^ (align - 1) }

// AlignUp rounds a up to a multiple of align (a power of two).
func AlignUp(a, align uint64) uint64 { return (a + align - 1) &^ (align - 1) }
