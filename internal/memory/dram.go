package memory

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// DRAMConfig sets the timing parameters of the memory controller.
type DRAMConfig struct {
	// AccessLatency is the unloaded access time of a block that misses the
	// row buffer (precharge + activate + CAS + transfer), independent of
	// bandwidth occupancy.
	AccessLatency sim.Time
	// RowHitLatency is the access time when the block lies in the
	// channel's open row (CAS + transfer only).
	RowHitLatency sim.Time
	// RowBytes is the open-row (page) size per bank.
	RowBytes uint64
	// BanksPerChannel is the number of independent row buffers per
	// channel. More banks means hot structures (like a Protection Table
	// block) keep their row open without evicting the streams around them.
	BanksPerChannel int
	// BandwidthBytesPerSec is the peak aggregate bandwidth across channels.
	// The paper's system provides 180 GB/s.
	BandwidthBytesPerSec float64
	// Channels is the number of independent channels; requests are
	// interleaved across channels by block address.
	Channels int
}

// DefaultDRAMConfig mirrors the paper's memory system (Table 3): 180 GB/s
// peak bandwidth and a ~140 ns loaded access latency — about 100 GPU cycles
// at 700 MHz, the same scale as the Protection Table access latency, which
// is what lets the parallel permission lookup hide under the data fetch
// (paper §3.1.1).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		AccessLatency:        140 * sim.Nanosecond,
		RowHitLatency:        30 * sim.Nanosecond,
		RowBytes:             2 << 10,
		BanksPerChannel:      16,
		BandwidthBytesPerSec: 180e9,
		Channels:             4,
	}
}

// DRAM is the timing model in front of a Store. Every access moves one
// memory block (128 bytes). An access completes after queueing for its
// channel plus the unloaded access latency.
type DRAM struct {
	cfg      DRAMConfig
	store    *Store
	channels []*sim.Resource
	openRow  [][]uint64 // per channel, per bank; ^0 = none

	// Stats
	Reads      stats.Counter
	Writes     stats.Counter
	RowHits    stats.Counter
	BytesMoved stats.Counter
}

// NewDRAM returns a DRAM timing model over the given store.
func NewDRAM(store *Store, cfg DRAMConfig) (*DRAM, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("memory: DRAM needs at least one channel, got %d", cfg.Channels)
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		return nil, fmt.Errorf("memory: non-positive DRAM bandwidth %v", cfg.BandwidthBytesPerSec)
	}
	// Service time for one block on one channel: block bytes divided by the
	// per-channel share of peak bandwidth.
	perChannel := cfg.BandwidthBytesPerSec / float64(cfg.Channels)
	svcPs := float64(arch.BlockSize) / perChannel * 1e12
	if svcPs < 1 {
		svcPs = 1
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 2 << 10
	}
	if cfg.BanksPerChannel <= 0 {
		cfg.BanksPerChannel = 8
	}
	if cfg.RowHitLatency == 0 || cfg.RowHitLatency > cfg.AccessLatency {
		cfg.RowHitLatency = cfg.AccessLatency
	}
	d := &DRAM{cfg: cfg, store: store}
	for i := 0; i < cfg.Channels; i++ {
		d.channels = append(d.channels, sim.NewResource(sim.Time(svcPs)))
		rows := make([]uint64, cfg.BanksPerChannel)
		for b := range rows {
			rows[b] = ^uint64(0)
		}
		d.openRow = append(d.openRow, rows)
	}
	return d, nil
}

// Store returns the functional backing store.
func (d *DRAM) Store() *Store { return d.store }

// Config returns the timing configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

func (d *DRAM) channelIdx(a arch.Phys) int {
	return int(uint64(a)>>arch.BlockShift) % len(d.channels)
}

// AccessDone returns the completion time of a block access to address a
// issued at time 'at', accounting for channel queueing, row-buffer
// locality, and access latency. kind only affects statistics; reads and
// writes share channel bandwidth.
func (d *DRAM) AccessDone(at sim.Time, a arch.Phys, kind arch.AccessKind) sim.Time {
	return d.AccessDoneBytes(at, a, kind, arch.BlockSize)
}

// AccessDoneBytes is AccessDone for a narrow access moving only n bytes
// (minimum one burst beat): it occupies the channel proportionally. Border
// Control's per-check Protection Table reads use this — a permission lookup
// moves one word, not a whole block.
func (d *DRAM) AccessDoneBytes(at sim.Time, a arch.Phys, kind arch.AccessKind, n uint64) sim.Time {
	if n == 0 || n > arch.BlockSize {
		n = arch.BlockSize
	}
	ch := d.channelIdx(a)
	svc := sim.Time(uint64(d.channels[ch].Service()) * n / arch.BlockSize)
	done := d.channels[ch].ClaimFor(at, svc)
	d.BytesMoved.Add(n)
	if kind == arch.Write {
		d.Writes.Inc()
	} else {
		d.Reads.Inc()
	}
	row := uint64(a) / d.cfg.RowBytes
	bank := int(row) % d.cfg.BanksPerChannel
	lat := d.cfg.AccessLatency
	if d.openRow[ch][bank] == row {
		d.RowHits.Inc()
		lat = d.cfg.RowHitLatency
	}
	d.openRow[ch][bank] = row
	return done + lat
}

// Utilization returns the mean channel utilization over the elapsed time.
func (d *DRAM) Utilization(elapsed sim.Time) float64 {
	if elapsed == 0 || len(d.channels) == 0 {
		return 0
	}
	var u float64
	for _, ch := range d.channels {
		u += ch.Utilization(elapsed)
	}
	return u / float64(len(d.channels))
}

// Accesses returns the total number of block accesses.
func (d *DRAM) Accesses() uint64 { return d.Reads.Value() + d.Writes.Value() }

// RegisterMetrics publishes the DRAM counters under s ("dram.reads",
// "dram.row_hit_ratio", ...).
func (d *DRAM) RegisterMetrics(s stats.Scope) {
	s.Counter("reads", &d.Reads)
	s.Counter("writes", &d.Writes)
	s.CounterFunc("accesses", d.Accesses)
	s.Counter("row_hits", &d.RowHits)
	s.Counter("bytes_moved", &d.BytesMoved)
	s.CounterFunc("channels", func() uint64 { return uint64(len(d.channels)) })
	s.Gauge("row_hit_ratio", func() float64 {
		if n := d.Accesses(); n > 0 {
			return float64(d.RowHits.Value()) / float64(n)
		}
		return 0
	})
}
