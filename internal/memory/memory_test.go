package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
)

func newStore(t testing.TB, size uint64) *Store {
	t.Helper()
	s, err := NewStore(size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreValidation(t *testing.T) {
	for _, size := range []uint64{0, 1, 4095, 4097} {
		if _, err := NewStore(size); err == nil {
			t.Errorf("NewStore(%d) should fail", size)
		}
	}
	s := newStore(t, 1<<20)
	if s.Size() != 1<<20 || s.Pages() != 256 {
		t.Errorf("size/pages wrong: %d/%d", s.Size(), s.Pages())
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := newStore(t, 1<<20)
	data := []byte("the quick brown fox")
	s.Write(100, data)
	if got := s.Read(100, uint64(len(data))); !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
}

func TestStoreCrossPage(t *testing.T) {
	s := newStore(t, 1<<20)
	data := make([]byte, 3*arch.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Unaligned start, spanning four pages.
	addr := arch.Phys(arch.PageSize - 100)
	s.Write(addr, data)
	if got := s.Read(addr, uint64(len(data))); !bytes.Equal(got, data) {
		t.Error("cross-page round trip failed")
	}
}

func TestStoreZeroDefault(t *testing.T) {
	s := newStore(t, 1<<20)
	for _, b := range s.Read(12345, 64) {
		if b != 0 {
			t.Fatal("untouched memory should read zero")
		}
	}
	if s.PopulatedPages() != 0 {
		t.Error("reads should not materialize pages")
	}
}

func TestStoreLaziness(t *testing.T) {
	s := newStore(t, 1<<30) // 1 GB simulated
	s.WriteByteAt(0x3fff_0000, 7)
	if s.PopulatedPages() != 1 {
		t.Errorf("populated = %d, want 1", s.PopulatedPages())
	}
}

func TestStoreZeroing(t *testing.T) {
	s := newStore(t, 1<<20)
	s.Write(arch.PageSize, bytes.Repeat([]byte{0xff}, 2*arch.PageSize))
	s.ZeroPage(1)
	if s.ReadByteAt(arch.PageSize) != 0 {
		t.Error("ZeroPage failed")
	}
	if s.ReadByteAt(2*arch.PageSize) != 0xff {
		t.Error("ZeroPage cleared the wrong page")
	}
	// Partial range zero within a page.
	s.ZeroRange(2*arch.PageSize+10, 20)
	if s.ReadByteAt(2*arch.PageSize+9) != 0xff || s.ReadByteAt(2*arch.PageSize+10) != 0 ||
		s.ReadByteAt(2*arch.PageSize+29) != 0 || s.ReadByteAt(2*arch.PageSize+30) != 0xff {
		t.Error("partial ZeroRange wrong")
	}
}

func TestStoreWordAccess(t *testing.T) {
	s := newStore(t, 1<<20)
	s.WriteU64(8, 0x1122334455667788)
	if got := s.ReadU64(8); got != 0x1122334455667788 {
		t.Errorf("u64 = %#x", got)
	}
	if got := s.ReadU32(8); got != 0x55667788 {
		t.Errorf("u32 low half = %#x (little endian expected)", got)
	}
	s.WriteU32(100, 0xdeadbeef)
	if got := s.ReadU32(100); got != 0xdeadbeef {
		t.Errorf("u32 = %#x", got)
	}
}

func TestStoreBoundsPanic(t *testing.T) {
	s := newStore(t, 1<<20)
	for name, fn := range map[string]func(){
		"read":  func() { s.Read(1<<20-4, 8) },
		"write": func() { s.Write(1<<20, []byte{1}) },
		"zero":  func() { s.ZeroRange(1<<20-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of bounds should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStoreQuickRoundTrip(t *testing.T) {
	s := newStore(t, 1<<22)
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := arch.Phys(addr) % (1<<22 - arch.Phys(len(data)))
		s.Write(a, data)
		return bytes.Equal(s.Read(a, uint64(len(data))), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func defaultDRAM(t testing.TB) *DRAM {
	t.Helper()
	d, err := NewDRAM(newStore(t, 1<<24), DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDRAMValidation(t *testing.T) {
	s := newStore(t, 1<<20)
	if _, err := NewDRAM(s, DRAMConfig{Channels: 0, BandwidthBytesPerSec: 1e9}); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := NewDRAM(s, DRAMConfig{Channels: 1, BandwidthBytesPerSec: 0}); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestDRAMLatency(t *testing.T) {
	d := defaultDRAM(t)
	cfg := d.Config()
	done := d.AccessDone(0, 0, arch.Read)
	// First access: service + row-miss latency.
	min := sim.Time(cfg.AccessLatency)
	if done < min {
		t.Errorf("first access done at %d, before access latency %d", done, min)
	}
	// Same block again: row hit, much faster latency component.
	done2 := d.AccessDone(done, 0, arch.Read)
	if done2-done > sim.Time(cfg.RowHitLatency)+10000 {
		t.Errorf("row hit took %d ps", done2-done)
	}
	if d.RowHits.Value() != 1 {
		t.Errorf("row hits = %d, want 1", d.RowHits.Value())
	}
}

func TestDRAMQueueing(t *testing.T) {
	d := defaultDRAM(t)
	// Saturate one channel: all claims at t=0 to the same block address.
	// (Completion times are not monotone — the first access pays a row
	// miss while later ones row-hit — but the queue grows linearly.)
	var last sim.Time
	for i := 0; i < 100; i++ {
		last = d.AccessDone(0, 0, arch.Read)
	}
	// 100 accesses of 128B at (180/4) GB/s per channel ≈ 284 ns of queue,
	// plus the final row-hit latency.
	if last < 280000 {
		t.Errorf("100 serialized accesses done at %d ps, too fast", last)
	}
	if got := d.RowHits.Value(); got != 99 {
		t.Errorf("row hits = %d, want 99", got)
	}
}

func TestDRAMChannelInterleave(t *testing.T) {
	d := defaultDRAM(t)
	// Blocks 0..3 map to different channels: no queueing between them.
	var dones []sim.Time
	for i := 0; i < 4; i++ {
		dones = append(dones, d.AccessDone(0, arch.Phys(i*arch.BlockSize), arch.Read))
	}
	for i := 1; i < 4; i++ {
		if dones[i] != dones[0] {
			t.Errorf("channel %d done at %d, want %d (parallel channels)", i, dones[i], dones[0])
		}
	}
}

func TestDRAMNarrowAccess(t *testing.T) {
	// A narrow access finishes sooner than a full-block one from idle (its
	// transfer occupies 1/16 of the slot) and moves fewer bytes.
	narrowD := defaultDRAM(t)
	narrow := narrowD.AccessDoneBytes(0, 0, arch.Read, 8)
	fullD := defaultDRAM(t)
	full := fullD.AccessDone(0, 0, arch.Read)
	if narrow >= full {
		t.Errorf("narrow access (%d ps) should beat a full block (%d ps)", narrow, full)
	}
	if narrowD.BytesMoved.Value() != 8 || fullD.BytesMoved.Value() != arch.BlockSize {
		t.Error("bytes-moved accounting wrong")
	}
	// Degenerate sizes clamp to a full block.
	clampD := defaultDRAM(t)
	clampD.AccessDoneBytes(0, 0, arch.Read, 0)
	clampD.AccessDoneBytes(0, 0, arch.Read, 4096)
	if clampD.BytesMoved.Value() != 2*arch.BlockSize {
		t.Errorf("clamping wrong: %d bytes", clampD.BytesMoved.Value())
	}
}

func TestDRAMBankedRows(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d, err := NewDRAM(newStore(t, 1<<24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rowStride := cfg.RowBytes * uint64(cfg.BanksPerChannel) * uint64(cfg.Channels)
	// Two hot locations in different banks: alternating accesses all row-hit
	// after the first pair.
	a := arch.Phys(0)
	b := arch.Phys(cfg.RowBytes * uint64(cfg.Channels)) // same channel? different bank row
	_ = rowStride
	d.AccessDone(0, a, arch.Read)
	d.AccessDone(0, b, arch.Read)
	d.AccessDone(0, a, arch.Read)
	d.AccessDone(0, b, arch.Read)
	if d.RowHits.Value() < 2 {
		t.Errorf("banked rows: row hits = %d, want >= 2", d.RowHits.Value())
	}
}

func TestDRAMStats(t *testing.T) {
	d := defaultDRAM(t)
	d.AccessDone(0, 0, arch.Read)
	d.AccessDone(0, 128, arch.Write)
	if d.Reads.Value() != 1 || d.Writes.Value() != 1 || d.Accesses() != 2 {
		t.Error("access stats wrong")
	}
	if d.BytesMoved.Value() != 256 {
		t.Errorf("bytes moved = %d, want 256", d.BytesMoved.Value())
	}
	if u := d.Utilization(1000000); u <= 0 {
		t.Error("utilization should be positive")
	}
}
