// Package memory models host physical memory: a functional backing store
// holding real bytes, and a DRAM timing model with fixed access latency and
// a bandwidth-limited set of channels.
//
// Keeping real data in the store lets the rest of the system be functional
// as well as timed: workloads compute real results through the hierarchy,
// page tables and the Protection Table live at physical addresses inside
// the store, and security tests can observe actual corruption (or its
// absence) rather than inferring it.
package memory

import (
	"encoding/binary"
	"fmt"

	"bordercontrol/internal/arch"
)

// Store is the functional backing store for physical memory. Pages are
// allocated lazily so a simulated 16 GB system does not cost 16 GB of host
// RAM.
type Store struct {
	size  uint64
	pages map[arch.PPN]*[arch.PageSize]byte
}

// NewStore returns a physical memory of the given byte size. Size must be a
// non-zero multiple of the page size.
func NewStore(size uint64) (*Store, error) {
	if size == 0 || size%arch.PageSize != 0 {
		return nil, fmt.Errorf("memory: size %d is not a positive multiple of %d", size, arch.PageSize)
	}
	return &Store{size: size, pages: make(map[arch.PPN]*[arch.PageSize]byte)}, nil
}

// Size returns the physical memory capacity in bytes.
func (s *Store) Size() uint64 { return s.size }

// Pages returns the number of physical pages.
func (s *Store) Pages() uint64 { return s.size / arch.PageSize }

// Contains reports whether [a, a+n) lies within physical memory.
func (s *Store) Contains(a arch.Phys, n uint64) bool {
	return uint64(a) < s.size && n <= s.size-uint64(a)
}

func (s *Store) page(n arch.PPN, alloc bool) *[arch.PageSize]byte {
	if p, ok := s.pages[n]; ok {
		return p
	}
	if !alloc {
		return nil
	}
	p := new([arch.PageSize]byte)
	s.pages[n] = p
	return p
}

// Read copies n bytes at physical address a into a fresh slice. Reads
// outside physical memory are a simulator bug and panic.
func (s *Store) Read(a arch.Phys, n uint64) []byte {
	out := make([]byte, n)
	s.ReadInto(a, out)
	return out
}

// ReadInto fills buf from physical address a.
func (s *Store) ReadInto(a arch.Phys, buf []byte) {
	if !s.Contains(a, uint64(len(buf))) {
		panic(fmt.Sprintf("memory: read [%#x,+%d) outside %d-byte memory", a, len(buf), s.size))
	}
	for len(buf) > 0 {
		pg := s.page(a.PageOf(), false)
		off := a.Offset()
		chunk := uint64(len(buf))
		if room := uint64(arch.PageSize) - off; chunk > room {
			chunk = room
		}
		if pg == nil {
			for i := uint64(0); i < chunk; i++ {
				buf[i] = 0
			}
		} else {
			copy(buf[:chunk], pg[off:off+chunk])
		}
		buf = buf[chunk:]
		a += arch.Phys(chunk)
	}
}

// Write stores data at physical address a.
func (s *Store) Write(a arch.Phys, data []byte) {
	if !s.Contains(a, uint64(len(data))) {
		panic(fmt.Sprintf("memory: write [%#x,+%d) outside %d-byte memory", a, len(data), s.size))
	}
	for len(data) > 0 {
		pg := s.page(a.PageOf(), true)
		off := a.Offset()
		chunk := uint64(len(data))
		if room := uint64(arch.PageSize) - off; chunk > room {
			chunk = room
		}
		copy(pg[off:off+chunk], data[:chunk])
		data = data[chunk:]
		a += arch.Phys(chunk)
	}
}

// ReadU64 reads a little-endian 64-bit word at a.
func (s *Store) ReadU64(a arch.Phys) uint64 {
	var buf [8]byte
	s.ReadInto(a, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteU64 writes a little-endian 64-bit word at a.
func (s *Store) WriteU64(a arch.Phys, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.Write(a, buf[:])
}

// ReadU32 reads a little-endian 32-bit word at a.
func (s *Store) ReadU32(a arch.Phys) uint32 {
	var buf [4]byte
	s.ReadInto(a, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// WriteU32 writes a little-endian 32-bit word at a.
func (s *Store) WriteU32(a arch.Phys, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	s.Write(a, buf[:])
}

// ReadByte reads one byte at a.
func (s *Store) ReadByteAt(a arch.Phys) byte {
	var buf [1]byte
	s.ReadInto(a, buf[:])
	return buf[0]
}

// WriteByte writes one byte at a.
func (s *Store) WriteByteAt(a arch.Phys, v byte) {
	s.Write(a, []byte{v})
}

// ZeroPage clears an entire physical page. The OS uses this when handing
// out frames and when zeroing Protection Table regions.
func (s *Store) ZeroPage(n arch.PPN) {
	if !s.Contains(n.Base(), arch.PageSize) {
		panic(fmt.Sprintf("memory: zero of page %#x outside memory", n))
	}
	// Dropping the page is equivalent to zeroing it: absent pages read 0.
	delete(s.pages, n)
}

// ZeroRange clears [a, a+n).
func (s *Store) ZeroRange(a arch.Phys, n uint64) {
	if !s.Contains(a, n) {
		panic(fmt.Sprintf("memory: zero [%#x,+%d) outside memory", a, n))
	}
	for n > 0 {
		off := a.Offset()
		chunk := uint64(arch.PageSize) - off
		if chunk > n {
			chunk = n
		}
		if off == 0 && chunk == arch.PageSize {
			s.ZeroPage(a.PageOf())
		} else if pg := s.page(a.PageOf(), false); pg != nil {
			for i := off; i < off+chunk; i++ {
				pg[i] = 0
			}
		}
		a += arch.Phys(chunk)
		n -= chunk
	}
}

// PopulatedPages returns how many pages are materialized in the host, which
// tests use to check laziness.
func (s *Store) PopulatedPages() int { return len(s.pages) }
