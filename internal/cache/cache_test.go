package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
)

func mustCache(t *testing.T, size, ways int, pol WritePolicy) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", SizeBytes: size, Ways: ways, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func block(fill byte) []byte {
	b := make([]byte, arch.BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1},
		{SizeBytes: 100, Ways: 1},     // not block multiple
		{SizeBytes: 1024, Ways: 0},    // no ways
		{SizeBytes: 3 * 128, Ways: 2}, // blocks not divisible by ways
		{SizeBytes: -128, Ways: 1},    // negative
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestFillLookupRead(t *testing.T) {
	c := mustCache(t, 1024, 2, WriteBack)
	if c.Lookup(0x1000) {
		t.Error("hit in empty cache")
	}
	c.Fill(0x1000, block(0xAB))
	if !c.Lookup(0x1000) || !c.Lookup(0x107F) {
		t.Error("filled block should hit anywhere inside")
	}
	if c.Lookup(0x1080) {
		t.Error("adjacent block should miss")
	}
	var buf [16]byte
	c.Read(0x1010, buf[:])
	if !bytes.Equal(buf[:], block(0xAB)[:16]) {
		t.Error("read wrong data")
	}
}

func TestWriteBackDirty(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack) // 2 blocks, 1 set
	c.Fill(0, block(0))
	c.Write(4, []byte{1, 2, 3, 4})
	if !c.IsDirty(0) {
		t.Error("write-back store should dirty the line")
	}
	c.Fill(128, block(0))
	// Third fill in the same set evicts the LRU (block 0, dirty).
	victim, dirty := c.Fill(256, block(0))
	if !dirty || victim.Addr != 0 {
		t.Fatalf("victim = %+v dirty=%v, want dirty block 0", victim, dirty)
	}
	if !bytes.Equal(victim.Data[4:8], []byte{1, 2, 3, 4}) {
		t.Error("victim writeback lost the stored data")
	}
	if c.Writebacks.Value() != 1 {
		t.Error("writeback not counted")
	}
}

func TestWriteThroughStaysClean(t *testing.T) {
	c := mustCache(t, 256, 2, WriteThrough)
	c.Fill(0, block(0))
	c.Write(0, []byte{9})
	if c.IsDirty(0) {
		t.Error("write-through line must stay clean")
	}
	var b [1]byte
	c.Read(0, b[:])
	if b[0] != 9 {
		t.Error("write-through must still update the cached copy")
	}
}

func TestRefillKeepsDirty(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack)
	c.Fill(0, block(1))
	c.Write(0, []byte{7})
	// Refill of the same block keeps dirty state (e.g. ownership upgrade).
	if _, evicted := c.Fill(0, block(2)); evicted {
		t.Error("refill must not evict")
	}
	if !c.IsDirty(0) {
		t.Error("refill cleared dirty state")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := mustCache(t, 512, 4, WriteBack) // 4 blocks/set, 1 set
	for i := 0; i < 4; i++ {
		c.Fill(arch.Phys(i*128), block(byte(i)))
	}
	c.Lookup(0) // touch 0; LRU is now 128
	victim, _ := c.Fill(4*128, block(9))
	_ = victim
	if c.Contains(128) {
		t.Error("LRU block 128 should be evicted")
	}
	if !c.Contains(0) {
		t.Error("MRU block 0 should survive")
	}
}

func TestFlushAll(t *testing.T) {
	c := mustCache(t, 1024, 4, WriteBack)
	c.Fill(0, block(1))
	c.Write(0, []byte{1})
	c.Fill(128, block(2)) // clean
	dirty := c.FlushAll()
	if len(dirty) != 1 || dirty[0].Addr != 0 {
		t.Fatalf("flush returned %v", dirty)
	}
	if c.ValidBlocks() != 0 {
		t.Error("flush must invalidate everything")
	}
}

func TestFlushPage(t *testing.T) {
	c := mustCache(t, 4096, 4, WriteBack)
	// Two blocks on page 0, one on page 1; all dirty.
	for _, a := range []arch.Phys{0, 256, 4096} {
		c.Fill(a, block(0))
		c.Write(a, []byte{0xFF})
	}
	dirty := c.FlushPage(0)
	if len(dirty) != 2 {
		t.Fatalf("page flush returned %d blocks, want 2", len(dirty))
	}
	if !c.Contains(4096) || !c.IsDirty(4096) {
		t.Error("other page must be untouched")
	}
	if c.Contains(0) || c.Contains(256) {
		t.Error("flushed page still cached")
	}
}

func TestDropLosesData(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack)
	c.Fill(0, block(1))
	c.Write(0, []byte{0xEE})
	if !c.Drop(0) {
		t.Error("drop missed")
	}
	if c.Contains(0) || c.DirtyBlocks() != 0 {
		t.Error("drop must invalidate silently")
	}
	if c.Drop(0) {
		t.Error("double drop should miss")
	}
}

func TestExtract(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack)
	c.Fill(0, block(3))
	c.Write(8, []byte{0x42})
	data, dirty, present := c.Extract(8) // any address within the block
	if !present || !dirty {
		t.Fatalf("extract: present=%v dirty=%v", present, dirty)
	}
	if data[8] != 0x42 || data[0] != 3 {
		t.Error("extract returned wrong data")
	}
	if c.Contains(0) {
		t.Error("extract must invalidate")
	}
	if _, _, present := c.Extract(0); present {
		t.Error("second extract should miss")
	}
}

func TestBlockCrossingPanics(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack)
	c.Fill(0, block(0))
	defer func() {
		if recover() == nil {
			t.Error("block-crossing access should panic")
		}
	}()
	var buf [16]byte
	c.Read(120, buf[:])
}

func TestAbsentAccessPanics(t *testing.T) {
	c := mustCache(t, 256, 2, WriteBack)
	defer func() {
		if recover() == nil {
			t.Error("access to absent block should panic")
		}
	}()
	c.Write(0, []byte{1})
}

// TestAgainstReferenceModel drives random fills/writes/flushes against a
// map-based reference and checks data and dirty-state agreement.
func TestAgainstReferenceModel(t *testing.T) {
	c := mustCache(t, 2048, 4, WriteBack)
	rng := rand.New(rand.NewSource(99))

	// Reference: block address -> data and dirty flag, only for blocks the
	// cache currently holds; mem models what writebacks have persisted.
	type refLine struct {
		data  [arch.BlockSize]byte
		dirty bool
	}
	ref := make(map[arch.Phys]*refLine)
	mem := make(map[arch.Phys][arch.BlockSize]byte)

	persist := func(db DirtyBlock) { mem[db.Addr] = db.Data }

	for i := 0; i < 5000; i++ {
		addr := arch.Phys(rng.Intn(64)) * arch.BlockSize
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // fill (if absent)
			if c.Contains(addr) {
				continue
			}
			data := mem[addr]
			victim, dirty := c.Fill(addr, data[:])
			if dirty {
				persist(victim)
				// Victim must match the reference's dirty line.
				rl := ref[victim.Addr]
				if rl == nil || !rl.dirty || !bytes.Equal(rl.data[:], victim.Data[:]) {
					t.Fatal("victim mismatch with reference")
				}
			}
			// Remove any reference lines the cache no longer holds.
			for a := range ref {
				if !c.Contains(a) {
					delete(ref, a)
				}
			}
			ref[addr] = &refLine{data: data}
		case 4, 5, 6: // write (if present)
			if !c.Contains(addr) {
				continue
			}
			off := uint64(rng.Intn(arch.BlockSize - 8))
			val := []byte{byte(i), byte(i >> 8)}
			c.Write(addr+arch.Phys(off), val)
			rl := ref[addr]
			copy(rl.data[off:], val)
			rl.dirty = true
		case 7: // read check
			if !c.Contains(addr) {
				continue
			}
			var buf [arch.BlockSize]byte
			c.Read(addr, buf[:])
			if !bytes.Equal(buf[:], ref[addr].data[:]) {
				t.Fatal("cached data disagrees with reference")
			}
		case 8: // page flush
			page := addr.PageOf()
			for _, db := range c.FlushPage(page) {
				persist(db)
			}
			for a := range ref {
				if a.PageOf() == page {
					delete(ref, a)
				}
			}
		case 9: // dirty-state check
			if c.Contains(addr) != (ref[addr] != nil) {
				t.Fatal("presence disagrees with reference")
			}
			if rl := ref[addr]; rl != nil && c.IsDirty(addr) != rl.dirty {
				t.Fatal("dirty state disagrees with reference")
			}
		}
	}
	// Final flush: everything dirty lands in mem and matches the reference.
	for _, db := range c.FlushAll() {
		rl := ref[db.Addr]
		if rl == nil || !rl.dirty || !bytes.Equal(rl.data[:], db.Data[:]) {
			t.Fatal("final flush mismatch")
		}
		persist(db)
	}
}
