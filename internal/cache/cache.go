// Package cache models set-associative hardware caches with LRU
// replacement. Lines carry real data, so dirty state is observable: a dirty
// block that is never written back leaves main memory stale, which is
// exactly the effect Border Control exploits when it blocks an illegal
// writeback at the border (paper §3.2.4).
//
// Two write policies are provided: write-back with write-allocate (the
// accelerator L2 and CPU caches) and write-through without allocate (the
// simple GPU L1 protocol described in paper §5.1).
package cache

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// WritePolicy selects how stores interact with the cache.
type WritePolicy uint8

const (
	// WriteBack marks lines dirty and defers memory updates to eviction or
	// flush.
	WriteBack WritePolicy = iota
	// WriteThrough propagates every store below immediately and never holds
	// dirty data.
	WriteThrough
)

func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Config describes a cache's geometry and timing.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	Policy     WritePolicy
	HitLatency sim.Time
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
	data  [arch.BlockSize]byte
}

// DirtyBlock is a block leaving the cache that must be written back.
type DirtyBlock struct {
	Addr arch.Phys
	Data [arch.BlockSize]byte
}

// Cache is a set-associative cache over 128-byte blocks.
type Cache struct {
	cfg  Config
	sets [][]line
	tick uint64

	HitMiss    stats.HitMiss
	Writebacks stats.Counter
	Fills      stats.Counter
}

// New validates the configuration and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%arch.BlockSize != 0 {
		return nil, fmt.Errorf("cache %q: size %d not a positive multiple of block size", cfg.Name, cfg.SizeBytes)
	}
	blocks := cfg.SizeBytes / arch.BlockSize
	if cfg.Ways <= 0 || blocks%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %q: %d blocks not divisible into %d ways", cfg.Name, blocks, cfg.Ways)
	}
	nsets := blocks / cfg.Ways
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() sim.Time { return c.cfg.HitLatency }

func (c *Cache) set(a arch.Phys) []line { return c.sets[c.setIndex(a)] }

func (c *Cache) setIndex(a arch.Phys) uint64 {
	return (uint64(a) >> arch.BlockShift) % uint64(len(c.sets))
}

func tagOf(a arch.Phys) uint64 { return uint64(a) >> arch.BlockShift }

func (c *Cache) find(a arch.Phys) *line {
	set := c.set(a)
	t := tagOf(a)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether the block holding a is cached, without touching
// LRU state or statistics (for tests and invariant checks).
func (c *Cache) Contains(a arch.Phys) bool { return c.find(a.BlockOf()) != nil }

// IsDirty reports whether the block holding a is cached dirty.
func (c *Cache) IsDirty(a arch.Phys) bool {
	l := c.find(a.BlockOf())
	return l != nil && l.dirty
}

// Lookup probes for the block containing a, recording hit/miss statistics
// and updating LRU on hit.
func (c *Cache) Lookup(a arch.Phys) bool {
	l := c.find(a.BlockOf())
	if l == nil {
		c.HitMiss.Record(false)
		return false
	}
	c.tick++
	l.lru = c.tick
	c.HitMiss.Record(true)
	return true
}

// Fill installs the block containing a with the given data and returns the
// evicted dirty victim, if the replaced line must be written back.
func (c *Cache) Fill(a arch.Phys, data []byte) (DirtyBlock, bool) {
	a = a.BlockOf()
	if len(data) != arch.BlockSize {
		panic(fmt.Sprintf("cache %q: fill with %d bytes", c.cfg.Name, len(data)))
	}
	c.Fills.Inc()
	set := c.set(a)
	c.tick++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tagOf(a) {
			// Refill of a present block (e.g. upgrade); keep dirty state.
			copy(set[i].data[:], data)
			set[i].lru = c.tick
			return DirtyBlock{}, false
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	var wb DirtyBlock
	evictedDirty := v.valid && v.dirty
	if evictedDirty {
		wb = DirtyBlock{Addr: arch.Phys(v.tag) << arch.BlockShift, Data: v.data}
		c.Writebacks.Inc()
	}
	v.valid = true
	v.dirty = false
	v.tag = tagOf(a)
	v.lru = c.tick
	copy(v.data[:], data)
	return wb, evictedDirty
}

// Read copies data out of a cached block. The block must be present; check
// with Lookup first. The range must not cross a block boundary.
func (c *Cache) Read(a arch.Phys, buf []byte) {
	l := c.mustFind(a, uint64(len(buf)))
	off := uint64(a) & arch.BlockMask
	copy(buf, l.data[off:off+uint64(len(buf))])
}

// Write stores data into a cached block. Under write-back the line becomes
// dirty; under write-through the caller must also propagate the store below
// (the cache stays clean). The block must be present.
func (c *Cache) Write(a arch.Phys, data []byte) {
	l := c.mustFind(a, uint64(len(data)))
	off := uint64(a) & arch.BlockMask
	copy(l.data[off:off+uint64(len(data))], data)
	if c.cfg.Policy == WriteBack {
		l.dirty = true
	}
}

func (c *Cache) mustFind(a arch.Phys, n uint64) *line {
	if (uint64(a)&arch.BlockMask)+n > arch.BlockSize {
		panic(fmt.Sprintf("cache %q: access [%#x,+%d) crosses block boundary", c.cfg.Name, a, n))
	}
	l := c.find(a.BlockOf())
	if l == nil {
		panic(fmt.Sprintf("cache %q: access to absent block %#x", c.cfg.Name, a))
	}
	return l
}

// FlushAll invalidates every line and returns the dirty blocks that need
// writing back, in set order.
func (c *Cache) FlushAll() []DirtyBlock {
	var out []DirtyBlock
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			if l.valid && l.dirty {
				out = append(out, DirtyBlock{Addr: arch.Phys(l.tag) << arch.BlockShift, Data: l.data})
				c.Writebacks.Inc()
			}
			l.valid = false
			l.dirty = false
		}
	}
	return out
}

// FlushPage invalidates every line belonging to the given physical page and
// returns its dirty blocks. This is the paper's selective-flush
// optimization for permission downgrades.
func (c *Cache) FlushPage(p arch.PPN) []DirtyBlock {
	var out []DirtyBlock
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			if !l.valid {
				continue
			}
			addr := arch.Phys(l.tag) << arch.BlockShift
			if addr.PageOf() != p {
				continue
			}
			if l.dirty {
				out = append(out, DirtyBlock{Addr: addr, Data: l.data})
				c.Writebacks.Inc()
			}
			l.valid = false
			l.dirty = false
		}
	}
	return out
}

// Drop invalidates the block containing a WITHOUT writing it back, losing
// dirty data. Used to model a misbehaving accelerator that ignores a flush
// request, and by the OS when discarding blocked state.
func (c *Cache) Drop(a arch.Phys) bool {
	l := c.find(a.BlockOf())
	if l == nil {
		return false
	}
	l.valid = false
	l.dirty = false
	return true
}

// Extract invalidates the block containing a and returns its data and
// dirty state: the coherence-recall primitive.
func (c *Cache) Extract(a arch.Phys) (data [arch.BlockSize]byte, dirty, present bool) {
	l := c.find(a.BlockOf())
	if l == nil {
		return data, false, false
	}
	data = l.data
	dirty = l.dirty
	l.valid = false
	l.dirty = false
	return data, dirty, true
}

// DirtyBlocks returns how many lines are currently dirty (for tests).
func (c *Cache) DirtyBlocks() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				n++
			}
		}
	}
	return n
}

// ValidBlocks returns how many lines are currently valid (for tests).
func (c *Cache) ValidBlocks() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// RegisterMetrics publishes the cache's counters under s ("hits",
// "misses", "miss_ratio", "writebacks", "fills" within the given scope).
func (c *Cache) RegisterMetrics(s stats.Scope) {
	s.HitMiss("", &c.HitMiss)
	s.Counter("writebacks", &c.Writebacks)
	s.Counter("fills", &c.Fills)
}
