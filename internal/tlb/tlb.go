// Package tlb models translation lookaside buffers: set-associative,
// LRU-replaced, ASID-tagged, with single-entry invalidation and full flush
// (the two TLB-shootdown forms discussed in paper §3.2.4).
package tlb

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/stats"
)

// Entry is one cached translation.
type Entry struct {
	ASID arch.ASID
	VPN  arch.VPN
	PPN  arch.PPN
	Perm arch.Perm
}

type way struct {
	valid bool
	lru   uint64 // larger = more recently used
	e     Entry
}

// TLB is a set-associative translation cache. Ways == Entries gives a
// fully-associative TLB (the 64-entry accelerator L1 TLB in Table 3).
type TLB struct {
	sets    int
	ways    int
	tick    uint64
	entries [][]way

	HitMiss     stats.HitMiss
	Invalidates stats.Counter
	Flushes     stats.Counter
}

// New returns a TLB with the given total entry count and associativity.
// entries must be a multiple of ways.
func New(entries, ways int) (*TLB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("tlb: bad geometry entries=%d ways=%d", entries, ways)
	}
	sets := entries / ways
	t := &TLB{sets: sets, ways: ways, entries: make([][]way, sets)}
	for i := range t.entries {
		t.entries[i] = make([]way, ways)
	}
	return t, nil
}

// NewFullyAssociative returns a one-set TLB with the given entry count.
func NewFullyAssociative(entries int) (*TLB, error) { return New(entries, entries) }

// Entries returns the capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

func (t *TLB) set(vpn arch.VPN) []way { return t.entries[uint64(vpn)%uint64(t.sets)] }

// Lookup returns the cached translation for (asid, vpn), if present.
func (t *TLB) Lookup(asid arch.ASID, vpn arch.VPN) (Entry, bool) {
	set := t.set(vpn)
	for i := range set {
		w := &set[i]
		if w.valid && w.e.ASID == asid && w.e.VPN == vpn {
			t.tick++
			w.lru = t.tick
			t.HitMiss.Record(true)
			return w.e, true
		}
	}
	t.HitMiss.Record(false)
	return Entry{}, false
}

// Insert caches a translation, evicting the set's LRU entry if needed.
// Inserting an existing (asid, vpn) pair replaces it.
func (t *TLB) Insert(e Entry) {
	set := t.set(e.VPN)
	t.tick++
	victim := 0
	for i := range set {
		w := &set[i]
		if w.valid && w.e.ASID == e.ASID && w.e.VPN == e.VPN {
			w.e = e
			w.lru = t.tick
			return
		}
		if !w.valid {
			victim = i
			break
		}
		if w.lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = way{valid: true, lru: t.tick, e: e}
}

// Invalidate drops the translation for (asid, vpn), reporting whether one
// was present.
func (t *TLB) Invalidate(asid arch.ASID, vpn arch.VPN) bool {
	set := t.set(vpn)
	for i := range set {
		w := &set[i]
		if w.valid && w.e.ASID == asid && w.e.VPN == vpn {
			w.valid = false
			t.Invalidates.Inc()
			return true
		}
	}
	return false
}

// InvalidateASID drops every translation belonging to the address space and
// returns how many were dropped.
func (t *TLB) InvalidateASID(asid arch.ASID) int {
	n := 0
	for _, set := range t.entries {
		for i := range set {
			if set[i].valid && set[i].e.ASID == asid {
				set[i].valid = false
				n++
			}
		}
	}
	if n > 0 {
		t.Invalidates.Add(uint64(n))
	}
	return n
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	for _, set := range t.entries {
		for i := range set {
			set[i].valid = false
		}
	}
	t.Flushes.Inc()
}

// Valid returns the number of valid entries (for tests).
func (t *TLB) Valid() int {
	n := 0
	for _, set := range t.entries {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// RegisterMetrics publishes the TLB's counters under s ("hits", "misses",
// "miss_ratio", "invalidates", "flushes" within the given scope).
func (t *TLB) RegisterMetrics(s stats.Scope) {
	s.HitMiss("", &t.HitMiss)
	s.Counter("invalidates", &t.Invalidates)
	s.Counter("flushes", &t.Flushes)
}
