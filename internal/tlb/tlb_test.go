package tlb

import (
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
)

func mustTLB(t *testing.T, entries, ways int) *TLB {
	t.Helper()
	tb, err := New(entries, ways)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestGeometryValidation(t *testing.T) {
	for _, c := range []struct{ e, w int }{{0, 1}, {4, 0}, {5, 2}, {-4, -4}} {
		if _, err := New(c.e, c.w); err == nil {
			t.Errorf("New(%d,%d) should fail", c.e, c.w)
		}
	}
	tb := mustTLB(t, 64, 64)
	if tb.Entries() != 64 {
		t.Errorf("entries = %d", tb.Entries())
	}
}

func TestLookupInsert(t *testing.T) {
	tb := mustTLB(t, 8, 8)
	if _, ok := tb.Lookup(1, 0x10); ok {
		t.Error("hit on empty TLB")
	}
	tb.Insert(Entry{ASID: 1, VPN: 0x10, PPN: 0x99, Perm: arch.PermRW})
	e, ok := tb.Lookup(1, 0x10)
	if !ok || e.PPN != 0x99 || e.Perm != arch.PermRW {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	if tb.HitMiss.Hits.Value() != 1 || tb.HitMiss.Misses.Value() != 1 {
		t.Error("hit/miss stats wrong")
	}
}

func TestReplaceOnReinsert(t *testing.T) {
	tb := mustTLB(t, 4, 4)
	tb.Insert(Entry{ASID: 1, VPN: 5, PPN: 10})
	tb.Insert(Entry{ASID: 1, VPN: 5, PPN: 20})
	if tb.Valid() != 1 {
		t.Errorf("valid = %d, want 1 (replacement, not duplication)", tb.Valid())
	}
	e, _ := tb.Lookup(1, 5)
	if e.PPN != 20 {
		t.Errorf("reinsert did not update: %+v", e)
	}
}

func TestASIDIsolation(t *testing.T) {
	tb := mustTLB(t, 8, 8)
	tb.Insert(Entry{ASID: 1, VPN: 5, PPN: 10})
	if _, ok := tb.Lookup(2, 5); ok {
		t.Error("ASID 2 saw ASID 1's translation")
	}
	tb.Insert(Entry{ASID: 2, VPN: 5, PPN: 30})
	e1, _ := tb.Lookup(1, 5)
	e2, _ := tb.Lookup(2, 5)
	if e1.PPN != 10 || e2.PPN != 30 {
		t.Error("per-ASID entries interfere")
	}
}

func TestLRUEviction(t *testing.T) {
	tb := mustTLB(t, 4, 4) // fully associative, 4 entries
	for i := 0; i < 4; i++ {
		tb.Insert(Entry{ASID: 1, VPN: arch.VPN(i), PPN: arch.PPN(i)})
	}
	// Touch 0 so 1 becomes LRU.
	tb.Lookup(1, 0)
	tb.Insert(Entry{ASID: 1, VPN: 100, PPN: 100})
	if _, ok := tb.Lookup(1, 1); ok {
		t.Error("LRU entry 1 should have been evicted")
	}
	if _, ok := tb.Lookup(1, 0); !ok {
		t.Error("recently used entry 0 should survive")
	}
}

func TestSetIndexing(t *testing.T) {
	// 2 sets x 2 ways: VPNs 0,2,4 share set 0; filling three evicts one,
	// but VPN 1 (set 1) is untouched.
	tb := mustTLB(t, 4, 2)
	tb.Insert(Entry{ASID: 1, VPN: 0})
	tb.Insert(Entry{ASID: 1, VPN: 2})
	tb.Insert(Entry{ASID: 1, VPN: 1})
	tb.Insert(Entry{ASID: 1, VPN: 4}) // evicts from set 0
	if _, ok := tb.Lookup(1, 1); !ok {
		t.Error("set 1 entry evicted by set 0 pressure")
	}
	in := 0
	for _, v := range []arch.VPN{0, 2, 4} {
		if _, ok := tb.Lookup(1, v); ok {
			in++
		}
	}
	if in != 2 {
		t.Errorf("set 0 holds %d of {0,2,4}, want 2", in)
	}
}

func TestInvalidate(t *testing.T) {
	tb := mustTLB(t, 8, 8)
	tb.Insert(Entry{ASID: 1, VPN: 5})
	if !tb.Invalidate(1, 5) {
		t.Error("invalidate missed present entry")
	}
	if tb.Invalidate(1, 5) {
		t.Error("invalidate hit absent entry")
	}
	if _, ok := tb.Lookup(1, 5); ok {
		t.Error("entry survived invalidation")
	}
}

func TestInvalidateASID(t *testing.T) {
	tb := mustTLB(t, 8, 8)
	for i := 0; i < 3; i++ {
		tb.Insert(Entry{ASID: 1, VPN: arch.VPN(i)})
	}
	tb.Insert(Entry{ASID: 2, VPN: 7})
	if n := tb.InvalidateASID(1); n != 3 {
		t.Errorf("invalidated %d, want 3", n)
	}
	if tb.Valid() != 1 {
		t.Errorf("valid = %d, want 1", tb.Valid())
	}
	if _, ok := tb.Lookup(2, 7); !ok {
		t.Error("other ASID lost its entry")
	}
}

func TestFlush(t *testing.T) {
	tb := mustTLB(t, 8, 4)
	for i := 0; i < 8; i++ {
		tb.Insert(Entry{ASID: 1, VPN: arch.VPN(i)})
	}
	tb.Flush()
	if tb.Valid() != 0 {
		t.Errorf("valid after flush = %d", tb.Valid())
	}
	if tb.Flushes.Value() != 1 {
		t.Error("flush not counted")
	}
}

// TestAgainstReferenceModel drives random TLB traffic against a map-based
// reference (with unlimited capacity): every TLB hit must agree with the
// reference, and misses may only happen for entries the reference also
// lacks or that capacity could have evicted.
func TestAgainstReferenceModel(t *testing.T) {
	tb := mustTLB(t, 16, 4)
	type key struct {
		asid arch.ASID
		vpn  arch.VPN
	}
	ref := make(map[key]Entry)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		k := key{asid: arch.ASID(rng.Intn(3)), vpn: arch.VPN(rng.Intn(64))}
		switch rng.Intn(4) {
		case 0, 1: // insert
			e := Entry{ASID: k.asid, VPN: k.vpn, PPN: arch.PPN(rng.Intn(1 << 20)), Perm: arch.Perm(rng.Intn(4))}
			tb.Insert(e)
			ref[k] = e
		case 2: // lookup
			got, hit := tb.Lookup(k.asid, k.vpn)
			want, known := ref[k]
			if hit && !known {
				t.Fatalf("TLB invented a translation for %+v", k)
			}
			if hit && got != want {
				t.Fatalf("TLB returned stale data for %+v: %+v vs %+v", k, got, want)
			}
		case 3: // invalidate
			tb.Invalidate(k.asid, k.vpn)
			delete(ref, k)
		}
	}
}
