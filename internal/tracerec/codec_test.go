package tracerec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/workload"
)

// sampleTrace exercises every feature of the format: multiple segments,
// huge and small mmaps, fault and image delta chains, read ops, payload
// and payload-free writes, compute gaps, and adversarial probes.
func sampleTrace() *Trace {
	return &Trace{
		Workload: "sample",
		Scale:    3,
		Segments: []Segment{
			{
				Name: "seg-a",
				Mmaps: []Mmap{
					{Base: 0x1000_0000, Size: 4 * arch.PageSize, Perm: arch.PermRW},
					{Base: 0x1040_0000, Size: arch.HugePageSize, Perm: arch.PermRead, Huge: true},
				},
				Faults: []arch.VPN{0x10000, 0x10003, 0x10001, 0x10400},
				Image: []Page{
					{VPN: 0x10000, Data: []byte{1, 2, 3}},
					{VPN: 0x10003, Data: bytes.Repeat([]byte{0xab}, arch.PageSize)},
				},
				Phases: []accel.Phase{
					{Name: "k1", Traces: []accel.Trace{
						{
							{Kind: arch.Read, Size: 32, Addr: 0x1000_0000, Compute: 7},
							{Kind: arch.Write, Size: 8, Addr: 0x1000_0020, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
							{Kind: arch.Write, Size: 4, Addr: 0x1000_0010}, // zero-fill store, no payload
						},
						{{Kind: arch.Read, Size: 16, Addr: 0x1040_0000, Compute: 65535}},
					}},
					{Name: "k2", Traces: []accel.Trace{{}}},
				},
				Probes: []Probe{
					{At: 1000, Kind: arch.Read, Addr: 0x80},
					{At: 2000, Kind: arch.Write, Addr: 0x40}, // negative delta
				},
			},
			{Name: "seg-b"}, // fully empty segment
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"sample": sampleTrace(),
		"empty":  {Workload: "empty"},
	} {
		blob, err := Encode(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, tr)
		}
	}
}

// TestRecordedRoundTrip: a real workload recording survives the codec
// losslessly (the checked-in-trace guarantee).
func TestRecordedRoundTrip(t *testing.T) {
	spec, _ := workload.ByName("pathfinder")
	tr, err := Record(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("recorded trace did not round-trip")
	}
	// Re-encoding the decode is byte-identical: the format is canonical.
	blob2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encode is not canonical")
	}
}

func TestHashChangesWithContent(t *testing.T) {
	a := sampleTrace()
	h1, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	a.Segments[0].Phases[0].Traces[0][0].Addr += 32
	h2, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("hash did not change with content")
	}
}

// TestEncodeRejectsMalformed: traces the format cannot represent fail at
// encode time instead of producing undecodable bytes.
func TestEncodeRejectsMalformed(t *testing.T) {
	bad := map[string]*Trace{
		"oversized op": {Segments: []Segment{{Phases: []accel.Phase{{Traces: []accel.Trace{
			{{Size: 64}}}}}}}},
		"payload size mismatch": {Segments: []Segment{{Phases: []accel.Phase{{Traces: []accel.Trace{
			{{Kind: arch.Write, Size: 8, Data: []byte{1}}}}}}}}},
		"bad probe kind": {Segments: []Segment{{Probes: []Probe{{Kind: 7}}}}},
		"oversized image page": {Segments: []Segment{{Image: []Page{
			{VPN: 1, Data: make([]byte, arch.PageSize+1)}}}}},
	}
	for name, tr := range bad {
		if _, err := Encode(tr); err == nil {
			t.Errorf("%s: encode should fail", name)
		}
	}
}

// TestDecodeFailsClosed: every corruption yields a typed *FormatError and
// never a partial trace.
func TestDecodeFailsClosed(t *testing.T) {
	blob, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:headerSize-1],
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"bad version": func() []byte {
			b := bytes.Clone(blob)
			b[4] = 0xff
			return b
		}(),
		"flipped body byte": func() []byte {
			b := bytes.Clone(blob)
			b[headerSize+10] ^= 0x40
			return b
		}(),
		"flipped hash byte": func() []byte {
			b := bytes.Clone(blob)
			b[6] ^= 0x01
			return b
		}(),
		"truncated body": blob[:len(blob)-5],
		"trailing bytes": append(bytes.Clone(blob), 0),
	}
	for name, b := range cases {
		tr, err := Decode(b)
		if err == nil {
			t.Errorf("%s: decode should fail", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
		if tr != nil {
			t.Errorf("%s: decode returned a partial trace alongside the error", name)
		}
	}
}

// TestDecodeBoundsHostileCounts: a forged body claiming enormous element
// counts must fail on the count check, not attempt the allocation. The
// body is re-hashed so it passes the container check and reaches the
// structural decoder.
func TestDecodeBoundsHostileCounts(t *testing.T) {
	var e enc
	e.str("hostile")
	e.uvarint(1)                // scale
	e.uvarint(0xffff_ffff_ffff) // segment count far beyond the body
	tr, err := Decode(reseal(e.buf))
	if err == nil || tr != nil {
		t.Fatal("hostile count decoded")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FormatError", err)
	}
}

func TestLoadCachesByPath(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sample" + Ext
	if err := WriteFile(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	a, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load did not cache: two decodes of the same path")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleTrace()) {
		t.Error("file round trip mismatch")
	}
}

func TestResolve(t *testing.T) {
	dir := t.TempDir()
	if got := Resolve(dir, "bfs"); got != dir+"/bfs"+Ext {
		t.Errorf("dir resolve = %q", got)
	}
	if got := Resolve(dir+"/x.bctrace", "bfs"); got != dir+"/x.bctrace" {
		t.Errorf("file resolve = %q", got)
	}
}
