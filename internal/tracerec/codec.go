package tracerec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
)

// The .bctrace container: a 4-byte magic, a little-endian format version,
// a SHA-256 content hash of the body, then the varint-encoded body. The
// hash makes recordings content-addressable (two traces are the same
// experiment input iff their hashes match) and turns silent corruption of
// checked-in files into a typed decode error.
//
// Body layout (all integers varint; addresses delta-encoded):
//
//	str workload | uvarint scale | uvarint #segments
//	per segment:
//	  str name
//	  uvarint #mmaps   | per mmap:  uvarint base, uvarint size, byte perm, byte huge
//	  uvarint #faults  | per fault: svarint VPN delta (previous fault's VPN)
//	  uvarint #pages   | per page:  svarint VPN delta, uvarint len, bytes
//	  uvarint #phases  | per phase: str name, uvarint #traces
//	                     per trace: uvarint #ops
//	                     per op:    byte flag (bit7 write, bit6 payload,
//	                                low 6 bits size), uvarint compute,
//	                                svarint addr delta, payload[size]
//	  uvarint #probes  | per probe: uvarint at, byte kind, svarint addr delta
//
// Delta chains reset per list (faults, image, each wavefront trace, the
// probe list), so a wavefront's typically-sequential addresses encode in
// one or two bytes each.
const (
	magic      = "BCTR"
	Version    = 1
	headerSize = 4 + 2 + sha256.Size
)

// FormatError is the typed, fail-closed decode failure: any malformed,
// truncated, version-skewed or corrupted input produces one (never a
// panic, never a partial trace).
type FormatError struct {
	// Offset is the byte position the failure was detected at.
	Offset int
	Msg    string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("tracerec: invalid trace at byte %d: %s", e.Offset, e.Msg)
}

const (
	flagWrite   = 0x80
	flagPayload = 0x40
	flagSizeMax = 0x3f
)

// enc is the append-only encoder.
type enc struct {
	buf []byte
	err error
}

func (e *enc) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("tracerec: cannot encode: "+format, args...)
	}
}

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) svarint(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) byte(b byte)      { e.buf = append(e.buf, b) }

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Encode serializes t. It validates the trace shape (op sizes must fit the
// flag byte, write payloads must match their op size, access kinds must be
// read or write) and fails rather than emit an undecodable file.
func Encode(t *Trace) ([]byte, error) {
	e := &enc{}
	e.str(t.Workload)
	e.uvarint(uint64(t.Scale))
	e.uvarint(uint64(len(t.Segments)))
	for si := range t.Segments {
		seg := &t.Segments[si]
		e.str(seg.Name)
		e.uvarint(uint64(len(seg.Mmaps)))
		for _, m := range seg.Mmaps {
			e.uvarint(uint64(m.Base))
			e.uvarint(m.Size)
			e.byte(byte(m.Perm))
			if m.Huge {
				e.byte(1)
			} else {
				e.byte(0)
			}
		}
		e.uvarint(uint64(len(seg.Faults)))
		prev := int64(0)
		for _, vpn := range seg.Faults {
			e.svarint(int64(vpn) - prev)
			prev = int64(vpn)
		}
		e.uvarint(uint64(len(seg.Image)))
		prev = 0
		for _, pg := range seg.Image {
			if len(pg.Data) > arch.PageSize {
				e.fail("image page %#x holds %d bytes", pg.VPN.Base(), len(pg.Data))
			}
			e.svarint(int64(pg.VPN) - prev)
			prev = int64(pg.VPN)
			e.uvarint(uint64(len(pg.Data)))
			e.buf = append(e.buf, pg.Data...)
		}
		e.uvarint(uint64(len(seg.Phases)))
		for _, ph := range seg.Phases {
			e.str(ph.Name)
			e.uvarint(uint64(len(ph.Traces)))
			for _, tr := range ph.Traces {
				e.uvarint(uint64(len(tr)))
				prevAddr := int64(0)
				for _, op := range tr {
					flag := byte(op.Size)
					if op.Size > flagSizeMax {
						e.fail("op size %d exceeds %d", op.Size, flagSizeMax)
					}
					switch op.Kind {
					case arch.Read:
					case arch.Write:
						flag |= flagWrite
					default:
						e.fail("op kind %v", op.Kind)
					}
					if op.Data != nil {
						if len(op.Data) != int(op.Size) {
							e.fail("op payload of %d bytes on a %d-byte op", len(op.Data), op.Size)
						}
						flag |= flagPayload
					}
					e.byte(flag)
					e.uvarint(uint64(op.Compute))
					e.svarint(int64(op.Addr) - prevAddr)
					prevAddr = int64(op.Addr)
					e.buf = append(e.buf, op.Data...)
				}
			}
		}
		e.uvarint(uint64(len(seg.Probes)))
		prev = 0
		for _, pr := range seg.Probes {
			if pr.Kind != arch.Read && pr.Kind != arch.Write {
				e.fail("probe kind %v", pr.Kind)
			}
			e.uvarint(uint64(pr.At))
			e.byte(byte(pr.Kind))
			e.svarint(int64(pr.Addr) - prev)
			prev = int64(pr.Addr)
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	sum := sha256.Sum256(e.buf)
	out := make([]byte, 0, headerSize+len(e.buf))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = append(out, sum[:]...)
	out = append(out, e.buf...)
	return out, nil
}

// Hash returns the trace's content hash — the SHA-256 of its encoded body,
// the same digest embedded in the file header.
func (t *Trace) Hash() ([sha256.Size]byte, error) {
	blob, err := Encode(t)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return sha256.Sum256(blob[headerSize:]), nil
}

// dec is the bounds-checked decoder. Every read validates against the
// remaining input and records a FormatError instead of advancing, so a
// decode of arbitrary bytes terminates with either a complete trace or a
// typed failure — never a panic, never unbounded allocation.
type dec struct {
	buf []byte
	off int
	err *FormatError
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &FormatError{Offset: d.off, Msg: fmt.Sprintf(format, args...)}
	}
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or oversized varint (%s)", what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or oversized varint (%s)", what)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated (%s)", what)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *dec) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail("truncated: %d bytes remain of %d-byte %s", d.remaining(), n, what)
		return nil
	}
	out := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// count reads a list length and bounds it by the remaining input (each
// element costs at least minBytes encoded bytes), so corrupt counts fail
// instead of driving huge allocations.
func (d *dec) count(minBytes int, what string) int {
	v := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/minBytes) {
		d.fail("%s count %d exceeds the %d bytes remaining", what, v, d.remaining())
		return 0
	}
	return int(v)
}

func (d *dec) str(what string) string {
	n := d.count(1, what+" length")
	return string(d.bytes(n, what))
}

// Decode parses an encoded trace, verifying the container (magic, version,
// content hash) and every structural invariant. Any problem yields a
// *FormatError; Decode never panics on any input.
func Decode(blob []byte) (t *Trace, err error) {
	// The decoder is written to fail explicitly on every malformed input;
	// this recover is the enforcement of that contract at the API boundary
	// (certified by FuzzTraceCodec): an escaped panic becomes a typed
	// error, never a crash in a caller.
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, &FormatError{Msg: fmt.Sprintf("decoder panic: %v", r)}
		}
	}()
	if len(blob) < headerSize {
		return nil, &FormatError{Offset: len(blob), Msg: "shorter than the container header"}
	}
	if string(blob[:4]) != magic {
		return nil, &FormatError{Msg: fmt.Sprintf("bad magic %q", blob[:4])}
	}
	if v := binary.LittleEndian.Uint16(blob[4:6]); v != Version {
		return nil, &FormatError{Offset: 4, Msg: fmt.Sprintf("format version %d, this build reads %d", v, Version)}
	}
	var want [sha256.Size]byte
	copy(want[:], blob[6:headerSize])
	body := blob[headerSize:]
	if got := sha256.Sum256(body); got != want {
		return nil, &FormatError{Offset: 6, Msg: "content hash mismatch — the trace is corrupt"}
	}

	d := &dec{buf: body}
	t = &Trace{}
	t.Workload = d.str("workload name")
	t.Scale = int(d.uvarint("scale"))
	nseg := d.count(1, "segment")
	for si := 0; si < nseg && d.err == nil; si++ {
		var seg Segment
		seg.Name = d.str("segment name")
		nmmap := d.count(4, "mmap")
		for i := 0; i < nmmap && d.err == nil; i++ {
			m := Mmap{
				Base: arch.Virt(d.uvarint("mmap base")),
				Size: d.uvarint("mmap size"),
				Perm: arch.Perm(d.byte("mmap perm")),
			}
			switch d.byte("mmap huge") {
			case 0:
			case 1:
				m.Huge = true
			default:
				d.fail("mmap huge flag")
			}
			seg.Mmaps = append(seg.Mmaps, m)
		}
		nfault := d.count(1, "fault")
		prev := int64(0)
		for i := 0; i < nfault && d.err == nil; i++ {
			prev += d.svarint("fault VPN delta")
			if prev < 0 {
				d.fail("fault VPN underflow")
			}
			seg.Faults = append(seg.Faults, arch.VPN(prev))
		}
		nimage := d.count(2, "image page")
		prev = 0
		for i := 0; i < nimage && d.err == nil; i++ {
			prev += d.svarint("image VPN delta")
			if prev < 0 {
				d.fail("image VPN underflow")
			}
			n := int(d.uvarint("image page length"))
			if n > arch.PageSize {
				d.fail("image page of %d bytes exceeds the page size", n)
			}
			seg.Image = append(seg.Image, Page{VPN: arch.VPN(prev), Data: d.bytes(n, "image page")})
		}
		nphase := d.count(2, "phase")
		for i := 0; i < nphase && d.err == nil; i++ {
			ph := accel.Phase{Name: d.str("phase name")}
			ntrace := d.count(1, "trace")
			for j := 0; j < ntrace && d.err == nil; j++ {
				nops := d.count(3, "op")
				tr := make(accel.Trace, 0, nops)
				prevAddr := int64(0)
				for k := 0; k < nops && d.err == nil; k++ {
					flag := d.byte("op flag")
					op := accel.Op{Size: flag & flagSizeMax}
					if flag&flagWrite != 0 {
						op.Kind = arch.Write
					}
					c := d.uvarint("op compute")
					if c > 0xffff {
						d.fail("op compute %d exceeds 16 bits", c)
					}
					op.Compute = uint16(c)
					prevAddr += d.svarint("op addr delta")
					if prevAddr < 0 {
						d.fail("op address underflow")
					}
					op.Addr = arch.Virt(prevAddr)
					if flag&flagPayload != 0 {
						op.Data = d.bytes(int(op.Size), "op payload")
					}
					tr = append(tr, op)
				}
				ph.Traces = append(ph.Traces, tr)
			}
			seg.Phases = append(seg.Phases, ph)
		}
		nprobe := d.count(3, "probe")
		prev = 0
		for i := 0; i < nprobe && d.err == nil; i++ {
			pr := Probe{At: sim.Time(d.uvarint("probe time"))}
			switch d.byte("probe kind") {
			case byte(arch.Read):
				pr.Kind = arch.Read
			case byte(arch.Write):
				pr.Kind = arch.Write
			default:
				d.fail("probe kind")
			}
			prev += d.svarint("probe addr delta")
			if prev < 0 {
				d.fail("probe address underflow")
			}
			pr.Addr = arch.Phys(prev)
			seg.Probes = append(seg.Probes, pr)
		}
		t.Segments = append(t.Segments, seg)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, &FormatError{Offset: d.off, Msg: fmt.Sprintf("%d trailing bytes after the trace", d.remaining())}
	}
	return t, nil
}
