package tracerec

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Ext is the conventional file extension for encoded traces.
const Ext = ".bctrace"

// WriteFile encodes t and writes it to path, creating parent directories.
func WriteFile(path string, t *Trace) error {
	blob, err := Encode(t)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, blob, 0o644)
}

// ReadFile reads and decodes (hash-verifying) the trace at path.
func ReadFile(path string) (*Trace, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

var cache sync.Map // path -> *Trace

// Load is ReadFile behind a process-wide cache, so a sweep running
// thousands of cells over the same recordings decodes each file once.
// Callers must treat the returned trace as immutable.
func Load(path string) (*Trace, error) {
	if t, ok := cache.Load(path); ok {
		return t.(*Trace), nil
	}
	t, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	got, _ := cache.LoadOrStore(path, t)
	return got.(*Trace), nil
}

// Resolve maps a -trace flag value to a concrete file: a directory means
// "the trace for workload name inside it"; anything else is the file
// itself.
func Resolve(path, name string) string {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return filepath.Join(path, name+Ext)
	}
	return path
}
