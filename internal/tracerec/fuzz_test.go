package tracerec

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"
)

// reseal wraps a raw body in a valid container (magic, version, fresh
// content hash), so structural-decoder inputs get past the integrity
// checks.
func reseal(body []byte) []byte {
	sum := sha256.Sum256(body)
	out := make([]byte, 0, headerSize+len(body))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = append(out, sum[:]...)
	return append(out, body...)
}

// FuzzTraceCodec is the differential fuzz target for the .bctrace codec:
//
//   - Decode must never panic, whatever the input (the API contract every
//     checked-in or user-supplied trace file relies on).
//   - When Decode accepts an input, re-encoding the result must decode to
//     a deeply-equal trace (decode ∘ encode = identity on the image of
//     decode) — the lossless round-trip guarantee, approached from the
//     byte side.
//
// Corrupt and truncated inputs must fail closed with a *FormatError; the
// seed corpus plants valid encodings, resealed structural mutants, and
// plain garbage to give coverage-guided mutation all three starting
// points.
func FuzzTraceCodec(f *testing.F) {
	valid, err := Encode(sampleTrace())
	if err != nil {
		f.Fatal(err)
	}
	empty, err := Encode(&Trace{Workload: "empty"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("BCTR"))
	f.Add(valid[:len(valid)-7])
	f.Add(reseal([]byte{0x01, 'x', 0x05, 0xff}))
	corrupt := bytes.Clone(valid)
	corrupt[headerSize+3] ^= 0xff
	f.Add(corrupt)
	var e enc
	e.str("hostile")
	e.uvarint(0)
	e.uvarint(0xffffffff)
	f.Add(reseal(e.buf))

	f.Fuzz(func(t *testing.T, blob []byte) {
		tr, err := Decode(blob) // must not panic
		if err != nil {
			if tr != nil {
				t.Fatal("Decode returned a trace alongside an error")
			}
			return
		}
		blob2, err := Encode(tr)
		if err != nil {
			t.Fatalf("accepted input re-encodes with error: %v", err)
		}
		tr2, err := Decode(blob2)
		if err != nil {
			t.Fatalf("re-encoded trace fails to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}
