// Package tracerec records and replays accelerator workloads as reference
// traces: the per-wavefront memory-operation streams a workload generator
// produced, plus exactly enough host-side context (address-space layout,
// first-touch order, post-build memory image) to rebuild a bit-identical
// process without re-running the generator.
//
// Only the reference trace matters to the timing model, but the timing
// model's inputs also include the *physical* layout demand paging produced:
// frame numbers follow allocation order, and allocation order follows the
// first-touch order of pages interleaved with page-table-node allocations.
// A recording therefore captures three things per segment:
//
//   - the mmap sequence (aligned size, permissions, huge-ness; the base
//     address is recorded for validation — it is a deterministic function
//     of the sequence),
//   - the fault order (the VPN of every demand-paging fault, in service
//     order — replaying faults in this order reproduces frame and
//     page-table allocation exactly), and
//   - the post-build memory image (per mapped page, trailing zeros
//     stripped). The workload generators run their algorithm functionally
//     at build time, so post-build memory already holds the final outputs;
//     the timed run re-applies the same payload bytes. One image therefore
//     serves both replay initialization and output verification.
//
// Replay builds a Program whose phases are the recorded traces and whose
// Verify compares final memory against the image — byte-identical results,
// without the generator, across every (mode, border design, shards)
// configuration.
//
// Traces serialize to a compact, versioned, content-hashed binary format
// (see codec.go) designed to be checked in.
package tracerec

import (
	"fmt"
	"sort"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/workload"
)

// Mmap is one recorded address-space reservation, post-alignment.
type Mmap struct {
	// Base is the address the reservation returned. Mmap bases are a
	// deterministic function of the reservation sequence; replay validates
	// rather than imposes them.
	Base arch.Virt
	Size uint64
	Perm arch.Perm
	Huge bool
}

// Page is one page of the recorded memory image, trailing zeros stripped.
type Page struct {
	VPN  arch.VPN
	Data []byte // len in [0, arch.PageSize]
}

// Probe is one adversarial border crossing: a fabricated physical-address
// request fired outside the translated path at a recorded simulated time
// (relative to its segment's launch). Probes are the trace vocabulary's
// explicit "flagged adversarial" references — everything else in a segment
// stays inside its granted ranges.
type Probe struct {
	At   sim.Time
	Kind arch.AccessKind
	Addr arch.Phys
}

// Segment is one process session: a short-lived address space, its replay
// recipe, the reference trace it runs, and any adversarial probes fired
// while it runs. Workload recordings have exactly one benign segment;
// synthetic traffic (multi-tenant churn) chains many.
type Segment struct {
	// Name labels the segment's process.
	Name string
	// Mmaps is the reservation sequence, in call order.
	Mmaps []Mmap
	// Faults is the first-touch order: one VPN per demand-paging fault.
	Faults []arch.VPN
	// Image is the post-build memory image in ascending VPN order. Empty
	// for synthetic segments (memory starts zeroed; no output check).
	Image []Page
	// Phases is the reference trace proper.
	Phases []accel.Phase
	// Probes are adversarial crossings fired while the segment runs.
	Probes []Probe
}

// Ops returns the segment's total memory-operation count.
func (s *Segment) Ops() uint64 {
	var n uint64
	for _, ph := range s.Phases {
		for _, t := range ph.Traces {
			n += uint64(len(t))
		}
	}
	return n
}

// Trace is one recorded (or generated) workload: a named, scaled sequence
// of process segments.
type Trace struct {
	// Workload names the source generator (a workload.Spec name or a
	// traffic shape).
	Workload string
	// Scale is the problem-size multiplier the recording ran at.
	Scale    int
	Segments []Segment
}

// Ops returns the total memory-operation count across all segments.
func (t *Trace) Ops() uint64 {
	var n uint64
	for i := range t.Segments {
		n += t.Segments[i].Ops()
	}
	return n
}

// ReplayError reports a divergence between a recorded segment and the
// process it is being replayed into — the recording and the host model no
// longer agree (a stale trace after an allocator change, or a corrupt
// recording that decoded cleanly but is self-inconsistent).
type ReplayError struct {
	Segment string
	Msg     string
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("tracerec: replaying %q: %s", e.Segment, e.Msg)
}

// recordMemBytes sizes the scratch machine a recording runs on. Frame
// numbers never enter the recording, so the scratch size only needs to fit
// the workload; the Table 3 capacity keeps recording and live builds
// failure-equivalent.
const recordMemBytes = 16 << 30

// Record executes spec's generator once on a scratch host and captures the
// full replay recipe: mmap sequence, fault order, post-build image, and
// the reference trace. The scratch host is discarded — recordings are
// position-independent (no frame numbers), so a trace recorded here
// replays onto any fresh process.
func Record(spec workload.Spec, scale int) (*Trace, error) {
	store, err := memory.NewStore(recordMemBytes)
	if err != nil {
		return nil, err
	}
	proc, err := hostos.New(store).NewProcess(spec.Name)
	if err != nil {
		return nil, err
	}
	seg := Segment{Name: spec.Name}
	proc.OnMmap = func(base arch.Virt, size uint64, perm arch.Perm, huge bool) {
		seg.Mmaps = append(seg.Mmaps, Mmap{Base: base, Size: size, Perm: perm, Huge: huge})
	}
	proc.OnFault = func(vpn arch.VPN) { seg.Faults = append(seg.Faults, vpn) }
	prog, err := spec.Build(proc, scale)
	if err != nil {
		return nil, err
	}
	proc.OnMmap, proc.OnFault = nil, nil
	seg.Phases = prog.Phases

	var vpns []arch.VPN
	proc.ForEachMapped(func(vpn arch.VPN, _ arch.PPN, _ arch.Perm) { vpns = append(vpns, vpn) })
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		data, err := proc.PageBytes(vpn)
		if err != nil {
			return nil, err
		}
		n := len(data)
		for n > 0 && data[n-1] == 0 {
			n--
		}
		seg.Image = append(seg.Image, Page{VPN: vpn, Data: data[:n:n]})
	}
	return &Trace{Workload: spec.Name, Scale: scale, Segments: []Segment{seg}}, nil
}

// BuildSegment replays seg's recipe into a fresh process: re-reserve the
// address space, re-fault pages in recorded order (reproducing frame and
// page-table allocation exactly), restore the memory image, and return the
// program to launch. When the segment carries an image, the program's
// Verify compares final memory to it byte-for-byte.
func BuildSegment(proc *hostos.Process, seg *Segment) (*accel.Program, error) {
	for i, m := range seg.Mmaps {
		var base arch.Virt
		var err error
		if m.Huge {
			base, err = proc.MmapHuge(m.Size, m.Perm)
		} else {
			base, err = proc.Mmap(m.Size, m.Perm)
		}
		if err != nil {
			return nil, &ReplayError{Segment: seg.Name, Msg: fmt.Sprintf("mmap %d: %v", i, err)}
		}
		if base != m.Base {
			return nil, &ReplayError{Segment: seg.Name,
				Msg: fmt.Sprintf("mmap %d landed at %#x, recorded %#x — layout diverged", i, base, m.Base)}
		}
	}
	for i, vpn := range seg.Faults {
		if err := proc.FaultPage(vpn); err != nil {
			return nil, &ReplayError{Segment: seg.Name, Msg: fmt.Sprintf("fault %d (%#x): %v", i, vpn.Base(), err)}
		}
	}
	for _, pg := range seg.Image {
		if err := proc.SetPageBytes(pg.VPN, pg.Data); err != nil {
			return nil, &ReplayError{Segment: seg.Name, Msg: fmt.Sprintf("image page %#x: %v", pg.VPN.Base(), err)}
		}
	}
	prog := &accel.Program{Name: seg.Name, Phases: seg.Phases}
	if len(seg.Image) > 0 {
		image := seg.Image
		prog.Verify = func(p *hostos.Process) error {
			return verifyImage(p, image)
		}
	}
	return prog, nil
}

// verifyImage compares final process memory against the recorded image.
// The timed run re-applies the recorded store payloads over the restored
// image, so a correct replay ends exactly where the build ended.
func verifyImage(p *hostos.Process, image []Page) error {
	for _, pg := range image {
		got, err := p.PageBytes(pg.VPN)
		if err != nil {
			return err
		}
		for i := range got {
			var want byte
			if i < len(pg.Data) {
				want = pg.Data[i]
			}
			if got[i] != want {
				return fmt.Errorf("tracerec: page %#x byte %d = %#x, want %#x",
					pg.VPN.Base(), i, got[i], want)
			}
		}
	}
	return nil
}

// ReplaySpec wraps a single-segment benign trace as a workload.Spec, so
// every harness entry point that takes a workload can run a recording
// instead. The Build ignores scale — the recording fixes it.
func ReplaySpec(t *Trace) (workload.Spec, error) {
	if len(t.Segments) != 1 {
		return workload.Spec{}, &ReplayError{Segment: t.Workload,
			Msg: fmt.Sprintf("ReplaySpec needs a single-segment trace, got %d segments", len(t.Segments))}
	}
	if len(t.Segments[0].Probes) != 0 {
		return workload.Spec{}, &ReplayError{Segment: t.Workload,
			Msg: "ReplaySpec cannot carry adversarial probes; use the harness trace runner"}
	}
	seg := &t.Segments[0]
	return workload.Spec{
		Name:        t.Workload,
		Description: fmt.Sprintf("replay of recorded trace (%d ops)", t.Ops()),
		Build: func(p *hostos.Process, _ int) (*accel.Program, error) {
			return BuildSegment(p, seg)
		},
	}, nil
}
