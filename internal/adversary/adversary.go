// Package adversary is the red-team arm of the simulator: seeded
// campaigns of deliberately malicious or buggy accelerator behavior driven
// against a fully-assembled system, with an independent shadow-memory
// oracle (see Oracle) auditing every border crossing. The paper's security
// argument (§2.1, §3.2.4) is that NOTHING accelerator-side needs to behave
// for host memory to stay safe; these campaigns try to falsify that.
//
// Everything is deterministic: an attack is a pure function of its seed,
// so a report reproduces byte-for-byte and a failing run is re-playable
// from the single seed printed with the failure.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// Env is one assembled system under attack, as the adversary needs to see
// it. The harness builds it from a full System and calls Attach; attacks
// only ever touch the accelerator-reachable surfaces (the border port, the
// hierarchy, the ATS) plus the OS in its trusted role.
type Env struct {
	Eng   *sim.Engine
	OS    *hostos.OS
	ATS   *ats.ATS
	BC    core.ProtectionArchitecture
	Hier  *accel.Sandboxed
	Port  *accel.BorderPort
	Dir   *coherence.Directory
	DRAM  *memory.DRAM
	Clock sim.Clock
	Name  string // accelerator name

	Oracle *Oracle
}

// Attach builds the shadow-memory oracle and splices it into env: it wraps
// the border checker (every crossing is audited, the real decision is
// forwarded unchanged), observes the ATS (grants widen the shadow), and
// listens for downgrades — registered after Border Control's listener, so
// downgrade-flush writebacks are judged under the old shadow — and for
// process completions (shadow revoked). selective must mirror the system's
// SelectiveFlush configuration.
func Attach(env *Env, selective bool) {
	o := NewOracle(env.BC, env.OS, env.Hier, env.Dir, env.Port.Owned, selective)
	env.Oracle = o
	env.Port.SetChecker(o)
	env.ATS.AddObserver(o)
	env.OS.AddShootdownListener(o)
	env.OS.AddCompletionListener(o)
	// Campaigns probe the border on purpose, repeatedly; the kill policy
	// would end the game after the first probe. Attribution is still
	// asserted, through the violation log.
	env.OS.KeepProcessOnViolation = true
}

// StartProcess creates a process and runs it on the accelerator: ATS
// activation, Figure 3a ProcessStart, and the oracle's shadow of both.
func (e *Env) StartProcess(name string) (*hostos.Process, error) {
	p, err := e.OS.NewProcess(name)
	if err != nil {
		return nil, err
	}
	e.ATS.Activate(e.Name, p.ASID())
	if err := e.BC.ProcessStart(p.ASID()); err != nil {
		return nil, err
	}
	e.Oracle.NoteStart(p.ASID())
	return p, nil
}

// Complete ends p's accelerator session: Figure 3e flush + table zero (the
// oracle hears about it through the OS completion notification).
func (e *Env) Complete(p *hostos.Process) {
	e.BC.ProcessComplete(e.Eng.Now(), p.ASID())
	e.ATS.Deactivate(e.Name, p.ASID())
}

// Context is what one attack run works with: the environment, its seeded
// randomness, and the attack-level failure log (protocol expectations the
// attack itself asserts, distinct from the oracle's invariants).
type Context struct {
	*Env
	Rand *rand.Rand

	probes   int
	blocked  int
	failures []string
}

// Failf records an attack-level failure.
func (c *Context) Failf(format string, args ...interface{}) {
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

// ExpectBlocked records one adversarial probe that MUST have been refused.
// reached reports whether the crossing got through.
func (c *Context) ExpectBlocked(reached bool, what string) {
	c.probes++
	if reached {
		c.Failf("%s reached memory", what)
		return
	}
	c.blocked++
}

// ExpectAllowed records a legitimate warm-up crossing that must pass (an
// attack proving the border fail-closed against everything proves nothing).
func (c *Context) ExpectAllowed(reached bool, what string) {
	c.probes++
	if !reached {
		c.Failf("%s was blocked (expected to pass)", what)
	}
}

// AttackResult is the outcome of one seeded attack run.
type AttackResult struct {
	Attack string
	Seed   int64
	Probes int // adversarial + warm-up crossings the attack asserted on
	// Blocked counts the adversarial probes the border refused; for a
	// holding sandbox it equals the number of ExpectBlocked calls.
	Blocked int
	// Failures are attack-level assertion failures (a probe that landed, a
	// warm-up that did not).
	Failures []string
	// OracleFailures are shadow-oracle invariant violations.
	OracleFailures []string
	// Checks/Allowed/Denied are the oracle's crossing counters.
	Checks, Allowed, Denied uint64
	// Assertions counts individual oracle invariant evaluations (shadow
	// window checks on allows, residue checks on audited denials).
	Assertions uint64
}

// Failed reports whether the run violated any expectation or invariant.
func (r AttackResult) Failed() bool {
	return len(r.Failures) > 0 || len(r.OracleFailures) > 0
}

// Attack is one named adversarial behavior.
type Attack struct {
	Name string
	// Desc is a one-line description for reports and docs.
	Desc string
	run  func(*Context)
}

// Attacks lists the campaign vocabulary in report order.
func Attacks() []Attack {
	return []Attack{
		{
			Name: "stale-tlb-replay",
			Desc: "replay revoked translations as raw physical requests after the TLB shootdown",
			run:  attackStaleTLBReplay,
		},
		{
			Name: "flush-ignore",
			Desc: "ignore the downgrade flush and write stale dirty blocks back later",
			run:  attackFlushIgnore,
		},
		{
			Name: "dma-downgrade-race",
			Desc: "keep streaming through a latched translation while the OS downgrades the page",
			run:  attackDMADowngradeRace,
		},
		{
			Name: "oob-probe",
			Desc: "probe physical addresses beyond memory and the protection table itself",
			run:  attackOOBProbe,
		},
		{
			Name: "cross-asid-replay",
			Desc: "replay a completed process's frames, under assorted wire ASIDs",
			run:  attackCrossASIDReplay,
		},
		{
			Name: "dirty-writeback-inject",
			Desc: "inject fabricated flush writebacks after the downgrade closed the window",
			run:  attackDirtyWritebackInject,
		},
	}
}

// AttackNames lists the names in report order.
func AttackNames() []string {
	var names []string
	for _, a := range Attacks() {
		names = append(names, a.Name)
	}
	return names
}

// Lookup resolves an attack by name.
func Lookup(name string) (Attack, bool) {
	for _, a := range Attacks() {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// Run executes the named attack against env with the given seed and
// collects both the attack's own assertions and the oracle's verdict. env
// must be freshly assembled and Attach'ed; one env serves one run.
func Run(env *Env, name string, seed int64) (AttackResult, error) {
	atk, ok := Lookup(name)
	if !ok {
		return AttackResult{}, fmt.Errorf("adversary: unknown attack %q (have %s)", name, strings.Join(AttackNames(), ", "))
	}
	c := &Context{Env: env, Rand: rand.New(rand.NewSource(seed))}
	atk.run(c)
	res := AttackResult{
		Attack:         name,
		Seed:           seed,
		Probes:         c.probes,
		Blocked:        c.blocked,
		Failures:       c.failures,
		OracleFailures: append([]string(nil), env.Oracle.Finish()...),
		Checks:         env.Oracle.Checks,
		Allowed:        env.Oracle.Allowed,
		Denied:         env.Oracle.Denied,
		Assertions:     env.Oracle.Assertions,
	}
	return res, nil
}

// Report is a full campaign sweep: every requested attack run at every
// campaign seed.
type Report struct {
	Seed      int64 // base seed; campaign i uses Seed+i
	Campaigns int
	Results   []AttackResult // campaign-major, attack-minor
	// Configs labels the per-campaign system configuration, parallel to
	// campaign index.
	Configs []string
}

// Stats registers the campaign's aggregate metrics in a stats registry and
// returns its snapshot, so adversary sweeps surface through the same
// "-stats-json" machinery as simulation runs. Names live under "adversary.".
func (r Report) Stats() stats.Snapshot {
	var (
		probes, blocked                  uint64
		checks, allowed, denied, asserts uint64
		breaches, atkFails, oracleFails  uint64
	)
	for _, res := range r.Results {
		probes += uint64(res.Probes)
		blocked += uint64(res.Blocked)
		checks += res.Checks
		allowed += res.Allowed
		denied += res.Denied
		asserts += res.Assertions
		atkFails += uint64(len(res.Failures))
		oracleFails += uint64(len(res.OracleFailures))
		if res.Failed() {
			breaches++
		}
	}
	reg := stats.NewRegistry()
	s := reg.Scope("adversary")
	s.CounterFunc("campaigns", func() uint64 { return uint64(r.Campaigns) })
	s.CounterFunc("attacks_run", func() uint64 { return uint64(len(r.Results)) })
	s.CounterFunc("probes", func() uint64 { return probes })
	s.CounterFunc("probes_blocked", func() uint64 { return blocked })
	s.CounterFunc("crossings_audited", func() uint64 { return checks })
	s.CounterFunc("crossings_allowed", func() uint64 { return allowed })
	s.CounterFunc("crossings_denied", func() uint64 { return denied })
	s.CounterFunc("oracle_assertions", func() uint64 { return asserts })
	s.CounterFunc("breaches", func() uint64 { return breaches })
	s.CounterFunc("attack_failures", func() uint64 { return atkFails })
	s.CounterFunc("oracle_failures", func() uint64 { return oracleFails })
	return reg.Snapshot()
}

// Failed reports whether any run in the report failed.
func (r Report) Failed() bool {
	for _, res := range r.Results {
		if res.Failed() {
			return true
		}
	}
	return false
}

// Render formats the report deterministically (same seed, same bytes).
func Render(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adversary campaigns: base seed %d, %d campaign(s)\n", r.Seed, r.Campaigns)
	perCampaign := len(r.Results) / max(1, r.Campaigns)
	for i := 0; i < r.Campaigns; i++ {
		cfg := ""
		if i < len(r.Configs) {
			cfg = " (" + r.Configs[i] + ")"
		}
		fmt.Fprintf(&b, "campaign %d, seed %d%s:\n", i, r.Seed+int64(i), cfg)
		for _, res := range r.Results[i*perCampaign : (i+1)*perCampaign] {
			verdict := "HELD"
			if res.Failed() {
				verdict = "BREACHED"
			}
			fmt.Fprintf(&b, "  %-24s probes %3d  blocked %3d  crossings %4d  %s\n",
				res.Attack, res.Probes, res.Blocked, res.Checks, verdict)
			for _, f := range res.Failures {
				fmt.Fprintf(&b, "    attack: %s\n", f)
			}
			for _, f := range res.OracleFailures {
				fmt.Fprintf(&b, "    oracle: %s\n", f)
			}
		}
	}
	if r.Failed() {
		b.WriteString("RESULT: SANDBOX BREACHED — reproduce any line above with its campaign seed:\n")
		seen := map[string]bool{}
		var repro []string
		for _, res := range r.Results {
			if res.Failed() {
				line := fmt.Sprintf("  bctool adversary -seed %d -campaigns 1 -attacks %s", res.Seed, res.Attack)
				if !seen[line] {
					seen[line] = true
					repro = append(repro, line)
				}
			}
		}
		sort.Strings(repro)
		b.WriteString(strings.Join(repro, "\n"))
		b.WriteString("\n")
	} else {
		fmt.Fprintf(&b, "RESULT: sandbox held across %d run(s); all oracle invariants intact\n", len(r.Results))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
