package adversary

import (
	"strings"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// rigged is an inner checker with a fixed verdict, for driving the oracle's
// failure paths without a real (and correct) Border Control in the way.
type rigged struct{ allow bool }

func (r rigged) Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) core.Decision {
	return core.Decision{Allowed: r.allow, Done: at}
}

func newTestOracle(t *testing.T, inner core.Checker) (*Oracle, *hostos.OS) {
	t.Helper()
	store, err := memory.NewStore(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	return NewOracle(inner, osm, nil, nil, nil, true), osm
}

// The whole harness is only as good as the oracle's ability to notice an
// escape: an allowed crossing the shadow map cannot justify must fail.
func TestOracleFlagsUnjustifiedAllow(t *testing.T) {
	o, _ := newTestOracle(t, rigged{allow: true})
	o.NoteStart(1)

	// A grant the OS never made: permissive hardware lets it through.
	dec := o.Check(0, 1, 0x2000, arch.Write)
	if !dec.Allowed {
		t.Fatal("oracle altered the inner decision")
	}
	fails := o.Finish()
	if len(fails) != 1 || !strings.Contains(fails[0], "escape") {
		t.Fatalf("want one escape failure, got %q", fails)
	}

	// With the window actually granted, the same crossing is clean.
	o2, _ := newTestOracle(t, rigged{allow: true})
	o2.NoteStart(1)
	o2.OnTranslation(0, 1, arch.Virt(0x2000).PageOf(), arch.Phys(0x2000).PageOf(), arch.PermRW, false)
	o2.Check(0, 1, 0x2000, arch.Write)
	if fails := o2.Finish(); len(fails) != 0 {
		t.Fatalf("granted crossing flagged: %q", fails)
	}
}

// An allow beyond the end of physical memory is an escape even if some
// shadow entry matched.
func TestOracleFlagsOutOfBoundsAllow(t *testing.T) {
	o, osm := newTestOracle(t, rigged{allow: true})
	o.NoteStart(1)
	oob := arch.Phys(osm.Store().Size()) + 4*arch.BlockSize
	o.Check(0, 1, oob, arch.Read)
	fails := o.Finish()
	if len(fails) != 1 || !strings.Contains(fails[0], "beyond physical memory") {
		t.Fatalf("want one out-of-bounds escape, got %q", fails)
	}
}

// A blocked write whose target bytes change anyway is residue: the denial
// snapshot is compared at the next oracle event (here, Finish).
func TestOracleFlagsDeniedWriteResidue(t *testing.T) {
	o, osm := newTestOracle(t, rigged{allow: false})
	o.NoteStart(1)
	addr := arch.Phys(0x4000)
	if dec := o.Check(0, 1, addr, arch.Write); dec.Allowed {
		t.Fatal("rigged denial leaked through")
	}
	// Memory changes after the denial — as if the blocked write landed.
	osm.Store().Write(addr, []byte("tampered"))
	fails := o.Finish()
	if len(fails) != 1 || !strings.Contains(fails[0], "changed host memory") {
		t.Fatalf("want one residue failure, got %q", fails)
	}

	// Control: denial with memory left alone is clean.
	o2, _ := newTestOracle(t, rigged{allow: false})
	o2.NoteStart(1)
	o2.Check(0, 1, addr, arch.Write)
	if fails := o2.Finish(); len(fails) != 0 {
		t.Fatalf("clean denial flagged: %q", fails)
	}
}

// Downgrades must narrow the shadow window: a post-downgrade allow at the
// old permission is an escape.
func TestOracleShadowFollowsDowngrade(t *testing.T) {
	o, _ := newTestOracle(t, rigged{allow: true})
	o.NoteStart(1)
	vpn, ppn := arch.Virt(0x3000).PageOf(), arch.Phys(0x5000).PageOf()
	o.OnTranslation(0, 1, vpn, ppn, arch.PermRW, false)
	o.OnDowngrade(hostos.Downgrade{ASID: 1, VPN: vpn, PPN: ppn, Old: arch.PermRW, New: arch.PermRead})
	o.Check(0, 1, ppn.Base(), arch.Write) // rigged hardware still allows
	fails := o.Finish()
	if len(fails) != 1 || !strings.Contains(fails[0], "escape") {
		t.Fatalf("want one post-downgrade escape, got %q", fails)
	}
}

// Completion revokes everything, for every process sharing the table.
func TestOracleShadowFollowsCompletion(t *testing.T) {
	o, _ := newTestOracle(t, rigged{allow: true})
	o.NoteStart(1)
	o.NoteStart(2)
	ppn := arch.Phys(0x6000).PageOf()
	o.OnTranslation(0, 2, arch.Virt(0x6000).PageOf(), ppn, arch.PermRW, false)
	o.OnProcessComplete(1) // someone ELSE completes; shared table still zeroes
	o.Check(0, 2, ppn.Base(), arch.Read)
	if fails := o.Finish(); len(fails) != 1 {
		t.Fatalf("want one post-completion escape, got %q", fails)
	}
}

func TestLookupCoversRegistry(t *testing.T) {
	names := AttackNames()
	if len(names) != 6 {
		t.Fatalf("attack vocabulary has %d entries, want 6", len(names))
	}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Lookup(%q) failed", n)
		}
	}
	if _, ok := Lookup("no-such-attack"); ok {
		t.Fatal("Lookup accepted an unknown attack")
	}
}

// A breached report must end with exactly one reproducing command per
// failing attack, and the held report must say so plainly.
func TestRenderReproLine(t *testing.T) {
	rep := Report{
		Seed:      40,
		Campaigns: 2,
		Configs:   []string{"cfg-a", "cfg-b"},
		Results: []AttackResult{
			{Attack: "oob-probe", Seed: 40, Probes: 3, Blocked: 3},
			{Attack: "oob-probe", Seed: 41, Probes: 3, Blocked: 2,
				Failures: []string{"probe of 0x1000 reached memory"}},
		},
	}
	if !rep.Failed() {
		t.Fatal("report with a failure not marked failed")
	}
	out := Render(rep)
	want := "bctool adversary -seed 41 -campaigns 1 -attacks oob-probe"
	if !strings.Contains(out, want) {
		t.Fatalf("breached render lacks repro command %q:\n%s", want, out)
	}
	if strings.Contains(out, "-seed 40 -campaigns 1") {
		t.Fatalf("held campaign got a repro line:\n%s", out)
	}

	held := Report{Seed: 1, Campaigns: 1, Configs: []string{"cfg"},
		Results: []AttackResult{{Attack: "oob-probe", Seed: 1, Probes: 3, Blocked: 3}}}
	if Render(held) == out || !strings.Contains(Render(held), "sandbox held") {
		t.Fatal("held report rendered wrong")
	}
}
