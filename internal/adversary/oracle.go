package adversary

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/sim"
)

// Oracle is the end-to-end shadow-memory safety oracle. It wraps the
// system's real border checker and mirrors every OS-visible permission
// transition — translations widen, downgrades narrow, completions revoke —
// into an independent shadow map, then audits every border crossing
// against three invariants:
//
//	(a) no crossing is allowed beyond the most-permissive window the ATS
//	    granted for that page in its current epoch (an allow the shadow
//	    cannot justify is a sandbox escape);
//	(b) a blocked write leaves host memory byte-identical;
//	(c) a blocked request leaves no new accelerator-side state behind —
//	    no fresh cache line, no dirty bit, no coherence ownership.
//
// The oracle is pure observation: it forwards the inner checker's decision
// unchanged, so attaching it never alters simulated behavior or timing.
//
// Registration order matters and is handled by Attach: the oracle's
// shootdown listener runs AFTER Border Control's, so the writebacks of a
// downgrade's synchronous flush are judged under the OLD shadow
// permissions — exactly the Figure 3d ordering the protocol promises.
type Oracle struct {
	inner     core.Checker
	os        *hostos.OS
	hier      *accel.Sandboxed // nil for cacheless engines: invariant (c) vacuous
	dir       *coherence.Directory
	owned     func(arch.Phys) bool
	bound     arch.Phys
	selective bool

	shadow map[arch.PPN]arch.Perm
	active map[arch.ASID]bool

	// pending holds denied crossings whose after-effects (invariants b and
	// c) are verified lazily: any accelerator-side mutation must itself
	// cross the border, so checking at the next oracle event — before that
	// event's own effects — observes the state the denied request left.
	pending  []denied
	failures []string

	Checks  uint64
	Allowed uint64
	Denied  uint64
	// Assertions counts individual invariant evaluations: every shadow
	// window/bounds comparison on an allow and every residue comparison
	// when a denial is audited. It measures how much scrutiny a campaign
	// actually applied, not just how many crossings it made.
	Assertions uint64
}

// denied is one blocked crossing awaiting its invariant audit: the state
// snapshot taken at denial time, to be compared at the next oracle event.
type denied struct {
	addr arch.Phys
	kind arch.AccessKind
	asid arch.ASID
	at   sim.Time

	inBounds bool
	was      [arch.BlockSize]byte // memory bytes at denial (writes, in bounds)

	l2      bool // block already (legally) present in the L2
	dirty   bool
	owned   bool
	sharers int
	l1s     int // number of L1s holding the block
}

// NewOracle wraps inner. bound is the physical-memory size; selective
// mirrors the Border Control SelectiveFlush configuration so downgrade
// shadow updates match the table's (per-page vs zero-everything) variant.
func NewOracle(inner core.Checker, osm *hostos.OS, hier *accel.Sandboxed, dir *coherence.Directory, owned func(arch.Phys) bool, selective bool) *Oracle {
	return &Oracle{
		inner:     inner,
		os:        osm,
		hier:      hier,
		dir:       dir,
		owned:     owned,
		bound:     arch.Phys(osm.Store().Size()),
		selective: selective,
		shadow:    make(map[arch.PPN]arch.Perm),
		active:    make(map[arch.ASID]bool),
	}
}

func (o *Oracle) failf(format string, args ...interface{}) {
	o.failures = append(o.failures, fmt.Sprintf(format, args...))
}

// NoteStart records that asid runs on the guarded accelerator, so its
// translations widen the shadow map (mirroring Figure 3a's ProcessStart).
func (o *Oracle) NoteStart(asid arch.ASID) { o.active[asid] = true }

// Check implements core.Checker: audit, then forward the real decision.
func (o *Oracle) Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) core.Decision {
	o.settle()
	dec := o.inner.Check(at, asid, addr, kind)
	o.Checks++
	if dec.Allowed {
		o.Allowed++
		o.Assertions += 2 // bounds + shadow-window
		ppn := addr.PageOf()
		if addr >= o.bound {
			o.failf("escape: %v of %#x allowed beyond physical memory (asid %d, t=%d)", kind, addr, asid, at)
		} else if !o.shadow[ppn].Allows(kind.Need()) {
			o.failf("escape: %v of %#x allowed; ATS window for page %#x (epoch %d) is %v (asid %d, t=%d)",
				kind, addr, ppn, o.os.PageEpoch(ppn), o.shadow[ppn], asid, at)
		}
		return dec
	}
	o.Denied++
	d := denied{
		addr:     addr.BlockOf(),
		kind:     kind,
		asid:     asid,
		at:       at,
		inBounds: addr < o.bound,
	}
	if d.inBounds && kind == arch.Write {
		o.os.Store().ReadInto(d.addr, d.was[:])
	}
	if o.hier != nil {
		d.l2 = o.hier.L2().Contains(d.addr)
		d.dirty = o.hier.L2().IsDirty(d.addr)
		for cu := 0; cu < o.hier.CUs(); cu++ {
			if o.hier.L1(cu).Contains(d.addr) {
				d.l1s++
			}
		}
	}
	if o.dir != nil {
		d.owned = o.owned(d.addr)
		d.sharers = o.dir.SharersOf(d.addr)
	}
	o.pending = append(o.pending, d)
	return dec
}

// settle audits all pending denials against the current system state. Any
// state that appeared since the denial was recorded — memory bytes, cache
// lines, dirty bits, coherence entries — is residue of a blocked request.
func (o *Oracle) settle() {
	for _, d := range o.pending {
		o.audit(d)
	}
	o.pending = o.pending[:0]
}

func (o *Oracle) audit(d denied) {
	if d.inBounds && d.kind == arch.Write {
		o.Assertions++
		var now [arch.BlockSize]byte
		o.os.Store().ReadInto(d.addr, now[:])
		if now != d.was {
			o.failf("residue: blocked write of %#x (asid %d, t=%d) changed host memory", d.addr, d.asid, d.at)
		}
	}
	if o.hier != nil {
		o.Assertions += 3 // L2 line, L2 dirty bit, L1 population
		if !d.l2 && o.hier.L2().Contains(d.addr) {
			o.failf("residue: blocked %v of %#x (asid %d, t=%d) left an L2 line", d.kind, d.addr, d.asid, d.at)
		}
		if !d.dirty && o.hier.L2().IsDirty(d.addr) {
			o.failf("residue: blocked %v of %#x (asid %d, t=%d) left the L2 block dirty", d.kind, d.addr, d.asid, d.at)
		}
		l1s := 0
		for cu := 0; cu < o.hier.CUs(); cu++ {
			if o.hier.L1(cu).Contains(d.addr) {
				l1s++
			}
		}
		if l1s > d.l1s {
			o.failf("residue: blocked %v of %#x (asid %d, t=%d) left %d new L1 line(s)", d.kind, d.addr, d.asid, d.at, l1s-d.l1s)
		}
	}
	if o.dir != nil {
		o.Assertions += 2 // ownership, sharer set
		if !d.owned && o.owned(d.addr) {
			o.failf("residue: blocked %v of %#x (asid %d, t=%d) left coherence ownership", d.kind, d.addr, d.asid, d.at)
		}
		if n := o.dir.SharersOf(d.addr); n > d.sharers {
			o.failf("residue: blocked %v of %#x (asid %d, t=%d) grew the sharer set %d -> %d", d.kind, d.addr, d.asid, d.at, d.sharers, n)
		}
	}
}

// OnTranslation implements ats.Observer: mirror the Figure 3b widen-only
// insertion, including the huge-page fan-out, for active processes.
func (o *Oracle) OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	o.settle()
	if !o.active[asid] {
		return
	}
	if huge {
		head := ppn - ppn%arch.PagesPerHugePage
		for i := arch.PPN(0); i < arch.PagesPerHugePage; i++ {
			o.shadow[head+i] |= perm.Border()
		}
		return
	}
	o.shadow[ppn] |= perm.Border()
}

// OnDowngrade implements hostos.ShootdownListener: mirror the Figure 3d
// narrowing. Attach registers this AFTER Border Control's listener, so the
// shadow still shows the old window while BC's synchronous flush pushes
// writebacks across the border.
func (o *Oracle) OnDowngrade(d hostos.Downgrade) {
	o.settle()
	if !o.active[d.ASID] {
		return
	}
	old := o.shadow[d.PPN]
	if old == arch.PermNone && d.New.Border() == arch.PermNone {
		return
	}
	if old.CanWrite() && !o.selective {
		// Full-flush variant: the whole table is zeroed.
		o.shadow = make(map[arch.PPN]arch.Perm)
		return
	}
	if p := d.New.Border(); p == arch.PermNone {
		delete(o.shadow, d.PPN)
	} else {
		o.shadow[d.PPN] = p
	}
}

// OnProcessComplete implements hostos.CompletionListener: Figure 3e zeroes
// the shared table, so the union window collapses for everyone.
func (o *Oracle) OnProcessComplete(asid arch.ASID) {
	o.settle()
	delete(o.active, asid)
	o.shadow = make(map[arch.PPN]arch.Perm)
}

// Finish audits any trailing denials and returns all invariant failures in
// the order they were detected.
func (o *Oracle) Finish() []string {
	o.settle()
	return o.failures
}
