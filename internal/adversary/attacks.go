package adversary

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/sim"
)

// blockData derives a deterministic block-sized payload from the context's
// seeded randomness; tag marks the first byte so residue is recognizable.
func (c *Context) blockData(tag byte) *[arch.BlockSize]byte {
	var b [arch.BlockSize]byte
	c.Rand.Read(b[:])
	b[0] = tag
	return &b
}

// grant maps RW pages into p and pulls each translation through the ATS
// with write intent, which is the Figure 3b insertion point: after this the
// border window for the returned frames is open for read and write.
func (c *Context) grant(p *hostos.Process, pages int) (arch.Virt, []arch.Phys, bool) {
	v, err := p.Mmap(uint64(pages)*arch.PageSize, arch.PermRW)
	if err != nil {
		c.Failf("mmap: %v", err)
		return 0, nil, false
	}
	var pas []arch.Phys
	for i := 0; i < pages; i++ {
		res, err := c.ATS.Translate(c.Name, p.ASID(), v+arch.Virt(i*arch.PageSize), arch.Write, c.Eng.Now())
		if err != nil {
			c.Failf("warm-up translation: %v", err)
			return 0, nil, false
		}
		pas = append(pas, res.Entry.PPN.Base())
	}
	return v, pas, true
}

// start launches a process on the accelerator or records a failure.
func (c *Context) start(name string) (*hostos.Process, bool) {
	p, err := c.StartProcess(name)
	if err != nil {
		c.Failf("process start: %v", err)
		return nil, false
	}
	return p, true
}

// attackStaleTLBReplay is the classic escape of paper §2.1: an accelerator
// whose private TLB ignores the shootdown keeps issuing raw physical
// addresses it learned before the OS revoked them. The trojan here is the
// distilled form — it remembers the frames and replays them directly.
func attackStaleTLBReplay(c *Context) {
	p, ok := c.start("victim")
	if !ok {
		return
	}
	const pages = 4
	v, pas, ok := c.grant(p, pages)
	if !ok {
		return
	}
	tr := accel.NewTrojan(c.Port)
	tr.ASID = p.ASID()

	// Baseline: the window really is open.
	c.ExpectAllowed(tr.TryWrite(c.Eng.Now(), pas[0], *c.blockData(0xA1)), "write inside the granted window")

	// The OS pulls write permission; the trojan replays its remembered
	// frames at random block offsets anyway.
	if _, err := c.OS.Protect(p, v, pages*arch.PageSize, arch.PermRead); err != nil {
		c.Failf("protect: %v", err)
		return
	}
	blocksPerPage := int(arch.PageSize / arch.BlockSize)
	for i, n := 0, 3+c.Rand.Intn(5); i < n; i++ {
		pa := pas[c.Rand.Intn(pages)] + arch.Phys(c.Rand.Intn(blocksPerPage))*arch.BlockSize
		c.ExpectBlocked(tr.TryWrite(c.Eng.Now(), pa, *c.blockData(0xA2)),
			fmt.Sprintf("stale-TLB write of %#x after write revocation", pa))
	}

	// The OS unmaps the buffer entirely; the frames go back to the
	// allocator, so even reads through the stale translations must die.
	if err := c.OS.Unmap(p, v, pages*arch.PageSize); err != nil {
		c.Failf("unmap: %v", err)
		return
	}
	for i, n := 0, 3+c.Rand.Intn(5); i < n; i++ {
		pa := pas[c.Rand.Intn(pages)] + arch.Phys(c.Rand.Intn(blocksPerPage))*arch.BlockSize
		_, reached := tr.TryRead(c.Eng.Now(), pa)
		c.ExpectBlocked(reached, fmt.Sprintf("stale-TLB read of %#x after unmap", pa))
	}
}

// deafHier is an accelerator that ignores every flush request from Border
// Control — both the selective page flush and the full-cache flush — while
// inheriting everything else. Paper §3.2.4: even then there is no security
// vulnerability, only the accelerator's own data loss.
type deafHier struct{ *accel.Sandboxed }

func (d deafHier) FlushPage(at sim.Time, ppn arch.PPN) sim.Time { return at }
func (d deafHier) FlushAll(at sim.Time) sim.Time                { return at }

// attackFlushIgnore dirties a block legitimately, goes deaf to the
// downgrade flush so the dirty line survives the revocation, then writes it
// back long after the window closed. The writeback must be blocked and host
// memory must keep its pre-store contents.
func attackFlushIgnore(c *Context) {
	p, ok := c.start("victim")
	if !ok {
		return
	}
	v, pas, ok := c.grant(p, 1)
	if !ok {
		return
	}
	pa := pas[0]

	// Legitimate store while writable: dirties the caches, not memory.
	payload := c.blockData(0xB2)
	if _, err := c.Hier.Access(c.Eng.Now(), 0, p.ASID(), accel.Op{Kind: arch.Write, Size: 32, Addr: v, Data: payload[:32]}); err != nil {
		c.Failf("legitimate store: %v", err)
		return
	}
	var before [arch.BlockSize]byte
	c.OS.Store().ReadInto(pa, before[:])

	// The accelerator stops honoring flushes, then the OS revokes write
	// permission: the downgrade's flush request is silently dropped and the
	// stale dirty block stays behind.
	c.BC.SetAccelerator(deafHier{c.Hier})
	if _, err := c.OS.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
		c.Failf("protect: %v", err)
		return
	}

	// Much later the engine finally writes its caches back — under the old,
	// revoked permission. The border must stop every one of those blocks.
	c.Hier.FlushAll(c.Eng.Now())
	var after [arch.BlockSize]byte
	c.OS.Store().ReadInto(pa, after[:])
	c.ExpectBlocked(after != before, "stale dirty writeback after ignored downgrade flush")
	c.BC.SetAccelerator(c.Hier)
}

// attackDMADowngradeRace is the in-flight DMA race of §3.2.4: a streaming
// engine latches its translations once and keeps transferring while the OS
// downgrades the destination mid-stream. The stale physical writes must be
// stopped at the border, aborting the stream.
func attackDMADowngradeRace(c *Context) {
	p, ok := c.start("victim")
	if !ok {
		return
	}
	const blocks = 8
	size := uint64(blocks * arch.BlockSize)
	src, err := p.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		c.Failf("mmap src: %v", err)
		return
	}
	dst, err := p.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		c.Failf("mmap dst: %v", err)
		return
	}
	seed := make([]byte, size)
	c.Rand.Read(seed)
	if err := p.Write(src, seed); err != nil {
		c.Failf("seed src: %v", err)
		return
	}

	s, err := accel.NewStreamer(accel.StreamerConfig{Name: c.Name, Clock: c.Clock, Channels: 2}, c.Eng, c.ATS, c.Port)
	if err != nil {
		c.Failf("streamer: %v", err)
		return
	}
	s.Misbehave.StaleTranslations = true

	// First pass is legal and latches the translations.
	if err := s.Launch([]*accel.StreamJob{{ASID: p.ASID(), Src: src, Dst: dst, Len: size}}); err != nil {
		c.Failf("launch: %v", err)
		return
	}
	c.Eng.Run()
	c.ExpectAllowed(s.Finished() && s.Err() == nil, "legitimate DMA copy")

	// The OS pulls write permission on the destination; the engine replays
	// the transfer through its latched physical addresses.
	if _, err := c.OS.Protect(p, dst, arch.PageSize, arch.PermRead); err != nil {
		c.Failf("protect: %v", err)
		return
	}
	if err := s.Launch([]*accel.StreamJob{{ASID: p.ASID(), Src: src, Dst: dst, Len: size}}); err != nil {
		c.Failf("relaunch: %v", err)
		return
	}
	c.Eng.Run()
	c.ExpectBlocked(s.Err() == nil, "stale-translation DMA into the downgraded destination")
}

// attackOOBProbe fires raw physical addresses that were never granted to
// anyone: beyond the end of physical memory, and random in-bounds frames
// belonging to the OS, to page tables, or to nobody. Fail-closed means all
// of them bounce.
func attackOOBProbe(c *Context) {
	p, ok := c.start("victim")
	if !ok {
		return
	}
	_, pas, ok := c.grant(p, 1)
	if !ok {
		return
	}
	granted := pas[0]
	tr := accel.NewTrojan(c.Port)
	tr.ASID = p.ASID()
	c.ExpectAllowed(tr.TryWrite(c.Eng.Now(), granted, *c.blockData(0xC3)), "write inside the granted frame")

	bound := arch.Phys(c.OS.Store().Size())
	for i, n := 0, 4+c.Rand.Intn(4); i < n; i++ {
		pa := (bound + arch.Phys(c.Rand.Int63n(1<<40))).BlockOf()
		_, reached := tr.TryRead(c.Eng.Now(), pa)
		c.ExpectBlocked(reached, fmt.Sprintf("read beyond physical memory at %#x", pa))
		c.ExpectBlocked(tr.TryWrite(c.Eng.Now(), pa, *c.blockData(0xC4)),
			fmt.Sprintf("write beyond physical memory at %#x", pa))
	}
	for i, n := 0, 4+c.Rand.Intn(4); i < n; i++ {
		pa := arch.Phys(c.Rand.Int63n(int64(bound))).BlockOf()
		if pa.PageOf() == granted.PageOf() {
			continue // the one frame legitimately in the window
		}
		_, reached := tr.TryRead(c.Eng.Now(), pa)
		c.ExpectBlocked(reached, fmt.Sprintf("probe of ungranted frame %#x", pa))
	}
}

// attackCrossASIDReplay replays a completed process's frames under assorted
// wire identities — the dead process's own ASID, a live bystander's, and a
// fabricated one. Figure 3e's table zeroing must block them all, and every
// violation must be attributed to the identity on the wire, never to the
// bystander's good name via the single-active-process fallback.
func attackCrossASIDReplay(c *Context) {
	a, ok := c.start("victim-a")
	if !ok {
		return
	}
	b, ok := c.start("bystander-b")
	if !ok {
		return
	}
	_, pas, ok := c.grant(a, 1)
	if !ok {
		return
	}
	paA := pas[0]
	tr := accel.NewTrojan(c.Port)
	tr.ASID = a.ASID()
	c.ExpectAllowed(tr.TryWrite(c.Eng.Now(), paA, *c.blockData(0xD4)), "write while the victim still runs")

	// Victim finishes; its frames leave the table (and the allocator may
	// hand them to anyone next).
	c.Complete(a)

	for _, wire := range []arch.ASID{a.ASID(), b.ASID(), 9999} {
		tr.ASID = wire
		before := len(c.OS.Violations)
		_, reached := tr.TryRead(c.Eng.Now(), paA)
		c.ExpectBlocked(reached, fmt.Sprintf("post-completion read under wire asid %d", wire))
		c.ExpectBlocked(tr.TryWrite(c.Eng.Now(), paA, *c.blockData(0xD5)),
			fmt.Sprintf("post-completion write under wire asid %d", wire))
		for _, viol := range c.OS.Violations[before:] {
			if viol.ASID != wire {
				c.Failf("violation attributed to asid %d, want the wire asid %d", viol.ASID, wire)
			}
		}
	}
	if b.Dead() {
		c.Failf("bystander was killed for someone else's replay")
	}
}

// attackDirtyWritebackInject lets the downgrade flush proceed honestly,
// then fabricates writebacks (and ownership upgrades) for the flushed
// frame as if stale dirty data were still owed — both as anonymous
// hardware (ASID 0) and under the victim's identity.
func attackDirtyWritebackInject(c *Context) {
	p, ok := c.start("victim")
	if !ok {
		return
	}
	v, pas, ok := c.grant(p, 1)
	if !ok {
		return
	}
	pa := pas[0]

	payload := c.blockData(0xE5)
	if _, err := c.Hier.Access(c.Eng.Now(), 0, p.ASID(), accel.Op{Kind: arch.Write, Size: 32, Addr: v, Data: payload[:32]}); err != nil {
		c.Failf("legitimate store: %v", err)
		return
	}

	// Honest downgrade: Border Control flushes the dirty block under the
	// old permissions (Figure 3d ordering), then narrows the table.
	if _, err := c.OS.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
		c.Failf("protect: %v", err)
		return
	}
	var before [arch.BlockSize]byte
	c.OS.Store().ReadInto(pa, before[:])

	evil := c.blockData(0x66)
	for _, wire := range []arch.ASID{0, p.ASID()} {
		_, reached := c.Port.WriteBlock(c.Eng.Now(), wire, pa, evil)
		c.ExpectBlocked(reached, fmt.Sprintf("fabricated flush writeback under asid %d", wire))
		_, upgraded := c.Port.Upgrade(c.Eng.Now(), wire, pa)
		c.ExpectBlocked(upgraded, fmt.Sprintf("ownership upgrade of the flushed frame under asid %d", wire))
	}
	var after [arch.BlockSize]byte
	c.OS.Store().ReadInto(pa, after[:])
	if after != before {
		c.Failf("injected writeback changed host memory at %#x", pa)
	}
}
