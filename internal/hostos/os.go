package hostos

import (
	"fmt"
	"sort"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/pagetable"
)

// Downgrade describes one page whose permissions were reduced (or removed).
// Downgrades trigger TLB shootdowns and, at the border, accelerator cache
// flushes (paper §3.2.4).
type Downgrade struct {
	ASID arch.ASID
	VPN  arch.VPN
	PPN  arch.PPN
	Old  arch.Perm
	New  arch.Perm
}

// ShootdownListener is notified of permission downgrades and unmaps. TLBs,
// accelerator complexes and Border Control register here.
type ShootdownListener interface {
	OnDowngrade(d Downgrade)
}

// Violation reports an accelerator request blocked at the border.
type Violation struct {
	Accelerator string
	// ASID is the process the blocked request was attributed to; 0 when the
	// border could not name one (a hardware-initiated crossing with several
	// processes co-scheduled).
	ASID arch.ASID
	Addr arch.Phys
	Kind arch.AccessKind
}

func (v Violation) String() string {
	if v.ASID != 0 {
		return fmt.Sprintf("border violation: accelerator %q asid %d %s %#x", v.Accelerator, v.ASID, v.Kind, v.Addr)
	}
	return fmt.Sprintf("border violation: accelerator %q %s %#x", v.Accelerator, v.Kind, v.Addr)
}

// CompletionListener is notified when an accelerator border reports a
// process's session complete (Figure 3e). The shadow-memory oracle
// registers here: completion zeroes the whole Protection Table, so every
// shadow grant ends with it.
type CompletionListener interface {
	OnProcessComplete(asid arch.ASID)
}

// OS is the trusted operating system model.
type OS struct {
	store  *memory.Store
	frames *FrameAllocator

	nextASID  arch.ASID
	processes map[arch.ASID]*Process

	listeners   []ShootdownListener
	completions []CompletionListener

	// pageEpochs partitions each physical page's lifetime at its downgrades:
	// epoch N is the window between the page's Nth and N+1th permission
	// losses. The safety oracle scopes "the most permissive window ever
	// granted" to the current epoch — a grant from before a revocation must
	// never justify a crossing after it.
	pageEpochs map[arch.PPN]uint64
	// completionEpochs counts, per ASID, completed accelerator sessions.
	completionEpochs map[arch.ASID]uint64

	// Violations is the log of Border Control exceptions delivered to the
	// OS. The default policy records the violation and kills the offending
	// process; a custom handler can refine this.
	Violations []Violation
	// OnViolation, when set, is invoked for every reported violation after
	// it is logged.
	OnViolation func(Violation)
	// KeepProcessOnViolation disables the default policy of terminating
	// the offending process (used by experiments that probe the border
	// deliberately).
	KeepProcessOnViolation bool

	// Shootdowns counts downgrade events broadcast to listeners.
	Shootdowns uint64
}

// New returns an OS owning the given physical memory.
func New(store *memory.Store) *OS {
	return assembleOS(store, NewFrameAllocator(store), 1)
}

// NewPartition returns an OS confined to the physical frames [lo, hi) — a
// guest OS under a VMM (paper §3.4.2). Its page tables, process data, and
// everything else it allocates stay inside the partition, so the VMM's
// structures (including per-accelerator Protection Tables) are physically
// unreachable from the guest. ASIDs are offset by asidBase so guests
// sharing an ATS do not collide.
func NewPartition(store *memory.Store, lo, hi arch.PPN, asidBase arch.ASID) *OS {
	if asidBase == 0 {
		asidBase = 1
	}
	return assembleOS(store, NewFrameAllocatorRange(store, lo, hi), asidBase)
}

func assembleOS(store *memory.Store, frames *FrameAllocator, asidBase arch.ASID) *OS {
	return &OS{
		store:            store,
		frames:           frames,
		nextASID:         asidBase,
		processes:        make(map[arch.ASID]*Process),
		pageEpochs:       make(map[arch.PPN]uint64),
		completionEpochs: make(map[arch.ASID]uint64),
	}
}

// Store returns physical memory.
func (o *OS) Store() *memory.Store { return o.store }

// Frames returns the physical frame allocator.
func (o *OS) Frames() *FrameAllocator { return o.frames }

// AddShootdownListener registers a component for downgrade notifications.
func (o *OS) AddShootdownListener(l ShootdownListener) {
	o.listeners = append(o.listeners, l)
}

// AddCompletionListener registers a component for session-completion
// notifications (delivered by NoteCompletion).
func (o *OS) AddCompletionListener(l CompletionListener) {
	o.completions = append(o.completions, l)
}

// NoteCompletion records that an accelerator border finished the Figure 3e
// completion protocol for asid, bumps its completion epoch, and notifies
// listeners. Border Control calls this after its flush — so anything
// observing the completion sees the post-flush, zeroed-table world.
func (o *OS) NoteCompletion(asid arch.ASID) {
	o.completionEpochs[asid]++
	for _, l := range o.completions {
		l.OnProcessComplete(asid)
	}
}

// PageEpoch returns how many permission downgrades have been broadcast for
// the physical page — the index of its current grant epoch.
func (o *OS) PageEpoch(ppn arch.PPN) uint64 { return o.pageEpochs[ppn] }

// CompletionEpoch returns how many accelerator sessions the ASID has
// completed.
func (o *OS) CompletionEpoch(asid arch.ASID) uint64 { return o.completionEpochs[asid] }

// NewProcess creates a process with an empty address space.
func (o *OS) NewProcess(name string) (*Process, error) {
	asid := o.nextASID
	o.nextASID++
	p := &Process{
		os:    o,
		name:  name,
		asid:  asid,
		brk:   mmapBase,
		pages: make(map[arch.VPN]*pageInfo),
	}
	table, err := pagetable.New(o.store, o.frames)
	if err != nil {
		return nil, err
	}
	p.table = table
	o.processes[asid] = p
	return p, nil
}

// Process returns the live process with the given ASID, if any.
func (o *OS) Process(asid arch.ASID) (*Process, bool) {
	p, ok := o.processes[asid]
	return p, ok
}

// ProcessList returns the live processes (order unspecified).
func (o *OS) ProcessList() []*Process {
	out := make([]*Process, 0, len(o.processes))
	for _, p := range o.processes {
		out = append(out, p)
	}
	return out
}

// TableFor returns the page table of the given address space. It satisfies
// the ATS's TableSource.
func (o *OS) TableFor(asid arch.ASID) (*pagetable.Table, bool) {
	p, ok := o.processes[asid]
	if !ok {
		return nil, false
	}
	return p.table, true
}

// FaultIn services a page fault raised through the ATS: it demand-pages the
// address (or resolves copy-on-write) in the owning process.
func (o *OS) FaultIn(asid arch.ASID, v arch.Virt, kind arch.AccessKind) error {
	p, ok := o.processes[asid]
	if !ok {
		return fmt.Errorf("hostos: fault for unknown asid %d", asid)
	}
	_, err := p.Translate(v, kind)
	return err
}

// Exit terminates a process: broadcasts downgrades revoking every mapped
// page (so borders revoke permissions and flush), then releases its frames
// and page table.
func (o *OS) Exit(p *Process) {
	if p.dead {
		return
	}
	// Iterate pages in address order, not map order: exit broadcasts reach
	// shootdown listeners (border flushes) and the freed frames re-enter
	// the allocator's free list, so a deterministic order here keeps
	// multi-process churn runs bit-exact.
	vpns := make([]arch.VPN, 0, len(p.pages))
	for vpn := range p.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		info := p.pages[vpn]
		o.broadcast(Downgrade{ASID: p.asid, VPN: vpn, PPN: info.ppn, Old: info.perm, New: arch.PermNone})
	}
	for _, vpn := range vpns {
		info, ok := p.pages[vpn]
		if !ok {
			continue
		}
		if info.refs != nil {
			*info.refs--
			if *info.refs > 0 {
				delete(p.pages, vpn)
				continue
			}
		}
		if info.huge {
			// Huge frames were allocated contiguously; free each base frame.
			o.frames.FreeFrame(info.ppn)
		} else {
			o.frames.FreeFrame(info.ppn)
		}
		delete(p.pages, vpn)
	}
	p.table.Release()
	p.dead = true
	delete(o.processes, p.asid)
}

// Protect changes the permissions of [addr, addr+size) in p to perm,
// mprotect-style. Pages not yet faulted in only have their VMA updated.
// Every strict downgrade is broadcast to shootdown listeners. It returns
// the downgrades performed.
func (o *OS) Protect(p *Process, addr arch.Virt, size uint64, perm arch.Perm) ([]Downgrade, error) {
	if p.dead {
		return nil, fmt.Errorf("hostos: protect in dead process %q", p.name)
	}
	if size == 0 {
		return nil, nil
	}
	first := addr.PageOf()
	last := (addr + arch.Virt(size) - 1).PageOf()
	// Update VMA records so future faults use the new permission.
	for i := range p.vmas {
		a := &p.vmas[i]
		if a.contains(addr) && a.contains(addr+arch.Virt(size)-1) {
			if a.start == addr && a.size == uint64(size) {
				a.perm = perm
			}
			// Partial-VMA protects keep the VMA perm; mapped pages below
			// carry their own permission, and unmapped ones fault with the
			// VMA permission. This models split VMAs without the
			// bookkeeping.
		}
	}
	var downs []Downgrade
	for vpn := first; vpn <= last; vpn++ {
		info, ok := p.pages[vpn]
		if !ok {
			continue
		}
		old := info.perm
		if old == perm {
			continue
		}
		if _, err := p.table.Protect(vpn.Base(), perm); err != nil {
			return downs, err
		}
		info.perm = perm
		if losesPerm(old, perm) {
			d := Downgrade{ASID: p.asid, VPN: vpn, PPN: info.ppn, Old: old, New: perm}
			downs = append(downs, d)
			o.broadcast(d)
		}
	}
	return downs, nil
}

// Unmap removes [addr, addr+size) from the address space — both the mapped
// pages (broadcasting downgrades and freeing frames) and the covering VMA
// range, so later touches fault for real instead of being demand-paged
// back in.
func (o *OS) Unmap(p *Process, addr arch.Virt, size uint64) error {
	if size == 0 {
		return nil
	}
	first := addr.PageOf()
	last := (addr + arch.Virt(size) - 1).PageOf()
	p.removeVMARange(first.Base(), last.Base()+arch.PageSize)
	for vpn := first; vpn <= last; vpn++ {
		info, ok := p.pages[vpn]
		if !ok {
			continue
		}
		if info.huge {
			return fmt.Errorf("hostos: partial unmap of huge page at %#x", vpn.Base())
		}
		o.broadcast(Downgrade{ASID: p.asid, VPN: vpn, PPN: info.ppn, Old: info.perm, New: arch.PermNone})
		if _, err := p.table.Unmap(vpn.Base()); err != nil {
			return err
		}
		if info.refs != nil {
			*info.refs--
			if *info.refs == 0 {
				o.frames.FreeFrame(info.ppn)
			}
		} else {
			o.frames.FreeFrame(info.ppn)
		}
		delete(p.pages, vpn)
	}
	return nil
}

// Remap moves the backing frame of vpn to a fresh frame (as swapping or
// memory compaction would), copying contents, and broadcasts the downgrade
// of the old mapping. Returns the new frame.
func (o *OS) Remap(p *Process, vpn arch.VPN) (arch.PPN, error) {
	info, ok := p.pages[vpn]
	if !ok {
		return 0, fmt.Errorf("hostos: remap of unmapped page %#x", vpn.Base())
	}
	if info.huge {
		return 0, fmt.Errorf("hostos: remap of huge page %#x", vpn.Base())
	}
	fresh, err := o.frames.AllocFrame()
	if err != nil {
		return 0, err
	}
	o.store.Write(fresh.Base(), o.store.Read(info.ppn.Base(), arch.PageSize))
	o.broadcast(Downgrade{ASID: p.asid, VPN: vpn, PPN: info.ppn, Old: info.perm, New: arch.PermNone})
	if _, err := p.table.Unmap(vpn.Base()); err != nil {
		return 0, err
	}
	if err := p.table.Map(vpn, fresh, info.perm); err != nil {
		return 0, err
	}
	o.frames.FreeFrame(info.ppn)
	info.ppn = fresh
	return fresh, nil
}

// ShareCOW maps the pages backing [addr, addr+size) of src into dst at the
// same virtual addresses as copy-on-write: both mappings become read-only
// and share frames until either side writes.
func (o *OS) ShareCOW(src, dst *Process, addr arch.Virt, size uint64) error {
	first := addr.PageOf()
	last := (addr + arch.Virt(size) - 1).PageOf()
	// Ensure a VMA exists in dst covering the range.
	dst.vmas = append(dst.vmas, vma{start: first.Base(), size: uint64(last-first+1) * arch.PageSize, perm: arch.PermRW})
	if dst.brk <= last.Base()+arch.PageSize {
		dst.brk = last.Base() + 2*arch.PageSize
	}
	for vpn := first; vpn <= last; vpn++ {
		sinfo, ok := src.pages[vpn]
		if !ok {
			// Fault it in so there is something to share.
			var err error
			a := src.vmaFor(vpn.Base())
			if a == nil {
				return &Segfault{ASID: src.asid, Addr: vpn.Base(), Kind: arch.Read}
			}
			sinfo, err = src.faultIn(vpn, a)
			if err != nil {
				return err
			}
		}
		if sinfo.refs == nil {
			refs := 1
			sinfo.refs = &refs
		}
		// Downgrade source to read-only (a CoW downgrade; the paper notes
		// these never require accelerator cache flushes because the page
		// becomes read-only on the CPU side first... in fact the flush rule
		// is driven by the old permission, handled by listeners).
		ro := sinfo.perm &^ arch.PermWrite
		if sinfo.perm != ro {
			if _, err := src.table.Protect(vpn.Base(), ro); err != nil {
				return err
			}
			o.broadcast(Downgrade{ASID: src.asid, VPN: vpn, PPN: sinfo.ppn, Old: sinfo.perm, New: ro})
			sinfo.perm = ro
		}
		sinfo.cow = true
		*sinfo.refs++
		dinfo := &pageInfo{ppn: sinfo.ppn, perm: ro, cow: true, refs: sinfo.refs}
		if err := dst.table.Map(vpn, sinfo.ppn, ro); err != nil {
			return err
		}
		dst.pages[vpn] = dinfo
	}
	return nil
}

// resolveCOW gives p a private writable copy of vpn.
func (o *OS) resolveCOW(p *Process, vpn arch.VPN, info *pageInfo) error {
	if info.refs != nil && *info.refs > 1 {
		fresh, err := o.frames.AllocFrame()
		if err != nil {
			return err
		}
		o.store.Write(fresh.Base(), o.store.Read(info.ppn.Base(), arch.PageSize))
		*info.refs--
		if _, err := p.table.Unmap(vpn.Base()); err != nil {
			return err
		}
		info.ppn = fresh
		info.refs = nil
	}
	info.cow = false
	info.perm |= arch.PermWrite | arch.PermRead
	// Rewrite or re-map the leaf with the writable permission.
	if _, err := p.table.Protect(vpn.Base(), info.perm); err != nil {
		if err2 := p.table.Map(vpn, info.ppn, info.perm); err2 != nil {
			return err
		}
	}
	return nil
}

// ReportViolation is called by Border Control when it blocks a request. The
// OS logs it, invokes the policy hook, and (default policy) kills the
// process the accelerator was running, if identifiable.
func (o *OS) ReportViolation(v Violation, culprit arch.ASID) {
	o.Violations = append(o.Violations, v)
	if o.OnViolation != nil {
		o.OnViolation(v)
	}
	if o.KeepProcessOnViolation {
		return
	}
	if p, ok := o.processes[culprit]; ok {
		o.Exit(p)
	}
}

func (o *OS) broadcast(d Downgrade) {
	o.Shootdowns++
	o.pageEpochs[d.PPN]++
	for _, l := range o.listeners {
		l.OnDowngrade(d)
	}
}

// losesPerm reports whether going old->new removes any permission bit.
func losesPerm(old, new arch.Perm) bool { return old&^new != 0 }
