package hostos

import (
	"bytes"
	"errors"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

func newOS(t testing.TB) *OS {
	t.Helper()
	store, err := memory.NewStore(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return New(store)
}

func TestFrameAllocator(t *testing.T) {
	o := newOS(t)
	f := o.Frames()
	a, err := f.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Error("frame 0 must never be handed out")
	}
	b, _ := f.AllocFrame()
	if a == b {
		t.Error("duplicate frames")
	}
	f.FreeFrame(a)
	c, _ := f.AllocFrame()
	if c != a {
		t.Errorf("free list not reused: got %d, want %d", c, a)
	}
}

func TestFrameAllocatorContiguous(t *testing.T) {
	store, _ := memory.NewStore(1 << 20)
	f := NewFrameAllocator(store)
	start, err := f.AllocContiguous(10)
	if err != nil {
		t.Fatal(err)
	}
	if start == 0 {
		t.Error("contiguous region includes frame 0")
	}
	// All ten frames are now allocated: freeing each must not panic.
	f.FreeContiguous(start, 10)
	if f.InUse() != 0 {
		t.Errorf("in use = %d after free", f.InUse())
	}
	if _, err := f.AllocContiguous(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized contiguous alloc = %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	o := newOS(t)
	a, _ := o.Frames().AllocFrame()
	o.Frames().FreeFrame(a)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	o.Frames().FreeFrame(a)
}

func TestOutOfMemory(t *testing.T) {
	store, _ := memory.NewStore(4 * arch.PageSize)
	f := NewFrameAllocator(store)
	// Frames 1..3 allocatable.
	for i := 0; i < 3; i++ {
		if _, err := f.AllocFrame(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("exhausted allocator = %v", err)
	}
}

func TestProcessReadWrite(t *testing.T) {
	o := newOS(t)
	p, err := o.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Mmap(3*arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("abcdefgh"), 1024) // 8 KB, crosses pages
	if err := p.Write(base+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip failed")
	}
	if p.MajorFaults == 0 {
		t.Error("demand paging should have faulted")
	}
}

func TestSegfault(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	var buf [4]byte
	err := p.Read(0x10, buf[:]) // below mmapBase: unmapped
	var sf *Segfault
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want Segfault", err)
	}
	if sf.ASID != p.ASID() || sf.Kind != arch.Read {
		t.Errorf("segfault fields: %+v", sf)
	}
	// Write to read-only VMA.
	ro, _ := p.Mmap(arch.PageSize, arch.PermRead)
	if err := p.Read(ro, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(ro, buf[:]); !errors.As(err, &sf) {
		t.Errorf("write to read-only = %v, want Segfault", err)
	}
}

func TestTranslateMatchesPageTable(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(arch.PageSize, arch.PermRW)
	pa, err := p.Translate(base+123, arch.Read)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Table().Walk(base + 123)
	if err != nil {
		t.Fatal(err)
	}
	if pa != tr.PPN.Base()+123 {
		t.Errorf("Translate %#x != table walk %#x", pa, tr.PPN.Base()+123)
	}
}

func TestGuardGapBetweenMmaps(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	a, _ := p.Mmap(arch.PageSize, arch.PermRW)
	b, _ := p.Mmap(arch.PageSize, arch.PermRW)
	if b <= a+arch.PageSize {
		t.Error("no guard gap between mappings")
	}
	var buf [1]byte
	if err := p.Read(a+arch.PageSize, buf[:]); err == nil {
		t.Error("guard page should fault")
	}
}

type recordingListener struct{ downs []Downgrade }

func (r *recordingListener) OnDowngrade(d Downgrade) { r.downs = append(r.downs, d) }

func TestProtectBroadcastsDowngrades(t *testing.T) {
	o := newOS(t)
	l := &recordingListener{}
	o.AddShootdownListener(l)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(2*arch.PageSize, arch.PermRW)
	if err := p.Write(base, make([]byte, 2*arch.PageSize)); err != nil {
		t.Fatal(err)
	}
	downs, err := o.Protect(p, base, 2*arch.PageSize, arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(downs) != 2 || len(l.downs) != 2 {
		t.Fatalf("downgrades = %d broadcast = %d, want 2", len(downs), len(l.downs))
	}
	if l.downs[0].Old != arch.PermRW || l.downs[0].New != arch.PermRead {
		t.Errorf("downgrade perms: %+v", l.downs[0])
	}
	// Upgrading back is not a downgrade: no broadcast.
	l.downs = nil
	if _, err := o.Protect(p, base, 2*arch.PageSize, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if len(l.downs) != 0 {
		t.Error("upgrade should not broadcast")
	}
	// Page table reflects the final permissions.
	tr, _ := p.Table().Walk(base)
	if tr.Perm != arch.PermRW {
		t.Errorf("table perm = %v", tr.Perm)
	}
}

func TestProtectUnfaultedPagesIsSilent(t *testing.T) {
	o := newOS(t)
	l := &recordingListener{}
	o.AddShootdownListener(l)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(arch.PageSize, arch.PermRW)
	if _, err := o.Protect(p, base, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if len(l.downs) != 0 {
		t.Error("never-faulted page cannot need a shootdown")
	}
	// Future faults use the new permission.
	var buf [1]byte
	if err := p.Write(base, buf[:]); err == nil {
		t.Error("write should fault after VMA downgrade")
	}
}

func TestUnmapFreesFrames(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(arch.PageSize, arch.PermRW)
	if err := p.Write(base, []byte{1}); err != nil {
		t.Fatal(err)
	}
	inUse := o.Frames().InUse()
	if err := o.Unmap(p, base, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if o.Frames().InUse() != inUse-1 {
		t.Error("unmap did not free the data frame")
	}
	var buf [1]byte
	if err := p.Read(base, buf[:]); err == nil {
		t.Error("unmapped page should fault")
	}
}

func TestRemapPreservesContents(t *testing.T) {
	o := newOS(t)
	l := &recordingListener{}
	o.AddShootdownListener(l)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(arch.PageSize, arch.PermRW)
	if err := p.Write(base, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	oldPPN, _ := p.PPNOf(base.PageOf())
	fresh, err := o.Remap(p, base.PageOf())
	if err != nil {
		t.Fatal(err)
	}
	if fresh == oldPPN {
		t.Error("remap must move to a different frame")
	}
	var buf [7]byte
	if err := p.Read(base, buf[:]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "payload" {
		t.Errorf("contents after remap: %q", buf[:])
	}
	if len(l.downs) != 1 {
		t.Error("remap must broadcast a downgrade for the old frame")
	}
}

func TestCopyOnWrite(t *testing.T) {
	o := newOS(t)
	src, _ := o.NewProcess("src")
	dst, _ := o.NewProcess("dst")
	base, _ := src.Mmap(arch.PageSize, arch.PermRW)
	if err := src.Write(base, []byte("shared secret")); err != nil {
		t.Fatal(err)
	}
	if err := o.ShareCOW(src, dst, base, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	// Both see the data; both share the frame.
	var buf [13]byte
	if err := dst.Read(base, buf[:]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "shared secret" {
		t.Errorf("dst sees %q", buf[:])
	}
	sp, _ := src.PPNOf(base.PageOf())
	dp, _ := dst.PPNOf(base.PageOf())
	if sp != dp {
		t.Error("CoW pages should share a frame before any write")
	}
	// dst writes: gets a private copy; src is unaffected.
	if err := dst.Write(base, []byte("MODIFIED")); err != nil {
		t.Fatal(err)
	}
	dp2, _ := dst.PPNOf(base.PageOf())
	if dp2 == sp {
		t.Error("write did not break CoW sharing")
	}
	if err := src.Read(base, buf[:]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "shared secret" {
		t.Errorf("src corrupted by dst's write: %q", buf[:])
	}
}

func TestExitReleasesEverything(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(4*arch.PageSize, arch.PermRW)
	if err := p.Write(base, make([]byte, 4*arch.PageSize)); err != nil {
		t.Fatal(err)
	}
	l := &recordingListener{}
	o.AddShootdownListener(l)
	o.Exit(p)
	if !p.Dead() {
		t.Error("process should be dead")
	}
	if o.Frames().InUse() != 0 {
		t.Errorf("frames leaked: %d in use", o.Frames().InUse())
	}
	if len(l.downs) != 4 {
		t.Errorf("exit broadcast %d revocations, want 4", len(l.downs))
	}
	if _, ok := o.Process(p.ASID()); ok {
		t.Error("dead process still registered")
	}
	// Idempotent.
	o.Exit(p)
}

func TestViolationPolicy(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	var seen []Violation
	o.OnViolation = func(v Violation) { seen = append(seen, v) }
	v := Violation{Accelerator: "gpu0", Addr: 0x1000, Kind: arch.Write}
	o.ReportViolation(v, p.ASID())
	if len(o.Violations) != 1 || len(seen) != 1 {
		t.Error("violation not logged")
	}
	if !p.Dead() {
		t.Error("default policy should kill the culprit")
	}
	// With KeepProcessOnViolation the process survives.
	o2 := newOS(t)
	o2.KeepProcessOnViolation = true
	p2, _ := o2.NewProcess("p2")
	o2.ReportViolation(v, p2.ASID())
	if p2.Dead() {
		t.Error("keep policy should not kill")
	}
}

func TestFaultIn(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	base, _ := p.Mmap(arch.PageSize, arch.PermRW)
	if err := o.FaultIn(p.ASID(), base, arch.Read); err != nil {
		t.Fatal(err)
	}
	if !p.Mapped(base.PageOf()) {
		t.Error("FaultIn did not map the page")
	}
	if err := o.FaultIn(999, base, arch.Read); err == nil {
		t.Error("FaultIn for unknown ASID should fail")
	}
	if err := o.FaultIn(p.ASID(), 0x10, arch.Read); err == nil {
		t.Error("FaultIn outside any VMA should fail")
	}
}

func TestHugeMmap(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	base, err := p.MmapHuge(arch.HugePageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(base)%arch.HugePageSize != 0 {
		t.Error("huge mapping not aligned")
	}
	if err := p.Write(base+12345, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	tr, err := p.Table().Walk(base)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Huge {
		t.Error("backing leaf should be a huge page")
	}
	// Contiguous physical backing.
	p0, _ := p.PPNOf(base.PageOf())
	p1, _ := p.PPNOf(base.PageOf() + 1)
	if p1 != p0+1 {
		t.Error("huge page frames not contiguous")
	}
}

func TestTableFor(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	tbl, ok := o.TableFor(p.ASID())
	if !ok || tbl != p.Table() {
		t.Error("TableFor wrong")
	}
	if _, ok := o.TableFor(12345); ok {
		t.Error("TableFor unknown ASID should miss")
	}
}

func TestDeadProcessRefusesWork(t *testing.T) {
	o := newOS(t)
	p, _ := o.NewProcess("p")
	o.Exit(p)
	if _, err := p.Mmap(arch.PageSize, arch.PermRW); err == nil {
		t.Error("mmap in dead process should fail")
	}
	if err := p.Write(mmapBase, []byte{1}); err == nil {
		t.Error("write in dead process should fail")
	}
	if _, err := o.Protect(p, mmapBase, arch.PageSize, arch.PermRead); err == nil {
		t.Error("protect in dead process should fail")
	}
}
