// Package hostos models the trusted operating system: physical frame
// allocation, processes and their address spaces, demand paging,
// copy-on-write, mprotect-style permission changes with TLB shootdowns, and
// the policy response to Border Control violations.
//
// The OS is trusted (paper §2.1): it owns the page tables, configures the
// ATS and Border Control, and is the only agent allowed to change
// permissions.
package hostos

import (
	"errors"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// ErrOutOfMemory is returned when no physical frames remain.
var ErrOutOfMemory = errors.New("hostos: out of physical memory")

// FrameAllocator manages physical frames. Single frames come from a free
// list; contiguous regions (Protection Tables, page-table pools) come from a
// bump pointer. Frame 0 is never handed out so that a zero PPN can mean
// "none".
type FrameAllocator struct {
	store     *memory.Store
	bump      arch.PPN // next never-allocated frame
	limit     arch.PPN // one past the last frame
	freeList  []arch.PPN
	allocated map[arch.PPN]bool
}

// NewFrameAllocator returns an allocator over the whole store.
func NewFrameAllocator(store *memory.Store) *FrameAllocator {
	return NewFrameAllocatorRange(store, 1, arch.PPN(store.Pages()))
}

// NewFrameAllocatorRange returns an allocator restricted to frames
// [lo, hi). Virtualized guests get partitioned ranges; frame 0 is never
// usable regardless.
func NewFrameAllocatorRange(store *memory.Store, lo, hi arch.PPN) *FrameAllocator {
	if lo == 0 {
		lo = 1
	}
	if hi > arch.PPN(store.Pages()) {
		hi = arch.PPN(store.Pages())
	}
	return &FrameAllocator{
		store:     store,
		bump:      lo,
		limit:     hi,
		allocated: make(map[arch.PPN]bool),
	}
}

// Range returns the allocator's frame bounds [lo, hi). lo reflects the
// original partition start only until frames are handed out; use Owns for
// membership checks.
func (f *FrameAllocator) Limit() arch.PPN { return f.limit }

// Owns reports whether the allocator handed out frame p (it is currently
// allocated from this partition).
func (f *FrameAllocator) Owns(p arch.PPN) bool { return f.allocated[p] }

// AllocFrame returns a free physical frame.
func (f *FrameAllocator) AllocFrame() (arch.PPN, error) {
	if n := len(f.freeList); n > 0 {
		p := f.freeList[n-1]
		f.freeList = f.freeList[:n-1]
		f.allocated[p] = true
		return p, nil
	}
	if f.bump >= f.limit {
		return 0, ErrOutOfMemory
	}
	p := f.bump
	f.bump++
	f.allocated[p] = true
	return p, nil
}

// AllocContiguous returns the first frame of n physically contiguous frames.
func (f *FrameAllocator) AllocContiguous(n uint64) (arch.PPN, error) {
	return f.AllocContiguousAligned(n, 1)
}

// AllocContiguousAligned returns n contiguous frames whose first frame
// number is a multiple of align (a power of two). Huge-page backing
// requires 512-frame alignment.
func (f *FrameAllocator) AllocContiguousAligned(n, align uint64) (arch.PPN, error) {
	if n == 0 {
		return 0, errors.New("hostos: contiguous allocation of zero frames")
	}
	if align == 0 {
		align = 1
	}
	start := arch.PPN(arch.AlignUp(uint64(f.bump), align))
	if start >= f.limit || uint64(f.limit-start) < n {
		return 0, ErrOutOfMemory
	}
	// Frames skipped by alignment go to the free list rather than leaking.
	for p := f.bump; p < start; p++ {
		f.allocated[p] = true
		f.FreeFrame(p)
	}
	f.bump = start + arch.PPN(n)
	for p := start; p < start+arch.PPN(n); p++ {
		f.allocated[p] = true
	}
	return start, nil
}

// FreeFrame returns a frame to the free list. Double frees panic: they are
// OS bugs, and the OS is trusted.
func (f *FrameAllocator) FreeFrame(p arch.PPN) {
	if !f.allocated[p] {
		panic(fmt.Sprintf("hostos: double free of frame %#x", p))
	}
	delete(f.allocated, p)
	f.freeList = append(f.freeList, p)
}

// FreeContiguous returns a contiguous region to the allocator.
func (f *FrameAllocator) FreeContiguous(start arch.PPN, n uint64) {
	for p := start; p < start+arch.PPN(n); p++ {
		f.FreeFrame(p)
	}
}

// InUse returns how many frames are currently allocated.
func (f *FrameAllocator) InUse() int { return len(f.allocated) }

// FreeFrames returns how many frames remain allocatable.
func (f *FrameAllocator) FreeFrames() uint64 {
	return uint64(f.limit-f.bump) + uint64(len(f.freeList))
}
