package hostos

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// VMM is a minimal trusted virtual-machine monitor (paper §3.4.2): it
// partitions host physical memory into per-guest regions and keeps the
// remainder — where per-accelerator Protection Tables live — physically
// unreachable from any guest.
//
// Border Control itself is unchanged under virtualization: the Protection
// Table is indexed by bare-metal (host) physical addresses, which is what
// the guests' accelerator requests carry after nested translation. This
// model uses static partitioning (each guest's "guest-physical" memory is
// a dedicated host-physical range), which keeps the nested-translation
// step an identity inside the partition while preserving the property the
// paper relies on: no guest mapping can name a frame outside its
// partition, because guest OSes only ever allocate from their own range.
type VMM struct {
	store  *memory.Store
	frames *FrameAllocator // the VMM's own (non-guest) frames
	guests []*Guest
	next   arch.PPN // next unpartitioned frame
	limit  arch.PPN
}

// Guest is one guest OS and its partition.
type Guest struct {
	OS  *OS
	Lo  arch.PPN // first frame of the partition
	Hi  arch.PPN // one past the last frame
	vmm *VMM
}

// NewVMM returns a VMM over the store. reserve is the number of frames the
// VMM keeps for itself at the bottom of memory (Protection Tables, its own
// structures).
func NewVMM(store *memory.Store, reserve uint64) (*VMM, error) {
	total := arch.PPN(store.Pages())
	if arch.PPN(reserve)+1 >= total {
		return nil, fmt.Errorf("hostos: VMM reservation %d exceeds memory", reserve)
	}
	return &VMM{
		store:  store,
		frames: NewFrameAllocatorRange(store, 1, arch.PPN(reserve)+1),
		next:   arch.PPN(reserve) + 1,
		limit:  total,
	}, nil
}

// Frames returns the VMM's private allocator. Border Control's Protection
// Tables are allocated here, outside every guest partition.
func (v *VMM) Frames() *FrameAllocator { return v.frames }

// NewGuest carves a partition of the given page count and boots a guest OS
// confined to it.
func (v *VMM) NewGuest(name string, pages uint64) (*Guest, error) {
	if arch.PPN(pages) > v.limit-v.next {
		return nil, fmt.Errorf("hostos: no room for guest %q (%d pages)", name, pages)
	}
	lo := v.next
	hi := lo + arch.PPN(pages)
	v.next = hi
	// ASID spaces: guest i uses [4096*(i+1), ...) so ASIDs are globally
	// unique across the shared ATS.
	asidBase := arch.ASID(4096 * (len(v.guests) + 1))
	g := &Guest{OS: NewPartition(v.store, lo, hi, asidBase), Lo: lo, Hi: hi, vmm: v}
	v.guests = append(v.guests, g)
	return g, nil
}

// Guests returns the booted guests.
func (v *VMM) Guests() []*Guest { return v.guests }

// Contains reports whether the host physical address lies inside the
// guest's partition.
func (g *Guest) Contains(a arch.Phys) bool {
	p := a.PageOf()
	return p >= g.Lo && p < g.Hi
}

// AuditIsolation verifies the partitioning invariants: every frame a guest
// process maps lies inside its partition, and none of the VMM's frames are
// reachable. It returns an error naming the first violation.
func (v *VMM) AuditIsolation() error {
	for gi, g := range v.guests {
		g := g
		var bad error
		for _, p := range g.OS.ProcessList() {
			p.ForEachMapped(func(vpn arch.VPN, ppn arch.PPN, _ arch.Perm) {
				if bad != nil {
					return
				}
				if ppn < g.Lo || ppn >= g.Hi {
					bad = fmt.Errorf("hostos: guest %d maps frame %#x outside its partition [%#x,%#x)",
						gi, ppn, g.Lo, g.Hi)
				}
			})
			if bad != nil {
				return bad
			}
		}
	}
	return nil
}
