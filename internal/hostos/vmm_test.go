package hostos

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

func newVMM(t *testing.T) *VMM {
	t.Helper()
	store, err := memory.NewStore(128 << 20)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVMM(store, 1024) // 4 MB for the VMM
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVMMPartitioning(t *testing.T) {
	v := newVMM(t)
	g1, err := v.NewGuest("g1", 4096)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := v.NewGuest("g2", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Hi > g2.Lo {
		t.Error("guest partitions overlap")
	}
	if g1.Lo < 1025 {
		t.Error("guest partition overlaps the VMM reservation")
	}
	if len(v.Guests()) != 2 {
		t.Error("guest registry wrong")
	}
}

func TestGuestAllocationsStayInPartition(t *testing.T) {
	v := newVMM(t)
	g, err := v.NewGuest("g", 2048)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.OS.NewProcess("guest-proc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Mmap(64*arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(base, make([]byte, 64*arch.PageSize)); err != nil {
		t.Fatal(err)
	}
	p.ForEachMapped(func(_ arch.VPN, ppn arch.PPN, _ arch.Perm) {
		if ppn < g.Lo || ppn >= g.Hi {
			t.Errorf("guest frame %#x outside partition [%#x,%#x)", ppn, g.Lo, g.Hi)
		}
	})
	// The page-table frames themselves are also inside the partition.
	if p.Table().Root() < g.Lo || p.Table().Root() >= g.Hi {
		t.Error("guest page-table root outside partition")
	}
	if err := v.AuditIsolation(); err != nil {
		t.Error(err)
	}
}

func TestGuestExhaustsOnlyItsPartition(t *testing.T) {
	v := newVMM(t)
	g, err := v.NewGuest("small", 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.OS.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Mmap(64*arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// Touching more pages than the partition holds must fail inside the
	// guest, never spill into other memory.
	if err := p.Write(base, make([]byte, 64*arch.PageSize)); err == nil {
		t.Error("tiny guest should run out of frames")
	}
	// The VMM's own allocator is untouched.
	if v.Frames().InUse() != 0 {
		t.Error("guest pressure leaked into the VMM allocator")
	}
}

func TestGuestASIDsAreDisjoint(t *testing.T) {
	v := newVMM(t)
	g1, _ := v.NewGuest("g1", 1024)
	g2, _ := v.NewGuest("g2", 1024)
	p1, err := g1.OS.NewProcess("a")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.OS.NewProcess("b")
	if err != nil {
		t.Fatal(err)
	}
	if p1.ASID() == p2.ASID() {
		t.Error("guests share an ASID space; a shared ATS would confuse them")
	}
}

func TestVMMReservationValidation(t *testing.T) {
	store, _ := memory.NewStore(1 << 20) // 256 pages
	if _, err := NewVMM(store, 1<<20); err == nil {
		t.Error("oversized reservation should fail")
	}
	v, err := NewVMM(store, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.NewGuest("too-big", 1<<20); err == nil {
		t.Error("oversized guest should fail")
	}
}
