package hostos

import (
	"errors"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/pagetable"
)

// Segfault describes an invalid virtual access by a process.
type Segfault struct {
	ASID arch.ASID
	Addr arch.Virt
	Kind arch.AccessKind
}

func (s *Segfault) Error() string {
	return fmt.Sprintf("hostos: segfault asid=%d %s %#x", s.ASID, s.Kind, s.Addr)
}

// vma is one virtual memory area.
type vma struct {
	start arch.Virt
	size  uint64
	perm  arch.Perm
	huge  bool // back with 2 MB pages
}

func (a *vma) contains(v arch.Virt) bool {
	return v >= a.start && uint64(v-a.start) < a.size
}

// pageInfo tracks OS-side state of a mapped virtual page.
type pageInfo struct {
	ppn  arch.PPN
	perm arch.Perm
	cow  bool // write-protected copy-on-write page
	huge bool // member of a huge mapping (head tracked separately)
	refs *int // shared frame refcount, for CoW
}

// Process is one address space plus OS bookkeeping.
type Process struct {
	os    *OS
	name  string
	asid  arch.ASID
	table *pagetable.Table
	vmas  []vma
	brk   arch.Virt
	pages map[arch.VPN]*pageInfo
	dead  bool

	// MajorFaults counts demand-paging faults served.
	MajorFaults uint64

	// OnMmap, when set, observes every successful address-space
	// reservation (Mmap/MmapHuge) with its final aligned geometry. The
	// trace recorder registers here: replaying the same reservation
	// sequence on a fresh process reproduces identical base addresses.
	OnMmap func(base arch.Virt, size uint64, perm arch.Perm, huge bool)
	// OnFault, when set, observes every demand-paging fault with the
	// touched virtual page, in service order. Fault order determines the
	// frame and page-table-node allocation interleaving — and therefore
	// the physical layout the timing model sees — so the trace recorder
	// captures it to make replay bit-exact.
	OnFault func(vpn arch.VPN)
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// ASID returns the address-space identifier.
func (p *Process) ASID() arch.ASID { return p.asid }

// Table returns the process page table (read-mostly; the OS mutates it).
func (p *Process) Table() *pagetable.Table { return p.table }

// Dead reports whether the process has been terminated.
func (p *Process) Dead() bool { return p.dead }

// mmapBase is where process heaps start; a low guard region catches null
// dereferences.
const mmapBase arch.Virt = 0x1000_0000

// Mmap reserves size bytes of zeroed, demand-paged memory with the given
// permissions and returns its base address.
func (p *Process) Mmap(size uint64, perm arch.Perm) (arch.Virt, error) {
	return p.mmap(size, perm, false)
}

// MmapHuge reserves a 2 MB-aligned region backed by huge pages.
func (p *Process) MmapHuge(size uint64, perm arch.Perm) (arch.Virt, error) {
	return p.mmap(size, perm, true)
}

func (p *Process) mmap(size uint64, perm arch.Perm, huge bool) (arch.Virt, error) {
	if p.dead {
		return 0, fmt.Errorf("hostos: mmap in dead process %q", p.name)
	}
	if size == 0 {
		return 0, errors.New("hostos: zero-length mmap")
	}
	align := uint64(arch.PageSize)
	if huge {
		align = arch.HugePageSize
	}
	size = arch.AlignUp(size, align)
	base := arch.Virt(arch.AlignUp(uint64(p.brk), align))
	p.vmas = append(p.vmas, vma{start: base, size: size, perm: perm, huge: huge})
	// Leave a one-page guard gap between areas.
	p.brk = base + arch.Virt(size) + arch.PageSize
	if p.OnMmap != nil {
		p.OnMmap(base, size, perm, huge)
	}
	return base, nil
}

// removeVMARange carves [start, end) out of the process's VMAs, splitting
// areas that straddle the boundary.
func (p *Process) removeVMARange(start, end arch.Virt) {
	var out []vma
	for _, a := range p.vmas {
		aEnd := a.start + arch.Virt(a.size)
		if aEnd <= start || a.start >= end {
			out = append(out, a)
			continue
		}
		if a.start < start {
			out = append(out, vma{start: a.start, size: uint64(start - a.start), perm: a.perm, huge: a.huge})
		}
		if aEnd > end {
			out = append(out, vma{start: end, size: uint64(aEnd - end), perm: a.perm, huge: a.huge})
		}
	}
	p.vmas = out
}

func (p *Process) vmaFor(v arch.Virt) *vma {
	for i := range p.vmas {
		if p.vmas[i].contains(v) {
			return &p.vmas[i]
		}
	}
	return nil
}

// Translate returns the physical translation of v, faulting pages in on
// demand. kind selects the required permission; a permission mismatch on a
// CoW page triggers the copy.
func (p *Process) Translate(v arch.Virt, kind arch.AccessKind) (arch.Phys, error) {
	info, err := p.page(v, kind)
	if err != nil {
		return 0, err
	}
	return info.ppn.Base() + arch.Phys(v.Offset()), nil
}

// page returns (faulting in if needed) the pageInfo for v, handling CoW.
func (p *Process) page(v arch.Virt, kind arch.AccessKind) (*pageInfo, error) {
	vpn := v.PageOf()
	info, ok := p.pages[vpn]
	if !ok {
		a := p.vmaFor(v)
		if a == nil {
			return nil, &Segfault{ASID: p.asid, Addr: v, Kind: kind}
		}
		var err error
		info, err = p.faultIn(vpn, a)
		if err != nil {
			return nil, err
		}
	}
	if kind == arch.Write && !info.perm.CanWrite() {
		if info.cow {
			if err := p.os.resolveCOW(p, vpn, info); err != nil {
				return nil, err
			}
		} else {
			return nil, &Segfault{ASID: p.asid, Addr: v, Kind: kind}
		}
	}
	if kind == arch.Read && !info.perm.CanRead() {
		return nil, &Segfault{ASID: p.asid, Addr: v, Kind: kind}
	}
	return info, nil
}

// faultIn services a demand-paging fault for vpn inside vma a.
func (p *Process) faultIn(vpn arch.VPN, a *vma) (*pageInfo, error) {
	p.MajorFaults++
	if p.OnFault != nil {
		p.OnFault(vpn)
	}
	if a.huge {
		return p.faultInHuge(vpn, a)
	}
	frame, err := p.os.frames.AllocFrame()
	if err != nil {
		return nil, err
	}
	p.os.store.ZeroPage(frame)
	if err := p.table.Map(vpn, frame, a.perm); err != nil {
		return nil, err
	}
	info := &pageInfo{ppn: frame, perm: a.perm}
	p.pages[vpn] = info
	return info, nil
}

func (p *Process) faultInHuge(vpn arch.VPN, a *vma) (*pageInfo, error) {
	headVPN := vpn - vpn%arch.PagesPerHugePage
	frame, err := p.os.frames.AllocContiguousAligned(arch.PagesPerHugePage, arch.PagesPerHugePage)
	if err != nil {
		return nil, err
	}
	for i := arch.PPN(0); i < arch.PagesPerHugePage; i++ {
		p.os.store.ZeroPage(frame + i)
	}
	if err := p.table.MapHuge(headVPN, frame, a.perm); err != nil {
		return nil, err
	}
	for i := arch.VPN(0); i < arch.PagesPerHugePage; i++ {
		p.pages[headVPN+i] = &pageInfo{ppn: frame + arch.PPN(i), perm: a.perm, huge: true}
	}
	return p.pages[vpn], nil
}

// Read copies memory out of the process address space, faulting pages in.
func (p *Process) Read(v arch.Virt, buf []byte) error {
	return p.access(v, uint64(len(buf)), arch.Read, func(pa arch.Phys, b []byte) {
		p.os.store.ReadInto(pa, b)
	}, buf)
}

// Write copies data into the process address space, faulting pages in and
// resolving copy-on-write.
func (p *Process) Write(v arch.Virt, data []byte) error {
	return p.access(v, uint64(len(data)), arch.Write, func(pa arch.Phys, b []byte) {
		p.os.store.Write(pa, b)
	}, data)
}

func (p *Process) access(v arch.Virt, n uint64, kind arch.AccessKind, op func(arch.Phys, []byte), buf []byte) error {
	if p.dead {
		return fmt.Errorf("hostos: access in dead process %q", p.name)
	}
	for n > 0 {
		pa, err := p.Translate(v, kind)
		if err != nil {
			return err
		}
		chunk := uint64(arch.PageSize) - v.Offset()
		if chunk > n {
			chunk = n
		}
		op(pa, buf[:chunk])
		buf = buf[chunk:]
		v += arch.Virt(chunk)
		n -= chunk
	}
	return nil
}

// ReadU32 reads a 32-bit word from process memory.
func (p *Process) ReadU32(v arch.Virt) (uint32, error) {
	var b [4]byte
	if err := p.Read(v, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteU32 writes a 32-bit word to process memory.
func (p *Process) WriteU32(v arch.Virt, x uint32) error {
	b := [4]byte{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24)}
	return p.Write(v, b[:])
}

// Mapped reports whether vpn is currently mapped (already faulted in).
func (p *Process) Mapped(vpn arch.VPN) bool {
	_, ok := p.pages[vpn]
	return ok
}

// PermOf returns the current page permissions of vpn, if mapped.
func (p *Process) PermOf(vpn arch.VPN) (arch.Perm, bool) {
	info, ok := p.pages[vpn]
	if !ok {
		return 0, false
	}
	return info.perm, true
}

// ForEachMapped calls fn for every currently-mapped page, in unspecified
// order.
func (p *Process) ForEachMapped(fn func(vpn arch.VPN, ppn arch.PPN, perm arch.Perm)) {
	for vpn, info := range p.pages {
		fn(vpn, info.ppn, info.perm)
	}
}

// PPNOf returns the physical page backing vpn, if mapped.
func (p *Process) PPNOf(vpn arch.VPN) (arch.PPN, bool) {
	info, ok := p.pages[vpn]
	if !ok {
		return 0, false
	}
	return info.ppn, true
}

// FaultPage services the demand-paging fault for vpn exactly as a first
// touch would — same frame allocation, same page-table insertion — without
// requiring any particular access permission. A page already mapped is a
// no-op. Trace replay uses it to reproduce a recorded first-touch order.
func (p *Process) FaultPage(vpn arch.VPN) error {
	if p.dead {
		return fmt.Errorf("hostos: fault in dead process %q", p.name)
	}
	if _, ok := p.pages[vpn]; ok {
		return nil
	}
	a := p.vmaFor(vpn.Base())
	if a == nil {
		return &Segfault{ASID: p.asid, Addr: vpn.Base(), Kind: arch.Read}
	}
	_, err := p.faultIn(vpn, a)
	return err
}

// PageBytes returns a copy of the full backing frame of a mapped page,
// bypassing permission checks (the trace recorder snapshots write-protected
// pages too).
func (p *Process) PageBytes(vpn arch.VPN) ([]byte, error) {
	info, ok := p.pages[vpn]
	if !ok {
		return nil, fmt.Errorf("hostos: page bytes of unmapped page %#x", vpn.Base())
	}
	return p.os.store.Read(info.ppn.Base(), arch.PageSize), nil
}

// SetPageBytes overwrites the backing frame of a mapped page with data
// (zero-padded to the page size), bypassing permission checks. Trace replay
// uses it to restore a recorded memory image onto freshly faulted frames.
func (p *Process) SetPageBytes(vpn arch.VPN, data []byte) error {
	info, ok := p.pages[vpn]
	if !ok {
		return fmt.Errorf("hostos: set bytes of unmapped page %#x", vpn.Base())
	}
	if len(data) > arch.PageSize {
		return fmt.Errorf("hostos: page image of %d bytes exceeds the page size", len(data))
	}
	p.os.store.ZeroPage(info.ppn)
	p.os.store.Write(info.ppn.Base(), data)
	return nil
}
