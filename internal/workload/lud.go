package workload

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildLUD generates the lud benchmark: in-place LU decomposition (Doolittle,
// no pivoting) of a diagonally-dominant matrix. Rodinia's lud proceeds in
// steps: for each k, one kernel scales the k-th column below the diagonal
// and updates the trailing submatrix. The working set shrinks as k grows,
// producing the regular-but-triangular pattern the paper cites as lud's
// signature.
func BuildLUD(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("lud", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		n := 128 * scale

		m := allocF32(p, n*n)
		r := newRNG(2024)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := r.float()
				if i == j {
					v += float32(n) // diagonal dominance keeps it stable
				}
				m.set(i*n+j, v)
			}
		}

		prog := &accel.Program{Name: "lud"}
		const rowsW = 1 // trailing rows per wavefront

		for k := 0; k < n-1; k++ {
			ph := newPhase(fmt.Sprintf("step-%d", k))
			pivot := m.get(k*n + k)
			for i0 := k + 1; i0 < n; i0 += rowsW {
				w := ph.wavefront()
				// The pivot row is shared by every wavefront: high reuse.
				for i := i0; i < i0+rowsW && i < n; i++ {
					aik := w.loadF32(m, i*n+k)
					w.compute(8)
					l := aik / pivot
					w.storeF32(m, i*n+k, l)
					for j0 := k + 1; j0 < n; j0 += 32 {
						nn := 32
						if n-j0 < nn {
							nn = n - j0
						}
						pr := w.loadF32s(m, k*n+j0, nn)
						row := w.loadF32s(m, i*n+j0, nn)
						w.compute(16)
						out := make([]float32, nn)
						for t := 0; t < nn; t++ {
							out[t] = row[t] - l*pr[t]
						}
						w.storeF32s(m, i*n+j0, out)
					}
				}
			}
			prog.Phases = append(prog.Phases, ph.build())
		}

		want := make([]float32, n*n)
		for i := range want {
			want[i] = m.get(i)
		}
		prog.Verify = expectF32(m, want, 1e-3)
		return prog
	})
}
