package workload

import "math"

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }
func exp64(x float64) float64      { return math.Exp(x) }
func sqrt64(x float64) float64     { return math.Sqrt(x) }
