package workload

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildHotspot generates the hotspot benchmark: an iterative 2-D thermal
// simulation. Each iteration reads a temperature grid and a power grid and
// writes the next temperature grid (ping-pong buffers), a 5-point stencil
// with strong spatial locality: each row's blocks are read three times
// across consecutive wavefronts but usually hit in the L2.
func BuildHotspot(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("hotspot", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		rows := 128 * scale
		cols := 160
		iters := 4

		tempA := allocF32(p, rows*cols)
		tempB := allocF32(p, rows*cols)
		power := allocF32(p, rows*cols)

		r := newRNG(99)
		for i := 0; i < rows*cols; i++ {
			tempA.set(i, 324+10*r.float())
			power.set(i, r.float()*0.5)
		}

		const (
			cap   = float32(0.5)
			rx    = float32(1.0)
			ry    = float32(1.0)
			rz    = float32(4.0)
			amb   = float32(80.0)
			rowsW = 1 // rows per wavefront
		)

		prog := &accel.Program{Name: "hotspot"}
		src, dst := tempA, tempB
		for it := 0; it < iters; it++ {
			ph := newPhase(fmt.Sprintf("iter-%d", it))
			for r0 := 0; r0 < rows; r0 += rowsW {
				w := ph.wavefront()
				for row := r0; row < r0+rowsW && row < rows; row++ {
					for c0 := 0; c0 < cols; c0 += 32 {
						cur := w.loadF32s(src, row*cols+c0, 32)
						up := cur
						if row > 0 {
							up = w.loadF32s(src, (row-1)*cols+c0, 32)
						}
						down := cur
						if row < rows-1 {
							down = w.loadF32s(src, (row+1)*cols+c0, 32)
						}
						pw := w.loadF32s(power, row*cols+c0, 32)
						w.compute(24)
						out := make([]float32, 32)
						for k := 0; k < 32; k++ {
							c := row*cols + c0 + k
							left := cur[k]
							if c0+k > 0 {
								left = src.get(c - 1)
							}
							right := cur[k]
							if c0+k < cols-1 {
								right = src.get(c + 1)
							}
							delta := (cap / rz) * (pw[k] +
								(up[k]+down[k]-2*cur[k])/ry +
								(left+right-2*cur[k])/rx +
								(amb-cur[k])/rz)
							out[k] = cur[k] + delta
						}
						w.storeF32s(dst, row*cols+c0, out)
					}
				}
			}
			prog.Phases = append(prog.Phases, ph.build())
			src, dst = dst, src
		}

		// Final result lives in src after the last swap.
		want := make([]float32, rows*cols)
		for i := range want {
			want[i] = src.get(i)
		}
		prog.Verify = expectF32(src, want, 1e-4)
		return prog
	})
}
