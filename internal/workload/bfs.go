package workload

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildBFS generates the bfs benchmark: level-synchronous breadth-first
// search over a random CSR graph. Every level is one kernel launch (phase);
// wavefronts take chunks of the frontier, read row pointers, stream edge
// lists, and probe the cost array at data-dependent neighbor indices. The
// neighbor probes make bfs the most irregular workload of the suite and the
// heaviest generator of border requests per cycle (paper Figure 5).
func BuildBFS(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("bfs", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		nodes := 32768 * scale
		degree := 12

		r := newRNG(7)
		// Build a connected-ish random graph in CSR form.
		adj := make([][]int, nodes)
		for v := 0; v < nodes; v++ {
			outs := make([]int, 0, degree+1)
			if v > 0 {
				outs = append(outs, r.intn(v)) // back edge keeps it reachable
			}
			for len(outs) < degree {
				outs = append(outs, r.intn(nodes))
			}
			adj[v] = sortedUnique(outs)
		}
		edges := 0
		for _, a := range adj {
			edges += len(a)
		}

		rowPtr := allocI32(p, nodes+1)
		colIdx := allocI32(p, edges)
		cost := allocI32(p, nodes)

		e := 0
		for v := 0; v < nodes; v++ {
			rowPtr.set(v, int32(e))
			for _, u := range adj[v] {
				colIdx.set(e, int32(u))
				e++
			}
		}
		rowPtr.set(nodes, int32(e))
		for v := 0; v < nodes; v++ {
			cost.set(v, -1)
		}
		cost.set(0, 0)

		prog := &accel.Program{Name: "bfs"}

		const chunk = 64 // frontier nodes per wavefront
		frontier := []int{0}
		level := int32(0)
		for len(frontier) > 0 {
			ph := newPhase(fmt.Sprintf("level-%d", level))
			var next []int
			for c0 := 0; c0 < len(frontier); c0 += chunk {
				w := ph.wavefront()
				hi := c0 + chunk
				if hi > len(frontier) {
					hi = len(frontier)
				}
				for _, v := range frontier[c0:hi] {
					// Row bounds: two adjacent ints, one coalesced access.
					bounds := w.loadI32s(rowPtr, v, 2)
					start, end := int(bounds[0]), int(bounds[1])
					if end <= start {
						continue
					}
					// Edge list: streaming, coalesced.
					nbrs := w.loadI32s(colIdx, start, end-start)
					for _, un := range nbrs {
						u := int(un)
						// Data-dependent probe of the cost array: the
						// irregular access that defeats coalescing.
						cu := w.loadI32(cost, u)
						w.compute(2)
						if cu < 0 {
							w.storeI32(cost, u, level+1)
							next = append(next, u)
						}
					}
				}
			}
			prog.Phases = append(prog.Phases, ph.build())
			frontier = next
			level++
		}

		want := make([]int32, nodes)
		for v := 0; v < nodes; v++ {
			want[v] = cost.get(v)
		}
		prog.Verify = expectI32(cost, want)
		return prog
	})
}
