package workload

import (
	"reflect"
	"testing"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
)

func newProc(t testing.TB) *hostos.Process {
	t.Helper()
	store, err := memory.NewStore(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hostos.New(store).NewProcess("wl")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegistry(t *testing.T) {
	want := []string{"backprop", "bfs", "hotspot", "lud", "nn", "nw", "pathfinder"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v", got)
	}
	if len(All()) != 7 {
		t.Error("All() should list the seven Rodinia-derived benchmarks")
	}
	if _, ok := ByName("bfs"); !ok {
		t.Error("ByName(bfs) missed")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("ByName(doom) should miss")
	}
	for _, s := range All() {
		if s.Description == "" || s.Build == nil {
			t.Errorf("%s: incomplete spec", s.Name)
		}
	}
}

// TestEveryWorkload builds each benchmark and checks the structural
// invariants every generator must satisfy: a non-trivial phased program,
// ops inside mapped memory, payloads on stores, sector-sized accesses, and
// a Verify that passes on the freshly generated state.
func TestEveryWorkload(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := newProc(t)
			prog, err := spec.Build(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			if prog.Name != spec.Name {
				t.Errorf("program name %q", prog.Name)
			}
			if len(prog.Phases) == 0 {
				t.Fatal("no phases")
			}
			if prog.Ops() < 1000 {
				t.Errorf("only %d ops; not a meaningful workload", prog.Ops())
			}
			if prog.Verify == nil {
				t.Fatal("no verifier")
			}
			if err := prog.Verify(p); err != nil {
				t.Fatalf("fresh state fails verification: %v", err)
			}
			checkOps(t, p, prog)
		})
	}
}

func checkOps(t *testing.T, p *hostos.Process, prog *accel.Program) {
	t.Helper()
	var reads, writes uint64
	for _, ph := range prog.Phases {
		if len(ph.Traces) == 0 {
			t.Errorf("phase %q has no traces", ph.Name)
		}
		for _, tr := range ph.Traces {
			if len(tr) == 0 {
				t.Error("empty trace")
			}
			for _, op := range tr {
				if op.Size == 0 || int(op.Size) > 32 {
					t.Fatalf("op size %d out of range", op.Size)
				}
				// The access must stay inside one 32-byte sector (and
				// therefore one cache block).
				if uint64(op.Addr)/32 != (uint64(op.Addr)+uint64(op.Size)-1)/32 {
					t.Fatalf("op at %#x size %d crosses a sector", op.Addr, op.Size)
				}
				switch op.Kind {
				case arch.Read:
					reads++
					if op.Data != nil {
						t.Fatal("load carries data")
					}
				case arch.Write:
					writes++
					if len(op.Data) != int(op.Size) {
						t.Fatalf("store payload %d bytes, size says %d", len(op.Data), op.Size)
					}
				}
				// Every access must translate (the page was faulted during
				// generation).
				if _, err := p.Translate(op.Addr, op.Kind); err != nil {
					t.Fatalf("op at %#x does not translate: %v", op.Addr, err)
				}
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Errorf("reads=%d writes=%d; expected both", reads, writes)
	}
}

// TestDeterministicGeneration: building the same workload twice in fresh
// processes yields identical traces — a requirement for reproducible
// experiments.
func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"bfs", "hotspot"} {
		spec, _ := ByName(name)
		p1, p2 := newProc(t), newProc(t)
		a, err := spec.Build(p1, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build(p2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Phases) != len(b.Phases) {
			t.Fatalf("%s: phase counts differ", name)
		}
		for i := range a.Phases {
			if !reflect.DeepEqual(a.Phases[i].Traces, b.Phases[i].Traces) {
				t.Fatalf("%s: phase %d traces differ", name, i)
			}
		}
	}
}

func TestScaleGrowsProblem(t *testing.T) {
	spec, _ := ByName("nn")
	small, err := spec.Build(newProc(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := spec.Build(newProc(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if big.Ops() <= small.Ops() {
		t.Errorf("scale 2 ops (%d) <= scale 1 ops (%d)", big.Ops(), small.Ops())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Verify must actually detect wrong results: corrupt one output word
	// and expect a failure.
	spec, _ := ByName("pathfinder")
	p := newProc(t)
	prog, err := spec.Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last store of the program and flip its memory location.
	var lastStore *accel.Op
	for pi := range prog.Phases {
		for ti := range prog.Phases[pi].Traces {
			for oi := range prog.Phases[pi].Traces[ti] {
				op := &prog.Phases[pi].Traces[ti][oi]
				if op.Kind == arch.Write {
					lastStore = op
				}
			}
		}
	}
	if lastStore == nil {
		t.Fatal("no store found")
	}
	if err := p.Write(lastStore.Addr, []byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	if err := prog.Verify(p); err == nil {
		t.Error("verifier missed deliberate corruption")
	}
}

func TestCoalescing(t *testing.T) {
	// A 32-float (128-byte) aligned store becomes exactly four 32-byte
	// sector ops carrying the full payload.
	p := newProc(t)
	arr := allocF32(p, 64) // panics (genError) only if the process is broken
	w := &wf{}
	vals := make([]float32, 32)
	for i := range vals {
		vals[i] = float32(i)
	}
	w.storeF32s(arr, 0, vals)
	if len(w.ops) != 4 {
		t.Fatalf("coalesced into %d ops, want 4", len(w.ops))
	}
	total := 0
	for _, op := range w.ops {
		if op.Size != 32 || len(op.Data) != 32 {
			t.Errorf("sector op size %d payload %d", op.Size, len(op.Data))
		}
		total += int(op.Size)
	}
	if total != 128 {
		t.Errorf("coverage %d bytes, want 128", total)
	}
	// Compute cycles attach to the first op only.
	w2 := &wf{}
	w2.compute(10)
	w2.loadF32s(arr, 0, 32)
	if w2.ops[0].Compute != 10 || w2.ops[1].Compute != 0 {
		t.Error("pending compute should attach to the first coalesced op")
	}
}

func TestBFSGraphIsTraversed(t *testing.T) {
	// The bfs result must be a valid BFS labelling: level 0 exactly at the
	// root, and every level-k node found through the trace.
	spec, _ := ByName("bfs")
	p := newProc(t)
	prog, err := spec.Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) < 3 {
		t.Errorf("bfs finished in %d levels; suspicious graph", len(prog.Phases))
	}
	// Phases shrink/grow with the frontier: at least one phase must have
	// many traces (wide frontier).
	max := 0
	for _, ph := range prog.Phases {
		if len(ph.Traces) > max {
			max = len(ph.Traces)
		}
	}
	if max < 8 {
		t.Errorf("widest frontier only %d wavefronts", max)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	// Concurrent sweeps share the registry; a caller mutating the slice
	// All() hands out must not corrupt it for everyone else.
	mutated := All()
	if len(mutated) == 0 {
		t.Fatal("empty registry")
	}
	original := mutated[0]
	mutated[0] = Spec{Name: "corrupted", Build: nil}
	fresh := All()
	if fresh[0].Name != original.Name || fresh[0].Build == nil {
		t.Fatalf("All() aliases the registry: mutation leaked (got %q)", fresh[0].Name)
	}
	if names := Names(); names[0] != original.Name {
		t.Fatalf("Names()[0] = %q after mutation, want %q", names[0], original.Name)
	}
}
