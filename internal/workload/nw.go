package workload

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildNW generates the nw benchmark: Needleman-Wunsch global sequence
// alignment. The DP matrix is processed in 16x16 tiles along
// anti-diagonals; tiles on the same diagonal are independent (one wavefront
// each), and each diagonal is a kernel launch. Parallelism therefore ramps
// up and back down — the dependency-limited wavefront pattern Rodinia's nw
// is known for.
func BuildNW(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("nw", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		n := 512 * scale // sequence length; DP matrix is (n+1)^2
		const tile = 16
		const penalty = int32(10)

		dim := n + 1
		score := allocI32(p, dim*dim)
		ref := allocI32(p, dim*dim) // substitution scores, as in Rodinia

		r := newRNG(555)
		for i := 1; i < dim; i++ {
			for j := 1; j < dim; j++ {
				ref.set(i*dim+j, int32(r.intn(21)-10))
			}
		}
		for i := 0; i < dim; i++ {
			score.set(i*dim, -penalty*int32(i))
			score.set(i, -penalty*int32(i))
		}

		prog := &accel.Program{Name: "nw"}
		tiles := n / tile
		for d := 0; d < 2*tiles-1; d++ {
			ph := newPhase(fmt.Sprintf("diag-%d", d))
			for ti := 0; ti <= d; ti++ {
				tj := d - ti
				if ti >= tiles || tj >= tiles {
					continue
				}
				w := ph.wavefront()
				// Tile (ti, tj) covers rows/cols [t*tile+1, t*tile+tile].
				r0 := ti*tile + 1
				c0 := tj*tile + 1
				// Load the halo row above and column left of the tile.
				w.loadI32s(score, (r0-1)*dim+c0-1, tile+1)
				for i := r0; i < r0+tile; i++ {
					w.loadI32(score, i*dim+c0-1)
				}
				for i := r0; i < r0+tile; i++ {
					// Reference row and the tile row are streamed.
					refs := w.loadI32s(ref, i*dim+c0, tile)
					w.compute(3 * tile)
					out := make([]int32, tile)
					for j := c0; j < c0+tile; j++ {
						diag := score.get((i-1)*dim+j-1) + refs[j-c0]
						up := score.get((i-1)*dim+j) - penalty
						left := score.get(i*dim+j-1) - penalty
						best := diag
						if up > best {
							best = up
						}
						if left > best {
							best = left
						}
						score.set(i*dim+j, best)
						out[j-c0] = best
					}
					w.storeI32s(score, i*dim+c0, out)
				}
			}
			prog.Phases = append(prog.Phases, ph.build())
		}

		want := make([]int32, dim*dim)
		for i := range want {
			want[i] = score.get(i)
		}
		prog.Verify = expectI32(score, want)
		return prog
	})
}
