// Package workload implements the seven Rodinia-derived benchmarks the
// paper evaluates (backprop, bfs, hotspot, lud, nn, nw, pathfinder) as real
// algorithms over simulated process memory.
//
// Each generator allocates its arrays in the process address space, runs
// the algorithm functionally (reading and writing simulated memory), and
// records the per-wavefront, coalesced memory-reference traces a GPU
// implementation of the kernel would produce. Replaying the traces through
// the timing simulator is therefore driven by real, data-dependent access
// patterns — bfs really chases the edges of a random graph — and the final
// memory image can be verified after the timed run.
package workload

import (
	"fmt"
	"sort"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

// Spec names one benchmark and how to build it.
type Spec struct {
	// Name is the Rodinia benchmark name.
	Name string
	// Description summarizes the access pattern.
	Description string
	// Build generates the program in the given process. scale >= 1 grows
	// the problem size; 1 is the default used by the paper-figure harness.
	Build func(p *hostos.Process, scale int) (*accel.Program, error)
}

// registry is populated here and never mutated afterwards: concurrent
// sweeps read it from many goroutines, so it must stay effectively
// immutable. All returns a copy so no caller can alias (and then mutate)
// the backing array.
var registry = []Spec{
	{Name: "backprop", Description: "neural-net training layer; regular streaming with heavy input reuse", Build: BuildBackprop},
	{Name: "bfs", Description: "breadth-first search over a CSR random graph; irregular, data-dependent", Build: BuildBFS},
	{Name: "hotspot", Description: "2D thermal stencil; regular with 2D locality", Build: BuildHotspot},
	{Name: "lud", Description: "LU decomposition; triangular, shrinking working set", Build: BuildLUD},
	{Name: "nn", Description: "nearest-neighbor distance scan; pure streaming", Build: BuildNN},
	{Name: "nw", Description: "Needleman-Wunsch alignment; wavefront over tiled DP matrix", Build: BuildNW},
	{Name: "pathfinder", Description: "dynamic-programming grid walk; row streaming", Build: BuildPathfinder},
}

// All returns the seven benchmarks in the paper's order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Names returns the benchmark names in order.
func Names() []string {
	var names []string
	for _, s := range registry {
		names = append(names, s.Name)
	}
	return names
}

// ByName finds a benchmark.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// genError carries a generation failure up through the helper panics.
type genError struct{ err error }

// BuildError is the typed failure of a workload (or trace-replay) builder.
// It names the generator and wraps the underlying cause unmodified, so
// errors.As reaches typed causes — a replay-layer decode error surfaces as
// itself, not as a recovered panic flattened into a generation string.
type BuildError struct {
	// Workload is the generator that failed.
	Workload string
	// Err is the underlying cause, reachable via errors.As/Is.
	Err error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("workload: building %s: %v", e.Workload, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// run invokes fn, converting helper panics back into a typed *BuildError.
// Only the package's own genError marker is captured; any foreign panic (a
// genuine bug) propagates — run must never disguise one as a generation
// failure.
func run(name string, fn func() *accel.Program) (prog *accel.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ge, ok := r.(genError); ok {
				err = &BuildError{Workload: name, Err: ge.err}
				return
			}
			panic(r)
		}
	}()
	return fn(), nil
}

func check(err error) {
	if err != nil {
		panic(genError{err})
	}
}

// f32 is a float32 array in process memory.
type f32 struct {
	p    *hostos.Process
	base arch.Virt
	n    int
}

func allocF32(p *hostos.Process, n int) f32 {
	base, err := p.Mmap(uint64(n)*4, arch.PermRW)
	check(err)
	return f32{p: p, base: base, n: n}
}

func (a f32) addr(i int) arch.Virt { return a.base + arch.Virt(i)*4 }

func (a f32) get(i int) float32 {
	v, err := a.p.ReadU32(a.addr(i))
	check(err)
	return f32frombits(v)
}

func (a f32) set(i int, v float32) {
	check(a.p.WriteU32(a.addr(i), f32bits(v)))
}

// i32 is an int32 array in process memory.
type i32 struct {
	p    *hostos.Process
	base arch.Virt
	n    int
}

func allocI32(p *hostos.Process, n int) i32 {
	base, err := p.Mmap(uint64(n)*4, arch.PermRW)
	check(err)
	return i32{p: p, base: base, n: n}
}

func (a i32) addr(i int) arch.Virt { return a.base + arch.Virt(i)*4 }

func (a i32) get(i int) int32 {
	v, err := a.p.ReadU32(a.addr(i))
	check(err)
	return int32(v)
}

func (a i32) set(i int, v int32) {
	check(a.p.WriteU32(a.addr(i), uint32(v)))
}

// wf records one wavefront's trace while the algorithm executes.
type wf struct {
	ops     accel.Trace
	pending uint32 // compute cycles to attach to the next op
}

// compute queues c cycles of computation before the next access.
func (w *wf) compute(c int) { w.pending += uint32(c) }

func (w *wf) record(kind arch.AccessKind, addr arch.Virt, size int, data []byte) {
	c := w.pending
	if c > 0xffff {
		c = 0xffff
	}
	w.pending = 0
	w.ops = append(w.ops, accel.Op{
		Compute: uint16(c),
		Kind:    kind,
		Size:    uint8(size),
		Addr:    addr,
		Data:    data,
	})
}

// sectorBytes is the coalescing granularity: a GPU memory unit merges a
// wavefront's lane accesses into 32-byte sectors, so a contiguous 128-byte
// block costs four requests at the L1 — which hit the same cached block.
// This preserves the cache-filtering effect the paper's configurations
// differ by (a cacheless path pays all four at DRAM).
const sectorBytes = 32

// coalesce records one op per 32-byte sector overlapped by [addr,
// addr+size), modelling the coalescing a GPU memory unit performs for a
// wavefront's lanes. For stores, data holds the bytes of the whole range
// (indexed from addr) so each op carries its exact payload — replay is then
// byte-for-byte faithful even for in-place algorithms.
func (w *wf) coalesce(kind arch.AccessKind, addr arch.Virt, size int, data []byte) {
	end := addr + arch.Virt(size)
	for a := addr; a < end; {
		sectorEnd := arch.Virt(arch.AlignDown(uint64(a), sectorBytes) + sectorBytes)
		if sectorEnd > end {
			sectorEnd = end
		}
		n := int(sectorEnd - a)
		var d []byte
		if kind == arch.Write && data != nil {
			off := int(a - addr)
			d = data[off : off+n]
		}
		w.record(kind, a, n, d)
		a = sectorEnd
	}
}

// rangeBytes reads len bytes at v from process memory (the just-written
// store payload).
func rangeBytes(p *hostos.Process, v arch.Virt, n int) []byte {
	buf := make([]byte, n)
	check(p.Read(v, buf))
	return buf
}

// loadF32s functionally reads n floats starting at index i0 and records
// coalesced load ops for the range.
func (w *wf) loadF32s(a f32, i0, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = a.get(i0 + i)
	}
	w.coalesce(arch.Read, a.addr(i0), n*4, nil)
	return out
}

// storeF32s functionally writes vals starting at i0 and records coalesced
// store ops carrying the stored bytes.
func (w *wf) storeF32s(a f32, i0 int, vals []float32) {
	for i, v := range vals {
		a.set(i0+i, v)
	}
	w.coalesce(arch.Write, a.addr(i0), len(vals)*4, rangeBytes(a.p, a.addr(i0), len(vals)*4))
}

// loadF32 is a single, uncoalescable load (irregular access).
func (w *wf) loadF32(a f32, i int) float32 {
	v := a.get(i)
	w.record(arch.Read, a.addr(i), 4, nil)
	return v
}

// storeF32 is a single, uncoalescable store.
func (w *wf) storeF32(a f32, i int, v float32) {
	a.set(i, v)
	b := f32bits(v)
	w.record(arch.Write, a.addr(i), 4, []byte{byte(b), byte(b >> 8), byte(b >> 16), byte(b >> 24)})
}

// loadI32 is a single int load.
func (w *wf) loadI32(a i32, i int) int32 {
	v := a.get(i)
	w.record(arch.Read, a.addr(i), 4, nil)
	return v
}

// storeI32 is a single int store.
func (w *wf) storeI32(a i32, i int, v int32) {
	a.set(i, v)
	b := uint32(v)
	w.record(arch.Write, a.addr(i), 4, []byte{byte(b), byte(b >> 8), byte(b >> 16), byte(b >> 24)})
}

// loadI32s reads n ints from i0 with coalesced ops.
func (w *wf) loadI32s(a i32, i0, n int) []int32 {
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = a.get(i0 + i)
	}
	w.coalesce(arch.Read, a.addr(i0), n*4, nil)
	return out
}

// storeI32s writes n ints from i0 with coalesced ops.
func (w *wf) storeI32s(a i32, i0 int, vals []int32) {
	for i, v := range vals {
		a.set(i0+i, v)
	}
	w.coalesce(arch.Write, a.addr(i0), len(vals)*4, rangeBytes(a.p, a.addr(i0), len(vals)*4))
}

// phase collects wavefront traces into an accel.Phase.
type phase struct {
	name string
	wfs  []*wf
}

func newPhase(name string) *phase { return &phase{name: name} }

func (ph *phase) wavefront() *wf {
	w := &wf{}
	ph.wfs = append(ph.wfs, w)
	return w
}

func (ph *phase) build() accel.Phase {
	out := accel.Phase{Name: ph.name}
	for _, w := range ph.wfs {
		if len(w.ops) > 0 {
			out.Traces = append(out.Traces, w.ops)
		}
	}
	return out
}

// expectF32 builds a Verify function comparing an f32 array to expected
// values within a tolerance.
func expectF32(a f32, want []float32, tol float32) func(p *hostos.Process) error {
	return func(p *hostos.Process) error {
		for i, w := range want {
			v, err := p.ReadU32(a.addr(i))
			if err != nil {
				return err
			}
			got := f32frombits(v)
			d := got - w
			if d < 0 {
				d = -d
			}
			lim := tol
			if w > 0 && w*tol > lim {
				lim = w * tol
			} else if w < 0 && -w*tol > lim {
				lim = -w * tol
			}
			if d > lim {
				return fmt.Errorf("workload: element %d = %v, want %v", i, got, w)
			}
		}
		return nil
	}
}

// expectI32 builds a Verify function comparing an i32 array exactly.
func expectI32(a i32, want []int32) func(p *hostos.Process) error {
	return func(p *hostos.Process) error {
		for i, w := range want {
			v, err := p.ReadU32(a.addr(i))
			if err != nil {
				return err
			}
			if int32(v) != w {
				return fmt.Errorf("workload: element %d = %d, want %d", i, int32(v), w)
			}
		}
		return nil
	}
}

// rng is a small deterministic xorshift generator so graphs and inputs are
// reproducible without math/rand's global state.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float32 {
	return float32(r.next()%1000000) / 1000000
}

// sortedUnique sorts xs and drops duplicates.
func sortedUnique(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
