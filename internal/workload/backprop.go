package workload

import (
	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildBackprop generates the backprop benchmark: one training step of a
// two-layer perceptron — forward pass through a hidden layer, output error,
// and a weight-update backward pass. The access pattern is regular: each
// hidden unit streams a long weight row while reusing the (cached) input
// vector, which is why backprop generates the fewest border crossings per
// cycle of the suite (paper Figure 5).
func BuildBackprop(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("backprop", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		in := 128 * scale
		hid := 384
		// in*hid*4 = 192 KB: lives in the 256 KB L2 after first touch.
		out := 32

		input := allocF32(p, in)
		w1 := allocF32(p, in*hid) // hidden weights, row per hidden unit
		hidden := allocF32(p, hid)
		w2 := allocF32(p, hid*out)
		output := allocF32(p, out)
		target := allocF32(p, out)
		delta := allocF32(p, out)

		r := newRNG(42)
		for i := 0; i < in; i++ {
			input.set(i, r.float())
		}
		for i := 0; i < in*hid; i++ {
			w1.set(i, r.float()*0.1)
		}
		for i := 0; i < hid*out; i++ {
			w2.set(i, r.float()*0.1)
		}
		for i := 0; i < out; i++ {
			target.set(i, r.float())
		}

		prog := &accel.Program{Name: "backprop"}

		const epochs = 3
		for epoch := 0; epoch < epochs; epoch++ {

			// Phase 1: forward, input -> hidden. One wavefront per hidden unit
			// group; each streams its weight rows against the shared input.
			const group = 1 // hidden units per wavefront
			fwd := newPhase("layerforward")
			for h0 := 0; h0 < hid; h0 += group {
				w := fwd.wavefront()
				for h := h0; h < h0+group && h < hid; h++ {
					sum := float32(0)
					for i := 0; i < in; i += 32 {
						xs := w.loadF32s(input, i, 32)
						ws := w.loadF32s(w1, h*in+i, 32)
						w.compute(16)
						for k := range xs {
							sum += xs[k] * ws[k]
						}
					}
					w.compute(8)
					w.storeF32(hidden, h, squash(sum))
				}
			}
			prog.Phases = append(prog.Phases, fwd.build())

			// Phase 2: forward, hidden -> output, plus output error.
			fwd2 := newPhase("layerforward2")
			for o := 0; o < out; o++ {
				w := fwd2.wavefront()
				sum := float32(0)
				for h := 0; h < hid; h += 32 {
					hs := w.loadF32s(hidden, h, 32)
					ws := w.loadF32s(w2, o*hid+h, 32)
					w.compute(16)
					for k := range hs {
						sum += hs[k] * ws[k]
					}
				}
				y := squash(sum)
				w.storeF32(output, o, y)
				t := w.loadF32(target, o)
				w.compute(6)
				w.storeF32(delta, o, y*(1-y)*(t-y))
			}
			prog.Phases = append(prog.Phases, fwd2.build())

			// Phase 3: weight update (adjust_weights): stream w1 again, adding
			// the propagated error signal.
			const eta = float32(0.3)
			upd := newPhase("adjustweights")
			// Hidden-layer error folded into a per-hidden scalar first
			// (computed by the same wavefront that updates the unit's row).
			for h0 := 0; h0 < hid; h0 += group {
				w := upd.wavefront()
				for h := h0; h < h0+group && h < hid; h++ {
					hv := w.loadF32(hidden, h)
					errH := float32(0)
					for o := 0; o < out; o += 32 {
						n := 32
						if out-o < n {
							n = out - o
						}
						ds := w.loadF32s(delta, o, n)
						for k := 0; k < n; k++ {
							errH += ds[k] * w2.get((o+k)*hid+h)
						}
					}
					errH *= hv * (1 - hv)
					w.compute(10)
					for i := 0; i < in; i += 32 {
						xs := w.loadF32s(input, i, 32)
						ws := w.loadF32s(w1, h*in+i, 32)
						w.compute(16)
						upd32 := make([]float32, 32)
						for k := range xs {
							upd32[k] = ws[k] + eta*errH*xs[k]
						}
						w.storeF32s(w1, h*in+i, upd32)
					}
				}
			}
			prog.Phases = append(prog.Phases, upd.build())
		}

		// Expected outputs captured from the functional run.
		wantHidden := make([]float32, hid)
		for h := 0; h < hid; h++ {
			wantHidden[h] = hidden.get(h)
		}
		wantOut := make([]float32, out)
		for o := 0; o < out; o++ {
			wantOut[o] = output.get(o)
		}
		checkHidden := expectF32(hidden, wantHidden, 1e-5)
		checkOut := expectF32(output, wantOut, 1e-5)
		prog.Verify = func(pr *hostos.Process) error {
			if err := checkHidden(pr); err != nil {
				return err
			}
			return checkOut(pr)
		}
		return prog
	})
}

// squash is the logistic activation used by Rodinia's backprop.
func squash(x float32) float32 {
	// 1/(1+e^-x) via a few terms is enough for a workload generator; use
	// the real thing for determinism across runs.
	return float32(1.0 / (1.0 + exp64(-float64(x))))
}
