package workload

import (
	"errors"
	"testing"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
)

// TestGenerationErrorsSurfaceAsErrors: the helper panics inside a builder
// convert back to ordinary errors at the Build boundary (the run/check
// recover pair), rather than crashing the caller.
func TestGenerationErrorsSurfaceAsErrors(t *testing.T) {
	// A machine too small to hold any workload: allocation fails mid-build.
	store, err := memory.NewStore(64 * arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hostos.New(store).NewProcess("tiny")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range All() {
		if _, err := spec.Build(p, 1); err == nil {
			t.Errorf("%s: building in a 256 KB machine should fail cleanly", spec.Name)
		} else if !errors.Is(err, hostos.ErrOutOfMemory) {
			t.Errorf("%s: error %v does not unwrap to ErrOutOfMemory", spec.Name, err)
		}
		if p.Dead() {
			t.Fatalf("%s: build failure killed the process", spec.Name)
		}
	}
}

// TestForeignPanicsPropagate: run() only converts the package's own
// generation errors; any other panic is a bug and must escape.
func TestForeignPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("foreign panic was swallowed")
		}
	}()
	_, _ = run("test", func() *accel.Program { panic("unrelated bug") })
}

// TestBuildFailureIsTyped: a generation failure surfaces as a *BuildError
// naming the generator, with the original cause reachable via errors.As —
// run()'s recover must not flatten typed causes into anonymous errors.
// (Would fail before run() wrapped recoveries in BuildError: the bare
// cause came back with no generator attribution and no stable type.)
func TestBuildFailureIsTyped(t *testing.T) {
	type causeError struct{ error }
	cause := causeError{errors.New("decode failed")}
	_, err := run("replayed", func() *accel.Program {
		check(cause)
		return nil
	})
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T) is not a *BuildError", err, err)
	}
	if be.Workload != "replayed" {
		t.Errorf("BuildError names %q, want %q", be.Workload, "replayed")
	}
	var ce causeError
	if !errors.As(err, &ce) {
		t.Errorf("typed cause lost: %v", err)
	}
}

// TestRNGDeterminism: the xorshift generator is stable across calls with
// the same seed (workload reproducibility depends on it).
func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("rng diverged")
		}
	}
	// Zero seed is remapped, not degenerate.
	z := newRNG(0)
	if z.next() == 0 && z.next() == 0 {
		t.Error("zero-seed rng is stuck")
	}
	// intn stays in range; float stays in [0,1).
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if n := r.intn(13); n < 0 || n >= 13 {
			t.Fatalf("intn out of range: %d", n)
		}
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]int{5, 3, 5, 1, 3, 3})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if out := sortedUnique(nil); len(out) != 0 {
		t.Error("nil input should stay empty")
	}
}
