package workload

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildPathfinder generates the pathfinder benchmark: dynamic programming
// over a 2-D grid, one row per kernel launch. Each step reads the previous
// result row (with left/right neighbors) and a row of the weight grid and
// writes the new result row — almost pure streaming with a tiny reused
// halo, which is why pathfinder shows essentially no overhead under the
// latency-tolerant configurations in Figure 4.
func BuildPathfinder(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("pathfinder", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		cols := 16384 * scale
		rows := 24

		wall := allocI32(p, rows*cols)
		resultA := allocI32(p, cols)
		resultB := allocI32(p, cols)

		r := newRNG(31415)
		for i := 0; i < rows*cols; i++ {
			wall.set(i, int32(r.intn(10)))
		}
		for j := 0; j < cols; j++ {
			resultA.set(j, wall.get(j))
		}

		prog := &accel.Program{Name: "pathfinder"}
		src, dst := resultA, resultB
		const chunk = 64 // columns per wavefront
		for row := 1; row < rows; row++ {
			ph := newPhase(fmt.Sprintf("row-%d", row))
			for c0 := 0; c0 < cols; c0 += chunk {
				w := ph.wavefront()
				for j0 := c0; j0 < c0+chunk && j0 < cols; j0 += 32 {
					prev := w.loadI32s(src, j0, 32)
					ws := w.loadI32s(wall, row*cols+j0, 32)
					w.compute(12)
					out := make([]int32, 32)
					for k := 0; k < 32; k++ {
						j := j0 + k
						best := prev[k]
						if j > 0 {
							if v := src.get(j - 1); v < best {
								best = v
							}
						}
						if j < cols-1 {
							if v := src.get(j + 1); v < best {
								best = v
							}
						}
						out[k] = best + ws[k]
					}
					w.storeI32s(dst, j0, out)
				}
			}
			prog.Phases = append(prog.Phases, ph.build())
			src, dst = dst, src
		}

		want := make([]int32, cols)
		for j := range want {
			want[j] = src.get(j)
		}
		prog.Verify = expectI32(src, want)
		return prog
	})
}
