package workload

import (
	"bordercontrol/internal/accel"
	"bordercontrol/internal/hostos"
)

// BuildNN generates the nn benchmark: the nearest-neighbor distance kernel.
// The GPU computes the Euclidean distance from a target coordinate to every
// record of a large location database; the host then selects the k nearest
// (as in Rodinia, selection is not on the accelerator). Pure streaming —
// every byte is touched exactly once.
func BuildNN(p *hostos.Process, scale int) (*accel.Program, error) {
	return run("nn", func() *accel.Program {
		if scale < 1 {
			scale = 1
		}
		records := 96 * 1024 * scale

		lat := allocF32(p, records)
		lng := allocF32(p, records)
		dist := allocF32(p, records)

		r := newRNG(1234)
		for i := 0; i < records; i++ {
			lat.set(i, r.float()*180-90)
			lng.set(i, r.float()*360-180)
		}
		const (
			tLat = float32(29.97)
			tLng = float32(-95.35)
		)

		prog := &accel.Program{Name: "nn"}
		ph := newPhase("euclid")
		const chunk = 4096 // records per wavefront
		for c0 := 0; c0 < records; c0 += chunk {
			w := ph.wavefront()
			for i := c0; i < c0+chunk && i < records; i += 32 {
				las := w.loadF32s(lat, i, 32)
				lns := w.loadF32s(lng, i, 32)
				w.compute(96)
				out := make([]float32, 32)
				for k := 0; k < 32; k++ {
					dla := float64(las[k] - tLat)
					dln := float64(lns[k] - tLng)
					out[k] = float32(sqrt64(dla*dla + dln*dln))
				}
				w.storeF32s(dist, i, out)
			}
		}
		prog.Phases = append(prog.Phases, ph.build())

		want := make([]float32, records)
		for i := range want {
			want[i] = dist.get(i)
		}
		prog.Verify = expectF32(dist, want, 1e-4)
		return prog
	})
}
