package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeObservationPurity: a sweep artifact produced while the daemon
// is being hammered with concurrent /v1/metrics scrapes and /v1/watch
// tails is byte-identical to one produced unobserved, and the firehose
// delivers every job's events in seq order.
func TestServeObservationPurity(t *testing.T) {
	ctx := context.Background()
	req := tinySweepRequest()

	// Baseline: an unobserved daemon.
	_, quietC := startTestServer(t, Options{Version: "test"})
	st, err := quietC.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quietC.Stream(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	want, err := quietC.Artifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Observed: scrapers and watchers run through the whole job.
	_, c := startTestServer(t, Options{Version: "test"})
	obsCtx, stopObs := context.WithCancel(ctx)
	defer stopObs()
	var wg sync.WaitGroup
	var watched []WatchEvent
	var watchedMu sync.Mutex
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Watch(obsCtx, 0, func(we WatchEvent) {
				watchedMu.Lock()
				watched = append(watched, we)
				watchedMu.Unlock()
			})
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for obsCtx.Err() == nil {
				if _, err := c.MetricsText(obsCtx); err != nil && obsCtx.Err() == nil {
					t.Errorf("metrics scrape failed mid-job: %v", err)
					return
				}
			}
		}()
	}

	st, err = c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Stream(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("observed job: state = %s (%s), want done", final.State, final.Error)
	}
	got, err := c.Artifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	stopObs()
	wg.Wait()
	if got != want {
		t.Errorf("observed artifact differs from unobserved baseline:\n--- want\n%s--- got\n%s", want, got)
	}

	// Per-job ordering on the multiplexed stream: each watcher saw this
	// job's events with strictly increasing seq (contiguous from 1, since
	// nothing here can overflow the default ring).
	watchedMu.Lock()
	defer watchedMu.Unlock()
	perJob := map[string][]int{}
	for _, we := range watched {
		if we.Type == "drop" {
			t.Fatalf("drop marker on an idle-sized ring: %+v", we)
		}
		perJob[we.Job] = append(perJob[we.Job], we.Seq)
	}
	if len(perJob[st.ID]) == 0 {
		t.Fatalf("watchers saw no events for job %s", st.ID)
	}
	// Two watchers ⇒ the job's seq sequence is two interleaved full copies;
	// split per watcher is lost, but each copy is in order on the global
	// cursor, so checking that seqs never decrease by more than a restart
	// is weaker than we want. Instead: count copies and verify each seq
	// appears exactly twice and max(seq) == count of distinct seqs.
	counts := map[int]int{}
	maxSeq := 0
	for _, s := range perJob[st.ID] {
		counts[s]++
		if s > maxSeq {
			maxSeq = s
		}
	}
	for s := 1; s <= maxSeq; s++ {
		if counts[s] != 2 {
			t.Errorf("seq %d of job %s delivered %d times across 2 watchers, want 2", s, st.ID, counts[s])
		}
	}
}

// TestServeWatchPerJobSeqOrder: a single watcher sees any one job's
// events in exactly seq order 1..N even with two jobs interleaving on the
// global stream.
func TestServeWatchPerJobSeqOrder(t *testing.T) {
	ctx := context.Background()
	_, c := startTestServer(t, Options{Version: "test"})

	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var mu sync.Mutex
	perJob := map[string][]int{}
	var cursorOK atomic.Bool
	cursorOK.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastCursor uint64
		_ = c.Watch(watchCtx, 0, func(we WatchEvent) {
			if we.Cursor <= lastCursor {
				cursorOK.Store(false)
			}
			lastCursor = we.Cursor
			mu.Lock()
			perJob[we.Job] = append(perJob[we.Job], we.Seq)
			mu.Unlock()
		})
	}()

	req := tinySweepRequest()
	st1, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	req2 := tinySweepRequest()
	req2.Sweep.GenOps = 128 // distinct artifact: no cache hit, real run
	st2, err := c.Submit(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, st1.ID, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, st2.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Let the watcher drain the tail of the stream before stopping it.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n1, n2 := len(perJob[st1.ID]), len(perJob[st2.ID])
		mu.Unlock()
		if n1 >= 6 && n2 >= 6 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("watcher never saw both jobs' streams (saw %d and %d events)", n1, n2)
		case <-time.After(10 * time.Millisecond):
		}
	}
	stopWatch()
	<-done

	if !cursorOK.Load() {
		t.Error("global cursor was not strictly increasing")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range []string{st1.ID, st2.ID} {
		seqs := perJob[id]
		for i, s := range seqs {
			if s != i+1 {
				t.Errorf("job %s: delivered seqs %v, want 1..%d in order", id, seqs, len(seqs))
				break
			}
		}
	}
}

// TestServeEventsAfter: ?after=N replays only events with Seq > N.
func TestServeEventsAfter(t *testing.T) {
	ctx := context.Background()
	_, c := startTestServer(t, Options{Version: "test"})
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Stream(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Events < 3 {
		t.Fatalf("job finished with %d events, want >= 3", final.Events)
	}

	resp, err := http.Get(c.Base + "/v1/jobs/" + st.ID + "/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var seqs []int
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != final.Events-2 {
		t.Fatalf("got %d events after=2, want %d", len(seqs), final.Events-2)
	}
	for i, s := range seqs {
		if s != i+3 {
			t.Fatalf("seqs = %v, want 3..%d", seqs, final.Events)
		}
	}

	if resp, err := http.Get(c.Base + "/v1/jobs/" + st.ID + "/events?after=bogus"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("after=bogus: status %d, want 400", resp.StatusCode)
		}
	}
}

// truncOnce aborts the first matching streaming response after its first
// line, simulating a connection drop mid-stream.
type truncOnce struct {
	next      http.Handler
	path      string
	triggered atomic.Bool
}

type truncWriter struct {
	http.ResponseWriter
}

func (w *truncWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	if bytes.IndexByte(b, '\n') >= 0 {
		if f, ok := w.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (w *truncWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (h *truncOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, h.path) && r.URL.Query().Get("after") == "" && h.triggered.CompareAndSwap(false, true) {
		h.next.ServeHTTP(&truncWriter{ResponseWriter: w}, r)
		return
	}
	h.next.ServeHTTP(w, r)
}

// TestServeStreamReconnect: Client.Stream survives a dropped connection by
// resuming with ?after=<last seq>; every event is delivered exactly once
// and the final status is the job's terminal state.
func TestServeStreamReconnect(t *testing.T) {
	ctx := context.Background()
	srv := New(Options{Version: "test"})
	runCtx, cancel := context.WithCancel(ctx)
	srv.Start(runCtx)
	tr := &truncOnce{next: srv.Handler(), path: "/events"}
	hs := httptest.NewServer(tr)
	t.Cleanup(func() { hs.Close(); cancel(); srv.Stop() })
	c := &Client{Base: hs.URL}

	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	final, err := c.Stream(ctx, st.ID, func(e Event) { seqs = append(seqs, e.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	if !tr.triggered.Load() {
		t.Fatal("the truncating middleware never fired; the test exercised nothing")
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("delivered seqs %v, want contiguous 1..%d exactly once", seqs, len(seqs))
		}
	}
	if len(seqs) != final.Events {
		t.Fatalf("delivered %d events, job has %d", len(seqs), final.Events)
	}
}

// TestServeMetricsExposition: the page parses, carries the daemon series
// and — after a completed sweep — the bridged job series.
func TestServeMetricsExposition(t *testing.T) {
	ctx := context.Background()
	_, c := startTestServer(t, Options{Version: "test"})
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	for _, fam := range []string{
		"bc_daemon_info",
		"bc_daemon_uptime_seconds",
		"bc_daemon_queue_depth",
		"bc_daemon_queue_capacity",
		"bc_daemon_jobs",
		"bc_daemon_cache_entries",
		"bc_daemon_cache_hits_total",
		"bc_daemon_cache_misses_total",
		"bc_daemon_cache_hit_ratio",
		"bc_daemon_workers_spawned_total",
		"bc_daemon_workers_active",
		"bc_daemon_watch_subscribers",
		"bc_daemon_watch_events_total",
		"bc_daemon_watch_dropped_total",
		"bc_job_sweep_cells",
		"bc_job_sweep_events",
		"bc_job_sweep_ops",
		"bc_job_sweep_bc_checks",
	} {
		if !m.Has(fam) {
			t.Errorf("exposition lacks family %q:\n%s", fam, text)
		}
	}
	if m[`bc_daemon_jobs{state="done"}`] != 1 {
		t.Errorf(`bc_daemon_jobs{state="done"} = %v, want 1`, m[`bc_daemon_jobs{state="done"}`])
	}
	if m["bc_job_sweep_cells"] != 2 {
		t.Errorf("bc_job_sweep_cells = %v, want 2 (the tiny grid)", m["bc_job_sweep_cells"])
	}
	if m[`bc_daemon_info{version="test"}`] != 1 {
		t.Errorf("bc_daemon_info version label missing:\n%s", text)
	}
}

// TestServeHealthz: the enriched document reports uptime, queue shape,
// job counts by state and the code version.
func TestServeHealthz(t *testing.T) {
	ctx := context.Background()
	_, c := startTestServer(t, Options{Version: "test", QueueDepth: 7})
	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Version != "test" {
		t.Errorf("health = %+v, want ok with version test", h)
	}
	if h.QueueCapacity != 7 {
		t.Errorf("queue capacity = %d, want 7", h.QueueCapacity)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", h.UptimeSeconds)
	}
	if h.Jobs[StateDone] != 1 {
		t.Errorf("jobs = %v, want done=1", h.Jobs)
	}
	for _, state := range States {
		if _, ok := h.Jobs[state]; !ok {
			t.Errorf("jobs map lacks state %q: %v", state, h.Jobs)
		}
	}
}

// TestParseMetrics: the parser accepts the format /v1/metrics emits and
// rejects malformed lines.
func TestParseMetrics(t *testing.T) {
	m, err := ParseMetrics("# TYPE a counter\na 1\nb{x=\"y\"} 2.5\nc_bucket{le=\"+Inf\"} 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if m["a"] != 1 || m[`b{x="y"}`] != 2.5 || m[`c_bucket{le="+Inf"}`] != 3 {
		t.Errorf("parsed = %v", m)
	}
	if !m.Has("a") || !m.Has("b") || !m.Has("c") || m.Has("zz") {
		t.Errorf("family matching wrong: %v", m)
	}
	for _, bad := range []string{"novalue", "1bad 2", "a notanumber", "a 1\na 2"} {
		if _, err := ParseMetrics(bad); err == nil {
			t.Errorf("ParseMetrics(%q): want error", bad)
		}
	}
}
