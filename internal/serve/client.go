package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a minimal typed client for the serve HTTP API, used by
// `bctool submit` and the smoke tests.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8373".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// WaitReady polls /v1/healthz until the service answers or the timeout
// elapses — the bridge between spawning a daemon and submitting to it.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s not ready after %v", c.Base, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Submit posts a request and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, req Request) (JobStatus, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(blob))
	if err != nil {
		return JobStatus{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return st, nil
}

// Stream follows a job's NDJSON event stream until the job reaches a
// terminal state, invoking fn per event, then returns the final status.
// A dropped connection resumes with ?after=<last seq> instead of
// replaying the whole stream, so fn sees every event exactly once even
// across reconnects; only repeated attempts with no forward progress give
// up.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event)) (JobStatus, error) {
	const maxStalls = 4
	seq, stalls := 0, 0
	for {
		last, err := c.streamOnce(ctx, id, seq, fn)
		if err != nil {
			// HTTP-level refusals (404, 400, ...) are permanent; transport
			// errors are retried until they stop making progress.
			var perm *apiStatusError
			if errors.As(err, &perm) || ctx.Err() != nil {
				return JobStatus{}, err
			}
			if last == seq {
				if stalls++; stalls >= maxStalls {
					return JobStatus{}, fmt.Errorf("serve: stream %s: no progress after %d attempts: %w", id, stalls, err)
				}
			} else {
				stalls = 0
			}
			seq = last
			select {
			case <-ctx.Done():
				return JobStatus{}, ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		// Clean close: the server ends the stream at a terminal state, but a
		// proxy can also close cleanly mid-job — trust the status, not the
		// close.
		st, serr := c.Status(ctx, id)
		if serr != nil {
			return JobStatus{}, serr
		}
		if terminal(st.State) {
			return st, nil
		}
		if last == seq {
			if stalls++; stalls >= maxStalls {
				return JobStatus{}, fmt.Errorf("serve: stream %s: repeatedly closed with job still %s", id, st.State)
			}
		} else {
			stalls = 0
		}
		seq = last
	}
}

// streamOnce follows one connection of the event stream from ?after=seq,
// returning the last seq it delivered.
func (c *Client) streamOnce(ctx context.Context, id string, after int, fn func(Event)) (int, error) {
	u := c.url("/v1/jobs/" + id + "/events")
	if after > 0 {
		u += "?after=" + strconv.Itoa(after)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return after, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return after, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return after, apiError(resp)
	}
	seq := after
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return seq, fmt.Errorf("serve: decoding event: %w", err)
		}
		if e.Seq <= seq {
			continue // duplicate after a reconnect race; already delivered
		}
		if fn != nil {
			fn(e)
		}
		seq = e.Seq
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return seq, err
	}
	return seq, nil
}

// Jobs fetches every job's status in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var jobs []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return nil, fmt.Errorf("serve: decoding job list: %w", err)
	}
	return jobs, nil
}

// Health fetches the enriched /v1/healthz document.
func (c *Client) Health(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, apiError(resp)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("serve: decoding health: %w", err)
	}
	return h, nil
}

// MetricsText fetches the raw /v1/metrics exposition page.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// Watch follows the daemon firehose from ?after=cursor, invoking fn per
// WatchEvent (including drop markers), until the context is cancelled or
// the connection ends. It returns nil on a clean server-side close
// (daemon shutdown) and the context error on cancellation.
func (c *Client) Watch(ctx context.Context, after uint64, fn func(WatchEvent)) error {
	u := c.url("/v1/watch")
	if after > 0 {
		u += "?after=" + strconv.FormatUint(after, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var we WatchEvent
		if err := json.Unmarshal(line, &we); err != nil {
			return fmt.Errorf("serve: decoding watch event: %w", err)
		}
		if fn != nil {
			fn(we)
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err()
}

// Artifact fetches a terminal job's rendered artifact.
func (c *Client) Artifact(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/artifact"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// Cancel requests cooperative cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// apiStatusError is an HTTP-level refusal from the service — a definite
// answer, so retry loops treat it as permanent.
type apiStatusError struct {
	Code int
	Msg  string
}

func (e *apiStatusError) Error() string { return e.Msg }

// apiError extracts the service's {"error": ...} payload.
func apiError(resp *http.Response) error {
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(blob, &payload) == nil && payload.Error != "" {
		return &apiStatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("serve: %s: %s", resp.Status, payload.Error)}
	}
	return &apiStatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("serve: %s: %s", resp.Status, bytes.TrimSpace(blob))}
}
