package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal typed client for the serve HTTP API, used by
// `bctool submit` and the smoke tests.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8373".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// WaitReady polls /v1/healthz until the service answers or the timeout
// elapses — the bridge between spawning a daemon and submitting to it.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s not ready after %v", c.Base, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Submit posts a request and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, req Request) (JobStatus, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(blob))
	if err != nil {
		return JobStatus{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return st, nil
}

// Stream follows a job's NDJSON event stream until the job reaches a
// terminal state (the server closes the stream), invoking fn per event,
// then returns the final status.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event)) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return JobStatus{}, fmt.Errorf("serve: decoding event: %w", err)
		}
		if fn != nil {
			fn(e)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return JobStatus{}, err
	}
	return c.Status(ctx, id)
}

// Artifact fetches a terminal job's rendered artifact.
func (c *Client) Artifact(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/artifact"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// Cancel requests cooperative cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// apiError extracts the service's {"error": ...} payload.
func apiError(resp *http.Response) error {
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(blob, &payload) == nil && payload.Error != "" {
		return fmt.Errorf("serve: %s: %s", resp.Status, payload.Error)
	}
	return fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(blob))
}
