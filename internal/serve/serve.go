// Package serve is the experiment service behind `bctool serve`: an
// HTTP/JSON daemon with a bounded job queue, typed job specs keyed to the
// harness entry points (run, sweep, adversary, fleet), an artifact cache
// keyed by (request, trace hashes, code version), NDJSON progress
// streaming, cooperative cancellation, and a worker protocol that fans
// sweep grids out across `bctool worker` subprocesses with byte-identical
// artifacts at any worker count. See DESIGN.md §16.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Options configures a Server. The zero value serves with sensible
// defaults: a 32-deep queue, in-process sweeps, GOMAXPROCS parallelism,
// a 128-entry artifact cache, and no logging.
type Options struct {
	// QueueDepth bounds accepted-but-unstarted jobs; submissions beyond it
	// are refused with 503 rather than buffered without bound.
	QueueDepth int
	// Workers is the default worker-process fan-out for sweep jobs
	// (0 = in-process; SweepSpec.Workers overrides per job).
	Workers int
	// Jobs bounds host parallelism within a job or worker (0 = GOMAXPROCS).
	Jobs int
	// WorkerArgv is the worker command (default: this executable,
	// argument "worker"); WorkerEnv entries are appended to the inherited
	// environment.
	WorkerArgv []string
	WorkerEnv  []string
	// CacheSize bounds the artifact cache (entries; <0 disables caching,
	// 0 = default 128).
	CacheSize int
	// Log, when non-nil, receives one line per lifecycle event.
	Log func(format string, args ...any)
	// Version overrides the cache key's code-version component (default:
	// the build's VCS revision).
	Version string
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Event is one entry of a job's progress stream.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "progress", "cache"
	Msg  string `json:"msg"`
}

// Job is one submitted request and its lifecycle. All fields behind mu;
// readers use the snapshot accessors.
type Job struct {
	ID  string  `json:"id"`
	Req Request `json:"request"`

	mu       sync.Mutex
	state    string
	events   []Event
	artifact string
	errMsg   string
	cached   bool
	updated  chan struct{} // closed-and-replaced on every mutation
	cancel   context.CancelFunc
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID     string `json:"id"`
	Type   string `json:"type"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Events int    `json:"events"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, Type: j.Req.Type, State: j.state,
		Error: j.errMsg, Cached: j.cached, Events: len(j.events),
	}
}

// mutate applies fn under the lock and wakes every waiter.
func (j *Job) mutate(fn func()) {
	j.mu.Lock()
	fn()
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
}

func (j *Job) addEvent(typ, msg string) {
	j.mutate(func() {
		j.events = append(j.events, Event{Seq: len(j.events) + 1, Type: typ, Msg: msg})
	})
}

func (j *Job) setState(state string) {
	j.mutate(func() {
		j.state = state
		j.events = append(j.events, Event{Seq: len(j.events) + 1, Type: "state", Msg: state})
	})
}

// eventsSince returns events with Seq > seq, the current state, and a
// channel that closes on the next mutation.
func (j *Job) eventsSince(seq int) ([]Event, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if seq < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.state, j.updated
}

// Server is the experiment service. Construct with New, wire Handler into
// an http.Server, call Start to launch the executor, Stop to shut down.
type Server struct {
	opts    Options
	version string
	queue   chan *Job
	cache   *artifactCache

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  int
	started bool
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server from opts (see Options for the zero-value
// defaults).
func New(opts Options) *Server {
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 128
	}
	version := opts.Version
	if version == "" {
		version = codeVersion()
	}
	return &Server{
		opts:    opts,
		version: version,
		queue:   make(chan *Job, depth),
		cache:   newArtifactCache(cacheSize),
		jobs:    make(map[string]*Job),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
}

// Start launches the executor goroutine. Jobs execute one at a time in
// acceptance order — parallelism lives inside a job (Jobs/Workers), not
// across jobs, so artifacts and cache state stay deterministic.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.ctx, s.stop = context.WithCancel(ctx)
	runCtx := s.ctx
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-runCtx.Done():
				s.drainQueue()
				return
			case j := <-s.queue:
				s.execute(runCtx, j)
			}
		}
	}()
}

// Stop cancels the running job (if any), fails the queued ones as
// cancelled, and waits for the executor to exit. Safe to call more than
// once and before Start.
func (s *Server) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	s.wg.Wait()
}

func (s *Server) drainQueue() {
	for {
		select {
		case j := <-s.queue:
			j.setState(StateCancelled)
		default:
			return
		}
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(ctx context.Context, j *Job) {
	j.mu.Lock()
	alreadyCancelled := j.state == StateCancelled
	j.mu.Unlock()
	if alreadyCancelled {
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	j.setState(StateRunning)
	s.logf("job %s (%s) running", j.ID, j.Req.Type)

	sp, err := j.Req.spec()
	if err != nil { // Validate gates submission; this is belt and braces
		s.finish(j, "", err)
		return
	}

	// Artifact identity: for sweeps the input traces are part of it, so
	// the plan (cheap, deterministic) runs first to hash them.
	var traceHashes []string
	if j.Req.Sweep != nil {
		if _, hashes, perr := j.Req.Sweep.plan(); perr == nil {
			traceHashes = hashes
		}
	}
	key, err := cacheKey(s.version, j.Req, traceHashes)
	if err != nil {
		s.finish(j, "", err)
		return
	}
	if art, hit := s.cache.get(key); hit {
		j.mutate(func() { j.cached = true })
		j.addEvent("cache", fmt.Sprintf("cache hit %s — skipping execution", key[:12]))
		s.logf("job %s cache hit %s", j.ID, key[:12])
		s.finish(j, art, nil)
		return
	}

	env := jobEnv{
		jobs:    s.opts.Jobs,
		workers: s.opts.Workers,
		argv:    s.opts.WorkerArgv,
		env:     s.opts.WorkerEnv,
		progress: func(msg string) {
			j.addEvent("progress", msg)
		},
	}
	art, err := sp.run(jctx, env)
	if err == nil {
		s.cache.put(key, art)
	}
	if jctx.Err() != nil && ctx.Err() == nil {
		// The job's own context died but the server's didn't: this was a
		// per-job cancellation, not a shutdown.
		j.mutate(func() { j.artifact = art })
		j.setState(StateCancelled)
		s.logf("job %s cancelled", j.ID)
		return
	}
	s.finish(j, art, err)
}

func (s *Server) finish(j *Job, artifact string, err error) {
	j.mutate(func() {
		j.artifact = artifact
		if err != nil {
			j.errMsg = err.Error()
		}
	})
	if err != nil {
		j.setState(StateFailed)
		s.logf("job %s failed: %v", j.ID, err)
		return
	}
	j.setState(StateDone)
	s.logf("job %s done (%d artifact bytes)", j.ID, len(artifact))
}

// Submit validates and enqueues a request. It fails with ErrQueueFull
// when the queue is at depth.
func (s *Server) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%04d", s.nextID),
		Req:     req,
		state:   StateQueued,
		updated: make(chan struct{}),
	}
	j.events = append(j.events, Event{Seq: 1, Type: "state", Msg: StateQueued})
	s.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.logf("job %s (%s) queued", j.ID, req.Type)
	return j, nil
}

// ErrQueueFull reports a submission refused because the bounded queue is
// at depth.
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// Cancel requests cooperative cancellation of a job. A queued job is
// cancelled immediately; a running one stops at its next engine poll.
func (s *Server) Cancel(id string) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	j.mu.Lock()
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	switch {
	case terminal(state):
		return nil
	case cancel != nil:
		cancel()
	default:
		j.setState(StateCancelled) // still queued; executor will skip it
	}
	s.logf("job %s cancel requested", id)
	return nil
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Handler returns the service's HTTP API:
//
//	GET    /v1/healthz           — liveness + version
//	POST   /v1/jobs              — submit a Request (202, or 400/503)
//	GET    /v1/jobs              — all job statuses, submission order
//	GET    /v1/jobs/{id}         — one job status
//	GET    /v1/jobs/{id}/events  — NDJSON progress stream until terminal
//	GET    /v1/jobs/{id}/artifact — rendered artifact (text/plain)
//	DELETE /v1/jobs/{id}         — cooperative cancellation
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "version": s.version, "cache_entries": s.cache.len(),
		})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		j, err := s.Submit(req)
		switch {
		case err == ErrQueueFull:
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, j.status())
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		jobs := make([]*Job, 0, len(s.order))
		for _, id := range s.order {
			jobs = append(jobs, s.jobs[id])
		}
		s.mu.Unlock()
		out := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = j.status()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		j.mu.Lock()
		state, art := j.state, j.artifact
		j.mu.Unlock()
		if !terminal(state) {
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; artifact not ready", j.ID, state))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = strings.NewReader(art).WriteTo(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		seq := 0
		for {
			events, state, changed := j.eventsSince(seq)
			for _, e := range events {
				if err := enc.Encode(e); err != nil {
					return
				}
				seq = e.Seq
			}
			if flusher != nil {
				flusher.Flush()
			}
			if terminal(state) {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-changed:
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
