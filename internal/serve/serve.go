// Package serve is the experiment service behind `bctool serve`: an
// HTTP/JSON daemon with a bounded job queue, typed job specs keyed to the
// harness entry points (run, sweep, adversary, fleet), an artifact cache
// keyed by (request, trace hashes, code version), NDJSON progress
// streaming, cooperative cancellation, and a worker protocol that fans
// sweep grids out across `bctool worker` subprocesses with byte-identical
// artifacts at any worker count. See DESIGN.md §16.
//
// The telemetry plane on top (DESIGN.md §17): structured log/slog logging
// of the request/job lifecycle, a Prometheus-text `GET /v1/metrics`
// endpoint bridging completed jobs' stats snapshots plus daemon-level
// series, and a `GET /v1/watch` NDJSON firehose multiplexing every job's
// events under a daemon-global monotonic cursor. All of it is pure
// observation: scraping, tailing, and logging never change an artifact
// byte.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bordercontrol/internal/stats"
)

// Options configures a Server. The zero value serves with sensible
// defaults: a 32-deep queue, in-process sweeps, GOMAXPROCS parallelism,
// a 128-entry artifact cache, a 1024-event watch buffer, and no logging.
type Options struct {
	// QueueDepth bounds accepted-but-unstarted jobs; submissions beyond it
	// are refused with 503 rather than buffered without bound.
	QueueDepth int
	// Workers is the default worker-process fan-out for sweep jobs
	// (0 = in-process; SweepSpec.Workers overrides per job).
	Workers int
	// Jobs bounds host parallelism within a job or worker (0 = GOMAXPROCS).
	Jobs int
	// WorkerArgv is the worker command (default: this executable,
	// argument "worker"); WorkerEnv entries are appended to the inherited
	// environment.
	WorkerArgv []string
	WorkerEnv  []string
	// CacheSize bounds the artifact cache (entries; <0 disables caching,
	// 0 = default 128).
	CacheSize int
	// WatchBuffer bounds the /v1/watch event ring (0 = default 1024);
	// subscribers that fall further behind see an explicit drop marker.
	WatchBuffer int
	// Logger, when non-nil, receives structured lifecycle logs: request
	// handling at debug, job/cache/worker lifecycle at info, queue pressure
	// and failures at warn. Nil discards everything.
	Logger *slog.Logger
	// Version overrides the cache key's code-version component (default:
	// the build's VCS revision).
	Version string
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// States lists every job state in lifecycle order — the fixed label set of
// the jobs-by-state series on /v1/metrics and /v1/healthz.
var States = []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Event is one entry of a job's progress stream.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state", "progress", "cache"
	Msg  string `json:"msg"`
}

// Job is one submitted request and its lifecycle. All fields behind mu;
// readers use the snapshot accessors.
type Job struct {
	ID  string  `json:"id"`
	Req Request `json:"request"`

	mu       sync.Mutex
	state    string
	events   []Event
	artifact string
	errMsg   string
	cached   bool
	updated  chan struct{} // closed-and-replaced on every mutation
	cancel   context.CancelFunc
	// publish forwards every appended event to the daemon firehose. It is
	// set once before the job becomes visible and is called with mu held,
	// so a job's events reach the firehose in seq order.
	publish func(jobID string, e Event)
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID     string `json:"id"`
	Type   string `json:"type"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Events int    `json:"events"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, Type: j.Req.Type, State: j.state,
		Error: j.errMsg, Cached: j.cached, Events: len(j.events),
	}
}

// mutate applies fn under the lock and wakes every waiter.
func (j *Job) mutate(fn func()) {
	j.mu.Lock()
	fn()
	close(j.updated)
	j.updated = make(chan struct{})
	j.mu.Unlock()
}

// appendLocked appends one event (assigning the next job-local seq) and
// forwards it to the firehose. Callers hold j.mu; mutate's unlock path
// wakes the per-job stream waiters.
func (j *Job) appendLocked(typ, msg string) {
	e := Event{Seq: len(j.events) + 1, Type: typ, Msg: msg}
	j.events = append(j.events, e)
	if j.publish != nil {
		j.publish(j.ID, e)
	}
}

func (j *Job) addEvent(typ, msg string) {
	j.mutate(func() { j.appendLocked(typ, msg) })
}

func (j *Job) setState(state string) {
	j.mutate(func() {
		j.state = state
		j.appendLocked("state", state)
	})
}

// eventsSince returns events with Seq > seq, the current state, and a
// channel that closes on the next mutation.
func (j *Job) eventsSince(seq int) ([]Event, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if seq < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.state, j.updated
}

// Server is the experiment service. Construct with New, wire Handler into
// an http.Server, call Start to launch the executor, Stop to shut down.
type Server struct {
	opts    Options
	version string
	queue   chan *Job
	cache   *artifactCache
	log     *slog.Logger
	fh      *firehose

	// Worker-subprocess telemetry, updated from fan-out goroutines.
	workersSpawned atomic.Uint64
	workersActive  atomic.Int64

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	nextID    int
	started   bool
	startedAt time.Time
	jobStats  stats.Snapshot // merged snapshots of completed jobs
	jobSnaps  uint64         // how many job snapshots merged in
	ctx       context.Context
	stop      context.CancelFunc
	wg        sync.WaitGroup
}

// New builds a Server from opts (see Options for the zero-value
// defaults).
func New(opts Options) *Server {
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 128
	}
	version := opts.Version
	if version == "" {
		version = codeVersion()
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	return &Server{
		opts:    opts,
		version: version,
		queue:   make(chan *Job, depth),
		cache:   newArtifactCache(cacheSize),
		log:     log,
		fh:      newFirehose(opts.WatchBuffer),
		jobs:    make(map[string]*Job),
	}
}

// discardHandler is the nil-Logger sink: nothing is enabled, nothing is
// formatted, logging costs one interface call.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Start launches the executor goroutine. Jobs execute one at a time in
// acceptance order — parallelism lives inside a job (Jobs/Workers), not
// across jobs, so artifacts and cache state stay deterministic.
func (s *Server) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.startedAt = time.Now()
	s.ctx, s.stop = context.WithCancel(ctx)
	runCtx := s.ctx
	s.mu.Unlock()
	s.log.Info("executor started",
		"queue_capacity", cap(s.queue), "workers", s.opts.Workers, "jobs", s.opts.Jobs,
		"cache_size", s.opts.CacheSize, "version", s.version)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-runCtx.Done():
				s.drainQueue()
				return
			case j := <-s.queue:
				s.execute(runCtx, j)
			}
		}
	}()
}

// Stop cancels the running job (if any), fails the queued ones as
// cancelled, and waits for the executor to exit. Safe to call more than
// once and before Start.
func (s *Server) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	s.wg.Wait()
}

func (s *Server) drainQueue() {
	for {
		select {
		case j := <-s.queue:
			j.setState(StateCancelled)
			s.log.Info("job cancelled at shutdown", "job", j.ID)
		default:
			return
		}
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(ctx context.Context, j *Job) {
	j.mu.Lock()
	alreadyCancelled := j.state == StateCancelled
	j.mu.Unlock()
	if alreadyCancelled {
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	j.setState(StateRunning)
	start := time.Now()
	s.log.Info("job running", "job", j.ID, "type", j.Req.Type)

	sp, err := j.Req.spec()
	if err != nil { // Validate gates submission; this is belt and braces
		s.finish(j, "", stats.Snapshot{}, err, start)
		return
	}

	// Artifact identity: for sweeps the input traces are part of it, so
	// the plan (cheap, deterministic) runs first to hash them.
	var traceHashes []string
	if j.Req.Sweep != nil {
		if _, hashes, perr := j.Req.Sweep.plan(); perr == nil {
			traceHashes = hashes
		}
	}
	key, err := cacheKey(s.version, j.Req, traceHashes)
	if err != nil {
		s.finish(j, "", stats.Snapshot{}, err, start)
		return
	}
	if art, hit := s.cache.get(key); hit {
		j.mutate(func() { j.cached = true })
		j.addEvent("cache", fmt.Sprintf("cache hit %s — skipping execution", key[:12]))
		s.log.Info("cache hit", "job", j.ID, "key", key[:12])
		// A cache hit re-serves bytes, it does not re-run the simulation, so
		// it contributes no job-stats snapshot.
		s.finish(j, art, stats.Snapshot{}, nil, start)
		return
	}

	env := jobEnv{
		jobs:    s.opts.Jobs,
		workers: s.opts.Workers,
		argv:    s.opts.WorkerArgv,
		env:     s.opts.WorkerEnv,
		progress: func(msg string) {
			j.addEvent("progress", msg)
		},
		workerStart: func(worker, cells int) {
			s.workersSpawned.Add(1)
			s.workersActive.Add(1)
			s.log.Info("worker spawned", "job", j.ID, "worker", worker, "cells", cells)
		},
		workerExit: func(worker int, err error) {
			s.workersActive.Add(-1)
			if err != nil {
				s.log.Warn("worker exited", "job", j.ID, "worker", worker, "err", err)
			} else {
				s.log.Info("worker exited", "job", j.ID, "worker", worker)
			}
		},
	}
	art, snap, err := sp.run(jctx, env)
	if err == nil {
		s.cache.put(key, art)
	}
	if jctx.Err() != nil && ctx.Err() == nil {
		// The job's own context died but the server's didn't: this was a
		// per-job cancellation, not a shutdown.
		j.mutate(func() { j.artifact = art })
		j.setState(StateCancelled)
		s.log.Info("job cancelled", "job", j.ID, "elapsed", time.Since(start))
		return
	}
	s.finish(j, art, snap, err, start)
}

func (s *Server) finish(j *Job, artifact string, snap stats.Snapshot, err error, start time.Time) {
	j.mutate(func() {
		j.artifact = artifact
		if err != nil {
			j.errMsg = err.Error()
		}
	})
	if len(snap.Samples) > 0 {
		s.mu.Lock()
		s.jobStats = stats.Merge(s.jobStats, snap)
		s.jobSnaps++
		s.mu.Unlock()
	}
	if err != nil {
		j.setState(StateFailed)
		s.log.Warn("job failed", "job", j.ID, "elapsed", time.Since(start), "err", err)
		return
	}
	j.setState(StateDone)
	s.log.Info("job done", "job", j.ID, "elapsed", time.Since(start), "artifact_bytes", len(artifact))
}

// Submit validates and enqueues a request. It fails with ErrQueueFull
// when the queue is at depth.
func (s *Server) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		s.log.Debug("submission rejected", "type", req.Type, "err", err)
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%04d", s.nextID),
		Req:     req,
		state:   StateQueued,
		updated: make(chan struct{}),
		publish: s.fh.publish,
	}
	s.mu.Unlock()

	// The queued event is appended and published while j.mu is held across
	// the enqueue, so the executor (which takes j.mu first thing) cannot
	// emit the running event ahead of it.
	j.mu.Lock()
	select {
	case s.queue <- j:
	default:
		j.mu.Unlock()
		s.log.Warn("job refused: queue full", "type", req.Type, "queue_capacity", cap(s.queue))
		return nil, ErrQueueFull
	}
	j.appendLocked("state", StateQueued)
	j.mu.Unlock()

	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	depth, capacity := len(s.queue), cap(s.queue)
	s.log.Info("job queued", "job", j.ID, "type", req.Type, "queue_depth", depth, "queue_capacity", capacity)
	if depth*4 >= capacity*3 {
		s.log.Warn("queue pressure", "queue_depth", depth, "queue_capacity", capacity)
	}
	return j, nil
}

// ErrQueueFull reports a submission refused because the bounded queue is
// at depth.
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// Cancel requests cooperative cancellation of a job. A queued job is
// cancelled immediately; a running one stops at its next engine poll.
func (s *Server) Cancel(id string) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	j.mu.Lock()
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	switch {
	case terminal(state):
		return nil
	case cancel != nil:
		cancel()
	default:
		j.setState(StateCancelled) // still queued; executor will skip it
	}
	s.log.Info("job cancel requested", "job", id)
	return nil
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs returns every job in submission order.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	return jobs
}

// jobsByState counts jobs per lifecycle state (every state present, zero
// or not — a fixed label set keeps scrapers simple).
func (s *Server) jobsByState() map[string]int {
	counts := make(map[string]int, len(States))
	for _, st := range States {
		counts[st] = 0
	}
	for _, j := range s.snapshotJobs() {
		counts[j.status().State]++
	}
	return counts
}

// uptime returns how long the executor has been running (0 before Start).
func (s *Server) uptime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.startedAt.IsZero() {
		return 0
	}
	return time.Since(s.startedAt)
}

// Health is the enriched /v1/healthz document.
type Health struct {
	OK            bool           `json:"ok"`
	Version       string         `json:"version"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
	CacheEntries  int            `json:"cache_entries"`
}

func (s *Server) health() Health {
	return Health{
		OK:            true,
		Version:       s.version,
		UptimeSeconds: s.uptime().Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Jobs:          s.jobsByState(),
		CacheEntries:  s.cache.len(),
	}
}

// doneCh returns a channel that closes when the server shuts down (never,
// before Start) — long-lived streams select on it so shutdown does not
// hang on idle subscribers.
func (s *Server) doneCh() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		return nil // nil channel: blocks forever
	}
	return s.ctx.Done()
}

// Handler returns the service's HTTP API:
//
//	GET    /v1/healthz           — liveness: uptime, queue, jobs by state, version
//	GET    /v1/metrics           — Prometheus text exposition (daemon + job series)
//	GET    /v1/watch             — NDJSON firehose of every job's events (?after=cursor)
//	POST   /v1/jobs              — submit a Request (202, or 400/503)
//	GET    /v1/jobs              — all job statuses, submission order
//	GET    /v1/jobs/{id}         — one job status
//	GET    /v1/jobs/{id}/events  — NDJSON progress stream until terminal (?after=seq)
//	GET    /v1/jobs/{id}/artifact — rendered artifact (text/plain)
//	DELETE /v1/jobs/{id}         — cooperative cancellation
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.health())
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.writeMetrics(w)
	})
	mux.HandleFunc("GET /v1/watch", func(w http.ResponseWriter, r *http.Request) {
		after, err := afterParam(r, "cursor")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.serveWatch(w, r, after)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		j, err := s.Submit(req)
		switch {
		case err == ErrQueueFull:
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, j.status())
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.snapshotJobs()
		out := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = j.status()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, j.status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		j.mu.Lock()
		state, art := j.state, j.artifact
		j.mu.Unlock()
		if !terminal(state) {
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; artifact not ready", j.ID, state))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = strings.NewReader(art).WriteTo(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		after, err := afterParam(r, "seq")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		seq := int(after)
		for {
			events, state, changed := j.eventsSince(seq)
			for _, e := range events {
				if err := enc.Encode(e); err != nil {
					return
				}
				seq = e.Seq
			}
			if flusher != nil {
				flusher.Flush()
			}
			if terminal(state) {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-changed:
			}
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return s.accessLog(mux)
}

// serveWatch streams the daemon firehose as NDJSON from the given cursor
// until the client disconnects or the server shuts down. A subscriber that
// falls behind the bounded ring receives an explicit drop marker before
// delivery resumes at the oldest retained event.
func (s *Server) serveWatch(w http.ResponseWriter, r *http.Request, after uint64) {
	s.fh.subscribe()
	defer s.fh.unsubscribe()
	s.log.Debug("watch subscribed", "after", after, "remote", r.RemoteAddr)
	defer s.log.Debug("watch unsubscribed", "remote", r.RemoteAddr)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers so clients see the stream open
	}
	enc := json.NewEncoder(w)
	done := s.doneCh()
	cur := after
	for {
		events, dropped, wait := s.fh.since(cur)
		if dropped > 0 {
			s.log.Warn("watch subscriber dropped events", "dropped", dropped, "remote", r.RemoteAddr)
			if err := enc.Encode(s.fh.dropMarker(cur, dropped)); err != nil {
				return
			}
			cur += dropped
		}
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
			cur = e.Cursor
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-done:
			return
		case <-wait:
		}
	}
}

// afterParam parses an optional non-negative ?after= query parameter.
func afterParam(r *http.Request, what string) (uint64, error) {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 63)
	if err != nil {
		return 0, fmt.Errorf("bad after=%q (want a non-negative %s)", raw, what)
	}
	return v, nil
}

// accessLog wraps the API with a debug-level request log. The wrapper
// forwards Flush so the streaming endpoints keep working.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w}
		next.ServeHTTP(lw, r)
		status := lw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path, "status", status,
			"bytes", lw.bytes, "elapsed", time.Since(start), "remote", r.RemoteAddr)
	})
}

type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *loggingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
