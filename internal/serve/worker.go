// Worker protocol: the orchestrator partitions a sweep grid round-robin
// across `bctool worker` subprocesses, ships each its cell list (with
// content-addressed traces) as one JSON document on stdin, and reads one
// NDJSON row result per cell back on stdout. Workers accept no inbound
// connections and touch no shared state; logs go to inherited stderr.
//
// Determinism argument: the grid is built deterministically, each cell is
// an independent deterministic simulation, every row is keyed by its
// canonical cell index, and the merge walks canonical order — so the
// merged rows (and anything rendered from them) are byte-identical to the
// in-process path at ANY worker count, including the first-failing-cell
// error choice.

package serve

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"bordercontrol/internal/exp"
	"bordercontrol/internal/harness"
	"bordercontrol/internal/tracerec"
)

// workerTrace ships one encoded .bctrace blob, content-addressed by the
// hex sha256 of the blob. The worker re-hashes and fails closed on
// mismatch, so a corrupted ship can never silently change results.
type workerTrace struct {
	Hash string `json:"hash"`
	Data []byte `json:"data"` // .bctrace bytes (JSON base64)
}

// workerCell is one sweep cell on the wire: the canonical grid index (the
// merge key), the label, a trace reference, and the configuration axes.
// Params are NOT shipped: both ends build harness.DefaultParams() and
// apply Border — the same contract RecordedCells uses, and the only base
// the daemon and CLI ever sweep over.
type workerCell struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	Trace string `json:"trace"` // hash of an entry in workerRequest.Traces
	Mode  string `json:"mode"`  // mode slug
	Class string `json:"class"` // class slug
	// Border is the design for BC modes; empty means the mode carries no
	// border (the "-" axis of RecordedCells).
	Border string `json:"border,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// workerRequest is the single stdin document.
type workerRequest struct {
	// Jobs bounds the worker's host parallelism (0 = GOMAXPROCS).
	Jobs   int           `json:"jobs,omitempty"`
	Traces []workerTrace `json:"traces"`
	Cells  []workerCell  `json:"cells"`
}

// workerRow is one stdout NDJSON record: the canonical index plus either
// the row or the cell's error text. Workers run every cell (no
// first-error abort) so the orchestrator — not completion timing — picks
// which failure surfaces.
type workerRow struct {
	Index int               `json:"index"`
	Row   *harness.SweepRow `json:"row,omitempty"`
	Err   string            `json:"err,omitempty"`
}

// RunWorker is the `bctool worker` entry point: decode the request from
// stdin, execute every cell, stream rows to stdout. It returns only
// protocol-level failures (malformed input, hash mismatch, broken pipe);
// per-cell simulation failures travel in workerRow.Err.
func RunWorker(ctx context.Context, stdin io.Reader, stdout io.Writer) error {
	var req workerRequest
	if err := json.NewDecoder(bufio.NewReader(stdin)).Decode(&req); err != nil {
		return fmt.Errorf("serve: worker: decoding request: %w", err)
	}
	traces := make(map[string]*tracerec.Trace, len(req.Traces))
	for _, wt := range req.Traces {
		sum := sha256.Sum256(wt.Data)
		if got := hex.EncodeToString(sum[:]); got != wt.Hash {
			return fmt.Errorf("serve: worker: trace %s arrived as %s (corrupt ship)", wt.Hash, got)
		}
		tr, err := tracerec.Decode(wt.Data)
		if err != nil {
			return fmt.Errorf("serve: worker: trace %s: %w", wt.Hash, err)
		}
		traces[wt.Hash] = tr
	}

	cells := make([]harness.SweepCell, len(req.Cells))
	for i, wc := range req.Cells {
		c, err := wc.rebuild(traces)
		if err != nil {
			return err
		}
		cells[i] = c
	}

	out := bufio.NewWriter(stdout)
	enc := json.NewEncoder(out)
	var encErr error
	runner := &exp.Runner{
		Workers: req.Jobs,
		// OnDone calls are serialized, so the NDJSON stream needs no extra
		// locking; rows go out in completion order and carry their
		// canonical index.
		OnDone: func(r exp.Result) {
			wr := workerRow{Index: req.Cells[r.Index].Index}
			if r.Err != nil {
				wr.Err = r.Err.Error()
			} else {
				row := r.Value.(harness.SweepRow)
				wr.Row = &row
			}
			if err := enc.Encode(wr); err != nil && encErr == nil {
				encErr = err
			}
		},
	}
	jobs := make([]exp.Job, len(cells))
	for i := range cells {
		c := cells[i]
		jobs[i] = exp.Job{
			Name: c.Label,
			Run:  func(ctx context.Context) (any, error) { return harness.RunCell(ctx, c) },
		}
	}
	runner.Run(ctx, jobs)
	if encErr != nil {
		return fmt.Errorf("serve: worker: emitting rows: %w", encErr)
	}
	return out.Flush()
}

// rebuild turns a wire cell back into a runnable SweepCell, mirroring
// RecordedCells' parameter contract (DefaultParams base, Border override).
func (wc workerCell) rebuild(traces map[string]*tracerec.Trace) (harness.SweepCell, error) {
	tr, ok := traces[wc.Trace]
	if !ok {
		return harness.SweepCell{}, fmt.Errorf("serve: worker: cell %q references unshipped trace %s", wc.Label, wc.Trace)
	}
	mode, err := harness.ParseModeSlug(wc.Mode)
	if err != nil {
		return harness.SweepCell{}, fmt.Errorf("serve: worker: cell %q: %w", wc.Label, err)
	}
	class, err := harness.ParseClassSlug(wc.Class)
	if err != nil {
		return harness.SweepCell{}, fmt.Errorf("serve: worker: cell %q: %w", wc.Label, err)
	}
	p := harness.DefaultParams()
	if wc.Border != "" {
		p.Border = wc.Border
	}
	return harness.SweepCell{
		Label: wc.Label, Trace: tr, Mode: mode, Class: class, P: p, Shards: wc.Shards,
	}, nil
}

// FanoutConfig shapes a SweepFanout execution. Everything here is
// execution machinery: the returned rows are byte-identical at any
// Workers/Jobs setting.
type FanoutConfig struct {
	// Workers is the number of worker subprocesses; 0 or negative runs the
	// sweep in-process.
	Workers int
	// Jobs bounds host parallelism inside each worker (or in-process).
	Jobs int
	// Argv is the worker command line (default: this executable with the
	// single argument "worker").
	Argv []string
	// Env entries are appended to the inherited environment.
	Env []string
	// Progress, when non-nil, receives one line per finished cell in
	// completion order (advisory; ordering varies with parallelism).
	Progress func(msg string)
	// OnWorkerStart/OnWorkerExit, when non-nil, observe worker-subprocess
	// lifecycle: start fires just before the spawn with the worker's cell
	// count, exit fires after the process finishes with its error (nil on
	// success). Telemetry only — they never influence results.
	OnWorkerStart func(worker, cells int)
	OnWorkerExit  func(worker int, err error)
	// Stderr receives the workers' stderr (default os.Stderr).
	Stderr io.Writer
}

func (cfg FanoutConfig) argv() ([]string, error) {
	if len(cfg.Argv) > 0 {
		return cfg.Argv, nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("serve: locating worker executable: %w", err)
	}
	return []string{self, "worker"}, nil
}

// SweepFanout executes a validated sweep grid, either in-process
// (Workers <= 0) or by partitioning cells round-robin across Workers
// subprocesses speaking the worker protocol, and merges rows in canonical
// cell order. On failure it reports the first failing cell in canonical
// order — the same cell the in-process path would have reported (the
// error text is the worker's rendering of the same underlying error).
func SweepFanout(ctx context.Context, cells []harness.SweepCell, cfg FanoutConfig) ([]harness.SweepRow, error) {
	if err := harness.ValidateCells(cells); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		ex := harness.Exec{Jobs: cfg.Jobs}
		if cfg.Progress != nil {
			progress := cfg.Progress
			ex.Progress = func(r exp.Result) { progress(cellNote(r.Name, r.Err)) }
		}
		return harness.RunSweepExec(ctx, ex, cells)
	}

	// Content-address every distinct trace once, however many cells share
	// it (cells of one grid share decoded trace pointers).
	hashOf := make(map[*tracerec.Trace]string)
	blobs := make(map[string][]byte)
	for _, c := range cells {
		if _, done := hashOf[c.Trace]; done {
			continue
		}
		blob, err := tracerec.Encode(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("serve: encoding trace for cell %q: %w", c.Label, err)
		}
		sum := sha256.Sum256(blob)
		h := hex.EncodeToString(sum[:])
		hashOf[c.Trace] = h
		blobs[h] = blob
	}

	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	parts := make([][]workerCell, workers)
	for i, c := range cells {
		wc := workerCell{
			Index: i, Label: c.Label, Trace: hashOf[c.Trace],
			Mode: harness.ModeSlug(c.Mode), Class: harness.ClassSlug(c.Class),
			Shards: c.Shards,
		}
		// RecordedCells leaves the base border untouched for borderless
		// modes; shipping the border only for BC modes reproduces that.
		if c.Mode == harness.BCNoBCC || c.Mode == harness.BCBCC {
			wc.Border = c.P.Border
		}
		parts[i%workers] = append(parts[i%workers], wc)
	}

	argv, err := cfg.argv()
	if err != nil {
		return nil, err
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	rows := make([]*harness.SweepRow, len(cells))
	cellErrs := make([]string, len(cells))
	workerErrs := make([]error, workers)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if cfg.OnWorkerStart != nil {
				cfg.OnWorkerStart(w, len(parts[w]))
			}
			workerErrs[w] = runWorkerProc(ctx, argv, cfg.Env, stderr, workerRequest{
				Jobs: cfg.Jobs, Traces: shippedTraces(parts[w], blobs), Cells: parts[w],
			}, func(wr workerRow) error {
				if wr.Index < 0 || wr.Index >= len(cells) {
					return fmt.Errorf("serve: worker %d returned out-of-range index %d", w, wr.Index)
				}
				// Distinct workers own distinct canonical indices, so these
				// writes never race.
				rows[wr.Index] = wr.Row
				cellErrs[wr.Index] = wr.Err
				if cfg.Progress != nil {
					progressMu.Lock()
					cfg.Progress(cellNote(cells[wr.Index].Label, errOrNil(wr.Err)))
					progressMu.Unlock()
				}
				return nil
			})
			if cfg.OnWorkerExit != nil {
				cfg.OnWorkerExit(w, workerErrs[w])
			}
		}(w)
	}
	wg.Wait()
	for w, err := range workerErrs {
		if err != nil {
			return nil, fmt.Errorf("serve: worker %d: %w", w, err)
		}
	}

	// Canonical-order merge: the first failing cell in grid order wins,
	// exactly as exp.FirstErr picks it for the in-process path.
	out := make([]harness.SweepRow, len(cells))
	for i := range cells {
		if cellErrs[i] != "" {
			return nil, fmt.Errorf("serve: cell %q: %s", cells[i].Label, cellErrs[i])
		}
		if rows[i] == nil {
			return nil, fmt.Errorf("serve: worker dropped cell %d (%q)", i, cells[i].Label)
		}
		out[i] = *rows[i]
	}
	return out, nil
}

// shippedTraces selects, in first-reference order, the trace blobs a
// worker's cell list needs — each worker receives only what it will run.
func shippedTraces(part []workerCell, blobs map[string][]byte) []workerTrace {
	var out []workerTrace
	seen := make(map[string]bool)
	for _, wc := range part {
		if seen[wc.Trace] {
			continue
		}
		seen[wc.Trace] = true
		out = append(out, workerTrace{Hash: wc.Trace, Data: blobs[wc.Trace]})
	}
	return out
}

// runWorkerProc spawns one worker, feeds it the request, and streams its
// rows into emit.
func runWorkerProc(ctx context.Context, argv, env []string, stderr io.Writer, req workerRequest, emit func(workerRow) error) error {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning %q: %w", argv[0], err)
	}
	feedErr := make(chan error, 1)
	go func() {
		err := json.NewEncoder(stdin).Encode(req)
		if cerr := stdin.Close(); err == nil {
			err = cerr
		}
		feedErr <- err
	}()

	dec := json.NewDecoder(bufio.NewReader(stdout))
	var readErr error
	for {
		var wr workerRow
		if err := dec.Decode(&wr); err != nil {
			if err != io.EOF {
				readErr = fmt.Errorf("reading rows: %w", err)
			}
			break
		}
		if err := emit(wr); err != nil {
			readErr = err
			break
		}
	}
	// Drain any remaining output so a failed merge can't deadlock a worker
	// blocked on a full stdout pipe.
	_, _ = io.Copy(io.Discard, stdout)
	waitErr := cmd.Wait()
	if readErr != nil {
		return readErr
	}
	if err := <-feedErr; err != nil && waitErr == nil {
		return fmt.Errorf("feeding request: %w", err)
	}
	if waitErr != nil {
		return fmt.Errorf("worker exited: %w", waitErr)
	}
	return nil
}

func cellNote(label string, err error) string {
	if err != nil {
		return fmt.Sprintf("cell %s: FAILED: %v", label, err)
	}
	return fmt.Sprintf("cell %s: ok", label)
}

func errOrNil(s string) error {
	if s == "" {
		return nil
	}
	return fmt.Errorf("%s", s)
}
