package serve

import (
	"context"
	"fmt"
	"strings"

	"bordercontrol/internal/adversary"
	"bordercontrol/internal/core"
	"bordercontrol/internal/harness"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/traffic"
	"bordercontrol/internal/workload"
)

// Request is one job submission: a type tag plus exactly the matching
// spec. Everything in a Request is part of the artifact's identity except
// the execution-only knobs (SweepSpec.Workers), which the cache key
// strips — the whole point of the determinism guarantees is that
// execution shape never changes output.
type Request struct {
	// Type is "run", "sweep", "adversary" or "fleet".
	Type      string         `json:"type"`
	Run       *RunSpec       `json:"run,omitempty"`
	Sweep     *SweepSpec     `json:"sweep,omitempty"`
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	Fleet     *FleetSpec     `json:"fleet,omitempty"`
}

// jobEnv is the execution context the server hands a spec: host
// parallelism, the sweep fan-out configuration, a progress sink, and the
// worker-lifecycle hooks feeding the daemon's telemetry.
type jobEnv struct {
	jobs        int
	workers     int
	argv        []string
	env         []string
	progress    func(msg string)
	workerStart func(worker, cells int)
	workerExit  func(worker int, err error)
}

func (e jobEnv) note(format string, args ...any) {
	if e.progress != nil {
		e.progress(fmt.Sprintf(format, args...))
	}
}

// spec is what every job type implements: validation at submission time,
// then execution to a rendered text artifact plus the run's metrics
// snapshot (merged daemon-wide and re-exported on /v1/metrics). The
// snapshot is observation only — the artifact never depends on it.
type spec interface {
	validate() error
	run(ctx context.Context, env jobEnv) (artifact string, snap stats.Snapshot, err error)
}

// Validate checks the request is well-formed: a known type with exactly
// its spec present and valid. It is called at submission (HTTP 400), so
// a malformed request never occupies a queue slot.
func (r Request) Validate() error {
	s, err := r.spec()
	if err != nil {
		return err
	}
	return s.validate()
}

func (r Request) spec() (spec, error) {
	n := 0
	for _, p := range []bool{r.Run != nil, r.Sweep != nil, r.Adversary != nil, r.Fleet != nil} {
		if p {
			n++
		}
	}
	if n > 1 {
		return nil, fmt.Errorf("serve: request carries %d specs, want exactly the %q one", n, r.Type)
	}
	switch r.Type {
	case "run":
		if r.Run == nil {
			return nil, fmt.Errorf("serve: type %q without a run spec", r.Type)
		}
		return r.Run, nil
	case "sweep":
		if r.Sweep == nil {
			return nil, fmt.Errorf("serve: type %q without a sweep spec", r.Type)
		}
		return r.Sweep, nil
	case "adversary":
		if r.Adversary == nil {
			return nil, fmt.Errorf("serve: type %q without an adversary spec", r.Type)
		}
		return r.Adversary, nil
	case "fleet":
		if r.Fleet == nil {
			return nil, fmt.Errorf("serve: type %q without a fleet spec", r.Type)
		}
		return r.Fleet, nil
	default:
		return nil, fmt.Errorf("serve: unknown job type %q (run, sweep, adversary, fleet)", r.Type)
	}
}

// RunSpec executes one workload — the daemon's `bctool run`.
type RunSpec struct {
	Workload string `json:"workload"`
	// Mode is a mode slug (ats-only, full-iommu, capi-like, bc-nobcc,
	// bc-bcc); Class is high or mod(erate).
	Mode   string `json:"mode"`
	Class  string `json:"class"`
	Border string `json:"border,omitempty"`
	Scale  int    `json:"scale,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// DowngradesPerSec injects periodic permission downgrades.
	DowngradesPerSec float64 `json:"downgrades_per_sec,omitempty"`
}

func (s *RunSpec) validate() error {
	if _, ok := workload.ByName(s.Workload); !ok {
		return fmt.Errorf("serve: unknown workload %q (have %v)", s.Workload, workload.Names())
	}
	if _, err := harness.ParseModeSlug(s.Mode); err != nil {
		return err
	}
	if _, err := harness.ParseClassSlug(s.Class); err != nil {
		return err
	}
	if s.Scale < 0 || s.Shards < 0 || s.DowngradesPerSec < 0 {
		return fmt.Errorf("serve: run spec has negative knobs")
	}
	return nil
}

func (s *RunSpec) run(ctx context.Context, env jobEnv) (string, stats.Snapshot, error) {
	mode, err := harness.ParseModeSlug(s.Mode)
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	class, err := harness.ParseClassSlug(s.Class)
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	sw, _ := workload.ByName(s.Workload)
	p := harness.DefaultParams()
	if s.Scale > 0 {
		p.Scale = s.Scale
	}
	if s.Border != "" {
		p.Border = s.Border
	}
	env.note("run %s/%s/%s", s.Workload, s.Mode, s.Class)
	res, err := harness.RunCtx(ctx, mode, class, sw, p, harness.RunOptions{
		DowngradesPerSec: s.DowngradesPerSec, Shards: s.Shards,
	})
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	return renderRun(mode, res), res.Stats, nil
}

// renderRun mirrors the `bctool run` report (the daemon's run artifact is
// the same text a local run prints to stdout).
func renderRun(mode harness.Mode, res harness.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload      %s\n", res.Workload)
	fmt.Fprintf(&b, "mode          %v\n", res.Mode)
	fmt.Fprintf(&b, "class         %v\n", res.Class)
	fmt.Fprintf(&b, "GPU cycles    %d\n", res.Cycles)
	fmt.Fprintf(&b, "runtime       %.3f ms\n", float64(res.Runtime)/1e9)
	fmt.Fprintf(&b, "memory ops    %d\n", res.Ops)
	fmt.Fprintf(&b, "DRAM util     %.1f%%\n", res.DRAMUtilization*100)
	if res.L1MissRatio > 0 || res.L2MissRatio > 0 {
		fmt.Fprintf(&b, "L1 miss       %.3f\n", res.L1MissRatio)
		fmt.Fprintf(&b, "L2 miss       %.3f\n", res.L2MissRatio)
		fmt.Fprintf(&b, "L1 TLB miss   %.4f\n", res.TLBMissRatio)
	}
	fmt.Fprintf(&b, "translations  %d (%d page walks)\n", res.Translations, res.PageWalks)
	if mode == harness.BCNoBCC || mode == harness.BCBCC {
		fmt.Fprintf(&b, "BC checks     %d (%.3f/cycle)\n", res.BCChecks, res.RequestsPerCycle())
		fmt.Fprintf(&b, "BCC miss      %.4f\n", res.BCCMissRatio)
	}
	if res.Downgrades > 0 {
		fmt.Fprintf(&b, "downgrades    %d\n", res.Downgrades)
	}
	if res.VerifyErr != nil {
		fmt.Fprintf(&b, "results       INCORRECT: %v\n", res.VerifyErr)
	} else {
		b.WriteString("results       verified correct\n")
	}
	return b.String()
}

// SweepSpec executes a synthetic-traffic replay grid — the daemon's
// `bctool sweep`. The plan (traces, names, cells) is built exactly as the
// CLI builds it, so a served sweep's artifact is byte-identical to the
// in-process `bctool sweep` with the same axes.
type SweepSpec struct {
	// Traffic lists generator shapes (empty = all); Seeds traces per shape
	// (default 1), named "<shape>-s<seed>".
	Traffic []string `json:"traffic,omitempty"`
	Seeds   int      `json:"seeds,omitempty"`
	// Modes are mode slugs (empty = all five, in the paper's order);
	// Borders border designs for the BC modes (empty = all registered);
	// Classes is both, high or moderate (default both).
	Modes   []string `json:"modes,omitempty"`
	Borders []string `json:"borders,omitempty"`
	Classes string   `json:"classes,omitempty"`
	Shards  int      `json:"shards,omitempty"`
	// CSV selects the CSV rendering instead of the text table.
	CSV bool `json:"csv,omitempty"`
	// Workers overrides the daemon's worker-process fan-out for this job:
	// 0 = daemon default, negative = force in-process. Execution shape
	// only — the artifact is byte-identical at any value, and the cache
	// key ignores it.
	Workers int `json:"workers,omitempty"`
	// GenSegments/GenWavefronts/GenOps shrink the synthetic generators
	// (0 = shape default); they exist so tests and demos can run tiny
	// grids.
	GenSegments   int `json:"gen_segments,omitempty"`
	GenWavefronts int `json:"gen_wavefronts,omitempty"`
	GenOps        int `json:"gen_ops,omitempty"`
}

func (s *SweepSpec) validate() error {
	_, _, err := s.plan()
	return err
}

// plan expands the spec into the labelled cell grid plus the
// content-hash of every trace in name order (the cache key's trace
// component). It mirrors `bctool sweep`: shapes x seeds generate traces
// named "<shape>-s<seed>", then RecordedCells crosses them with the
// mode/border/class axes over DefaultParams.
func (s *SweepSpec) plan() ([]harness.SweepCell, []string, error) {
	shapes := traffic.Shapes()
	if len(s.Traffic) > 0 {
		shapes = s.Traffic
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	traces := map[string]*tracerec.Trace{}
	var names []string
	for _, shape := range shapes {
		for seed := 1; seed <= seeds; seed++ {
			tr, err := traffic.Generate(traffic.Config{
				Shape: shape, Seed: uint64(seed),
				Segments: s.GenSegments, Wavefronts: s.GenWavefronts, Ops: s.GenOps,
			})
			if err != nil {
				return nil, nil, err
			}
			name := fmt.Sprintf("%s-s%d", shape, seed)
			if _, dup := traces[name]; dup {
				return nil, nil, fmt.Errorf("serve: duplicate trace name %q", name)
			}
			traces[name] = tr
			names = append(names, name)
		}
	}
	hashes := make([]string, 0, len(names))
	for _, name := range names {
		h, err := traces[name].Hash()
		if err != nil {
			return nil, nil, err
		}
		hashes = append(hashes, fmt.Sprintf("%x", h))
	}

	modes := []harness.Mode{harness.ATSOnly, harness.FullIOMMU, harness.CAPILike, harness.BCNoBCC, harness.BCBCC}
	if len(s.Modes) > 0 {
		modes = modes[:0]
		for _, ms := range s.Modes {
			m, err := harness.ParseModeSlug(ms)
			if err != nil {
				return nil, nil, err
			}
			modes = append(modes, m)
		}
	}
	borders := core.Designs()
	if len(s.Borders) > 0 {
		borders = s.Borders
		for _, b := range borders {
			if !designKnown(b) {
				return nil, nil, fmt.Errorf("serve: unknown border design %q (have %v)", b, core.Designs())
			}
		}
	}
	var classes []harness.GPUClass
	switch s.Classes {
	case "", "both":
		classes = []harness.GPUClass{harness.HighlyThreaded, harness.ModeratelyThreaded}
	case "high", "highly":
		classes = []harness.GPUClass{harness.HighlyThreaded}
	case "moderate", "mod":
		classes = []harness.GPUClass{harness.ModeratelyThreaded}
	default:
		return nil, nil, fmt.Errorf("serve: unknown classes %q (both, high, moderate)", s.Classes)
	}
	if s.Shards < 0 {
		return nil, nil, fmt.Errorf("serve: negative shards")
	}

	cells := harness.RecordedCells(traces, names, modes, borders, classes, harness.DefaultParams(), s.Shards)
	if err := harness.ValidateCells(cells); err != nil {
		return nil, nil, err
	}
	return cells, hashes, nil
}

func designKnown(name string) bool {
	for _, d := range core.Designs() {
		if d == name {
			return true
		}
	}
	return false
}

func (s *SweepSpec) run(ctx context.Context, env jobEnv) (string, stats.Snapshot, error) {
	cells, _, err := s.plan()
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	workers := s.Workers
	if workers == 0 {
		workers = env.workers
	}
	if workers < 0 {
		workers = 0
	}
	env.note("sweep: %d cells, workers=%d", len(cells), workers)
	rows, err := SweepFanout(ctx, cells, FanoutConfig{
		Workers: workers, Jobs: env.jobs,
		Argv: env.argv, Env: env.env,
		Progress:      env.progress,
		OnWorkerStart: env.workerStart,
		OnWorkerExit:  env.workerExit,
	})
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	if s.CSV {
		return harness.SweepCSV(rows), sweepRowStats(rows), nil
	}
	return harness.RenderSweep(rows), sweepRowStats(rows), nil
}

// sweepRowStats synthesizes a metrics snapshot from the merged sweep rows.
// Worker-process fan-out moves the per-run registries into subprocesses,
// so the daemon aggregates what crosses the wire: the row totals. Built
// through a Registry so names come out in canonical sorted order.
func sweepRowStats(rows []harness.SweepRow) stats.Snapshot {
	var cellsC, eventsC, opsC, checksC, grantedC, deniedC stats.Counter
	for _, r := range rows {
		cellsC.Inc()
		eventsC.Add(r.Events)
		opsC.Add(r.Ops)
		checksC.Add(r.BCChecks)
		grantedC.Add(r.Granted)
		deniedC.Add(r.Denied)
	}
	reg := stats.NewRegistry()
	sc := reg.Scope("sweep")
	sc.Counter("cells", &cellsC)
	sc.Counter("events", &eventsC)
	sc.Counter("ops", &opsC)
	sc.Counter("bc_checks", &checksC)
	sc.Counter("probes.granted", &grantedC)
	sc.Counter("probes.denied", &deniedC)
	return reg.Snapshot()
}

// AdversarySpec runs seeded sandbox-escape campaigns — the daemon's
// `bctool adversary`. A breached sandbox fails the job; the report is the
// artifact either way.
type AdversarySpec struct {
	Seed      int64    `json:"seed,omitempty"`
	Campaigns int      `json:"campaigns,omitempty"`
	Attacks   []string `json:"attacks,omitempty"`
	Border    string   `json:"border,omitempty"`
}

func (s *AdversarySpec) validate() error {
	if s.Campaigns < 0 {
		return fmt.Errorf("serve: negative campaigns")
	}
	if s.Border != "" && !designKnown(s.Border) {
		return fmt.Errorf("serve: unknown border design %q (have %v)", s.Border, core.Designs())
	}
	known := map[string]bool{}
	for _, a := range adversary.AttackNames() {
		known[a] = true
	}
	for _, a := range s.Attacks {
		if !known[a] {
			return fmt.Errorf("serve: unknown attack %q (have %v)", a, adversary.AttackNames())
		}
	}
	return nil
}

func (s *AdversarySpec) run(ctx context.Context, env jobEnv) (string, stats.Snapshot, error) {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	campaigns := s.Campaigns
	if campaigns == 0 {
		campaigns = 4
	}
	p := harness.DefaultParams()
	if s.Border != "" {
		p.Border = s.Border
	}
	env.note("adversary: seed=%d campaigns=%d", seed, campaigns)
	rep, err := harness.AdversaryReport(ctx, harness.Exec{Jobs: env.jobs}, p, seed, campaigns, s.Attacks)
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	art := adversary.Render(rep)
	if rep.Failed() {
		return art, rep.Stats(), fmt.Errorf("serve: sandbox breached — see the reproducing seeds in the artifact")
	}
	return art, rep.Stats(), nil
}

// FleetSpec runs a multi-tenant fleet on the sharded engine — the
// daemon's `bctool fleet`.
type FleetSpec struct {
	Tenants  int    `json:"tenants,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Class    string `json:"class,omitempty"`
	Workload string `json:"workload,omitempty"`
	// ChurnPs/SpreadPs/LookaheadPs are simulated-picosecond knobs.
	// 0 keeps the fleet default; churn and spread accept -1 for an
	// explicit "off" (0 is their default-selector, not a value).
	ChurnPs     int64 `json:"churn_ps,omitempty"`
	SpreadPs    int64 `json:"spread_ps,omitempty"`
	LookaheadPs int64 `json:"lookahead_ps,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	Shards      int   `json:"shards,omitempty"`
	Scale       int   `json:"scale,omitempty"`
}

func (s *FleetSpec) validate() error {
	if s.Workload != "" {
		if _, ok := workload.ByName(s.Workload); !ok {
			return fmt.Errorf("serve: unknown workload %q (have %v)", s.Workload, workload.Names())
		}
	}
	if s.Mode != "" {
		if _, err := harness.ParseModeSlug(s.Mode); err != nil {
			return err
		}
	}
	if s.Class != "" {
		if _, err := harness.ParseClassSlug(s.Class); err != nil {
			return err
		}
	}
	if s.Tenants < 0 || s.Shards < 0 || s.Scale < 0 {
		return fmt.Errorf("serve: fleet spec has negative knobs")
	}
	return nil
}

func (s *FleetSpec) run(ctx context.Context, env jobEnv) (string, stats.Snapshot, error) {
	fp := harness.DefaultFleetParams()
	if s.Tenants > 0 {
		fp.Tenants = s.Tenants
	}
	if s.Mode != "" {
		m, err := harness.ParseModeSlug(s.Mode)
		if err != nil {
			return "", stats.Snapshot{}, err
		}
		fp.Mode = m
	}
	if s.Class != "" {
		c, err := harness.ParseClassSlug(s.Class)
		if err != nil {
			return "", stats.Snapshot{}, err
		}
		fp.Class = c
	}
	if s.ChurnPs > 0 {
		fp.DowngradeEvery = sim.Time(s.ChurnPs)
	} else if s.ChurnPs < 0 {
		fp.DowngradeEvery = 0 // explicit no-churn
	}
	if s.SpreadPs > 0 {
		fp.LaunchSpread = sim.Time(s.SpreadPs)
	} else if s.SpreadPs < 0 {
		fp.LaunchSpread = 0
	}
	if s.LookaheadPs > 0 {
		fp.Lookahead = sim.Time(s.LookaheadPs)
	}
	if s.Seed != 0 {
		fp.Seed = s.Seed
	}
	fp.Workers = s.Shards
	name := s.Workload
	if name == "" {
		name = "pathfinder"
	}
	sw, _ := workload.ByName(name)
	p := harness.DefaultParams()
	if s.Scale > 0 {
		p.Scale = s.Scale
	}
	env.note("fleet: %d tenants x %s", fp.Tenants, name)
	res, err := harness.RunFleetCtx(ctx, p, fp, sw)
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	art := res.Render()
	if res.Verified != res.Tenants {
		return art, res.Stats, fmt.Errorf("serve: %d of %d tenants produced INCORRECT results", res.Tenants-res.Verified, res.Tenants)
	}
	return art, res.Stats, nil
}
