// The /v1/watch firehose: every job's seq-numbered events multiplexed
// onto one daemon-global stream under a monotonic cursor.
//
// Design: publishers append to a bounded ring of WatchEvents; each event
// gets the next global cursor. Subscribers pull — each holds only its own
// cursor and reads whatever the ring retains past it, so a subscriber's
// effective buffer is the ring itself. A subscriber that falls behind the
// ring's capacity does not stall publishers and does not accumulate
// unbounded queues; it observes an explicit drop marker naming how many
// events it missed, then continues from the oldest retained event. Because
// publishers append while holding their job's mutex, the cursor order of
// any single job's events matches that job's seq order.

package serve

import (
	"fmt"
	"sync"
)

// WatchEvent is one record of the /v1/watch firehose: a daemon-global
// monotonic cursor plus the job-scoped event it carries. Type "drop" is
// synthesized per subscriber when it fell behind the retained window; a
// drop carries no job or seq, and its cursor is the last missed event's,
// so resuming at it continues exactly where delivery picks up.
type WatchEvent struct {
	Cursor uint64 `json:"cursor"`
	Job    string `json:"job,omitempty"`
	Type   string `json:"type"` // "state", "progress", "cache", "drop"
	Seq    int    `json:"seq,omitempty"`
	Msg    string `json:"msg"`
}

// defaultWatchBuffer is the ring capacity when Options.WatchBuffer is 0.
const defaultWatchBuffer = 1024

// firehose is the bounded publish/subscribe ring behind /v1/watch.
type firehose struct {
	mu   sync.Mutex
	cap  int
	next uint64       // cursor the next published event will get (starts at 1)
	ring []WatchEvent // the last <= cap events, ascending cursor

	updated chan struct{} // closed-and-replaced on every publish

	subs      int    // current subscriber count (gauge)
	published uint64 // total events published (counter)
	dropped   uint64 // total events subscribers missed (counter)
}

func newFirehose(capacity int) *firehose {
	if capacity <= 0 {
		capacity = defaultWatchBuffer
	}
	return &firehose{cap: capacity, next: 1, updated: make(chan struct{})}
}

// publish appends one event, assigning it the next global cursor, and
// wakes every waiting subscriber. Callers publish a single job's events in
// that job's seq order (they hold the job mutex across the call), which is
// what makes the per-job ordering guarantee hold on the multiplexed
// stream.
func (f *firehose) publish(job string, e Event) {
	f.mu.Lock()
	we := WatchEvent{Cursor: f.next, Job: job, Type: e.Type, Seq: e.Seq, Msg: e.Msg}
	f.next++
	f.published++
	f.ring = append(f.ring, we)
	if len(f.ring) > f.cap {
		// Trim in one copy; the slice never grows past cap+1.
		copy(f.ring, f.ring[1:])
		f.ring = f.ring[:f.cap]
	}
	close(f.updated)
	f.updated = make(chan struct{})
	f.mu.Unlock()
}

// since returns the retained events with Cursor > after, how many events
// past `after` were already evicted (the subscriber's drop count), and a
// channel that closes on the next publish. The caller accounts delivered
// events by advancing its own cursor.
func (f *firehose) since(after uint64) (events []WatchEvent, dropped uint64, wait <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldest := f.next - uint64(len(f.ring)) // cursor of ring[0]
	from := after + 1
	if from < oldest {
		dropped = oldest - from
		f.dropped += dropped
		from = oldest
	}
	if from < f.next {
		events = append(events, f.ring[from-oldest:]...)
	}
	return events, dropped, f.updated
}

// dropMarker builds the synthetic event a subscriber sees after missing n
// events; its cursor is the last missed event's cursor.
func (f *firehose) dropMarker(after, n uint64) WatchEvent {
	return WatchEvent{
		Cursor: after + n,
		Type:   "drop",
		Msg:    fmt.Sprintf("%d event(s) dropped (subscriber fell behind the %d-event watch buffer)", n, f.cap),
	}
}

// subscribe/unsubscribe maintain the subscriber gauge.
func (f *firehose) subscribe() {
	f.mu.Lock()
	f.subs++
	f.mu.Unlock()
}

func (f *firehose) unsubscribe() {
	f.mu.Lock()
	f.subs--
	f.mu.Unlock()
}

// counters returns (subscribers, published, dropped) for the metrics page.
func (f *firehose) counters() (int, uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.subs, f.published, f.dropped
}
