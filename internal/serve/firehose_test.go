package serve

import (
	"testing"
)

// TestFirehoseCursorAndRing: cursors are global and monotonic from 1, the
// ring retains at most its capacity, and since() reports exactly how many
// events a lagging subscriber lost.
func TestFirehoseCursorAndRing(t *testing.T) {
	fh := newFirehose(4)
	for i := 1; i <= 10; i++ {
		fh.publish("j0001", Event{Seq: i, Type: "progress", Msg: "x"})
	}
	_, published, _ := fh.counters()
	if published != 10 {
		t.Fatalf("published = %d, want 10", published)
	}

	// A fresh subscriber (cursor 0) missed 10-4=6 events.
	events, dropped, _ := fh.since(0)
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4 (ring capacity)", len(events))
	}
	for i, e := range events {
		want := uint64(7 + i)
		if e.Cursor != want {
			t.Errorf("events[%d].Cursor = %d, want %d", i, e.Cursor, want)
		}
	}

	// The drop marker resumes exactly where delivery picks up.
	m := fh.dropMarker(0, dropped)
	if m.Type != "drop" || m.Cursor != 6 {
		t.Errorf("dropMarker = %+v, want type=drop cursor=6", m)
	}

	// A caught-up subscriber sees nothing and loses nothing.
	events, dropped, _ = fh.since(10)
	if len(events) != 0 || dropped != 0 {
		t.Errorf("caught-up since() = %d events, %d dropped; want 0, 0", len(events), dropped)
	}

	// A partially-behind subscriber inside the retained window drops none.
	events, dropped, _ = fh.since(8)
	if dropped != 0 || len(events) != 2 {
		t.Errorf("since(8) = %d events, %d dropped; want 2, 0", len(events), dropped)
	}
}

// TestFirehosePublishWakesWaiters: the wait channel returned by since()
// closes on the next publish.
func TestFirehosePublishWakesWaiters(t *testing.T) {
	fh := newFirehose(8)
	_, _, wait := fh.since(0)
	select {
	case <-wait:
		t.Fatal("wait channel closed before any publish")
	default:
	}
	fh.publish("j0001", Event{Seq: 1, Type: "state", Msg: "queued"})
	select {
	case <-wait:
	default:
		t.Fatal("wait channel still open after publish")
	}
	events, dropped, _ := fh.since(0)
	if dropped != 0 || len(events) != 1 || events[0].Cursor != 1 || events[0].Seq != 1 {
		t.Fatalf("since(0) after first publish = (%v, %d), want one event cursor=1 seq=1", events, dropped)
	}
}

// TestFirehoseSubscriberGauge: subscribe/unsubscribe move the gauge.
func TestFirehoseSubscriberGauge(t *testing.T) {
	fh := newFirehose(8)
	fh.subscribe()
	fh.subscribe()
	if subs, _, _ := fh.counters(); subs != 2 {
		t.Fatalf("subs = %d, want 2", subs)
	}
	fh.unsubscribe()
	if subs, _, _ := fh.counters(); subs != 1 {
		t.Fatalf("subs = %d, want 1", subs)
	}
}
