package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
)

// cacheKey derives the artifact identity of a request: a domain prefix,
// the code version (simulations are deterministic, so the same code + the
// same request + the same traces can only produce the same artifact), the
// canonical JSON of the request with execution-only knobs stripped, and
// the content hash of every input trace in name order.
func cacheKey(version string, req Request, traceHashes []string) (string, error) {
	blob, err := json.Marshal(normalizeForCache(req))
	if err != nil {
		return "", fmt.Errorf("serve: hashing request: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, "bordercontrol/serve/v1\n")
	io.WriteString(h, version)
	io.WriteString(h, "\n")
	h.Write(blob)
	for _, th := range traceHashes {
		io.WriteString(h, "\n")
		io.WriteString(h, th)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// normalizeForCache strips the knobs that shape execution but — by the
// determinism guarantees — never the artifact, so a sweep served by four
// workers hits the entry a serial run populated.
func normalizeForCache(req Request) Request {
	if req.Sweep != nil {
		s := *req.Sweep
		s.Workers = 0
		req.Sweep = &s
	}
	return req
}

// codeVersion identifies the running build for the cache key: the VCS
// revision when the binary carries one (plus a dirty marker), else "dev".
func codeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	return rev + dirty
}

// artifactCache is a bounded insertion-order map from cache key to
// rendered artifact. Insertion-order eviction is deliberate: entries are
// immutable facts (same key ⇒ same artifact), so recency tracking buys
// nothing a bigger cache wouldn't.
type artifactCache struct {
	mu    sync.Mutex
	max   int
	order []string
	byKey map[string]string
	// hits/misses count lookups for the metrics page; pure observation.
	hits   uint64
	misses uint64
}

func newArtifactCache(max int) *artifactCache {
	return &artifactCache{max: max, byKey: make(map[string]string)}
}

func (c *artifactCache) get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.byKey[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return a, ok
}

func (c *artifactCache) put(key, artifact string) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byKey[key]; dup {
		return
	}
	for len(c.order) >= c.max {
		delete(c.byKey, c.order[0])
		c.order = c.order[1:]
	}
	c.byKey[key] = artifact
	c.order = append(c.order, key)
}

func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// counters returns (entries, hits, misses).
func (c *artifactCache) counters() (int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey), c.hits, c.misses
}
