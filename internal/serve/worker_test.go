package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"bordercontrol/internal/harness"
	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/traffic"
)

func blobHash(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// TestMain doubles the test binary as a worker process: when spawned with
// BC_SERVE_WORKER=1 it speaks the worker protocol on stdin/stdout instead
// of running tests. Fan-out tests point FanoutConfig.Argv at os.Args[0]
// with that variable set, so they exercise the real subprocess path
// without needing a built bctool on PATH.
func TestMain(m *testing.M) {
	if os.Getenv("BC_SERVE_WORKER") == "1" {
		if err := RunWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func workerFanoutConfig(workers int) FanoutConfig {
	return FanoutConfig{
		Workers: workers,
		Argv:    []string{os.Args[0]},
		Env:     []string{"BC_SERVE_WORKER=1"},
	}
}

// tinyGrid builds a small but multi-trace, multi-mode grid: 2 shapes x
// 2 modes x 1 border x 1 class = 4 cells over 2 distinct traces.
func tinyGrid(t *testing.T) []harness.SweepCell {
	t.Helper()
	traces := map[string]*tracerec.Trace{}
	var names []string
	for _, shape := range []string{traffic.Bursty, traffic.Stream} {
		tr, err := traffic.Generate(traffic.Config{Shape: shape, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		name := shape + "-s1"
		traces[name] = tr
		names = append(names, name)
	}
	return harness.RecordedCells(traces, names,
		[]harness.Mode{harness.BCNoBCC, harness.BCBCC}, []string{"flat"},
		[]harness.GPUClass{harness.ModeratelyThreaded}, harness.DefaultParams(), 0)
}

// TestSweepFanoutByteIdentical is the tentpole's acceptance check in
// miniature: the same grid rendered via 1, 2 and 4 worker subprocesses is
// byte-identical to the in-process sweep — CSV and table both.
func TestSweepFanoutByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cells := tinyGrid(t)
	want, err := harness.RunSweep(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantArt := harness.SweepCSV(want) + harness.RenderSweep(want)

	for _, workers := range []int{1, 2, 4} {
		var notes []string
		cfg := workerFanoutConfig(workers)
		cfg.Progress = func(msg string) { notes = append(notes, msg) }
		rows, err := SweepFanout(context.Background(), cells, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := harness.SweepCSV(rows) + harness.RenderSweep(rows)
		if got != wantArt {
			t.Errorf("workers=%d: artifact differs from in-process:\n--- want\n%s--- got\n%s", workers, wantArt, got)
		}
		if len(notes) != len(cells) {
			t.Errorf("workers=%d: got %d progress notes, want one per cell (%d)", workers, len(notes), len(cells))
		}
	}
}

// TestSweepFanoutInProcess: Workers<=0 short-circuits to the in-process
// path and still reports per-cell progress.
func TestSweepFanoutInProcess(t *testing.T) {
	cells := tinyGrid(t)
	var notes []string
	rows, err := SweepFanout(context.Background(), cells, FanoutConfig{
		Workers:  0,
		Progress: func(msg string) { notes = append(notes, msg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cells) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cells))
	}
	if len(notes) != len(cells) {
		t.Errorf("got %d progress notes, want %d", len(notes), len(cells))
	}
	// Duplicate labels are refused before anything runs, same as RunSweep.
	bad := append([]harness.SweepCell{}, cells...)
	bad[1].Label = bad[0].Label
	if _, err := SweepFanout(context.Background(), bad, FanoutConfig{}); err == nil {
		t.Error("duplicate labels: want error")
	}
}

// TestRunWorkerRoundTrip drives the worker protocol in-process: encode a
// request, run RunWorker, decode the NDJSON rows, and check they carry the
// same results RunCell produces directly.
func TestRunWorkerRoundTrip(t *testing.T) {
	cells := tinyGrid(t)
	hashOf := map[*tracerec.Trace]string{}
	var wts []workerTrace
	for _, c := range cells {
		if _, ok := hashOf[c.Trace]; ok {
			continue
		}
		blob, err := tracerec.Encode(c.Trace)
		if err != nil {
			t.Fatal(err)
		}
		h := blobHash(blob)
		hashOf[c.Trace] = h
		wts = append(wts, workerTrace{Hash: h, Data: blob})
	}
	req := workerRequest{Jobs: 1, Traces: wts}
	for i, c := range cells {
		req.Cells = append(req.Cells, workerCell{
			Index: i, Label: c.Label, Trace: hashOf[c.Trace],
			Mode: harness.ModeSlug(c.Mode), Class: harness.ClassSlug(c.Class),
			Border: c.P.Border,
		})
	}
	var in, out bytes.Buffer
	if err := json.NewEncoder(&in).Encode(req); err != nil {
		t.Fatal(err)
	}
	if err := RunWorker(context.Background(), &in, &out); err != nil {
		t.Fatal(err)
	}

	rows := make([]*harness.SweepRow, len(cells))
	dec := json.NewDecoder(&out)
	for dec.More() {
		var wr workerRow
		if err := dec.Decode(&wr); err != nil {
			t.Fatal(err)
		}
		if wr.Err != "" {
			t.Fatalf("cell %d failed: %s", wr.Index, wr.Err)
		}
		rows[wr.Index] = wr.Row
	}
	want, err := harness.RunSweep(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if rows[i] == nil {
			t.Fatalf("worker dropped cell %d", i)
		}
		if *rows[i] != want[i] {
			t.Errorf("cell %d: worker row %+v != in-process row %+v", i, *rows[i], want[i])
		}
	}
}

// TestRunWorkerCorruptTrace: a shipped blob whose bytes don't match its
// hash is refused outright — the worker fails closed rather than running
// a trace it can't authenticate.
func TestRunWorkerCorruptTrace(t *testing.T) {
	tr, err := traffic.Generate(traffic.Config{Shape: traffic.Bursty, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := tracerec.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := blobHash(blob)
	blob[len(blob)-1] ^= 0x01
	req := workerRequest{
		Traces: []workerTrace{{Hash: h, Data: blob}},
		Cells:  []workerCell{{Index: 0, Label: "x", Trace: h, Mode: "bc-bcc", Class: "mod", Border: "flat"}},
	}
	var in, out bytes.Buffer
	if err := json.NewEncoder(&in).Encode(req); err != nil {
		t.Fatal(err)
	}
	err = RunWorker(context.Background(), &in, &out)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("RunWorker on corrupted trace: err = %v, want corrupt-ship refusal", err)
	}
}
