package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bordercontrol/internal/harness"
)

// tinySweepRequest is a grid small enough for unit tests: generator knobs
// shrunk, one shape, two modes, one border, one class, CSV rendering.
func tinySweepRequest() Request {
	return Request{Type: "sweep", Sweep: &SweepSpec{
		Traffic: []string{"bursty"}, Seeds: 1,
		Modes: []string{"bc-nobcc", "bc-bcc"}, Borders: []string{"flat"},
		Classes: "moderate", CSV: true,
		GenSegments: 2, GenWavefronts: 2, GenOps: 64,
	}}
}

func startTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	srv := New(opts)
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		srv.Stop()
	})
	return srv, &Client{Base: hs.URL}
}

// TestServeSweepMatchesInProcess: the daemon's sweep artifact is
// byte-identical to the same grid run directly, and a second identical
// submission is served from the artifact cache — marked cached, same
// bytes, with a cache event in the stream.
func TestServeSweepMatchesInProcess(t *testing.T) {
	_, c := startTestServer(t, Options{Version: "test"})
	ctx := context.Background()
	req := tinySweepRequest()

	cells, _, err := req.Sweep.plan()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := harness.RunSweep(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := harness.SweepCSV(rows)

	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Stream(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Cached {
		t.Fatalf("first run: state=%s cached=%v, want done/uncached", final.State, final.Cached)
	}
	art, err := c.Artifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if art != want {
		t.Errorf("served artifact differs from in-process sweep:\n--- want\n%s--- got\n%s", want, art)
	}

	// Second identical submission: cache hit, no re-execution, same bytes.
	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var sawCacheEvent bool
	final2, err := c.Stream(ctx, st2.ID, func(e Event) {
		if e.Type == "cache" {
			sawCacheEvent = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone || !final2.Cached {
		t.Fatalf("second run: state=%s cached=%v, want done/cached", final2.State, final2.Cached)
	}
	if !sawCacheEvent {
		t.Error("second run: no cache event in stream")
	}
	art2, err := c.Artifact(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if art2 != art {
		t.Error("cached artifact differs from the original")
	}
}

// TestServeWorkersDontChangeCacheKey: SweepSpec.Workers is execution
// shape, not artifact identity — a request differing only in Workers hits
// the same cache entry.
func TestServeWorkersDontChangeCacheKey(t *testing.T) {
	req := tinySweepRequest()
	_, hashes, err := req.Sweep.plan()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cacheKey("v", req, hashes)
	if err != nil {
		t.Fatal(err)
	}
	req2 := tinySweepRequest()
	req2.Sweep.Workers = 4
	k2, err := cacheKey("v", req2, hashes)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("cache key depends on Workers")
	}
	req3 := tinySweepRequest()
	req3.Sweep.GenOps = 128
	k3, err := cacheKey("v", req3, hashes)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("cache key ignores a generator knob that changes the grid")
	}
	if k4, _ := cacheKey("v2", req, hashes); k4 == k1 {
		t.Error("cache key ignores the code version")
	}
}

// TestServeValidation: malformed submissions are refused with 400 before
// occupying a queue slot.
func TestServeValidation(t *testing.T) {
	_, c := startTestServer(t, Options{Version: "test"})
	ctx := context.Background()
	for _, req := range []Request{
		{Type: "warp"},
		{Type: "run"}, // type without its spec
		{Type: "run", Run: &RunSpec{Workload: "nope", Mode: "bc-bcc", Class: "mod"}},
		{Type: "sweep", Sweep: &SweepSpec{Modes: []string{"bogus"}}},
		{Type: "sweep", Sweep: &SweepSpec{Borders: []string{"bogus"}}},
		{Type: "run", Run: &RunSpec{Workload: "pathfinder", Mode: "bc-bcc", Class: "mod"},
			Sweep: &SweepSpec{}}, // two specs
	} {
		if _, err := c.Submit(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("Submit(%+v): err = %v, want 400", req, err)
		}
	}
}

// TestServeQueueBound: without a running executor, submissions beyond
// QueueDepth are refused with 503 — deterministically, since nothing
// drains the queue.
func TestServeQueueBound(t *testing.T) {
	srv := New(Options{QueueDepth: 2, Version: "test"})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := &Client{Base: hs.URL}
	ctx := context.Background()
	req := tinySweepRequest()
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, req); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	_, err := c.Submit(ctx, req)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("third submission: err = %v, want 503 queue full", err)
	}
}

// TestServeCancelQueued: a queued job can be cancelled before any
// executor picks it up, and the executor then skips it.
func TestServeCancelQueued(t *testing.T) {
	srv := New(Options{Version: "test"})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := &Client{Base: hs.URL}
	ctx := context.Background()

	st, err := c.Submit(ctx, tinySweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}

	// Starting the executor now must leave the cancelled job untouched.
	runCtx, cancel := context.WithCancel(context.Background())
	srv.Start(runCtx)
	defer func() { cancel(); srv.Stop() }()
	time.Sleep(50 * time.Millisecond)
	got, err = c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("after executor start: state = %s, want cancelled", got.State)
	}
	if err := c.Cancel(ctx, "j9999"); err == nil {
		t.Error("cancelling an unknown job: want error")
	}
}

// TestServeRunJob: a run job renders the `bctool run` report.
func TestServeRunJob(t *testing.T) {
	_, c := startTestServer(t, Options{Version: "test"})
	ctx := context.Background()
	st, err := c.Submit(ctx, Request{Type: "run", Run: &RunSpec{
		Workload: "pathfinder", Mode: "bc-bcc", Class: "moderate",
	}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Stream(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	art, err := c.Artifact(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workload      pathfinder", "BC checks", "results       verified correct"} {
		if !strings.Contains(art, want) {
			t.Errorf("run artifact missing %q:\n%s", want, art)
		}
	}
}
