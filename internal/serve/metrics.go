// The /v1/metrics page: daemon-level series rendered by hand plus the
// merged job-stats snapshots bridged through stats.WritePrometheus. The
// whole page is pure observation — every series is read from counters the
// daemon already maintains, and scraping mutates nothing that could reach
// an artifact.

package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"bordercontrol/internal/stats"
)

// writeMetrics renders the full exposition page. Daemon series carry the
// bc_daemon_ prefix; job-stats series (the stats.Merge of every completed
// job's snapshot) carry bc_job_.
func (s *Server) writeMetrics(w io.Writer) {
	h := s.health()
	entries, hits, misses := s.cache.counters()
	subs, published, dropped := s.fh.counters()
	s.mu.Lock()
	jobSnap := s.jobStats
	jobSnaps := s.jobSnaps
	s.mu.Unlock()

	fmt.Fprintf(w, "# TYPE bc_daemon_info gauge\nbc_daemon_info{version=%s} 1\n", promLabel(s.version))
	writeProm(w, "bc_daemon_uptime_seconds", "gauge", h.UptimeSeconds)
	writeProm(w, "bc_daemon_queue_depth", "gauge", float64(h.QueueDepth))
	writeProm(w, "bc_daemon_queue_capacity", "gauge", float64(h.QueueCapacity))
	fmt.Fprintf(w, "# TYPE bc_daemon_jobs gauge\n")
	for _, st := range States {
		fmt.Fprintf(w, "bc_daemon_jobs{state=%q} %d\n", st, h.Jobs[st])
	}
	writeProm(w, "bc_daemon_cache_entries", "gauge", float64(entries))
	writeProm(w, "bc_daemon_cache_hits_total", "counter", float64(hits))
	writeProm(w, "bc_daemon_cache_misses_total", "counter", float64(misses))
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	writeProm(w, "bc_daemon_cache_hit_ratio", "gauge", ratio)
	writeProm(w, "bc_daemon_workers_spawned_total", "counter", float64(s.workersSpawned.Load()))
	writeProm(w, "bc_daemon_workers_active", "gauge", float64(s.workersActive.Load()))
	writeProm(w, "bc_daemon_watch_subscribers", "gauge", float64(subs))
	writeProm(w, "bc_daemon_watch_events_total", "counter", float64(published))
	writeProm(w, "bc_daemon_watch_dropped_total", "counter", float64(dropped))
	writeProm(w, "bc_daemon_job_snapshots_total", "counter", float64(jobSnaps))
	_ = stats.WritePrometheus(w, "bc_job_", jobSnap)
}

func writeProm(w io.Writer, name, typ string, v float64) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// promLabel quotes a label value with the exposition escapes (backslash,
// double quote, newline).
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `"` + r.Replace(v) + `"`
}

// Metrics is a parsed exposition page: sample lines keyed exactly as
// written ("name" or `name{label="v"}`) mapping to their values.
type Metrics map[string]float64

// ParseMetrics parses Prometheus text exposition (the subset /v1/metrics
// emits: comments, blank lines, and `name[{labels}] value` samples). It
// fails on any malformed sample line, so a passing parse doubles as a
// format check in tests and smoke scripts.
func ParseMetrics(text string) (Metrics, error) {
	m := make(Metrics)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the key is everything
		// before it (label values in this exposition never contain spaces,
		// and version strings are hex or "dev").
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("serve: metrics line %d: no value in %q", ln+1, line)
		}
		key, raw := strings.TrimSpace(line[:i]), line[i+1:]
		if err := checkSeriesKey(key); err != nil {
			return nil, fmt.Errorf("serve: metrics line %d: %w", ln+1, err)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: metrics line %d: bad value %q", ln+1, raw)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("serve: metrics line %d: duplicate series %q", ln+1, key)
		}
		m[key] = v
	}
	return m, nil
}

// checkSeriesKey validates "name" or "name{...}" with a legal metric name.
func checkSeriesKey(key string) error {
	name := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			return fmt.Errorf("unterminated labels in %q", key)
		}
		name = key[:i]
	}
	if name == "" {
		return fmt.Errorf("empty metric name in %q", key)
	}
	for i, r := range name {
		legal := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if !legal {
			return fmt.Errorf("illegal metric name %q", name)
		}
	}
	return nil
}

// Has reports whether the page carries the named series family: an exact
// key, any labelled variant, or (for histograms) a derived _bucket/_sum/
// _count series.
func (m Metrics) Has(family string) bool {
	if _, ok := m[family]; ok {
		return true
	}
	for key := range m {
		if strings.HasPrefix(key, family+"{") {
			return true
		}
		for _, suffix := range []string{"_bucket{", "_bucket", "_sum", "_count"} {
			if key == family+suffix || strings.HasPrefix(key, family+suffix) {
				return true
			}
		}
	}
	return false
}
