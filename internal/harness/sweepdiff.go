// Sweep-diff regression triage: compare two sweep artifacts (the CSV
// rendering, or two -stats-json snapshots) cell-by-cell and metric-by-
// metric under configurable relative-drift thresholds. The simulator is
// deterministic, so two runs of the same code over the same traces are
// byte-identical and diff clean with zero tolerance; any drift is a code
// or input change, and the per-metric thresholds say which drifts are
// intentional noise floors (e.g. host-timing columns, if ever added) and
// which are regressions.

package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"bordercontrol/internal/stats"
)

// SweepDiffOptions configures drift tolerance. A metric's threshold is the
// maximum allowed relative drift |new-old|/|old| (0 = exact match);
// Tol entries override Default per metric name.
type SweepDiffOptions struct {
	Default float64
	Tol     map[string]float64
}

func (o SweepDiffOptions) tol(metric string) float64 {
	if t, ok := o.Tol[metric]; ok {
		return t
	}
	return o.Default
}

// SweepDrift is one out-of-tolerance cell/metric pair.
type SweepDrift struct {
	Cell   string
	Metric string
	Old    float64
	New    float64
	// Rel is |new-old|/|old| (+Inf when old is 0 and new is not).
	Rel float64
}

// SweepDiff is the comparison result.
type SweepDiff struct {
	// Metrics are the compared column/metric names, in artifact order.
	Metrics []string
	// Cells is how many cells (rows/samples) both artifacts share.
	Cells int
	// OnlyOld/OnlyNew list cells present in exactly one artifact — always
	// a structural regression, whatever the thresholds.
	OnlyOld []string
	OnlyNew []string
	// Drifts lists every out-of-tolerance pair, in artifact order.
	Drifts []SweepDrift
}

// Clean reports whether the two artifacts agree within tolerance: same
// cell set, every metric within its threshold.
func (d *SweepDiff) Clean() bool {
	return len(d.Drifts) == 0 && len(d.OnlyOld) == 0 && len(d.OnlyNew) == 0
}

// Render formats the diff for terminal output: a one-line verdict, then
// one line per structural mismatch and drift.
func (d *SweepDiff) Render() string {
	var b strings.Builder
	if d.Clean() {
		fmt.Fprintf(&b, "sweepdiff: clean — %d cells x %d metrics within tolerance\n", d.Cells, len(d.Metrics))
		return b.String()
	}
	fmt.Fprintf(&b, "sweepdiff: REGRESSION — %d drift(s), %d cell(s) missing\n",
		len(d.Drifts), len(d.OnlyOld)+len(d.OnlyNew))
	for _, c := range d.OnlyOld {
		fmt.Fprintf(&b, "  cell %-40s only in OLD\n", c)
	}
	for _, c := range d.OnlyNew {
		fmt.Fprintf(&b, "  cell %-40s only in NEW\n", c)
	}
	for _, dr := range d.Drifts {
		rel := "inf"
		if !math.IsInf(dr.Rel, 0) {
			rel = fmt.Sprintf("%.4g", dr.Rel)
		}
		fmt.Fprintf(&b, "  cell %-40s %-14s %v -> %v (rel %s)\n", dr.Cell, dr.Metric, dr.Old, dr.New, rel)
	}
	return b.String()
}

// relDrift is the shared drift semantics: equal values drift 0 (including
// both zero), a value appearing from zero drifts +Inf, everything else
// |new-old|/|old|.
func relDrift(oldV, newV float64) float64 {
	if oldV == newV {
		return 0
	}
	if oldV == 0 {
		return math.Inf(1)
	}
	return math.Abs(newV-oldV) / math.Abs(oldV)
}

// DiffSweepCSV compares two sweep CSV artifacts (harness.SweepCSV's
// rendering: a "cell,..." header then one row per cell). The headers must
// match exactly — differing columns means the artifacts are not
// comparable, which is an error, not a drift.
func DiffSweepCSV(oldCSV, newCSV string, opts SweepDiffOptions) (*SweepDiff, error) {
	oldHdr, oldRows, err := parseSweepCSV(oldCSV)
	if err != nil {
		return nil, fmt.Errorf("harness: sweepdiff: old artifact: %w", err)
	}
	newHdr, newRows, err := parseSweepCSV(newCSV)
	if err != nil {
		return nil, fmt.Errorf("harness: sweepdiff: new artifact: %w", err)
	}
	if strings.Join(oldHdr, ",") != strings.Join(newHdr, ",") {
		return nil, fmt.Errorf("harness: sweepdiff: header mismatch:\n  old: %s\n  new: %s",
			strings.Join(oldHdr, ","), strings.Join(newHdr, ","))
	}

	d := &SweepDiff{Metrics: oldHdr[1:]}
	newByCell := make(map[string][]float64, len(newRows))
	for _, r := range newRows {
		newByCell[r.cell] = r.vals
	}
	oldSeen := make(map[string]bool, len(oldRows))
	for _, r := range oldRows {
		oldSeen[r.cell] = true
		nv, ok := newByCell[r.cell]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, r.cell)
			continue
		}
		d.Cells++
		for i, metric := range d.Metrics {
			rel := relDrift(r.vals[i], nv[i])
			if rel > opts.tol(metric) {
				d.Drifts = append(d.Drifts, SweepDrift{
					Cell: r.cell, Metric: metric, Old: r.vals[i], New: nv[i], Rel: rel,
				})
			}
		}
	}
	for _, r := range newRows {
		if !oldSeen[r.cell] {
			d.OnlyNew = append(d.OnlyNew, r.cell)
		}
	}
	return d, nil
}

type sweepCSVRow struct {
	cell string
	vals []float64
}

func parseSweepCSV(text string) ([]string, []sweepCSVRow, error) {
	rec, err := csv.NewReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rec) == 0 {
		return nil, nil, fmt.Errorf("empty artifact")
	}
	hdr := rec[0]
	if len(hdr) < 2 || hdr[0] != "cell" {
		return nil, nil, fmt.Errorf("not a sweep CSV (header %q)", strings.Join(hdr, ","))
	}
	seen := make(map[string]bool)
	rows := make([]sweepCSVRow, 0, len(rec)-1)
	for ln, fields := range rec[1:] {
		if len(fields) != len(hdr) {
			return nil, nil, fmt.Errorf("row %d has %d fields, header has %d", ln+2, len(fields), len(hdr))
		}
		cell := fields[0]
		if seen[cell] {
			return nil, nil, fmt.Errorf("duplicate cell %q", cell)
		}
		seen[cell] = true
		vals := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d (%s), column %s: bad value %q", ln+2, cell, hdr[i+1], f)
			}
			vals[i] = v
		}
		rows = append(rows, sweepCSVRow{cell: cell, vals: vals})
	}
	return hdr, rows, nil
}

// DiffStatsJSON compares two -stats-json snapshots (stats.Snapshot's JSON
// form) under the same drift semantics. Counters and gauges compare
// directly; each histogram expands to .count/.p50/.p99/.max sub-metrics —
// the same tails the sweep table reports — so a latency-shape regression
// is caught without demanding bucket-exact equality under tolerance.
// "Cells" here are sample names; a sample present on one side only is
// structural, like a missing CSV row.
func DiffStatsJSON(oldBlob, newBlob []byte, opts SweepDiffOptions) (*SweepDiff, error) {
	var oldSnap, newSnap stats.Snapshot
	if err := json.Unmarshal(oldBlob, &oldSnap); err != nil {
		return nil, fmt.Errorf("harness: sweepdiff: old stats: %w", err)
	}
	if err := json.Unmarshal(newBlob, &newSnap); err != nil {
		return nil, fmt.Errorf("harness: sweepdiff: new stats: %w", err)
	}
	oldM := statsMetricMap(oldSnap)
	newM := statsMetricMap(newSnap)

	d := &SweepDiff{}
	metricSet := make(map[string]bool)
	for name, oldVals := range oldM {
		newVals, ok := newM[name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, name)
			continue
		}
		d.Cells++
		// Sub-metric keys, sorted for deterministic drift order.
		keys := make([]string, 0, len(oldVals))
		for k := range oldVals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			metricSet[k] = true
			rel := relDrift(oldVals[k], newVals[k])
			if rel > opts.tol(k) {
				d.Drifts = append(d.Drifts, SweepDrift{
					Cell: name, Metric: k, Old: oldVals[k], New: newVals[k], Rel: rel,
				})
			}
		}
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	sort.Slice(d.Drifts, func(i, j int) bool {
		if d.Drifts[i].Cell != d.Drifts[j].Cell {
			return d.Drifts[i].Cell < d.Drifts[j].Cell
		}
		return d.Drifts[i].Metric < d.Drifts[j].Metric
	})
	for _, k := range []string{"value", "count", "p50", "p99", "max"} {
		if metricSet[k] {
			d.Metrics = append(d.Metrics, k)
		}
	}
	return d, nil
}

// statsMetricMap flattens a snapshot into per-sample sub-metric values.
func statsMetricMap(s stats.Snapshot) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(s.Samples))
	for _, smp := range s.Samples {
		switch smp.Kind {
		case stats.KindHistogram:
			out[smp.Name] = map[string]float64{
				"count": float64(smp.Hist.Count),
				"p50":   float64(smp.Hist.Percentile(50)),
				"p99":   float64(smp.Hist.Percentile(99)),
				"max":   float64(smp.Hist.Max),
			}
		case stats.KindGauge:
			out[smp.Name] = map[string]float64{"value": smp.Value}
		default:
			out[smp.Name] = map[string]float64{"value": float64(smp.Count)}
		}
	}
	return out
}
