package harness

import (
	"errors"
	"strings"
	"testing"

	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/traffic"
)

// TestSweepDeterminism: a replay sweep grid renders byte-identically
// whatever the host parallelism (jobs) and engine sharding — cells are
// independent deterministic simulations collected in submission order. It
// also pins the adversarial-probe outcomes the grid exists to show: under
// ATS-only every fabricated crossing is granted; under Border Control with
// the BCC every one is denied.
func TestSweepDeterminism(t *testing.T) {
	traces := map[string]*tracerec.Trace{}
	for _, shape := range []string{traffic.Bursty, traffic.Mix} {
		tr, err := traffic.Generate(traffic.Config{Shape: shape, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		traces[shape] = tr
	}
	names := []string{traffic.Bursty, traffic.Mix}
	modes := []Mode{ATSOnly, BCBCC}
	borders := []string{"flat", "range"}
	classes := []GPUClass{ModeratelyThreaded}

	run := func(jobs, shards int) string {
		cells := RecordedCells(traces, names, modes, borders, classes, DefaultParams(), shards)
		rows, err := RunSweep(cells, jobs)
		if err != nil {
			t.Fatalf("jobs=%d shards=%d: %v", jobs, shards, err)
		}
		probed := false
		for _, r := range rows {
			switch {
			case strings.HasPrefix(r.Label, "mix/ats-only/"):
				probed = true
				if r.Granted == 0 || r.Denied != 0 {
					t.Errorf("%s: want all probes granted, got %d granted %d denied",
						r.Label, r.Granted, r.Denied)
				}
			case strings.HasPrefix(r.Label, "mix/bc-bcc/"):
				probed = true
				if r.Denied == 0 || r.Granted != 0 {
					t.Errorf("%s: want all probes denied, got %d granted %d denied",
						r.Label, r.Granted, r.Denied)
				}
			}
		}
		if !probed {
			t.Fatal("grid carried no adversarial cells")
		}
		return RenderSweep(rows) + SweepCSV(rows)
	}

	serial := run(1, 0)
	parallel := run(4, 4)
	if serial != parallel {
		t.Errorf("sweep output depends on jobs/shards:\n--- jobs=1 shards=0\n%s--- jobs=4 shards=4\n%s",
			serial, parallel)
	}
}

// TestSweepDuplicateLabel: SweepCell.Label is documented "must be unique
// per grid" — labels are the merge key of the CSV and of the worker
// protocol, so RunSweep must refuse a duplicate with a typed error instead
// of silently corrupting output.
func TestSweepDuplicateLabel(t *testing.T) {
	tr, err := traffic.Generate(traffic.Config{Shape: traffic.Bursty, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cells := []SweepCell{
		{Label: "a", Trace: tr, Mode: BCBCC, Class: ModeratelyThreaded, P: DefaultParams()},
		{Label: "b", Trace: tr, Mode: BCBCC, Class: ModeratelyThreaded, P: DefaultParams()},
		{Label: "a", Trace: tr, Mode: BCNoBCC, Class: ModeratelyThreaded, P: DefaultParams()},
	}
	_, err = RunSweep(cells, 1)
	var dup *DuplicateLabelError
	if !errors.As(err, &dup) {
		t.Fatalf("RunSweep on duplicate labels: err = %v, want *DuplicateLabelError", err)
	}
	if dup.Label != "a" || dup.First != 0 || dup.Second != 2 {
		t.Fatalf("DuplicateLabelError = %+v, want {a 0 2}", dup)
	}

	// A nil trace is refused before anything runs, too.
	if _, err := RunSweep([]SweepCell{{Label: "x"}}, 1); err == nil {
		t.Fatal("RunSweep on nil trace: want error")
	}
}

// TestModeClassSlugs: the slug codecs are the wire vocabulary of sweep
// labels and the serve/worker protocol — they must round-trip every mode
// and class, and accept the historical flag aliases.
func TestModeClassSlugs(t *testing.T) {
	for _, m := range []Mode{ATSOnly, FullIOMMU, CAPILike, BCNoBCC, BCBCC} {
		got, err := ParseModeSlug(ModeSlug(m))
		if err != nil || got != m {
			t.Errorf("mode %v: round-trip via %q gave (%v, %v)", m, ModeSlug(m), got, err)
		}
	}
	if m, err := ParseModeSlug("capi"); err != nil || m != CAPILike {
		t.Errorf(`ParseModeSlug("capi") = (%v, %v), want CAPILike`, m, err)
	}
	if _, err := ParseModeSlug("bogus"); err == nil {
		t.Error(`ParseModeSlug("bogus"): want error`)
	}
	for _, c := range []GPUClass{HighlyThreaded, ModeratelyThreaded} {
		got, err := ParseClassSlug(ClassSlug(c))
		if err != nil || got != c {
			t.Errorf("class %v: round-trip via %q gave (%v, %v)", c, ClassSlug(c), got, err)
		}
	}
	if c, err := ParseClassSlug("moderate"); err != nil || c != ModeratelyThreaded {
		t.Errorf(`ParseClassSlug("moderate") = (%v, %v), want ModeratelyThreaded`, c, err)
	}
	if _, err := ParseClassSlug("warp"); err == nil {
		t.Error(`ParseClassSlug("warp"): want error`)
	}
}
