package harness

import (
	"strings"
	"testing"

	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/traffic"
)

// TestSweepDeterminism: a replay sweep grid renders byte-identically
// whatever the host parallelism (jobs) and engine sharding — cells are
// independent deterministic simulations collected in submission order. It
// also pins the adversarial-probe outcomes the grid exists to show: under
// ATS-only every fabricated crossing is granted; under Border Control with
// the BCC every one is denied.
func TestSweepDeterminism(t *testing.T) {
	traces := map[string]*tracerec.Trace{}
	for _, shape := range []string{traffic.Bursty, traffic.Mix} {
		tr, err := traffic.Generate(traffic.Config{Shape: shape, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		traces[shape] = tr
	}
	names := []string{traffic.Bursty, traffic.Mix}
	modes := []Mode{ATSOnly, BCBCC}
	borders := []string{"flat", "range"}
	classes := []GPUClass{ModeratelyThreaded}

	run := func(jobs, shards int) string {
		cells := RecordedCells(traces, names, modes, borders, classes, DefaultParams(), shards)
		rows, err := RunSweep(cells, jobs)
		if err != nil {
			t.Fatalf("jobs=%d shards=%d: %v", jobs, shards, err)
		}
		probed := false
		for _, r := range rows {
			switch {
			case strings.HasPrefix(r.Label, "mix/ats-only/"):
				probed = true
				if r.Granted == 0 || r.Denied != 0 {
					t.Errorf("%s: want all probes granted, got %d granted %d denied",
						r.Label, r.Granted, r.Denied)
				}
			case strings.HasPrefix(r.Label, "mix/bc-bcc/"):
				probed = true
				if r.Denied == 0 || r.Granted != 0 {
					t.Errorf("%s: want all probes denied, got %d granted %d denied",
						r.Label, r.Granted, r.Denied)
				}
			}
		}
		if !probed {
			t.Fatal("grid carried no adversarial cells")
		}
		return RenderSweep(rows) + SweepCSV(rows)
	}

	serial := run(1, 0)
	parallel := run(4, 4)
	if serial != parallel {
		t.Errorf("sweep output depends on jobs/shards:\n--- jobs=1 shards=0\n%s--- jobs=4 shards=4\n%s",
			serial, parallel)
	}
}
