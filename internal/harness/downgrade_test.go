package harness

import (
	"strings"
	"testing"

	"bordercontrol/internal/arch"
)

// TestInjectorRestoreFailureRecorded is the would-fail-before test for the
// downgrade injector's restore path: the restore Protect used to be
// `_, _ =` discarded, so a workload stranded on read-only pages reported
// clean numbers. The injector must record the failure so RunCtx can fail
// the run.
func TestInjectorRestoreFailureRecorded(t *testing.T) {
	sys, err := NewSystem(BCBCC, ModeratelyThreaded, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := sys.OS.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	v, err := proc.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.FaultPage(v.PageOf()); err != nil {
		t.Fatal(err)
	}

	inj := newDowngradeInjector(sys, proc, 1, 0)
	if len(inj.pages) == 0 {
		t.Fatal("injector found no writable pages")
	}

	// Healthy round first: downgrade and restore both land.
	inj.injectOnce(0)
	if inj.count != 1 || inj.restoreErrs != 0 || inj.err != nil {
		t.Fatalf("healthy round: count=%d restoreErrs=%d err=%v, want 1/0/nil",
			inj.count, inj.restoreErrs, inj.err)
	}

	// A dead process makes every Protect fail: the downgrade (correctly not
	// counted) and the restore — which must be recorded, not discarded as
	// before the fix.
	sys.OS.Exit(proc)
	inj.injectOnce(1)
	if inj.count != 1 {
		t.Fatalf("dead-process round still counted a downgrade: count=%d", inj.count)
	}
	if inj.restoreErrs != 1 || inj.err == nil {
		t.Fatalf("restore failure not recorded: restoreErrs=%d err=%v", inj.restoreErrs, inj.err)
	}
	if !strings.Contains(inj.err.Error(), "dead process") {
		t.Fatalf("err = %v, want the hostos dead-process cause", inj.err)
	}

	// A second failure keeps the first error (the reproduction pointer).
	first := inj.err
	inj.injectOnce(2)
	if inj.restoreErrs != 2 || inj.err != first {
		t.Fatalf("first error not sticky: restoreErrs=%d err=%v", inj.restoreErrs, inj.err)
	}
}
