package harness

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"bordercontrol/internal/workload"
)

// smokeSpecs is a small cross-configuration sweep used by the fast
// parallel-equivalence tests: one workload on every mode and class.
func smokeSpecs(t *testing.T) []runSpec {
	t.Helper()
	spec, ok := workload.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder not registered")
	}
	var list []runSpec
	for _, mode := range Modes() {
		for _, class := range []GPUClass{HighlyThreaded, ModeratelyThreaded} {
			list = append(list, runSpec{
				Label: "smoke/" + shortMode(mode) + "/" + classShort(class),
				Mode:  mode, Class: class, Spec: spec,
			})
		}
	}
	return list
}

// TestRunnerMatchesSerial runs the same sweep serially and at Jobs=8 and
// requires identical results slot for slot: concurrent Systems must be
// provably independent. Host self-measurement (wall clock, events/sec) is
// the one legitimately nondeterministic field and is cleared first.
func TestRunnerMatchesSerial(t *testing.T) {
	p := DefaultParams()
	serial, err := runAll(context.Background(), Exec{Jobs: 1}, p, smokeSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runAll(context.Background(), Exec{Jobs: 8}, p, smokeSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		serial[i].Host = HostStats{}
		parallel[i].Host = HostStats{}
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("slot %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
			}
		}
	}
}

// TestFigure4Determinism is the acceptance check for the execution layer:
// the Figure 4 CSV must be byte-identical at -jobs=1, 4 and 8.
func TestFigure4Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	p := DefaultParams()
	var want string
	for _, jobs := range []int{1, 4, 8} {
		res, err := Figure4(context.Background(), Exec{Jobs: jobs}, HighlyThreaded, p)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		csv := res.CSV()
		if jobs == 1 {
			want = csv
			continue
		}
		if csv != want {
			t.Errorf("jobs=%d CSV differs from serial:\nserial:\n%s\njobs=%d:\n%s", jobs, want, jobs, csv)
		}
	}
}

// TestSecurityMatrixParallel checks the probe matrix is identical at any
// parallelism.
func TestSecurityMatrixParallel(t *testing.T) {
	p := DefaultParams()
	serial, err := SecurityMatrix(context.Background(), Exec{Jobs: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SecurityMatrix(context.Background(), Exec{Jobs: 8}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("matrices differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if RenderSecurityMatrix(serial) != RenderSecurityMatrix(parallel) {
		t.Error("rendered matrices differ")
	}
}

// TestRunCtxCancelled checks a cancelled context aborts the simulation
// mid-run with a typed RunError naming the job — on the direct engine and
// on the sharded engine at several worker counts.
func TestRunCtxCancelled(t *testing.T) {
	spec, ok := workload.ByName("bfs")
	if !ok {
		t.Fatal("bfs not registered")
	}
	for _, shards := range []int{0, 1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the engine stops at its first poll
		_, err := RunCtx(ctx, BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{Shards: shards})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("shards=%d: error = %T %v, want *RunError", shards, err, err)
		}
		if re.Workload != "bfs" || re.Mode != BCBCC || re.Class != HighlyThreaded || re.Stage != "interrupted" {
			t.Errorf("shards=%d: RunError fields lost: %+v", shards, re)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("shards=%d: error %v does not unwrap to context.Canceled", shards, err)
		}
	}
}

// TestRunCtxShardsEquivalent checks RunOptions.Shards is pure execution
// machinery: a single-accelerator run on the sharded engine must report
// exactly what the direct engine reports — every simulated time, counter
// and metrics sample — with only the host self-measurement free to move.
func TestRunCtxShardsEquivalent(t *testing.T) {
	spec, ok := workload.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder not registered")
	}
	p := DefaultParams()
	base, err := RunCtx(context.Background(), BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base.Host = HostStats{}
	for _, shards := range []int{1, 4} {
		res, err := RunCtx(context.Background(), BCBCC, ModeratelyThreaded, spec, p, RunOptions{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		res.Host = HostStats{}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d differs from direct engine:\ndirect:  %+v\nsharded: %+v", shards, base, res)
		}
	}
}

// TestExecTimeout checks the per-job timeout fails a sweep's overrunning
// jobs with DeadlineExceeded instead of stalling the sweep.
func TestExecTimeout(t *testing.T) {
	spec, ok := workload.ByName("backprop")
	if !ok {
		t.Fatal("backprop not registered")
	}
	_, err := runAll(context.Background(), Exec{Jobs: 2, Timeout: 5 * time.Millisecond}, DefaultParams(),
		[]runSpec{{Label: "timeout/backprop", Mode: ATSOnly, Class: HighlyThreaded, Spec: spec}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", err)
	}
}
