package harness

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"bordercontrol/internal/workload"
)

// fleetSpec returns a small fleet configuration used across the fleet
// tests: few tenants, churn on, fixed seed.
func fleetSpec(t *testing.T) (FleetParams, workload.Spec) {
	t.Helper()
	spec, ok := workload.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder not registered")
	}
	fp := DefaultFleetParams()
	fp.Tenants = 5
	return fp, spec
}

// TestFleetCompletes checks the basic fleet contract: every tenant
// launches via a host doorbell, runs, raises its completion interrupt, and
// verifies; the border traffic (2 crossings per tenant plus churn
// commands) is accounted.
func TestFleetCompletes(t *testing.T) {
	fp, spec := fleetSpec(t)
	res, err := RunFleet(DefaultParams(), fp, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != fp.Tenants || res.Verified != fp.Tenants {
		t.Errorf("completed %d verified %d, want %d of each", res.Completed, res.Verified, fp.Tenants)
	}
	if min := uint64(2 * fp.Tenants); res.Messages < min {
		t.Errorf("Messages = %d, want >= %d (launch + completion per tenant)", res.Messages, min)
	}
	if res.Downgrades == 0 {
		t.Error("churn enabled but no downgrade landed")
	}
	if res.FirstDone == 0 || res.LastDone < res.FirstDone || res.SimTime < res.LastDone {
		t.Errorf("inconsistent times: first %d last %d sim %d", res.FirstDone, res.LastDone, res.SimTime)
	}
	if res.LastDone == res.FirstDone {
		t.Error("launch spread produced identical completion times for all tenants")
	}
	// The merged snapshot must aggregate tenant counters: fleet gpu.ops
	// equals the sum the scalar field reports.
	found := false
	for _, smp := range res.Stats.Samples {
		if smp.Name == "gpu.ops" {
			found = true
			if smp.Count != res.Ops {
				t.Errorf("merged gpu.ops = %d, want %d", smp.Count, res.Ops)
			}
		}
	}
	if !found {
		t.Error("merged snapshot missing gpu.ops")
	}
}

// TestFleetDeterministicAcrossWorkers is the tentpole acceptance check at
// the harness layer: one fleet, executed serially and on 2, 4 and 8
// worker goroutines, must produce bit-identical results — same simulated
// times, same event counts, same downgrade targeting, same merged stats,
// byte-identical rendered report. Host self-measurement is the one
// legitimately nondeterministic field and is cleared first.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	fp, spec := fleetSpec(t)
	var want FleetResult
	var wantText string
	for _, workers := range []int{1, 2, 4, 8} {
		fp.Workers = workers
		res, err := RunFleet(DefaultParams(), fp, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.Host = HostStats{}
		text := res.Render()
		if workers == 1 {
			want, wantText = res, text
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d result differs from serial:\nserial: %+v\ngot:    %+v", workers, want, res)
		}
		if text != wantText {
			t.Errorf("workers=%d render differs from serial:\n%s\nvs\n%s", workers, wantText, text)
		}
	}
}

// TestFleetSeedMatters checks the seed actually drives the scenario: a
// different seed must move launches, and with them completion times.
func TestFleetSeedMatters(t *testing.T) {
	fp, spec := fleetSpec(t)
	a, err := RunFleet(DefaultParams(), fp, spec)
	if err != nil {
		t.Fatal(err)
	}
	fp.Seed = 99
	b, err := RunFleet(DefaultParams(), fp, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.FirstDone == b.FirstDone && a.LastDone == b.LastDone {
		t.Error("changing the seed changed nothing")
	}
}

// TestFleetCancelled checks cooperative cancellation stops a sharded
// fleet promptly with a typed RunError, at several worker counts — the
// satellite interrupt fix must hold when shards run concurrently.
func TestFleetCancelled(t *testing.T) {
	fp, spec := fleetSpec(t)
	for _, workers := range []int{1, 4} {
		fp.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: every shard stops at its first poll
		_, err := RunFleetCtx(ctx, DefaultParams(), fp, spec)
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("workers=%d: error = %T %v, want *RunError", workers, err, err)
		}
		if re.Stage != "interrupted" {
			t.Errorf("workers=%d: stage = %q, want interrupted", workers, re.Stage)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: error %v does not unwrap to context.Canceled", workers, err)
		}
	}
}

// TestFleetValidate checks parameter rejection.
func TestFleetValidate(t *testing.T) {
	_, spec := fleetSpec(t)
	bad := DefaultFleetParams()
	bad.Tenants = 0
	if _, err := RunFleet(DefaultParams(), bad, spec); err == nil {
		t.Error("Tenants=0 accepted")
	}
	bad = DefaultFleetParams()
	bad.Lookahead = 0
	if _, err := RunFleet(DefaultParams(), bad, spec); err == nil {
		t.Error("Lookahead=0 accepted")
	}
}
