package harness

import (
	"context"
	"testing"

	"bordercontrol/internal/core"
)

// The figure tests regenerate each paper artifact and assert the SHAPE the
// paper reports — the orderings and rough magnitudes EXPERIMENTS.md
// documents — so a regression that silently flattens a result fails CI,
// not just eyeballing.

func TestFigure4Highly(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := Figure4(context.Background(), Exec{}, HighlyThreaded, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	g := res.GeoMean
	// Paper Figure 4a: IOMMU 374% >> CAPI 3.81% > noBCC 2.04% > BCC 0.15%.
	if g[FullIOMMU] < 1.0 {
		t.Errorf("full IOMMU geomean %.1f%%: should be catastrophic (>100%%)", g[FullIOMMU]*100)
	}
	if g[FullIOMMU] < 5*g[CAPILike] {
		t.Errorf("IOMMU (%.1f%%) should dwarf CAPI (%.1f%%)", g[FullIOMMU]*100, g[CAPILike]*100)
	}
	if g[CAPILike] < g[BCNoBCC] {
		t.Errorf("CAPI (%.2f%%) should exceed BC-noBCC (%.2f%%)", g[CAPILike]*100, g[BCNoBCC]*100)
	}
	if g[BCNoBCC] < g[BCBCC] {
		t.Errorf("BC-noBCC (%.2f%%) should exceed BC-BCC (%.2f%%)", g[BCNoBCC]*100, g[BCBCC]*100)
	}
	// The headline: Border Control with a BCC is essentially free.
	if g[BCBCC] > 0.01 {
		t.Errorf("BC-BCC geomean %.2f%%: paper reports 0.15%%", g[BCBCC]*100)
	}
}

func TestFigure4Moderately(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := Figure4(context.Background(), Exec{}, ModeratelyThreaded, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	g := res.GeoMean
	if g[FullIOMMU] < 0.5 {
		t.Errorf("full IOMMU geomean %.1f%%: should be severe", g[FullIOMMU]*100)
	}
	if g[CAPILike] < 0.05 {
		t.Errorf("CAPI moderate geomean %.2f%%: the latency-sensitive GPU should feel CAPI (paper 16.5%%)", g[CAPILike]*100)
	}
	if g[BCBCC] > 0.02 {
		t.Errorf("BC-BCC geomean %.2f%%: paper reports 0.84%%", g[BCBCC]*100)
	}

	// Cross-panel relationship: CAPI hurts the moderately threaded GPU
	// more than the highly threaded one (paper: 16.5%% vs 3.81%%).
	high, err := Figure4(context.Background(), Exec{}, HighlyThreaded, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if g[CAPILike] < high.GeoMean[CAPILike] {
		t.Errorf("CAPI: moderate (%.1f%%) should exceed highly (%.1f%%)",
			g[CAPILike]*100, high.GeoMean[CAPILike]*100)
	}
	if g[FullIOMMU] > high.GeoMean[FullIOMMU] {
		t.Errorf("full IOMMU: highly (%.1f%%) should exceed moderate (%.1f%%)",
			high.GeoMean[FullIOMMU]*100, g[FullIOMMU]*100)
	}
}

func TestFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := Figure5(context.Background(), Exec{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: mean 0.11 with significant variability; bfs the maximum.
	if res.Average < 0.02 || res.Average > 0.5 {
		t.Errorf("average %.3f req/cycle implausible (paper 0.11)", res.Average)
	}
	var min, max float64 = 1e9, 0
	maxName := ""
	for _, r := range res.Rows {
		if r.RequestsPerCycle > max {
			max, maxName = r.RequestsPerCycle, r.Workload
		}
		if r.RequestsPerCycle < min {
			min = r.RequestsPerCycle
		}
	}
	if max/min < 5 {
		t.Errorf("variability %.1fx too flat (paper spans 0.025-0.29)", max/min)
	}
	if maxName != "bfs" {
		t.Errorf("heaviest workload = %s, paper says bfs", maxName)
	}
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := Figure6(context.Background(), Exec{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// At every byte budget, more pages/entry never loses badly; and the
	// paper's headline point: 512 pages/entry is <0.1% well under 1 KB.
	last512 := res.Curves[512][len(res.Curves[512])-1]
	if last512.MissRatio > 0.001 {
		t.Errorf("512 pages/entry at %.0f B: miss %.4f, want <0.1%%", last512.SizeBytes, last512.MissRatio)
	}
	first1 := res.Curves[1][0]
	if first1.MissRatio < 0.3 {
		t.Errorf("1 page/entry tiny BCC should miss heavily, got %.3f", first1.MissRatio)
	}
	// Within each curve, miss ratio is non-increasing with size.
	for ppe, curve := range res.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i].MissRatio > curve[i-1].MissRatio+0.02 {
				t.Errorf("pages/entry=%d: miss ratio rises with size (%.3f -> %.3f)",
					ppe, curve[i-1].MissRatio, curve[i].MissRatio)
			}
		}
	}
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := Figure7(context.Background(), Exec{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	at := func(m Mode, c GPUClass, rate float64) float64 {
		for _, pt := range res.Points {
			if pt.Mode == m && pt.Class == c && pt.DowngradesPerSec == rate {
				return pt.Overhead
			}
		}
		t.Fatalf("missing point %v/%v/%v", m, c, rate)
		return 0
	}
	for _, c := range []GPUClass{HighlyThreaded, ModeratelyThreaded} {
		// Overheads grow with rate, stay small, and BC sits above ATS-only.
		if at(BCBCC, c, 1000) <= at(BCBCC, c, 0) {
			t.Errorf("%v: BC overhead does not grow with downgrade rate", c)
		}
		if at(BCBCC, c, 1000) > 0.02 {
			t.Errorf("%v: BC at 1000/s = %.3f%%, paper stays under ~0.5%%", c, at(BCBCC, c, 1000)*100)
		}
		if at(BCBCC, c, 200) > 0.005 {
			t.Errorf("%v: at context-switch rates overhead should be negligible, got %.3f%%",
				c, at(BCBCC, c, 200)*100)
		}
		bcSlope := at(BCBCC, c, 1000) - at(BCBCC, c, 0)
		atsSlope := at(ATSOnly, c, 1000) - at(ATSOnly, c, 0)
		if bcSlope <= atsSlope {
			t.Errorf("%v: BC per-downgrade cost must exceed the trusted baseline's", c)
		}
	}
}

// TestFigureBorders races the registered border designs on the Figure-4
// sweep. Every design must produce verified-correct results on every
// workload (decision equivalence, DESIGN.md §14), and no design may be
// meaningfully more expensive than the paper's flat table — the checks run
// in parallel with memory access, so walk-cost differences stay hidden.
func TestFigureBorders(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	res, err := FigureBorders(context.Background(), Exec{}, ModeratelyThreaded, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	want := core.Designs()
	if len(res.Designs) != len(want) {
		t.Fatalf("Designs = %v, want %v", res.Designs, want)
	}
	for i := range want {
		if res.Designs[i] != want[i] {
			t.Fatalf("Designs = %v, want %v", res.Designs, want)
		}
	}
	if got := len(res.Rows); got != 7 {
		t.Fatalf("%d workload rows, want 7", got)
	}
	for _, row := range res.Rows {
		for _, d := range res.Designs {
			if row.Cycles[d] == 0 {
				t.Errorf("%s under %q reported zero cycles", row.Workload, d)
			}
		}
	}
	for _, d := range res.Designs {
		g, ok := res.GeoMean[d]
		if !ok {
			t.Errorf("no geomean for design %q", d)
			continue
		}
		if g > 0.02 {
			t.Errorf("design %q geomean overhead %.2f%%: BC-BCC should stay under 2%%", d, g*100)
		}
	}
	if res.CSV() == "" {
		t.Error("empty CSV")
	}
}
