package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"

	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/workload"
)

// TestReplayMatchesLiveGolden is the replay-equivalence guarantee: for
// every workload, recording its reference trace once and replaying it
// through the full border/ATS/cache path produces artifacts byte-identical
// to running the generator live — same simulated runtime, same event
// count, same full stats snapshot — across all four protocol variants
// (BCNoBCC/BCBCC x SelectiveFlush) and all three border designs. This is
// what lets a sweep record once and fan a thousand cells out over one
// decode.
func TestReplayMatchesLiveGolden(t *testing.T) {
	specs := workload.All()
	if testing.Short() {
		specs = specs[:2] // full matrix on the CI path; a taste under -short
	}
	dir := t.TempDir()
	for _, spec := range specs {
		tr, err := tracerec.Record(spec, 1)
		if err != nil {
			t.Fatalf("record %s: %v", spec.Name, err)
		}
		if err := tracerec.WriteFile(tracerec.Resolve(dir, spec.Name), tr); err != nil {
			t.Fatalf("write %s: %v", spec.Name, err)
		}
	}

	for _, spec := range specs {
		for _, mode := range []Mode{BCNoBCC, BCBCC} {
			for _, selective := range []bool{true, false} {
				for _, border := range []string{"flat", "sparta", "range"} {
					name := fmt.Sprintf("%s/%v/sf=%v/%s", spec.Name, mode, selective, border)
					t.Run(name, func(t *testing.T) {
						p := DefaultParams()
						p.SelectiveFlush = selective
						p.Border = border
						live, err := Run(mode, ModeratelyThreaded, spec, p, RunOptions{})
						if err != nil {
							t.Fatalf("live: %v", err)
						}
						rp := p
						rp.Trace = dir
						rep, err := Run(mode, ModeratelyThreaded, spec, rp, RunOptions{})
						if err != nil {
							t.Fatalf("replay: %v", err)
						}
						if live.VerifyErr != nil || rep.VerifyErr != nil {
							t.Fatalf("verify: live=%v replay=%v", live.VerifyErr, rep.VerifyErr)
						}
						if live.Runtime != rep.Runtime {
							t.Errorf("sim_ps: live %d, replay %d", live.Runtime, rep.Runtime)
						}
						if live.Host.Events != rep.Host.Events {
							t.Errorf("events: live %d, replay %d", live.Host.Events, rep.Host.Events)
						}
						if live.Ops != rep.Ops || live.BCChecks != rep.BCChecks ||
							live.BCCMissRatio != rep.BCCMissRatio {
							t.Errorf("counters diverged: live ops=%d checks=%d miss=%g, replay ops=%d checks=%d miss=%g",
								live.Ops, live.BCChecks, live.BCCMissRatio,
								rep.Ops, rep.BCChecks, rep.BCCMissRatio)
						}
						lj, err := json.Marshal(live.Stats)
						if err != nil {
							t.Fatal(err)
						}
						rj, err := json.Marshal(rep.Stats)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(lj, rj) {
							t.Errorf("stats snapshots differ:\n live  %s\n replay %s", lj, rj)
						}
					})
				}
			}
		}
	}
}

// TestReplayDecodeErrorTyped: a corrupt or truncated recording must
// surface from Run as a typed *RunError in the build stage wrapping the
// codec's *FormatError — never a panic, never an untyped string. This is
// the regression test for the replay-layer failure path.
func TestReplayDecodeErrorTyped(t *testing.T) {
	spec, _ := workload.ByName("pathfinder")
	tr, err := tracerec.Record(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := tracerec.Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := map[string][]byte{
		"corrupt": func() []byte {
			b := bytes.Clone(blob)
			b[len(b)/2] ^= 0x20
			return b
		}(),
		"truncated": blob[:len(blob)/3],
	}
	for name, b := range cases {
		path := dir + "/" + name + tracerec.Ext
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.Trace = path
		_, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
		if err == nil {
			t.Fatalf("%s: replay of a damaged trace succeeded", name)
		}
		var re *RunError
		if !errors.As(err, &re) || re.Stage != "build" {
			t.Fatalf("%s: error %v is not a build-stage *RunError", name, err)
		}
		var fe *tracerec.FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %v does not wrap a *tracerec.FormatError", name, err)
		}
	}
}
