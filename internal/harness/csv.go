package harness

import (
	"fmt"
	"strings"
)

// CSV exports for the figure results, for plotting outside the repo. Each
// emits a header row followed by data rows; fields never contain commas.

// CSV renders Figure 4 as workload,mode,baseline_cycles,cycles,overhead.
func (f Figure4Result) CSV() string {
	var b strings.Builder
	b.WriteString("workload,mode,baseline_cycles,cycles,overhead\n")
	for _, row := range f.Rows {
		for _, m := range SafeModes() {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%.6f\n",
				row.Workload, shortMode(m), row.Baseline, row.Cycles[m], row.Overheads[m])
		}
	}
	for _, m := range SafeModes() {
		fmt.Fprintf(&b, "geomean,%s,,,%.6f\n", shortMode(m), f.GeoMean[m])
	}
	return b.String()
}

// CSV renders Figure 5 as workload,checks,cycles,requests_per_cycle.
func (f Figure5Result) CSV() string {
	var b strings.Builder
	b.WriteString("workload,checks,cycles,requests_per_cycle\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.6f\n", row.Workload, row.Checks, row.Cycles, row.RequestsPerCycle)
	}
	fmt.Fprintf(&b, "average,,,%.6f\n", f.Average)
	return b.String()
}

// CSV renders Figure 6 as pages_per_entry,entries,size_bytes,miss_ratio.
func (f Figure6Result) CSV() string {
	var b strings.Builder
	b.WriteString("pages_per_entry,entries,size_bytes,miss_ratio\n")
	for _, ppe := range f.PagesPerEntry {
		for _, pt := range f.Curves[ppe] {
			fmt.Fprintf(&b, "%d,%d,%.1f,%.6f\n", ppe, pt.Entries, pt.SizeBytes, pt.MissRatio)
		}
	}
	return b.String()
}

// CSV renders Figure 7 as mode,class,downgrades_per_sec,overhead.
func (f Figure7Result) CSV() string {
	var b strings.Builder
	b.WriteString("mode,class,downgrades_per_sec,overhead\n")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%s,%s,%.0f,%.6f\n",
			shortMode(pt.Mode), pt.Class, pt.DowngradesPerSec, pt.Overhead)
	}
	return b.String()
}
