package harness

import (
	"context"
	"fmt"
	"strings"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/adversary"
	"bordercontrol/internal/exp"
	"bordercontrol/internal/sim"
)

// AdversaryReport runs seeded sandbox-escape campaigns: every requested
// attack against a freshly assembled Border Control system, one cell per
// (campaign, attack) on the experiment-execution layer, so campaigns run in
// parallel and the report is byte-identical to a serial sweep. Campaign i
// uses seed+i and rotates the protection configuration — the BCC on or off
// (campaign parity) and the selective vs full downgrade flush (every other
// pair) — so a default four-campaign run covers all four protocol variants.
func AdversaryReport(ctx context.Context, ex Exec, p Params, seed int64, campaigns int, attacks []string) (adversary.Report, error) {
	if campaigns <= 0 {
		campaigns = 1
	}
	if len(attacks) == 0 {
		attacks = adversary.AttackNames()
	}
	for _, name := range attacks {
		if _, ok := adversary.Lookup(name); !ok {
			return adversary.Report{}, fmt.Errorf("harness: unknown attack %q (have %s)",
				name, strings.Join(adversary.AttackNames(), ", "))
		}
	}
	type cell struct {
		campaign int
		attack   string
	}
	rep := adversary.Report{Seed: seed, Campaigns: campaigns}
	var cells []cell
	for i := 0; i < campaigns; i++ {
		mode, selective := campaignConfig(i, p)
		label := mode.String() + ", full flush"
		if selective {
			label = mode.String() + ", selective flush"
		}
		rep.Configs = append(rep.Configs, label)
		for _, a := range attacks {
			cells = append(cells, cell{campaign: i, attack: a})
		}
	}
	results, err := exp.Map(ctx, ex.runner(), cells,
		func(_ int, c cell) string { return fmt.Sprintf("adversary/c%d/%s", c.campaign, c.attack) },
		func(_ context.Context, c cell) (adversary.AttackResult, error) {
			env, selective, err := newAdversaryEnv(c.campaign, p, ex.Shards)
			if err != nil {
				return adversary.AttackResult{}, fmt.Errorf("harness: adversary/c%d/%s: %w", c.campaign, c.attack, err)
			}
			adversary.Attach(env, selective)
			return adversary.Run(env, c.attack, seed+int64(c.campaign))
		})
	if err != nil {
		return rep, err
	}
	rep.Results = results
	return rep, nil
}

// campaignConfig maps a campaign index to its protection-protocol variant.
func campaignConfig(i int, p Params) (Mode, bool) {
	mode := BCBCC
	if i%2 == 1 {
		mode = BCNoBCC
	}
	selective := p.SelectiveFlush
	if i%4 >= 2 {
		selective = !selective
	}
	return mode, selective
}

// newAdversaryEnv assembles a fresh guarded system for campaign i and
// exposes it as an adversary environment. shards > 0 assembles the system
// on a shard of the sharded engine (see RunOptions.Shards): the attack
// drives the same engine either way, so reports are byte-identical.
func newAdversaryEnv(i int, p Params, shards int) (*adversary.Env, bool, error) {
	mode, selective := campaignConfig(i, p)
	p.SelectiveFlush = selective
	eng := &sim.Engine{}
	if shards > 0 {
		se := sim.NewShardedEngine(1, sim.Microsecond)
		se.Workers = shards
		eng = se.Shard(0)
	}
	sys, err := NewSystemWithEngine(eng, mode, HighlyThreaded, p)
	if err != nil {
		return nil, false, err
	}
	hier, ok := sys.Hier.(*accel.Sandboxed)
	if !ok {
		return nil, false, fmt.Errorf("adversary campaigns need a sandboxed hierarchy, got %T", sys.Hier)
	}
	return &adversary.Env{
		Eng:   sys.Eng,
		OS:    sys.OS,
		ATS:   sys.ATS,
		BC:    sys.BC,
		Hier:  hier,
		Port:  sys.Port,
		Dir:   sys.Dir,
		DRAM:  sys.DRAM,
		Clock: sys.GPUClock,
		Name:  sys.Name,
	}, selective, nil
}
