package harness

import (
	"fmt"
	"testing"

	"bordercontrol/internal/workload"
)

// BenchmarkShardedEngine measures fleet execution over a tenant-count x
// worker-count grid. Simulated outcomes are identical across the worker
// dimension — only wall-clock moves — so the grid reads as a scaling
// curve: on a multi-core host, events/sec should grow with workers until
// the core count or the lookahead window's parallelism runs out. On a
// single-CPU CI host the numbers are informational.
func BenchmarkShardedEngine(b *testing.B) {
	spec, ok := workload.ByName("pathfinder")
	if !ok {
		b.Fatal("pathfinder not registered")
	}
	for _, tenants := range []int{4, 16} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("tenants=%d/workers=%d", tenants, workers), func(b *testing.B) {
				fp := DefaultFleetParams()
				fp.Tenants = tenants
				fp.Workers = workers
				for i := 0; i < b.N; i++ {
					res, err := RunFleet(DefaultParams(), fp, spec)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(res.Events), "events/run")
						b.ReportMetric(res.Host.EventsPerSec, "events/sec")
					}
				}
			})
		}
	}
}
