package harness

import (
	"testing"

	"bordercontrol/internal/workload"
)

// TestSmokeAllModes runs one small workload end to end under every safety
// configuration and checks functional correctness of the results.
func TestSmokeAllModes(t *testing.T) {
	spec, ok := workload.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder not registered")
	}
	p := DefaultParams()
	for _, mode := range Modes() {
		for _, class := range []GPUClass{HighlyThreaded, ModeratelyThreaded} {
			res, err := Run(mode, class, spec, p, RunOptions{})
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, class, err)
			}
			if res.VerifyErr != nil {
				t.Errorf("%v/%v: wrong results: %v", mode, class, res.VerifyErr)
			}
			if res.Cycles == 0 {
				t.Errorf("%v/%v: zero cycles", mode, class)
			}
			t.Logf("%-22v %-20v cycles=%-10d ops=%-8d dram=%.2f bcChecks=%d bccMiss=%.4f",
				mode, class, res.Cycles, res.Ops, res.DRAMUtilization, res.BCChecks, res.BCCMissRatio)
		}
	}
}
