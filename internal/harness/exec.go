package harness

import (
	"context"
	"time"

	"bordercontrol/internal/exp"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
	"bordercontrol/internal/workload"
)

// Exec configures how a sweep's independent simulations execute. The zero
// Exec runs on all cores with no per-job timeout and no progress output —
// safe defaults for library callers, because ordered result collection
// makes parallel artifacts byte-identical to serial ones.
type Exec struct {
	// Jobs bounds concurrent simulations: 0 = GOMAXPROCS, 1 = serial.
	Jobs int
	// Timeout, when positive, bounds each simulation; an overrunning job
	// fails with context.DeadlineExceeded instead of stalling the sweep.
	Timeout time.Duration
	// Progress, when non-nil, receives each finished job in completion
	// order (calls are serialized).
	Progress func(exp.Result)
	// Trace, when non-nil, collects a per-job timeline for every
	// simulation of the sweep into one merged Chrome trace (one Perfetto
	// process per job, labelled by the job name). Tracing is pure
	// observation: rendered artifacts are byte-identical with it on.
	Trace *trace.Multi
	// Shards, when positive, executes every simulation of the sweep on
	// the sharded engine with that many workers (see RunOptions.Shards).
	// Artifacts are byte-identical at any setting.
	Shards int
}

func (e Exec) runner() *exp.Runner {
	return &exp.Runner{Workers: e.Jobs, Timeout: e.Timeout, OnDone: e.Progress}
}

// runSpec names one simulation of a sweep: the experiment-space coordinate
// plus a label for progress reporting.
type runSpec struct {
	Label string
	Mode  Mode
	Class GPUClass
	Spec  workload.Spec
	Opts  RunOptions
	// P, when non-nil, overrides the sweep-wide Params for this run only
	// (FigureBorders varies Params.Border across the jobs of one sweep).
	P *Params
}

// runAll executes the specs — each on a fresh System — through the
// experiment runner and returns their results in submission order, so
// callers can assemble artifacts exactly as a serial loop would have. The
// first error in submission order (the one a serial sweep would have
// stopped at) fails the whole sweep.
func runAll(ctx context.Context, ex Exec, p Params, specs []runSpec) ([]RunResult, error) {
	return exp.Map(ctx, ex.runner(), specs,
		func(_ int, s runSpec) string { return s.Label },
		func(ctx context.Context, s runSpec) (RunResult, error) {
			opts := s.Opts
			if ex.Trace != nil {
				opts.Tracer = ex.Trace.New(s.Label)
			}
			if opts.Shards == 0 {
				opts.Shards = ex.Shards
			}
			pp := p
			if s.P != nil {
				pp = *s.P
			}
			return RunCtx(ctx, s.Mode, s.Class, s.Spec, pp, opts)
		})
}

// sweepStats aggregates the per-run snapshots of a sweep (see stats.Merge:
// counters sum, ratio gauges average).
func sweepStats(runs []RunResult) stats.Snapshot {
	snaps := make([]stats.Snapshot, 0, len(runs))
	for _, r := range runs {
		snaps = append(snaps, r.Stats)
	}
	return stats.Merge(snaps...)
}

// classShort is a compact GPU-class label for job names.
func classShort(c GPUClass) string {
	if c == ModeratelyThreaded {
		return "mod"
	}
	return "high"
}
