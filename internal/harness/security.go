package harness

import (
	"context"
	"fmt"
	"strings"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/exp"
)

// Attack names one threat-model probe from paper §2.1.
type Attack string

// The probes of the security matrix.
const (
	// AttackWildRead: a trojan reads a victim process's physical page it
	// was never granted (confidentiality of host memory).
	AttackWildRead Attack = "wild-read"
	// AttackWildWrite: a trojan overwrites a victim's physical page
	// (integrity of host memory).
	AttackWildWrite Attack = "wild-write"
	// AttackStaleTLB: a buggy accelerator ignores a TLB shootdown and
	// writes through the stale translation after revocation.
	AttackStaleTLB Attack = "stale-tlb-write"
	// AttackLateWriteback: an accelerator ignores the downgrade flush and
	// tries to write its stale dirty block back later.
	AttackLateWriteback Attack = "late-writeback"
	// AttackSecureRead: a trojan reads OS/secure-world memory. This is the
	// one probe TrustZone's coarse partitioning does stop (its Table 1
	// "protection for OS" checkmark).
	AttackSecureRead Attack = "secure-os-read"
)

// Attacks lists the probes in report order.
func Attacks() []Attack {
	return []Attack{AttackWildRead, AttackWildWrite, AttackStaleTLB, AttackLateWriteback, AttackSecureRead}
}

// SecurityResult is the outcome of one (configuration, attack) probe.
type SecurityResult struct {
	// Config labels the guarded configuration: a Mode's short name, or
	// "TrustZone" for the §2.3 comparison point.
	Config  string
	Attack  Attack
	Blocked bool
	// Detail explains what happened.
	Detail string
}

// SecurityMatrix probes every applicable configuration with every attack.
// The full-IOMMU and CAPI-like paths keep no accelerator-side physical
// state, so the wild-physical-address probes target the sandboxed
// configurations (and the unsafe baseline, where they succeed — that is
// the paper's threat). It runs on the experiment-execution layer: every
// (configuration, attack) probe builds its own System, so all probes run
// in parallel and land in report order.
func SecurityMatrix(ctx context.Context, ex Exec, p Params) ([]SecurityResult, error) {
	type cell struct {
		cfg string
		atk Attack
	}
	var cells []cell
	for _, cfg := range SecurityConfigs() {
		for _, atk := range Attacks() {
			cells = append(cells, cell{cfg: cfg, atk: atk})
		}
	}
	return exp.Map(ctx, ex.runner(), cells,
		func(_ int, c cell) string { return "security/" + c.cfg + "/" + string(c.atk) },
		func(_ context.Context, c cell) (SecurityResult, error) {
			res, err := probe(c.cfg, c.atk, p)
			if err != nil {
				return res, fmt.Errorf("harness: %s/%s: %w", c.cfg, c.atk, err)
			}
			return res, nil
		})
}

// SecurityConfigs lists the probed configurations: the unsafe baseline,
// an ARM TrustZone-style world partition on the same unsafe hardware
// (paper §2.3), and both Border Control configurations.
func SecurityConfigs() []string {
	return []string{shortMode(ATSOnly), "TrustZone", shortMode(BCNoBCC), shortMode(BCBCC)}
}

// probe runs one attack against one configuration.
func probe(cfg string, atk Attack, p Params) (SecurityResult, error) {
	res := SecurityResult{Config: cfg, Attack: atk}
	mode := BCBCC
	switch cfg {
	case shortMode(ATSOnly), "TrustZone":
		mode = ATSOnly
	case shortMode(BCNoBCC):
		mode = BCNoBCC
	}
	sys, err := NewSystem(mode, HighlyThreaded, p)
	if err != nil {
		return res, err
	}
	sys.OS.KeepProcessOnViolation = true

	// A secure-world region standing in for OS/firmware assets, placed at
	// the top of physical memory where no process frame will land.
	secureLen := uint64(16 * arch.PageSize)
	secureBase := arch.Phys(sys.OS.Store().Size() - secureLen)
	if cfg == "TrustZone" {
		tz := core.NewTrustZone(sys.GPUClock.Cycles(4))
		tz.Secure(secureBase, secureLen)
		sys.Port.SetChecker(tz)
	}

	victim, err := sys.OS.NewProcess("victim")
	if err != nil {
		return res, err
	}
	secretVA, err := victim.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		return res, err
	}
	secret := []byte("secret key material")
	if err := victim.Write(secretVA, secret); err != nil {
		return res, err
	}
	secretPPN, _ := victim.PPNOf(secretVA.PageOf())

	user, err := sys.OS.NewProcess("accel-user")
	if err != nil {
		return res, err
	}
	sys.ATS.Activate(sys.Name, user.ASID())
	if sys.BC != nil {
		if err := sys.BC.ProcessStart(user.ASID()); err != nil {
			return res, err
		}
	}

	switch atk {
	case AttackSecureRead:
		trojan := accel.NewTrojan(sys.Port)
		// The secure region was reserved before any process allocation;
		// plant a marker there directly (the OS/firmware owns it).
		sys.OS.Store().Write(secureBase, []byte("tz-secret"))
		data, ok := trojan.TryRead(sys.Eng.Now(), secureBase)
		if ok && string(data[:9]) == "tz-secret" {
			res.Blocked = false
			res.Detail = "secure-world memory read"
		} else {
			res.Blocked = true
			res.Detail = "secure-world read refused"
		}

	case AttackWildRead:
		trojan := accel.NewTrojan(sys.Port)
		data, ok := trojan.TryRead(sys.Eng.Now(), secretPPN.Base())
		if ok && string(data[:len(secret)]) == string(secret) {
			res.Blocked = false
			res.Detail = "trojan read the victim's secret"
		} else {
			res.Blocked = true
			res.Detail = "read blocked at the border"
		}

	case AttackWildWrite:
		trojan := accel.NewTrojan(sys.Port)
		var evil [arch.BlockSize]byte
		copy(evil[:], "pwned")
		trojan.TryWrite(sys.Eng.Now(), secretPPN.Base(), evil)
		var after [5]byte
		if err := victim.Read(secretVA, after[:]); err != nil {
			return res, err
		}
		if string(after[:]) == "pwned" {
			res.Blocked = false
			res.Detail = "victim memory overwritten"
		} else {
			res.Blocked = true
			res.Detail = "write blocked; victim memory intact"
		}

	case AttackStaleTLB:
		// The user's own page is granted, then revoked; a buggy
		// accelerator keeps using the stale translation.
		buf, err := user.Mmap(arch.PageSize, arch.PermRW)
		if err != nil {
			return res, err
		}
		if _, err := sys.ATS.Translate(sys.Name, user.ASID(), buf, arch.Write, 0); err != nil {
			return res, err
		}
		ppn, _ := user.PPNOf(buf.PageOf())
		if _, err := sys.OS.Protect(user, buf, arch.PageSize, arch.PermNone); err != nil {
			return res, err
		}
		// The stale write arrives at the border as a raw physical request.
		var evil [arch.BlockSize]byte
		_, ok := sys.Port.WriteBlock(sys.Eng.Now(), user.ASID(), ppn.Base(), &evil)
		res.Blocked = !ok
		if ok {
			res.Detail = "stale-translation write reached memory"
		} else {
			res.Detail = "stale-translation write blocked after revocation"
		}

	case AttackLateWriteback:
		buf, err := user.Mmap(arch.PageSize, arch.PermRW)
		if err != nil {
			return res, err
		}
		if err := user.Write(buf, []byte("original")); err != nil {
			return res, err
		}
		if _, err := sys.ATS.Translate(sys.Name, user.ASID(), buf, arch.Write, 0); err != nil {
			return res, err
		}
		ppn, _ := user.PPNOf(buf.PageOf())
		// The accelerator "holds a dirty block", ignores the downgrade
		// flush, and writes back afterwards.
		if _, err := sys.OS.Protect(user, buf, arch.PageSize, arch.PermRead); err != nil {
			return res, err
		}
		var stale [arch.BlockSize]byte
		copy(stale[:], "tampered")
		_, ok := sys.Port.WriteBlock(sys.Eng.Now(), user.ASID(), ppn.Base(), &stale)
		var after [8]byte
		if err := user.Read(buf, after[:]); err != nil {
			return res, err
		}
		if ok && string(after[:]) == "tampered" {
			res.Blocked = false
			res.Detail = "late writeback landed after downgrade"
		} else {
			res.Blocked = true
			res.Detail = "late writeback blocked; memory unchanged"
		}

	default:
		return res, fmt.Errorf("harness: unknown attack %q", atk)
	}
	return res, nil
}

// RenderSecurityMatrix prints the matrix as a table: one row per attack,
// one column per configuration, BLOCKED/VULNERABLE in each cell.
func RenderSecurityMatrix(results []SecurityResult) string {
	var b strings.Builder
	b.WriteString("Security matrix: threat-model probes (paper §2.1) per configuration\n")
	fmt.Fprintf(&b, "%-18s", "attack")
	for _, c := range SecurityConfigs() {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteString("\n")
	for _, atk := range Attacks() {
		fmt.Fprintf(&b, "%-18s", atk)
		for _, c := range SecurityConfigs() {
			cell := "?"
			for _, r := range results {
				if r.Config == c && r.Attack == atk {
					if r.Blocked {
						cell = "BLOCKED"
					} else {
						cell = "VULNERABLE"
					}
				}
			}
			fmt.Fprintf(&b, " %14s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
