package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bordercontrol/internal/prof"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
	"bordercontrol/internal/workload"
)

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	return spec
}

// TestSnapshotDeterministic runs the same simulation twice and requires
// byte-identical stats JSON: the metrics layer must observe only simulated
// state, never host state.
func TestSnapshotDeterministic(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	p := DefaultParams()
	var blobs [][]byte
	for i := 0; i < 2; i++ {
		res, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res.Stats)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("stats JSON differs between identical runs:\n%s\n%s", blobs[0], blobs[1])
	}
}

// TestSnapshotCoverage checks the snapshot spans every subsystem the issue
// names: BCC, TLBs, caches, DRAM and the engine, under dotted paths.
func TestSnapshotCoverage(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	res, err := Run(BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Stats
	for _, name := range []string{
		"engine.events",
		"dram.accesses",
		"dram.row_hit_ratio",
		"iommu.translations",
		"iommu.l2tlb.hits",
		"border.checks",
		"border.bcc.hits",
		"border.bcc.miss_ratio",
		"gpu.ops",
		"gpu.l1.miss_ratio",
		"gpu.l1tlb.hits",
		"gpu.l2.hits",
		"gpu.port.reads",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("snapshot is missing %q", name)
		}
	}
	// Cross-check against the scalar result fields the tables render.
	if got := snap.Counter("border.checks"); got != res.BCChecks {
		t.Errorf("border.checks = %d, result field says %d", got, res.BCChecks)
	}
	if got := snap.Counter("gpu.ops"); got != res.Ops {
		t.Errorf("gpu.ops = %d, result field says %d", got, res.Ops)
	}
	if got := snap.Gauge("border.bcc.miss_ratio"); got != res.BCCMissRatio {
		t.Errorf("border.bcc.miss_ratio = %v, result field says %v", got, res.BCCMissRatio)
	}
}

// TestTracerIsPureObservation runs with and without a tracer attached and
// requires identical simulation results — tracing must never perturb
// timing — while the trace itself must be valid Chrome trace JSON with
// events from the engine, GPU and border categories.
func TestTracerIsPureObservation(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	p := DefaultParams()
	plain, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	traced, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	plain.Host, traced.Host = HostStats{}, HostStats{}
	pj, _ := json.Marshal(plain)
	tj, _ := json.Marshal(traced)
	if !bytes.Equal(pj, tj) {
		t.Errorf("tracer changed the simulation:\nplain:  %s\ntraced: %s", pj, tj)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if i := indexByte(ev.Cat, '.'); i >= 0 {
			cats[ev.Cat[:i]] = true
		} else if ev.Cat != "" {
			cats[ev.Cat] = true
		}
	}
	for _, want := range []string{"engine", "gpu", "border"} {
		if !cats[want] {
			t.Errorf("trace has no %q events (have %v)", want, cats)
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestLatencyHistogramsDistinguishClasses shrinks the BCC so checks split
// between BCC hits and Protection Table walks, then requires the per-class
// histograms to partition the border.checks counter exactly.
func TestLatencyHistogramsDistinguishClasses(t *testing.T) {
	spec := mustSpec(t, "bfs")
	p := DefaultParams()
	p.BCC.Entries = 16
	p.BCC.PagesPerEntry = 1 // page-granular entries: capacity-bound, so misses happen
	res, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hit := res.Stats.Hist("border.latency_ps.bcc_hit")
	walk := res.Stats.Hist("border.latency_ps.pt_walk")
	denied := res.Stats.Hist("border.latency_ps.denied")
	if hit.Count == 0 {
		t.Error("no BCC-hit latency samples")
	}
	if walk.Count == 0 {
		t.Error("no PT-walk latency samples despite a thrashing BCC")
	}
	if denied.Count != 0 {
		t.Errorf("%d denied crossings in a legitimate run", denied.Count)
	}
	if total := hit.Count + walk.Count + denied.Count; total != res.BCChecks {
		t.Errorf("latency classes sum to %d, border made %d checks", total, res.BCChecks)
	}
	// A walk includes the table access, so its latency distribution must sit
	// strictly above the pure BCC-hit path.
	if walk.Min <= hit.Min {
		t.Errorf("walk min %d not above hit min %d", walk.Min, hit.Min)
	}
	if qd := res.Stats.Hist("engine.queue_depth"); qd.Count == 0 {
		t.Error("no engine queue-depth samples")
	}
	if tr := res.Stats.Hist("iommu.translate_latency_ps"); tr.Count != res.Translations {
		t.Errorf("translate latency samples %d, translations %d", tr.Count, res.Translations)
	}
}

// TestStatsJSONHistogramSchema validates a real run's -stats-json document
// against the histogram schema checker.
func TestStatsJSONHistogramSchema(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	res, err := Run(BCBCC, ModeratelyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	hists, err := stats.ValidateSnapshotJSON(blob)
	if err != nil {
		t.Fatalf("run stats fail the schema check: %v", err)
	}
	if hists == 0 {
		t.Error("run stats contain no histograms")
	}
}

// TestSnapshotMergeHistogramsOrderIndependent merges two different runs'
// snapshots in both orders — the exp layer's aggregation must not depend on
// job completion order.
func TestSnapshotMergeHistogramsOrderIndependent(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	a, err := Run(BCBCC, ModeratelyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(BCNoBCC, ModeratelyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := json.Marshal(stats.Merge(a.Stats, b.Stats))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := json.Marshal(stats.Merge(b.Stats, a.Stats))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, ba) {
		t.Errorf("snapshot merge is order-dependent:\n%s\n%s", ab, ba)
	}
}

// TestProfilerIsPureObservation runs with and without a profiler and
// requires identical simulation results; two profiled runs must produce
// byte-identical folded stacks.
func TestProfilerIsPureObservation(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	p := DefaultParams()
	plain, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr1 := prof.New()
	profiled, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{Profiler: pr1})
	if err != nil {
		t.Fatal(err)
	}
	plain.Host, profiled.Host = HostStats{}, HostStats{}
	pj, _ := json.Marshal(plain)
	fj, _ := json.Marshal(profiled)
	if !bytes.Equal(pj, fj) {
		t.Errorf("profiler changed the simulation:\nplain:    %s\nprofiled: %s", pj, fj)
	}
	if pr1.Total() == 0 {
		t.Fatal("profiler attributed nothing")
	}

	pr2 := prof.New()
	if _, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{Profiler: pr2}); err != nil {
		t.Fatal(err)
	}
	if pr1.Folded() != pr2.Folded() {
		t.Errorf("folded stacks differ between identical runs:\n%s\n%s", pr1.Folded(), pr2.Folded())
	}
}

// TestProfileByteIdenticalAcrossJobs runs the profiling matrix serially and
// in parallel; the merged folded output must be byte-identical.
func TestProfileByteIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 4-cell profile matrix twice")
	}
	p := DefaultParams()
	serial, err := Profile(context.Background(), Exec{Jobs: 1}, p, "pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Profile(context.Background(), Exec{Jobs: 4}, p, "pathfinder")
	if err != nil {
		t.Fatal(err)
	}
	if serial.Folded() != par.Folded() {
		t.Error("profile differs between -jobs 1 and -jobs 4")
	}
}

// TestSweepTraceMerges checks Exec.Trace collects one Perfetto process per
// job of a sweep.
func TestSweepTraceMerges(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	multi := trace.NewMulti("engine,border")
	specs := []runSpec{
		{Label: "trace/a", Mode: BCBCC, Class: ModeratelyThreaded, Spec: spec},
		{Label: "trace/b", Mode: BCNoBCC, Class: ModeratelyThreaded, Spec: spec},
	}
	if _, err := runAll(context.Background(), Exec{Jobs: 2, Trace: multi}, DefaultParams(), specs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := multi.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Pid  int    `json:"pid"`
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			labels[ev.Args.Name] = true
		}
	}
	if !labels["trace/a"] || !labels["trace/b"] {
		t.Errorf("merged trace missing per-job processes, have %v", labels)
	}
}
