package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bordercontrol/internal/trace"
	"bordercontrol/internal/workload"
)

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	return spec
}

// TestSnapshotDeterministic runs the same simulation twice and requires
// byte-identical stats JSON: the metrics layer must observe only simulated
// state, never host state.
func TestSnapshotDeterministic(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	p := DefaultParams()
	var blobs [][]byte
	for i := 0; i < 2; i++ {
		res, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res.Stats)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Errorf("stats JSON differs between identical runs:\n%s\n%s", blobs[0], blobs[1])
	}
}

// TestSnapshotCoverage checks the snapshot spans every subsystem the issue
// names: BCC, TLBs, caches, DRAM and the engine, under dotted paths.
func TestSnapshotCoverage(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	res, err := Run(BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Stats
	for _, name := range []string{
		"engine.events",
		"dram.accesses",
		"dram.row_hit_ratio",
		"iommu.translations",
		"iommu.l2tlb.hits",
		"border.checks",
		"border.bcc.hits",
		"border.bcc.miss_ratio",
		"gpu.ops",
		"gpu.l1.miss_ratio",
		"gpu.l1tlb.hits",
		"gpu.l2.hits",
		"gpu.port.reads",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("snapshot is missing %q", name)
		}
	}
	// Cross-check against the scalar result fields the tables render.
	if got := snap.Counter("border.checks"); got != res.BCChecks {
		t.Errorf("border.checks = %d, result field says %d", got, res.BCChecks)
	}
	if got := snap.Counter("gpu.ops"); got != res.Ops {
		t.Errorf("gpu.ops = %d, result field says %d", got, res.Ops)
	}
	if got := snap.Gauge("border.bcc.miss_ratio"); got != res.BCCMissRatio {
		t.Errorf("border.bcc.miss_ratio = %v, result field says %v", got, res.BCCMissRatio)
	}
}

// TestTracerIsPureObservation runs with and without a tracer attached and
// requires identical simulation results — tracing must never perturb
// timing — while the trace itself must be valid Chrome trace JSON with
// events from the engine, GPU and border categories.
func TestTracerIsPureObservation(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	p := DefaultParams()
	plain, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	traced, err := Run(BCBCC, ModeratelyThreaded, spec, p, RunOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	plain.Host, traced.Host = HostStats{}, HostStats{}
	pj, _ := json.Marshal(plain)
	tj, _ := json.Marshal(traced)
	if !bytes.Equal(pj, tj) {
		t.Errorf("tracer changed the simulation:\nplain:  %s\ntraced: %s", pj, tj)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if i := indexByte(ev.Cat, '.'); i >= 0 {
			cats[ev.Cat[:i]] = true
		} else if ev.Cat != "" {
			cats[ev.Cat] = true
		}
	}
	for _, want := range []string{"engine", "gpu", "border"} {
		if !cats[want] {
			t.Errorf("trace has no %q events (have %v)", want, cats)
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestSweepTraceMerges checks Exec.Trace collects one Perfetto process per
// job of a sweep.
func TestSweepTraceMerges(t *testing.T) {
	spec := mustSpec(t, "pathfinder")
	multi := trace.NewMulti("engine,border")
	specs := []runSpec{
		{Label: "trace/a", Mode: BCBCC, Class: ModeratelyThreaded, Spec: spec},
		{Label: "trace/b", Mode: BCNoBCC, Class: ModeratelyThreaded, Spec: spec},
	}
	if _, err := runAll(context.Background(), Exec{Jobs: 2, Trace: multi}, DefaultParams(), specs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := multi.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Pid  int    `json:"pid"`
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			labels[ev.Args.Name] = true
		}
	}
	if !labels["trace/a"] || !labels["trace/b"] {
		t.Errorf("merged trace missing per-job processes, have %v", labels)
	}
}
