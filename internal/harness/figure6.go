package harness

import (
	"context"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/exp"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/workload"
)

// bcTrace is the captured Border Control event stream of one workload.
type bcTrace struct {
	name   string
	events []core.TraceEvent
	maxPPN arch.PPN
	// stats is the capture run's metrics snapshot; the functional replays
	// have no timing, so the capture runs carry Figure 6's observability.
	stats stats.Snapshot
}

// captureBCTraces runs every workload once under BC-BCC on the highly
// threaded GPU, recording the check/insert event stream at the border.
// Each capture owns a fresh System and its own trace buffer, so the
// workloads record in parallel on the experiment runner.
func captureBCTraces(ctx context.Context, ex Exec, p Params) ([]bcTrace, error) {
	return exp.Map(ctx, ex.runner(), workload.All(),
		func(_ int, spec workload.Spec) string { return "fig6/capture/" + spec.Name },
		func(ctx context.Context, spec workload.Spec) (bcTrace, error) {
			return captureBCTrace(ctx, spec, p)
		})
}

// captureBCTrace records one workload's border event stream.
func captureBCTrace(ctx context.Context, spec workload.Spec, p Params) (bcTrace, error) {
	tr := bcTrace{name: spec.Name}
	sys, err := NewSystem(BCBCC, HighlyThreaded, p)
	if err != nil {
		return tr, err
	}
	proc, err := sys.OS.NewProcess(spec.Name)
	if err != nil {
		return tr, err
	}
	prog, err := spec.Build(proc, p.Scale)
	if err != nil {
		return tr, err
	}
	sys.ATS.Activate(sys.Name, proc.ASID())
	if err := sys.BC.ProcessStart(proc.ASID()); err != nil {
		return tr, err
	}
	sys.BC.SetTraceSink(func(ev core.TraceEvent) {
		tr.events = append(tr.events, ev)
		if ev.PPN > tr.maxPPN {
			tr.maxPPN = ev.PPN
		}
	})
	if err := sys.GPU.Launch(prog, proc.ASID()); err != nil {
		return tr, err
	}
	if done := ctx.Done(); done != nil {
		sys.Eng.Interrupt = func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}
	sys.Eng.Run()
	if err := ctx.Err(); err != nil {
		return tr, &RunError{Workload: spec.Name, Mode: BCBCC, Class: HighlyThreaded, Stage: "interrupted", Err: err}
	}
	if gerr := sys.GPU.Err(); gerr != nil {
		return tr, fmt.Errorf("harness: trace capture %s: %w", spec.Name, gerr)
	}
	tr.stats = sys.Metrics.Snapshot()
	return tr, nil
}

// bccGeometry builds the swept BCC configuration.
func bccGeometry(entries, pagesPerEntry int) core.BCCConfig {
	return core.BCCConfig{Entries: entries, PagesPerEntry: pagesPerEntry, TagBits: 36}
}

// replayBCCTrace replays a captured event stream through a standalone BCC
// of the given geometry and returns the check miss ratio.
func replayBCCTrace(tr bcTrace, cfg core.BCCConfig, p Params) float64 {
	physPages := uint64(tr.maxPPN) + 1
	tableBytes := core.TableBytes(physPages)
	storeBytes := arch.AlignUp(tableBytes, arch.PageSize) + arch.PageSize
	store, err := memory.NewStore(storeBytes)
	if err != nil {
		panic(err)
	}
	table, err := core.NewProtectionTable(store, 0, physPages)
	if err != nil {
		panic(err)
	}
	bcc, err := core.NewBCC(cfg)
	if err != nil {
		panic(err)
	}
	for _, ev := range tr.events {
		if ev.Insert {
			table.Merge(ev.PPN, ev.Perm)
			bcc.Update(ev.PPN, ev.Perm, table)
			continue
		}
		if _, hit := bcc.Probe(ev.PPN); !hit {
			bcc.Fill(ev.PPN, table)
		}
	}
	return bcc.CheckHitMiss.MissRatio()
}
