package harness

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/workload"
)

// bcTrace is the captured Border Control event stream of one workload.
type bcTrace struct {
	name   string
	events []core.TraceEvent
	maxPPN arch.PPN
}

// captureBCTraces runs every workload once under BC-BCC on the highly
// threaded GPU, recording the check/insert event stream at the border.
func captureBCTraces(p Params) ([]bcTrace, error) {
	var out []bcTrace
	for _, spec := range workload.All() {
		sys, err := NewSystem(BCBCC, HighlyThreaded, p)
		if err != nil {
			return nil, err
		}
		tr := bcTrace{name: spec.Name}
		proc, err := sys.OS.NewProcess(spec.Name)
		if err != nil {
			return nil, err
		}
		prog, err := spec.Build(proc, p.Scale)
		if err != nil {
			return nil, err
		}
		sys.ATS.Activate(sys.Name, proc.ASID())
		if err := sys.BC.ProcessStart(proc.ASID()); err != nil {
			return nil, err
		}
		sys.BC.TraceSink = func(ev core.TraceEvent) {
			tr.events = append(tr.events, ev)
			if ev.PPN > tr.maxPPN {
				tr.maxPPN = ev.PPN
			}
		}
		if err := sys.GPU.Launch(prog, proc.ASID()); err != nil {
			return nil, err
		}
		sys.Eng.Run()
		if gerr := sys.GPU.Err(); gerr != nil {
			return nil, fmt.Errorf("harness: trace capture %s: %w", spec.Name, gerr)
		}
		out = append(out, tr)
	}
	return out, nil
}

// bccGeometry builds the swept BCC configuration.
func bccGeometry(entries, pagesPerEntry int) core.BCCConfig {
	return core.BCCConfig{Entries: entries, PagesPerEntry: pagesPerEntry, TagBits: 36}
}

// replayBCCTrace replays a captured event stream through a standalone BCC
// of the given geometry and returns the check miss ratio.
func replayBCCTrace(tr bcTrace, cfg core.BCCConfig, p Params) float64 {
	physPages := uint64(tr.maxPPN) + 1
	tableBytes := core.TableBytes(physPages)
	storeBytes := arch.AlignUp(tableBytes, arch.PageSize) + arch.PageSize
	store, err := memory.NewStore(storeBytes)
	if err != nil {
		panic(err)
	}
	table, err := core.NewProtectionTable(store, 0, physPages)
	if err != nil {
		panic(err)
	}
	bcc, err := core.NewBCC(cfg)
	if err != nil {
		panic(err)
	}
	for _, ev := range tr.events {
		if ev.Insert {
			table.Merge(ev.PPN, ev.Perm)
			bcc.Update(ev.PPN, ev.Perm, table)
			continue
		}
		if _, hit := bcc.Probe(ev.PPN); !hit {
			bcc.Fill(ev.PPN, table)
		}
	}
	return bcc.CheckHitMiss.MissRatio()
}
