package harness

import (
	"context"
	"fmt"
	"strings"

	"bordercontrol/internal/exp"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/tracerec"
)

// SweepCell is one cell of a replay sweep grid: a recorded (or generated)
// trace crossed with one system configuration. Cells share decoded traces
// freely — replay never mutates them.
type SweepCell struct {
	// Label names the cell in output rows; it must be unique per grid.
	Label string
	Trace *tracerec.Trace
	Mode  Mode
	Class GPUClass
	P     Params
	// Shards, when positive, runs the cell on the sharded engine with that
	// many workers (bit-identical results; a determinism axis, not a
	// timing one).
	Shards int
}

// SweepRow is one cell's result: runtime and event totals plus the
// border-check latency tail (p50/p99/p999 over every checked crossing —
// BCC hits, Protection Table walks, and denials merged), the sweep's
// headline metric.
type SweepRow struct {
	Label    string
	SimPs    sim.Time
	Events   uint64
	Ops      uint64
	BCChecks uint64
	BCCMiss  float64
	// CheckP50/P99/P999 are border-check latency permilles in picoseconds
	// (0 in modes with no border).
	CheckP50  uint64
	CheckP99  uint64
	CheckP999 uint64
	// Granted/Denied count adversarial probe outcomes.
	Granted uint64
	Denied  uint64
}

// checkLatency merges the per-outcome border-check latency histograms into
// the single distribution the sweep reports tails of.
func checkLatency(s stats.Snapshot) stats.HistSnapshot {
	h := s.Hist("border.latency_ps.bcc_hit")
	h = h.Merge(s.Hist("border.latency_ps.pt_walk"))
	return h.Merge(s.Hist("border.latency_ps.denied"))
}

// DuplicateLabelError reports a sweep grid whose cells do not have unique
// labels. Labels are the merge key of every rendered artifact (CSV rows,
// the worker-protocol merge), so a duplicate would silently corrupt output
// rather than fail; ValidateCells turns it into a typed, pre-run error.
type DuplicateLabelError struct {
	Label string
	// First and Second are the indices of the two colliding cells.
	First, Second int
}

func (e *DuplicateLabelError) Error() string {
	return fmt.Sprintf("harness: sweep cells %d and %d share the label %q (labels must be unique per grid)",
		e.First, e.Second, e.Label)
}

// ValidateCells checks the grid invariants every sweep path relies on:
// unique labels (see DuplicateLabelError) and a non-nil trace per cell.
// RunSweepExec and the worker-protocol fan-out both call it before running
// anything.
func ValidateCells(cells []SweepCell) error {
	seen := make(map[string]int, len(cells))
	for i, c := range cells {
		if c.Trace == nil {
			return fmt.Errorf("harness: sweep cell %d (%q) has a nil trace", i, c.Label)
		}
		if j, dup := seen[c.Label]; dup {
			return &DuplicateLabelError{Label: c.Label, First: j, Second: i}
		}
		seen[c.Label] = i
	}
	return nil
}

// RunSweep executes every cell on a bounded worker pool and returns rows
// in cell order. jobs bounds host parallelism (0 = GOMAXPROCS); because
// each cell is an independent deterministic simulation and rows collect in
// submission order, the returned rows — and anything rendered from them —
// are byte-identical at any jobs setting.
func RunSweep(cells []SweepCell, jobs int) ([]SweepRow, error) {
	return RunSweepCtx(context.Background(), cells, jobs)
}

// RunSweepCtx is RunSweep with cooperative cancellation. A cell whose
// replay fails (or whose image verification mismatches) fails the sweep
// with an error naming the cell.
func RunSweepCtx(ctx context.Context, cells []SweepCell, jobs int) ([]SweepRow, error) {
	return RunSweepExec(ctx, Exec{Jobs: jobs}, cells)
}

// RunSweepExec is RunSweepCtx with the full execution policy of Exec:
// per-cell timeouts and serialized completion-order progress callbacks in
// addition to the Jobs bound. The grid is validated (see ValidateCells)
// before anything runs.
func RunSweepExec(ctx context.Context, ex Exec, cells []SweepCell) ([]SweepRow, error) {
	if err := ValidateCells(cells); err != nil {
		return nil, err
	}
	return exp.Map(ctx, ex.runner(), cells,
		func(_ int, c SweepCell) string { return c.Label },
		func(ctx context.Context, c SweepCell) (SweepRow, error) {
			return RunCell(ctx, c)
		})
}

// RunCell executes one sweep cell — a single deterministic simulation —
// and distills its result into the cell's row. It is the unit of work the
// worker protocol ships across process boundaries; anything that executes
// cells through RunCell and merges rows in canonical cell order reproduces
// RunSweep byte-for-byte.
func RunCell(ctx context.Context, c SweepCell) (SweepRow, error) {
	res, err := RunTraceCtx(ctx, c.Mode, c.Class, c.Trace, c.P, RunOptions{Shards: c.Shards})
	if err != nil {
		return SweepRow{}, err
	}
	row := SweepRow{
		Label:    c.Label,
		SimPs:    res.SimTime,
		Events:   res.Host.Events,
		Ops:      res.Ops,
		BCChecks: res.BCChecks,
		BCCMiss:  res.BCCMissRatio,
	}
	for _, s := range res.Segments {
		if s.VerifyErr != nil {
			return SweepRow{}, fmt.Errorf("%s: segment %s verify: %w", c.Label, s.Name, s.VerifyErr)
		}
		row.Granted += s.ProbesGranted
		row.Denied += s.ProbesDenied
	}
	lat := checkLatency(res.Stats)
	row.CheckP50 = lat.Permille(500)
	row.CheckP99 = lat.Permille(990)
	row.CheckP999 = lat.Permille(999)
	return row, nil
}

// RenderSweep renders rows as a fixed-width table. Output is a pure
// function of the rows.
func RenderSweep(rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %10s %8s %9s %8s %10s %10s %10s %4s %4s\n",
		"cell", "sim_ps", "events", "ops", "bc_checks", "bcc_miss",
		"chk_p50ps", "chk_p99ps", "chk_p999ps", "grant", "deny")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %14d %10d %8d %9d %8.4f %10d %10d %10d %4d %4d\n",
			r.Label, r.SimPs, r.Events, r.Ops, r.BCChecks, r.BCCMiss,
			r.CheckP50, r.CheckP99, r.CheckP999, r.Granted, r.Denied)
	}
	return b.String()
}

// SweepCSV renders rows as CSV with a fixed header, for downstream
// plotting.
func SweepCSV(rows []SweepRow) string {
	var b strings.Builder
	b.WriteString("cell,sim_ps,events,ops,bc_checks,bcc_miss,chk_p50_ps,chk_p99_ps,chk_p999_ps,granted,denied\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d\n",
			r.Label, r.SimPs, r.Events, r.Ops, r.BCChecks, r.BCCMiss,
			r.CheckP50, r.CheckP99, r.CheckP999, r.Granted, r.Denied)
	}
	return b.String()
}

// RecordedCells expands a set of traces against mode/border/class axes
// into a full grid with deterministic labels — the standard sweep builder
// bctool uses. Modes that carry no border ignore the border axis (one cell
// each, labelled with "-").
func RecordedCells(traces map[string]*tracerec.Trace, names []string, modes []Mode, borders []string, classes []GPUClass, base Params, shards int) []SweepCell {
	var cells []SweepCell
	for _, name := range names {
		tr := traces[name]
		for _, mode := range modes {
			bs := borders
			if mode == ATSOnly || mode == FullIOMMU || mode == CAPILike {
				bs = []string{"-"}
			}
			for _, border := range bs {
				for _, class := range classes {
					p := base
					if border != "-" {
						p.Border = border
					}
					cls := "high"
					if class == ModeratelyThreaded {
						cls = "mod"
					}
					cells = append(cells, SweepCell{
						Label:  fmt.Sprintf("%s/%s/%s/%s", name, modeSlug(mode), border, cls),
						Trace:  tr,
						Mode:   mode,
						Class:  class,
						P:      p,
						Shards: shards,
					})
				}
			}
		}
	}
	return cells
}

// modeSlug is the short machine-friendly mode name used in sweep labels
// and bctool flags.
func modeSlug(m Mode) string {
	switch m {
	case ATSOnly:
		return "ats-only"
	case FullIOMMU:
		return "full-iommu"
	case CAPILike:
		return "capi-like"
	case BCNoBCC:
		return "bc-nobcc"
	case BCBCC:
		return "bc-bcc"
	default:
		return fmt.Sprintf("mode%d", int(m))
	}
}

// ModeSlug is the canonical short name of a mode as it appears in sweep
// labels, bctool flags, and the serve/worker wire protocol.
func ModeSlug(m Mode) string { return modeSlug(m) }

// ParseModeSlug inverts ModeSlug. It also accepts "capi" as an alias for
// "capi-like" (the historical bctool flag spelling).
func ParseModeSlug(s string) (Mode, error) {
	switch s {
	case "ats-only":
		return ATSOnly, nil
	case "full-iommu":
		return FullIOMMU, nil
	case "capi", "capi-like":
		return CAPILike, nil
	case "bc-nobcc":
		return BCNoBCC, nil
	case "bc-bcc":
		return BCBCC, nil
	default:
		return 0, fmt.Errorf("harness: unknown mode %q (want ats-only, full-iommu, capi-like, bc-nobcc, or bc-bcc)", s)
	}
}

// ClassSlug is the canonical short name of a GPU class as it appears in
// sweep labels and the serve/worker wire protocol.
func ClassSlug(c GPUClass) string { return classShort(c) }

// ParseClassSlug inverts ClassSlug. It also accepts the long bctool flag
// spellings "moderate" and "highly".
func ParseClassSlug(s string) (GPUClass, error) {
	switch s {
	case "mod", "moderate":
		return ModeratelyThreaded, nil
	case "high", "highly":
		return HighlyThreaded, nil
	default:
		return 0, fmt.Errorf("harness: unknown GPU class %q (want mod or high)", s)
	}
}
