package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
	"bordercontrol/internal/tracerec"
	"bordercontrol/internal/workload"
)

// RunError identifies which simulation of a sweep failed and why, so a
// parallel failure report names the job: workload, configuration, GPU
// class, and the stage that failed. It wraps the underlying cause (for a
// GPU abort, the border-violation detail from sys.GPU.Err()).
type RunError struct {
	Workload string
	Mode     Mode
	Class    GPUClass
	// Stage is where the run failed: "build", "start", "launch",
	// "interrupted", "hang", "abort".
	Stage string
	Err   error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("harness: %s on %v (%v): %s: %v", e.Workload, e.Mode, e.Class, e.Stage, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// RunOptions tune a single workload execution.
type RunOptions struct {
	// DowngradesPerSec injects synthetic permission downgrades (RW -> R,
	// then restore) at this rate of simulated time, round-robin over the
	// process's writable pages — the Figure 7 experiment. Zero disables
	// injection.
	DowngradesPerSec float64
	// FixedDowngrades, when positive, overrides DowngradesPerSec and
	// injects this many downgrades spread evenly over SpreadOver of
	// simulated time (normally the workload's baseline runtime). Used to
	// measure the per-downgrade cost densely on short kernels.
	FixedDowngrades int
	// SpreadOver is the window FixedDowngrades are spread across.
	SpreadOver sim.Time
	// SkipVerify skips the functional output check (used by sweeps that
	// deliberately perturb timing only).
	SkipVerify bool
	// Tracer, when non-nil, records the run's timeline (engine, border,
	// and GPU events) in Chrome trace-event form. Pure observation: a run
	// with a tracer attached produces identical results to one without.
	Tracer *trace.Tracer
	// Profiler, when non-nil, accumulates simulated-time attribution for
	// the run (component-stack samples for folded/pprof output). Pure
	// observation, like Tracer.
	Profiler *prof.Profiler
	// Shards, when positive, executes the run on the sharded
	// conservative-parallel engine with that many worker goroutines
	// available. A single-accelerator run is one determinism domain (one
	// logical shard), so this changes execution machinery only: results —
	// every simulated time, count and snapshot — are bit-identical to the
	// default direct engine at any setting. It is the figure-level proof
	// that sharded execution is residue-free; fleets (RunFleetCtx) are
	// where extra workers buy wall-clock time.
	Shards int
}

// HostStats is the host-side self-measurement of one run: how long the
// simulation took in wall-clock terms and how fast the engine processed
// events. It feeds `bctool bench`.
type HostStats struct {
	// Wall is the host wall-clock duration of the Engine.Run call.
	Wall time.Duration
	// Events is how many discrete events the engine fired.
	Events uint64
	// EventsPerSec is Events divided by Wall.
	EventsPerSec float64
}

// RunResult reports one workload execution on one system configuration.
type RunResult struct {
	Workload string
	Mode     Mode
	Class    GPUClass

	// Runtime is the kernel's simulated duration, including the final
	// cache drain; Cycles is the same in GPU cycles — the paper's runtime
	// metric.
	Runtime sim.Time
	Cycles  uint64
	// Ops is the number of memory operations the GPU completed.
	Ops uint64

	// BCChecks is the number of requests checked at the border (BC modes).
	BCChecks uint64
	// BCCMissRatio is the BCC check miss ratio (BCBCC mode).
	BCCMissRatio float64
	// Downgrades counts injected permission downgrades.
	Downgrades uint64
	// DRAMUtilization is mean channel utilization over the run.
	DRAMUtilization float64

	// Cache-hierarchy statistics (sandboxed configurations only; zero for
	// the full-IOMMU path, which has no accelerator caches).
	L1MissRatio  float64
	L2MissRatio  float64
	TLBMissRatio float64
	// Translations is the number of ATS requests (accelerator TLB misses,
	// or every access under the full IOMMU).
	Translations uint64
	// PageWalks is how many of those missed the trusted L2 TLB.
	PageWalks uint64

	// VerifyErr reports a functional-output mismatch (nil when correct).
	VerifyErr error

	// Stats is the full hierarchical metrics snapshot of the run's System
	// — every registered counter and ratio under its dotted path. The
	// scalar fields above remain as the rendered tables' inputs; new
	// consumers should read Stats.
	Stats stats.Snapshot

	// Host is the host-side self-measurement of this run.
	Host HostStats
}

// RequestsPerCycle returns border checks per GPU cycle (Figure 5).
func (r RunResult) RequestsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.BCChecks) / float64(r.Cycles)
}

// Run executes one workload on a fresh system in the given configuration.
func Run(mode Mode, class GPUClass, spec workload.Spec, p Params, opts RunOptions) (RunResult, error) {
	return RunCtx(context.Background(), mode, class, spec, p, opts)
}

// RunCtx is Run with cooperative cancellation: the simulation engine polls
// ctx between events, so a cancelled or timed-out run aborts promptly and
// fails with a *RunError wrapping ctx.Err(). Every failure path that names
// a specific run returns a *RunError, so parallel sweeps report exactly
// which job broke.
func RunCtx(ctx context.Context, mode Mode, class GPUClass, spec workload.Spec, p Params, opts RunOptions) (RunResult, error) {
	fail := func(stage string, err error) (RunResult, error) {
		return RunResult{}, &RunError{Workload: spec.Name, Mode: mode, Class: class, Stage: stage, Err: err}
	}
	if p.Trace != "" {
		// Replay mode: swap the generator for the recorded trace's replay
		// recipe. Decode failures (corrupt or truncated recordings) surface
		// here as typed build-stage errors.
		tr, err := tracerec.Load(tracerec.Resolve(p.Trace, spec.Name))
		if err != nil {
			return fail("build", err)
		}
		rspec, err := tracerec.ReplaySpec(tr)
		if err != nil {
			return fail("build", err)
		}
		spec = rspec
	}
	// With opts.Shards the system is assembled on (the only) shard of a
	// sharded engine; the window width is irrelevant with no cross-shard
	// traffic, any positive lookahead does.
	var se *sim.ShardedEngine
	eng := &sim.Engine{}
	if opts.Shards > 0 {
		se = sim.NewShardedEngine(1, sim.Microsecond)
		se.Workers = opts.Shards
		eng = se.Shard(0)
	}
	sys, err := NewSystemWithEngine(eng, mode, class, p)
	if err != nil {
		return RunResult{}, err
	}
	proc, err := sys.OS.NewProcess(spec.Name)
	if err != nil {
		return fail("start", err)
	}
	prog, err := spec.Build(proc, p.Scale)
	if err != nil {
		return fail("build", err)
	}

	// Process initialization on the accelerator (paper Figure 3a).
	sys.ATS.Activate(sys.Name, proc.ASID())
	if sys.BC != nil {
		if err := sys.BC.ProcessStart(proc.ASID()); err != nil {
			return fail("start", err)
		}
	}

	if err := sys.GPU.Launch(prog, proc.ASID()); err != nil {
		return fail("launch", err)
	}

	var injector *downgradeInjector
	switch {
	case opts.FixedDowngrades > 0 && opts.SpreadOver > 0:
		interval := opts.SpreadOver / sim.Time(opts.FixedDowngrades+1)
		injector = newDowngradeInjector(sys, proc, interval, opts.FixedDowngrades)
	case opts.DowngradesPerSec > 0:
		interval := sim.Time(float64(sim.Second) / opts.DowngradesPerSec)
		injector = newDowngradeInjector(sys, proc, interval, 0)
	}
	if injector != nil {
		injector.start()
	}
	if done := ctx.Done(); done != nil {
		poll := func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
		if se != nil {
			se.Interrupt = poll
		} else {
			sys.Eng.Interrupt = poll
		}
	}
	if opts.Tracer != nil {
		sys.AttachTracer(opts.Tracer)
	}
	if opts.Profiler != nil {
		sys.AttachProfiler(opts.Profiler)
	}
	wallStart := time.Now()
	if se != nil {
		se.Run()
	} else {
		sys.Eng.Run()
	}
	wall := time.Since(wallStart)

	if !sys.GPU.Finished() {
		// Distinguish an external interruption (cancellation, timeout) from
		// a genuinely stuck simulation.
		if err := ctx.Err(); err != nil {
			return fail("interrupted", err)
		}
		return fail("hang", fmt.Errorf("simulation drained with the kernel incomplete"))
	}
	if gerr := sys.GPU.Err(); gerr != nil {
		return fail("abort", gerr)
	}

	res := RunResult{
		Workload:        spec.Name,
		Mode:            mode,
		Class:           class,
		Runtime:         sys.GPU.Runtime(),
		Cycles:          sys.GPU.Cycles(),
		Ops:             sys.GPU.OpsDone.Value(),
		DRAMUtilization: sys.DRAM.Utilization(sys.GPU.Runtime()),
		Translations:    sys.ATS.Translation.Value(),
		PageWalks:       sys.ATS.Walks.Value(),
	}
	if h, ok := sys.Hier.(*accel.Sandboxed); ok {
		var l1h, l1m, tlbh, tlbm uint64
		for cu := 0; cu < sys.GPU.Config().CUs; cu++ {
			l1h += h.L1(cu).HitMiss.Hits.Value()
			l1m += h.L1(cu).HitMiss.Misses.Value()
			tlbh += h.L1TLB(cu).HitMiss.Hits.Value()
			tlbm += h.L1TLB(cu).HitMiss.Misses.Value()
		}
		if l1h+l1m > 0 {
			res.L1MissRatio = float64(l1m) / float64(l1h+l1m)
		}
		if tlbh+tlbm > 0 {
			res.TLBMissRatio = float64(tlbm) / float64(tlbh+tlbm)
		}
		res.L2MissRatio = h.L2().HitMiss.MissRatio()
	}
	if injector != nil {
		// A failed restore leaves the workload wedged on read-only pages —
		// the run's numbers would be nonsense, so it fails rather than
		// silently under-reporting.
		if injector.err != nil {
			return fail("downgrade", fmt.Errorf("%d restore(s) failed; first: %w", injector.restoreErrs, injector.err))
		}
		res.Downgrades = injector.count
	}
	if sys.BC != nil {
		res.BCChecks = sys.BC.CrossingChecks()
		if bcc := sys.BC.Cache(); bcc != nil {
			res.BCCMissRatio = bcc.CheckHitMiss.MissRatio()
		}
	}
	res.Stats = sys.Metrics.Snapshot()
	res.Host = HostStats{Wall: wall, Events: sys.Eng.Fired()}
	if s := wall.Seconds(); s > 0 {
		res.Host.EventsPerSec = float64(res.Host.Events) / s
	}

	// Process completion (Figure 3e), then verify the results the program
	// left in memory.
	if sys.BC != nil {
		sys.BC.ProcessComplete(sys.GPU.FinishTime(), proc.ASID())
	}
	sys.ATS.Deactivate(sys.Name, proc.ASID())
	if prog.Verify != nil && !opts.SkipVerify {
		res.VerifyErr = prog.Verify(proc)
	}
	return res, nil
}

// downgradeInjector schedules periodic permission downgrades over a
// process's writable pages while the GPU runs, at most max times (0 =
// until the GPU finishes). count and err are valid once the engine has
// drained: count is the number of downgrades that landed, err the first
// restore failure (a failed restore strands the workload on read-only
// pages, so the run must not report results as if nothing happened).
type downgradeInjector struct {
	sys      *System
	proc     *hostos.Process
	pages    []arch.Virt
	interval sim.Time
	max      int

	count       uint64
	restoreErrs uint64
	err         error
}

func newDowngradeInjector(sys *System, proc *hostos.Process, interval sim.Time, max int) *downgradeInjector {
	if interval == 0 {
		interval = 1
	}
	// Snapshot the writable pages (generation already faulted them in).
	// ForEachMapped iterates a map in random order; sort so the injection
	// round-robin — and therefore Figure 7 — is identical on every run.
	var pages []arch.Virt
	proc.ForEachMapped(func(vpn arch.VPN, _ arch.PPN, perm arch.Perm) {
		if perm.CanWrite() {
			pages = append(pages, vpn.Base())
		}
	})
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return &downgradeInjector{sys: sys, proc: proc, pages: pages, interval: interval, max: max}
}

// injectOnce runs one downgrade/restore round on the idx'th page of the
// round-robin: downgrade RW -> R (shootdown + border flush), then restore
// so the workload can continue; the restore is an upgrade and incurs no
// shootdown (paper §3.2.4). Split out from the event-loop scheduling so
// the restore-failure path is directly testable.
func (d *downgradeInjector) injectOnce(idx uint64) {
	v := d.pages[idx%uint64(len(d.pages))]
	if _, err := d.sys.OS.Protect(d.proc, v, arch.PageSize, arch.PermRead); err == nil {
		d.count++
	}
	if _, err := d.sys.OS.Protect(d.proc, v, arch.PageSize, arch.PermRW); err != nil {
		d.restoreErrs++
		if d.err == nil {
			d.err = fmt.Errorf("restore %#x to RW: %w", uint64(v), err)
		}
	}
}

// start arms the injector on the system's engine. One pre-bound callback
// rescheduling itself: the payload word is the round-robin page index, so
// injection runs allocation-free however many downgrades fire.
func (d *downgradeInjector) start() {
	if len(d.pages) == 0 {
		return
	}
	var tick sim.EventFunc
	tick = func(_ sim.Time, idx uint64) {
		if d.sys.GPU.Finished() || (d.max > 0 && d.count >= uint64(d.max)) {
			return
		}
		d.injectOnce(idx)
		d.sys.Eng.ScheduleIntoAfter(d.interval, tick, idx+1)
	}
	d.sys.Eng.ScheduleIntoAfter(d.interval, tick, 0)
}
