package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/workload"
)

// FleetParams configures a fleet-scale scenario: many tenant accelerators —
// each a fully assembled System (its own OS, ASID, IOMMU/ATS, border and
// cache hierarchy) — on one sharded simulation, coordinated by a host
// shard. Border crossings between the host and the accelerators (launch
// doorbells, completion interrupts, downgrade commands) are the cross-shard
// messages, each paying the Lookahead latency; everything else is
// shard-local. See DESIGN.md §13.
type FleetParams struct {
	// Tenants is the number of accelerator sandboxes (one shard each, plus
	// the host coordinator shard).
	Tenants int
	// Mode is the safety configuration every tenant runs under.
	Mode Mode
	// Class is the GPU proxy every tenant instantiates.
	Class GPUClass
	// Lookahead is the host<->accelerator crossing latency — doorbell
	// writes, completion interrupts and downgrade commands all pay it —
	// and therefore the conservative synchronization window.
	Lookahead sim.Time
	// LaunchSpread staggers tenant kernel launches over this much
	// simulated time (seeded jitter), modeling job arrival.
	LaunchSpread sim.Time
	// DowngradeEvery, when non-zero, has the host coordinator command a
	// permission downgrade (RW -> R, then restore) on a seeded random
	// running tenant at this cadence — fleet-scale churn on the
	// shootdown/flush paths (the Figure 7 experiment, many sandboxes at
	// once).
	DowngradeEvery sim.Time
	// Seed drives launch jitter and churn targeting.
	Seed int64
	// Workers bounds how many shards execute concurrently (the bctool
	// -shards flag): 0 = GOMAXPROCS, 1 = serial. Execution policy only —
	// every simulated outcome is bit-identical at any setting.
	Workers int
}

// DefaultFleetParams returns a fleet that exercises every protocol path at
// a size quick enough for smoke tests; scale Tenants up for real runs.
func DefaultFleetParams() FleetParams {
	return FleetParams{
		Tenants:        16,
		Mode:           BCBCC,
		Class:          ModeratelyThreaded,
		Lookahead:      sim.Microsecond,
		LaunchSpread:   50 * sim.Microsecond,
		DowngradeEvery: 20 * sim.Microsecond,
		Seed:           1,
	}
}

// Validate rejects unusable fleet parameters.
func (fp FleetParams) Validate() error {
	if fp.Tenants < 1 {
		return fmt.Errorf("harness: FleetParams.Tenants must be >= 1, got %d", fp.Tenants)
	}
	if fp.Lookahead <= 0 {
		return fmt.Errorf("harness: FleetParams.Lookahead must be positive (it is the host<->accelerator crossing latency)")
	}
	return nil
}

// FleetResult reports one fleet run. Every field except Host is a pure
// function of the inputs — byte-identical at any Workers setting.
type FleetResult struct {
	Workload string
	Mode     Mode
	Class    GPUClass
	Tenants  int

	// Completed counts tenants whose kernel finished; Verified counts
	// those whose output checked correct.
	Completed int
	Verified  int

	// SimTime is the fleet's total simulated duration (the last event
	// anywhere, including the final completion interrupt). FirstDone and
	// LastDone are the host-observed completion interrupt times.
	SimTime   sim.Time
	FirstDone sim.Time
	LastDone  sim.Time

	// Engine aggregates: total events fired across shards, conservative
	// windows executed, cross-shard border messages delivered, and the
	// widest clock skew the lookahead window admitted between shards.
	Events   uint64
	Windows  uint64
	Messages uint64
	MaxSkew  sim.Time

	// Downgrades counts churn commands that landed (performed a real
	// RW -> R downgrade on a running tenant); Ops and BCChecks sum the
	// tenants' memory operations and border checks.
	Downgrades uint64
	Ops        uint64
	BCChecks   uint64

	// Stats merges every tenant system's snapshot with the fleet
	// coordinator's scope ("fleet.windows", "fleet.messages", ...), so
	// counters sum across the fleet.
	Stats stats.Snapshot

	// Host is the host-side self-measurement of the sharded run.
	Host HostStats
}

// Render returns the deterministic fleet report (no wall-clock content).
func (r FleetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet: %d tenants x %s on %v (%v), %d shards\n",
		r.Tenants, r.Workload, r.Mode, r.Class, r.Tenants+1)
	fmt.Fprintf(&b, "  completed %d/%d, verified %d correct\n", r.Completed, r.Tenants, r.Verified)
	fmt.Fprintf(&b, "  sim time %.3f ms; completions %.3f - %.3f ms\n",
		float64(r.SimTime)/1e9, float64(r.FirstDone)/1e9, float64(r.LastDone)/1e9)
	fmt.Fprintf(&b, "  events %d in %d windows; %d border messages; max shard skew %d ps\n",
		r.Events, r.Windows, r.Messages, uint64(r.MaxSkew))
	fmt.Fprintf(&b, "  ops %d, BC checks %d, downgrades %d\n", r.Ops, r.BCChecks, r.Downgrades)
	return b.String()
}

// fleetTenant is one accelerator sandbox bound to its shard.
type fleetTenant struct {
	sys  *System
	proc *hostos.Process
	prog *accel.Program
	// pages are the sorted writable pages (the churn round-robin set);
	// page is the host-side round-robin cursor into it.
	pages []arch.Virt
	page  uint64

	// done/doneAt are host-shard state, written only by the completion
	// interrupt handler on shard 0; downgrades and the restore-failure
	// fields are tenant-shard state, written only by commands executing on
	// this tenant's shard. A failed restore strands the tenant's workload
	// on read-only pages, so it fails the fleet after the engines drain.
	done        bool
	doneAt      sim.Time
	downgrades  uint64
	restoreErrs uint64
	restoreErr  error
}

// splitmix64 is the seeded jitter generator behind launch staggering and
// churn targeting — deterministic and stateless per call.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunFleet is RunFleetCtx without cancellation.
func RunFleet(p Params, fp FleetParams, spec workload.Spec) (FleetResult, error) {
	return RunFleetCtx(context.Background(), p, fp, spec)
}

// RunFleetCtx assembles and executes a fleet: fp.Tenants accelerator
// systems on shards 1..N, a host coordinator on shard 0, and the launch /
// completion / downgrade border traffic between them as conservative
// cross-shard messages. Cancellation is cooperative via ctx and stops
// every shard promptly.
func RunFleetCtx(ctx context.Context, p Params, fp FleetParams, spec workload.Spec) (FleetResult, error) {
	if err := fp.Validate(); err != nil {
		return FleetResult{}, err
	}
	fail := func(tenant int, stage string, err error) (FleetResult, error) {
		return FleetResult{}, &RunError{
			Workload: fmt.Sprintf("fleet/%s#%d", spec.Name, tenant),
			Mode:     fp.Mode, Class: fp.Class, Stage: stage, Err: err,
		}
	}

	se := sim.NewShardedEngine(fp.Tenants+1, fp.Lookahead)
	se.Workers = fp.Workers
	host := se.Shard(0)

	// Assemble every tenant on its shard: system, process, program. The
	// GPU launch itself waits for the host's doorbell message, so shard
	// clocks only diverge once the simulation runs.
	tenants := make([]*fleetTenant, fp.Tenants)
	for i := range tenants {
		te := &fleetTenant{}
		sys, err := NewSystemWithEngine(se.Shard(i+1), fp.Mode, fp.Class, p)
		if err != nil {
			return FleetResult{}, err
		}
		te.sys = sys
		proc, err := sys.OS.NewProcess(fmt.Sprintf("%s#%d", spec.Name, i))
		if err != nil {
			return fail(i, "start", err)
		}
		te.proc = proc
		prog, err := spec.Build(proc, p.Scale)
		if err != nil {
			return fail(i, "build", err)
		}
		te.prog = prog

		// Process initialization on the accelerator (paper Figure 3a).
		sys.ATS.Activate(sys.Name, proc.ASID())
		if sys.BC != nil {
			if err := sys.BC.ProcessStart(proc.ASID()); err != nil {
				return fail(i, "start", err)
			}
		}

		// Snapshot writable pages sorted, as injectDowngradesEvery does,
		// so churn targeting is identical on every run.
		proc.ForEachMapped(func(vpn arch.VPN, _ arch.PPN, perm arch.Perm) {
			if perm.CanWrite() {
				te.pages = append(te.pages, vpn.Base())
			}
		})
		sort.Slice(te.pages, func(a, b int) bool { return te.pages[a] < te.pages[b] })

		// Launch doorbell: host -> tenant at a seeded arrival time; the
		// callback runs on the tenant shard.
		launchAt := sim.Time(1)
		if fp.LaunchSpread > 0 {
			launchAt += sim.Time(splitmix64(uint64(fp.Seed)+uint64(i)) % uint64(fp.LaunchSpread))
		}
		host.Send(sim.ShardID(i+1), launchAt+fp.Lookahead, func(_ sim.Time, _ uint64) {
			if err := sys.GPU.Launch(prog, proc.ASID()); err != nil {
				// Launching on a fresh system cannot fail; if it does, the
				// fleet wiring is broken and must be loud.
				panic(err)
			}
		}, 0)

		// Completion interrupt: tenant -> host when the kernel (and its
		// final cache drain) retires.
		tenantEng := sys.Eng
		sys.GPU.OnFinish = func(at sim.Time) {
			tenantEng.Send(0, at+fp.Lookahead, func(now sim.Time, arg uint64) {
				t := tenants[arg]
				if !t.done {
					t.done = true
					t.doneAt = now
				}
			}, uint64(i))
		}
		tenants[i] = te
	}

	// Host-driven churn: on a fixed cadence, command a seeded tenant to
	// downgrade (and restore) one of its writable pages. The downgrade
	// itself — shootdown, cache drain, border flush — runs entirely on
	// the tenant's shard; only the command crosses.
	var churnSeq uint64
	if fp.DowngradeEvery > 0 {
		var tick sim.EventFunc
		tick = func(now sim.Time, _ uint64) {
			live := false
			for _, te := range tenants {
				if !te.done {
					live = true
					break
				}
			}
			if !live {
				return
			}
			churnSeq++
			target := int(splitmix64(uint64(fp.Seed)^(churnSeq*0x100000001b3)) % uint64(fp.Tenants))
			if te := tenants[target]; !te.done && len(te.pages) > 0 {
				host.Send(sim.ShardID(target+1), now+fp.Lookahead, func(_ sim.Time, pi uint64) {
					if te.sys.GPU.Finished() {
						return
					}
					v := te.pages[pi%uint64(len(te.pages))]
					if _, err := te.sys.OS.Protect(te.proc, v, arch.PageSize, arch.PermRead); err == nil {
						te.downgrades++
					}
					if _, err := te.sys.OS.Protect(te.proc, v, arch.PageSize, arch.PermRW); err != nil {
						te.restoreErrs++
						if te.restoreErr == nil {
							te.restoreErr = fmt.Errorf("restore %#x to RW: %w", uint64(v), err)
						}
					}
				}, te.page)
				te.page++
			}
			host.ScheduleInto(now+fp.DowngradeEvery, tick, 0)
		}
		host.ScheduleInto(fp.DowngradeEvery, tick, 0)
	}

	if done := ctx.Done(); done != nil {
		se.Interrupt = func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}

	wallStart := time.Now()
	se.Run()
	wall := time.Since(wallStart)

	// Distinguish an external interruption from a genuinely stuck fleet
	// before touching any results.
	for i, te := range tenants {
		if !te.sys.GPU.Finished() {
			if err := ctx.Err(); err != nil {
				return fail(i, "interrupted", err)
			}
			return fail(i, "hang", fmt.Errorf("fleet drained with tenant %d incomplete", i))
		}
		if gerr := te.sys.GPU.Err(); gerr != nil {
			return fail(i, "abort", gerr)
		}
		if te.restoreErr != nil {
			return fail(i, "downgrade", fmt.Errorf("%d restore(s) failed; first: %w", te.restoreErrs, te.restoreErr))
		}
	}

	res := FleetResult{
		Workload: spec.Name,
		Mode:     fp.Mode,
		Class:    fp.Class,
		Tenants:  fp.Tenants,
		SimTime:  se.Now(),
		Events:   se.Fired(),
		Windows:  se.Windows(),
		Messages: se.Delivered(),
		MaxSkew:  se.MaxSkew(),
		Host:     HostStats{Wall: wall, Events: se.Fired()},
	}
	if s := wall.Seconds(); s > 0 {
		res.Host.EventsPerSec = float64(res.Host.Events) / s
	}

	// Completion (paper Figure 3e) and output verification, per tenant in
	// index order — deterministic, and after the engines have drained.
	fleetReg := stats.NewRegistry()
	se.RegisterMetrics(fleetReg.Scope("fleet"))
	snaps := []stats.Snapshot{fleetReg.Snapshot()}
	for _, te := range tenants {
		res.Completed++
		if res.FirstDone == 0 || te.doneAt < res.FirstDone {
			res.FirstDone = te.doneAt
		}
		if te.doneAt > res.LastDone {
			res.LastDone = te.doneAt
		}
		res.Downgrades += te.downgrades
		res.Ops += te.sys.GPU.OpsDone.Value()
		if te.sys.BC != nil {
			res.BCChecks += te.sys.BC.CrossingChecks()
			te.sys.BC.ProcessComplete(te.sys.GPU.FinishTime(), te.proc.ASID())
		}
		te.sys.ATS.Deactivate(te.sys.Name, te.proc.ASID())
		if te.prog.Verify == nil || te.prog.Verify(te.proc) == nil {
			res.Verified++
		}
		snaps = append(snaps, te.sys.Metrics.Snapshot())
	}
	res.Stats = stats.Merge(snaps...)
	return res, nil
}
