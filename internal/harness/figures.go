package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bordercontrol/internal/exp"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/workload"
)

// Figure4Row is one workload's overheads relative to the unsafe baseline.
type Figure4Row struct {
	Workload  string
	Baseline  uint64           // ATS-only cycles
	Cycles    map[Mode]uint64  // per safe mode
	Overheads map[Mode]float64 // cycles/baseline - 1
}

// Figure4Result reproduces paper Figure 4 (one GPU class).
type Figure4Result struct {
	Class GPUClass
	Rows  []Figure4Row
	// GeoMean holds the geometric-mean overhead per mode, the numbers the
	// paper quotes in the text (374%, 3.81%, 2.04%, 0.15% for 4a).
	GeoMean map[Mode]float64
	// Stats aggregates the metrics snapshots of every run in the sweep.
	Stats stats.Snapshot
}

// Figure4 runs all seven workloads under the baseline and the four safe
// configurations for the given GPU class on the experiment-execution
// layer: the 7 workloads x (baseline + 4 safe modes) independent
// simulations become a job list, and ordered result collection keeps the
// rendered figure byte-identical to a serial sweep at any parallelism.
func Figure4(ctx context.Context, ex Exec, class GPUClass, p Params) (Figure4Result, error) {
	res := Figure4Result{Class: class, GeoMean: make(map[Mode]float64)}
	specs := workload.All()

	var list []runSpec
	for _, spec := range specs {
		list = append(list, runSpec{
			Label: "fig4/" + classShort(class) + "/" + spec.Name + "/" + shortMode(ATSOnly),
			Mode:  ATSOnly, Class: class, Spec: spec,
		})
		for _, mode := range SafeModes() {
			list = append(list, runSpec{
				Label: "fig4/" + classShort(class) + "/" + spec.Name + "/" + shortMode(mode),
				Mode:  mode, Class: class, Spec: spec,
			})
		}
	}
	runs, err := runAll(ctx, ex, p, list)
	if err != nil {
		return res, err
	}
	res.Stats = sweepStats(runs)

	per := make(map[Mode][]float64)
	next := 0
	for _, spec := range specs {
		base := runs[next]
		next++
		if base.VerifyErr != nil {
			return res, fmt.Errorf("harness: %s baseline results wrong: %w", spec.Name, base.VerifyErr)
		}
		row := Figure4Row{
			Workload:  spec.Name,
			Baseline:  base.Cycles,
			Cycles:    make(map[Mode]uint64),
			Overheads: make(map[Mode]float64),
		}
		for _, mode := range SafeModes() {
			r := runs[next]
			next++
			if r.VerifyErr != nil {
				return res, fmt.Errorf("harness: %s on %v results wrong: %w", spec.Name, mode, r.VerifyErr)
			}
			row.Cycles[mode] = r.Cycles
			ov := float64(r.Cycles)/float64(base.Cycles) - 1
			row.Overheads[mode] = ov
			per[mode] = append(per[mode], ov)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, mode := range SafeModes() {
		res.GeoMean[mode] = stats.GeoMeanOverhead(per[mode])
	}
	return res, nil
}

// Render prints the figure as a text table.
func (f Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s GPU): runtime overhead vs ATS-only IOMMU baseline\n", f.Class)
	fmt.Fprintf(&b, "%-12s %12s", "workload", "base cycles")
	for _, m := range SafeModes() {
		fmt.Fprintf(&b, " %12s", shortMode(m))
	}
	b.WriteString("\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %12d", row.Workload, row.Baseline)
		for _, m := range SafeModes() {
			fmt.Fprintf(&b, " %11.2f%%", row.Overheads[m]*100)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s %12s", "geomean", "")
	for _, m := range SafeModes() {
		fmt.Fprintf(&b, " %11.2f%%", f.GeoMean[m]*100)
	}
	b.WriteString("\n")
	return b.String()
}

func shortMode(m Mode) string {
	switch m {
	case ATSOnly:
		return "ATS-only"
	case FullIOMMU:
		return "IOMMU"
	case CAPILike:
		return "CAPI"
	case BCNoBCC:
		return "BC-noBCC"
	case BCBCC:
		return "BC-BCC"
	}
	return m.String()
}

// Figure5Row is one workload's border-check rate.
type Figure5Row struct {
	Workload string
	// RequestsPerCycle is the number of requests checked by Border Control
	// per GPU cycle (paper Figure 5; mean 0.11, 0.025 for backprop up to
	// 0.29 for bfs).
	RequestsPerCycle float64
	Checks           uint64
	Cycles           uint64
}

// Figure5Result reproduces paper Figure 5.
type Figure5Result struct {
	Rows    []Figure5Row
	Average float64
	// Stats aggregates the metrics snapshots of every run in the sweep.
	Stats stats.Snapshot
}

// Figure5 measures requests/cycle checked by Border Control on the highly
// threaded GPU under BC-BCC, on the experiment-execution layer: one job
// per workload.
func Figure5(ctx context.Context, ex Exec, p Params) (Figure5Result, error) {
	var res Figure5Result
	var list []runSpec
	for _, spec := range workload.All() {
		list = append(list, runSpec{
			Label: "fig5/" + spec.Name,
			Mode:  BCBCC, Class: HighlyThreaded, Spec: spec,
		})
	}
	runs, err := runAll(ctx, ex, p, list)
	if err != nil {
		return res, err
	}
	res.Stats = sweepStats(runs)
	var rates []float64
	for _, r := range runs {
		row := Figure5Row{
			Workload:         r.Workload,
			RequestsPerCycle: r.RequestsPerCycle(),
			Checks:           r.BCChecks,
			Cycles:           r.Cycles,
		}
		res.Rows = append(res.Rows, row)
		rates = append(rates, row.RequestsPerCycle)
	}
	res.Average = stats.Mean(rates)
	return res, nil
}

// Render prints Figure 5 as a text table.
func (f Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 (highly threaded GPU): requests per cycle checked by Border Control\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "workload", "req/cycle", "checks", "cycles")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %10.3f %12d %10d\n", row.Workload, row.RequestsPerCycle, row.Checks, row.Cycles)
	}
	fmt.Fprintf(&b, "%-12s %10.3f\n", "AVG", f.Average)
	return b.String()
}

// Figure6Point is one (size, miss-ratio) sample of one pages/entry curve.
type Figure6Point struct {
	Entries   int
	SizeBytes float64
	MissRatio float64
}

// Figure6Result reproduces paper Figure 6: BCC miss ratio as a function of
// BCC size in bytes, one curve per sub-blocking factor.
type Figure6Result struct {
	// Curves maps pages/entry to its size sweep.
	Curves map[int][]Figure6Point
	// PagesPerEntry lists the curve keys in order.
	PagesPerEntry []int
	// Stats aggregates the capture runs' metrics snapshots (the geometry
	// replays are functional and carry no timing).
	Stats stats.Snapshot
}

// Figure6 replays captured Border Control event traces through BCC models
// of varying geometry. Traces are captured once per workload from a
// BC-BCC run (trace-driven BCC simulation, like the paper's sweep); the
// miss ratio is averaged over the benchmarks. On the experiment-execution
// layer, trace capture is one job per workload, then each BCC geometry's
// replay is one job (a replay mutates only its own store/table/BCC, so
// geometries sweep in parallel over the shared read-only traces).
func Figure6(ctx context.Context, ex Exec, p Params) (Figure6Result, error) {
	res := Figure6Result{Curves: make(map[int][]Figure6Point), PagesPerEntry: []int{1, 2, 32, 512}}
	traces, err := captureBCTraces(ctx, ex, p)
	if err != nil {
		return res, err
	}
	snaps := make([]stats.Snapshot, 0, len(traces))
	for _, tr := range traces {
		snaps = append(snaps, tr.stats)
	}
	res.Stats = stats.Merge(snaps...)

	type geometry struct {
		ppe, entries int
	}
	var geoms []geometry
	for _, ppe := range res.PagesPerEntry {
		for _, entries := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			if bccGeometry(entries, ppe).SizeBytes() > 1100 {
				continue
			}
			geoms = append(geoms, geometry{ppe: ppe, entries: entries})
		}
	}
	points, err := exp.Map(ctx, ex.runner(), geoms,
		func(_ int, g geometry) string {
			return fmt.Sprintf("fig6/replay/%dx%d", g.entries, g.ppe)
		},
		func(_ context.Context, g geometry) (Figure6Point, error) {
			cfg := bccGeometry(g.entries, g.ppe)
			var ratios []float64
			for _, tr := range traces {
				ratios = append(ratios, replayBCCTrace(tr, cfg, p))
			}
			return Figure6Point{
				Entries:   g.entries,
				SizeBytes: cfg.SizeBytes(),
				MissRatio: stats.Mean(ratios),
			}, nil
		})
	if err != nil {
		return res, err
	}
	for i, g := range geoms {
		res.Curves[g.ppe] = append(res.Curves[g.ppe], points[i])
	}
	for _, ppe := range res.PagesPerEntry {
		sort.Slice(res.Curves[ppe], func(i, j int) bool {
			return res.Curves[ppe][i].SizeBytes < res.Curves[ppe][j].SizeBytes
		})
	}
	return res, nil
}

// Render prints Figure 6 as a text table.
func (f Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: BCC miss ratio vs BCC size (bytes), by pages per entry\n")
	for _, ppe := range f.PagesPerEntry {
		fmt.Fprintf(&b, "pages/entry=%d:\n", ppe)
		for _, pt := range f.Curves[ppe] {
			fmt.Fprintf(&b, "  %8.1f B (%4d entries): miss ratio %6.4f\n", pt.SizeBytes, pt.Entries, pt.MissRatio)
		}
	}
	return b.String()
}

// Figure7Point is one sample of the downgrade-rate sweep.
type Figure7Point struct {
	Mode             Mode
	Class            GPUClass
	DowngradesPerSec float64
	Overhead         float64 // vs the same mode/class at 0 downgrades/s... see Figure7
}

// Figure7Result reproduces paper Figure 7: runtime overhead as a function
// of permission-downgrade frequency, for BC-BCC and the unsafe ATS-only
// baseline, on both GPU classes. Overheads are relative to the ATS-only
// run with no downgrades (the paper's baseline).
type Figure7Result struct {
	Rates  []float64
	Points []Figure7Point
	// Stats aggregates the metrics snapshots of every run in both waves.
	Stats stats.Snapshot
}

// Figure7 reproduces the downgrade sweep. Simulated kernels last well under
// a millisecond, so at the paper's 10–1000 downgrades/second a single run
// would see almost no events; the overhead is linear in the rate (each
// downgrade costs a fixed stall: TLB shootdown + drain, plus — for Border
// Control — the accelerator cache flush and table update). We therefore
// measure the per-downgrade cost densely (many injections per run) and
// report overhead(rate) = baseline-overhead + rate * cost, averaged over
// the benchmark suite, exactly the quantity the paper plots.
//
// It runs on the experiment-execution layer in two waves: wave one runs
// the unsafe baselines and the zero-downgrade runs for every (class, mode,
// workload) point; wave two runs the injection experiments, whose
// injection schedule depends on the measured zero-downgrade runtime.
// Within each wave every simulation is independent.
func Figure7(ctx context.Context, ex Exec, p Params) (Figure7Result, error) {
	res := Figure7Result{Rates: []float64{0, 100, 200, 500, 1000}}
	classes := []GPUClass{HighlyThreaded, ModeratelyThreaded}
	modes := []Mode{BCBCC, ATSOnly}
	specs := workload.All()
	const injections = 40

	// Wave one: per class, the ATS-only baselines then each mode's
	// zero-downgrade runs, in the serial sweep's order.
	var wave1 []runSpec
	for _, class := range classes {
		for _, spec := range specs {
			wave1 = append(wave1, runSpec{
				Label: "fig7/" + classShort(class) + "/base/" + spec.Name,
				Mode:  ATSOnly, Class: class, Spec: spec,
			})
		}
		for _, mode := range modes {
			for _, spec := range specs {
				wave1 = append(wave1, runSpec{
					Label: "fig7/" + classShort(class) + "/zero/" + spec.Name + "/" + shortMode(mode),
					Mode:  mode, Class: class, Spec: spec,
				})
			}
		}
	}
	runs1, err := runAll(ctx, ex, p, wave1)
	if err != nil {
		return res, err
	}
	perClass := len(specs) * (1 + len(modes))
	base := func(ci, si int) RunResult { return runs1[ci*perClass+si] }
	zero := func(ci, mi, si int) RunResult {
		return runs1[ci*perClass+(1+mi)*len(specs)+si]
	}

	// Wave two: the injection runs, spread over each measured runtime.
	var wave2 []runSpec
	for ci, class := range classes {
		for mi, mode := range modes {
			for si, spec := range specs {
				wave2 = append(wave2, runSpec{
					Label: "fig7/" + classShort(class) + "/inject/" + spec.Name + "/" + shortMode(mode),
					Mode:  mode, Class: class, Spec: spec,
					Opts: RunOptions{
						FixedDowngrades: injections,
						SpreadOver:      zero(ci, mi, si).Runtime,
					},
				})
			}
		}
	}
	runs2, err := runAll(ctx, ex, p, wave2)
	if err != nil {
		return res, err
	}
	res.Stats = stats.Merge(sweepStats(runs1), sweepStats(runs2))
	inject := func(ci, mi, si int) RunResult {
		return runs2[(ci*len(modes)+mi)*len(specs)+si]
	}

	for ci, class := range classes {
		for mi, mode := range modes {
			var zeroOvs, costsSec []float64
			for si, spec := range specs {
				z, inj := zero(ci, mi, si), inject(ci, mi, si)
				if inj.VerifyErr != nil {
					return res, fmt.Errorf("harness: fig7 %s %v: %w", spec.Name, mode, inj.VerifyErr)
				}
				zeroOvs = append(zeroOvs, float64(z.Cycles)/float64(base(ci, si).Cycles)-1)
				if inj.Downgrades > 0 {
					perDowngrade := float64(inj.Runtime-z.Runtime) / float64(inj.Downgrades)
					// Cost as a fraction of a second of baseline runtime:
					// overhead contribution per (downgrade/second).
					costsSec = append(costsSec, perDowngrade/float64(sim.Second))
				}
			}
			zeroOv := stats.GeoMeanOverhead(zeroOvs)
			cost := stats.Mean(costsSec)
			if cost < 0 {
				cost = 0
			}
			for _, rate := range res.Rates {
				res.Points = append(res.Points, Figure7Point{
					Mode:             mode,
					Class:            class,
					DowngradesPerSec: rate,
					Overhead:         zeroOv + rate*cost,
				})
			}
		}
	}
	return res, nil
}

// Render prints Figure 7 as a text table.
func (f Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: runtime overhead vs permission downgrades per second\n")
	fmt.Fprintf(&b, "%-22s %-22s", "mode", "class")
	for _, r := range f.Rates {
		fmt.Fprintf(&b, " %8.0f/s", r)
	}
	b.WriteString("\n")
	key := func(m Mode, c GPUClass) string { return fmt.Sprintf("%v|%v", m, c) }
	rows := make(map[string][]float64)
	var order []string
	for _, pt := range f.Points {
		k := key(pt.Mode, pt.Class)
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		rows[k] = append(rows[k], pt.Overhead)
	}
	for _, k := range order {
		parts := strings.SplitN(k, "|", 2)
		fmt.Fprintf(&b, "%-22s %-22s", parts[0], parts[1])
		for _, ov := range rows[k] {
			fmt.Fprintf(&b, " %9.3f%%", ov*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
