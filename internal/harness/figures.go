package harness

import (
	"fmt"
	"sort"
	"strings"

	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/workload"
)

// Figure4Row is one workload's overheads relative to the unsafe baseline.
type Figure4Row struct {
	Workload  string
	Baseline  uint64           // ATS-only cycles
	Cycles    map[Mode]uint64  // per safe mode
	Overheads map[Mode]float64 // cycles/baseline - 1
}

// Figure4Result reproduces paper Figure 4 (one GPU class).
type Figure4Result struct {
	Class GPUClass
	Rows  []Figure4Row
	// GeoMean holds the geometric-mean overhead per mode, the numbers the
	// paper quotes in the text (374%, 3.81%, 2.04%, 0.15% for 4a).
	GeoMean map[Mode]float64
}

// Figure4 runs all seven workloads under the baseline and the four safe
// configurations for the given GPU class.
func Figure4(class GPUClass, p Params) (Figure4Result, error) {
	res := Figure4Result{Class: class, GeoMean: make(map[Mode]float64)}
	per := make(map[Mode][]float64)
	for _, spec := range workload.All() {
		base, err := Run(ATSOnly, class, spec, p, RunOptions{})
		if err != nil {
			return res, err
		}
		if base.VerifyErr != nil {
			return res, fmt.Errorf("harness: %s baseline results wrong: %w", spec.Name, base.VerifyErr)
		}
		row := Figure4Row{
			Workload:  spec.Name,
			Baseline:  base.Cycles,
			Cycles:    make(map[Mode]uint64),
			Overheads: make(map[Mode]float64),
		}
		for _, mode := range SafeModes() {
			r, err := Run(mode, class, spec, p, RunOptions{})
			if err != nil {
				return res, err
			}
			if r.VerifyErr != nil {
				return res, fmt.Errorf("harness: %s on %v results wrong: %w", spec.Name, mode, r.VerifyErr)
			}
			row.Cycles[mode] = r.Cycles
			ov := float64(r.Cycles)/float64(base.Cycles) - 1
			row.Overheads[mode] = ov
			per[mode] = append(per[mode], ov)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, mode := range SafeModes() {
		res.GeoMean[mode] = stats.GeoMeanOverhead(per[mode])
	}
	return res, nil
}

// Render prints the figure as a text table.
func (f Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s GPU): runtime overhead vs ATS-only IOMMU baseline\n", f.Class)
	fmt.Fprintf(&b, "%-12s %12s", "workload", "base cycles")
	for _, m := range SafeModes() {
		fmt.Fprintf(&b, " %12s", shortMode(m))
	}
	b.WriteString("\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %12d", row.Workload, row.Baseline)
		for _, m := range SafeModes() {
			fmt.Fprintf(&b, " %11.2f%%", row.Overheads[m]*100)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s %12s", "geomean", "")
	for _, m := range SafeModes() {
		fmt.Fprintf(&b, " %11.2f%%", f.GeoMean[m]*100)
	}
	b.WriteString("\n")
	return b.String()
}

func shortMode(m Mode) string {
	switch m {
	case ATSOnly:
		return "ATS-only"
	case FullIOMMU:
		return "IOMMU"
	case CAPILike:
		return "CAPI"
	case BCNoBCC:
		return "BC-noBCC"
	case BCBCC:
		return "BC-BCC"
	}
	return m.String()
}

// Figure5Row is one workload's border-check rate.
type Figure5Row struct {
	Workload string
	// RequestsPerCycle is the number of requests checked by Border Control
	// per GPU cycle (paper Figure 5; mean 0.11, 0.025 for backprop up to
	// 0.29 for bfs).
	RequestsPerCycle float64
	Checks           uint64
	Cycles           uint64
}

// Figure5Result reproduces paper Figure 5.
type Figure5Result struct {
	Rows    []Figure5Row
	Average float64
}

// Figure5 measures requests/cycle checked by Border Control on the highly
// threaded GPU under BC-BCC.
func Figure5(p Params) (Figure5Result, error) {
	var res Figure5Result
	var rates []float64
	for _, spec := range workload.All() {
		r, err := Run(BCBCC, HighlyThreaded, spec, p, RunOptions{})
		if err != nil {
			return res, err
		}
		row := Figure5Row{
			Workload:         spec.Name,
			RequestsPerCycle: r.RequestsPerCycle(),
			Checks:           r.BCChecks,
			Cycles:           r.Cycles,
		}
		res.Rows = append(res.Rows, row)
		rates = append(rates, row.RequestsPerCycle)
	}
	res.Average = stats.Mean(rates)
	return res, nil
}

// Render prints Figure 5 as a text table.
func (f Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 (highly threaded GPU): requests per cycle checked by Border Control\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "workload", "req/cycle", "checks", "cycles")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %10.3f %12d %10d\n", row.Workload, row.RequestsPerCycle, row.Checks, row.Cycles)
	}
	fmt.Fprintf(&b, "%-12s %10.3f\n", "AVG", f.Average)
	return b.String()
}

// Figure6Point is one (size, miss-ratio) sample of one pages/entry curve.
type Figure6Point struct {
	Entries   int
	SizeBytes float64
	MissRatio float64
}

// Figure6Result reproduces paper Figure 6: BCC miss ratio as a function of
// BCC size in bytes, one curve per sub-blocking factor.
type Figure6Result struct {
	// Curves maps pages/entry to its size sweep.
	Curves map[int][]Figure6Point
	// PagesPerEntry lists the curve keys in order.
	PagesPerEntry []int
}

// Figure6 replays captured Border Control event traces through BCC models
// of varying geometry. Traces are captured once per workload from a
// BC-BCC run (trace-driven BCC simulation, like the paper's sweep); the
// miss ratio is averaged over the benchmarks.
func Figure6(p Params) (Figure6Result, error) {
	res := Figure6Result{Curves: make(map[int][]Figure6Point), PagesPerEntry: []int{1, 2, 32, 512}}
	traces, err := captureBCTraces(p)
	if err != nil {
		return res, err
	}
	for _, ppe := range res.PagesPerEntry {
		for _, entries := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			cfg := bccGeometry(entries, ppe)
			if cfg.SizeBytes() > 1100 {
				continue
			}
			var ratios []float64
			for _, tr := range traces {
				ratios = append(ratios, replayBCCTrace(tr, cfg, p))
			}
			res.Curves[ppe] = append(res.Curves[ppe], Figure6Point{
				Entries:   entries,
				SizeBytes: cfg.SizeBytes(),
				MissRatio: stats.Mean(ratios),
			})
		}
		sort.Slice(res.Curves[ppe], func(i, j int) bool {
			return res.Curves[ppe][i].SizeBytes < res.Curves[ppe][j].SizeBytes
		})
	}
	return res, nil
}

// Render prints Figure 6 as a text table.
func (f Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: BCC miss ratio vs BCC size (bytes), by pages per entry\n")
	for _, ppe := range f.PagesPerEntry {
		fmt.Fprintf(&b, "pages/entry=%d:\n", ppe)
		for _, pt := range f.Curves[ppe] {
			fmt.Fprintf(&b, "  %8.1f B (%4d entries): miss ratio %6.4f\n", pt.SizeBytes, pt.Entries, pt.MissRatio)
		}
	}
	return b.String()
}

// Figure7Point is one sample of the downgrade-rate sweep.
type Figure7Point struct {
	Mode             Mode
	Class            GPUClass
	DowngradesPerSec float64
	Overhead         float64 // vs the same mode/class at 0 downgrades/s... see Figure7
}

// Figure7Result reproduces paper Figure 7: runtime overhead as a function
// of permission-downgrade frequency, for BC-BCC and the unsafe ATS-only
// baseline, on both GPU classes. Overheads are relative to the ATS-only
// run with no downgrades (the paper's baseline).
type Figure7Result struct {
	Rates  []float64
	Points []Figure7Point
}

// Figure7 reproduces the downgrade sweep. Simulated kernels last well under
// a millisecond, so at the paper's 10–1000 downgrades/second a single run
// would see almost no events; the overhead is linear in the rate (each
// downgrade costs a fixed stall: TLB shootdown + drain, plus — for Border
// Control — the accelerator cache flush and table update). We therefore
// measure the per-downgrade cost densely (many injections per run) and
// report overhead(rate) = baseline-overhead + rate * cost, averaged over
// the benchmark suite, exactly the quantity the paper plots.
func Figure7(p Params) (Figure7Result, error) {
	res := Figure7Result{Rates: []float64{0, 100, 200, 500, 1000}}
	classes := []GPUClass{HighlyThreaded, ModeratelyThreaded}
	specs := workload.All()
	const injections = 40

	for _, class := range classes {
		// Unsafe baseline runtimes at zero downgrades.
		base := make(map[string]RunResult)
		for _, spec := range specs {
			r, err := Run(ATSOnly, class, spec, p, RunOptions{})
			if err != nil {
				return res, err
			}
			base[spec.Name] = r
		}
		for _, mode := range []Mode{BCBCC, ATSOnly} {
			var zeroOvs, costsSec []float64
			for _, spec := range specs {
				zero, err := Run(mode, class, spec, p, RunOptions{})
				if err != nil {
					return res, err
				}
				inj, err := Run(mode, class, spec, p, RunOptions{
					FixedDowngrades: injections,
					SpreadOver:      zero.Runtime,
				})
				if err != nil {
					return res, err
				}
				if inj.VerifyErr != nil {
					return res, fmt.Errorf("harness: fig7 %s %v: %w", spec.Name, mode, inj.VerifyErr)
				}
				zeroOvs = append(zeroOvs, float64(zero.Cycles)/float64(base[spec.Name].Cycles)-1)
				if inj.Downgrades > 0 {
					perDowngrade := float64(inj.Runtime-zero.Runtime) / float64(inj.Downgrades)
					// Cost as a fraction of a second of baseline runtime:
					// overhead contribution per (downgrade/second).
					costsSec = append(costsSec, perDowngrade/float64(sim.Second))
				}
			}
			zeroOv := stats.GeoMeanOverhead(zeroOvs)
			cost := stats.Mean(costsSec)
			if cost < 0 {
				cost = 0
			}
			for _, rate := range res.Rates {
				res.Points = append(res.Points, Figure7Point{
					Mode:             mode,
					Class:            class,
					DowngradesPerSec: rate,
					Overhead:         zeroOv + rate*cost,
				})
			}
		}
	}
	return res, nil
}

// Render prints Figure 7 as a text table.
func (f Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: runtime overhead vs permission downgrades per second\n")
	fmt.Fprintf(&b, "%-22s %-22s", "mode", "class")
	for _, r := range f.Rates {
		fmt.Fprintf(&b, " %8.0f/s", r)
	}
	b.WriteString("\n")
	key := func(m Mode, c GPUClass) string { return fmt.Sprintf("%v|%v", m, c) }
	rows := make(map[string][]float64)
	var order []string
	for _, pt := range f.Points {
		k := key(pt.Mode, pt.Class)
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		rows[k] = append(rows[k], pt.Overhead)
	}
	for _, k := range order {
		parts := strings.SplitN(k, "|", 2)
		fmt.Fprintf(&b, "%-22s %-22s", parts[0], parts[1])
		for _, ov := range rows[k] {
			fmt.Fprintf(&b, " %9.3f%%", ov*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
