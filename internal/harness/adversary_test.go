package harness

import (
	"context"
	"strings"
	"testing"

	"bordercontrol/internal/adversary"
	"bordercontrol/internal/core"
)

// The full campaign sweep must hold (no escapes, no residue) and must be a
// pure function of its seed: two runs render byte-identically even though
// the cells execute in parallel.
func TestAdversaryReportHoldsAndIsDeterministic(t *testing.T) {
	p := DefaultParams()
	run := func() adversary.Report {
		t.Helper()
		rep, err := AdversaryReport(context.Background(), Exec{}, p, 42, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Failed() {
		t.Fatalf("sandbox breached:\n%s", adversary.Render(a))
	}
	if adversary.Render(a) != adversary.Render(b) {
		t.Fatal("same seed rendered two different reports")
	}
	if got := len(a.Results); got != 4*len(adversary.AttackNames()) {
		t.Fatalf("got %d results, want %d", got, 4*len(adversary.AttackNames()))
	}
	for _, res := range a.Results {
		if res.Blocked == 0 {
			t.Errorf("%s (seed %d): no adversarial probe was exercised", res.Attack, res.Seed)
		}
		if res.Denied == 0 {
			t.Errorf("%s (seed %d): the border never denied anything", res.Attack, res.Seed)
		}
	}
}

func TestAdversaryReportRejectsUnknownAttack(t *testing.T) {
	_, err := AdversaryReport(context.Background(), Exec{}, DefaultParams(), 1, 1, []string{"warp-core-breach"})
	if err == nil || !strings.Contains(err.Error(), "unknown attack") {
		t.Fatalf("want unknown-attack error, got %v", err)
	}
}

// TestAdversaryAllDesigns runs the full attack vocabulary against every
// registered border design. The designs differ in when permission state
// moves (deferred huge grants, range mirrors), which is exactly where an
// escape would hide; the shadow-memory oracle must stay silent for all of
// them, across all four protocol variants (the campaign rotation).
func TestAdversaryAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign sweep per design")
	}
	for _, design := range core.Designs() {
		design := design
		t.Run(design, func(t *testing.T) {
			t.Parallel()
			p := DefaultParams()
			p.Border = design
			rep, err := AdversaryReport(context.Background(), Exec{}, p, 42, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				t.Fatalf("design %q breached:\n%s", design, adversary.Render(rep))
			}
			if got := len(rep.Results); got != 4*len(adversary.AttackNames()) {
				t.Fatalf("got %d results, want %d", got, 4*len(adversary.AttackNames()))
			}
			for _, res := range rep.Results {
				if res.Blocked == 0 {
					t.Errorf("%s (seed %d): no adversarial probe was exercised", res.Attack, res.Seed)
				}
			}
		})
	}
}
