package harness

import (
	"context"
	"fmt"
	"strings"

	"bordercontrol/internal/core"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/workload"
)

// FigureBordersRow is one workload's overheads relative to the unsafe
// baseline, per registered border design (all under BC-BCC).
type FigureBordersRow struct {
	Workload  string
	Baseline  uint64             // ATS-only cycles
	Cycles    map[string]uint64  // per design
	Overheads map[string]float64 // cycles/baseline - 1, per design
}

// FigureBordersResult is the design-comparison figure: the Figure 4 BC-BCC
// sweep repeated for every registered protection architecture, so the cost
// of each border design is directly comparable on the paper's workloads.
// Every design enforces the same decisions (see DESIGN.md §14); only the
// timing and traffic of carrying them differ, which is exactly what this
// figure isolates.
type FigureBordersResult struct {
	Class   GPUClass
	Designs []string // registry order (sorted); "flat" is the paper's design
	Rows    []FigureBordersRow
	// GeoMean holds the geometric-mean overhead per design.
	GeoMean map[string]float64
	// Stats aggregates the metrics snapshots of every run in the sweep.
	Stats stats.Snapshot
}

// FigureBorders runs all workloads under ATS-only (baseline) and then
// under BC-BCC once per registered border design, for the given GPU class,
// on the experiment-execution layer. Each design's runs carry a per-job
// Params override (Params.Border); everything else about the sweep is the
// Figure 4 recipe, so the flat column reproduces Figure 4's BC-BCC column.
func FigureBorders(ctx context.Context, ex Exec, class GPUClass, p Params) (FigureBordersResult, error) {
	res := FigureBordersResult{
		Class:   class,
		Designs: core.Designs(),
		GeoMean: make(map[string]float64),
	}
	specs := workload.All()

	var list []runSpec
	for _, spec := range specs {
		list = append(list, runSpec{
			Label: "borders/" + classShort(class) + "/" + spec.Name + "/base",
			Mode:  ATSOnly, Class: class, Spec: spec,
		})
		for _, design := range res.Designs {
			dp := p
			dp.Border = design
			list = append(list, runSpec{
				Label: "borders/" + classShort(class) + "/" + spec.Name + "/" + design,
				Mode:  BCBCC, Class: class, Spec: spec, P: &dp,
			})
		}
	}
	runs, err := runAll(ctx, ex, p, list)
	if err != nil {
		return res, err
	}
	res.Stats = sweepStats(runs)

	per := make(map[string][]float64)
	next := 0
	for _, spec := range specs {
		base := runs[next]
		next++
		if base.VerifyErr != nil {
			return res, fmt.Errorf("harness: %s baseline results wrong: %w", spec.Name, base.VerifyErr)
		}
		row := FigureBordersRow{
			Workload:  spec.Name,
			Baseline:  base.Cycles,
			Cycles:    make(map[string]uint64),
			Overheads: make(map[string]float64),
		}
		for _, design := range res.Designs {
			r := runs[next]
			next++
			if r.VerifyErr != nil {
				return res, fmt.Errorf("harness: %s under design %q results wrong: %w", spec.Name, design, r.VerifyErr)
			}
			row.Cycles[design] = r.Cycles
			ov := float64(r.Cycles)/float64(base.Cycles) - 1
			row.Overheads[design] = ov
			per[design] = append(per[design], ov)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, design := range res.Designs {
		res.GeoMean[design] = stats.GeoMeanOverhead(per[design])
	}
	return res, nil
}

// Render prints the design comparison as a text table.
func (f FigureBordersResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Border designs (%s GPU): BC-BCC runtime overhead vs ATS-only baseline, per design\n", f.Class)
	fmt.Fprintf(&b, "%-12s %12s", "workload", "base cycles")
	for _, d := range f.Designs {
		fmt.Fprintf(&b, " %12s", d)
	}
	b.WriteString("\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-12s %12d", row.Workload, row.Baseline)
		for _, d := range f.Designs {
			fmt.Fprintf(&b, " %11.2f%%", row.Overheads[d]*100)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s %12s", "geomean", "")
	for _, d := range f.Designs {
		fmt.Fprintf(&b, " %11.2f%%", f.GeoMean[d]*100)
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the comparison as workload,design,baseline_cycles,cycles,overhead.
func (f FigureBordersResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,design,baseline_cycles,cycles,overhead\n")
	for _, row := range f.Rows {
		for _, d := range f.Designs {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%.6f\n",
				row.Workload, d, row.Baseline, row.Cycles[d], row.Overheads[d])
		}
	}
	for _, d := range f.Designs {
		fmt.Fprintf(&b, "geomean,%s,,,%.6f\n", d, f.GeoMean[d])
	}
	return b.String()
}
