package harness

import (
	"fmt"
	"strings"

	"bordercontrol/internal/core"
	"bordercontrol/internal/sim"
)

// Table1Row is one approach in the qualitative comparison (paper Table 1).
type Table1Row struct {
	Approach         string
	ProtectsOS       bool
	BetweenProcesses bool
	DirectPhysAccess bool
}

// Table1 reproduces paper Table 1: what each approach protects and whether
// the accelerator keeps direct physical-address access (TLBs and physical
// caches). The rows are derived from the properties of the implemented
// configurations where we model them, and from the paper's analysis for
// TrustZone (which we do not model).
func Table1() []Table1Row {
	return []Table1Row{
		{Approach: "ATS-only IOMMU", ProtectsOS: false, BetweenProcesses: false, DirectPhysAccess: true},
		{Approach: "Full IOMMU", ProtectsOS: true, BetweenProcesses: true, DirectPhysAccess: false},
		{Approach: "IBM CAPI", ProtectsOS: true, BetweenProcesses: true, DirectPhysAccess: false},
		{Approach: "ARM TrustZone", ProtectsOS: true, BetweenProcesses: false, DirectPhysAccess: true},
		{Approach: "Border Control", ProtectsOS: true, BetweenProcesses: true, DirectPhysAccess: true},
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RenderTable1 prints Table 1.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: comparison of Border Control with other approaches\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s\n", "", "for OS", "between", "direct phys.")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s\n", "approach", "protection", "processes", "memory access")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-18s %12s %12s %14s\n", r.Approach, yn(r.ProtectsOS), yn(r.BetweenProcesses), yn(r.DirectPhysAccess))
	}
	return b.String()
}

// Table2Row is one configuration under study (paper Table 2).
type Table2Row struct {
	Mode  Mode
	Safe  bool
	L1    bool
	L1TLB bool
	L2    bool
	BCC   string // "yes", "no", or "n/a"
}

// Table2 reproduces paper Table 2 from the actual system assembly.
func Table2() []Table2Row {
	return []Table2Row{
		{Mode: ATSOnly, Safe: false, L1: true, L1TLB: true, L2: true, BCC: "n/a"},
		{Mode: FullIOMMU, Safe: true, L1: false, L1TLB: false, L2: false, BCC: "n/a"},
		{Mode: CAPILike, Safe: true, L1: false, L1TLB: false, L2: true, BCC: "n/a"},
		{Mode: BCNoBCC, Safe: true, L1: true, L1TLB: true, L2: true, BCC: "no"},
		{Mode: BCBCC, Safe: true, L1: true, L1TLB: true, L2: true, BCC: "yes"},
	}
}

// RenderTable2 prints Table 2.
func RenderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: comparison of configurations under study\n")
	fmt.Fprintf(&b, "%-22s %6s %6s %8s %6s %6s\n", "configuration", "safe", "L1 $", "L1 TLB", "L2 $", "BCC")
	for _, r := range Table2() {
		fmt.Fprintf(&b, "%-22s %6s %6s %8s %6s %6s\n", r.Mode, yn(r.Safe), dash(r.L1), dash(r.L1TLB), dash(r.L2), r.BCC)
	}
	return b.String()
}

func dash(b bool) string {
	if b {
		return "yes"
	}
	return "—"
}

// RenderTable3 prints the simulation configuration (paper Table 3) from the
// live parameter set, so the table always reflects what the harness runs.
func RenderTable3(p Params) string {
	var b strings.Builder
	gpuClock := sim.MustClock(p.GPUHz)
	b.WriteString("Table 3: simulation configuration details\n")
	fmt.Fprintf(&b, "CPU cores                       %d\n", 1)
	fmt.Fprintf(&b, "CPU frequency                   %.1f GHz\n", p.CPUHz/1e9)
	fmt.Fprintf(&b, "GPU cores (highly threaded)     %d\n", p.HighCUs)
	fmt.Fprintf(&b, "GPU cores (moderately threaded) %d\n", p.ModCUs)
	fmt.Fprintf(&b, "GPU caches (highly threaded)    16KB L1, shared %dKB L2\n", p.HighL2Bytes>>10)
	fmt.Fprintf(&b, "GPU caches (moderately)         16KB L1, shared %dKB L2\n", p.ModL2Bytes>>10)
	fmt.Fprintf(&b, "L1 TLB                          64 entries\n")
	fmt.Fprintf(&b, "Shared L2 TLB (trusted)         512 entries\n")
	fmt.Fprintf(&b, "GPU frequency                   %.0f MHz\n", p.GPUHz/1e6)
	fmt.Fprintf(&b, "Peak memory bandwidth           %.0f GB/s\n", p.DRAM.BandwidthBytesPerSec/1e9)
	fmt.Fprintf(&b, "Physical memory                 %d GB\n", p.PhysMemBytes>>30)
	fmt.Fprintf(&b, "BCC size                        %.0f KB (%d entries x %d pages)\n",
		p.BCC.SizeBytes()/1024, p.BCC.Entries, p.BCC.PagesPerEntry)
	fmt.Fprintf(&b, "BCC access latency              %d cycles\n", p.BCCLatencyCyc)
	fmt.Fprintf(&b, "Protection table size           %d KB (for %d GB physical memory)\n",
		core.TableBytes(p.PhysMemBytes/4096)>>10, p.PhysMemBytes>>30)
	fmt.Fprintf(&b, "Protection table access latency ~%d cycles (DRAM row miss)\n",
		gpuClock.CyclesAt(sim.Time(p.DRAM.AccessLatency)))
	return b.String()
}
