package harness

import (
	"fmt"
	"strings"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
)

// Normalize returns the params a caller actually meant: the zero value
// becomes DefaultParams (the Table 3 system), anything else passes through
// unchanged. This replaces field-sniffing ("GPUHz == 0 means defaults") at
// the call sites — a partially-filled Params is NOT normalized and will be
// rejected by Validate with a message naming the missing field.
func (p Params) Normalize() Params {
	if p == (Params{}) {
		return DefaultParams()
	}
	// An unset Border means the paper's flat design — the one value with
	// an unambiguous default (pre-Border Params literals keep working).
	if p.Border == "" {
		p.Border = core.DefaultDesign
	}
	return p
}

// Validate checks every field a System assembly depends on and returns a
// descriptive error for the first problem found. The zero value fails;
// start from DefaultParams (or call Normalize) and override from there.
func (p Params) Validate() error {
	if p == (Params{}) {
		return fmt.Errorf("harness: zero Params; start from DefaultParams() or call Normalize()")
	}
	fail := func(field, format string, args ...interface{}) error {
		return fmt.Errorf("harness: invalid Params.%s: %s (start from DefaultParams and override)",
			field, fmt.Sprintf(format, args...))
	}
	if p.PhysMemBytes == 0 || p.PhysMemBytes%arch.PageSize != 0 {
		return fail("PhysMemBytes", "%d is not a positive multiple of the %d-byte page", p.PhysMemBytes, arch.PageSize)
	}
	if p.CPUHz <= 0 || p.CPUHz > 1e12 {
		return fail("CPUHz", "%v Hz outside (0, 1 THz]", p.CPUHz)
	}
	if p.GPUHz <= 0 || p.GPUHz > 1e12 {
		return fail("GPUHz", "%v Hz outside (0, 1 THz]", p.GPUHz)
	}
	if p.DRAM.Channels <= 0 {
		return fail("DRAM.Channels", "need at least one channel, got %d", p.DRAM.Channels)
	}
	if p.DRAM.BandwidthBytesPerSec <= 0 {
		return fail("DRAM.BandwidthBytesPerSec", "non-positive bandwidth %v", p.DRAM.BandwidthBytesPerSec)
	}
	if p.HighCUs <= 0 || p.HighWavesPerCU <= 0 {
		return fail("HighCUs/HighWavesPerCU", "need positive GPU geometry, got %d CUs x %d waves", p.HighCUs, p.HighWavesPerCU)
	}
	if p.ModCUs <= 0 || p.ModWavesPerCU <= 0 {
		return fail("ModCUs/ModWavesPerCU", "need positive GPU geometry, got %d CUs x %d waves", p.ModCUs, p.ModWavesPerCU)
	}
	if p.HighL2Bytes <= 0 {
		return fail("HighL2Bytes", "need a positive L2 size, got %d", p.HighL2Bytes)
	}
	if p.ModL2Bytes <= 0 {
		return fail("ModL2Bytes", "need a positive L2 size, got %d", p.ModL2Bytes)
	}
	if !core.KnownDesign(p.Border) {
		return fail("Border", "unknown border design %q; registered designs: %s",
			p.Border, strings.Join(core.Designs(), ", "))
	}
	if err := p.BCC.Validate(); err != nil {
		return fail("BCC", "%v", err)
	}
	if p.Scale < 1 {
		return fail("Scale", "workload scale must be >= 1, got %d", p.Scale)
	}
	return nil
}
