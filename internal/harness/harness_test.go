package harness

import (
	"context"
	"strings"
	"testing"

	"bordercontrol/internal/sim"
	"bordercontrol/internal/workload"
)

func TestModeProperties(t *testing.T) {
	if len(Modes()) != 5 || len(SafeModes()) != 4 {
		t.Fatal("mode lists wrong")
	}
	if ATSOnly.Safe() {
		t.Error("the baseline is unsafe by definition")
	}
	for _, m := range SafeModes() {
		if !m.Safe() {
			t.Errorf("%v should be safe", m)
		}
	}
	if ATSOnly.String() == "" || Mode(99).String() == "" {
		t.Error("String() must always print")
	}
}

func TestTablesRender(t *testing.T) {
	t1 := RenderTable1()
	for _, want := range []string{"Border Control", "TrustZone", "CAPI", "yes", "no"} {
		if !strings.Contains(t1, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
	if len(Table1()) != 5 {
		t.Error("table 1 should have five approaches")
	}
	// Border Control is the only row with all three properties.
	for _, r := range Table1() {
		all := r.ProtectsOS && r.BetweenProcesses && r.DirectPhysAccess
		if all != (r.Approach == "Border Control") {
			t.Errorf("row %q: paper's table 1 claim violated", r.Approach)
		}
	}
	t2 := RenderTable2()
	if !strings.Contains(t2, "Border Control-BCC") || !strings.Contains(t2, "ATS-only") {
		t.Error("table 2 incomplete")
	}
	t3 := RenderTable3(DefaultParams())
	for _, want := range []string{"700 MHz", "180 GB/s", "8 KB", "1024 KB", "512 entries"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table 3 missing %q:\n%s", want, t3)
		}
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.PhysMemBytes != 16<<30 {
		t.Error("paper simulates 16 GB")
	}
	if p.GPUHz != 700e6 || p.CPUHz != 3e9 {
		t.Error("clock frequencies off")
	}
	if p.HighCUs != 8 || p.ModCUs != 1 {
		t.Error("GPU core counts off")
	}
	if p.HighL2Bytes != 256<<10 || p.ModL2Bytes != 64<<10 {
		t.Error("L2 sizes off")
	}
	if p.BCC.Entries != 64 || p.BCC.PagesPerEntry != 512 {
		t.Error("BCC geometry off")
	}
	if p.DRAM.BandwidthBytesPerSec != 180e9 {
		t.Error("bandwidth off")
	}
}

func TestRunReportsStatistics(t *testing.T) {
	spec, _ := workload.ByName("pathfinder")
	res, err := Run(BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "pathfinder" || res.Mode != BCBCC || res.Class != HighlyThreaded {
		t.Error("identity fields wrong")
	}
	if res.Cycles == 0 || res.Ops == 0 || res.Runtime == 0 {
		t.Error("zero measurements")
	}
	if res.BCChecks == 0 {
		t.Error("BC mode must check requests")
	}
	if res.RequestsPerCycle() <= 0 || res.RequestsPerCycle() > 2 {
		t.Errorf("req/cycle = %v, implausible", res.RequestsPerCycle())
	}
	if res.VerifyErr != nil {
		t.Errorf("results wrong: %v", res.VerifyErr)
	}
	if res.DRAMUtilization <= 0 || res.DRAMUtilization > 1 {
		t.Errorf("dram util = %v", res.DRAMUtilization)
	}
}

func TestRunBaselineHasNoChecks(t *testing.T) {
	spec, _ := workload.ByName("pathfinder")
	res, err := Run(ATSOnly, HighlyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BCChecks != 0 || res.BCCMissRatio != 0 {
		t.Error("baseline reported BC statistics")
	}
	if res.RequestsPerCycle() != 0 {
		t.Error("baseline req/cycle should be zero")
	}
}

func TestFixedDowngradeInjection(t *testing.T) {
	spec, _ := workload.ByName("pathfinder")
	quiet, err := Run(BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(BCBCC, HighlyThreaded, spec, DefaultParams(), RunOptions{
		FixedDowngrades: 10,
		SpreadOver:      quiet.Runtime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Downgrades != 10 {
		t.Errorf("injected %d downgrades, want exactly 10", res.Downgrades)
	}
	if res.Cycles <= quiet.Cycles {
		t.Error("downgrades should cost time")
	}
	if res.VerifyErr != nil {
		t.Errorf("downgrades corrupted results: %v", res.VerifyErr)
	}
}

func TestDowngradeCostOrdering(t *testing.T) {
	// The paper's Figure 7 relationship: Border Control pays more per
	// downgrade than the trusted baseline (it also flushes caches and
	// updates the table), and both costs are bounded.
	spec, _ := workload.ByName("pathfinder")
	cost := func(mode Mode) sim.Time {
		quiet, err := Run(mode, HighlyThreaded, spec, DefaultParams(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := Run(mode, HighlyThreaded, spec, DefaultParams(), RunOptions{
			FixedDowngrades: 20, SpreadOver: quiet.Runtime,
		})
		if err != nil {
			t.Fatal(err)
		}
		if inj.Downgrades == 0 {
			t.Fatal("nothing injected")
		}
		return (inj.Runtime - quiet.Runtime) / sim.Time(inj.Downgrades)
	}
	bcCost, baseCost := cost(BCBCC), cost(ATSOnly)
	if bcCost <= baseCost {
		t.Errorf("BC per-downgrade cost %d <= baseline %d; BC must pay the extra flush", bcCost, baseCost)
	}
	if bcCost > 20*sim.Microsecond {
		t.Errorf("per-downgrade cost %d ps is implausibly large", bcCost)
	}
}

func TestUnknownModePanicsNewSystem(t *testing.T) {
	if _, err := NewSystem(Mode(42), HighlyThreaded, DefaultParams()); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestFigure6GeometryHelpers(t *testing.T) {
	cfg := bccGeometry(64, 512)
	if cfg.Entries != 64 || cfg.PagesPerEntry != 512 {
		t.Error("geometry helper wrong")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCSVExports(t *testing.T) {
	f4 := Figure4Result{
		Class: HighlyThreaded,
		Rows: []Figure4Row{{
			Workload:  "bfs",
			Baseline:  100,
			Cycles:    map[Mode]uint64{FullIOMMU: 400, CAPILike: 110, BCNoBCC: 105, BCBCC: 100},
			Overheads: map[Mode]float64{FullIOMMU: 3, CAPILike: 0.1, BCNoBCC: 0.05, BCBCC: 0},
		}},
		GeoMean: map[Mode]float64{FullIOMMU: 3, CAPILike: 0.1, BCNoBCC: 0.05, BCBCC: 0},
	}
	csv := f4.CSV()
	if !strings.Contains(csv, "bfs,IOMMU,100,400,3.000000") {
		t.Errorf("figure 4 CSV wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "geomean,BC-BCC") {
		t.Error("figure 4 CSV missing geomean rows")
	}
	f5 := Figure5Result{Rows: []Figure5Row{{Workload: "bfs", Checks: 10, Cycles: 100, RequestsPerCycle: 0.1}}, Average: 0.1}
	if !strings.Contains(f5.CSV(), "bfs,10,100,0.100000") {
		t.Error("figure 5 CSV wrong")
	}
	f6 := Figure6Result{
		PagesPerEntry: []int{512},
		Curves:        map[int][]Figure6Point{512: {{Entries: 2, SizeBytes: 265, MissRatio: 0.001}}},
	}
	if !strings.Contains(f6.CSV(), "512,2,265.0,0.001000") {
		t.Error("figure 6 CSV wrong")
	}
	f7 := Figure7Result{Points: []Figure7Point{{Mode: BCBCC, Class: HighlyThreaded, DowngradesPerSec: 1000, Overhead: 0.002}}}
	if !strings.Contains(f7.CSV(), "BC-BCC,highly threaded,1000,0.002000") {
		t.Error("figure 7 CSV wrong")
	}
}

func TestSecurityMatrix(t *testing.T) {
	results, err := SecurityMatrix(context.Background(), Exec{}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(SecurityConfigs())*len(Attacks()) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		switch r.Config {
		case "ATS-only":
			if r.Blocked {
				t.Errorf("the unsafe baseline unexpectedly blocked %s — the threat would not exist", r.Attack)
			}
		case "TrustZone":
			// TrustZone protects the secure world only (paper Table 1):
			// it blocks the OS probe and nothing between processes.
			wantBlocked := r.Attack == AttackSecureRead
			if r.Blocked != wantBlocked {
				t.Errorf("TrustZone on %s: blocked=%v, want %v (%s)", r.Attack, r.Blocked, wantBlocked, r.Detail)
			}
		case "BC-noBCC", "BC-BCC":
			if !r.Blocked {
				t.Errorf("%s failed to block %s: %s", r.Config, r.Attack, r.Detail)
			}
		}
	}
	rendered := RenderSecurityMatrix(results)
	if !strings.Contains(rendered, "BLOCKED") || !strings.Contains(rendered, "VULNERABLE") {
		t.Errorf("render incomplete:\n%s", rendered)
	}
}
