package harness

import (
	"context"
	"fmt"
	"time"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/tracerec"
)

// SegmentResult reports one process segment of a trace run.
type SegmentResult struct {
	Name string
	// ASID is the identity the OS assigned the segment's process. The OS
	// never reuses a live ASID; churn scenarios assert uniqueness across
	// the whole run.
	ASID arch.ASID
	// Runtime is the segment's simulated kernel duration.
	Runtime sim.Time
	// Ops is the number of memory operations the segment completed.
	Ops uint64
	// ProbesGranted / ProbesDenied count the segment's adversarial border
	// crossings by outcome. Safe modes must deny all of them.
	ProbesGranted uint64
	ProbesDenied  uint64
	// VerifyErr reports an image mismatch (nil when correct, or when the
	// segment carries no image).
	VerifyErr error
}

// TraceRunResult reports a whole trace execution: every segment in order,
// plus run-wide totals matching RunResult's vocabulary.
type TraceRunResult struct {
	Workload string
	Mode     Mode
	Class    GPUClass

	Segments []SegmentResult

	// SimTime is the total simulated time the run consumed (the engine
	// clock after the last segment drained).
	SimTime sim.Time
	// Ops is the total memory-operation count.
	Ops uint64
	// BCChecks / BCCMissRatio as in RunResult.
	BCChecks     uint64
	BCCMissRatio float64

	// Stats is the system's full metrics snapshot after the last segment.
	Stats stats.Snapshot
	// Host is the host-side self-measurement (whole run).
	Host HostStats
}

// RunTrace executes a recorded or generated trace on a fresh system.
func RunTrace(mode Mode, class GPUClass, tr *tracerec.Trace, p Params, opts RunOptions) (TraceRunResult, error) {
	return RunTraceCtx(context.Background(), mode, class, tr, p, opts)
}

// RunTraceCtx replays every segment of tr through one simulated machine,
// in order: fresh process, replayed address space, process start on the
// accelerator, kernel launch, adversarial probes at their recorded times,
// process completion, exit. Multi-segment traces exercise exactly the
// lifecycle the paper's Figure 3 walks through — thousands of short-lived
// ASIDs hammering ProcessStart/ProcessComplete and the exit-time
// downgrade flush — without a generator in the loop.
//
// Determinism contract: for a given (trace, mode, class, params), the
// result — every simulated time, count, and stats snapshot — is
// bit-identical at any opts.Shards setting and any worker count.
func RunTraceCtx(ctx context.Context, mode Mode, class GPUClass, tr *tracerec.Trace, p Params, opts RunOptions) (TraceRunResult, error) {
	fail := func(stage string, err error) (TraceRunResult, error) {
		return TraceRunResult{}, &RunError{Workload: tr.Workload, Mode: mode, Class: class, Stage: stage, Err: err}
	}
	var se *sim.ShardedEngine
	eng := &sim.Engine{}
	if opts.Shards > 0 {
		se = sim.NewShardedEngine(1, sim.Microsecond)
		se.Workers = opts.Shards
		eng = se.Shard(0)
	}
	sys, err := NewSystemWithEngine(eng, mode, class, p)
	if err != nil {
		return TraceRunResult{}, err
	}
	// Probed segments frame their own process for the violation; the run
	// must survive the report to keep churning through segments.
	sys.OS.KeepProcessOnViolation = true
	if done := ctx.Done(); done != nil {
		poll := func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
		if se != nil {
			se.Interrupt = poll
		} else {
			eng.Interrupt = poll
		}
	}
	if opts.Tracer != nil {
		sys.AttachTracer(opts.Tracer)
	}
	if opts.Profiler != nil {
		sys.AttachProfiler(opts.Profiler)
	}

	res := TraceRunResult{Workload: tr.Workload, Mode: mode, Class: class}
	var wall time.Duration
	for si := range tr.Segments {
		seg := &tr.Segments[si]
		segfail := func(stage string, err error) (TraceRunResult, error) {
			return fail(stage, fmt.Errorf("segment %d (%s): %w", si, seg.Name, err))
		}
		proc, err := sys.OS.NewProcess(seg.Name)
		if err != nil {
			return segfail("start", err)
		}
		prog, err := tracerec.BuildSegment(proc, seg)
		if err != nil {
			return segfail("build", err)
		}
		sys.ATS.Activate(sys.Name, proc.ASID())
		if sys.BC != nil {
			if err := sys.BC.ProcessStart(proc.ASID()); err != nil {
				return segfail("start", err)
			}
		}
		if err := sys.GPU.Launch(prog, proc.ASID()); err != nil {
			return segfail("launch", err)
		}

		sres := SegmentResult{Name: seg.Name, ASID: proc.ASID()}
		opsBefore := sys.GPU.OpsDone.Value()
		segStart := eng.Now()
		if len(seg.Probes) > 0 {
			// The adversary fabricates physical requests at the recorded
			// offsets from this segment's launch, claiming the segment's
			// own identity (attribution, never authority).
			trojan := accel.NewTrojan(sys.Port)
			trojan.ASID = proc.ASID()
			for _, pr := range seg.Probes {
				pr := pr
				eng.At(segStart+pr.At, func() {
					granted := false
					if pr.Kind == arch.Write {
						granted = trojan.TryWrite(eng.Now(), pr.Addr, [arch.BlockSize]byte{})
					} else {
						_, granted = trojan.TryRead(eng.Now(), pr.Addr)
					}
					if granted {
						sres.ProbesGranted++
					} else {
						sres.ProbesDenied++
					}
				})
			}
		}

		wallStart := time.Now()
		if se != nil {
			se.Run()
		} else {
			eng.Run()
		}
		wall += time.Since(wallStart)

		if !sys.GPU.Finished() {
			if err := ctx.Err(); err != nil {
				return segfail("interrupted", err)
			}
			return segfail("hang", fmt.Errorf("simulation drained with the kernel incomplete"))
		}
		if gerr := sys.GPU.Err(); gerr != nil {
			return segfail("abort", gerr)
		}

		sres.Runtime = sys.GPU.Runtime()
		sres.Ops = sys.GPU.OpsDone.Value() - opsBefore
		if sys.BC != nil {
			sys.BC.ProcessComplete(sys.GPU.FinishTime(), proc.ASID())
		}
		sys.ATS.Deactivate(sys.Name, proc.ASID())
		if prog.Verify != nil && !opts.SkipVerify {
			sres.VerifyErr = prog.Verify(proc)
		}
		// Exit tears the address space down: permission downgrades broadcast
		// to the accelerator (the flush path churn is designed to hammer)
		// and every frame returns to the allocator in deterministic order.
		sys.OS.Exit(proc)
		res.Segments = append(res.Segments, sres)
		res.Ops += sres.Ops
	}

	res.SimTime = eng.Now()
	if sys.BC != nil {
		res.BCChecks = sys.BC.CrossingChecks()
		if bcc := sys.BC.Cache(); bcc != nil {
			res.BCCMissRatio = bcc.CheckHitMiss.MissRatio()
		}
	}
	res.Stats = sys.Metrics.Snapshot()
	res.Host = HostStats{Wall: wall, Events: eng.Fired()}
	if s := wall.Seconds(); s > 0 {
		res.Host.EventsPerSec = float64(res.Host.Events) / s
	}
	return res, nil
}
