// Package harness assembles full simulated systems for the five safety
// configurations the paper evaluates (Table 2), runs the Rodinia-derived
// workloads on them, and regenerates every table and figure of the paper's
// evaluation section.
package harness

import (
	"fmt"

	"bordercontrol/internal/accel"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// Mode is one of the five evaluated safety configurations (paper Table 2).
type Mode int

// The configurations under study.
const (
	// ATSOnly is the unsafe baseline: the IOMMU serves only initial
	// translations, the GPU keeps physical TLBs and caches, and nothing
	// checks its physical requests.
	ATSOnly Mode = iota
	// FullIOMMU translates and checks every request at the IOMMU; the
	// accelerator keeps no TLB and no caches.
	FullIOMMU
	// CAPILike implements the TLB and a shared cache in trusted hardware,
	// farther from the accelerator.
	CAPILike
	// BCNoBCC is Border Control with only the in-memory Protection Table.
	BCNoBCC
	// BCBCC is Border Control with the Border Control Cache.
	BCBCC
)

// Modes lists the five configurations in the paper's order.
func Modes() []Mode { return []Mode{ATSOnly, FullIOMMU, CAPILike, BCNoBCC, BCBCC} }

// SafeModes lists the four configurations compared against the baseline in
// Figure 4.
func SafeModes() []Mode { return []Mode{FullIOMMU, CAPILike, BCNoBCC, BCBCC} }

func (m Mode) String() string {
	switch m {
	case ATSOnly:
		return "ATS-only IOMMU"
	case FullIOMMU:
		return "Full IOMMU"
	case CAPILike:
		return "CAPI-like"
	case BCNoBCC:
		return "Border Control-noBCC"
	case BCBCC:
		return "Border Control-BCC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Safe reports whether the configuration provides memory safety from the
// accelerator.
func (m Mode) Safe() bool { return m != ATSOnly }

// GPUClass selects between the two GPU proxies of §5.1.
type GPUClass int

// The two GPU configurations.
const (
	// HighlyThreaded is the 8-CU latency-tolerant proxy.
	HighlyThreaded GPUClass = iota
	// ModeratelyThreaded is the 1-CU latency-sensitive proxy.
	ModeratelyThreaded
)

func (c GPUClass) String() string {
	if c == ModeratelyThreaded {
		return "moderately threaded"
	}
	return "highly threaded"
}

// Params collects every knob of the simulated system; DefaultParams mirrors
// paper Table 3.
type Params struct {
	PhysMemBytes uint64
	CPUHz        float64
	GPUHz        float64
	DRAM         memory.DRAMConfig

	// GPU geometry per class.
	HighCUs        int
	HighWavesPerCU int
	HighL2Bytes    int
	ModCUs         int
	ModWavesPerCU  int
	ModL2Bytes     int

	// Border Control.
	//
	// Border selects the protection architecture guarding the accelerator
	// in the BC modes — one of core.Designs() ("flat", "sparta", "range").
	// It subsumes the old bare UseBCC switch: the BCC on/off axis stays on
	// Mode (BCNoBCC vs BCBCC), and Border picks the design under it.
	Border          string
	BCC             core.BCCConfig
	BCCLatencyCyc   uint64 // GPU cycles
	TableLatencyCyc uint64 // GPU cycles of EXTRA table latency beyond DRAM
	SelectiveFlush  bool
	EagerPopulate   bool

	// DirLatencyCyc is the coherence-point traversal cost in GPU cycles,
	// paid identically by every configuration.
	DirLatencyCyc uint64

	// Scale multiplies workload problem sizes.
	Scale int

	// Trace, when non-empty, makes Run replay a recorded reference trace
	// instead of executing the workload's generator: either a directory
	// holding <workload>.bctrace files (the per-workload recording is
	// looked up by spec name) or a single trace file. Replay reproduces the
	// generator run bit-exactly — same address-space layout, same physical
	// frames, same reference stream — so sweeps over (mode, border,
	// shards) grids re-decode one recording instead of re-running
	// generators per cell. See internal/tracerec.
	Trace string
}

// DefaultParams returns the Table 3 system.
func DefaultParams() Params {
	return Params{
		PhysMemBytes: 16 << 30, // 16 GB; Protection Table = 1 MB
		CPUHz:        3e9,
		GPUHz:        700e6,
		DRAM:         memory.DefaultDRAMConfig(),

		HighCUs:        8,
		HighWavesPerCU: 24,
		HighL2Bytes:    256 << 10,
		ModCUs:         1,
		ModWavesPerCU:  10,
		ModL2Bytes:     64 << 10,

		Border:          core.DefaultDesign,
		BCC:             core.DefaultBCCConfig(),
		BCCLatencyCyc:   10,
		TableLatencyCyc: 0,
		SelectiveFlush:  true,

		DirLatencyCyc: 4,
		Scale:         1,
	}
}

// System is one fully-assembled simulated machine.
type System struct {
	Mode  Mode
	Class GPUClass

	Eng   *sim.Engine
	Store *memory.Store
	DRAM  *memory.DRAM
	OS    *hostos.OS
	ATS   *ats.ATS
	Dir   *coherence.Directory
	BC    core.ProtectionArchitecture // nil except in BC modes
	GPU   *accel.GPU
	Hier  accel.Hierarchy
	// Port is the border port of the accelerator's outermost cache: the
	// physical-request path into the trusted memory system, and the
	// attachment point for threat-model experiments.
	Port *accel.BorderPort

	GPUClock sim.Clock
	Name     string // accelerator name

	// Metrics is the run-scoped registry every component registered its
	// counters with at assembly time. Snapshot it after a run for the full
	// hierarchical view ("engine.events", "gpu.l2.hits",
	// "border.bcc.miss_ratio", ...).
	Metrics *stats.Registry
}

// registerMetrics builds the system's registry. Registration stores
// accessors only, so it has no effect on simulated behaviour.
func (sys *System) registerMetrics() {
	reg := stats.NewRegistry()
	sys.Eng.RegisterMetrics(reg.Scope("engine"))
	sys.DRAM.RegisterMetrics(reg.Scope("dram"))
	sys.ATS.RegisterMetrics(reg.Scope("iommu"))
	sys.Dir.RegisterMetrics(reg.Scope("coherence"))
	if sys.BC != nil {
		sys.BC.RegisterMetrics(reg.Scope("border"))
	}
	gpu := reg.Scope("gpu")
	sys.GPU.RegisterMetrics(gpu)
	// Each hierarchy registers its own cache/TLB/port structure; the
	// optional interface keeps custom test hierarchies assembly-compatible.
	if rm, ok := sys.Hier.(interface{ RegisterMetrics(stats.Scope) }); ok {
		rm.RegisterMetrics(gpu)
	}
	sys.Metrics = reg
}

// AttachTracer threads a timeline tracer through the engine, the border,
// and the GPU. Tracing is pure observation — attaching a tracer never
// changes simulated timing — and a nil tracer detaches cleanly.
func (sys *System) AttachTracer(t *trace.Tracer) {
	sys.Eng.Tracer = t
	if sys.BC != nil {
		sys.BC.SetTracer(t)
	}
	sys.GPU.SetTracer(t)
}

// AttachProfiler threads a simulated-time profiler through the border, the
// IOMMU/ATS, and the accelerator hierarchy. Like tracing it is pure
// observation — components only report latencies they already computed —
// and a nil profiler detaches cleanly.
func (sys *System) AttachProfiler(p *prof.Profiler) {
	if sys.BC != nil {
		sys.BC.SetProfiler(p)
	}
	sys.ATS.SetProfiler(p)
	if sp, ok := sys.Hier.(interface{ SetProfiler(*prof.Profiler) }); ok {
		sp.SetProfiler(p)
	} else if sys.Port != nil {
		sys.Port.SetProfiler(p)
	}
}

// atsShootdown forwards OS downgrades to the trusted L2 TLB.
type atsShootdown struct{ ats *ats.ATS }

func (a atsShootdown) OnDowngrade(d hostos.Downgrade) {
	a.ats.InvalidatePage(d.ASID, d.VPN)
}

// NewSystem assembles a machine for the given configuration. The params
// must be complete: NewSystem validates them and rejects partially-filled
// values with a descriptive error (see Params.Validate / Normalize).
func NewSystem(mode Mode, class GPUClass, p Params) (*System, error) {
	return NewSystemWithEngine(&sim.Engine{}, mode, class, p)
}

// NewSystemWithEngine is NewSystem on a caller-provided event engine —
// typically one shard of a sim.ShardedEngine, so the whole machine (GPU,
// hierarchy, border, OS, DRAM) is bound to that shard and a fleet of such
// machines can execute concurrently. The engine must be fresh: no events
// fired, clock at zero.
func NewSystemWithEngine(eng *sim.Engine, mode Mode, class GPUClass, p Params) (*System, error) {
	if eng == nil {
		return nil, fmt.Errorf("harness: NewSystemWithEngine needs an engine")
	}
	if eng.Now() != 0 || eng.Fired() != 0 {
		return nil, fmt.Errorf("harness: NewSystemWithEngine needs a fresh engine (now=%d, fired=%d)",
			eng.Now(), eng.Fired())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gpuClock, err := sim.NewClock(p.GPUHz)
	if err != nil {
		return nil, err
	}
	store, err := memory.NewStore(p.PhysMemBytes)
	if err != nil {
		return nil, err
	}
	dram, err := memory.NewDRAM(store, p.DRAM)
	if err != nil {
		return nil, err
	}
	osmodel := hostos.New(store)
	atsvc, err := ats.New(ats.DefaultConfig(gpuClock), osmodel, dram)
	if err != nil {
		return nil, err
	}
	dir := coherence.NewDirectory(store)

	sys := &System{
		Mode:     mode,
		Class:    class,
		Eng:      eng,
		Store:    store,
		DRAM:     dram,
		OS:       osmodel,
		ATS:      atsvc,
		Dir:      dir,
		GPUClock: gpuClock,
		Name:     "gpu0",
	}
	osmodel.AddShootdownListener(atsShootdown{atsvc})

	cus, waves, l2 := p.HighCUs, p.HighWavesPerCU, p.HighL2Bytes
	if class == ModeratelyThreaded {
		cus, waves, l2 = p.ModCUs, p.ModWavesPerCU, p.ModL2Bytes
	}
	dirLat := gpuClock.Cycles(p.DirLatencyCyc)

	switch mode {
	case ATSOnly, BCNoBCC, BCBCC:
		var bc core.ProtectionArchitecture
		if mode != ATSOnly {
			cfg := core.Config{
				UseBCC:         mode == BCBCC,
				BCC:            p.BCC,
				BCCLatency:     gpuClock.Cycles(p.BCCLatencyCyc),
				TableLatency:   gpuClock.Cycles(p.TableLatencyCyc),
				SelectiveFlush: p.SelectiveFlush,
				EagerPopulate:  p.EagerPopulate,
			}
			bc, err = core.NewArchitecture(p.Border, sys.Name, cfg, osmodel, dram, eng)
			if err != nil {
				return nil, err
			}
			atsvc.AddObserver(bc)
			sys.BC = bc
		}
		scfg := accel.DefaultSandboxConfig(sys.Name, gpuClock, cus, l2)
		agent := dir.ReserveAgent()
		port := accel.NewBorderPort(bc, dir, agent, dram, dirLat)
		hier, err := accel.NewSandboxed(scfg, eng, atsvc, port)
		if err != nil {
			return nil, err
		}
		dir.BindAgent(agent, hier)
		sys.Port = port
		if bc != nil {
			bc.SetAccelerator(hier)
			osmodel.AddShootdownListener(hier) // drain + TLB invalidation
			osmodel.AddShootdownListener(bc)   // flush + table update
		} else {
			osmodel.AddShootdownListener(hier)
		}
		sys.Hier = hier

	case FullIOMMU:
		agent := dir.ReserveAgent()
		port := accel.NewBorderPort(nil, dir, agent, dram, dirLat)
		hier := accel.NewIOMMUHierarchy(sys.Name, eng, atsvc, port, gpuClock)
		dir.BindAgent(agent, hier)
		sys.Port = port
		osmodel.AddShootdownListener(hier)
		sys.Hier = hier

	case CAPILike:
		ccfg := accel.DefaultCAPIConfig(sys.Name, gpuClock, l2)
		agent := dir.ReserveAgent()
		port := accel.NewBorderPort(nil, dir, agent, dram, dirLat)
		hier, err := accel.NewCAPIHierarchy(ccfg, eng, atsvc, port)
		if err != nil {
			return nil, err
		}
		dir.BindAgent(agent, hier)
		sys.Port = port
		osmodel.AddShootdownListener(hier)
		sys.Hier = hier

	default:
		return nil, fmt.Errorf("harness: unknown mode %v", mode)
	}

	gcfg := accel.GPUConfig{Name: sys.Name, Clock: gpuClock, CUs: cus, WavesPerCU: waves}
	gpu, err := accel.NewGPU(gcfg, eng, sys.Hier)
	if err != nil {
		return nil, err
	}
	sys.GPU = gpu
	sys.registerMetrics()
	return sys, nil
}
