package harness

import (
	"math"
	"strings"
	"testing"

	"bordercontrol/internal/stats"
)

const sweepDiffHdr = "cell,sim_ps,events,ops,bc_checks,bcc_miss,chk_p50_ps,chk_p99_ps,chk_p999_ps,granted,denied\n"

func sampleSweepCSV() string {
	return sweepDiffHdr +
		"bc-bcc/flat/moderate/s1,1000,40,640,640,12,180,420,600,630,10\n" +
		"bc-nobcc/flat/moderate/s1,1000,40,640,640,0,200,480,660,630,10\n"
}

func TestSweepDiffIdenticalClean(t *testing.T) {
	d, err := DiffSweepCSV(sampleSweepCSV(), sampleSweepCSV(), SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		t.Fatalf("identical artifacts not clean:\n%s", d.Render())
	}
	if d.Cells != 2 || len(d.Metrics) != 10 {
		t.Errorf("cells=%d metrics=%d, want 2 and 10", d.Cells, len(d.Metrics))
	}
	if !strings.Contains(d.Render(), "clean") {
		t.Errorf("Render() = %q, want a clean verdict", d.Render())
	}
}

func TestSweepDiffPerturbationFlagged(t *testing.T) {
	perturbed := strings.Replace(sampleSweepCSV(), ",12,", ",13,", 1)
	d, err := DiffSweepCSV(sampleSweepCSV(), perturbed, SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("perturbed bcc_miss column diffed clean at zero tolerance")
	}
	if len(d.Drifts) != 1 {
		t.Fatalf("drifts = %+v, want exactly one", d.Drifts)
	}
	dr := d.Drifts[0]
	if dr.Metric != "bcc_miss" || dr.Cell != "bc-bcc/flat/moderate/s1" || dr.Old != 12 || dr.New != 13 {
		t.Errorf("drift = %+v, want bcc_miss 12->13 in bc-bcc/flat/moderate/s1", dr)
	}
	if !strings.Contains(d.Render(), "REGRESSION") {
		t.Errorf("Render() = %q, want a regression verdict", d.Render())
	}
}

func TestSweepDiffToleranceAdmitsDrift(t *testing.T) {
	perturbed := strings.Replace(sampleSweepCSV(), ",12,", ",13,", 1) // rel 1/12 ≈ 0.083

	// A generous per-metric override admits it…
	d, err := DiffSweepCSV(sampleSweepCSV(), perturbed, SweepDiffOptions{Tol: map[string]float64{"bcc_miss": 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		t.Errorf("bcc_miss=0.1 tolerance still flags an 8.3%% drift:\n%s", d.Render())
	}

	// …a tight one does not.
	d, err = DiffSweepCSV(sampleSweepCSV(), perturbed, SweepDiffOptions{Default: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Error("default 5% tolerance admitted an 8.3% drift")
	}
}

func TestSweepDiffZeroToNonzeroIsInf(t *testing.T) {
	perturbed := strings.Replace(sampleSweepCSV(), ",0,200,", ",3,200,", 1)
	d, err := DiffSweepCSV(sampleSweepCSV(), perturbed, SweepDiffOptions{Default: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("0 -> 3 drift admitted by a finite tolerance; relDrift should be +Inf")
	}
	if !math.IsInf(d.Drifts[0].Rel, 1) {
		t.Errorf("rel = %v, want +Inf", d.Drifts[0].Rel)
	}
}

func TestSweepDiffStructural(t *testing.T) {
	oneRow := sweepDiffHdr + "bc-bcc/flat/moderate/s1,1000,40,640,640,12,180,420,600,630,10\n"
	d, err := DiffSweepCSV(sampleSweepCSV(), oneRow, SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("missing cell diffed clean")
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "bc-nobcc/flat/moderate/s1" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	d, err = DiffSweepCSV(oneRow, sampleSweepCSV(), SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "bc-nobcc/flat/moderate/s1" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
}

func TestSweepDiffErrors(t *testing.T) {
	good := sampleSweepCSV()
	otherHdr := strings.Replace(good, "bcc_miss", "bcc_lost", 1)
	if _, err := DiffSweepCSV(good, otherHdr, SweepDiffOptions{}); err == nil {
		t.Error("header mismatch: want an error, not a drift report")
	}
	if _, err := DiffSweepCSV(good, "", SweepDiffOptions{}); err == nil {
		t.Error("empty artifact: want error")
	}
	if _, err := DiffSweepCSV(good, "a,b\n1,2\n", SweepDiffOptions{}); err == nil {
		t.Error("non-sweep header: want error")
	}
	dup := good + "bc-bcc/flat/moderate/s1,1000,40,640,640,12,180,420,600,630,10\n"
	if _, err := DiffSweepCSV(good, dup, SweepDiffOptions{}); err == nil {
		t.Error("duplicate cell: want error")
	}
	bad := sweepDiffHdr + "c1,x,40,640,640,12,180,420,600,630,10\n"
	if _, err := DiffSweepCSV(good, bad, SweepDiffOptions{}); err == nil {
		t.Error("non-numeric value: want error")
	}
}

func statsBlob(t *testing.T, build func(sc stats.Scope)) []byte {
	t.Helper()
	reg := stats.NewRegistry()
	build(reg.Scope("sim"))
	blob, err := reg.Snapshot().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestSweepDiffStatsJSON(t *testing.T) {
	mk := func(checks uint64, lat []uint64) []byte {
		return statsBlob(t, func(sc stats.Scope) {
			c := &stats.Counter{}
			c.Add(checks)
			sc.Counter("bc_checks", c)
			h := &stats.Histogram{}
			for _, v := range lat {
				h.Record(v)
			}
			sc.Histogram("check_latency_ps", h)
		})
	}
	a := mk(640, []uint64{100, 200, 300})

	d, err := DiffStatsJSON(a, mk(640, []uint64{100, 200, 300}), SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		t.Fatalf("identical snapshots not clean:\n%s", d.Render())
	}

	// A counter drift is flagged under "value".
	d, err = DiffStatsJSON(a, mk(700, []uint64{100, 200, 300}), SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() || d.Drifts[0].Metric != "value" || d.Drifts[0].Cell != "sim.bc_checks" {
		t.Errorf("counter drift = %+v", d.Drifts)
	}

	// A histogram-shape drift is flagged via its expanded sub-metrics.
	d, err = DiffStatsJSON(a, mk(640, []uint64{100, 200, 300, 90000}), SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("histogram tail change diffed clean")
	}
	for _, dr := range d.Drifts {
		if dr.Cell != "sim.check_latency_ps" {
			t.Errorf("unexpected drift cell %q", dr.Cell)
		}
	}

	// A sample missing on one side is structural.
	b := statsBlob(t, func(sc stats.Scope) {
		c := &stats.Counter{}
		c.Add(640)
		sc.Counter("bc_checks", c)
	})
	d, err = DiffStatsJSON(a, b, SweepDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "sim.check_latency_ps" {
		t.Errorf("OnlyOld = %v, want the histogram sample", d.OnlyOld)
	}

	if _, err := DiffStatsJSON([]byte("not json"), a, SweepDiffOptions{}); err == nil {
		t.Error("bad JSON: want error")
	}
}
