package harness

import (
	"strings"
	"testing"

	"bordercontrol/internal/core"
)

func TestNormalize(t *testing.T) {
	var zero Params
	if got := zero.Normalize(); got != DefaultParams() {
		t.Error("zero Params should normalize to DefaultParams")
	}
	p := DefaultParams()
	p.Scale = 7
	if got := p.Normalize(); got != p {
		t.Error("non-zero Params must pass through Normalize unchanged")
	}
	if err := zero.Normalize().Validate(); err != nil {
		t.Errorf("normalized zero Params should validate, got %v", err)
	}
	// A pre-Border Params literal (every field set except Border) gets the
	// flat default backfilled rather than failing Validate.
	legacy := DefaultParams()
	legacy.Border = ""
	if got := legacy.Normalize().Border; got != core.DefaultDesign {
		t.Errorf("Normalize backfilled Border = %q, want %q", got, core.DefaultDesign)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams must validate, got %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Params)
		want string // substring the error must contain
	}{
		{"zero", func(p *Params) { *p = Params{} }, "zero Params"},
		{"phys-zero", func(p *Params) { p.PhysMemBytes = 0 }, "PhysMemBytes"},
		{"phys-unaligned", func(p *Params) { p.PhysMemBytes += 3 }, "PhysMemBytes"},
		{"cpu-hz-zero", func(p *Params) { p.CPUHz = 0 }, "CPUHz"},
		{"cpu-hz-absurd", func(p *Params) { p.CPUHz = 2e12 }, "CPUHz"},
		{"gpu-hz-zero", func(p *Params) { p.GPUHz = 0 }, "GPUHz"},
		{"gpu-hz-negative", func(p *Params) { p.GPUHz = -1 }, "GPUHz"},
		{"dram-channels", func(p *Params) { p.DRAM.Channels = 0 }, "DRAM.Channels"},
		{"dram-bandwidth", func(p *Params) { p.DRAM.BandwidthBytesPerSec = 0 }, "DRAM.BandwidthBytesPerSec"},
		{"high-cus", func(p *Params) { p.HighCUs = 0 }, "HighCUs"},
		{"high-waves", func(p *Params) { p.HighWavesPerCU = -2 }, "HighWavesPerCU"},
		{"mod-cus", func(p *Params) { p.ModCUs = 0 }, "ModCUs"},
		{"high-l2", func(p *Params) { p.HighL2Bytes = 0 }, "HighL2Bytes"},
		{"mod-l2", func(p *Params) { p.ModL2Bytes = 0 }, "ModL2Bytes"},
		{"bcc", func(p *Params) { p.BCC.Entries = -1 }, "BCC"},
		{"scale", func(p *Params) { p.Scale = 0 }, "Scale"},
		{"border-unknown", func(p *Params) { p.Border = "mondrian" }, "unknown border design"},
		{"border-empty", func(p *Params) { p.Border = "" }, "Border"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken Params")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestNewSystemRejectsInvalidParams checks assembly fails fast with the
// descriptive Validate error instead of a downstream panic.
func TestNewSystemRejectsInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.DRAM.Channels = 0
	if _, err := NewSystem(BCBCC, HighlyThreaded, p); err == nil || !strings.Contains(err.Error(), "DRAM.Channels") {
		t.Errorf("NewSystem error = %v, want a Params.DRAM.Channels validation error", err)
	}
	if _, err := NewSystem(BCBCC, HighlyThreaded, Params{}); err == nil || !strings.Contains(err.Error(), "zero Params") {
		t.Errorf("NewSystem error = %v, want the zero-Params validation error", err)
	}
}
