package harness

import (
	"context"
	"fmt"

	"bordercontrol/internal/exp"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/workload"
)

// ProfileConfig is one cell of the profiling matrix.
type ProfileConfig struct {
	Mode  Mode
	Class GPUClass
	Label string
}

// ProfileMatrix lists the configurations `bctool profile` attributes: the
// same matrix `bctool bench` measures, so the profile explains the bench.
func ProfileMatrix() []ProfileConfig {
	return []ProfileConfig{
		{ATSOnly, HighlyThreaded, "ats-only/high"},
		{BCBCC, HighlyThreaded, "bc-bcc/high"},
		{FullIOMMU, HighlyThreaded, "full-iommu/high"},
		{BCBCC, ModeratelyThreaded, "bc-bcc/moderate"},
	}
}

// Profile runs the workload across the profile matrix with a per-job
// simulated-time profiler attached and returns the merged profile. Each job
// gets its own Profiler (profilers are single-goroutine, like every stats
// structure), and the merge is a commutative sum over per-stack totals —
// the result is byte-identical at any Exec.Jobs setting.
func Profile(ctx context.Context, ex Exec, p Params, workloadName string) (*prof.Profiler, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q (have %v)", workloadName, workload.Names())
	}
	configs := ProfileMatrix()
	type job struct {
		cfg ProfileConfig
		pr  *prof.Profiler
	}
	jobs := make([]job, 0, len(configs))
	for _, cfg := range configs {
		jobs = append(jobs, job{cfg: cfg, pr: prof.New()})
	}
	_, err := exp.Map(ctx, ex.runner(), jobs,
		func(_ int, j job) string { return j.cfg.Label + "/" + workloadName },
		func(ctx context.Context, j job) (RunResult, error) {
			return RunCtx(ctx, j.cfg.Mode, j.cfg.Class, spec, p, RunOptions{Profiler: j.pr})
		})
	if err != nil {
		return nil, err
	}
	merged := prof.New()
	for _, j := range jobs {
		merged.Merge(j.pr)
	}
	return merged, nil
}

// ProfileRun profiles a single (mode, class, workload) simulation and
// returns its profiler.
func ProfileRun(ctx context.Context, mode Mode, class GPUClass, p Params, workloadName string) (*prof.Profiler, error) {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q (have %v)", workloadName, workload.Names())
	}
	pr := prof.New()
	if _, err := RunCtx(ctx, mode, class, spec, p, RunOptions{Profiler: pr}); err != nil {
		return nil, err
	}
	return pr, nil
}
