package accel

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// altRig wires an IOMMU- or CAPI-path hierarchy (no Border Control: both
// are trusted configurations).
type altRig struct {
	eng   *sim.Engine
	os    *hostos.OS
	ats   *ats.ATS
	dram  *memory.DRAM
	clock sim.Clock
	proc  *hostos.Process
	port  *BorderPort
}

func newAltRig(t testing.TB) *altRig {
	t.Helper()
	store, err := memory.NewStore(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	clock := sim.MustClock(700e6)
	atsvc, err := ats.New(ats.DefaultConfig(clock), osm, dram)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := osm.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	atsvc.Activate("gpu0", proc.ASID())
	return &altRig{eng: &sim.Engine{}, os: osm, ats: atsvc, dram: dram, clock: clock, proc: proc}
}

func (r *altRig) dirPort(t testing.TB, trusted coherence.Agent) *BorderPort {
	t.Helper()
	dir := coherence.NewDirectory(r.os.Store())
	agent := dir.AddAgent(trusted)
	r.port = NewBorderPort(nil, dir, agent, r.dram, r.clock.Cycles(4))
	return r.port
}

func (r *altRig) rwPage(t testing.TB) arch.Virt {
	t.Helper()
	v, err := r.proc.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.proc.Write(v, make([]byte, arch.PageSize)); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestIOMMUHierarchyFunctional(t *testing.T) {
	r := newAltRig(t)
	h := NewIOMMUHierarchy("gpu0", r.eng, r.ats, nil, r.clock)
	h.border = r.dirPort(t, h)

	v := r.rwPage(t)
	// Store then load, uncached: the store's RMW must land in memory
	// immediately (there is no cache to hold it).
	done, err := h.Access(0, 0, r.proc.ASID(), Op{Kind: arch.Write, Size: 5, Addr: v, Data: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	var got [5]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "hello" {
		t.Errorf("uncached store did not land: %q", got[:])
	}
	// Loads pay translation + DRAM every time.
	d1, err := h.Access(done, 0, r.proc.ASID(), Op{Kind: arch.Read, Size: 8, Addr: v})
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= done {
		t.Error("load must take time")
	}
	// Drain is a no-op: nothing cached.
	if h.Drain(d1) != d1 {
		t.Error("IOMMU drain should be free")
	}
	if !h.Trusted() {
		t.Error("the IOMMU path is trusted hardware")
	}
	if data, dirty := h.Recall(0); data != nil || dirty {
		t.Error("nothing to recall from a cacheless path")
	}
}

func TestIOMMUThroughputPort(t *testing.T) {
	// The IOMMU's finite request throughput queues concurrent requests:
	// the k-th simultaneous access finishes later than the first.
	r := newAltRig(t)
	h := NewIOMMUHierarchy("gpu0", r.eng, r.ats, nil, r.clock)
	h.border = r.dirPort(t, h)
	v := r.rwPage(t)
	// Warm the trusted TLB so the walk doesn't dominate the measurement.
	if _, err := h.Access(0, 0, r.proc.ASID(), Op{Kind: arch.Read, Size: 8, Addr: v}); err != nil {
		t.Fatal(err)
	}
	start := sim.Time(1000000)
	var first, last sim.Time
	for i := 0; i < 16; i++ {
		done, err := h.Access(start, 0, r.proc.ASID(), Op{Kind: arch.Read, Size: 8, Addr: v})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = done
		}
		last = done
	}
	if last < first+r.clock.Cycles(2*15) {
		t.Errorf("16 concurrent IOMMU requests: first done %d, last %d — no queueing", first, last)
	}
}

func TestCAPIHierarchyFunctional(t *testing.T) {
	r := newAltRig(t)
	cfg := DefaultCAPIConfig("gpu0", r.clock, 64<<10)
	h, err := NewCAPIHierarchy(cfg, r.eng, r.ats, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.border = r.dirPort(t, h)

	v := r.rwPage(t)
	// Store goes into the trusted L2 (dirty), not memory.
	if _, err := h.Access(0, 0, r.proc.ASID(), Op{Kind: arch.Write, Size: 4, Addr: v, Data: []byte("capi")}); err != nil {
		t.Fatal(err)
	}
	if h.L2().DirtyBlocks() == 0 {
		t.Error("CAPI store should dirty the trusted L2")
	}
	var got [4]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) == "capi" {
		t.Error("store reached memory before the drain; write-back L2 expected")
	}
	// Drain flushes the dirty block to memory.
	h.Drain(1000000)
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "capi" {
		t.Errorf("after drain memory = %q", got[:])
	}
	if !h.Trusted() {
		t.Error("CAPI's caches are trusted")
	}
}

func TestCAPILoadHitsItsL2(t *testing.T) {
	r := newAltRig(t)
	h, err := NewCAPIHierarchy(DefaultCAPIConfig("gpu0", r.clock, 64<<10), r.eng, r.ats, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.border = r.dirPort(t, h)
	v := r.rwPage(t)
	d1, err := h.Access(0, 0, r.proc.ASID(), Op{Kind: arch.Read, Size: 8, Addr: v})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := h.Access(d1, 0, r.proc.ASID(), Op{Kind: arch.Read, Size: 8, Addr: v})
	if err != nil {
		t.Fatal(err)
	}
	// Second access: trusted-TLB hit + L2 hit + link; far cheaper than the
	// first (which paid a page walk and DRAM).
	if d2-d1 >= d1 {
		t.Errorf("L2 hit (%d ps) not cheaper than miss (%d ps)", d2-d1, d1)
	}
	if h.L2().HitMiss.Hits.Value() == 0 {
		t.Error("no L2 hit recorded")
	}
}

func TestCAPIRecall(t *testing.T) {
	r := newAltRig(t)
	h, err := NewCAPIHierarchy(DefaultCAPIConfig("gpu0", r.clock, 64<<10), r.eng, r.ats, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.border = r.dirPort(t, h)
	v := r.rwPage(t)
	if _, err := h.Access(0, 0, r.proc.ASID(), Op{Kind: arch.Write, Size: 1, Addr: v, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	pa, err := r.proc.Translate(v, arch.Read)
	if err != nil {
		t.Fatal(err)
	}
	data, dirty := h.Recall(pa)
	if !dirty || data[uint64(pa)&arch.BlockMask] != 7 {
		t.Error("recall should surrender the dirty block")
	}
	if h.L2().Contains(pa) {
		t.Error("recalled block still cached")
	}
}

func TestSandboxedDrainStallDelaysAccesses(t *testing.T) {
	// After a shootdown the hierarchy stalls; the next access starts no
	// earlier than the stall horizon.
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	r.hier.OnDowngrade(hostos.Downgrade{ASID: r.proc.ASID(), VPN: v.PageOf()})
	done, err := r.hier.Access(0, 0, r.proc.ASID(), loadOp(v))
	if err != nil {
		t.Fatal(err)
	}
	if done < r.clock.Cycles(1500) {
		t.Errorf("access done at %d, before the drain stall", done)
	}
	if r.hier.Downgrades.Value() != 1 {
		t.Error("downgrade not counted")
	}
}

func TestSandboxedTLBInvalidation(t *testing.T) {
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	if _, err := r.hier.Access(0, 0, r.proc.ASID(), loadOp(v)); err != nil {
		t.Fatal(err)
	}
	if r.hier.L1TLB(0).Valid() != 1 {
		t.Fatal("translation not cached")
	}
	r.hier.InvalidateTLBPage(r.proc.ASID(), v.PageOf())
	if r.hier.L1TLB(0).Valid() != 0 {
		t.Error("page invalidation missed")
	}
	if _, err := r.hier.Access(0, 1, r.proc.ASID(), loadOp(v)); err != nil {
		t.Fatal(err)
	}
	r.hier.InvalidateTLBAll()
	for cu := 0; cu < 2; cu++ {
		if r.hier.L1TLB(cu).Valid() != 0 {
			t.Error("full invalidation missed")
		}
	}
}

func TestGPUIssuePortLimitsThroughput(t *testing.T) {
	// 64 zero-compute L1-hit ops on one CU cannot finish faster than the
	// port's one-per-cycle rate.
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	warm := Trace{loadOp(v)}
	var tr Trace
	for i := 0; i < 64; i++ {
		tr = append(tr, loadOp(v))
	}
	prog := &Program{Name: "t", Phases: []Phase{
		{Name: "warm", Traces: []Trace{warm}},
		{Name: "hot", Traces: []Trace{tr}},
	}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.gpu.Cycles() < 64 {
		t.Errorf("64 issue-limited ops finished in %d cycles", r.gpu.Cycles())
	}
}

func TestGPUDistributesTracesAcrossSlots(t *testing.T) {
	// More traces than slots: all must still complete, via dynamic refill.
	r := newRig(t, false) // 2 CUs x 4 waves = 8 slots
	v := r.buffer(t, arch.PageSize)
	var traces []Trace
	for i := 0; i < 50; i++ {
		traces = append(traces, Trace{loadOp(v + arch.Virt(8*i))})
	}
	prog := &Program{Name: "t", Phases: []Phase{{Name: "k", Traces: traces}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.gpu.OpsDone.Value() != 50 {
		t.Errorf("ops done = %d, want 50", r.gpu.OpsDone.Value())
	}
	if r.gpu.Slots() != 8 {
		t.Errorf("slots = %d", r.gpu.Slots())
	}
}

func TestGPUGeometryValidation(t *testing.T) {
	r := newRig(t, false)
	if _, err := NewGPU(GPUConfig{Clock: r.clock, CUs: 0, WavesPerCU: 1}, r.eng, r.hier); err == nil {
		t.Error("zero CUs should fail")
	}
	if _, err := NewGPU(GPUConfig{Clock: r.clock, CUs: 1, WavesPerCU: 0}, r.eng, r.hier); err == nil {
		t.Error("zero waves should fail")
	}
}
