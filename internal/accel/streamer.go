package accel

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// Streamer models the other major accelerator class the paper's
// introduction motivates: a fixed-function streaming engine (crypto,
// compression, regex, video). Unlike the GPU it keeps no caches — it
// reads a source buffer block by block, transforms it, and writes a
// destination buffer, with a few concurrent DMA channels for overlap.
// Every block still crosses the border, so Border Control guards it with
// the same Protection Table mechanism, unchanged.
type Streamer struct {
	name    string
	eng     *sim.Engine
	ats     *ats.ATS
	border  *BorderPort
	clock   sim.Clock
	latency sim.Time // per-block transform latency

	channels int
	queue    []*StreamJob
	running  int
	finished bool
	err      error
	start    sim.Time
	finish   sim.Time

	// chans are the in-flight DMA-channel contexts, recycled through
	// freeChans; stepFn is the pre-bound per-block continuation (payload: a
	// channel index), so streaming a buffer allocates no closures.
	chans     []streamChan
	freeChans []int32
	stepFn    sim.EventFunc

	// Misbehave injects adversarial engine behavior for the red-team
	// harness; the zero value is a correct engine.
	Misbehave Misbehavior
	staleTLB  map[staleKey]arch.PPN

	Blocks stats.Counter
	Jobs   stats.Counter
}

// Misbehavior selects ways a buggy or malicious DMA engine can deviate
// from the protocol. Safety must never depend on the engine behaving, so
// the adversary harness flips these and asserts the border still holds.
type Misbehavior struct {
	// StaleTranslations latches the first translation obtained for each
	// (asid, page) and reuses it for the rest of the run instead of
	// re-translating — the in-flight-DMA race of paper §3.2.4: the OS
	// downgrades a page mid-transfer while the engine keeps streaming
	// through the old physical address.
	StaleTranslations bool
}

// staleKey identifies one latched translation.
type staleKey struct {
	asid arch.ASID
	vpn  arch.VPN
}

// StreamJob is one DMA-style transfer: read Len bytes at Src, apply
// Transform block-wise, write the result at Dst. Src and Dst must be
// block-aligned and must not overlap.
type StreamJob struct {
	ASID      arch.ASID
	Src, Dst  arch.Virt
	Len       uint64
	Transform func(block []byte) // in-place; nil = plain copy
}

// StreamerConfig sizes the engine.
type StreamerConfig struct {
	Name     string
	Clock    sim.Clock
	Channels int      // concurrent DMA contexts
	Latency  sim.Time // per-block processing time
}

// NewStreamer builds a streaming accelerator over the given border port.
func NewStreamer(cfg StreamerConfig, eng *sim.Engine, atsvc *ats.ATS, border *BorderPort) (*Streamer, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("accel: streamer needs at least one channel, got %d", cfg.Channels)
	}
	if cfg.Latency == 0 {
		cfg.Latency = cfg.Clock.Cycles(8)
	}
	s := &Streamer{
		name:     cfg.Name,
		eng:      eng,
		ats:      atsvc,
		border:   border,
		clock:    cfg.Clock,
		latency:  cfg.Latency,
		channels: cfg.Channels,
	}
	s.stepFn = s.stepEvent
	return s, nil
}

// streamChan is one in-flight DMA transfer: the job and its progress.
type streamChan struct {
	job *StreamJob
	off uint64
}

// Border returns the streamer's border port.
func (s *Streamer) Border() *BorderPort { return s.border }

// Launch enqueues jobs and starts the channels. Run the engine afterwards.
func (s *Streamer) Launch(jobs []*StreamJob) error {
	for _, j := range jobs {
		if uint64(j.Src)%arch.BlockSize != 0 || uint64(j.Dst)%arch.BlockSize != 0 || j.Len%arch.BlockSize != 0 {
			return fmt.Errorf("accel: stream job [%#x->%#x, %d) not block aligned", j.Src, j.Dst, j.Len)
		}
	}
	s.queue = append(s.queue, jobs...)
	s.finished = false
	s.err = nil
	s.start = s.eng.Now()
	for c := 0; c < s.channels && len(s.queue) > 0; c++ {
		s.dispatch(s.eng.Now())
	}
	if s.running == 0 {
		s.finished = true
		s.finish = s.eng.Now()
	}
	return nil
}

// Finished reports whether all jobs completed or aborted.
func (s *Streamer) Finished() bool { return s.finished }

// Err returns the abort cause, if any.
func (s *Streamer) Err() error { return s.err }

// Runtime returns the duration of the last Launch.
func (s *Streamer) Runtime() sim.Time { return s.finish - s.start }

func (s *Streamer) dispatch(at sim.Time) {
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.running++
	var c int32
	if n := len(s.freeChans); n > 0 {
		c = s.freeChans[n-1]
		s.freeChans = s.freeChans[:n-1]
	} else {
		s.chans = append(s.chans, streamChan{})
		c = int32(len(s.chans) - 1)
	}
	s.chans[c] = streamChan{job: job}
	s.step(at, c)
}

// stepEvent is the engine-facing continuation: arg is a channel index.
func (s *Streamer) stepEvent(now sim.Time, arg uint64) { s.step(now, int32(arg)) }

// release returns a channel context to the pool, dropping its job reference.
func (s *Streamer) release(c int32) {
	s.chans[c] = streamChan{}
	s.freeChans = append(s.freeChans, c)
}

// step processes channel c's next block and schedules the continuation.
func (s *Streamer) step(at sim.Time, c int32) {
	ch := &s.chans[c]
	job, off := ch.job, ch.off
	if s.err != nil {
		s.release(c)
		s.retire(at)
		return
	}
	if off >= job.Len {
		s.Jobs.Inc()
		s.release(c)
		s.retire(at)
		return
	}
	// Translate both endpoints through the ATS (no accelerator TLB: the
	// streamer's access pattern is fully sequential, so translation cost
	// amortizes over a page of blocks; the ATS's own TLB absorbs repeats).
	srcPA, at, err := s.translate(job.ASID, job.Src+arch.Virt(off), arch.Read, at)
	if err != nil {
		s.release(c)
		s.fail(at, err)
		return
	}
	dstPA, at, err := s.translate(job.ASID, job.Dst+arch.Virt(off), arch.Write, at)
	if err != nil {
		s.release(c)
		s.fail(at, err)
		return
	}

	var buf [arch.BlockSize]byte
	done, ok := s.border.ReadBlock(at, job.ASID, srcPA, arch.Read, &buf)
	if !ok {
		s.release(c)
		s.fail(at, fmt.Errorf("%w: stream read of %#x", ErrBlocked, srcPA))
		return
	}
	done += s.latency
	if job.Transform != nil {
		job.Transform(buf[:])
	}
	wbDone, ok := s.border.WriteBlock(done, job.ASID, dstPA, &buf)
	if !ok {
		s.release(c)
		s.fail(done, fmt.Errorf("%w: stream write of %#x", ErrBlocked, dstPA))
		return
	}
	s.Blocks.Inc()
	if wbDone > done {
		done = wbDone
	}
	ch.off = off + arch.BlockSize
	s.eng.ScheduleInto(done, s.stepFn, uint64(c))
}

// translate resolves one endpoint. A well-behaved engine asks the ATS for
// every block; with Misbehave.StaleTranslations set it latches the first
// answer per page and replays it, paying no translation time — a stale
// physical address the border alone must stop.
func (s *Streamer) translate(asid arch.ASID, v arch.Virt, kind arch.AccessKind, at sim.Time) (arch.Phys, sim.Time, error) {
	if s.Misbehave.StaleTranslations {
		if ppn, ok := s.staleTLB[staleKey{asid, v.PageOf()}]; ok {
			return ppn.Base() + arch.Phys(v.Offset()), at, nil
		}
	}
	res, err := s.ats.Translate(s.name, asid, v, kind, at)
	if err != nil {
		return 0, at, err
	}
	if s.Misbehave.StaleTranslations {
		if s.staleTLB == nil {
			s.staleTLB = make(map[staleKey]arch.PPN)
		}
		s.staleTLB[staleKey{asid, v.PageOf()}] = res.Entry.PPN
	}
	return res.Entry.PPN.Base() + arch.Phys(v.Offset()), res.Done, nil
}

func (s *Streamer) fail(at sim.Time, err error) {
	if s.err == nil {
		s.err = err
	}
	s.retire(at)
}

func (s *Streamer) retire(at sim.Time) {
	s.running--
	if s.err == nil && len(s.queue) > 0 {
		s.dispatch(at)
		return
	}
	if s.running == 0 {
		s.finished = true
		s.finish = at
	}
}

// Name implements coherence.Agent.
func (s *Streamer) Name() string { return s.name }

// Trusted implements coherence.Agent: the streamer is third-party IP.
func (s *Streamer) Trusted() bool { return false }

// Recall implements coherence.Agent: nothing cached.
func (s *Streamer) Recall(arch.Phys) ([]byte, bool) { return nil, false }
