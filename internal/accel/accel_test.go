package accel

import (
	"bytes"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// rig is a hand-wired miniature system: OS, ATS, directory, DRAM, one
// sandboxed hierarchy with (optionally) Border Control, and a GPU.
type rig struct {
	eng   *sim.Engine
	os    *hostos.OS
	ats   *ats.ATS
	dir   *coherence.Directory
	dram  *memory.DRAM
	bc    *core.BorderControl // nil when safe == false
	hier  *Sandboxed
	gpu   *GPU
	clock sim.Clock
	proc  *hostos.Process
}

// atsInvalidate forwards shootdowns to the trusted L2 TLB (the wiring the
// harness performs in real systems).
type atsInvalidate struct{ ats *ats.ATS }

func (a atsInvalidate) OnDowngrade(d hostos.Downgrade) { a.ats.InvalidatePage(d.ASID, d.VPN) }

func newRig(t testing.TB, safe bool) *rig {
	t.Helper()
	store, err := memory.NewStore(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	clock := sim.MustClock(700e6)
	eng := &sim.Engine{}
	atsvc, err := ats.New(ats.DefaultConfig(clock), osm, dram)
	if err != nil {
		t.Fatal(err)
	}
	dir := coherence.NewDirectory(store)
	osm.AddShootdownListener(atsInvalidate{atsvc})

	// bc stays a concrete *core.BorderControl for the rig's counter
	// assertions; port wiring takes the interface, which must be nil (not
	// a typed-nil pointer) in the unchecked configuration.
	var bc *core.BorderControl
	var guard core.ProtectionArchitecture
	if safe {
		bc, err = core.New("gpu0", core.DefaultConfig(clock), osm, dram, eng)
		if err != nil {
			t.Fatal(err)
		}
		atsvc.AddObserver(bc)
		guard = bc
	}
	agent := dir.ReserveAgent()
	port := NewBorderPort(guard, dir, agent, dram, clock.Cycles(4))
	hier, err := NewSandboxed(DefaultSandboxConfig("gpu0", clock, 2, 64<<10), eng, atsvc, port)
	if err != nil {
		t.Fatal(err)
	}
	dir.BindAgent(agent, hier)
	if bc != nil {
		bc.SetAccelerator(hier)
		osm.AddShootdownListener(hier)
		osm.AddShootdownListener(bc)
	} else {
		osm.AddShootdownListener(hier)
	}
	gpu, err := NewGPU(GPUConfig{Name: "gpu0", Clock: clock, CUs: 2, WavesPerCU: 4}, eng, hier)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := osm.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	atsvc.Activate("gpu0", proc.ASID())
	if bc != nil {
		if err := bc.ProcessStart(proc.ASID()); err != nil {
			t.Fatal(err)
		}
	}
	return &rig{eng: eng, os: osm, ats: atsvc, dir: dir, dram: dram, bc: bc,
		hier: hier, gpu: gpu, clock: clock, proc: proc}
}

// buffer allocates and faults an n-byte RW region.
func (r *rig) buffer(t testing.TB, n uint64) arch.Virt {
	t.Helper()
	v, err := r.proc.Mmap(n, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.proc.Write(v, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	return v
}

func storeOp(addr arch.Virt, data []byte) Op {
	return Op{Kind: arch.Write, Size: uint8(len(data)), Addr: addr, Data: data}
}

func loadOp(addr arch.Virt) Op {
	return Op{Kind: arch.Read, Size: 8, Addr: addr}
}

func TestStoreReachesMemoryThroughHierarchy(t *testing.T) {
	// A store lands in the (dirty) L2 and reaches host memory only after
	// the final drain — through the checked border.
	r := newRig(t, true)
	v := r.buffer(t, arch.PageSize)
	prog := &Program{
		Name:   "t",
		Phases: []Phase{{Name: "k", Traces: []Trace{{storeOp(v, []byte("sandboxed!"))}}}},
	}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err := r.gpu.Err(); err != nil {
		t.Fatal(err)
	}
	var got [10]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "sandboxed!" {
		t.Errorf("memory = %q", got[:])
	}
	if r.bc.Checks.Value() == 0 {
		t.Error("nothing was checked at the border")
	}
}

func TestLoadHitsCaches(t *testing.T) {
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	// Two loads of the same address: second hits L1.
	trace := Trace{loadOp(v), loadOp(v)}
	prog := &Program{Name: "t", Phases: []Phase{{Name: "k", Traces: []Trace{trace}}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	l1 := r.hier.L1(0)
	if l1.HitMiss.Hits.Value() != 1 || l1.HitMiss.Misses.Value() != 1 {
		t.Errorf("L1 hits=%d misses=%d, want 1/1", l1.HitMiss.Hits.Value(), l1.HitMiss.Misses.Value())
	}
}

func TestWavefrontsRunConcurrently(t *testing.T) {
	// Eight single-op traces across 2 CUs x 4 waves: the run must take far
	// less than 8 serial misses.
	r := newRig(t, false)
	v := r.buffer(t, 8*arch.PageSize)
	var traces []Trace
	for i := 0; i < 8; i++ {
		traces = append(traces, Trace{loadOp(v + arch.Virt(i*arch.PageSize))})
	}
	prog := &Program{Name: "t", Phases: []Phase{{Name: "k", Traces: traces}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.gpu.Err() != nil {
		t.Fatal(r.gpu.Err())
	}
	serial := 8 * uint64(400) // ~8 serial translations+misses in cycles
	if r.gpu.Cycles() > serial {
		t.Errorf("run took %d cycles; wavefronts are not overlapping", r.gpu.Cycles())
	}
	if r.gpu.OpsDone.Value() != 8 {
		t.Errorf("ops done = %d", r.gpu.OpsDone.Value())
	}
}

func TestPhaseBarrier(t *testing.T) {
	// Phase 2 must observe phase 1's stores: a load in phase 2 of a
	// location stored in phase 1 comes from the cache hierarchy coherently.
	r := newRig(t, true)
	v := r.buffer(t, arch.PageSize)
	prog := &Program{Name: "t", Phases: []Phase{
		{Name: "k1", Traces: []Trace{{storeOp(v, []byte{0xAA})}}},
		{Name: "k2", Traces: []Trace{{loadOp(v)}}},
	}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.gpu.Err() != nil {
		t.Fatal(r.gpu.Err())
	}
	if !r.gpu.Finished() {
		t.Fatal("program did not finish")
	}
	var b [1]byte
	if err := r.proc.Read(v, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAA {
		t.Error("phase 1 store lost")
	}
}

func TestGPUAbortsOnSegfault(t *testing.T) {
	r := newRig(t, true)
	// Address in no VMA: the ATS fault fails, the GPU aborts.
	prog := &Program{Name: "t", Phases: []Phase{{Name: "k", Traces: []Trace{{loadOp(0x10)}}}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.gpu.Err() == nil {
		t.Fatal("expected abort")
	}
	if !r.gpu.Finished() {
		t.Error("aborted GPU should still report finished")
	}
}

func TestTrojanBlockedBySandbox(t *testing.T) {
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v := r.buffer(t, arch.PageSize)
	ppn, _ := r.proc.PPNOf(v.PageOf())
	trojan := NewTrojan(r.hier.Border())
	if _, ok := trojan.TryRead(0, ppn.Base()); ok {
		t.Error("trojan read of untranslated page must be blocked")
	}
	if ok := trojan.TryWrite(0, ppn.Base(), [arch.BlockSize]byte{1}); ok {
		t.Error("trojan write must be blocked")
	}
	if len(r.os.Violations) == 0 {
		t.Error("OS not notified")
	}
}

func TestTrojanSucceedsWithoutSandbox(t *testing.T) {
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	if err := r.proc.Write(v, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	ppn, _ := r.proc.PPNOf(v.PageOf())
	trojan := NewTrojan(r.hier.Border())
	data, ok := trojan.TryRead(0, ppn.Base())
	if !ok || !bytes.HasPrefix(data[:], []byte("secret")) {
		t.Error("unsafe baseline should let the trojan read")
	}
	var evil [arch.BlockSize]byte
	copy(evil[:], "pwned")
	if !trojan.TryWrite(0, ppn.Base(), evil) {
		t.Error("unsafe baseline should let the trojan write")
	}
	var got [5]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "pwned" {
		t.Error("trojan write did not land (it should, without BC)")
	}
}

func TestStaleTLBBugIsContained(t *testing.T) {
	// A buggy accelerator ignores TLB shootdowns (paper §2.1's incorrect
	// shootdown example). After the OS revokes the page, its stale-
	// translation writebacks are caught at the border.
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v := r.buffer(t, arch.PageSize)
	ppn, _ := r.proc.PPNOf(v.PageOf())
	buggy := NewBuggyShootdown(r.hier)
	r.bc.SetAccelerator(buggy) // BC's invalidations now go nowhere

	// Legitimate warm-up: translate and write.
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	if !r.bc.Check(0, r.proc.ASID(), ppn.Base(), arch.Write).Allowed {
		t.Fatal("legitimate write should pass")
	}
	// The OS revokes the page entirely.
	if _, err := r.os.Protect(r.proc, v, arch.PageSize, arch.PermNone); err != nil {
		t.Fatal(err)
	}
	// The buggy accelerator still holds the stale translation and tries to
	// write: blocked at the border regardless.
	if r.bc.Check(r.eng.Now(), r.proc.ASID(), ppn.Base(), arch.Write).Allowed {
		t.Error("stale-TLB write after revocation must be blocked")
	}
}

func TestFlushIgnorerIsContained(t *testing.T) {
	// §3.2.4: an accelerator that refuses to flush on downgrade cannot
	// corrupt memory — the late writeback is blocked, memory keeps the
	// pre-downgrade value.
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v := r.buffer(t, arch.PageSize)
	if err := r.proc.Write(v, []byte("original")); err != nil {
		t.Fatal(err)
	}
	ppn, _ := r.proc.PPNOf(v.PageOf())
	ignorer := NewFlushIgnorer(r.hier)
	r.bc.SetAccelerator(ignorer)

	// The accelerator legitimately dirties the block in its cache.
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	pa := ppn.Base()
	if _, err := r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(v, []byte("tampered"))); err != nil {
		t.Fatal(err)
	}
	if !r.hier.L2().IsDirty(pa) {
		t.Fatal("block should be dirty in the accelerator cache")
	}
	// Downgrade to read-only; the ignorer skips the flush.
	if _, err := r.os.Protect(r.proc, v, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	// The dirty block eventually tries to write back: blocked.
	blocked := 0
	for _, db := range r.hier.L2().FlushAll() {
		db := db
		if _, ok := r.hier.Border().WriteBlock(r.eng.Now(), r.proc.ASID(), db.Addr, &db.Data); !ok {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatal("late writeback was not blocked")
	}
	var got [8]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "original" {
		t.Errorf("memory = %q; the blocked writeback must not land", got[:])
	}
}

func TestDowngradeFlushWritesBackThroughBorder(t *testing.T) {
	// The cooperative case: the selective flush pushes dirty data to
	// memory BEFORE the table update, so nothing is lost.
	r := newRig(t, true)
	v := r.buffer(t, arch.PageSize)
	ppn, _ := r.proc.PPNOf(v.PageOf())
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	pa := ppn.Base()
	if _, err := r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(v, []byte("flushed!"))); err != nil {
		t.Fatal(err)
	}
	if _, err := r.os.Protect(r.proc, v, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if r.hier.L2().IsDirty(pa) {
		t.Error("downgrade flush left the block dirty")
	}
	var got [8]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "flushed!" {
		t.Errorf("memory = %q; the flush must persist dirty data", got[:])
	}
	if r.os.Shootdowns == 0 {
		t.Error("no shootdown recorded")
	}
}

func TestUpgradePathChecked(t *testing.T) {
	// A store to a block previously filled for reading crosses the border
	// as an ownership upgrade and is write-checked.
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	ro, err := r.proc.Mmap(arch.PageSize, arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.proc.Translate(ro, arch.Read); err != nil {
		t.Fatal(err)
	}
	ppn, _ := r.proc.PPNOf(ro.PageOf())
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), ro, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	pa := ppn.Base()
	// Fill for reading...
	if _, err := r.hier.load(0, 0, r.proc.ASID(), pa); err != nil {
		t.Fatal(err)
	}
	// ...then a (buggy) store to the read-only page: the upgrade or the
	// eventual writeback is blocked; either way memory stays clean.
	if _, err := r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(ro, []byte{0x66})); err == nil {
		t.Error("store to read-only block should fail at the border")
	}
	if r.bc.Violations.Value() == 0 {
		t.Error("no violation recorded")
	}
}

func TestGPURejectsDoubleLaunch(t *testing.T) {
	r := newRig(t, false)
	v := r.buffer(t, arch.PageSize)
	prog := &Program{Name: "t", Phases: []Phase{{Name: "k", Traces: []Trace{{loadOp(v)}}}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err == nil {
		t.Error("second launch while running should fail")
	}
	r.eng.Run()
	// After finishing, relaunch is fine.
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Errorf("relaunch after finish: %v", err)
	}
	r.eng.Run()
}

func TestEmptyProgram(t *testing.T) {
	r := newRig(t, false)
	prog := &Program{Name: "empty"}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !r.gpu.Finished() || r.gpu.Err() != nil {
		t.Error("empty program should finish cleanly")
	}
}

func TestProgramCounters(t *testing.T) {
	p := &Program{Phases: []Phase{
		{Traces: []Trace{{loadOp(0), storeOp(0, []byte{1})}}},
		{Traces: []Trace{{loadOp(8)}}},
	}}
	if p.Ops() != 3 {
		t.Errorf("ops = %d", p.Ops())
	}
	if p.Reads() != 2 {
		t.Errorf("reads = %d", p.Reads())
	}
}

func TestOpBytes(t *testing.T) {
	if got := opBytes(storeOp(0, []byte{1, 2, 3})); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("opBytes = %v", got)
	}
	// A store without payload (hand-written test traces) yields zeros of
	// the op's size.
	got := opBytes(Op{Kind: arch.Write, Size: 4})
	if len(got) != 4 {
		t.Errorf("fallback size = %d", len(got))
	}
}
