package accel

import (
	"testing"

	"bordercontrol/internal/arch"
)

// TestHugePageEndToEnd drives an accelerator over a 2 MB-backed buffer:
// one ATS translation covers the whole huge page, Border Control fans the
// insertion out to all 512 base-page entries (§3.4.4), and accesses across
// the entire huge page pass with no further translations.
func TestHugePageEndToEnd(t *testing.T) {
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true // the boundary probes below are deliberate
	v, err := r.proc.MmapHuge(arch.HugePageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.proc.Write(v, make([]byte, arch.HugePageSize)); err != nil {
		t.Fatal(err)
	}

	// One translation for the first 4 KB page...
	res, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Huge {
		t.Fatal("translation should report a huge leaf")
	}
	// ...grants every base page of the huge page at the border.
	head, _ := r.proc.PPNOf(v.PageOf())
	for _, off := range []arch.PPN{0, 1, 255, 511} {
		if !r.bc.Check(0, r.proc.ASID(), (head + off).Base(), arch.Write).Allowed {
			t.Errorf("base page +%d not granted by the huge fan-out", off)
		}
	}
	if r.bc.Check(0, r.proc.ASID(), (head + 512).Base(), arch.Read).Allowed {
		t.Error("fan-out must stop at the huge-page boundary")
	}

	// A GPU program touching several corners of the huge page runs clean.
	var tr Trace
	for _, off := range []arch.Virt{0, 4096 * 100, 4096 * 511, arch.HugePageSize - 32} {
		tr = append(tr, storeOp(v+off, []byte{0xCD}))
		tr = append(tr, loadOp(v+off))
	}
	prog := &Program{Name: "huge", Phases: []Phase{{Name: "k", Traces: []Trace{tr}}}}
	if err := r.gpu.Launch(prog, r.proc.ASID()); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err := r.gpu.Err(); err != nil {
		t.Fatalf("huge-page program aborted: %v", err)
	}
	var b [1]byte
	if err := r.proc.Read(v+arch.HugePageSize-32, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xCD {
		t.Error("store to the huge page's tail lost")
	}
}

// TestRemapUnderAccelerator models memory compaction/swapping (§3.2.4):
// the OS moves a page to a fresh frame while the accelerator holds the old
// translation. The shootdown revokes the old frame at the border; the old
// frame becomes unreachable and the new one works after re-translation.
func TestRemapUnderAccelerator(t *testing.T) {
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v := r.buffer(t, arch.PageSize)
	if err := r.proc.Write(v, []byte("movable")); err != nil {
		t.Fatal(err)
	}
	oldPPN, _ := r.proc.PPNOf(v.PageOf())
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	if !r.bc.Check(0, r.proc.ASID(), oldPPN.Base(), arch.Write).Allowed {
		t.Fatal("pre-remap access should pass")
	}

	newPPN, err := r.os.Remap(r.proc, v.PageOf())
	if err != nil {
		t.Fatal(err)
	}
	// The old frame is revoked at the border; the accelerator's stale
	// translation is useless.
	if r.bc.Check(r.eng.Now(), r.proc.ASID(), oldPPN.Base(), arch.Read).Allowed {
		t.Error("old frame still accessible after remap")
	}
	// The new frame requires a fresh translation, then works, and the data
	// moved with it.
	if r.bc.Check(r.eng.Now(), r.proc.ASID(), newPPN.Base(), arch.Read).Allowed {
		t.Error("new frame accessible before re-translation (fail-closed violated)")
	}
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, r.eng.Now()); err != nil {
		t.Fatal(err)
	}
	if !r.bc.Check(r.eng.Now(), r.proc.ASID(), newPPN.Base(), arch.Write).Allowed {
		t.Error("new frame not granted after re-translation")
	}
	var got [7]byte
	if err := r.proc.Read(v, got[:]); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "movable" {
		t.Errorf("data lost in remap: %q", got[:])
	}
}
