package accel

import (
	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/cache"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// IOMMUHierarchy is the full-IOMMU safety configuration (paper §5.1): the
// accelerator issues every request by virtual address to the IOMMU, which
// translates and checks it; the accelerator keeps no TLB and no caches.
// The IOMMU's own L2 TLB remains (it caches translations in the trusted
// hardware). Safe, but every access pays translation plus a DRAM trip.
type IOMMUHierarchy struct {
	name       string
	eng        *sim.Engine
	ats        *ats.ATS
	border     *BorderPort
	perReqLat  sim.Time // IOMMU request-processing latency
	drainStall sim.Time
	stallUntil sim.Time

	// port models the IOMMU's finite request throughput: every memory
	// request must be translated and checked by one shared unit. A highly
	// threaded accelerator issuing several requests per cycle queues here —
	// the paper's "DRAM is overwhelmed and performance suffers" effect has
	// this translation/check bottleneck in front of it.
	port *sim.Resource
	pr   *prof.Profiler

	Loads  stats.Counter
	Stores stats.Counter
}

// NewIOMMUHierarchy builds the full-IOMMU path. border must carry a nil
// Border Control: the IOMMU itself is the (trusted) checker, via the page
// walk each translation performs.
func NewIOMMUHierarchy(name string, eng *sim.Engine, atsvc *ats.ATS, border *BorderPort, clock sim.Clock) *IOMMUHierarchy {
	return &IOMMUHierarchy{
		name:       name,
		eng:        eng,
		ats:        atsvc,
		border:     border,
		perReqLat:  clock.Cycles(20),
		drainStall: clock.Cycles(1500),
		port:       sim.NewResource(clock.Cycles(2)), // one request per two cycles
	}
}

// Access implements Hierarchy: translate and check every request at the
// IOMMU, then access memory directly (no accelerator caches to filter
// anything).
func (h *IOMMUHierarchy) Access(at sim.Time, cu int, asid arch.ASID, op Op) (sim.Time, error) {
	if h.pr != nil {
		h.pr.Enter("gpu/wavefront")
		defer h.pr.Exit()
	}
	if at < h.stallUntil {
		at = h.stallUntil
	}
	claimed := h.port.Claim(at)
	if h.pr != nil {
		h.pr.Span("iommu/port", uint64(claimed-at)+uint64(h.perReqLat))
	}
	at = claimed + h.perReqLat
	res, err := h.ats.Translate(h.name, asid, op.Addr, op.Kind, at)
	if err != nil {
		return at, err
	}
	at = res.Done
	pa := res.Entry.PPN.Base() + arch.Phys(op.Addr.Offset())
	if op.Kind == arch.Read {
		h.Loads.Inc()
		var buf [arch.BlockSize]byte
		done, ok := h.border.ReadBlock(at, asid, pa, arch.Read, &buf)
		if !ok {
			return done, ErrBlocked
		}
		return done, nil
	}
	h.Stores.Inc()
	// Uncached store: read-modify-write of the block through the IOMMU.
	// Stores are posted once translated — the wavefront does not wait for
	// DRAM, but the write still claims memory bandwidth.
	var buf [arch.BlockSize]byte
	h.border.dram.Store().ReadInto(pa.BlockOf(), buf[:])
	copy(buf[uint64(pa)&arch.BlockMask:], opBytes(op))
	if _, ok := h.border.WriteBlock(at, asid, pa.BlockOf(), &buf); !ok {
		return at, ErrBlocked
	}
	return at, nil
}

// Drain implements Hierarchy: nothing is cached, nothing to flush.
func (h *IOMMUHierarchy) Drain(at sim.Time) sim.Time { return at }

// OnDowngrade implements hostos.ShootdownListener: the IOMMU drains
// outstanding requests during a shootdown.
func (h *IOMMUHierarchy) OnDowngrade(d hostos.Downgrade) {
	if s := h.eng.Now() + h.drainStall; s > h.stallUntil {
		h.stallUntil = s
	}
}

// Name implements coherence.Agent.
func (h *IOMMUHierarchy) Name() string { return h.name }

// Trusted implements coherence.Agent: the IOMMU path is trusted hardware.
func (h *IOMMUHierarchy) Trusted() bool { return true }

// Recall implements coherence.Agent: nothing is cached.
func (h *IOMMUHierarchy) Recall(addr arch.Phys) ([]byte, bool) { return nil, false }

// CAPIConfig describes the CAPI-like configuration (paper §5.1): caches and
// TLB implemented in the trusted system, farther from the accelerator.
type CAPIConfig struct {
	Name  string
	Clock sim.Clock
	// LinkLatency is the one-way accelerator<->trusted-unit latency added
	// to every request and response.
	LinkLatency sim.Time
	// L2Size and L2Ways size the trusted shared cache.
	L2Size     int
	L2Ways     int
	L2Latency  sim.Time
	DrainStall sim.Time
}

// DefaultCAPIConfig returns the evaluated CAPI-like unit for the given L2
// size.
func DefaultCAPIConfig(name string, clock sim.Clock, l2Size int) CAPIConfig {
	return CAPIConfig{
		Name:  name,
		Clock: clock,
		// The paper models CAPI's looser coupling by removing the L1 and
		// keeping only the shared L2 in trusted hardware; the link adds a
		// couple of cycles each way on top of that.
		LinkLatency: clock.Cycles(2),
		L2Size:      l2Size,
		L2Ways:      8,
		L2Latency:   clock.Cycles(8),
		DrainStall:  clock.Cycles(1500),
	}
}

// CAPIHierarchy models IBM CAPI's philosophy: the accelerator has no
// TLB or caches of its own; a trusted unit on the host side holds the TLB
// (the ATS L2 TLB) and a shared L2 cache. Memory safety is complete, but
// every access crosses the longer link and the accelerator cannot tune the
// cache to its needs.
type CAPIHierarchy struct {
	cfg    CAPIConfig
	eng    *sim.Engine
	ats    *ats.ATS
	border *BorderPort
	l2     *cache.Cache
	pr     *prof.Profiler

	stallUntil sim.Time

	Loads  stats.Counter
	Stores stats.Counter
}

// NewCAPIHierarchy builds the trusted CAPI-like unit.
func NewCAPIHierarchy(cfg CAPIConfig, eng *sim.Engine, atsvc *ats.ATS, border *BorderPort) (*CAPIHierarchy, error) {
	l2, err := cache.New(cache.Config{
		Name:       cfg.Name + "-capi-l2",
		SizeBytes:  cfg.L2Size,
		Ways:       cfg.L2Ways,
		Policy:     cache.WriteBack,
		HitLatency: cfg.L2Latency,
	})
	if err != nil {
		return nil, err
	}
	return &CAPIHierarchy{cfg: cfg, eng: eng, ats: atsvc, border: border, l2: l2}, nil
}

// L2 returns the trusted cache (for tests).
func (h *CAPIHierarchy) L2() *cache.Cache { return h.l2 }

// Access implements Hierarchy.
func (h *CAPIHierarchy) Access(at sim.Time, cu int, asid arch.ASID, op Op) (sim.Time, error) {
	if h.pr != nil {
		h.pr.Enter("gpu/wavefront")
		defer h.pr.Exit()
	}
	if at < h.stallUntil {
		at = h.stallUntil
	}
	// Cross to the trusted unit, translate there (trusted TLB), access the
	// trusted cache, and return.
	if h.pr != nil {
		h.pr.Span("capi/link", uint64(h.cfg.LinkLatency))
	}
	at += h.cfg.LinkLatency
	res, err := h.ats.Translate(h.cfg.Name, asid, op.Addr, op.Kind, at)
	if err != nil {
		return at, err
	}
	at = res.Done
	pa := res.Entry.PPN.Base() + arch.Phys(op.Addr.Offset())
	lat := at + h.l2.HitLatency()
	if !h.l2.Lookup(pa) {
		var buf [arch.BlockSize]byte
		done, ok := h.border.ReadBlock(lat, asid, pa, op.Kind, &buf)
		if !ok {
			return done, ErrBlocked
		}
		victim, dirty := h.l2.Fill(pa, buf[:])
		if dirty {
			// Claimed at request time; see Sandboxed.l2Fill.
			h.border.WriteBlock(lat, asid, victim.Addr, &victim.Data)
		}
		lat = done
	}
	if op.Kind == arch.Write {
		// Posted: the wavefront retires once the store is handed to the
		// trusted unit; the fill/writeback above still claimed resources.
		h.Stores.Inc()
		h.l2.Write(pa, opBytes(op))
		return at, nil
	}
	h.Loads.Inc()
	return lat + h.cfg.LinkLatency, nil
}

// Drain implements Hierarchy: flush the trusted cache at kernel end.
func (h *CAPIHierarchy) Drain(at sim.Time) sim.Time {
	done := at
	for _, db := range h.l2.FlushAll() {
		db := db
		if t, ok := h.border.WriteBlock(at, 0, db.Addr, &db.Data); ok && t > done {
			done = t
		}
	}
	return done
}

// OnDowngrade implements hostos.ShootdownListener. The trusted unit's
// caches hold physical addresses and need no flush; it drains outstanding
// requests like any other agent.
func (h *CAPIHierarchy) OnDowngrade(d hostos.Downgrade) {
	if s := h.eng.Now() + h.cfg.DrainStall; s > h.stallUntil {
		h.stallUntil = s
	}
}

// Name implements coherence.Agent.
func (h *CAPIHierarchy) Name() string { return h.cfg.Name }

// Trusted implements coherence.Agent: CAPI's caches live in trusted
// hardware.
func (h *CAPIHierarchy) Trusted() bool { return true }

// Recall implements coherence.Agent.
func (h *CAPIHierarchy) Recall(addr arch.Phys) ([]byte, bool) {
	data, dirty, present := h.l2.Extract(addr)
	if !present || !dirty {
		return nil, false
	}
	return data[:], true
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler
// on the hierarchy and its border port.
func (h *IOMMUHierarchy) SetProfiler(p *prof.Profiler) {
	h.pr = p
	if h.border != nil {
		h.border.SetProfiler(p)
	}
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler
// on the hierarchy and its border port.
func (h *CAPIHierarchy) SetProfiler(p *prof.Profiler) {
	h.pr = p
	if h.border != nil {
		h.border.SetProfiler(p)
	}
}

// RegisterMetrics publishes the IOMMU path's counters under s
// ("gpu.loads", "gpu.stores", "gpu.port.*").
func (h *IOMMUHierarchy) RegisterMetrics(s stats.Scope) {
	s.Counter("loads", &h.Loads)
	s.Counter("stores", &h.Stores)
	if h.border != nil {
		h.border.RegisterMetrics(s.Scope("port"))
	}
}

// RegisterMetrics publishes the CAPI path's counters under s ("gpu.loads",
// "gpu.l2.*", "gpu.port.*").
func (h *CAPIHierarchy) RegisterMetrics(s stats.Scope) {
	s.Counter("loads", &h.Loads)
	s.Counter("stores", &h.Stores)
	h.l2.RegisterMetrics(s.Scope("l2"))
	if h.border != nil {
		h.border.RegisterMetrics(s.Scope("port"))
	}
}
