package accel

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// TestTwoAcceleratorsAreIsolated builds two sandboxed accelerators with
// independent Border Controls over one shared memory system and checks the
// per-accelerator property: permissions inserted for gpu0 never leak to
// gpu1, and each accelerator's Protection Table is distinct (the paper's
// per-accelerator 0.006% overhead).
func TestTwoAcceleratorsAreIsolated(t *testing.T) {
	store, err := memory.NewStore(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	osm.KeepProcessOnViolation = true
	eng := &sim.Engine{}
	clock := sim.MustClock(700e6)
	atsvc, err := ats.New(ats.DefaultConfig(clock), osm, dram)
	if err != nil {
		t.Fatal(err)
	}
	dir := coherence.NewDirectory(store)
	osm.AddShootdownListener(atsInvalidate{atsvc})

	type accelBox struct {
		bc   *core.BorderControl
		hier *Sandboxed
	}
	build := func(name string) accelBox {
		bc, err := core.New(name, core.DefaultConfig(clock), osm, dram, eng)
		if err != nil {
			t.Fatal(err)
		}
		atsvc.AddObserver(bc)
		agent := dir.ReserveAgent()
		port := NewBorderPort(bc, dir, agent, dram, clock.Cycles(4))
		hier, err := NewSandboxed(DefaultSandboxConfig(name, clock, 1, 64<<10), eng, atsvc, port)
		if err != nil {
			t.Fatal(err)
		}
		dir.BindAgent(agent, hier)
		bc.SetAccelerator(hier)
		osm.AddShootdownListener(hier)
		osm.AddShootdownListener(bc)
		return accelBox{bc: bc, hier: hier}
	}
	gpu0, gpu1 := build("gpu0"), build("gpu1")

	// One process runs on each accelerator.
	p0, err := osm.NewProcess("p0")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := osm.NewProcess("p1")
	if err != nil {
		t.Fatal(err)
	}
	atsvc.Activate("gpu0", p0.ASID())
	atsvc.Activate("gpu1", p1.ASID())
	if err := gpu0.bc.ProcessStart(p0.ASID()); err != nil {
		t.Fatal(err)
	}
	if err := gpu1.bc.ProcessStart(p1.ASID()); err != nil {
		t.Fatal(err)
	}

	// Distinct tables in distinct memory.
	if gpu0.bc.Table().Base() == gpu1.bc.Table().Base() {
		t.Fatal("accelerators share a protection table")
	}

	v0, err := p0.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// gpu0 translates p0's page; BOTH border controls observe the ATS, but
	// only gpu0's (where p0 is active) inserts.
	if _, err := atsvc.Translate("gpu0", p0.ASID(), v0, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	ppn0, _ := p0.PPNOf(v0.PageOf())
	if !gpu0.bc.Check(0, p0.ASID(), ppn0.Base(), arch.Write).Allowed {
		t.Error("gpu0 should access its process's page")
	}
	if gpu1.bc.Check(0, p1.ASID(), ppn0.Base(), arch.Read).Allowed {
		t.Error("gpu1 must not inherit gpu0's permissions")
	}

	// A downgrade of p0's page touches gpu0's border only.
	flushesBefore := gpu1.bc.CacheFlushes.Value()
	if _, err := osm.Protect(p0, v0, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if gpu0.bc.Check(eng.Now(), p0.ASID(), ppn0.Base(), arch.Write).Allowed {
		t.Error("gpu0 write after downgrade must be blocked")
	}
	if gpu1.bc.CacheFlushes.Value() != flushesBefore {
		t.Error("gpu1 flushed for a process it never ran")
	}

	// Trojans in each accelerator cannot reach the other's data.
	trojan1 := NewTrojan(gpu1.hier.Border())
	if _, ok := trojan1.TryRead(0, ppn0.Base()); ok {
		t.Error("gpu1's trojan read p0's memory")
	}
}
