package accel

import (
	"reflect"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// BorderPort is the physical-address path from an accelerator's outermost
// cache into the trusted memory system. Depending on configuration it
// applies a Border Control check (nil bc means unchecked — the unsafe
// ATS-only baseline or the inherently-trusted CAPI path), then goes through
// the coherence directory to DRAM.
type BorderPort struct {
	bc         core.ProtectionArchitecture // nil unless a border design guards this port
	check      core.Checker                // nil: no border checking
	dir        *coherence.Directory
	agent      coherence.AgentID
	dram       *memory.DRAM
	dirLatency sim.Time
	pr         *prof.Profiler

	Reads         stats.Counter
	Writes        stats.Counter
	BlockedReads  stats.Counter
	BlockedWrites stats.Counter

	// ReadLatency and WriteLatency distribute the request-to-completion
	// time of every block crossing (all outcomes, including blocked ones)
	// in simulated picoseconds.
	ReadLatency  stats.Histogram
	WriteLatency stats.Histogram
}

// NewBorderPort wires a border port. bc may be nil for unchecked paths;
// a typed-nil design pointer is treated the same as a nil interface.
// agent is the accelerator's directory agent ID.
func NewBorderPort(bc core.ProtectionArchitecture, dir *coherence.Directory, agent coherence.AgentID, dram *memory.DRAM, dirLatency sim.Time) *BorderPort {
	p := &BorderPort{dir: dir, agent: agent, dram: dram, dirLatency: dirLatency}
	if !isNilChecker(bc) {
		p.bc = bc
		p.check = bc
	}
	return p
}

// BC returns the attached border design, or nil.
func (p *BorderPort) BC() core.ProtectionArchitecture { return p.bc }

// SetChecker installs an arbitrary border checker (e.g. core.TrustZone, or
// the adversary harness's auditing oracle) in place of the design. Pass
// nil to remove checking entirely; a typed-nil checker (a nil design
// pointer boxed in the interface) also removes it — the hot path calls
// p.check without a nil-receiver guard, so letting one through would
// panic on the first crossing.
func (p *BorderPort) SetChecker(c core.Checker) {
	if isNilChecker(c) {
		p.check, p.bc = nil, nil
		return
	}
	p.check = c
	p.bc, _ = c.(core.ProtectionArchitecture)
}

// isNilChecker reports whether c is nil for dispatch purposes: the nil
// interface, or an interface boxing a nil pointer (or other nilable
// kind), whose method calls would hit a nil receiver.
func isNilChecker(c core.Checker) bool {
	if c == nil {
		return true
	}
	switch v := reflect.ValueOf(c); v.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Func, reflect.Chan, reflect.Slice, reflect.Interface:
		return v.IsNil()
	}
	return false
}

// ReadBlock requests the 128-byte block at addr from host memory on behalf
// of process asid (0 for hardware-initiated crossings). intent is Read for
// a plain fill and Write for a fill-for-ownership (a store miss): Border
// Control checks the permission the accelerator will ultimately exercise.
// The block data is copied into buf on success.
//
// The permission check proceeds in parallel with the memory access (paper
// §3.1.1): the returned time is the max of the two, but a failed check
// discards the data — it never reaches the accelerator, no line is
// allocated, and the coherence directory records nothing.
func (p *BorderPort) ReadBlock(at sim.Time, asid arch.ASID, addr arch.Phys, intent arch.AccessKind, buf *[arch.BlockSize]byte) (sim.Time, bool) {
	addr = addr.BlockOf()
	p.Reads.Inc()
	if p.pr != nil {
		p.pr.Enter("border/port")
		defer p.pr.Exit()
	}
	checkDone := at
	if p.check != nil {
		dec := p.check.Check(at, asid, addr, intent)
		if !dec.Allowed {
			p.BlockedReads.Inc()
			p.recordLatency(&p.ReadLatency, at, dec.Done)
			return dec.Done, false
		}
		checkDone = dec.Done
	}
	// Coherence: a fill-for-ownership is a GetM, a plain fill a GetS.
	if intent == arch.Write {
		p.dir.RequestModified(p.agent, addr)
	} else {
		p.dir.RequestShared(p.agent, addr)
	}
	memDone := p.dram.AccessDone(at+p.dirLatency, addr, arch.Read)
	p.profileMemory(memDone, at)
	p.dram.Store().ReadInto(addr, buf[:])
	done := memDone
	if checkDone > memDone {
		done = checkDone
	}
	p.recordLatency(&p.ReadLatency, at, done)
	return done, true
}

// WriteBlock writes a dirty block back to host memory on behalf of asid
// (0 for flush-driven writebacks with no process context). The check must
// pass before the data is applied: a blocked writeback leaves memory
// untouched (paper §3.2.4).
func (p *BorderPort) WriteBlock(at sim.Time, asid arch.ASID, addr arch.Phys, data *[arch.BlockSize]byte) (sim.Time, bool) {
	addr = addr.BlockOf()
	p.Writes.Inc()
	if p.pr != nil {
		p.pr.Enter("border/port")
		defer p.pr.Exit()
	}
	checkDone := at
	if p.check != nil {
		dec := p.check.Check(at, asid, addr, arch.Write)
		if !dec.Allowed {
			p.BlockedWrites.Inc()
			p.recordLatency(&p.WriteLatency, at, dec.Done)
			return dec.Done, false
		}
		checkDone = dec.Done
	}
	if err := p.dir.Writeback(p.agent, addr, data[:], false); err != nil {
		// The directory did not consider us owner (e.g. a trusted recall
		// already collected the block); apply the data directly — the
		// check above already authorized it.
		p.dram.Store().Write(addr, data[:])
	}
	// The write buffers at the memory controller on arrival and drains
	// once the check passes: the channel slot is claimed at arrival, and
	// completion cannot precede the check.
	memDone := p.dram.AccessDone(at+p.dirLatency, addr, arch.Write)
	p.profileMemory(memDone, at)
	done := memDone
	if checkDone > done {
		done = checkDone
	}
	p.recordLatency(&p.WriteLatency, at, done)
	return done, true
}

// Upgrade requests write ownership of a block the accelerator already
// holds shared (a store hit on a read-filled block), on behalf of asid. No
// data moves, but the request crosses the border and is checked.
func (p *BorderPort) Upgrade(at sim.Time, asid arch.ASID, addr arch.Phys) (sim.Time, bool) {
	addr = addr.BlockOf()
	if p.pr != nil {
		p.pr.Enter("border/port")
		defer p.pr.Exit()
	}
	done := at
	if p.check != nil {
		dec := p.check.Check(at, asid, addr, arch.Write)
		if !dec.Allowed {
			p.BlockedWrites.Inc()
			p.recordLatency(&p.WriteLatency, at, dec.Done)
			return dec.Done, false
		}
		done = dec.Done
	}
	p.dir.RequestModified(p.agent, addr)
	if p.pr != nil {
		p.pr.Span("coherence/dir", uint64(p.dirLatency))
	}
	done += p.dirLatency
	p.recordLatency(&p.WriteLatency, at, done)
	return done, true
}

// Owned reports whether the accelerator currently owns the block (may hold
// it dirty).
func (p *BorderPort) Owned(addr arch.Phys) bool {
	return p.dir.OwnerOf(addr) == p.agent
}

// Evict tells the directory the accelerator silently dropped a clean block.
func (p *BorderPort) Evict(addr arch.Phys) { p.dir.Evict(p.agent, addr) }

// RegisterMetrics publishes the port's traffic counters under s
// ("gpu.port.reads", "gpu.port.blocked_writes", ...).
func (p *BorderPort) RegisterMetrics(s stats.Scope) {
	s.Counter("reads", &p.Reads)
	s.Counter("writes", &p.Writes)
	s.Counter("blocked_reads", &p.BlockedReads)
	s.Counter("blocked_writes", &p.BlockedWrites)
	s.Histogram("read_latency_ps", &p.ReadLatency)
	s.Histogram("write_latency_ps", &p.WriteLatency)
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler.
func (p *BorderPort) SetProfiler(pr *prof.Profiler) { p.pr = pr }

// recordLatency records one crossing's request-to-completion latency.
func (p *BorderPort) recordLatency(h *stats.Histogram, at, done sim.Time) {
	var lat uint64
	if done > at {
		lat = uint64(done - at)
	}
	h.Record(lat)
}

// profileMemory attributes a crossing's directory hop and DRAM service
// time (the access completed at memDone for a request arriving at `at`).
func (p *BorderPort) profileMemory(memDone, at sim.Time) {
	if p.pr == nil {
		return
	}
	p.pr.Span("coherence/dir", uint64(p.dirLatency))
	if memDone > at+p.dirLatency {
		p.pr.Span("host/dram", uint64(memDone-at-p.dirLatency))
	}
}
