package accel

import (
	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
)

// Trojan models a malicious accelerator (or one carrying a hardware
// trojan): arbitrary logic with direct access to physical memory, exactly
// the paper's threat vector (§2.1). It fabricates physical addresses
// without consulting the ATS and fires them across the border.
type Trojan struct {
	border *BorderPort

	// ASID is the process identity the trojan's requests claim. Malicious
	// hardware can put anything on the wire; the border uses it only to
	// attribute violations, never to grant permissions, so spoofing buys the
	// trojan nothing (and frames the spoofed process for the kill policy —
	// which is why drivers, not accelerators, assign ASIDs in real systems;
	// here it lets campaigns exercise the attribution path).
	ASID arch.ASID
}

// NewTrojan returns a trojan attached to the given border port.
func NewTrojan(border *BorderPort) *Trojan { return &Trojan{border: border} }

// TryRead attempts to read the block at pa. It returns the data and true
// if the request reached memory; false if the border blocked it.
func (t *Trojan) TryRead(at sim.Time, pa arch.Phys) ([arch.BlockSize]byte, bool) {
	var buf [arch.BlockSize]byte
	_, ok := t.border.ReadBlock(at, t.ASID, pa, arch.Read, &buf)
	if !ok {
		return [arch.BlockSize]byte{}, false
	}
	return buf, true
}

// TryWrite attempts to overwrite the block at pa. It reports whether the
// write reached memory.
func (t *Trojan) TryWrite(at sim.Time, pa arch.Phys, data [arch.BlockSize]byte) bool {
	// A malicious cache claims ownership first; the upgrade is itself a
	// border crossing, so try it, then fall back to a bare writeback.
	if _, ok := t.border.Upgrade(at, t.ASID, pa); !ok {
		return false
	}
	_, ok := t.border.WriteBlock(at, t.ASID, pa, &data)
	return ok
}

// BuggyShootdown wraps a Sandboxed hierarchy with a broken TLB-shootdown
// implementation (the incorrect-accelerator example from paper §2.1): it
// ignores invalidations, so wavefronts keep using stale translations after
// the OS revokes or remaps a page.
type BuggyShootdown struct {
	*Sandboxed
}

// NewBuggyShootdown wraps h.
func NewBuggyShootdown(h *Sandboxed) *BuggyShootdown { return &BuggyShootdown{Sandboxed: h} }

// InvalidateTLBPage does nothing: the bug.
func (b *BuggyShootdown) InvalidateTLBPage(asid arch.ASID, vpn arch.VPN) {}

// InvalidateTLBAll does nothing: the bug.
func (b *BuggyShootdown) InvalidateTLBAll() {}

// OnDowngrade ignores the shootdown entirely.
func (b *BuggyShootdown) OnDowngrade(d interface{}) {}

// FlushIgnorer wraps a Sandboxed hierarchy that ignores downgrade flush
// requests (paper §3.2.4's "even if the accelerator ignores the request to
// flush its caches, there is no security vulnerability"): dirty blocks stay
// in its caches and are caught at the border when finally written back.
type FlushIgnorer struct {
	*Sandboxed
}

// NewFlushIgnorer wraps h.
func NewFlushIgnorer(h *Sandboxed) *FlushIgnorer { return &FlushIgnorer{Sandboxed: h} }

// FlushPage refuses to flush and returns immediately.
func (f *FlushIgnorer) FlushPage(at sim.Time, ppn arch.PPN) sim.Time { return at }
