package accel

// Regression tests for denied-request residue: a blocked border crossing
// must leave the accelerator-side hierarchy and the coherence directory
// exactly as they were. The store path once wrote the L1 before the border
// authorized the ownership upgrade, so a blocked store still served the
// forbidden data to later loads from the same CU.

import (
	"bytes"
	"errors"
	"testing"

	"bordercontrol/internal/arch"
)

func TestBlockedStoreLeavesNoL1Residue(t *testing.T) {
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v, err := r.proc.Mmap(arch.PageSize, arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.proc.Translate(v, arch.Read); err != nil {
		t.Fatal(err)
	}
	// Read-only grant; a load pulls the block into L1 and L2.
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	ppn, _ := r.proc.PPNOf(v.PageOf())
	pa := ppn.Base()
	r.os.Store().Write(pa, []byte("original")) // seed known bytes in the frame
	if _, err := r.hier.load(0, 0, r.proc.ASID(), pa); err != nil {
		t.Fatal(err)
	}
	if !r.hier.L1(0).Contains(pa) {
		t.Fatal("load should have filled the L1; test premise broken")
	}

	// The store's ownership upgrade is refused at the border.
	if _, err := r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(v, []byte("tampered"))); !errors.Is(err, ErrBlocked) {
		t.Fatalf("store through a read-only grant = %v, want ErrBlocked", err)
	}

	// No cache level may have absorbed the forbidden data: a later load
	// from the same CU must still see the original bytes.
	var l1buf, l2buf [arch.BlockSize]byte
	r.hier.L1(0).Read(pa, l1buf[:])
	r.hier.L2().Read(pa, l2buf[:])
	if !bytes.Equal(l1buf[:8], []byte("original")) {
		t.Errorf("L1 after blocked store = %q, want %q (denied data cached)", l1buf[:8], "original")
	}
	if !bytes.Equal(l2buf[:8], []byte("original")) {
		t.Errorf("L2 after blocked store = %q, want %q", l2buf[:8], "original")
	}
	if r.hier.L2().IsDirty(pa) {
		t.Error("blocked store left the L2 block dirty")
	}
}

func TestBlockedFillLeavesNoResidue(t *testing.T) {
	// A fill of a never-granted physical page is refused at the border. The
	// refusal must be total: no line in any cache, nothing dirty, and the
	// coherence directory must not have recorded the accelerator as sharer
	// or owner — a directory entry for a denied fill would later recall or
	// invalidate against a block the accelerator never legally held.
	r := newRig(t, true)
	r.os.KeepProcessOnViolation = true
	v := r.buffer(t, arch.PageSize) // mapped RW, never translated: fail-closed
	ppn, _ := r.proc.PPNOf(v.PageOf())
	pa := ppn.Base()
	l2Before := r.hier.L2().ValidBlocks()

	for _, intent := range []arch.AccessKind{arch.Read, arch.Write} {
		var err error
		if intent == arch.Read {
			_, err = r.hier.load(0, 0, r.proc.ASID(), pa)
		} else {
			_, err = r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(v, []byte{0x99}))
		}
		if !errors.Is(err, ErrBlocked) {
			t.Fatalf("%v fill of ungranted page = %v, want ErrBlocked", intent, err)
		}
		if r.hier.L1(0).Contains(pa) {
			t.Errorf("%v: blocked fill left an L1 line", intent)
		}
		if r.hier.L2().Contains(pa) {
			t.Errorf("%v: blocked fill left an L2 line", intent)
		}
		if got := r.hier.L2().ValidBlocks(); got != l2Before {
			t.Errorf("%v: L2 valid blocks %d, want %d", intent, got, l2Before)
		}
		if owner := r.dir.OwnerOf(pa); owner != -1 {
			t.Errorf("%v: directory records owner %d for a denied fill", intent, owner)
		}
		if n := r.dir.SharersOf(pa); n != 0 {
			t.Errorf("%v: directory records %d sharers for a denied fill", intent, n)
		}
	}
}
