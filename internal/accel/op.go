// Package accel models the untrusted accelerators: a GPU built from compute
// units running many wavefronts, its L1 TLBs and L1/L2 caches, and the
// memory-path variants evaluated in the paper (ATS-only, full IOMMU,
// CAPI-like, Border Control with and without a BCC). It also provides the
// misbehaving accelerators used to exercise the threat model.
package accel

import (
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

// Op is one memory operation of a wavefront: some compute, then a single
// coalesced access. Traces are produced by internal/workload from real
// algorithm executions.
type Op struct {
	// Compute is the number of GPU cycles of computation preceding the
	// access.
	Compute uint16
	// Kind is read or write.
	Kind arch.AccessKind
	// Size is the access width in bytes (1..32, one coalesced sector at
	// most; block-sized traffic is modelled by the caches, not the ops).
	Size uint8
	// Addr is the virtual address accessed.
	Addr arch.Virt
	// Data holds the stored bytes (Kind == Write only, len == Size);
	// replaying stores with their real values keeps simulated memory
	// functionally correct.
	Data []byte
}

// Trace is the in-order memory behaviour of one wavefront within a phase.
type Trace []Op

// Phase is one kernel launch: its traces run concurrently across the GPU's
// wavefront slots, and the next phase starts only when all complete (the
// kernel-boundary barrier).
type Phase struct {
	Name   string
	Traces []Trace
}

// Program is a whole accelerator workload: an ordered list of phases plus
// an optional functional check of the results it left in process memory.
type Program struct {
	Name   string
	Phases []Phase
	// Verify, when set, checks the output the program left in the process
	// address space. It runs after the GPU finishes and all caches are
	// flushed.
	Verify func(p *hostos.Process) error
}

// Ops returns the total operation count across all phases.
func (p *Program) Ops() uint64 {
	var n uint64
	for _, ph := range p.Phases {
		for _, t := range ph.Traces {
			n += uint64(len(t))
		}
	}
	return n
}

// Reads returns the total read-operation count.
func (p *Program) Reads() uint64 {
	var n uint64
	for _, ph := range p.Phases {
		for _, t := range ph.Traces {
			for _, op := range t {
				if op.Kind == arch.Read {
					n++
				}
			}
		}
	}
	return n
}
