package accel

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// GPUConfig sets the compute side of the accelerator: how many compute
// units, and how many wavefront contexts each can keep in flight. The
// paper's two proxies are 8 CUs (highly threaded, latency tolerant) and 1
// CU with few contexts (moderately threaded, latency sensitive).
type GPUConfig struct {
	Name       string
	Clock      sim.Clock
	CUs        int
	WavesPerCU int
}

// GPU executes Programs: each phase's traces are dispatched dynamically to
// wavefront slots, each wavefront replays its trace in order (one
// outstanding access at a time — latency tolerance comes from the number of
// wavefronts), and phases are separated by a full barrier, like kernel
// launches.
type GPU struct {
	cfg  GPUConfig
	eng  *sim.Engine
	hier Hierarchy

	asid     arch.ASID
	prog     *Program
	phaseIdx int
	queue    []Trace
	running  int
	nextSlot int

	// waves are the in-flight wavefront contexts, recycled through
	// freeWaves; stepFn is the pre-bound continuation callback whose payload
	// is a wave index. Together they keep the per-memory-op event
	// (the simulator's hottest path) free of closure allocation.
	waves     []wave
	freeWaves []int32
	stepFn    sim.EventFunc

	// issue serializes memory-op issue per CU: one operation per GPU cycle,
	// the LSU port limit that makes throughput (not just latency) a first-
	// class constraint.
	issue []*sim.Resource

	launched bool
	finished bool
	start    sim.Time
	finish   sim.Time
	err      error

	// OnFinish, when non-nil, fires once per launched program as it
	// completes (or aborts), with the completion time — after the final
	// cache drain. In a sharded fleet it is the hook that raises the
	// completion interrupt back to the host coordinator shard. Set it
	// before Launch; it runs inside the simulation, so it may schedule.
	OnFinish func(at sim.Time)

	// tr receives per-phase and per-kernel spans under the "gpu" category.
	tr         *trace.Tracer
	phaseStart sim.Time

	// OpsDone counts completed memory operations.
	OpsDone stats.Counter
}

// NewGPU returns a GPU over the given hierarchy.
func NewGPU(cfg GPUConfig, eng *sim.Engine, hier Hierarchy) (*GPU, error) {
	if cfg.CUs <= 0 || cfg.WavesPerCU <= 0 {
		return nil, fmt.Errorf("accel: bad GPU geometry CUs=%d waves/CU=%d", cfg.CUs, cfg.WavesPerCU)
	}
	g := &GPU{cfg: cfg, eng: eng, hier: hier}
	for i := 0; i < cfg.CUs; i++ {
		g.issue = append(g.issue, sim.NewResource(cfg.Clock.Cycles(1)))
	}
	g.stepFn = g.stepEvent
	return g, nil
}

// wave is one in-flight wavefront: which CU it issues on, its trace, and
// the next position to execute.
type wave struct {
	cu    int32
	pos   int32
	trace Trace
}

// Config returns the GPU configuration.
func (g *GPU) Config() GPUConfig { return g.cfg }

// SetTracer attaches (or, with nil, detaches) a timeline tracer; the GPU
// emits one span per phase and one per kernel under the "gpu" category.
func (g *GPU) SetTracer(t *trace.Tracer) { g.tr = t }

// RegisterMetrics publishes the GPU's counters under s ("gpu.ops",
// "gpu.cycles").
func (g *GPU) RegisterMetrics(s stats.Scope) {
	s.Counter("ops", &g.OpsDone)
	s.CounterFunc("cycles", g.Cycles)
}

// Hierarchy returns the memory hierarchy.
func (g *GPU) Hierarchy() Hierarchy { return g.hier }

// Slots returns the number of concurrent wavefront contexts.
func (g *GPU) Slots() int { return g.cfg.CUs * g.cfg.WavesPerCU }

// Launch schedules prog to run as process asid, starting now. Call
// Engine.Run (or RunUntil) afterwards to execute it.
func (g *GPU) Launch(prog *Program, asid arch.ASID) error {
	if g.launched && !g.finished {
		return fmt.Errorf("accel: GPU %s already running %q", g.cfg.Name, g.prog.Name)
	}
	g.prog = prog
	g.asid = asid
	g.phaseIdx = -1
	g.launched = true
	g.finished = false
	g.err = nil
	g.start = g.eng.Now()
	g.nextPhase(g.eng.Now())
	return nil
}

// Finished reports whether the launched program has completed (or aborted).
func (g *GPU) Finished() bool { return g.finished }

// Err returns the abort cause, if the program did not complete cleanly.
func (g *GPU) Err() error { return g.err }

// FinishTime returns when the program (including its final cache drain)
// completed.
func (g *GPU) FinishTime() sim.Time { return g.finish }

// Runtime returns the program's duration in simulated time.
func (g *GPU) Runtime() sim.Time { return g.finish - g.start }

// Cycles returns the program's duration in GPU cycles.
func (g *GPU) Cycles() uint64 { return g.cfg.Clock.CyclesAt(g.Runtime()) }

func (g *GPU) nextPhase(at sim.Time) {
	if g.tr != nil && g.phaseIdx >= 0 && g.phaseIdx < len(g.prog.Phases) {
		g.tr.Complete("gpu", g.prog.Phases[g.phaseIdx].Name, uint64(g.phaseStart), uint64(at-g.phaseStart))
	}
	g.phaseIdx++
	g.phaseStart = at
	if g.err != nil || g.phaseIdx >= len(g.prog.Phases) {
		done := g.hier.Drain(at)
		g.finished = true
		g.finish = done
		if g.tr != nil {
			g.tr.Complete("gpu", "kernel "+g.prog.Name, uint64(g.start), uint64(done-g.start))
		}
		if g.OnFinish != nil {
			g.OnFinish(done)
		}
		return
	}
	ph := &g.prog.Phases[g.phaseIdx]
	g.queue = append(g.queue[:0], ph.Traces...)
	if len(g.queue) == 0 {
		g.nextPhase(at)
		return
	}
	g.nextSlot = 0
	slots := g.Slots()
	for s := 0; s < slots && len(g.queue) > 0; s++ {
		g.dispatch(at, s%g.cfg.CUs)
	}
}

// dispatch starts the next queued trace on compute unit cu, in a wave
// context drawn from the pool.
func (g *GPU) dispatch(at sim.Time, cu int) {
	t := g.queue[0]
	g.queue = g.queue[1:]
	g.running++
	var w int32
	if n := len(g.freeWaves); n > 0 {
		w = g.freeWaves[n-1]
		g.freeWaves = g.freeWaves[:n-1]
	} else {
		g.waves = append(g.waves, wave{})
		w = int32(len(g.waves) - 1)
	}
	g.waves[w] = wave{cu: int32(cu), trace: t}
	g.step(at, w)
}

// stepEvent is the engine-facing continuation: arg is a wave index.
func (g *GPU) stepEvent(now sim.Time, arg uint64) { g.step(now, int32(arg)) }

// step executes wave w's next trace position at the given time and
// schedules the continuation.
func (g *GPU) step(at sim.Time, w int32) {
	wv := &g.waves[w]
	if g.err != nil || int(wv.pos) >= len(wv.trace) {
		g.release(w)
		g.retire(at)
		return
	}
	op := wv.trace[wv.pos]
	wv.pos++
	cu := int(wv.cu)
	at += g.cfg.Clock.Cycles(uint64(op.Compute))
	at = g.issue[cu].Claim(at) // LSU port: one memory op per CU per cycle
	done, err := g.hier.Access(at, cu, g.asid, op)
	if err != nil {
		g.err = err
		g.release(w)
		g.retire(done)
		return
	}
	g.OpsDone.Inc()
	g.eng.ScheduleInto(done, g.stepFn, uint64(w))
}

// release returns a wave context to the pool, dropping its trace reference.
func (g *GPU) release(w int32) {
	g.waves[w] = wave{}
	g.freeWaves = append(g.freeWaves, w)
}

// retire ends one wavefront's trace: pick up more work, or close the phase.
func (g *GPU) retire(at sim.Time) {
	g.running--
	if g.err == nil && len(g.queue) > 0 {
		cu := g.nextSlot % g.cfg.CUs
		g.nextSlot++
		g.dispatch(at, cu)
		return
	}
	if g.running == 0 {
		g.nextPhase(at)
	}
}
