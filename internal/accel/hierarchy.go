package accel

import (
	"errors"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/ats"
	"bordercontrol/internal/cache"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/tlb"
)

// ErrBlocked is returned when a request is refused at the border: the
// accelerator receives no data and the write does not happen.
var ErrBlocked = errors.New("accel: request blocked at border")

// Hierarchy is the memory path of one accelerator, from a compute unit's
// access to its completion time. The five evaluated configurations differ
// only in which Hierarchy they use.
type Hierarchy interface {
	// Access performs op for a wavefront on compute unit cu of process
	// asid, returning the completion time.
	Access(at sim.Time, cu int, asid arch.ASID, op Op) (sim.Time, error)
	// Drain flushes whatever accelerator-side state must reach memory at
	// kernel end (dirty caches) and returns the completion time.
	Drain(at sim.Time) sim.Time
}

// zeroBlock backs the data of ops that carry none. Callers only ever copy
// from the returned slice (cache.Write copies into the line), so sharing
// one immutable buffer keeps stores allocation-free.
var zeroBlock [arch.BlockSize]byte

func opBytes(op Op) []byte {
	if op.Data != nil {
		return op.Data
	}
	n := int(op.Size)
	if n <= 0 || n > int(arch.BlockSize) {
		n = 8
	}
	return zeroBlock[:n]
}

// SandboxConfig describes the accelerator-resident hierarchy used by the
// ATS-only baseline and both Border Control configurations: per-CU L1
// caches and TLBs, a shared L2.
type SandboxConfig struct {
	Name         string
	Clock        sim.Clock
	CUs          int
	L1TLBEntries int // 64 in Table 3
	L1Size       int // 16 KB in Table 3
	L2Size       int // 256 KB (highly threaded) / 64 KB (moderately)
	L1Ways       int
	L2Ways       int
	L1Latency    sim.Time
	L2Latency    sim.Time
	// DrainStall models completing outstanding requests and the ATS flush
	// during a TLB shootdown; it applies to trusted and untrusted
	// accelerators alike (paper §5.2.4).
	DrainStall sim.Time
	// FlushScanLatency is the cost of walking the cache arrays during a
	// (selective or full) flush, independent of how many blocks turn out
	// dirty. This is the Border-Control-only part of a downgrade (paper
	// §5.2.4: BC pays roughly twice the trusted baseline).
	FlushScanLatency sim.Time
}

// DefaultSandboxConfig returns the Table 3 GPU cache hierarchy.
func DefaultSandboxConfig(name string, clock sim.Clock, cus int, l2Size int) SandboxConfig {
	return SandboxConfig{
		Name:             name,
		Clock:            clock,
		CUs:              cus,
		L1TLBEntries:     64,
		L1Size:           16 << 10,
		L2Size:           l2Size,
		L1Ways:           4,
		L2Ways:           8,
		L1Latency:        clock.Cycles(1),
		L2Latency:        clock.Cycles(8),
		DrainStall:       clock.Cycles(1500),
		FlushScanLatency: clock.Cycles(1200),
	}
}

// Sandboxed is the accelerator-optimized hierarchy: physically-addressed
// L1s per CU, a shared physically-addressed L2, and per-CU L1 TLBs filled
// by the ATS. All requests leaving the L2 cross the border port, where
// Border Control (when attached to the port) checks them.
type Sandboxed struct {
	cfg    SandboxConfig
	eng    *sim.Engine
	ats    *ats.ATS
	border *BorderPort
	l1tlbs []*tlb.TLB
	l1s    []*cache.Cache
	l2     *cache.Cache
	pr     *prof.Profiler

	stallUntil sim.Time

	Loads      stats.Counter
	Stores     stats.Counter
	Drains     stats.Counter
	Downgrades stats.Counter
}

// NewSandboxed builds the hierarchy. The border port is attached by the
// caller so the same hierarchy serves the unsafe baseline (nil Border
// Control) and both BC configurations.
func NewSandboxed(cfg SandboxConfig, eng *sim.Engine, atsvc *ats.ATS, border *BorderPort) (*Sandboxed, error) {
	if cfg.CUs <= 0 {
		return nil, fmt.Errorf("accel: need at least one CU, got %d", cfg.CUs)
	}
	h := &Sandboxed{cfg: cfg, eng: eng, ats: atsvc, border: border}
	for i := 0; i < cfg.CUs; i++ {
		t, err := tlb.NewFullyAssociative(cfg.L1TLBEntries)
		if err != nil {
			return nil, err
		}
		h.l1tlbs = append(h.l1tlbs, t)
		l1, err := cache.New(cache.Config{
			Name:       fmt.Sprintf("%s-l1-%d", cfg.Name, i),
			SizeBytes:  cfg.L1Size,
			Ways:       cfg.L1Ways,
			Policy:     cache.WriteThrough,
			HitLatency: cfg.L1Latency,
		})
		if err != nil {
			return nil, err
		}
		h.l1s = append(h.l1s, l1)
	}
	l2, err := cache.New(cache.Config{
		Name:       cfg.Name + "-l2",
		SizeBytes:  cfg.L2Size,
		Ways:       cfg.L2Ways,
		Policy:     cache.WriteBack,
		HitLatency: cfg.L2Latency,
	})
	if err != nil {
		return nil, err
	}
	h.l2 = l2
	return h, nil
}

// Border returns the hierarchy's border port.
func (h *Sandboxed) Border() *BorderPort { return h.border }

// L2 returns the shared L2 cache (for tests and statistics).
func (h *Sandboxed) L2() *cache.Cache { return h.l2 }

// L1 returns CU cu's L1 cache.
func (h *Sandboxed) L1(cu int) *cache.Cache { return h.l1s[cu] }

// CUs returns the number of compute units (and so of L1 caches and TLBs).
func (h *Sandboxed) CUs() int { return len(h.l1s) }

// L1TLB returns CU cu's TLB.
func (h *Sandboxed) L1TLB(cu int) *tlb.TLB { return h.l1tlbs[cu] }

func (h *Sandboxed) clampStall(at sim.Time) sim.Time {
	if at < h.stallUntil {
		return h.stallUntil
	}
	return at
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler
// on the hierarchy and its border port.
func (h *Sandboxed) SetProfiler(p *prof.Profiler) {
	h.pr = p
	if h.border != nil {
		h.border.SetProfiler(p)
	}
}

// Access implements Hierarchy.
func (h *Sandboxed) Access(at sim.Time, cu int, asid arch.ASID, op Op) (sim.Time, error) {
	if h.pr != nil {
		h.pr.Enter("gpu/wavefront")
		defer h.pr.Exit()
	}
	at = h.clampStall(at)
	need := op.Kind.Need()
	e, ok := h.l1tlbs[cu].Lookup(asid, op.Addr.PageOf())
	if !ok || !e.Perm.Allows(need) {
		res, err := h.ats.Translate(h.cfg.Name, asid, op.Addr, op.Kind, at)
		if err != nil {
			return at, err
		}
		at = res.Done
		e = res.Entry
		h.l1tlbs[cu].Insert(e)
	}
	pa := e.PPN.Base() + arch.Phys(op.Addr.Offset())
	if op.Kind == arch.Read {
		h.Loads.Inc()
		return h.load(at, cu, asid, pa)
	}
	h.Stores.Inc()
	return h.store(at, cu, asid, pa, op)
}

func (h *Sandboxed) load(at sim.Time, cu int, asid arch.ASID, pa arch.Phys) (sim.Time, error) {
	l1 := h.l1s[cu]
	at += l1.HitLatency()
	if h.pr != nil {
		h.pr.Span("gpu/l1", uint64(l1.HitLatency()))
	}
	if l1.Lookup(pa) {
		return at, nil
	}
	done, err := h.l2Fill(at, asid, pa, arch.Read)
	if err != nil {
		return done, err
	}
	var buf [arch.BlockSize]byte
	h.l2.Read(pa.BlockOf(), buf[:])
	l1.Fill(pa, buf[:]) // write-through L1s never evict dirty victims
	return done, nil
}

// l2Fill ensures pa's block is in the L2 with the given intent, returning
// when the data is available. A blocked fill allocates nothing: the L2 and
// the directory are exactly as they were before the request.
func (h *Sandboxed) l2Fill(at sim.Time, asid arch.ASID, pa arch.Phys, intent arch.AccessKind) (sim.Time, error) {
	at += h.l2.HitLatency()
	if h.pr != nil {
		h.pr.Span("gpu/l2", uint64(h.l2.HitLatency()))
	}
	if h.l2.Lookup(pa) {
		return at, nil
	}
	var buf [arch.BlockSize]byte
	done, ok := h.border.ReadBlock(at, asid, pa, intent, &buf)
	if !ok {
		return done, fmt.Errorf("%w: %s fill of %#x", ErrBlocked, intent, pa)
	}
	victim, dirty := h.l2.Fill(pa, buf[:])
	if dirty {
		// The victim writeback is off the requester's critical path but
		// crosses the border (and is checked there), attributed to the
		// requester whose fill evicted it. Its bandwidth is claimed at the
		// fill request time — write buffers drain opportunistically, and
		// claiming at fill completion would reserve the channel into the
		// future and stall unrelated traffic.
		h.border.WriteBlock(at, asid, victim.Addr, &victim.Data)
	}
	return done, nil
}

// store is posted: the wavefront retires the store at L1-issue time, while
// the write-through to the L2 (allocation, ownership upgrade, and any
// victim writeback) proceeds in the background, claiming its resources.
// This mirrors real GPU write buffering and the paper's placement of write
// checking: writes are verified when they cross the border, not on the
// wavefront's critical path. No cache level may absorb the data before the
// border authorizes it — a blocked store that had already updated the L1
// would serve forbidden data to later loads.
func (h *Sandboxed) store(at sim.Time, cu int, asid arch.ASID, pa arch.Phys, op Op) (sim.Time, error) {
	l1 := h.l1s[cu]
	at += l1.HitLatency()
	if h.pr != nil {
		h.pr.Span("gpu/l1", uint64(l1.HitLatency()))
	}
	if !h.l2.Lookup(pa) {
		if _, err := h.l2Fill(at, asid, pa, arch.Write); err != nil {
			return at, err
		}
	} else if !h.border.Owned(pa.BlockOf()) {
		// Store to a block filled for reading: upgrade ownership across
		// the border.
		if _, ok := h.border.Upgrade(at, asid, pa); !ok {
			return at, fmt.Errorf("%w: upgrade of %#x", ErrBlocked, pa)
		}
	}
	if l1.Contains(pa) {
		l1.Write(pa, opBytes(op))
	}
	h.l2.Write(pa, opBytes(op))
	return at, nil
}

// Drain implements Hierarchy: the kernel-end flush that makes results
// visible to the host.
func (h *Sandboxed) Drain(at sim.Time) sim.Time {
	h.Drains.Inc()
	return h.FlushAll(at)
}

// FlushAll implements core.Sandboxed: write back and invalidate the whole
// accelerator cache hierarchy.
func (h *Sandboxed) FlushAll(at sim.Time) sim.Time {
	// A flush ordered during a shootdown begins only after outstanding
	// requests drain (the stall the shootdown already imposed).
	at = h.clampStall(at)
	for _, l1 := range h.l1s {
		l1.FlushAll() // write-through: nothing dirty
	}
	if h.pr != nil {
		h.pr.Span("gpu/flush_scan", uint64(h.cfg.FlushScanLatency))
	}
	done := at + h.cfg.FlushScanLatency
	for _, db := range h.l2.FlushAll() {
		db := db
		// Writebacks are issued back to back; DRAM bandwidth serializes
		// them, and the flush completes when the last one lands. They are
		// hardware-initiated (ASID 0): the flusher is not a process.
		if t, ok := h.border.WriteBlock(at, 0, db.Addr, &db.Data); ok && t > done {
			done = t
		}
	}
	h.stall(done)
	return done
}

// FlushPage implements core.Sandboxed: the selective downgrade flush.
func (h *Sandboxed) FlushPage(at sim.Time, ppn arch.PPN) sim.Time {
	at = h.clampStall(at)
	for _, l1 := range h.l1s {
		l1.FlushPage(ppn)
	}
	if h.pr != nil {
		h.pr.Span("gpu/flush_scan", uint64(h.cfg.FlushScanLatency))
	}
	done := at + h.cfg.FlushScanLatency
	for _, db := range h.l2.FlushPage(ppn) {
		db := db
		if t, ok := h.border.WriteBlock(at, 0, db.Addr, &db.Data); ok && t > done {
			done = t
		}
	}
	h.stall(done)
	return done
}

// InvalidateTLBPage implements core.Sandboxed.
func (h *Sandboxed) InvalidateTLBPage(asid arch.ASID, vpn arch.VPN) {
	for _, t := range h.l1tlbs {
		t.Invalidate(asid, vpn)
	}
}

// InvalidateTLBAll implements core.Sandboxed.
func (h *Sandboxed) InvalidateTLBAll() {
	for _, t := range h.l1tlbs {
		t.Flush()
	}
}

func (h *Sandboxed) stall(until sim.Time) {
	if until > h.stallUntil {
		h.stallUntil = until
	}
}

// OnDowngrade implements hostos.ShootdownListener: the accelerator-side
// cost of a TLB shootdown, paid by trusted and untrusted accelerators
// alike — invalidate the stale translation and drain outstanding requests.
func (h *Sandboxed) OnDowngrade(d hostos.Downgrade) {
	h.Downgrades.Inc()
	h.InvalidateTLBPage(d.ASID, d.VPN)
	h.stall(h.eng.Now() + h.cfg.DrainStall)
}

// Name implements coherence.Agent.
func (h *Sandboxed) Name() string { return h.cfg.Name }

// Trusted implements coherence.Agent: this hierarchy is accelerator-
// resident and untrusted.
func (h *Sandboxed) Trusted() bool { return false }

// Recall implements coherence.Agent: surrender a block to the directory.
func (h *Sandboxed) Recall(addr arch.Phys) ([]byte, bool) {
	for _, l1 := range h.l1s {
		l1.Drop(addr)
	}
	data, dirty, present := h.l2.Extract(addr)
	if !present || !dirty {
		return nil, false
	}
	return data[:], true
}

// RegisterMetrics publishes the hierarchy's counters under s: its own
// traffic directly ("gpu.loads"), the per-CU L1 caches and TLBs aggregated
// ("gpu.l1.hits"), and the shared L2 ("gpu.l2.hits").
func (h *Sandboxed) RegisterMetrics(s stats.Scope) {
	s.Counter("loads", &h.Loads)
	s.Counter("stores", &h.Stores)
	s.Counter("drains", &h.Drains)
	s.Counter("downgrades", &h.Downgrades)

	l1 := s.Scope("l1")
	l1Hits := func() uint64 {
		var n uint64
		for _, c := range h.l1s {
			n += c.HitMiss.Hits.Value()
		}
		return n
	}
	l1Misses := func() uint64 {
		var n uint64
		for _, c := range h.l1s {
			n += c.HitMiss.Misses.Value()
		}
		return n
	}
	l1.CounterFunc("hits", l1Hits)
	l1.CounterFunc("misses", l1Misses)
	l1.Gauge("miss_ratio", func() float64 {
		h, m := l1Hits(), l1Misses()
		if h+m == 0 {
			return 0
		}
		return float64(m) / float64(h+m)
	})

	l1tlb := s.Scope("l1tlb")
	tlbHits := func() uint64 {
		var n uint64
		for _, t := range h.l1tlbs {
			n += t.HitMiss.Hits.Value()
		}
		return n
	}
	tlbMisses := func() uint64 {
		var n uint64
		for _, t := range h.l1tlbs {
			n += t.HitMiss.Misses.Value()
		}
		return n
	}
	l1tlb.CounterFunc("hits", tlbHits)
	l1tlb.CounterFunc("misses", tlbMisses)
	l1tlb.Gauge("miss_ratio", func() float64 {
		h, m := tlbHits(), tlbMisses()
		if h+m == 0 {
			return 0
		}
		return float64(m) / float64(h+m)
	})

	h.l2.RegisterMetrics(s.Scope("l2"))
	if h.border != nil {
		h.border.RegisterMetrics(s.Scope("port"))
	}
}
