package accel

import (
	"bytes"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/coherence"
)

// hostCPU is a trusted coherence agent standing in for the CPU cache
// hierarchy in sharing tests.
type hostCPU struct{}

func (hostCPU) Name() string                    { return "cpu0" }
func (hostCPU) Trusted() bool                   { return true }
func (hostCPU) Recall(arch.Phys) ([]byte, bool) { return nil, false }

// TestCPUReadsGPUDirtyData exercises the coherent CPU<->GPU sharing path
// the paper's HSA-style integration provides: the CPU requests a block the
// GPU holds dirty; the directory recalls it from the accelerator caches
// and the CPU observes the latest value WITHOUT waiting for a kernel-end
// flush — and (§3.4.3) the untrusted cache never remains owner of data it
// was merely reading.
func TestCPUReadsGPUDirtyData(t *testing.T) {
	r := newRig(t, true)
	cpu := r.dir.AddAgent(hostCPU{})

	v := r.buffer(t, arch.PageSize)
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Write, 0); err != nil {
		t.Fatal(err)
	}
	pa, err := r.proc.Translate(v, arch.Write)
	if err != nil {
		t.Fatal(err)
	}
	// The GPU dirties the block in its L2 (no writeback yet).
	if _, err := r.hier.store(0, 0, r.proc.ASID(), pa, storeOp(v, []byte("gpu-wrote"))); err != nil {
		t.Fatal(err)
	}
	if !r.hier.L2().IsDirty(pa) {
		t.Fatal("block should be dirty GPU-side")
	}
	var before [9]byte
	r.os.Store().ReadInto(pa, before[:])
	if bytes.Equal(before[:], []byte("gpu-wrote")) {
		t.Fatal("data reached memory before any recall; test premise broken")
	}

	// CPU GetS: the directory recalls the dirty block from the GPU.
	if st := r.dir.RequestShared(cpu, pa); st != coherence.Shared && st != coherence.Exclusive {
		t.Fatalf("CPU GetS state = %v", st)
	}
	var after [9]byte
	r.os.Store().ReadInto(pa, after[:])
	if !bytes.Equal(after[:], []byte("gpu-wrote")) {
		t.Errorf("memory after recall = %q", after[:])
	}
	// The GPU no longer holds the block (recall invalidates); §3.4.3: it
	// certainly is not the owner.
	if r.hier.L2().Contains(pa) {
		t.Error("GPU kept the block past the recall")
	}
	if owner := r.dir.OwnerOf(pa); owner != -1 && owner != cpu {
		t.Errorf("block owner = %d; the untrusted cache must not own it", owner)
	}
	// Invariant check over the block with a permission oracle.
	if err := r.dir.CheckInvariant(pa, func(a coherence.Agent, addr arch.Phys) bool {
		return r.bc.Check(r.eng.Now(), r.proc.ASID(), addr, arch.Write).Allowed
	}); err != nil {
		t.Error(err)
	}
}

// TestGPURefetchesAfterCPUWrite: after the CPU takes the block modified,
// the GPU's next access misses (its copy was recalled) and fetches the
// CPU's data — no stale reads.
func TestGPURefetchesAfterCPUWrite(t *testing.T) {
	r := newRig(t, true)
	cpu := r.dir.AddAgent(hostCPU{})
	v := r.buffer(t, arch.PageSize)
	if _, err := r.ats.Translate("gpu0", r.proc.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	pa, _ := r.proc.Translate(v, arch.Read)
	if _, err := r.hier.load(0, 0, r.proc.ASID(), pa); err != nil {
		t.Fatal(err)
	}
	if !r.hier.L2().Contains(pa) {
		t.Fatal("GPU should cache the block")
	}
	// CPU writes the block: GetM invalidates the GPU copy, then the CPU
	// updates memory.
	r.dir.RequestModified(cpu, pa)
	r.os.Store().Write(pa, []byte("cpu-data"))
	if r.hier.L2().Contains(pa) {
		t.Fatal("GPU copy must be invalidated by the CPU's GetM")
	}
	// GPU re-reads: misses, refetches the new value into its caches.
	if _, err := r.hier.load(0, 0, r.proc.ASID(), pa); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	r.hier.L2().Read(pa.BlockOf(), buf[:])
	if !bytes.Equal(buf[:], []byte("cpu-data")) {
		t.Errorf("GPU refetched %q", buf[:])
	}
}
