package accel

import (
	"bytes"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/core"
)

// streamRig wires a Streamer into the rig's memory system, guarded by the
// rig's Border Control when safe.
func streamRig(t testing.TB, safe bool) (*rig, *Streamer) {
	t.Helper()
	r := newRig(t, safe)
	agent := r.dir.ReserveAgent()
	var guard core.ProtectionArchitecture
	if safe {
		guard = r.bc
	}
	port := NewBorderPort(guard, r.dir, agent, r.dram, r.clock.Cycles(4))
	st, err := NewStreamer(StreamerConfig{Name: "gpu0", Clock: r.clock, Channels: 2}, r.eng, r.ats, port)
	if err != nil {
		t.Fatal(err)
	}
	r.dir.BindAgent(agent, st)
	return r, st
}

func xorMask(mask byte) func([]byte) {
	return func(b []byte) {
		for i := range b {
			b[i] ^= mask
		}
	}
}

func TestStreamerCopiesAndTransforms(t *testing.T) {
	r, st := streamRig(t, true)
	src := r.buffer(t, arch.PageSize)
	dst := r.buffer(t, arch.PageSize)
	want := bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, arch.PageSize/4)
	if err := r.proc.Write(src, want); err != nil {
		t.Fatal(err)
	}
	job := &StreamJob{
		ASID: r.proc.ASID(), Src: src, Dst: dst, Len: arch.PageSize,
		Transform: xorMask(0xFF),
	}
	if err := st.Launch([]*StreamJob{job}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !st.Finished() || st.Err() != nil {
		t.Fatalf("finished=%v err=%v", st.Finished(), st.Err())
	}
	got := make([]byte, arch.PageSize)
	if err := r.proc.Read(dst, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i]^0xFF {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i]^0xFF)
		}
	}
	if st.Blocks.Value() != arch.PageSize/arch.BlockSize {
		t.Errorf("blocks = %d", st.Blocks.Value())
	}
	if r.bc.Checks.Value() == 0 {
		t.Error("streamer traffic was not checked at the border")
	}
}

func TestStreamerChannelsOverlap(t *testing.T) {
	r, st := streamRig(t, false)
	src := r.buffer(t, 4*arch.PageSize)
	dst := r.buffer(t, 4*arch.PageSize)
	one := &StreamJob{ASID: r.proc.ASID(), Src: src, Dst: dst, Len: arch.PageSize}
	if err := st.Launch([]*StreamJob{one}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	serial := st.Runtime()

	r2, st2 := streamRig(t, false)
	src2 := r2.buffer(t, 4*arch.PageSize)
	dst2 := r2.buffer(t, 4*arch.PageSize)
	var jobs []*StreamJob
	for i := uint64(0); i < 2; i++ {
		jobs = append(jobs, &StreamJob{
			ASID: r2.proc.ASID(),
			Src:  src2 + arch.Virt(i*arch.PageSize),
			Dst:  dst2 + arch.Virt(i*arch.PageSize),
			Len:  arch.PageSize,
		})
	}
	if err := st2.Launch(jobs); err != nil {
		t.Fatal(err)
	}
	r2.eng.Run()
	if st2.Runtime() >= 2*serial {
		t.Errorf("two jobs on two channels took %d ps vs %d serial — no overlap", st2.Runtime(), serial)
	}
}

func TestStreamerBlockedOnRevokedPage(t *testing.T) {
	// The OS revokes the destination mid-setup: the streamer's write
	// translation faults, the job aborts, memory is untouched.
	r, st := streamRig(t, true)
	r.os.KeepProcessOnViolation = true
	src := r.buffer(t, arch.PageSize)
	dst := r.buffer(t, arch.PageSize)
	if err := r.proc.Write(src, bytes.Repeat([]byte{7}, arch.PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.os.Protect(r.proc, dst, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	job := &StreamJob{ASID: r.proc.ASID(), Src: src, Dst: dst, Len: arch.PageSize}
	if err := st.Launch([]*StreamJob{job}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if st.Err() == nil {
		t.Fatal("job into a read-only destination must abort")
	}
	var b [1]byte
	if err := r.proc.Read(dst, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Error("blocked stream wrote to the destination")
	}
}

func TestStreamerValidation(t *testing.T) {
	r, st := streamRig(t, false)
	_ = r
	if err := st.Launch([]*StreamJob{{Src: 3}}); err == nil {
		t.Error("misaligned job should be rejected")
	}
	if _, err := NewStreamer(StreamerConfig{Channels: 0}, r.eng, r.ats, nil); err == nil {
		t.Error("zero channels should be rejected")
	}
	// Empty launch finishes immediately.
	if err := st.Launch(nil); err != nil {
		t.Fatal(err)
	}
	if !st.Finished() {
		t.Error("empty launch should finish")
	}
}

func TestStreamerTrojanJobBlocked(t *testing.T) {
	// A malicious job naming another process's memory: the ATS refuses the
	// translation (wrong address space), so nothing ever reaches the
	// border — and even a fabricated physical request would be caught
	// there (see TestTrojanBlockedBySandbox).
	r, st := streamRig(t, true)
	r.os.KeepProcessOnViolation = true
	victim, err := r.os.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	secret, err := victim.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(secret, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	dst := r.buffer(t, arch.PageSize)
	// The job presents the victim's ASID, which is not active on this
	// accelerator.
	job := &StreamJob{ASID: victim.ASID(), Src: secret.PageOf().Base(), Dst: dst, Len: arch.PageSize}
	if err := st.Launch([]*StreamJob{job}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if st.Err() == nil {
		t.Fatal("cross-process stream job must abort")
	}
	got := make([]byte, 6)
	if err := r.proc.Read(dst, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("secret")) {
		t.Error("the secret leaked into the attacker's buffer")
	}
}
