package accel

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/coherence"
	"bordercontrol/internal/core"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// stubAgent is a minimal untrusted caching agent for the directory.
type stubAgent struct{}

func (stubAgent) Name() string                               { return "stub" }
func (stubAgent) Trusted() bool                              { return false }
func (stubAgent) Recall(arch.Phys) (data []byte, dirty bool) { return nil, false }

// newBarePort wires the minimum BorderPort a checker test needs: a store,
// DRAM, and a directory with a stub agent — no hierarchy, no GPU.
func newBarePort(t *testing.T) *BorderPort {
	t.Helper()
	store, err := memory.NewStore(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := coherence.NewDirectory(store)
	return NewBorderPort(nil, dir, dir.AddAgent(stubAgent{}), dram, 4)
}

// TestSetCheckerTypedNil is the regression test for the typed-nil hazard:
// a nil *core.BorderControl boxed in the Checker interface used to leave
// p.check non-nil, so the first crossing called Check on a nil receiver
// and panicked. A typed-nil checker must remove checking entirely.
func TestSetCheckerTypedNil(t *testing.T) {
	p := newBarePort(t)
	var bc *core.BorderControl
	p.SetChecker(bc) // typed nil: interface non-nil, receiver nil

	if p.BC() != nil {
		t.Fatalf("BC() = %v, want nil after typed-nil SetChecker", p.BC())
	}
	var buf [arch.BlockSize]byte
	done, ok := p.ReadBlock(0, 1, 0, arch.Read, &buf) // panicked before the fix
	if !ok {
		t.Fatalf("ReadBlock with checking removed: blocked (done=%d), want allowed", done)
	}
	if _, ok := p.WriteBlock(done, 1, 0, &buf); !ok {
		t.Fatal("WriteBlock with checking removed: blocked, want allowed")
	}
}

// TestNewBorderPortTypedNil: the constructor gets the same guard — a
// typed-nil design pointer behaves exactly like passing nil.
func TestNewBorderPortTypedNil(t *testing.T) {
	store, err := memory.NewStore(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := coherence.NewDirectory(store)
	var bc *core.BorderControl
	p := NewBorderPort(bc, dir, dir.AddAgent(stubAgent{}), dram, 4)
	if p.BC() != nil {
		t.Fatalf("BC() = %v, want nil for typed-nil constructor arg", p.BC())
	}
	var buf [arch.BlockSize]byte
	if _, ok := p.ReadBlock(0, 1, 0, arch.Read, &buf); !ok {
		t.Fatal("ReadBlock on typed-nil-constructed port: blocked, want allowed")
	}
}

// TestSetCheckerReal: a live checker still installs and adjudicates — the
// typed-nil guard must not eat real checkers that aren't designs.
func TestSetCheckerReal(t *testing.T) {
	p := newBarePort(t)
	tz := core.NewTrustZone(sim.Time(10))
	tz.Secure(0, arch.BlockSize)
	p.SetChecker(tz)

	if p.BC() != nil {
		t.Fatalf("BC() = %v, want nil (TrustZone is a Checker, not a design)", p.BC())
	}
	var buf [arch.BlockSize]byte
	if _, ok := p.ReadBlock(0, 1, 0, arch.Read, &buf); ok {
		t.Fatal("ReadBlock into Secure region: allowed, want blocked")
	}
	if tz.Blocked != 1 {
		t.Fatalf("TrustZone.Blocked = %d, want 1", tz.Blocked)
	}
	if _, ok := p.ReadBlock(0, 1, arch.Phys(arch.BlockSize), arch.Read, &buf); !ok {
		t.Fatal("ReadBlock into Normal world: blocked, want allowed")
	}

	p.SetChecker(nil) // plain nil removes checking too
	if _, ok := p.ReadBlock(0, 1, 0, arch.Read, &buf); !ok {
		t.Fatal("ReadBlock after SetChecker(nil): blocked, want allowed")
	}
}
