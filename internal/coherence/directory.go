// Package coherence implements a null-directory MOESI-style coherence point
// for the trusted side of the border. The directory sits logically between
// the last-level caches of all agents (CPU cache hierarchy, accelerator L2s)
// and DRAM.
//
// It also encodes the cache-organization invariant Border Control requires
// (paper §3.4.3): an untrusted cache must never become the owner (supplier)
// of a dirty block for which it does not hold write permission. The
// directory enforces this structurally: read-only requests from untrusted
// agents are never granted an ownership state, and a dirty block passed down
// to an untrusted agent with a read request is first written back to memory
// so memory stays up to date.
package coherence

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/stats"
)

// AgentID identifies a coherence participant.
type AgentID int

// State is a MOESI cache-coherence state as tracked by the directory for
// one agent.
type State uint8

// MOESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Agent is the directory's view of one caching agent. Recall asks the agent
// to surrender (and return, if dirty) a block; the agent returns the data if
// it was dirty.
type Agent interface {
	// Name identifies the agent in diagnostics.
	Name() string
	// Trusted reports whether the agent is inside the trusted boundary.
	// Untrusted agents are subject to the ownership restriction.
	Trusted() bool
	// Recall invalidates the block at addr in the agent's caches, returning
	// the dirty data if the agent held it modified.
	Recall(addr arch.Phys) (data []byte, dirty bool)
}

type blockState struct {
	owner   AgentID // agent in E/M/O, or -1
	sharers map[AgentID]bool
}

// MemoryWriter applies recalled dirty data to the backing store.
type MemoryWriter interface {
	Write(a arch.Phys, data []byte)
	Read(a arch.Phys, n uint64) []byte
}

// Directory is a full-map directory over 128-byte blocks. It is functional
// (state only); timing is charged by the border port that invokes it.
type Directory struct {
	agents []Agent
	blocks map[arch.Phys]*blockState
	mem    MemoryWriter

	GetS      stats.Counter
	GetM      stats.Counter
	Recalls   stats.Counter
	WBRecalls stats.Counter
}

// NewDirectory returns an empty directory writing recalled data to mem.
func NewDirectory(mem MemoryWriter) *Directory {
	return &Directory{blocks: make(map[arch.Phys]*blockState), mem: mem}
}

// AddAgent registers an agent and returns its ID.
func (d *Directory) AddAgent(a Agent) AgentID {
	d.agents = append(d.agents, a)
	return AgentID(len(d.agents) - 1)
}

// ReserveAgent allocates an agent ID to be bound later with BindAgent.
// Construction-order helper: a cache hierarchy needs its border port (which
// needs the agent ID) before the hierarchy itself exists.
func (d *Directory) ReserveAgent() AgentID {
	d.agents = append(d.agents, nil)
	return AgentID(len(d.agents) - 1)
}

// BindAgent attaches the agent for a reserved ID.
func (d *Directory) BindAgent(id AgentID, a Agent) {
	if d.agents[id] != nil {
		panic(fmt.Sprintf("coherence: agent %d already bound", id))
	}
	d.agents[id] = a
}

func (d *Directory) block(addr arch.Phys) *blockState {
	b, ok := d.blocks[addr]
	if !ok {
		b = &blockState{owner: -1, sharers: make(map[AgentID]bool)}
		d.blocks[addr] = b
	}
	return b
}

// RequestShared handles a GetS: agent id wants a readable copy of the block
// at addr. It returns the coherence state granted to the requestor.
//
// Rules:
//   - If another agent owns the block dirty, its data is recalled to memory
//     first (memory stays the supplier for untrusted requestors), then both
//     become sharers.
//   - Trusted requestors with no other sharers get Exclusive; untrusted
//     requestors never get an ownership state on a read (the §3.4.3
//     invariant), they get Shared.
func (d *Directory) RequestShared(id AgentID, addr arch.Phys) State {
	addr = addr.BlockOf()
	d.GetS.Inc()
	b := d.block(addr)
	if b.owner >= 0 && b.owner != id {
		d.recall(b.owner, addr)
		b.sharers[b.owner] = true
		b.owner = -1
	}
	b.sharers[id] = true
	if len(b.sharers) == 1 && d.agents[id].Trusted() {
		b.owner = id
		delete(b.sharers, id)
		return Exclusive
	}
	return Shared
}

// RequestModified handles a GetM: agent id wants a writable copy. All other
// copies are recalled/invalidated and the requestor becomes Modified owner.
// Border Control has already checked write permission by the time a GetM
// from an untrusted agent reaches the directory.
func (d *Directory) RequestModified(id AgentID, addr arch.Phys) State {
	addr = addr.BlockOf()
	d.GetM.Inc()
	b := d.block(addr)
	if b.owner >= 0 && b.owner != id {
		d.recall(b.owner, addr)
		b.owner = -1
	}
	for s := range b.sharers {
		if s != id {
			d.recall(s, addr)
		}
		delete(b.sharers, s)
	}
	b.owner = id
	return Modified
}

// Writeback handles a PutM: the owner returns dirty data to memory and
// drops to Invalid (or stays as a clean sharer when keepShared is set).
func (d *Directory) Writeback(id AgentID, addr arch.Phys, data []byte, keepShared bool) error {
	addr = addr.BlockOf()
	b := d.block(addr)
	if b.owner != id {
		return fmt.Errorf("coherence: writeback of %#x by non-owner %s (owner=%d)",
			addr, d.agents[id].Name(), b.owner)
	}
	d.mem.Write(addr, data)
	b.owner = -1
	if keepShared {
		b.sharers[id] = true
	}
	return nil
}

// Evict notes that agent id silently dropped a clean block.
func (d *Directory) Evict(id AgentID, addr arch.Phys) {
	addr = addr.BlockOf()
	b := d.block(addr)
	if b.owner == id {
		b.owner = -1
	}
	delete(b.sharers, id)
}

// recall invalidates an agent's copy, writing dirty data back to memory.
func (d *Directory) recall(id AgentID, addr arch.Phys) {
	d.Recalls.Inc()
	data, dirty := d.agents[id].Recall(addr)
	if dirty {
		d.WBRecalls.Inc()
		d.mem.Write(addr, data)
	}
}

// OwnerOf returns the owning agent of the block, or -1.
func (d *Directory) OwnerOf(addr arch.Phys) AgentID {
	if b, ok := d.blocks[addr.BlockOf()]; ok {
		return b.owner
	}
	return -1
}

// SharersOf returns how many agents share the block.
func (d *Directory) SharersOf(addr arch.Phys) int {
	if b, ok := d.blocks[addr.BlockOf()]; ok {
		return len(b.sharers)
	}
	return 0
}

// CheckInvariant verifies the §3.4.3 invariant for a block: if an untrusted
// agent owns it, the ownership must have been granted through a write
// request (which Border Control checked). The canWrite callback reports
// whether the border would permit the owner to write the block now.
func (d *Directory) CheckInvariant(addr arch.Phys, canWrite func(agent Agent, addr arch.Phys) bool) error {
	b, ok := d.blocks[addr.BlockOf()]
	if !ok || b.owner < 0 {
		return nil
	}
	owner := d.agents[b.owner]
	if !owner.Trusted() && !canWrite(owner, addr.BlockOf()) {
		return fmt.Errorf("coherence: untrusted agent %q owns block %#x without write permission",
			owner.Name(), addr.BlockOf())
	}
	return nil
}

// RegisterMetrics publishes the directory's traffic counters under s
// ("coherence.get_s", "coherence.recalls", ...).
func (d *Directory) RegisterMetrics(s stats.Scope) {
	s.Counter("get_s", &d.GetS)
	s.Counter("get_m", &d.GetM)
	s.Counter("recalls", &d.Recalls)
	s.Counter("wb_recalls", &d.WBRecalls)
}
