package coherence

import (
	"bytes"
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// fakeAgent is a scripted coherence participant.
type fakeAgent struct {
	name    string
	trusted bool
	// held maps block -> dirty data (nil = clean copy).
	held     map[arch.Phys][]byte
	recalled []arch.Phys
}

func newFakeAgent(name string, trusted bool) *fakeAgent {
	return &fakeAgent{name: name, trusted: trusted, held: make(map[arch.Phys][]byte)}
}

func (a *fakeAgent) Name() string  { return a.name }
func (a *fakeAgent) Trusted() bool { return a.trusted }
func (a *fakeAgent) Recall(addr arch.Phys) ([]byte, bool) {
	a.recalled = append(a.recalled, addr)
	data, ok := a.held[addr]
	delete(a.held, addr)
	if !ok || data == nil {
		return nil, false
	}
	return data, true
}

func setup(t *testing.T) (*Directory, *memory.Store) {
	t.Helper()
	store, err := memory.NewStore(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return NewDirectory(store), store
}

func TestTrustedGetsExclusive(t *testing.T) {
	dir, _ := setup(t)
	cpu := dir.AddAgent(newFakeAgent("cpu", true))
	if st := dir.RequestShared(cpu, 0); st != Exclusive {
		t.Errorf("lone trusted GetS = %v, want E", st)
	}
	if dir.OwnerOf(0) != cpu {
		t.Error("trusted requestor should own the block")
	}
}

func TestUntrustedNeverGetsEOnRead(t *testing.T) {
	dir, _ := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	if st := dir.RequestShared(gpu, 0); st != Shared {
		t.Errorf("untrusted GetS = %v, want S (§3.4.3 invariant)", st)
	}
	if dir.OwnerOf(0) == gpu {
		t.Error("untrusted read must not grant ownership")
	}
	if dir.SharersOf(0) != 1 {
		t.Errorf("sharers = %d", dir.SharersOf(0))
	}
}

func TestGetMGrantsOwnership(t *testing.T) {
	dir, _ := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	if st := dir.RequestModified(gpu, 128); st != Modified {
		t.Errorf("GetM = %v, want M", st)
	}
	if dir.OwnerOf(128) != gpu {
		t.Error("GetM should grant ownership")
	}
}

func TestGetMInvalidatesSharers(t *testing.T) {
	dir, _ := setup(t)
	cpuAgent := newFakeAgent("cpu", true)
	cpu := dir.AddAgent(cpuAgent)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	dir.RequestShared(cpu, 0)
	dir.RequestShared(gpu, 0)
	dir.RequestModified(gpu, 0)
	if len(cpuAgent.recalled) == 0 {
		t.Error("GetM must recall other sharers")
	}
	if dir.SharersOf(0) != 0 || dir.OwnerOf(0) != gpu {
		t.Error("post-GetM state wrong")
	}
}

func TestDirtyRecallWritesMemory(t *testing.T) {
	dir, store := setup(t)
	cpuAgent := newFakeAgent("cpu", true)
	cpu := dir.AddAgent(cpuAgent)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))

	// CPU owns the block dirty.
	dir.RequestModified(cpu, 0)
	dirtyData := bytes.Repeat([]byte{0x5A}, arch.BlockSize)
	cpuAgent.held[0] = dirtyData

	// Untrusted GetS: the dirty data must land in memory (memory stays the
	// supplier; the GPU never becomes owner of data it cannot write).
	if st := dir.RequestShared(gpu, 0); st != Shared {
		t.Errorf("GetS after dirty owner = %v, want S", st)
	}
	if got := store.Read(0, arch.BlockSize); !bytes.Equal(got, dirtyData) {
		t.Error("recalled dirty data not written to memory")
	}
	if dir.WBRecalls.Value() != 1 {
		t.Error("writeback recall not counted")
	}
	if dir.OwnerOf(0) != -1 {
		t.Error("previous owner should be demoted to sharer")
	}
}

func TestWriteback(t *testing.T) {
	dir, store := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	dir.RequestModified(gpu, 256)
	data := bytes.Repeat([]byte{7}, arch.BlockSize)
	if err := dir.Writeback(gpu, 256, data, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(store.Read(256, arch.BlockSize), data) {
		t.Error("writeback data not applied")
	}
	if dir.OwnerOf(256) != -1 {
		t.Error("writeback should drop ownership")
	}
}

func TestWritebackKeepShared(t *testing.T) {
	dir, _ := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	dir.RequestModified(gpu, 0)
	if err := dir.Writeback(gpu, 0, make([]byte, arch.BlockSize), true); err != nil {
		t.Fatal(err)
	}
	if dir.SharersOf(0) != 1 {
		t.Error("keepShared should retain a shared copy")
	}
}

func TestWritebackByNonOwner(t *testing.T) {
	dir, _ := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	if err := dir.Writeback(gpu, 0, make([]byte, arch.BlockSize), false); err == nil {
		t.Error("writeback by non-owner should error")
	}
}

func TestEvict(t *testing.T) {
	dir, _ := setup(t)
	gpu := dir.AddAgent(newFakeAgent("gpu", false))
	dir.RequestShared(gpu, 0)
	dir.Evict(gpu, 0)
	if dir.SharersOf(0) != 0 {
		t.Error("evict should drop sharer")
	}
	dir.RequestModified(gpu, 128)
	dir.Evict(gpu, 128)
	if dir.OwnerOf(128) != -1 {
		t.Error("evict should drop ownership")
	}
}

func TestReserveBind(t *testing.T) {
	dir, _ := setup(t)
	id := dir.ReserveAgent()
	dir.BindAgent(id, newFakeAgent("late", false))
	if st := dir.RequestShared(id, 0); st != Shared {
		t.Errorf("bound agent GetS = %v", st)
	}
	defer func() {
		if recover() == nil {
			t.Error("double bind should panic")
		}
	}()
	dir.BindAgent(id, newFakeAgent("again", false))
}

func TestCheckInvariant(t *testing.T) {
	dir, _ := setup(t)
	gpuAgent := newFakeAgent("gpu", false)
	gpu := dir.AddAgent(gpuAgent)
	cpu := dir.AddAgent(newFakeAgent("cpu", true))

	// No owner: trivially fine.
	if err := dir.CheckInvariant(0, nil); err != nil {
		t.Error(err)
	}
	// Trusted owner: fine regardless of permissions.
	dir.RequestModified(cpu, 0)
	if err := dir.CheckInvariant(0, func(Agent, arch.Phys) bool { return false }); err != nil {
		t.Error(err)
	}
	// Untrusted owner with write permission: fine.
	dir.RequestModified(gpu, 128)
	if err := dir.CheckInvariant(128, func(Agent, arch.Phys) bool { return true }); err != nil {
		t.Error(err)
	}
	// Untrusted owner without write permission: invariant violation.
	if err := dir.CheckInvariant(128, func(Agent, arch.Phys) bool { return false }); err == nil {
		t.Error("invariant checker should flag unwritable untrusted owner")
	}
}

// TestRandomProtocolInvariants drives random GetS/GetM/writeback/evict
// traffic from a mix of trusted and untrusted agents and continuously
// checks the structural invariants: at most one owner, an owner is never
// also a sharer, and an untrusted agent only owns blocks it acquired with
// a write request.
func TestRandomProtocolInvariants(t *testing.T) {
	dir, _ := setup(t)
	agents := []*fakeAgent{
		newFakeAgent("cpu", true),
		newFakeAgent("gpu0", false),
		newFakeAgent("gpu1", false),
	}
	var ids []AgentID
	for _, a := range agents {
		ids = append(ids, dir.AddAgent(a))
	}
	// wroteLast[block] = the agent whose GetM was the last ownership grant.
	wroteLast := make(map[arch.Phys]AgentID)
	rng := rand.New(rand.NewSource(77))
	blocks := []arch.Phys{0, 128, 256, 4096}
	for i := 0; i < 5000; i++ {
		id := ids[rng.Intn(len(ids))]
		blk := blocks[rng.Intn(len(blocks))]
		switch rng.Intn(4) {
		case 0:
			dir.RequestShared(id, blk)
		case 1:
			dir.RequestModified(id, blk)
			wroteLast[blk] = id
		case 2:
			if dir.OwnerOf(blk) == id {
				if err := dir.Writeback(id, blk, make([]byte, arch.BlockSize), rng.Intn(2) == 0); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			dir.Evict(id, blk)
		}
		for _, b := range blocks {
			owner := dir.OwnerOf(b)
			if owner < 0 {
				continue
			}
			if !agents[owner].trusted && wroteLast[b] != owner {
				t.Fatalf("step %d: untrusted agent %d owns %#x without a write grant", i, owner, b)
			}
		}
	}
}
