package ats

import (
	"errors"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

type env struct {
	os    *hostos.OS
	ats   *ATS
	clock sim.Clock
}

func newEnv(t testing.TB) *env {
	t.Helper()
	store, err := memory.NewStore(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	clock := sim.MustClock(700e6)
	a, err := New(DefaultConfig(clock), osm, dram)
	if err != nil {
		t.Fatal(err)
	}
	return &env{os: osm, ats: a, clock: clock}
}

func (e *env) procWithPage(t testing.TB, perm arch.Perm) (*hostos.Process, arch.Virt) {
	t.Helper()
	p, err := e.os.NewProcess("p")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Mmap(arch.PageSize, perm)
	if err != nil {
		t.Fatal(err)
	}
	return p, v
}

func TestRejectUnknownASID(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	// Not activated on the accelerator: rejected outright (§3.2.2).
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); !errors.Is(err, ErrBadASID) {
		t.Errorf("err = %v, want ErrBadASID", err)
	}
	if e.ats.Rejected.Value() != 1 {
		t.Error("rejection not counted")
	}
}

func TestTranslateWalksAndCaches(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	// Touch the page so it is mapped before the accelerator asks.
	if _, err := p.Translate(v, arch.Write); err != nil {
		t.Fatal(err)
	}
	e.ats.Activate("gpu0", p.ASID())
	res, err := e.ats.Translate("gpu0", p.ASID(), v+100, arch.Read, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantPPN, _ := p.PPNOf(v.PageOf())
	if res.Entry.PPN != wantPPN || res.Entry.Perm != arch.PermRW {
		t.Errorf("translation = %+v", res.Entry)
	}
	if e.ats.Walks.Value() != 1 {
		t.Error("first translation should walk")
	}
	if res.Done <= 1000 {
		t.Error("walk must take time")
	}
	// Second request: L2 TLB hit, no walk, fast.
	res2, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if e.ats.Walks.Value() != 1 {
		t.Error("second translation should hit the L2 TLB")
	}
	if res2.Done != 1000+e.clock.Cycles(2) {
		t.Errorf("TLB hit done at %d", res2.Done)
	}
}

func TestTranslateServicesPageFault(t *testing.T) {
	// The page is in a valid VMA but never touched: the ATS asks the OS to
	// fault it in, then retries the walk.
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	res, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.ats.Faults.Value() != 1 {
		t.Error("fault not counted")
	}
	if !p.Mapped(v.PageOf()) {
		t.Error("page not faulted in")
	}
	if res.Done < sim.Time(DefaultConfig(e.clock).FaultPenalty) {
		t.Error("fault penalty not charged")
	}
}

func TestTranslateInvalidAddress(t *testing.T) {
	e := newEnv(t)
	p, _ := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu0", p.ASID(), 0x10, arch.Read, 0); !errors.Is(err, ErrFault) {
		t.Errorf("err = %v, want ErrFault", err)
	}
}

func TestTranslatePermissionDenied(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRead)
	e.ats.Activate("gpu0", p.ASID())
	// Unmapped + unwritable VMA: the fault itself fails.
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Write, 0); !errors.Is(err, ErrFault) {
		t.Errorf("write fault on read-only VMA = %v, want ErrFault", err)
	}
	// Mapped read-only page: the walk succeeds but the permission check
	// refuses the write.
	if _, err := p.Translate(v, arch.Read); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Write, 0); !errors.Is(err, ErrPerm) {
		t.Errorf("write to read-only = %v, want ErrPerm", err)
	}
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Errorf("read should pass: %v", err)
	}
}

type obs struct {
	events []struct {
		asid arch.ASID
		vpn  arch.VPN
		ppn  arch.PPN
		perm arch.Perm
		at   sim.Time
	}
}

func (o *obs) OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	o.events = append(o.events, struct {
		asid arch.ASID
		vpn  arch.VPN
		ppn  arch.PPN
		perm arch.Perm
		at   sim.Time
	}{asid, vpn, ppn, perm, at})
}

func TestObserverNotifiedOnEveryTranslation(t *testing.T) {
	// Even L2-TLB hits notify the observer: the paper's table insertion
	// happens "whether or not the accelerator caches the translation".
	e := newEnv(t)
	o := &obs{}
	e.ats.AddObserver(o)
	p, v := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	if len(o.events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(o.events))
	}
	wantPPN, _ := p.PPNOf(v.PageOf())
	for _, ev := range o.events {
		if ev.ppn != wantPPN || ev.perm != arch.PermRW || ev.asid != p.ASID() {
			t.Errorf("event = %+v", ev)
		}
	}
}

func TestDeactivateDropsTranslations(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	if e.ats.L2TLB().Valid() != 1 {
		t.Fatal("translation not cached")
	}
	e.ats.Deactivate("gpu0", p.ASID())
	if e.ats.ActiveOn("gpu0", p.ASID()) {
		t.Error("still active after deactivate")
	}
	if e.ats.L2TLB().Valid() != 0 {
		t.Error("L2 TLB entries survive deactivation")
	}
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); !errors.Is(err, ErrBadASID) {
		t.Error("deactivated ASID should be rejected")
	}
}

func TestPerAcceleratorActivation(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu1", p.ASID(), v, arch.Read, 0); !errors.Is(err, ErrBadASID) {
		t.Error("activation must be per accelerator")
	}
}

func TestInvalidatePage(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	e.ats.InvalidatePage(p.ASID(), v.PageOf())
	walks := e.ats.Walks.Value()
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	if e.ats.Walks.Value() != walks+1 {
		t.Error("invalidated translation should force a new walk")
	}
}

func TestWalkConsumesDRAMBandwidth(t *testing.T) {
	e := newEnv(t)
	p, v := e.procWithPage(t, arch.PermRW)
	if _, err := p.Translate(v, arch.Read); err != nil {
		t.Fatal(err)
	}
	e.ats.Activate("gpu0", p.ASID())
	if _, err := e.ats.Translate("gpu0", p.ASID(), v, arch.Read, 0); err != nil {
		t.Fatal(err)
	}
	if e.ats.WalkReads.Value() == 0 {
		t.Error("walk reads not counted")
	}
}
