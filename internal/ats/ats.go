// Package ats models the Address Translation Service provided by the IOMMU
// (paper §2.3): the trusted hardware that walks process page tables on
// behalf of accelerators, caches translations in a trusted L2 TLB, and —
// with Border Control — reports every completed translation so the
// Protection Table can be updated (paper §3.2.2).
//
// The same component serves both roles evaluated in the paper:
//
//   - ATS-only / Border Control modes: the accelerator calls Translate on
//     its own TLB misses and then issues physical requests itself.
//   - Full-IOMMU mode: the accelerator sends virtual addresses with every
//     request and the IOMMU translates each one inline.
package ats

import (
	"errors"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/pagetable"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/tlb"
)

// Errors returned by translation.
var (
	// ErrBadASID means the accelerator presented an address-space ID that
	// is not registered as running on it. The ATS refuses such requests
	// outright (paper §3.2.2).
	ErrBadASID = errors.New("ats: address space not active on this accelerator")
	// ErrFault means the address has no valid mapping and the OS could not
	// (or chose not to) fault one in.
	ErrFault = errors.New("ats: translation fault")
	// ErrPerm means the mapping exists but does not allow the access.
	ErrPerm = errors.New("ats: insufficient permission")
)

// TableSource resolves an address space to its page table. The trusted OS
// implements this.
type TableSource interface {
	TableFor(asid arch.ASID) (*pagetable.Table, bool)
	// FaultIn asks the OS to service a page fault at v. It returns an
	// error when the address is invalid for the process.
	FaultIn(asid arch.ASID, v arch.Virt, kind arch.AccessKind) error
}

// Observer is notified of every completed translation. Border Control's
// protection-table insertion registers here. at is the simulation time of
// the translation; insertions happen off the translation's critical path
// but still consume memory bandwidth.
type Observer interface {
	OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool)
}

// Config sets ATS timing.
type Config struct {
	// TLBEntries is the trusted L2 TLB size (512 in Table 3).
	TLBEntries int
	// TLBWays is its associativity.
	TLBWays int
	// TLBLatency is charged on every translation request.
	TLBLatency sim.Time
	// FaultPenalty is charged when the OS must service a page fault.
	FaultPenalty sim.Time
}

// DefaultConfig mirrors Table 3: a 512-entry shared L2 TLB.
func DefaultConfig(gpuClock sim.Clock) Config {
	return Config{
		TLBEntries:   512,
		TLBWays:      8,
		TLBLatency:   gpuClock.Cycles(2),
		FaultPenalty: 5 * sim.Microsecond,
	}
}

// ATS is the translation service instance shared by the accelerators of one
// system.
type ATS struct {
	cfg       Config
	tables    TableSource
	dram      *memory.DRAM
	l2tlb     *tlb.TLB
	observers []Observer
	active    map[string]map[arch.ASID]bool // accelerator -> active ASIDs
	pr        *prof.Profiler

	Walks       stats.Counter
	WalkReads   stats.Counter
	Faults      stats.Counter
	Rejected    stats.Counter
	Translation stats.Counter

	// TranslateLatency distributes request-to-response latency of
	// successful translations in simulated picoseconds.
	TranslateLatency stats.Histogram
}

// New returns an ATS over the given page-table source and DRAM (whose
// bandwidth page walks consume).
func New(cfg Config, tables TableSource, dram *memory.DRAM) (*ATS, error) {
	l2, err := tlb.New(cfg.TLBEntries, cfg.TLBWays)
	if err != nil {
		return nil, fmt.Errorf("ats: %w", err)
	}
	return &ATS{
		cfg:    cfg,
		tables: tables,
		dram:   dram,
		l2tlb:  l2,
		active: make(map[string]map[arch.ASID]bool),
	}, nil
}

// AddObserver registers a translation observer.
func (a *ATS) AddObserver(o Observer) { a.observers = append(a.observers, o) }

// L2TLB exposes the trusted TLB (for statistics and shootdowns).
func (a *ATS) L2TLB() *tlb.TLB { return a.l2tlb }

// Activate records that the process runs on the named accelerator, making
// its ASID valid in translation requests from that accelerator.
func (a *ATS) Activate(accel string, asid arch.ASID) {
	set, ok := a.active[accel]
	if !ok {
		set = make(map[arch.ASID]bool)
		a.active[accel] = set
	}
	set[asid] = true
}

// Deactivate removes the process from the accelerator and drops its
// translations from the trusted TLB.
func (a *ATS) Deactivate(accel string, asid arch.ASID) {
	if set, ok := a.active[accel]; ok {
		delete(set, asid)
	}
	a.l2tlb.InvalidateASID(asid)
}

// ActiveOn reports whether asid is active on the named accelerator.
func (a *ATS) ActiveOn(accel string, asid arch.ASID) bool {
	return a.active[accel][asid]
}

// Result is a completed translation.
type Result struct {
	Entry tlb.Entry
	Huge  bool
	// Done is the simulation time at which the translation response is
	// available.
	Done sim.Time
}

// Translate services a translation request issued by accelerator accel at
// time 'at'. On success every observer is notified (this is the Protection
// Table insertion point). The access kind is used only to decide whether a
// page fault should be serviced; the returned entry carries the full page
// permissions so the accelerator TLB can satisfy later writes to a
// read-translated page without a new walk.
func (a *ATS) Translate(accel string, asid arch.ASID, v arch.Virt, kind arch.AccessKind, at sim.Time) (Result, error) {
	a.Translation.Inc()
	if !a.ActiveOn(accel, asid) {
		a.Rejected.Inc()
		return Result{}, fmt.Errorf("%w: accel=%q asid=%d", ErrBadASID, accel, asid)
	}
	if a.pr != nil {
		a.pr.Enter("iommu/translate")
		defer a.pr.Exit()
		a.pr.Span("iommu/l2tlb", uint64(a.cfg.TLBLatency))
	}
	done := at + a.cfg.TLBLatency
	vpn := v.PageOf()
	if e, ok := a.l2tlb.Lookup(asid, vpn); ok {
		res := Result{Entry: e, Done: done}
		a.TranslateLatency.Record(uint64(done - at))
		a.notify(done, asid, vpn, e.PPN, e.Perm, false)
		return res, nil
	}
	table, ok := a.tables.TableFor(asid)
	if !ok {
		a.Rejected.Inc()
		return Result{}, fmt.Errorf("%w: no table for asid=%d", ErrBadASID, asid)
	}
	tr, err := table.Walk(v)
	a.Walks.Inc()
	if err != nil {
		// Page fault: ask the OS to map the page, then retry once.
		a.Faults.Inc()
		if ferr := a.tables.FaultIn(asid, v, kind); ferr != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrFault, ferr)
		}
		done += a.cfg.FaultPenalty
		if a.pr != nil {
			a.pr.Span("host/fault", uint64(a.cfg.FaultPenalty))
		}
		tr, err = table.Walk(v)
		if err != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrFault, err)
		}
	}
	// Charge the page walk: each level is a dependent 8-byte PTE read.
	// Bandwidth for all levels is claimed at walk start (narrow reads must
	// not reserve a channel into the future, which would stall unrelated
	// traffic in the next-free-time channel model); the extra serial
	// latency of the dependent levels is added on top, at row-hit cost —
	// upper-level PTEs are hot. The walker does not report the table frame
	// addresses, so spread the accesses across channels by level.
	walkStart := done
	for i := 0; i < tr.Reads; i++ {
		a.WalkReads.Inc()
		d := a.dram.AccessDoneBytes(walkStart, arch.Phys(uint64(i)<<arch.BlockShift), arch.Read, 8)
		if d > done {
			done = d
		}
	}
	if tr.Reads > 1 {
		done += sim.Time(tr.Reads-1) * a.dram.Config().RowHitLatency
	}
	if a.pr != nil {
		a.pr.Span("host/ptwalk", uint64(done-walkStart))
	}
	if !tr.Perm.Allows(kind.Need()) {
		return Result{}, fmt.Errorf("%w: %s at %#x has %s", ErrPerm, kind, v, tr.Perm)
	}
	e := tlb.Entry{ASID: asid, VPN: vpn, PPN: tr.PPN, Perm: tr.Perm}
	a.l2tlb.Insert(e)
	a.TranslateLatency.Record(uint64(done - at))
	a.notify(done, asid, vpn, tr.PPN, tr.Perm, tr.Huge)
	return Result{Entry: e, Huge: tr.Huge, Done: done}, nil
}

func (a *ATS) notify(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	for _, o := range a.observers {
		o.OnTranslation(at, asid, vpn, ppn, perm, huge)
	}
}

// InvalidatePage drops a translation from the trusted TLB (shootdown).
func (a *ATS) InvalidatePage(asid arch.ASID, vpn arch.VPN) {
	a.l2tlb.Invalidate(asid, vpn)
}

// RegisterMetrics publishes the IOMMU/ATS counters under s
// ("iommu.translations", "iommu.walks", "iommu.l2tlb.hits", ...).
func (a *ATS) RegisterMetrics(s stats.Scope) {
	s.Counter("translations", &a.Translation)
	s.Counter("walks", &a.Walks)
	s.Counter("walk_reads", &a.WalkReads)
	s.Counter("faults", &a.Faults)
	s.Counter("rejected", &a.Rejected)
	s.Histogram("translate_latency_ps", &a.TranslateLatency)
	a.l2tlb.RegisterMetrics(s.Scope("l2tlb"))
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler.
func (a *ATS) SetProfiler(p *prof.Profiler) { a.pr = p }
