// Package pagetable implements x86-64-style four-level page tables stored
// inside simulated physical memory. The table pages themselves occupy
// physical frames, and walking the table issues real memory reads, so page
// walks consume simulated DRAM bandwidth exactly like the hardware walker
// behind the paper's ATS does.
//
// Supported leaf sizes are 4 KB (level-1 leaves) and 2 MB huge pages
// (level-2 leaves).
package pagetable

import (
	"errors"
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// Levels is the number of table levels (L4 root down to L1 leaves).
const Levels = 4

// entriesPerTable is the fan-out of each level (512 8-byte entries per 4 KB
// table page).
const entriesPerTable = arch.PageSize / 8

// Entry bit layout.
const (
	flagPresent = 1 << 0
	flagRead    = 1 << 1
	flagWrite   = 1 << 2
	flagExec    = 1 << 3
	flagHuge    = 1 << 4 // leaf at level 2 (2 MB page)
	ppnShift    = arch.PageShift
)

// FrameAllocator hands out physical frames for table pages. The OS's frame
// allocator satisfies this.
type FrameAllocator interface {
	AllocFrame() (arch.PPN, error)
	FreeFrame(arch.PPN)
}

// Errors reported by table operations.
var (
	ErrNotMapped     = errors.New("pagetable: address not mapped")
	ErrAlreadyMapped = errors.New("pagetable: address already mapped")
	ErrMisaligned    = errors.New("pagetable: misaligned huge mapping")
	ErrSplitHuge     = errors.New("pagetable: operation would split a huge page")
)

// Table is one process's page table.
type Table struct {
	store *memory.Store
	alloc FrameAllocator
	root  arch.PPN

	mapped     uint64 // live 4 KB-equivalent leaf count
	tablePages []arch.PPN
}

// New allocates an empty table, including its root frame.
func New(store *memory.Store, alloc FrameAllocator) (*Table, error) {
	root, err := alloc.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root: %w", err)
	}
	store.ZeroPage(root)
	return &Table{store: store, alloc: alloc, root: root, tablePages: []arch.PPN{root}}, nil
}

// Root returns the physical page holding the root table, i.e. the value an
// OS would load into CR3.
func (t *Table) Root() arch.PPN { return t.root }

// MappedPages returns the number of mapped 4 KB-equivalent pages (a huge
// page counts as 512).
func (t *Table) MappedPages() uint64 { return t.mapped }

// TablePages returns how many physical frames the table structure itself
// occupies.
func (t *Table) TablePages() int { return len(t.tablePages) }

// index returns the entry index of v at the given level (4 = root).
func index(v arch.Virt, level int) uint64 {
	shift := arch.PageShift + 9*(level-1)
	return (uint64(v) >> shift) % entriesPerTable
}

func entryAddr(table arch.PPN, idx uint64) arch.Phys {
	return table.Base() + arch.Phys(idx*8)
}

func permFlags(p arch.Perm) uint64 {
	var f uint64
	if p.CanRead() {
		f |= flagRead
	}
	if p.CanWrite() {
		f |= flagWrite
	}
	if p.CanExec() {
		f |= flagExec
	}
	return f
}

func flagsPerm(f uint64) arch.Perm {
	var p arch.Perm
	if f&flagRead != 0 {
		p |= arch.PermRead
	}
	if f&flagWrite != 0 {
		p |= arch.PermWrite
	}
	if f&flagExec != 0 {
		p |= arch.PermExec
	}
	return p
}

// ensureTable returns the child table pointed to by entry idx of parent,
// allocating and linking a fresh zeroed one when absent.
func (t *Table) ensureTable(parent arch.PPN, idx uint64) (arch.PPN, error) {
	ea := entryAddr(parent, idx)
	e := t.store.ReadU64(ea)
	if e&flagPresent != 0 {
		if e&flagHuge != 0 {
			return 0, ErrSplitHuge
		}
		return arch.PPN(e >> ppnShift), nil
	}
	frame, err := t.alloc.AllocFrame()
	if err != nil {
		return 0, fmt.Errorf("pagetable: allocating level table: %w", err)
	}
	t.store.ZeroPage(frame)
	t.tablePages = append(t.tablePages, frame)
	t.store.WriteU64(ea, uint64(frame)<<ppnShift|flagPresent)
	return frame, nil
}

// Map installs a 4 KB translation vpn -> ppn with the given permissions.
func (t *Table) Map(vpn arch.VPN, ppn arch.PPN, perm arch.Perm) error {
	v := vpn.Base()
	table := t.root
	for level := Levels; level > 1; level-- {
		next, err := t.ensureTable(table, index(v, level))
		if err != nil {
			return err
		}
		table = next
	}
	ea := entryAddr(table, index(v, 1))
	if t.store.ReadU64(ea)&flagPresent != 0 {
		return fmt.Errorf("%w: vpn %#x", ErrAlreadyMapped, vpn)
	}
	t.store.WriteU64(ea, uint64(ppn)<<ppnShift|permFlags(perm)|flagPresent)
	t.mapped++
	return nil
}

// MapHuge installs a 2 MB translation. Both page numbers must be 2 MB
// aligned.
func (t *Table) MapHuge(vpn arch.VPN, ppn arch.PPN, perm arch.Perm) error {
	if !vpn.HugeAligned() || !ppn.HugeAligned() {
		return ErrMisaligned
	}
	v := vpn.Base()
	table := t.root
	for level := Levels; level > 2; level-- {
		next, err := t.ensureTable(table, index(v, level))
		if err != nil {
			return err
		}
		table = next
	}
	ea := entryAddr(table, index(v, 2))
	if t.store.ReadU64(ea)&flagPresent != 0 {
		return fmt.Errorf("%w: vpn %#x", ErrAlreadyMapped, vpn)
	}
	t.store.WriteU64(ea, uint64(ppn)<<ppnShift|permFlags(perm)|flagPresent|flagHuge)
	t.mapped += arch.PagesPerHugePage
	return nil
}

// leafEntry locates the leaf entry covering v. It returns the entry's
// physical address, its value, the leaf level (1 or 2), and how many table
// reads the lookup needed.
func (t *Table) leafEntry(v arch.Virt) (ea arch.Phys, e uint64, level int, reads int, err error) {
	table := t.root
	for level = Levels; level >= 1; level-- {
		ea = entryAddr(table, index(v, level))
		e = t.store.ReadU64(ea)
		reads++
		if e&flagPresent == 0 {
			return ea, e, level, reads, ErrNotMapped
		}
		if level == 1 || e&flagHuge != 0 {
			return ea, e, level, reads, nil
		}
		table = arch.PPN(e >> ppnShift)
	}
	panic("pagetable: walk fell through")
}

// Translation is the result of a successful walk.
type Translation struct {
	PPN  arch.PPN  // physical page of the 4 KB page containing the address
	Perm arch.Perm // leaf permissions
	Huge bool      // true when the leaf is a 2 MB page
	// Reads is the number of table-entry reads the walk performed; the ATS
	// charges DRAM time for each.
	Reads int
}

// Walk translates virtual address v.
func (t *Table) Walk(v arch.Virt) (Translation, error) {
	ea, e, level, reads, err := t.leafEntry(v)
	_ = ea
	if err != nil {
		return Translation{Reads: reads}, fmt.Errorf("%w: %#x", err, v)
	}
	tr := Translation{Perm: flagsPerm(e), Reads: reads, Huge: level == 2}
	base := arch.PPN(e >> ppnShift)
	if tr.Huge {
		tr.PPN = base + arch.PPN(uint64(v.PageOf())%arch.PagesPerHugePage)
	} else {
		tr.PPN = base
	}
	return tr, nil
}

// Protect rewrites the permissions of the leaf covering v and returns the
// previous permissions. Protecting an unmapped address returns ErrNotMapped.
func (t *Table) Protect(v arch.Virt, perm arch.Perm) (arch.Perm, error) {
	ea, e, _, _, err := t.leafEntry(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %#x", err, v)
	}
	old := flagsPerm(e)
	e = e&^uint64(flagRead|flagWrite|flagExec) | permFlags(perm)
	t.store.WriteU64(ea, e)
	return old, nil
}

// Unmap removes the leaf covering v and returns its translation. The freed
// data frame is NOT returned to the allocator; ownership of data frames
// stays with the OS.
func (t *Table) Unmap(v arch.Virt) (Translation, error) {
	ea, e, level, reads, err := t.leafEntry(v)
	if err != nil {
		return Translation{}, fmt.Errorf("%w: %#x", err, v)
	}
	tr := Translation{Perm: flagsPerm(e), Reads: reads, Huge: level == 2}
	base := arch.PPN(e >> ppnShift)
	if tr.Huge {
		tr.PPN = base
		t.mapped -= arch.PagesPerHugePage
	} else {
		tr.PPN = base
		t.mapped--
	}
	t.store.WriteU64(ea, 0)
	return tr, nil
}

// Release frees every frame used by the table structure itself. The table
// must not be used afterwards.
func (t *Table) Release() {
	for _, p := range t.tablePages {
		t.alloc.FreeFrame(p)
	}
	t.tablePages = nil
	t.mapped = 0
}
