package pagetable

import (
	"errors"
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// testAlloc is a trivial frame allocator for table pages.
type testAlloc struct {
	next  arch.PPN
	limit arch.PPN
	freed []arch.PPN
}

func (a *testAlloc) AllocFrame() (arch.PPN, error) {
	if a.next >= a.limit {
		return 0, errors.New("out of frames")
	}
	p := a.next
	a.next++
	return p, nil
}

func (a *testAlloc) FreeFrame(p arch.PPN) { a.freed = append(a.freed, p) }

func newTable(t *testing.T) (*Table, *memory.Store, *testAlloc) {
	t.Helper()
	store, err := memory.NewStore(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	alloc := &testAlloc{next: 1, limit: arch.PPN(store.Pages())}
	tbl, err := New(store, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, store, alloc
}

func TestMapWalk(t *testing.T) {
	tbl, _, _ := newTable(t)
	vpn, ppn := arch.VPN(0x12345), arch.PPN(0x678)
	if err := tbl.Map(vpn, ppn, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Walk(vpn.Base() + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PPN != ppn || !tr.Perm.CanRead() || !tr.Perm.CanWrite() || tr.Huge {
		t.Errorf("walk = %+v", tr)
	}
	if tr.Reads != Levels {
		t.Errorf("walk reads = %d, want %d", tr.Reads, Levels)
	}
	if tbl.MappedPages() != 1 {
		t.Errorf("mapped = %d, want 1", tbl.MappedPages())
	}
}

func TestWalkUnmapped(t *testing.T) {
	tbl, _, _ := newTable(t)
	if _, err := tbl.Walk(0x1000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("walk of unmapped = %v, want ErrNotMapped", err)
	}
	// Sibling mapped, target still unmapped: the walk descends further
	// before failing.
	if err := tbl.Map(1, 42, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Walk(arch.VPN(2).Base()); !errors.Is(err, ErrNotMapped) {
		t.Errorf("walk of sibling = %v, want ErrNotMapped", err)
	}
}

func TestDoubleMap(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.Map(7, 8, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(7, 9, arch.PermRead); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("double map = %v, want ErrAlreadyMapped", err)
	}
}

func TestProtect(t *testing.T) {
	tbl, _, _ := newTable(t)
	vpn := arch.VPN(0x40)
	if err := tbl.Map(vpn, 5, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	old, err := tbl.Protect(vpn.Base(), arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if old != arch.PermRW {
		t.Errorf("old perm = %v, want rw", old)
	}
	tr, _ := tbl.Walk(vpn.Base())
	if tr.Perm != arch.PermRead || tr.PPN != 5 {
		t.Errorf("after protect: %+v", tr)
	}
	if _, err := tbl.Protect(0xdead000, arch.PermRead); !errors.Is(err, ErrNotMapped) {
		t.Errorf("protect unmapped = %v", err)
	}
}

func TestUnmap(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.Map(3, 4, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Unmap(arch.VPN(3).Base())
	if err != nil {
		t.Fatal(err)
	}
	if tr.PPN != 4 {
		t.Errorf("unmap returned ppn %d", tr.PPN)
	}
	if tbl.MappedPages() != 0 {
		t.Error("mapped count not decremented")
	}
	if _, err := tbl.Walk(arch.VPN(3).Base()); !errors.Is(err, ErrNotMapped) {
		t.Error("page still walks after unmap")
	}
	// Remappable after unmap.
	if err := tbl.Map(3, 9, arch.PermRW); err != nil {
		t.Errorf("remap after unmap: %v", err)
	}
}

func TestHugePages(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.MapHuge(3, 512, arch.PermRW); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned vpn = %v", err)
	}
	if err := tbl.MapHuge(512, 3, arch.PermRW); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned ppn = %v", err)
	}
	if err := tbl.MapHuge(1024, 2048, arch.PermRW); err != nil {
		t.Fatal(err)
	}
	if tbl.MappedPages() != arch.PagesPerHugePage {
		t.Errorf("mapped = %d, want %d", tbl.MappedPages(), arch.PagesPerHugePage)
	}
	// Any 4 KB page inside translates with the right sub-frame.
	tr, err := tbl.Walk(arch.VPN(1024+37).Base() + 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Huge || tr.PPN != 2048+37 {
		t.Errorf("huge walk = %+v", tr)
	}
	if tr.Reads != Levels-1 {
		t.Errorf("huge walk reads = %d, want %d", tr.Reads, Levels-1)
	}
	// A 4 KB mapping cannot split the huge leaf.
	if err := tbl.Map(1024+5, 7, arch.PermRead); !errors.Is(err, ErrSplitHuge) {
		t.Errorf("split huge = %v", err)
	}
}

func TestHugeUnmap(t *testing.T) {
	tbl, _, _ := newTable(t)
	if err := tbl.MapHuge(512, 512, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Unmap(arch.VPN(512 + 100).Base())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Huge || tr.PPN != 512 {
		t.Errorf("huge unmap = %+v", tr)
	}
	if tbl.MappedPages() != 0 {
		t.Error("huge unmap did not clear mapped count")
	}
}

func TestTablePagesAccounting(t *testing.T) {
	tbl, _, alloc := newTable(t)
	if tbl.TablePages() != 1 {
		t.Errorf("fresh table pages = %d, want 1 (root)", tbl.TablePages())
	}
	// One 4 KB mapping needs the full 4-level spine.
	if err := tbl.Map(0x12345, 1, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != Levels {
		t.Errorf("table pages = %d, want %d", tbl.TablePages(), Levels)
	}
	// A neighbor in the same leaf table adds nothing.
	if err := tbl.Map(0x12346, 2, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if tbl.TablePages() != Levels {
		t.Error("sibling mapping should reuse tables")
	}
	pages := tbl.TablePages()
	tbl.Release()
	if len(alloc.freed) != pages {
		t.Errorf("released %d frames, want %d", len(alloc.freed), pages)
	}
}

func TestWalksReadSimulatedMemory(t *testing.T) {
	// The table lives in the store: clobbering the root in memory breaks
	// translation, proving walks really read simulated memory.
	tbl, store, _ := newTable(t)
	if err := tbl.Map(0x42, 0x99, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	store.ZeroPage(tbl.Root())
	if _, err := tbl.Walk(arch.VPN(0x42).Base()); !errors.Is(err, ErrNotMapped) {
		t.Errorf("walk after root clobber = %v, want ErrNotMapped", err)
	}
}

func TestRandomMapWalkConsistency(t *testing.T) {
	tbl, _, _ := newTable(t)
	rng := rand.New(rand.NewSource(11))
	ref := make(map[arch.VPN]arch.PPN)
	perms := []arch.Perm{arch.PermRead, arch.PermRW, arch.PermRead | arch.PermExec}
	refPerm := make(map[arch.VPN]arch.Perm)
	for i := 0; i < 2000; i++ {
		vpn := arch.VPN(rng.Intn(1 << 20))
		if _, ok := ref[vpn]; ok {
			continue
		}
		ppn := arch.PPN(rng.Intn(1 << 20))
		perm := perms[rng.Intn(len(perms))]
		if err := tbl.Map(vpn, ppn, perm); err != nil {
			t.Fatal(err)
		}
		ref[vpn] = ppn
		refPerm[vpn] = perm
	}
	for vpn, ppn := range ref {
		tr, err := tbl.Walk(vpn.Base() + arch.Virt(rand.Intn(arch.PageSize)))
		if err != nil {
			t.Fatalf("walk %#x: %v", vpn, err)
		}
		if tr.PPN != ppn || tr.Perm != refPerm[vpn] {
			t.Fatalf("walk %#x = (%#x,%v), want (%#x,%v)", vpn, tr.PPN, tr.Perm, ppn, refPerm[vpn])
		}
	}
	if tbl.MappedPages() != uint64(len(ref)) {
		t.Errorf("mapped = %d, want %d", tbl.MappedPages(), len(ref))
	}
}
