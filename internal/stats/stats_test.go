package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("value = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestRatio(t *testing.T) {
	var a, b Counter
	if a.Ratio(&b) != 0 {
		t.Error("0/0 should be 0")
	}
	a.Add(3)
	b.Add(1)
	if got := a.Ratio(&b); got != 0.75 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
}

func TestHitMiss(t *testing.T) {
	var h HitMiss
	h.Record(true)
	h.Record(true)
	h.Record(false)
	if h.Accesses() != 3 {
		t.Errorf("accesses = %d, want 3", h.Accesses())
	}
	if math.Abs(h.HitRatio()-2.0/3) > 1e-12 {
		t.Errorf("hit ratio = %v", h.HitRatio())
	}
	if math.Abs(h.MissRatio()-1.0/3) > 1e-12 {
		t.Errorf("miss ratio = %v", h.MissRatio())
	}
	if math.Abs(h.HitRatio()+h.MissRatio()-1) > 1e-12 {
		t.Error("ratios should sum to 1")
	}
	h.Reset()
	if h.Accesses() != 0 {
		t.Error("reset failed")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Counter("b").Inc() // same counter
	snap := s.Snapshot()
	if snap["a"] != 1 || snap["b"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	str := s.String()
	if !strings.Contains(str, "a=1") || !strings.Contains(str, "b=3") {
		t.Errorf("String() = %q", str)
	}
	if strings.Index(str, "a=1") > strings.Index(str, "b=3") {
		t.Error("String() should be sorted by name")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestGeoMeanOverhead(t *testing.T) {
	if GeoMeanOverhead(nil) != 0 {
		t.Error("empty should be 0")
	}
	// Uniform overhead is its own geomean.
	if got := GeoMeanOverhead([]float64{0.5, 0.5, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("uniform geomean = %v, want 0.5", got)
	}
	// (1+1)(1+0) -> sqrt(2)-1.
	if got := GeoMeanOverhead([]float64{1, 0}); math.Abs(got-(math.Sqrt2-1)) > 1e-12 {
		t.Errorf("geomean = %v, want sqrt(2)-1", got)
	}
	// Tolerates slightly negative overheads.
	if got := GeoMeanOverhead([]float64{-0.01, 0.01}); math.Abs(got) > 1e-3 {
		t.Errorf("near-zero mix = %v", got)
	}
	// Degenerate -100% doesn't produce NaN.
	if got := GeoMeanOverhead([]float64{-1}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("degenerate input produced %v", got)
	}
}
