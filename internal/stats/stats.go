// Package stats provides the lightweight counters and summaries the
// simulator components use to report what happened during a run: hit/miss
// counters, rates over simulated time, and small distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c / (c + other), or 0 when both are zero. It is the common
// hit-ratio shape: hits.Ratio(misses).
func (c *Counter) Ratio(other *Counter) float64 {
	total := c.n + other.n
	if total == 0 {
		return 0
	}
	return float64(c.n) / float64(total)
}

// HitMiss pairs the two counters every cache-like structure needs.
type HitMiss struct {
	Hits   Counter
	Misses Counter
}

// Accesses returns hits + misses.
func (h *HitMiss) Accesses() uint64 { return h.Hits.Value() + h.Misses.Value() }

// HitRatio returns hits / accesses (0 when no accesses).
func (h *HitMiss) HitRatio() float64 { return h.Hits.Ratio(&h.Misses) }

// MissRatio returns misses / accesses (0 when no accesses).
func (h *HitMiss) MissRatio() float64 { return h.Misses.Ratio(&h.Hits) }

// Record adds a hit or a miss.
func (h *HitMiss) Record(hit bool) {
	if hit {
		h.Hits.Inc()
	} else {
		h.Misses.Inc()
	}
}

// Reset zeroes both counters.
func (h *HitMiss) Reset() {
	h.Hits.Reset()
	h.Misses.Reset()
}

// Set is a named collection of counters, handy for component dumps.
type Set struct {
	names  []string
	values map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{values: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.values[name]; ok {
		return c
	}
	c := &Counter{}
	s.values[name] = c
	s.names = append(s.names, name)
	return c
}

// Snapshot returns the current name->value map.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.values))
	for name, c := range s.values {
		out[name] = c.Value()
	}
	return out
}

// String renders the set sorted by name, one counter per line.
func (s *Set) String() string {
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, s.values[name].Value())
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMeanOverhead returns the geometric mean of (1+x) minus 1 for the given
// overhead fractions. The paper reports geometric-mean runtime overheads;
// overheads can be slightly negative due to measurement noise, which the
// (1+x) shift tolerates.
func GeoMeanOverhead(overheads []float64) float64 {
	if len(overheads) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range overheads {
		f := 1 + x
		if f <= 0 {
			f = 1e-9
		}
		prod *= f
	}
	return math.Pow(prod, 1/float64(len(overheads))) - 1
}
