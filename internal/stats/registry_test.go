package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotOrdered(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	gpu := r.Scope("gpu")
	gpu.Counter("ops", &c)
	gpu.Scope("l2").CounterFunc("fills", func() uint64 { return 3 })
	r.Scope("engine").CounterFunc("events", func() uint64 { return 42 })
	r.Scope("border").Gauge("utilization", func() float64 { return 0.5 })

	snap := r.Snapshot()
	want := []string{"border.utilization", "engine.events", "gpu.l2.fills", "gpu.ops"}
	if len(snap.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(snap.Samples), len(want))
	}
	for i, name := range want {
		if snap.Samples[i].Name != name {
			t.Errorf("sample %d = %s, want %s", i, snap.Samples[i].Name, name)
		}
	}
	if snap.Counter("gpu.ops") != 7 || snap.Counter("engine.events") != 42 {
		t.Errorf("counter values wrong: %v", snap.Samples)
	}
	if snap.Gauge("border.utilization") != 0.5 {
		t.Errorf("gauge value wrong")
	}
	if _, ok := snap.Get("nope"); ok {
		t.Error("Get on missing name should report false")
	}
}

func TestRegistryLiveAccessors(t *testing.T) {
	// Registration must capture the accessor, not the value.
	r := NewRegistry()
	var c Counter
	r.Scope("x").Counter("n", &c)
	c.Add(9)
	if got := r.Snapshot().Counter("x.n"); got != 9 {
		t.Errorf("snapshot = %d, want live value 9", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r := NewRegistry()
	var c Counter
	r.Scope("a").Counter("n", &c)
	r.Scope("a").Counter("n", &c)
}

func TestScopeHitMiss(t *testing.T) {
	r := NewRegistry()
	var hm HitMiss
	hm.Record(true)
	hm.Record(true)
	hm.Record(false)
	r.Scope("gpu").HitMiss("l1", &hm)
	var direct HitMiss
	direct.Record(false)
	r.Scope("bcc").HitMiss("", &direct)
	snap := r.Snapshot()
	if snap.Counter("gpu.l1.hits") != 2 || snap.Counter("gpu.l1.misses") != 1 {
		t.Errorf("hitmiss counters wrong: %v", snap.Samples)
	}
	if snap.Counter("bcc.misses") != 1 {
		t.Errorf("empty-base HitMiss should register directly in scope: %v", snap.Samples)
	}
	if got := snap.Gauge("gpu.l1.miss_ratio"); got < 0.33 || got > 0.34 {
		t.Errorf("miss ratio = %v", got)
	}
}

func TestSnapshotJSONDeterministicAndValid(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		var hm HitMiss
		hm.Record(true)
		hm.Record(false)
		r.Scope("gpu").HitMiss("l2", &hm)
		r.Scope("engine").CounterFunc("events", func() uint64 { return 12345 })
		r.Scope("dram").Gauge("row_hit_ratio", func() float64 { return 1.0 / 3.0 })
		return r.Snapshot()
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("identical snapshots marshal differently:\n%s\n%s", a, b)
	}
	// Keys appear in sorted order in the raw bytes.
	if di, ei := bytes.Index(a, []byte("dram")), bytes.Index(a, []byte("engine")); di < 0 || ei < 0 || di > ei {
		t.Errorf("keys out of order: %s", a)
	}
	// Round-trips through the standard library.
	var back Snapshot
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Counter("engine.events") != 12345 {
		t.Errorf("round trip lost counter: %v", back.Samples)
	}
	if g := back.Gauge("dram.row_hit_ratio"); g < 0.333 || g > 0.334 {
		t.Errorf("round trip lost gauge: %v", g)
	}
	if !strings.Contains(build().String(), "engine.events 12345\n") {
		t.Errorf("String() wrong:\n%s", build().String())
	}
}

func TestMerge(t *testing.T) {
	mk := func(hits, misses uint64) Snapshot {
		r := NewRegistry()
		var hm HitMiss
		hm.Hits.Add(hits)
		hm.Misses.Add(misses)
		r.Scope("l1").HitMiss("", &hm)
		return r.Snapshot()
	}
	m := Merge(mk(3, 1), mk(1, 3))
	if m.Counter("l1.hits") != 4 || m.Counter("l1.misses") != 4 {
		t.Errorf("merged counters wrong: %v", m.Samples)
	}
	// Gauges average: (0.25 + 0.75) / 2.
	if g := m.Gauge("l1.miss_ratio"); g != 0.5 {
		t.Errorf("merged gauge = %v, want 0.5", g)
	}
	if len(Merge().Samples) != 0 {
		t.Error("empty merge should be empty")
	}
}
