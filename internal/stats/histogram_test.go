package stats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// TestBucketScheme checks the log-linear mapping: every value lands in a
// bucket whose bound is >= the value, bounds are boundaries of the scheme
// (round-tripping through bucketIndex is the identity), and indices are
// monotone in the value.
func TestBucketScheme(t *testing.T) {
	values := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1025,
		1 << 20, 1<<40 + 12345, 1<<63 - 1, 1 << 63, ^uint64(0)}
	prevIdx := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if b := bucketBound(i); b < v {
			t.Errorf("bucketBound(bucketIndex(%d)) = %d < value", v, b)
		}
		if i < prevIdx {
			t.Errorf("bucketIndex not monotone at %d: %d after %d", v, i, prevIdx)
		}
		prevIdx = i
	}
	for i := 0; i < HistBuckets; i += 7 {
		if got := bucketIndex(bucketBound(i)); got != i {
			t.Errorf("bucketIndex(bucketBound(%d)) = %d", i, got)
		}
	}
}

// TestHistogramExact checks count/sum/min/max and the small-value exact
// buckets.
func TestHistogramExact(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{3, 3, 7, 0, 15} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 28 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 5 {
		t.Errorf("mean = %d, want 5", h.Mean())
	}
	// Values below histSub are exact: the p50 sample is the 3rd of 5 (=3).
	if p := h.Percentile(50); p != 3 {
		t.Errorf("p50 = %d, want 3", p)
	}
	if p := h.Percentile(100); p != 15 {
		t.Errorf("p100 = %d, want 15", p)
	}
}

// TestHistogramMergeOrderIndependent splits one sample stream into shards,
// merges them in different orders (both the in-place Histogram merge and
// the snapshot merge), and requires byte-identical JSON — the property the
// parallel sweep aggregation relies on.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*Histogram, 4)
	var whole Histogram
	for i := range shards {
		shards[i] = new(Histogram)
	}
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(60))
		shards[i%len(shards)].Record(v)
		whole.Record(v)
	}

	var fwd, rev Histogram
	for i := 0; i < len(shards); i++ {
		fwd.Merge(shards[i])
		rev.Merge(shards[len(shards)-1-i])
	}
	snapJSON := func(s HistSnapshot) []byte {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := snapJSON(whole.Snapshot())
	if got := snapJSON(fwd.Snapshot()); !bytes.Equal(got, want) {
		t.Errorf("forward merge differs from whole:\n%s\n%s", got, want)
	}
	if got := snapJSON(rev.Snapshot()); !bytes.Equal(got, want) {
		t.Errorf("reverse merge differs from whole:\n%s\n%s", got, want)
	}

	// Snapshot-level merge, both orders.
	a := shards[0].Snapshot().Merge(shards[1].Snapshot()).Merge(shards[2].Snapshot()).Merge(shards[3].Snapshot())
	b := shards[3].Snapshot().Merge(shards[2].Snapshot()).Merge(shards[1].Snapshot()).Merge(shards[0].Snapshot())
	if ga, gb := snapJSON(a), snapJSON(b); !bytes.Equal(ga, gb) {
		t.Errorf("snapshot merge is order-dependent:\n%s\n%s", ga, gb)
	}
	if got := snapJSON(a); !bytes.Equal(got, want) {
		t.Errorf("snapshot merge differs from whole:\n%s\n%s", got, want)
	}
}

// TestHistogramJSONRoundTrip marshals a snapshot, validates it against the
// schema checker, and restores it.
func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for i := uint64(1); i < 4000; i += 13 {
		h.Record(i * i)
	}
	snap := h.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateHistogramJSON(blob); err != nil {
		t.Fatalf("marshalled snapshot fails its own schema: %v\n%s", err, blob)
	}
	var back HistSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Errorf("round trip changed the encoding:\n%s\n%s", blob, blob2)
	}
}

// TestValidateHistogramJSONRejects checks the schema checker catches
// corrupted documents.
func TestValidateHistogramJSONRejects(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Record(2000)
	good, _ := json.Marshal(h.Snapshot())
	for name, corrupt := range map[string][]byte{
		"missing-key":   []byte(`{"count":1,"sum":1,"min":1,"max":1,"p50":1,"p90":1,"buckets":[[1,1]]}`),
		"bad-bound":     bytes.Replace(good, []byte(`"buckets":[[103`), []byte(`"buckets":[[102`), 1),
		"count-drift":   bytes.Replace(good, []byte(`"count":2`), []byte(`"count":3`), 1),
		"bad-p50":       bytes.Replace(good, []byte(`"p50":103`), []byte(`"p50":104`), 1),
		"nonempty-zero": []byte(`{"count":0,"sum":5,"min":0,"max":0,"p50":0,"p90":0,"p99":0,"buckets":[]}`),
	} {
		if bytes.Equal(corrupt, good) {
			t.Fatalf("%s: corruption did not apply to %s", name, good)
		}
		if err := ValidateHistogramJSON(corrupt); err == nil {
			t.Errorf("%s: validator accepted %s", name, corrupt)
		}
	}
	if err := ValidateHistogramJSON(good); err != nil {
		t.Fatalf("validator rejects a genuine snapshot: %v", err)
	}
}

// TestValidateSnapshotJSON checks the document-level checker over a real
// registry marshal containing both scalars and histograms.
func TestValidateSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var h Histogram
	h.Record(42)
	s := reg.Scope("x")
	s.Counter("ops", &c)
	s.Histogram("lat", &h)
	blob, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	hists, err := ValidateSnapshotJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if hists != 1 {
		t.Errorf("validated %d histograms, want 1", hists)
	}
	if _, err := ValidateSnapshotJSON([]byte(`{"x":"nope"}`)); err == nil {
		t.Error("validator accepted a string-valued entry")
	}
}

// TestHistogramRecordNoAllocs pins the record path at zero allocations —
// the property that makes always-on recording safe in the hot path.
func TestHistogramRecordNoAllocs(t *testing.T) {
	var h Histogram
	v := uint64(123456)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*2654435761 + 1
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkHistogramRecord measures the always-on record path; it must
// report 0 allocs/op.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	v := uint64(1)
	for i := 0; i < b.N; i++ {
		h.Record(v)
		v = v*2654435761 + 1
	}
}
