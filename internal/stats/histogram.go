package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
)

// This file holds the fixed-bucket log-linear histogram the simulator uses
// for latency distributions. The bucket scheme is HDR-style: values below
// histSub land in exact unit buckets; above that, each power-of-two octave
// is split into histSub linear sub-buckets, so the relative bucket width is
// bounded by 1/histSub (~6%) across the whole uint64 range. The bucket
// array is a flat fixed-size array — the zero Histogram is ready to use,
// recording allocates nothing, and two histograms fed the same values are
// bit-identical, which is what makes always-on recording safe in a
// deterministic simulator.

const (
	// histSubBits is the number of linear sub-bucket bits per octave.
	histSubBits = 4
	// histSub is the number of linear sub-buckets per octave (and the
	// boundary below which values are counted exactly).
	histSub = 1 << histSubBits
	// HistBuckets is the total bucket count covering all of uint64.
	HistBuckets = histSub + (64-histSubBits)*histSub
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	m := bits.Len64(v) - 1 // histSubBits..63
	sub := int((v >> uint(m-histSubBits)) & (histSub - 1))
	return histSub + (m-histSubBits)*histSub + sub
}

// bucketBound returns the inclusive upper bound of bucket i's value range.
func bucketBound(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	i -= histSub
	m := uint(i/histSub + histSubBits)
	sub := uint64(i % histSub)
	width := uint64(1) << (m - histSubBits)
	return uint64(1)<<m + sub*width + width - 1
}

// Histogram is a fixed-bucket log-linear distribution of uint64 samples
// (simulated-time latencies in picoseconds, queue depths, ...). The zero
// value is ready to use; Record allocates nothing and is safe to leave on
// in the simulation hot path. Histogram is not safe for concurrent use —
// like every stats structure here it is owned by one run's System.
type Histogram struct {
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
	counts [HistBuckets]uint64
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketIndex(v)]++
}

// Count returns how many samples were recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the integer mean sample (0 when empty).
func (h *Histogram) Mean() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Percentile returns the upper bound of the bucket holding the p-th
// percentile sample (integer p in [0,100]; rank is computed with integer
// ceiling arithmetic, so the result is exact with respect to the bucket
// counts and identical on every platform). Returns 0 when empty.
func (h *Histogram) Percentile(p int) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := (h.count*uint64(p) + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return h.max
}

// Permille returns the upper bound of the bucket holding the p-th permille
// sample (integer p in [0,1000]) — the finer-grained sibling of Percentile
// for deep-tail readings like p999. Permille(990) equals Percentile(99).
func (h *Histogram) Permille(p int) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := (h.count*uint64(p) + 999) / 1000
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return h.max
}

// Merge adds other's samples into h. Buckets are identical by construction,
// so merging is a plain element-wise sum and therefore order-independent.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Snapshot captures the histogram as a sparse, immutable value.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Bound: bucketBound(i), Count: c})
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a histogram snapshot: the inclusive
// upper bound of the bucket's value range and how many samples fell in it.
type HistBucket struct {
	Bound uint64
	Count uint64
}

// HistSnapshot is the immutable capture of a Histogram: sparse non-empty
// buckets in ascending bound order plus the exact count/sum/min/max.
// Percentiles are recomputed from the buckets on demand, so snapshots merge
// without losing quantile fidelity.
type HistSnapshot struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
	// Buckets lists the non-empty buckets in ascending Bound order.
	Buckets []HistBucket
}

// Mean returns the integer mean sample (0 when empty).
func (s HistSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Percentile mirrors Histogram.Percentile on the sparse bucket list.
func (s HistSnapshot) Percentile(p int) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := (s.Count*uint64(p) + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Bound
		}
	}
	return s.Max
}

// Permille mirrors Histogram.Permille on the sparse bucket list.
func (s HistSnapshot) Permille(p int) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := (s.Count*uint64(p) + 999) / 1000
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Bound
		}
	}
	return s.Max
}

// Merge returns the combination of s and other: bucket counts sum (matched
// by bound — both sides come from the same fixed scheme), count/sum add,
// min/max extend. Addition commutes, so merging is order-independent.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	if other.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return other
	}
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	if other.Min < out.Min {
		out.Min = other.Min
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Bound < other.Buckets[j].Bound):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Bound < s.Buckets[i].Bound:
			out.Buckets = append(out.Buckets, other.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, HistBucket{
				Bound: s.Buckets[i].Bound,
				Count: s.Buckets[i].Count + other.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// appendJSON renders the snapshot as a deterministic JSON object: fixed key
// order, integer values, buckets as [bound,count] pairs in ascending bound
// order. p50/p90/p99 are derived from the buckets at render time.
func (s HistSnapshot) appendJSON(b *bytes.Buffer) {
	b.WriteString(`{"count":`)
	b.WriteString(strconv.FormatUint(s.Count, 10))
	b.WriteString(`,"sum":`)
	b.WriteString(strconv.FormatUint(s.Sum, 10))
	b.WriteString(`,"min":`)
	b.WriteString(strconv.FormatUint(s.Min, 10))
	b.WriteString(`,"max":`)
	b.WriteString(strconv.FormatUint(s.Max, 10))
	b.WriteString(`,"p50":`)
	b.WriteString(strconv.FormatUint(s.Percentile(50), 10))
	b.WriteString(`,"p90":`)
	b.WriteString(strconv.FormatUint(s.Percentile(90), 10))
	b.WriteString(`,"p99":`)
	b.WriteString(strconv.FormatUint(s.Percentile(99), 10))
	b.WriteString(`,"buckets":[`)
	for i, bk := range s.Buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		b.WriteString(strconv.FormatUint(bk.Bound, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(bk.Count, 10))
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
}

// MarshalJSON renders the snapshot deterministically (see appendJSON).
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	s.appendJSON(&b)
	return b.Bytes(), nil
}

// histJSON is the wire form of a histogram snapshot, shared by
// UnmarshalJSON and ValidateHistogramJSON.
type histJSON struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min"`
	Max     uint64      `json:"max"`
	P50     uint64      `json:"p50"`
	P90     uint64      `json:"p90"`
	P99     uint64      `json:"p99"`
	Buckets [][2]uint64 `json:"buckets"`
}

func (j histJSON) snapshot() HistSnapshot {
	s := HistSnapshot{Count: j.Count, Sum: j.Sum, Min: j.Min, Max: j.Max}
	for _, b := range j.Buckets {
		s.Buckets = append(s.Buckets, HistBucket{Bound: b[0], Count: b[1]})
	}
	return s
}

// UnmarshalJSON restores a snapshot from the MarshalJSON form. The stored
// percentiles are ignored — they are derived values, recomputed from the
// buckets.
func (s *HistSnapshot) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = j.snapshot()
	return nil
}

// ValidateHistogramJSON checks that raw is a well-formed histogram
// snapshot: every required key present, bucket bounds are genuine bucket
// boundaries of the fixed scheme in strictly ascending order with non-zero
// counts summing to count, min/max bracket the buckets, and the stored
// percentiles match recomputation. It is the schema check behind
// `bctool tracecheck -stats`.
// ValidateSnapshotJSON checks a marshalled Snapshot document: a flat JSON
// object whose object-valued entries must each pass ValidateHistogramJSON
// and whose remaining entries must be plain numbers. It returns how many
// histograms it validated, so callers can require at least one.
func ValidateSnapshotJSON(blob []byte) (int, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(blob, &doc); err != nil {
		return 0, err
	}
	names := make([]string, 0, len(doc))
	for k := range doc {
		names = append(names, k)
	}
	sort.Strings(names)
	hists := 0
	for _, k := range names {
		raw := bytes.TrimSpace(doc[k])
		if len(raw) > 0 && raw[0] == '{' {
			if err := ValidateHistogramJSON(raw); err != nil {
				return hists, fmt.Errorf("%s: %w", k, err)
			}
			hists++
			continue
		}
		if _, err := strconv.ParseFloat(string(raw), 64); err != nil {
			return hists, fmt.Errorf("%s: neither a number nor a histogram object", k)
		}
	}
	return hists, nil
}

func ValidateHistogramJSON(raw []byte) error {
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		return err
	}
	for _, k := range []string{"count", "sum", "min", "max", "p50", "p90", "p99", "buckets"} {
		if _, ok := keys[k]; !ok {
			return fmt.Errorf("missing key %q", k)
		}
	}
	var j histJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return err
	}
	var total uint64
	var prev uint64
	for i, b := range j.Buckets {
		bound, count := b[0], b[1]
		if count == 0 {
			return fmt.Errorf("bucket %d (bound %d) has a zero count", i, bound)
		}
		if i > 0 && bound <= prev {
			return fmt.Errorf("bucket bounds not ascending: %d after %d", bound, prev)
		}
		if bucketBound(bucketIndex(bound)) != bound {
			return fmt.Errorf("bucket bound %d is not a boundary of the fixed scheme", bound)
		}
		prev = bound
		total += count
	}
	if total != j.Count {
		return fmt.Errorf("bucket counts sum to %d, count says %d", total, j.Count)
	}
	if j.Count == 0 {
		if j.Sum != 0 || j.Min != 0 || j.Max != 0 || j.P50 != 0 || j.P90 != 0 || j.P99 != 0 {
			return fmt.Errorf("empty histogram with non-zero summary fields")
		}
		return nil
	}
	if j.Min > j.Max {
		return fmt.Errorf("min %d > max %d", j.Min, j.Max)
	}
	first, last := j.Buckets[0][0], j.Buckets[len(j.Buckets)-1][0]
	if j.Min > first {
		return fmt.Errorf("min %d above the first bucket bound %d", j.Min, first)
	}
	if bucketIndex(j.Max) != bucketIndex(last) {
		return fmt.Errorf("max %d outside the last bucket (bound %d)", j.Max, last)
	}
	s := j.snapshot()
	for _, pc := range []struct {
		p    int
		want uint64
	}{{50, j.P50}, {90, j.P90}, {99, j.P99}} {
		if got := s.Percentile(pc.p); got != pc.want {
			return fmt.Errorf("p%d is %d, recomputation from buckets says %d", pc.p, pc.want, got)
		}
	}
	return nil
}
