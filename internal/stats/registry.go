package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file holds the run-scoped metrics registry. Components register
// named counters and gauges under dotted paths ("gpu.l2.hits",
// "border.bcc.miss_ratio", "engine.events") when a System is assembled;
// the harness snapshots the registry once the run completes. Registration
// stores accessor funcs, never copies, so it costs nothing on the
// simulation hot path: values are only read at Snapshot time.

// Kind distinguishes the two sample shapes a registry can hold.
type Kind uint8

const (
	// KindCounter is a monotonically increasing integer count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time float (ratios, utilizations).
	KindGauge
	// KindHistogram is a fixed-bucket latency/size distribution.
	KindHistogram
)

// String returns "counter", "gauge", or "histogram".
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "counter"
}

// metric is one registered accessor.
type metric struct {
	name string
	kind Kind
	u64  func() uint64
	f64  func() float64
	hist func() HistSnapshot
}

// Registry is a run-scoped collection of metric accessors. It is built
// once per System, is not safe for concurrent mutation, and is read only
// when Snapshot is called. The zero Registry is not usable; call
// NewRegistry.
type Registry struct {
	metrics []metric
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Scope returns a registration scope whose names are prefixed with
// prefix + ".". An empty prefix scopes to the registry root.
func (r *Registry) Scope(prefix string) Scope {
	return Scope{r: r, prefix: prefix}
}

// register adds one accessor. Duplicate names are a wiring bug in the
// System assembly, so they panic rather than silently shadowing.
func (r *Registry) register(m metric) {
	if _, dup := r.index[m.name]; dup {
		panic(fmt.Sprintf("stats: duplicate metric %q", m.name))
	}
	r.index[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Len returns how many metrics are registered.
func (r *Registry) Len() int { return len(r.metrics) }

// Snapshot reads every registered accessor and returns the values as an
// immutable, name-sorted sample list.
func (r *Registry) Snapshot() Snapshot {
	samples := make([]Sample, 0, len(r.metrics))
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Count = m.u64()
		case KindGauge:
			s.Value = m.f64()
		case KindHistogram:
			s.Hist = m.hist()
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return Snapshot{Samples: samples}
}

// Scope names metrics under a dotted-path prefix. Scopes are cheap values;
// nested components receive a sub-scope rather than the whole registry.
type Scope struct {
	r      *Registry
	prefix string
}

// join returns the full dotted path for name within the scope.
func (s Scope) join(name string) string {
	switch {
	case s.prefix == "":
		return name
	case name == "":
		return s.prefix
	default:
		return s.prefix + "." + name
	}
}

// Scope returns a child scope one path segment deeper.
func (s Scope) Scope(name string) Scope {
	return Scope{r: s.r, prefix: s.join(name)}
}

// Counter registers an existing Counter under name.
func (s Scope) Counter(name string, c *Counter) {
	s.CounterFunc(name, c.Value)
}

// CounterFunc registers a counter whose value is produced by f at
// snapshot time — used to aggregate per-CU structures into one figure.
func (s Scope) CounterFunc(name string, f func() uint64) {
	s.r.register(metric{name: s.join(name), kind: KindCounter, u64: f})
}

// Gauge registers a float accessor (ratio, utilization) under name.
func (s Scope) Gauge(name string, f func() float64) {
	s.r.register(metric{name: s.join(name), kind: KindGauge, f64: f})
}

// Histogram registers an existing Histogram under name; it is snapshotted
// when the registry is read.
func (s Scope) Histogram(name string, h *Histogram) {
	s.HistogramFunc(name, h.Snapshot)
}

// HistogramFunc registers a histogram whose snapshot is produced by f at
// snapshot time — used to aggregate per-structure histograms into one.
func (s Scope) HistogramFunc(name string, f func() HistSnapshot) {
	s.r.register(metric{name: s.join(name), kind: KindHistogram, hist: f})
}

// HitMiss registers the standard trio for a cache-like structure: under
// base (empty means directly in the scope) it adds "hits", "misses", and
// a "miss_ratio" gauge.
func (s Scope) HitMiss(base string, hm *HitMiss) {
	sub := s
	if base != "" {
		sub = s.Scope(base)
	}
	sub.Counter("hits", &hm.Hits)
	sub.Counter("misses", &hm.Misses)
	sub.Gauge("miss_ratio", hm.MissRatio)
}

// Sample is one metric value captured by Snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Count uint64       // valid when Kind == KindCounter
	Value float64      // valid when Kind == KindGauge
	Hist  HistSnapshot // valid when Kind == KindHistogram
}

// Snapshot is an ordered, immutable capture of a registry. Samples are
// sorted by name, so rendering and JSON output are deterministic.
type Snapshot struct {
	Samples []Sample
}

// Get returns the sample with the given dotted name.
func (s Snapshot) Get(name string) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Counter returns the named counter's value, or 0 when absent.
func (s Snapshot) Counter(name string) uint64 {
	smp, _ := s.Get(name)
	return smp.Count
}

// Gauge returns the named gauge's value, or 0 when absent.
func (s Snapshot) Gauge(name string) float64 {
	smp, _ := s.Get(name)
	return smp.Value
}

// Hist returns the named histogram's snapshot, or an empty snapshot when
// absent.
func (s Snapshot) Hist(name string) HistSnapshot {
	smp, _ := s.Get(name)
	return smp.Hist
}

// String renders the snapshot one "name value" line per sample, in name
// order.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, smp := range s.Samples {
		b.WriteString(smp.Name)
		b.WriteByte(' ')
		switch smp.Kind {
		case KindGauge:
			b.WriteString(formatGauge(smp.Value))
		case KindHistogram:
			fmt.Fprintf(&b, "count=%d p50=%d p99=%d max=%d",
				smp.Hist.Count, smp.Hist.Percentile(50), smp.Hist.Percentile(99), smp.Hist.Max)
		default:
			b.WriteString(strconv.FormatUint(smp.Count, 10))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatGauge renders a gauge value deterministically; non-finite values
// (which no well-formed ratio should produce) collapse to 0 so the output
// stays valid JSON.
func formatGauge(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MarshalJSON renders the snapshot as a flat JSON object whose keys appear
// in name order — identical runs produce byte-identical output. Counters
// marshal as integers, gauges as shortest-round-trip floats.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, smp := range s.Samples {
		if i > 0 {
			b.WriteByte(',')
		}
		key, err := json.Marshal(smp.Name)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		b.WriteByte(':')
		switch smp.Kind {
		case KindGauge:
			b.WriteString(formatGauge(smp.Value))
		case KindHistogram:
			smp.Hist.appendJSON(&b)
		default:
			b.WriteString(strconv.FormatUint(smp.Count, 10))
		}
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON restores a snapshot from the flat-object form produced by
// MarshalJSON. Sample order follows name order regardless of input order;
// JSON objects load as histograms, numbers with a fractional part or
// exponent load as gauges, the rest as counters.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	samples := make([]Sample, 0, len(raw))
	for name, msg := range raw {
		trimmed := bytes.TrimSpace(msg)
		if len(trimmed) > 0 && trimmed[0] == '{' {
			var h HistSnapshot
			if err := json.Unmarshal(trimmed, &h); err != nil {
				return fmt.Errorf("stats: sample %q: %w", name, err)
			}
			samples = append(samples, Sample{Name: name, Kind: KindHistogram, Hist: h})
			continue
		}
		text := string(trimmed)
		if !strings.ContainsAny(text, ".eE") {
			if u, err := strconv.ParseUint(text, 10, 64); err == nil {
				samples = append(samples, Sample{Name: name, Kind: KindCounter, Count: u})
				continue
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("stats: sample %q: %w", name, err)
		}
		samples = append(samples, Sample{Name: name, Kind: KindGauge, Value: f})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	s.Samples = samples
	return nil
}

// Merge combines snapshots from several runs into one aggregate view:
// counters sum, gauges average over the snapshots that contain them, and
// histograms merge bucket-wise (bucket counts sum, min/max extend). The
// gauge mean is advisory (a mean of ratios, not a ratio of sums) — exact
// re-derivation is always possible from the summed hit/miss counters.
// Counter and histogram merging are commutative and associative, so the
// merged snapshot does not depend on snapshot order.
func Merge(snaps ...Snapshot) Snapshot {
	type acc struct {
		kind  Kind
		count uint64
		sum   float64
		n     int
		hist  HistSnapshot
	}
	byName := make(map[string]*acc)
	var names []string
	for _, snap := range snaps {
		for _, smp := range snap.Samples {
			a, ok := byName[smp.Name]
			if !ok {
				a = &acc{kind: smp.Kind}
				byName[smp.Name] = a
				names = append(names, smp.Name)
			}
			a.count += smp.Count
			a.sum += smp.Value
			a.hist = a.hist.Merge(smp.Hist)
			a.n++
		}
	}
	sort.Strings(names)
	samples := make([]Sample, 0, len(names))
	for _, name := range names {
		a := byName[name]
		smp := Sample{Name: name, Kind: a.kind, Count: a.count, Hist: a.hist}
		if a.kind == KindGauge && a.n > 0 {
			smp.Value = a.sum / float64(a.n)
		}
		samples = append(samples, smp)
	}
	return Snapshot{Samples: samples}
}
