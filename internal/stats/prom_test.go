package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ prefix, name, want string }{
		{"bc_job_", "border.bcc.miss_ratio", "bc_job_border_bcc_miss_ratio"},
		{"", "engine.events", "engine_events"},
		{"x_", "a-b c/d", "x_a_b_c_d"},
		{"p_", "already_fine:ok9", "p_already_fine:ok9"},
	} {
		if got := PromName(tc.prefix, tc.name); got != tc.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", tc.prefix, tc.name, got, tc.want)
		}
	}
}

// TestWritePrometheus checks the three sample kinds render to valid,
// deterministic exposition text.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("gpu")
	var c Counter
	c.Add(42)
	sc.Counter("l2.hits", &c)
	sc.Gauge("util", func() float64 { return 0.25 })
	sc.Gauge("bad", func() float64 { return math.NaN() })
	var h Histogram
	h.Record(1)
	h.Record(3)
	h.Record(100)
	sc.Histogram("lat_ps", &h)
	snap := reg.Snapshot()

	var b strings.Builder
	if err := WritePrometheus(&b, "bc_", snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bc_gpu_l2_hits counter\nbc_gpu_l2_hits 42\n",
		"# TYPE bc_gpu_util gauge\nbc_gpu_util 0.25\n",
		"bc_gpu_bad 0\n",
		"# TYPE bc_gpu_lat_ps histogram\n",
		"bc_gpu_lat_ps_bucket{le=\"1\"} 1\n",
		"bc_gpu_lat_ps_bucket{le=\"3\"} 2\n",
		"bc_gpu_lat_ps_bucket{le=\"+Inf\"} 3\n",
		"bc_gpu_lat_ps_sum 104\n",
		"bc_gpu_lat_ps_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative bucket counts: the 100 sample lands above the exact-bucket
	// range, so the +Inf line must equal the total count.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, "bc_", snap); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus is not deterministic for the same snapshot")
	}
}
