package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file bridges the run-scoped registry to the Prometheus text
// exposition format (version 0.0.4), the lingua franca of metrics
// scrapers. A Snapshot is already an ordered immutable sample list, so the
// encoding is a pure function of the snapshot: identical snapshots render
// byte-identically, which keeps the `/v1/metrics` endpoint inside the
// simulator's observation-purity discipline (scraping changes nothing and
// is itself deterministic given the same daemon state).
//
// Mapping:
//
//	KindCounter   -> `# TYPE name counter` + one sample line
//	KindGauge     -> `# TYPE name gauge` + one sample line (NaN/Inf -> 0,
//	                 matching the JSON marshalling)
//	KindHistogram -> `# TYPE name histogram` + cumulative `_bucket{le=...}`
//	                 lines per non-empty bucket, `le="+Inf"`, `_sum`, `_count`
//
// Dotted sample names become underscore-joined Prometheus names
// ("border.bcc.miss_ratio" -> "<prefix>border_bcc_miss_ratio").

// PromName sanitizes a dotted sample name into a legal Prometheus metric
// name under the given prefix: every character outside [a-zA-Z0-9_:] is
// replaced with '_'.
func PromName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + len(name))
	b.WriteString(prefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, every metric name prefixed with prefix. Samples render in name
// order (the snapshot's canonical order), so the output is deterministic.
func WritePrometheus(w io.Writer, prefix string, s Snapshot) error {
	for _, smp := range s.Samples {
		name := PromName(prefix, smp.Name)
		var err error
		switch smp.Kind {
		case KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatGauge(smp.Value))
		case KindHistogram:
			err = writePromHistogram(w, name, smp.Hist)
		default:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, smp.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram snapshot as a Prometheus
// histogram: cumulative bucket counts keyed by inclusive upper bound, the
// mandatory +Inf bucket, then _sum and _count.
func writePromHistogram(w io.Writer, name string, h HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatUint(b.Bound, 10), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, h.Count, name, h.Sum, name, h.Count)
	return err
}
