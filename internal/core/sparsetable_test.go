package core

import (
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
)

func newSparse(t testing.TB, physPages uint64) (*SparseProtectionTable, *hostos.FrameAllocator) {
	t.Helper()
	store, err := memory.NewStore(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	alloc := hostos.NewFrameAllocator(store)
	return NewSparseProtectionTable(store, alloc, physPages), alloc
}

func TestSparseFailClosed(t *testing.T) {
	st, _ := newSparse(t, 1<<20)
	if p, _ := st.Lookup(12345); p != arch.PermNone {
		t.Error("fresh sparse table grants permissions")
	}
	if p, _ := st.Lookup(1 << 30); p != arch.PermNone {
		t.Error("out-of-bounds lookup must fail closed")
	}
	if st.Leaves != 0 {
		t.Error("lookups must not allocate")
	}
}

func TestSparseMergeSetLookup(t *testing.T) {
	st, _ := newSparse(t, 1<<20)
	changed, err := st.Merge(100, arch.PermRead)
	if err != nil || !changed {
		t.Fatalf("merge: %v %v", changed, err)
	}
	if p, _ := st.Lookup(100); p != arch.PermRead {
		t.Error("merge not visible")
	}
	if changed, _ := st.Merge(100, arch.PermRead); changed {
		t.Error("redundant merge should report no change")
	}
	if err := st.Set(100, arch.PermNone); err != nil {
		t.Fatal(err)
	}
	if p, _ := st.Lookup(100); p != arch.PermNone {
		t.Error("set not visible")
	}
	// Setting none on an untouched region must not allocate a leaf.
	before := st.Leaves
	if err := st.Set(900000, arch.PermNone); err != nil {
		t.Fatal(err)
	}
	if st.Leaves != before {
		t.Error("revoking an absent page allocated a leaf")
	}
}

func TestSparseFootprint(t *testing.T) {
	// The headline property: a workload touching a small region costs
	// proportionally small table memory, far below the flat table's fixed
	// cost for the same physical-memory coverage.
	physPages := uint64(4 << 20) // models 16 GB
	st, _ := newSparse(t, physPages)
	for p := arch.PPN(0); p < 2048; p++ { // an 8 MB working set
		if _, err := st.Merge(p, arch.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	flat := TableBytes(physPages)
	if st.ResidentBytes() >= flat {
		t.Errorf("sparse resident %d B >= flat %d B for a tiny working set",
			st.ResidentBytes(), flat)
	}
	if st.Leaves != 1 {
		t.Errorf("2048 consecutive pages should fit one leaf, got %d", st.Leaves)
	}
}

func TestSparseZeroReleasesLeaves(t *testing.T) {
	st, alloc := newSparse(t, 1<<20)
	for p := arch.PPN(0); p < 1<<20; p += pagesPerLeaf {
		if _, err := st.Merge(p, arch.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	inUse := alloc.InUse()
	if st.Leaves == 0 || inUse == 0 {
		t.Fatal("no leaves allocated")
	}
	st.Zero()
	if st.Leaves != 0 || alloc.InUse() != 0 {
		t.Error("zero must release every leaf frame")
	}
	if p, _ := st.Lookup(0); p != arch.PermNone {
		t.Error("permissions survive zero")
	}
}

func TestSparseMatchesFlat(t *testing.T) {
	// Random operations applied to both layouts must agree everywhere.
	st, _ := newSparse(t, 1<<16)
	flatStore, err := memory.NewStore(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewProtectionTable(flatStore, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		ppn := arch.PPN(rng.Intn(1 << 16))
		perm := arch.Perm(rng.Intn(4))
		if rng.Intn(2) == 0 {
			if _, err := st.Merge(ppn, perm); err != nil {
				t.Fatal(err)
			}
			flat.Merge(ppn, perm)
		} else {
			if err := st.Set(ppn, perm); err != nil {
				t.Fatal(err)
			}
			flat.Set(ppn, perm)
		}
		if got, _ := st.Lookup(ppn); got != flat.Lookup(ppn) {
			t.Fatalf("layouts disagree on page %d: sparse=%v flat=%v", ppn, got, flat.Lookup(ppn))
		}
	}
}
