package core

import (
	"strings"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

func rangeEnv(t *testing.T, mut func(*Config)) (*bcEnv, *RangeBorder) {
	t.Helper()
	e := newDesignEnv(t, "range", mut)
	rb, ok := e.arch.(*RangeBorder)
	if !ok {
		t.Fatalf("design %q is %T, want *RangeBorder", "range", e.arch)
	}
	return e, rb
}

func TestPolicyCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
		want string
	}{
		{
			name: "zero-page rule",
			pol:  Policy{Rules: []PolicyRule{{Base: 4, Pages: 0, Action: PolicyDeny}}},
			want: "zero pages",
		},
		{
			name: "invalid rule action",
			pol:  Policy{Rules: []PolicyRule{{Base: 4, Pages: 1, Action: PolicyAction(9)}}},
			want: "invalid action",
		},
		{
			name: "invalid default",
			pol:  Policy{Default: PolicyAction(7)},
			want: "not a valid action",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.pol.Compile()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestPolicyFirstMatchWins: overlapping ordered rules resolve like sbx's
// egress rule list — the first rule covering a page decides.
func TestPolicyFirstMatchWins(t *testing.T) {
	pol := Policy{
		Default: PolicyDeny,
		Rules: []PolicyRule{
			{Base: 10, Pages: 2, Action: PolicyReadOnly},
			{Base: 8, Pages: 8, Action: PolicyAllow}, // overlaps [10,12): loses there
		},
	}
	cp, err := pol.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ppn  arch.PPN
		want arch.Perm
	}{
		{7, arch.PermNone},   // default deny
		{8, arch.PermRW},     // second rule
		{10, arch.PermRead},  // first rule wins the overlap
		{11, arch.PermRead},  // first rule wins the overlap
		{12, arch.PermRW},    // second rule resumes
		{15, arch.PermRW},    // second rule's last page
		{16, arch.PermNone},  // default deny again
		{500, arch.PermNone}, // far outside every rule
	}
	for _, tc := range cases {
		if got := cp.Clamp(tc.ppn, arch.PermRW); got != tc.want {
			t.Errorf("Clamp(%d, RW) = %v, want %v", tc.ppn, got, tc.want)
		}
	}
	// Clamp never widens: a read-only grant through an allow rule stays R.
	if got := cp.Clamp(8, arch.PermRead); got != arch.PermRead {
		t.Errorf("Clamp(8, R) = %v, want R", got)
	}
}

// TestNilPolicyAdmitsEverything: the zero/default state is allow-all, the
// oracle-equivalence configuration.
func TestNilPolicyAdmitsEverything(t *testing.T) {
	var cp *CompiledPolicy
	if got := cp.Clamp(42, arch.PermRW); got != arch.PermRW {
		t.Fatalf("nil policy Clamp = %v, want RW", got)
	}
}

// TestRangeBorderPolicyAdmission: an installed policy clamps grants at
// translation time; the check fast path then enforces the clamped window.
func TestRangeBorderPolicyAdmission(t *testing.T) {
	e, rb := rangeEnv(t, nil)
	p := e.newProc(t)
	if err := rb.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	err := rb.SetPolicy(p.ASID(), Policy{
		Default: PolicyAllow,
		Rules: []PolicyRule{
			{Base: 100, Pages: 4, Action: PolicyDeny},
			{Base: 104, Pages: 4, Action: PolicyReadOnly},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := e.eng.Now()
	for ppn := arch.PPN(98); ppn < 110; ppn++ {
		rb.OnTranslation(now, p.ASID(), arch.VPN(ppn), ppn, arch.PermRW, false)
	}
	// Denied window: the grant never entered the union window.
	if d := rb.Check(now, p.ASID(), arch.PPN(101).Base(), arch.Read); d.Allowed {
		t.Error("policy-denied page allowed")
	}
	if rb.PolicyDrops.Value() != 4 {
		t.Errorf("PolicyDrops = %d, want 4", rb.PolicyDrops.Value())
	}
	// Read-only window: reads pass, writes blocked.
	if d := rb.Check(now, p.ASID(), arch.PPN(105).Base(), arch.Read); !d.Allowed {
		t.Error("read of read-only-clamped page denied")
	}
	if d := rb.Check(now, p.ASID(), arch.PPN(105).Base(), arch.Write); d.Allowed {
		t.Error("write to read-only-clamped page allowed")
	}
	// Default-allow window: untouched.
	if d := rb.Check(now, p.ASID(), arch.PPN(98).Base(), arch.Write); !d.Allowed {
		t.Error("policy-admitted page denied")
	}
}

// TestRangeBorderCoalescing: contiguous same-permission grants collapse
// into one range node; a downgrade splits it.
func TestRangeBorderCoalescing(t *testing.T) {
	e, rb := rangeEnv(t, nil)
	p := e.newProc(t)
	if err := rb.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	now := e.eng.Now()
	for ppn := arch.PPN(10); ppn < 20; ppn++ {
		rb.OnTranslation(now, p.ASID(), arch.VPN(ppn), ppn, arch.PermRW, false)
	}
	if got := rb.RangeCount(); got != 1 {
		t.Fatalf("10 contiguous RW grants encode as %d ranges, want 1", got)
	}
	rb.OnDowngrade(hostos.Downgrade{ASID: p.ASID(), VPN: 15, PPN: 15, Old: arch.PermRW, New: arch.PermNone})
	if got := rb.RangeCount(); got != 2 {
		t.Fatalf("after carving one page, %d ranges, want 2", got)
	}
	if got := rb.PermAt(15); got != arch.PermNone {
		t.Fatalf("PermAt(15) = %v after downgrade, want None", got)
	}
	if got := rb.PermAt(14); got != arch.PermRW {
		t.Fatalf("PermAt(14) = %v, want RW", got)
	}
	// A huge grant is one more node.
	rb.OnTranslation(now, p.ASID(), 0, 1024, arch.PermRW, true)
	if got := rb.RangeCount(); got != 3 {
		t.Fatalf("after a huge grant, %d ranges, want 3", got)
	}
	if got := rb.PermAt(1024 + 511); got != arch.PermRW {
		t.Fatalf("PermAt(huge tail) = %v, want RW", got)
	}
}

// TestRangeBorderCompleteClearsRanges: Figure 3e revokes the range mirror
// together with the table.
func TestRangeBorderCompleteClearsRanges(t *testing.T) {
	e, rb := rangeEnv(t, nil)
	p := e.newProc(t)
	if err := rb.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	rb.OnTranslation(e.eng.Now(), p.ASID(), 7, 7, arch.PermRW, false)
	rb.ProcessComplete(e.eng.Now(), p.ASID())
	if got := rb.RangeCount(); got != 0 {
		t.Fatalf("RangeCount after completion = %d, want 0", got)
	}
}
