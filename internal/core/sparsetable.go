package core

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// SparseProtectionTable is the alternative layout paper §3.1.1 mentions
// but does not evaluate: instead of a flat table sized for all of physical
// memory, a two-level radix structure allocates 4 KB leaf chunks on
// demand. Each leaf covers 16 K physical pages (4 KB × 4 pages/byte); the
// root is a single page of leaf pointers.
//
// The trade-off the paper predicts holds here (see
// BenchmarkAblationSparseTable): the sparse layout shrinks resident table
// memory to the pages actually touched, at the cost of a second dependent
// memory access on leaf misses and more complex hardware. With the flat
// table already at 0.006% of memory, the paper chose flat; this
// implementation exists to let that choice be measured.
type SparseProtectionTable struct {
	store *memory.Store
	alloc FrameSource
	// root holds the leaf frame for each chunk index (0 = absent). A
	// hardware implementation would keep this page in memory too; we track
	// it host-side and charge its access as one table read.
	root       []arch.PPN
	boundPages uint64
	leafFrames []arch.PPN

	// Leaves counts allocated leaf chunks (for footprint accounting).
	Leaves int
}

// FrameSource is the allocator interface the sparse table needs.
type FrameSource interface {
	AllocFrame() (arch.PPN, error)
	FreeFrame(arch.PPN)
}

// pagesPerLeaf is how many physical pages one 4 KB leaf chunk covers.
const pagesPerLeaf = arch.PageSize * pagesPerByte // 16384

// NewSparseProtectionTable returns an empty sparse table covering
// physPages of physical memory.
func NewSparseProtectionTable(store *memory.Store, alloc FrameSource, physPages uint64) *SparseProtectionTable {
	chunks := (physPages + pagesPerLeaf - 1) / pagesPerLeaf
	return &SparseProtectionTable{
		store:      store,
		alloc:      alloc,
		root:       make([]arch.PPN, chunks),
		boundPages: physPages,
	}
}

// BoundPages returns the bounds register value.
func (t *SparseProtectionTable) BoundPages() uint64 { return t.boundPages }

// InBounds reports whether ppn is covered.
func (t *SparseProtectionTable) InBounds(ppn arch.PPN) bool { return uint64(ppn) < t.boundPages }

// ResidentBytes returns the table's current physical footprint.
func (t *SparseProtectionTable) ResidentBytes() uint64 {
	return uint64(t.Leaves+1) * arch.PageSize // leaves + root page
}

func (t *SparseProtectionTable) leafFor(ppn arch.PPN, allocate bool) (arch.PPN, error) {
	idx := uint64(ppn) / pagesPerLeaf
	if leaf := t.root[idx]; leaf != 0 {
		return leaf, nil
	}
	if !allocate {
		return 0, nil
	}
	leaf, err := t.alloc.AllocFrame()
	if err != nil {
		return 0, fmt.Errorf("core: sparse table leaf: %w", err)
	}
	t.store.ZeroPage(leaf)
	t.root[idx] = leaf
	t.leafFrames = append(t.leafFrames, leaf)
	t.Leaves++
	return leaf, nil
}

func (t *SparseProtectionTable) entryAddr(leaf arch.PPN, ppn arch.PPN) arch.Phys {
	off := (uint64(ppn) % pagesPerLeaf) / pagesPerByte
	return leaf.Base() + arch.Phys(off)
}

// Lookup returns the stored permissions for ppn. Absent leaves mean no
// permissions — the same fail-closed default as the flat table, for free.
// The second return value reports whether a leaf had to be consulted (two
// dependent accesses for hardware) or the root already answered (absent).
func (t *SparseProtectionTable) Lookup(ppn arch.PPN) (arch.Perm, bool) {
	if !t.InBounds(ppn) {
		return arch.PermNone, false
	}
	leaf, _ := t.leafFor(ppn, false)
	if leaf == 0 {
		return arch.PermNone, false
	}
	b := t.store.ReadByteAt(t.entryAddr(leaf, ppn))
	return arch.Perm(b>>shiftFor(ppn)) & arch.PermRW, true
}

// Merge ors p into ppn's permissions, allocating the leaf on first touch.
func (t *SparseProtectionTable) Merge(ppn arch.PPN, p arch.Perm) (changed bool, err error) {
	if !t.InBounds(ppn) {
		return false, fmt.Errorf("core: sparse merge out of bounds ppn=%#x", ppn)
	}
	leaf, err := t.leafFor(ppn, true)
	if err != nil {
		return false, err
	}
	a := t.entryAddr(leaf, ppn)
	b := t.store.ReadByteAt(a)
	nb := b | byte(p.Border())<<shiftFor(ppn)
	if nb == b {
		return false, nil
	}
	t.store.WriteByteAt(a, nb)
	return true, nil
}

// Set overwrites ppn's permissions. Setting PermNone on an absent leaf is
// a no-op (already fail-closed).
func (t *SparseProtectionTable) Set(ppn arch.PPN, p arch.Perm) error {
	if !t.InBounds(ppn) {
		return fmt.Errorf("core: sparse set out of bounds ppn=%#x", ppn)
	}
	allocate := p.Border() != arch.PermNone
	leaf, err := t.leafFor(ppn, allocate)
	if err != nil {
		return err
	}
	if leaf == 0 {
		return nil
	}
	a := t.entryAddr(leaf, ppn)
	b := t.store.ReadByteAt(a)
	sh := shiftFor(ppn)
	t.store.WriteByteAt(a, b&^(byte(arch.PermRW)<<sh)|byte(p.Border())<<sh)
	return nil
}

// Zero revokes everything by releasing every leaf — O(leaves), not
// O(physical memory), another advantage of the sparse layout.
func (t *SparseProtectionTable) Zero() {
	for i := range t.root {
		t.root[i] = 0
	}
	for _, f := range t.leafFrames {
		t.alloc.FreeFrame(f)
	}
	t.leafFrames = nil
	t.Leaves = 0
}
