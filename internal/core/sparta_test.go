package core

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

func spartaEnv(t *testing.T, mut func(*Config)) (*bcEnv, *Sparta) {
	t.Helper()
	e := newDesignEnv(t, "sparta", mut)
	s, ok := e.arch.(*Sparta)
	if !ok {
		t.Fatalf("design %q is %T, want *Sparta", "sparta", e.arch)
	}
	return e, s
}

// TestSpartaDefersHugeGrant: a huge grant must not fan out into the
// Protection Table until a check touches it, and then only the touched
// grain materializes.
func TestSpartaDefersHugeGrant(t *testing.T) {
	e, s := spartaEnv(t, nil)
	p := e.newProc(t)
	if err := s.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	const head = arch.PPN(0)
	s.OnTranslation(e.eng.Now(), p.ASID(), 0, head, arch.PermRW, true)
	if got := s.BorderControl.Table().Lookup(head); got != arch.PermNone {
		t.Fatalf("table eagerly populated at head: %v", got)
	}
	if got := s.PermAt(head + arch.PagesPerHugePage - 1); got != arch.PermRW {
		t.Fatalf("PermAt(last covered page) = %v, want RW (deferred grant)", got)
	}
	if s.Deferred.Value() != 1 {
		t.Fatalf("Deferred = %d, want 1", s.Deferred.Value())
	}

	// A check inside the grant materializes exactly its grain.
	probe := head + spartaGrain + 3
	if d := s.Check(e.eng.Now(), p.ASID(), probe.Base(), arch.Write); !d.Allowed {
		t.Fatal("check inside deferred grant denied")
	}
	if got := s.BorderControl.Table().Lookup(probe); got != arch.PermRW {
		t.Fatalf("touched page not materialized: %v", got)
	}
	grainLo := probe - probe%spartaGrain
	if got := s.BorderControl.Table().Lookup(grainLo); got != arch.PermRW {
		t.Fatalf("grain head not materialized: %v", got)
	}
	if got := s.BorderControl.Table().Lookup(grainLo - 1); got != arch.PermNone {
		t.Fatalf("page below the grain materialized eagerly: %v", got)
	}
	if got := s.BorderControl.Table().Lookup(grainLo + spartaGrain); got != arch.PermNone {
		t.Fatalf("page above the grain materialized eagerly: %v", got)
	}
	// The untouched remainder is still granted (deferred).
	if got := s.PermAt(grainLo + spartaGrain); got != arch.PermRW {
		t.Fatalf("PermAt above the grain = %v, want RW", got)
	}
	if s.Materializations.Value() != 1 {
		t.Fatalf("Materializations = %d, want 1", s.Materializations.Value())
	}
}

// TestSpartaDowngradeMaterializes: downgrading a page inside a deferred
// range must first surface the true old permission (so the Figure 3d dirty
// flush happens), then narrow only that page; the rest of the grant stays
// granted.
func TestSpartaDowngradeMaterializes(t *testing.T) {
	e, s := spartaEnv(t, nil)
	p := e.newProc(t)
	if err := s.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	s.OnTranslation(e.eng.Now(), p.ASID(), 0, 0, arch.PermRW, true)
	victim := arch.PPN(100)
	s.OnDowngrade(hostos.Downgrade{ASID: p.ASID(), VPN: 100, PPN: victim, Old: arch.PermRW, New: arch.PermRead})
	if len(e.accel.pageFlushes) != 1 || e.accel.pageFlushes[0] != victim {
		t.Fatalf("downgrade of a deferred-but-writable page must flush it, flush log %v", e.accel.pageFlushes)
	}
	if got := s.PermAt(victim); got != arch.PermRead {
		t.Fatalf("PermAt(victim) = %v, want R after downgrade", got)
	}
	if got := s.PermAt(victim + 1); got != arch.PermRW {
		t.Fatalf("PermAt(victim+1) = %v, want RW (grain neighbour keeps the grant)", got)
	}
	if got := s.PermAt(511); got != arch.PermRW {
		t.Fatalf("PermAt(511) = %v, want RW (still deferred)", got)
	}
}

// TestSpartaFullFlushDowngradeClearsPending: under the full-flush variant
// a writable downgrade zeroes the whole table; deferred ranges must die
// with it, or a later touch would resurrect revoked permissions.
func TestSpartaFullFlushDowngradeClearsPending(t *testing.T) {
	e, s := spartaEnv(t, func(c *Config) { c.SelectiveFlush = false })
	p := e.newProc(t)
	if err := s.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	s.OnTranslation(e.eng.Now(), p.ASID(), 0, 0, arch.PermRW, true)
	s.OnDowngrade(hostos.Downgrade{ASID: p.ASID(), VPN: 5, PPN: 5, Old: arch.PermRW, New: arch.PermNone})
	if e.accel.fullFlushes != 1 {
		t.Fatalf("full-flush variant flushed %d times, want 1", e.accel.fullFlushes)
	}
	for _, ppn := range []arch.PPN{0, 5, 100, 511} {
		if got := s.PermAt(ppn); got != arch.PermNone {
			t.Fatalf("PermAt(%d) = %v after full-flush downgrade, want None", ppn, got)
		}
	}
	if d := s.Check(e.eng.Now(), p.ASID(), arch.PPN(200).Base(), arch.Read); d.Allowed {
		t.Fatal("check after full-flush downgrade re-materialized a revoked grant")
	}
}

// TestSpartaCompleteClearsPending: process completion revokes deferred
// grants along with the table.
func TestSpartaCompleteClearsPending(t *testing.T) {
	e, s := spartaEnv(t, nil)
	p := e.newProc(t)
	if err := s.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	s.OnTranslation(e.eng.Now(), p.ASID(), 0, 0, arch.PermRW, true)
	s.ProcessComplete(e.eng.Now(), p.ASID())
	if got := s.PermAt(7); got != arch.PermNone {
		t.Fatalf("PermAt after completion = %v, want None", got)
	}
	// A fresh epoch must not inherit the old grant.
	if err := s.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	if d := s.Check(e.eng.Now(), p.ASID(), arch.PPN(7).Base(), arch.Read); d.Allowed {
		t.Fatal("stale deferred grant survived ProcessComplete")
	}
}
