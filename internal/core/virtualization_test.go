package core

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// TestVirtualizedBorderControl exercises paper §3.4.2: under a trusted
// VMM, the Protection Table lives in host-physical memory outside every
// guest partition, and Border Control works unchanged because it indexes
// bare-metal physical addresses.
func TestVirtualizedBorderControl(t *testing.T) {
	store, err := memory.NewStore(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	vmm, err := hostos.NewVMM(store, 2048) // 8 MB VMM reservation
	if err != nil {
		t.Fatal(err)
	}
	guestA, err := vmm.NewGuest("A", 8192)
	if err != nil {
		t.Fatal(err)
	}
	guestB, err := vmm.NewGuest("B", 8192)
	if err != nil {
		t.Fatal(err)
	}

	eng := &sim.Engine{}
	clock := sim.MustClock(700e6)
	// The accelerator is assigned to guest A; its Protection Table comes
	// from the VMM's private allocator.
	bc, err := New("gpu0", DefaultConfig(clock), guestA.OS, dram, eng)
	if err != nil {
		t.Fatal(err)
	}
	bc.SetTableAllocator(vmm.Frames())
	guestA.OS.AddShootdownListener(bc)
	guestA.OS.KeepProcessOnViolation = true

	procA, err := guestA.OS.NewProcess("a")
	if err != nil {
		t.Fatal(err)
	}
	vA, err := procA.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := procA.Translate(vA, arch.Write); err != nil {
		t.Fatal(err)
	}
	ppnA, _ := procA.PPNOf(vA.PageOf())

	if err := bc.ProcessStart(procA.ASID()); err != nil {
		t.Fatal(err)
	}

	// The Protection Table's frames are outside BOTH guest partitions.
	tbl := bc.Table()
	for a := tbl.Base(); a < tbl.Base()+arch.Phys(tbl.SizeBytes()); a += arch.PageSize {
		if guestA.Contains(a) || guestB.Contains(a) {
			t.Fatalf("protection table frame %#x reachable from a guest partition", a)
		}
	}
	// And the bounds register still covers ALL of host-physical memory:
	// the table is indexed by bare-metal addresses.
	if tbl.BoundPages() != store.Pages() {
		t.Error("bounds register must cover host-physical memory")
	}

	// Normal operation inside guest A works unchanged.
	bc.OnTranslation(0, procA.ASID(), vA.PageOf(), ppnA, arch.PermRW, false)
	if !bc.Check(0, procA.ASID(), ppnA.Base(), arch.Write).Allowed {
		t.Error("guest A's translated page should pass")
	}

	// A misbehaving accelerator aimed at guest B's memory (or the VMM's
	// own) is blocked: those host-physical pages were never translated.
	procB, err := guestB.OS.NewProcess("b")
	if err != nil {
		t.Fatal(err)
	}
	vB, err := procB.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := procB.Translate(vB, arch.Write); err != nil {
		t.Fatal(err)
	}
	ppnB, _ := procB.PPNOf(vB.PageOf())
	if bc.Check(0, procA.ASID(), ppnB.Base(), arch.Read).Allowed {
		t.Error("cross-guest read must be blocked")
	}
	if bc.Check(0, procA.ASID(), tbl.Base(), arch.Write).Allowed {
		t.Error("write to the Protection Table itself must be blocked")
	}
	if err := vmm.AuditIsolation(); err != nil {
		t.Error(err)
	}
}
