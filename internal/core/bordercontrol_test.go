package core

import (
	"math/rand"
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
)

// fakeAccel records the flush/invalidate requests Border Control issues.
type fakeAccel struct {
	pageFlushes []arch.PPN
	fullFlushes int
	tlbPage     int
	tlbAll      int
	flushTime   sim.Time // extra time each flush "takes"
	// onFlush lets tests act at flush time (e.g. push writebacks through
	// the border while old permissions are still in force).
	onFlush func(ppn arch.PPN)
}

func (f *fakeAccel) FlushPage(at sim.Time, ppn arch.PPN) sim.Time {
	f.pageFlushes = append(f.pageFlushes, ppn)
	if f.onFlush != nil {
		f.onFlush(ppn)
	}
	return at + f.flushTime
}

func (f *fakeAccel) FlushAll(at sim.Time) sim.Time {
	f.fullFlushes++
	if f.onFlush != nil {
		f.onFlush(0)
	}
	return at + f.flushTime
}

func (f *fakeAccel) InvalidateTLBPage(asid arch.ASID, vpn arch.VPN) { f.tlbPage++ }
func (f *fakeAccel) InvalidateTLBAll()                              { f.tlbAll++ }

type bcEnv struct {
	os   *hostos.OS
	dram *memory.DRAM
	eng  *sim.Engine
	// bc is the flat BorderControl core: for envs built by newBCEnv it IS
	// the design under test; for newDesignEnv it is the embedded core,
	// kept for counter inspection only — protocol calls must go through
	// arch so design overrides apply.
	bc *BorderControl
	// arch is the design under test (equals bc for the flat design).
	arch  ProtectionArchitecture
	accel *fakeAccel
	clock sim.Clock
}

func newBCEnv(t testing.TB, mut func(*Config)) *bcEnv {
	return newDesignEnv(t, DefaultDesign, mut)
}

// newDesignEnv builds the protocol-test environment around any registered
// border design.
func newDesignEnv(t testing.TB, design string, mut func(*Config)) *bcEnv {
	t.Helper()
	store, err := memory.NewStore(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := memory.NewDRAM(store, memory.DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	osm := hostos.New(store)
	eng := &sim.Engine{}
	clock := sim.MustClock(700e6)
	cfg := DefaultConfig(clock)
	if mut != nil {
		mut(&cfg)
	}
	ar, err := NewArchitecture(design, "gpu0", cfg, osm, dram, eng)
	if err != nil {
		t.Fatal(err)
	}
	var bc *BorderControl
	switch d := ar.(type) {
	case *BorderControl:
		bc = d
	case *Sparta:
		bc = d.BorderControl
	case *RangeBorder:
		bc = d.BorderControl
	}
	accel := &fakeAccel{}
	ar.SetAccelerator(accel)
	osm.AddShootdownListener(ar)
	// Most protocol tests deliberately probe the border with violating
	// requests and then continue; keep processes alive so one violation
	// does not cascade into unrelated assertions. The kill policy itself
	// is covered by TestFailClosedKillsProcess.
	osm.KeepProcessOnViolation = true
	return &bcEnv{os: osm, dram: dram, eng: eng, bc: bc, arch: ar, accel: accel, clock: clock}
}

func (e *bcEnv) newProc(t testing.TB) *hostos.Process {
	t.Helper()
	p, err := e.os.NewProcess("proc")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mapPage faults one RW page in and returns its physical page.
func mapPage(t testing.TB, p *hostos.Process) (arch.Virt, arch.PPN) {
	t.Helper()
	v, err := p.Mmap(arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Translate(v, arch.Write); err != nil {
		t.Fatal(err)
	}
	ppn, _ := p.PPNOf(v.PageOf())
	return v, ppn
}

func TestProcessStartAllocatesTable(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	if e.bc.Table() != nil {
		t.Error("table before any process")
	}
	if err := e.bc.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	tbl := e.bc.Table()
	if tbl == nil {
		t.Fatal("no table after start")
	}
	if tbl.BoundPages() != e.os.Store().Pages() {
		t.Error("bounds register should cover physical memory")
	}
	if tbl.SizeBytes() != TableBytes(e.os.Store().Pages()) {
		t.Error("table size wrong")
	}
	if e.bc.ActiveProcesses() != 1 {
		t.Error("use count wrong")
	}
}

func TestFailClosed(t *testing.T) {
	// The core security property: a physical address never produced by the
	// ATS has no permissions, whatever the page tables say (§3.1.1).
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	_, ppn := mapPage(t, p) // mapped RW in the page table, never translated
	if err := e.bc.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read); dec.Allowed {
		t.Error("read of never-translated page must be blocked")
	}
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Write); dec.Allowed {
		t.Error("write of never-translated page must be blocked")
	}
	if e.bc.Violations.Value() != 2 {
		t.Errorf("violations = %d", e.bc.Violations.Value())
	}
	if len(e.os.Violations) != 2 {
		t.Error("OS not notified")
	}
}

func TestFailClosedKillsProcess(t *testing.T) {
	// With the default OS policy, the violation's culprit process is
	// terminated (the OS "can act accordingly", §3.2.3).
	e := newBCEnv(t, nil)
	e.os.KeepProcessOnViolation = false
	p := e.newProc(t)
	_, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read)
	if !p.Dead() {
		t.Error("violating process should be terminated by default policy")
	}
}

func TestInsertionThenCheck(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	// The ATS notifies Border Control on translation (Figure 3b).
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	if dec := e.bc.Check(0, p.ASID(), ppn.Base()+64, arch.Read); !dec.Allowed {
		t.Error("read after insertion should pass")
	}
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Write); !dec.Allowed {
		t.Error("write after RW insertion should pass")
	}
	// A read-only insertion only grants reads.
	v2, err := p.Mmap(arch.PageSize, arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Translate(v2, arch.Read); err != nil {
		t.Fatal(err)
	}
	ppn2, _ := p.PPNOf(v2.PageOf())
	e.bc.OnTranslation(0, p.ASID(), v2.PageOf(), ppn2, arch.PermRead, false)
	if dec := e.bc.Check(0, p.ASID(), ppn2.Base(), arch.Read); !dec.Allowed {
		t.Error("read should pass")
	}
	if dec := e.bc.Check(0, p.ASID(), ppn2.Base(), arch.Write); dec.Allowed {
		t.Error("write to read-only page must be blocked")
	}
}

func TestInsertionIgnoresForeignASID(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	other := e.newProc(t)
	_, ppn := mapPage(t, other)
	e.bc.ProcessStart(p.ASID())
	// A translation for a process NOT active on this accelerator must not
	// populate the table.
	e.bc.OnTranslation(0, other.ASID(), 0x100, ppn, arch.PermRW, false)
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read); dec.Allowed {
		t.Error("foreign insertion leaked permissions")
	}
}

func TestBoundsRegister(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	beyond := arch.Phys(e.os.Store().Size())
	if dec := e.bc.Check(0, p.ASID(), beyond, arch.Read); dec.Allowed {
		t.Error("beyond-bounds physical address must be blocked")
	}
}

func TestHugePageFanOut(t *testing.T) {
	// A 2 MB translation populates all 512 base-page entries (§3.4.4).
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), 512, 1024, arch.PermRW, true)
	for _, off := range []arch.PPN{0, 1, 100, 511} {
		if dec := e.bc.Check(0, p.ASID(), (1024 + off).Base(), arch.Write); !dec.Allowed {
			t.Errorf("huge fan-out missed page +%d", off)
		}
	}
	if dec := e.bc.Check(0, p.ASID(), arch.PPN(1024+512).Base(), arch.Read); dec.Allowed {
		t.Error("fan-out overshot the huge page")
	}
}

func TestDowngradeFlushOrdering(t *testing.T) {
	// §3.2.4: dirty blocks must be written back BEFORE the table entry is
	// updated, so the writebacks still pass under the old permissions.
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)

	wbAllowed := false
	e.accel.onFlush = func(arch.PPN) {
		// Simulate the flush pushing a dirty block through the border.
		dec := e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), arch.Write)
		wbAllowed = dec.Allowed
	}
	if _, err := e.os.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if len(e.accel.pageFlushes) != 1 || e.accel.pageFlushes[0] != ppn {
		t.Fatalf("selective flush not requested: %v", e.accel.pageFlushes)
	}
	if !wbAllowed {
		t.Error("writeback during the flush must pass under the OLD permissions")
	}
	// After the downgrade completes, writes are blocked, reads still pass.
	if dec := e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), arch.Write); dec.Allowed {
		t.Error("write after downgrade must be blocked")
	}
	if dec := e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), arch.Read); !dec.Allowed {
		t.Error("read permission should survive an RW->R downgrade")
	}
	if e.accel.tlbPage == 0 {
		t.Error("accelerator TLB entry not invalidated")
	}
}

func TestReadOnlyDowngradeNeedsNoFlush(t *testing.T) {
	// Copy-on-write style downgrades of read-only pages skip the flush
	// (they cannot be dirty) — the paper's "no extra overhead" case.
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, err := p.Mmap(arch.PageSize, arch.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Translate(v, arch.Read); err != nil {
		t.Fatal(err)
	}
	ppn, _ := p.PPNOf(v.PageOf())
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRead, false)
	if _, err := e.os.Protect(p, v, arch.PageSize, arch.PermNone); err != nil {
		t.Fatal(err)
	}
	if len(e.accel.pageFlushes) != 0 && e.accel.fullFlushes == 0 {
		t.Error("read-only downgrade must not flush caches")
	}
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read); dec.Allowed {
		t.Error("revoked page must be blocked")
	}
}

func TestFullFlushDowngradeVariant(t *testing.T) {
	// §3.2.4's equivalent alternative: flush everything, zero the table.
	e := newBCEnv(t, func(c *Config) { c.SelectiveFlush = false })
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	v2, ppn2 := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	e.bc.OnTranslation(0, p.ASID(), v2.PageOf(), ppn2, arch.PermRW, false)
	if _, err := e.os.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if e.accel.fullFlushes != 1 {
		t.Error("full-flush variant should flush everything")
	}
	if e.accel.tlbAll == 0 {
		t.Error("full-flush variant should flush the TLB")
	}
	// The WHOLE table is zeroed: even the untouched page needs
	// re-insertion (lazily, via the next translation).
	if dec := e.bc.Check(e.eng.Now(), p.ASID(), ppn2.Base(), arch.Read); dec.Allowed {
		t.Error("table should be zeroed wholesale")
	}
}

func TestIgnoredFlushIsStillSafe(t *testing.T) {
	// §3.2.4: "Even if the accelerator ignores the request to flush its
	// caches, there is no security vulnerability" — its later writeback is
	// caught at the border.
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	e.accel.onFlush = nil // accelerator silently ignores the flush
	if _, err := e.os.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	// The (never flushed) dirty block is written back later: blocked.
	if dec := e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), arch.Write); dec.Allowed {
		t.Error("late writeback after downgrade must be blocked")
	}
}

func TestProcessCompleteRevokesEverything(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	inUse := e.os.Frames().InUse()
	e.bc.ProcessComplete(0, p.ASID())
	if e.accel.fullFlushes != 1 || e.accel.tlbAll != 1 {
		t.Error("completion must flush caches and TLB")
	}
	if e.bc.Table() != nil {
		t.Error("idle accelerator should release its table")
	}
	if e.os.Frames().InUse() >= inUse {
		t.Error("table frames not reclaimed")
	}
	if e.bc.ActiveProcesses() != 0 {
		t.Error("use count wrong")
	}
	// Completion of a process that never started is a no-op.
	e.bc.ProcessComplete(0, 9999)
}

func TestMultiprocessUnion(t *testing.T) {
	// §3.3: with multiple processes, checks pass against the union of
	// permissions; completion zeroes the shared table.
	e := newBCEnv(t, nil)
	a := e.newProc(t)
	b := e.newProc(t)
	va, ppnA := mapPage(t, a)
	vb, ppnB := mapPage(t, b)
	if err := e.bc.ProcessStart(a.ASID()); err != nil {
		t.Fatal(err)
	}
	if err := e.bc.ProcessStart(b.ASID()); err != nil {
		t.Fatal(err)
	}
	if e.bc.ActiveProcesses() != 2 {
		t.Fatal("use count wrong")
	}
	e.bc.OnTranslation(0, a.ASID(), va.PageOf(), ppnA, arch.PermRW, false)
	e.bc.OnTranslation(0, b.ASID(), vb.PageOf(), ppnB, arch.PermRead, false)
	// Both processes' pages are accessible through the one border.
	if !e.bc.Check(0, a.ASID(), ppnA.Base(), arch.Write).Allowed {
		t.Error("A's page should be writable")
	}
	if !e.bc.Check(0, b.ASID(), ppnB.Base(), arch.Read).Allowed {
		t.Error("B's page should be readable")
	}
	// Union semantics: B may write A's page — permission is per-table, not
	// per-ASID; the ASID only attributes violations (paper §3.3).
	if !e.bc.Check(0, b.ASID(), ppnA.Base(), arch.Write).Allowed {
		t.Error("union semantics: B's request to A's page must pass")
	}
	if e.bc.Check(0, b.ASID(), ppnB.Base(), arch.Write).Allowed {
		t.Error("B's read-only page must not be writable")
	}
	// A completes: the WHOLE table is zeroed (B re-faults lazily).
	e.bc.ProcessComplete(0, a.ASID())
	if e.bc.Table() == nil {
		t.Fatal("table must survive while B is active")
	}
	if e.bc.Check(0, b.ASID(), ppnB.Base(), arch.Read).Allowed {
		t.Error("completion must revoke even the other process's entries")
	}
	e.bc.OnTranslation(0, b.ASID(), vb.PageOf(), ppnB, arch.PermRead, false)
	if !e.bc.Check(0, b.ASID(), ppnB.Base(), arch.Read).Allowed {
		t.Error("B's re-insertion should restore access")
	}
}

func TestEagerPopulate(t *testing.T) {
	e := newBCEnv(t, func(c *Config) { c.EagerPopulate = true })
	p := e.newProc(t)
	_, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	// No translation ever happened, but eager population pre-filled the
	// table from the process's mapped pages.
	if !e.bc.Check(0, p.ASID(), ppn.Base(), arch.Write).Allowed {
		t.Error("eager population missed a mapped page")
	}
}

func TestDisableOnViolation(t *testing.T) {
	e := newBCEnv(t, func(c *Config) { c.DisableOnViolation = true })
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	if !e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read).Allowed {
		t.Fatal("legitimate access should pass")
	}
	e.bc.Check(0, p.ASID(), arch.Phys(0xdead000), arch.Read) // violation
	if !e.bc.Disabled() {
		t.Fatal("border should disable after violation")
	}
	// Even previously-legitimate traffic is now refused.
	if e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read).Allowed {
		t.Error("disabled accelerator must be shut out entirely")
	}
}

func TestNoBCCMode(t *testing.T) {
	e := newBCEnv(t, func(c *Config) { c.UseBCC = false })
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	if e.bc.Cache() != nil {
		t.Fatal("noBCC mode should have no cache")
	}
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	if !e.bc.Check(0, p.ASID(), ppn.Base(), arch.Write).Allowed {
		t.Error("noBCC check should pass via the table")
	}
	if e.bc.TableReads.Value() == 0 {
		t.Error("noBCC checks must read the table")
	}
}

func TestCheckTimingParallelism(t *testing.T) {
	// A BCC hit completes in BCCLatency; the read data path then dominates
	// (the max() in the border port). Verify the decision time is exactly
	// the configured latency.
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	at := sim.Time(1000000)
	dec := e.bc.Check(at, p.ASID(), ppn.Base(), arch.Read)
	if !dec.Allowed {
		t.Fatal("check should pass")
	}
	if dec.Done != at+e.clock.Cycles(10) {
		t.Errorf("BCC-hit decision at %d, want %d", dec.Done, at+e.clock.Cycles(10))
	}
}

func TestTraceSink(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	e.bc.ProcessStart(p.ASID())
	var evs []TraceEvent
	e.bc.TraceSink = func(ev TraceEvent) { evs = append(evs, ev) }
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
	e.bc.Check(0, p.ASID(), ppn.Base(), arch.Write)
	if len(evs) != 2 || !evs[0].Insert || evs[1].Insert {
		t.Fatalf("trace = %+v", evs)
	}
	if evs[0].PPN != ppn || evs[1].PPN != ppn || evs[1].Kind != arch.Write {
		t.Errorf("trace contents wrong: %+v", evs)
	}
}

// TestRandomizedAgainstReference drives random translate / check /
// downgrade / revoke sequences against a pure-map reference model of the
// paper's invariant (DESIGN.md §7): Border Control's decision must always
// equal the reference's, and in particular must fail closed for pages the
// ATS never produced.
func TestRandomizedAgainstReference(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())

	const pages = 64
	base, err := p.Mmap(pages*arch.PageSize, arch.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	ppns := make([]arch.PPN, pages)
	for i := 0; i < pages; i++ {
		if _, err := p.Translate(base+arch.Virt(i*arch.PageSize), arch.Write); err != nil {
			t.Fatal(err)
		}
		ppns[i], _ = p.PPNOf(base.PageOf() + arch.VPN(i))
	}

	ref := make(map[arch.PPN]arch.Perm) // the reference protection table
	osPerm := make([]arch.Perm, pages)  // current page-table permissions
	for i := range osPerm {
		osPerm[i] = arch.PermRW
	}

	rng := rand.New(rand.NewSource(2015))
	for step := 0; step < 4000; step++ {
		i := rng.Intn(pages)
		vpn := base.PageOf() + arch.VPN(i)
		ppn := ppns[i]
		switch rng.Intn(6) {
		case 0, 1: // ATS translation: insert current OS permissions
			e.bc.OnTranslation(0, p.ASID(), vpn, ppn, osPerm[i], false)
			ref[ppn] |= osPerm[i].Border()
		case 2, 3: // check
			kind := arch.Read
			if rng.Intn(2) == 0 {
				kind = arch.Write
			}
			want := ref[ppn].Allows(kind.Need())
			got := e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), kind).Allowed
			if got != want {
				t.Fatalf("step %d: check(%d,%v) = %v, reference says %v", step, ppn, kind, got, want)
			}
		case 4: // OS downgrade RW->R or R->none
			var to arch.Perm
			if osPerm[i] == arch.PermRW {
				to = arch.PermRead
			} else if osPerm[i] == arch.PermRead {
				to = arch.PermNone
			} else {
				continue
			}
			if _, err := e.os.Protect(p, vpn.Base(), arch.PageSize, to); err != nil {
				t.Fatal(err)
			}
			osPerm[i] = to
			ref[ppn] = to.Border()
			// A downgrade to PermNone in the reference still shows none
			// even if never inserted; Set in BC only applies if in table —
			// reference matches because ref[ppn] is overwritten.
		case 5: // OS upgrade back to RW (no shootdown; table NOT widened)
			if osPerm[i] != arch.PermRW {
				if _, err := e.os.Protect(p, vpn.Base(), arch.PageSize, arch.PermRW); err != nil {
					t.Fatal(err)
				}
				osPerm[i] = arch.PermRW
				// The border learns of upgrades only through the ATS.
			}
		}
		// Global invariant: the border never grants more than the union of
		// what the ATS has reported since the last revocation.
		if step%500 == 0 {
			for j, pp := range ppns {
				got := e.bc.Table().Lookup(pp)
				if got&^ref[pp] != 0 {
					t.Fatalf("step %d: table grants %v to page %d, reference allows %v", step, got, j, ref[pp])
				}
			}
		}
	}
}
