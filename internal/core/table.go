// Package core implements Border Control, the paper's contribution: a
// per-accelerator Protection Table in host physical memory, a small Border
// Control Cache (BCC) over it, and the event protocol of paper Figure 3
// that keeps them consistent with the OS page tables.
//
// The security property: no read (write) request from the accelerator for a
// physical page whose Protection Table entry lacks read (write) permission
// ever reaches host memory. The table is populated lazily from ATS
// translations and fails closed — a physical address the ATS never produced
// has no permissions.
package core

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

// bitsPerPage is the Protection Table cost per physical page: one read bit
// and one write bit (paper §3.1.1).
const bitsPerPage = 2

// pagesPerByte is how many pages one table byte covers.
const pagesPerByte = 8 / bitsPerPage // 4

// PagesPerBlock is how many pages one 128-byte memory block of the table
// covers: 512, which is why a 512-pages/entry BCC line maps exactly to one
// table block (paper §3.1.2).
const PagesPerBlock = arch.BlockSize * pagesPerByte

// TableBytes returns the Protection Table size for a physical memory of the
// given page count. For 16 GB of physical memory this is 1 MB — the 0.006%
// overhead headline.
func TableBytes(physPages uint64) uint64 {
	return (physPages + pagesPerByte - 1) / pagesPerByte
}

// ProtectionTable is the flat, physically-indexed permission table of one
// accelerator. It lives inside simulated physical memory at [base,
// base+TableBytes): the base and bounds registers of paper Figure 2.
type ProtectionTable struct {
	store *memory.Store
	base  arch.Phys
	// boundPages is the bounds register: the number of physical pages the
	// table covers. Requests at or beyond it are violations by definition.
	boundPages uint64
}

// NewProtectionTable returns a table at the given physical base covering
// physPages pages. The region must lie within physical memory; the OS
// allocates and zeroes it at process initialization (Figure 3a).
func NewProtectionTable(store *memory.Store, base arch.Phys, physPages uint64) (*ProtectionTable, error) {
	size := TableBytes(physPages)
	if uint64(base)%arch.PageSize != 0 {
		return nil, fmt.Errorf("core: protection table base %#x not page aligned", base)
	}
	if !store.Contains(base, size) {
		return nil, fmt.Errorf("core: protection table [%#x,+%d) outside physical memory", base, size)
	}
	return &ProtectionTable{store: store, base: base, boundPages: physPages}, nil
}

// Base returns the table's base register value.
func (t *ProtectionTable) Base() arch.Phys { return t.base }

// BoundPages returns the bounds register value in pages.
func (t *ProtectionTable) BoundPages() uint64 { return t.boundPages }

// SizeBytes returns the table's size in bytes.
func (t *ProtectionTable) SizeBytes() uint64 { return TableBytes(t.boundPages) }

// InBounds reports whether ppn is covered by the bounds register.
func (t *ProtectionTable) InBounds(ppn arch.PPN) bool { return uint64(ppn) < t.boundPages }

// EntryAddr returns the physical address of the byte holding ppn's bits.
func (t *ProtectionTable) EntryAddr(ppn arch.PPN) arch.Phys {
	return t.base + arch.Phys(uint64(ppn)/pagesPerByte)
}

// BlockAddr returns the address of the 128-byte table block holding ppn's
// bits — the unit the BCC fetches.
func (t *ProtectionTable) BlockAddr(ppn arch.PPN) arch.Phys {
	return t.EntryAddr(ppn).BlockOf()
}

func shiftFor(ppn arch.PPN) uint {
	return uint(uint64(ppn)%pagesPerByte) * bitsPerPage
}

// Lookup returns the stored permissions for ppn. Out-of-bounds pages have
// no permissions.
func (t *ProtectionTable) Lookup(ppn arch.PPN) arch.Perm {
	if !t.InBounds(ppn) {
		return arch.PermNone
	}
	b := t.store.ReadByteAt(t.EntryAddr(ppn))
	return arch.Perm(b>>shiftFor(ppn)) & arch.PermRW
}

// Set overwrites the permissions for ppn.
func (t *ProtectionTable) Set(ppn arch.PPN, p arch.Perm) {
	if !t.InBounds(ppn) {
		panic(fmt.Sprintf("core: protection table set out of bounds ppn=%#x", ppn))
	}
	a := t.EntryAddr(ppn)
	b := t.store.ReadByteAt(a)
	sh := shiftFor(ppn)
	b = b&^(byte(arch.PermRW)<<sh) | byte(p.Border())<<sh
	t.store.WriteByteAt(a, b)
}

// Merge ors p into the permissions for ppn and reports whether the stored
// bits changed. Translations only ever widen the stored permissions
// (downgrades go through Set after the flush protocol).
func (t *ProtectionTable) Merge(ppn arch.PPN, p arch.Perm) bool {
	if !t.InBounds(ppn) {
		panic(fmt.Sprintf("core: protection table merge out of bounds ppn=%#x", ppn))
	}
	a := t.EntryAddr(ppn)
	b := t.store.ReadByteAt(a)
	sh := shiftFor(ppn)
	nb := b | byte(p.Border())<<sh
	if nb == b {
		return false
	}
	t.store.WriteByteAt(a, nb)
	return true
}

// Zero clears the whole table: every page loses all permissions. Used at
// process initialization, full-flush downgrades, and process completion.
func (t *ProtectionTable) Zero() {
	t.store.ZeroRange(t.base, t.SizeBytes())
}

// ReadBlock copies the 128-byte table block containing ppn's entry into
// buf; the BCC fill path.
func (t *ProtectionTable) ReadBlock(ppn arch.PPN, buf *[arch.BlockSize]byte) {
	t.store.ReadInto(t.BlockAddr(ppn), buf[:])
}
