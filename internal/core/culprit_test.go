package core

// Regression tests for violation attribution (§3.3). Permissions are the
// union over active processes — the ASID carried by a request never grants
// anything — but when the border blocks a request, the OS needs to know
// WHICH process's accelerator context misbehaved, so it can kill exactly
// that process. Before the requesting ASID was plumbed through Check, the
// border could only blame a process when exactly one was active; with two
// processes co-scheduled, a violation killed nobody.

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

func twoProcs(t *testing.T, e *bcEnv) (*hostos.Process, *hostos.Process) {
	t.Helper()
	a, err := e.os.NewProcess("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.os.NewProcess("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.bc.ProcessStart(a.ASID()); err != nil {
		t.Fatal(err)
	}
	if err := e.bc.ProcessStart(b.ASID()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestCulpritAttributionMultiprocess(t *testing.T) {
	// Two processes run on the accelerator. A's page is granted read-only;
	// a request carrying B's ASID writes it. The union of permissions lacks
	// write, so the border blocks — and must kill B, the process whose
	// context issued the request, not A, and not nobody.
	e := newBCEnv(t, nil)
	e.os.KeepProcessOnViolation = false
	a, b := twoProcs(t, e)
	_, ppnA := mapPage(t, a)
	e.bc.OnTranslation(0, a.ASID(), 0, ppnA, arch.PermRead, false)

	if e.bc.Check(e.eng.Now(), b.ASID(), ppnA.Base(), arch.Write).Allowed {
		t.Fatal("write through a read-only union grant must be blocked")
	}
	if len(e.os.Violations) != 1 {
		t.Fatalf("violations logged = %d, want 1", len(e.os.Violations))
	}
	if got := e.os.Violations[0].ASID; got != b.ASID() {
		t.Errorf("violation attributed to asid %d, want requester %d", got, b.ASID())
	}
	if !b.Dead() {
		t.Error("requesting process survived its violation (pre-fix: two active processes meant no culprit)")
	}
	if a.Dead() {
		t.Error("innocent co-scheduled process was killed")
	}
}

func TestCulpritAttributionAfterCompletion(t *testing.T) {
	// B's session completes (Figure 3e zeroes the table), then B's stale
	// hardware context replays an old physical address. Only A remains
	// active — the old single-active heuristic would have blamed A. The
	// requesting ASID names the replayer even though it is no longer active.
	e := newBCEnv(t, nil)
	e.os.KeepProcessOnViolation = false
	a, b := twoProcs(t, e)
	_, ppnB := mapPage(t, b)
	e.bc.OnTranslation(0, b.ASID(), 0, ppnB, arch.PermRW, false)
	e.bc.ProcessComplete(e.eng.Now(), b.ASID())

	if e.bc.Check(e.eng.Now(), b.ASID(), ppnB.Base(), arch.Read).Allowed {
		t.Fatal("replay after completion must be blocked (table zeroed)")
	}
	if got := e.os.Violations[len(e.os.Violations)-1].ASID; got != b.ASID() {
		t.Errorf("violation attributed to asid %d, want replayer %d", got, b.ASID())
	}
	if a.Dead() {
		t.Error("surviving process blamed for the completed process's replay")
	}
	if !b.Dead() {
		t.Error("replaying process not killed")
	}
}

func TestHardwareInitiatedFallsBackToSingleActive(t *testing.T) {
	// ASID 0 marks hardware-initiated crossings (flush writebacks). With
	// exactly one active process the border still blames it — the paper's
	// original heuristic, kept as the fallback.
	e := newBCEnv(t, nil)
	e.os.KeepProcessOnViolation = false
	p, err := e.os.NewProcess("solo")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.bc.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	_, ppn := mapPage(t, p)
	if e.bc.Check(e.eng.Now(), 0, ppn.Base(), arch.Write).Allowed {
		t.Fatal("never-granted page must be blocked")
	}
	if got := e.os.Violations[0].ASID; got != p.ASID() {
		t.Errorf("violation attributed to asid %d, want sole active %d", got, p.ASID())
	}
	if !p.Dead() {
		t.Error("sole active process not killed for hardware-initiated violation")
	}
}
