package core

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// Sandboxed is what Border Control needs from the accelerator complex it
// guards: the ability to request cache flushes (whose dirty writebacks come
// back through the border, where they are still checked against the
// pre-downgrade permissions) and TLB invalidations.
type Sandboxed interface {
	// FlushPage writes back and invalidates all accelerator-cached blocks
	// of the physical page, returning when the flush completes. A
	// misbehaving accelerator may do nothing; safety does not depend on it
	// (paper §3.2.4).
	FlushPage(at sim.Time, ppn arch.PPN) sim.Time
	// FlushAll writes back and invalidates the entire accelerator cache
	// hierarchy.
	FlushAll(at sim.Time) sim.Time
	// InvalidateTLBPage drops one accelerator TLB translation.
	InvalidateTLBPage(asid arch.ASID, vpn arch.VPN)
	// InvalidateTLBAll flushes the accelerator TLBs.
	InvalidateTLBAll()
}

// Config sets Border Control's structures and policies.
type Config struct {
	// UseBCC enables the Border Control Cache; without it every check
	// reads the Protection Table in memory (the BC-noBCC configuration).
	UseBCC bool
	// BCC is the cache geometry when UseBCC is set.
	BCC BCCConfig
	// BCCLatency is the BCC probe latency (10 GPU cycles in Table 3).
	BCCLatency sim.Time
	// TableLatency is EXTRA latency added to every Protection Table read
	// beyond the DRAM access itself. The paper's 100-cycle table access
	// (Table 3) emerges from the DRAM model (a row miss costs ~100 GPU
	// cycles), so the default extra is zero; the ablation benches sweep it.
	TableLatency sim.Time
	// SelectiveFlush flushes only the affected page on a permission
	// downgrade instead of the whole accelerator cache (paper §3.2.4's
	// optimization).
	SelectiveFlush bool
	// EagerPopulate pre-fills the Protection Table with every page the
	// process has mapped at ProcessStart, instead of the paper's lazy
	// population. Ablation only; the paper argues lazy is cheaper.
	EagerPopulate bool
	// DisableOnViolation makes the border refuse all further traffic after
	// the first violation (the "disabling the accelerator" OS response).
	DisableOnViolation bool
}

// DefaultConfig returns the paper's evaluated Border Control-BCC
// configuration for a GPU clock.
func DefaultConfig(gpuClock sim.Clock) Config {
	return Config{
		UseBCC:         true,
		BCC:            DefaultBCCConfig(),
		BCCLatency:     gpuClock.Cycles(10),
		SelectiveFlush: true,
	}
}

// TraceEvent is one Border Control event, exported through TraceSink for
// trace-driven BCC geometry studies (paper Figure 6).
type TraceEvent struct {
	// Insert is true for a Protection Table insertion (ATS translation)
	// and false for a request check.
	Insert bool
	PPN    arch.PPN
	// Perm is the inserted permission (Insert only).
	Perm arch.Perm
	// Kind is the checked access kind (checks only).
	Kind arch.AccessKind
}

// Decision is the outcome of a border check.
type Decision struct {
	// Allowed reports whether the request may proceed to host memory.
	Allowed bool
	// Done is when the permission check result is available. For reads the
	// check proceeds in parallel with the memory access (paper §3.1.1), so
	// the effective completion is max(check, data); writes must not reach
	// memory until the check passes.
	Done sim.Time
}

// BorderControl guards the border of one accelerator. It implements
// ats.Observer (protection-table insertion) and hostos.ShootdownListener
// (permission downgrades).
type BorderControl struct {
	name string
	cfg  Config
	os   *hostos.OS
	dram *memory.DRAM
	eng  *sim.Engine

	table      *ProtectionTable
	tableBase  arch.PPN
	tableAlloc *hostos.FrameAllocator // where PT frames come from
	bcc        *BCC
	accel      Sandboxed

	useCount int
	active   map[arch.ASID]bool
	disabled bool

	// TraceSink, when set, receives every check and insertion event.
	TraceSink func(TraceEvent)

	// tr receives timeline events when a tracer is attached. trChecks
	// caches tr.Enabled("border.check") so the per-request hot path pays
	// one branch, not a map lookup.
	tr       *trace.Tracer
	trChecks bool

	// pr, when attached, receives simulated-time attribution for every
	// crossing (border/check → border/bcc / host/ptwalk frames).
	pr *prof.Profiler

	// Stats.
	Checks        stats.Counter
	ReadChecks    stats.Counter
	WriteChecks   stats.Counter
	Violations    stats.Counter
	TableReads    stats.Counter
	TableWrites   stats.Counter
	Insertions    stats.Counter
	Downgrades    stats.Counter
	CacheFlushes  stats.Counter
	FlushStallsPs stats.Counter

	// Latency distributions in simulated picoseconds, split by outcome
	// class: the request-to-verdict time for BCC hits, BCC misses (and
	// noBCC lookups) that walked the Protection Table, and denials.
	// Always-on: Record is zero-alloc and feeds nothing back into timing.
	HitLatency    stats.Histogram
	WalkLatency   stats.Histogram
	DeniedLatency stats.Histogram
	// FlushDuration distributes per-downgrade flush stall times, the
	// per-event view of the FlushStallsPs total.
	FlushDuration stats.Histogram
	// asidLatency splits crossing latency by requester in multi-process
	// runs (ASIDs 1..4; a fixed array keeps the record path alloc-free).
	// Only populated while more than one process shares the border.
	asidLatency [4]stats.Histogram
}

// BorderControl is the flat-table design in the ProtectionArchitecture
// registry (DefaultDesign).
var _ ProtectionArchitecture = (*BorderControl)(nil)

// New returns a Border Control instance for the named accelerator. The
// Protection Table is allocated lazily at the first ProcessStart (Figure
// 3a).
func New(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (*BorderControl, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bc := &BorderControl{
		name:   name,
		cfg:    cfg,
		os:     os,
		dram:   dram,
		eng:    eng,
		active: make(map[arch.ASID]bool),
	}
	if cfg.UseBCC {
		b, err := NewBCC(cfg.BCC)
		if err != nil {
			return nil, err
		}
		bc.bcc = b
	}
	return bc, nil
}

// Name returns the accelerator name this border guards.
func (bc *BorderControl) Name() string { return bc.name }

// Design identifies this implementation in the design registry.
func (bc *BorderControl) Design() string { return "flat" }

// PermAt returns the effective border permission for ppn — the flat table
// entry. Audit-only; charges no simulated time.
func (bc *BorderControl) PermAt(ppn arch.PPN) arch.Perm {
	if bc.table == nil || !bc.table.InBounds(ppn) {
		return arch.PermNone
	}
	return bc.table.Lookup(ppn)
}

// CrossingChecks returns how many border checks have been performed.
func (bc *BorderControl) CrossingChecks() uint64 { return bc.Checks.Value() }

// SetTraceSink installs (or, with nil, removes) the per-event sink used by
// trace-driven BCC studies (Figure 6).
func (bc *BorderControl) SetTraceSink(fn func(TraceEvent)) { bc.TraceSink = fn }

// Table returns the live Protection Table, or nil when no process is
// active.
func (bc *BorderControl) Table() *ProtectionTable { return bc.table }

// Cache returns the BCC, or nil in the noBCC configuration.
func (bc *BorderControl) Cache() *BCC { return bc.bcc }

// SetAccelerator wires the sandboxed accelerator complex. Must be called
// before any downgrade can be handled.
func (bc *BorderControl) SetAccelerator(a Sandboxed) { bc.accel = a }

// SetTableAllocator overrides where Protection Table frames are allocated.
// Under virtualization (paper §3.4.2) the trusted VMM supplies them from
// host-physical memory no guest partition can reach; the table still
// indexes bare-metal physical addresses, so nothing else changes.
func (bc *BorderControl) SetTableAllocator(f *hostos.FrameAllocator) { bc.tableAlloc = f }

// SetTracer attaches (or, with nil, detaches) a timeline tracer. Border
// events land in the "border" category; per-request check spans go to the
// high-volume "border.check" category, recorded only when that category
// is explicitly enabled.
func (bc *BorderControl) SetTracer(t *trace.Tracer) {
	bc.tr = t
	bc.trChecks = t.Enabled("border.check")
}

// SetProfiler attaches (or, with nil, detaches) a simulated-time profiler.
func (bc *BorderControl) SetProfiler(p *prof.Profiler) { bc.pr = p }

// RegisterMetrics publishes the border's counters under s
// ("border.checks", "border.violations", "border.bcc.miss_ratio", ...).
func (bc *BorderControl) RegisterMetrics(s stats.Scope) {
	s.Counter("checks", &bc.Checks)
	s.Counter("read_checks", &bc.ReadChecks)
	s.Counter("write_checks", &bc.WriteChecks)
	s.Counter("violations", &bc.Violations)
	s.Counter("insertions", &bc.Insertions)
	s.Counter("table_reads", &bc.TableReads)
	s.Counter("table_writes", &bc.TableWrites)
	s.Counter("downgrades", &bc.Downgrades)
	s.Counter("cache_flushes", &bc.CacheFlushes)
	s.Counter("flush_stall_ps", &bc.FlushStallsPs)
	lat := s.Scope("latency_ps")
	lat.Histogram("bcc_hit", &bc.HitLatency)
	lat.Histogram("pt_walk", &bc.WalkLatency)
	lat.Histogram("denied", &bc.DeniedLatency)
	lat.Histogram("downgrade_flush", &bc.FlushDuration)
	for i := range bc.asidLatency {
		lat.Histogram(fmt.Sprintf("asid%d", i+1), &bc.asidLatency[i])
	}
	if bc.bcc != nil {
		bc.bcc.RegisterMetrics(s.Scope("bcc"))
	}
}

// Disabled reports whether the border has shut the accelerator out.
func (bc *BorderControl) Disabled() bool { return bc.disabled }

// ActiveProcesses returns how many processes currently run on the
// accelerator.
func (bc *BorderControl) ActiveProcesses() int { return bc.useCount }

// ProcessStart implements Figure 3a. If the accelerator was idle, the OS
// allocates and zeroes a Protection Table and programs the base and bounds
// registers; otherwise the use count is incremented and the existing table
// is shared (union permissions, paper §3.3).
func (bc *BorderControl) ProcessStart(asid arch.ASID) error {
	if bc.table == nil {
		alloc := bc.tableAlloc
		if alloc == nil {
			alloc = bc.os.Frames()
		}
		pages := bc.os.Store().Pages()
		frames := (TableBytes(pages) + arch.PageSize - 1) / arch.PageSize
		base, err := alloc.AllocContiguous(frames)
		if err != nil {
			return fmt.Errorf("core: allocating protection table: %w", err)
		}
		t, err := NewProtectionTable(bc.os.Store(), base.Base(), pages)
		if err != nil {
			alloc.FreeContiguous(base, frames)
			return err
		}
		t.Zero()
		bc.table = t
		bc.tableBase = base
	}
	bc.useCount++
	bc.active[asid] = true
	if bc.tr != nil {
		bc.tr.Instant("border", "process start", uint64(bc.eng.Now()))
	}
	if bc.cfg.EagerPopulate {
		if p, ok := bc.os.Process(asid); ok {
			p.ForEachMapped(func(_ arch.VPN, ppn arch.PPN, perm arch.Perm) {
				bc.insert(bc.eng.Now(), ppn, perm)
			})
		}
	}
	return nil
}

// ProcessComplete implements Figure 3e: flush the accelerator caches,
// invalidate BCC and accelerator TLB, zero the Protection Table, and — if
// the accelerator is now idle — return the table's memory to the OS. It
// returns the time the completion protocol finishes.
func (bc *BorderControl) ProcessComplete(at sim.Time, asid arch.ASID) sim.Time {
	if !bc.active[asid] {
		return at
	}
	done := at
	if bc.accel != nil {
		done = bc.accel.FlushAll(at)
		bc.accel.InvalidateTLBAll()
	}
	if bc.tr != nil {
		bc.tr.Complete("border", "process complete", uint64(at), uint64(done-at))
	}
	if bc.bcc != nil {
		bc.bcc.InvalidateAll()
	}
	if bc.table != nil {
		bc.table.Zero()
	}
	delete(bc.active, asid)
	bc.useCount--
	if bc.useCount == 0 && bc.table != nil {
		alloc := bc.tableAlloc
		if alloc == nil {
			alloc = bc.os.Frames()
		}
		frames := (bc.table.SizeBytes() + arch.PageSize - 1) / arch.PageSize
		alloc.FreeContiguous(bc.tableBase, frames)
		bc.table = nil
	}
	// The flush above ran with the table still populated (in-flight
	// writebacks pass under the old permissions); only now that the epoch is
	// over does the OS learn the session ended.
	bc.os.NoteCompletion(asid)
	return done
}

// OnTranslation implements ats.Observer: the Protection Table insertion of
// Figure 3b. Permissions only widen here. Huge-page translations fan out
// to every covered 4 KB page (paper §3.4.4).
func (bc *BorderControl) OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	if !bc.active[asid] || bc.table == nil {
		return
	}
	if huge {
		head := ppn - ppn%arch.PagesPerHugePage
		for i := arch.PPN(0); i < arch.PagesPerHugePage; i++ {
			bc.table.Merge(head+i, perm)
			if bc.bcc != nil {
				bc.bcc.Update(head+i, perm, bc.table)
			}
		}
		bc.Insertions.Inc()
		// One table block covers the whole 2 MB fan-out. The write-through
		// is posted: it claims bandwidth from the present moment, not from
		// the translation's completion time.
		bc.dram.AccessDone(bc.eng.Now(), bc.table.BlockAddr(head), arch.Write)
		bc.TableWrites.Inc()
		return
	}
	bc.insert(at, ppn, perm)
}

func (bc *BorderControl) insert(at sim.Time, ppn arch.PPN, perm arch.Perm) {
	bc.Insertions.Inc()
	if !bc.table.InBounds(ppn) {
		return
	}
	if bc.TraceSink != nil {
		bc.TraceSink(TraceEvent{Insert: true, PPN: ppn, Perm: perm})
	}
	changed := bc.table.Merge(ppn, perm)
	if bc.bcc != nil {
		_, filled := bc.bcc.Update(ppn, perm, bc.table)
		if filled {
			bc.TableReads.Inc()
			bc.dram.AccessDone(bc.eng.Now(), bc.table.BlockAddr(ppn), arch.Read)
		}
	} else {
		// Without a BCC the insertion is a narrow read-modify-write of the
		// table entry in memory.
		bc.TableReads.Inc()
		bc.dram.AccessDoneBytes(bc.eng.Now(), bc.table.BlockAddr(ppn), arch.Read, 8)
	}
	if changed {
		bc.TableWrites.Inc()
		bc.dram.AccessDoneBytes(bc.eng.Now(), bc.table.BlockAddr(ppn), arch.Write, 8)
	}
}

// Check implements Figure 3c: every accelerator memory request is checked
// before it reaches the host memory system. Blocked requests raise an
// exception to the OS, attributed to the requesting ASID.
func (bc *BorderControl) Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision {
	bc.Checks.Inc()
	if kind == arch.Write {
		bc.WriteChecks.Inc()
	} else {
		bc.ReadChecks.Inc()
	}
	if bc.pr != nil {
		bc.pr.Enter("border/check")
		defer bc.pr.Exit()
	}
	if bc.disabled || bc.table == nil {
		d := bc.deny(at, asid, addr, kind)
		bc.recordLatency(&bc.DeniedLatency, at, d.Done, asid)
		return d
	}
	ppn := addr.PageOf()
	if bc.TraceSink != nil {
		bc.TraceSink(TraceEvent{PPN: ppn, Kind: kind})
	}
	// The bounds register is checked before the table is indexed.
	if !bc.table.InBounds(ppn) {
		d := bc.deny(at, asid, addr, kind)
		bc.recordLatency(&bc.DeniedLatency, at, d.Done, asid)
		return d
	}
	var perm arch.Perm
	walked := false
	done := at
	if bc.bcc != nil {
		done += bc.cfg.BCCLatency
		if bc.pr != nil {
			bc.pr.Span("border/bcc", uint64(bc.cfg.BCCLatency))
		}
		p, hit := bc.bcc.Probe(ppn)
		if hit {
			perm = p
		} else {
			perm = bc.bcc.Fill(ppn, bc.table)
			bc.TableReads.Inc()
			walked = true
			walkStart := done
			done = bc.tableAccess(done, ppn)
			if bc.pr != nil {
				bc.pr.Span("host/ptwalk", uint64(done-walkStart))
			}
		}
	} else {
		bc.TableReads.Inc()
		perm = bc.table.Lookup(ppn)
		walked = true
		done = bc.tableAccess(at, ppn)
		if bc.pr != nil {
			bc.pr.Span("host/ptwalk", uint64(done-at))
		}
	}
	if !perm.Allows(kind.Need()) {
		d := bc.deny(done, asid, addr, kind)
		bc.recordLatency(&bc.DeniedLatency, at, d.Done, asid)
		return d
	}
	if walked {
		bc.recordLatency(&bc.WalkLatency, at, done, asid)
	} else {
		bc.recordLatency(&bc.HitLatency, at, done, asid)
	}
	if bc.trChecks {
		name := "check read"
		if kind == arch.Write {
			name = "check write"
		}
		bc.tr.Complete("border.check", name, uint64(at), uint64(done-at))
	}
	return Decision{Allowed: true, Done: done}
}

// recordLatency records one crossing's request-to-verdict latency into the
// outcome-class histogram, and into the per-ASID split while more than one
// process shares the border.
func (bc *BorderControl) recordLatency(h *stats.Histogram, at, done sim.Time, asid arch.ASID) {
	var lat uint64
	if done > at {
		lat = uint64(done - at)
	}
	h.Record(lat)
	if bc.useCount > 1 && asid >= 1 && int(asid) <= len(bc.asidLatency) {
		bc.asidLatency[asid-1].Record(lat)
	}
}

// tableAccess charges one Protection Table read: a narrow DRAM access (a
// permission lookup moves one word, not a whole block) plus any configured
// extra latency. On a row miss this costs ~100 GPU cycles — the Table 3
// figure.
func (bc *BorderControl) tableAccess(at sim.Time, ppn arch.PPN) sim.Time {
	return bc.dram.AccessDoneBytes(at, bc.table.BlockAddr(ppn), arch.Read, 8) + bc.cfg.TableLatency
}

// deny records a violation, notifies the OS, and returns a blocking
// decision. Requested read data is not returned and writes do not proceed.
//
// The culprit is the ASID the request carried — even one no longer active
// on this border (a replay after ProcessComplete still names who replayed).
// Only hardware-initiated crossings (asid 0) fall back to the single-active
// heuristic; with several processes co-scheduled an unattributed violation
// blames nobody rather than the wrong process.
func (bc *BorderControl) deny(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision {
	bc.Violations.Inc()
	if bc.tr != nil {
		bc.tr.Instant("border", "violation", uint64(at))
	}
	culprit := asid
	if culprit == 0 && len(bc.active) == 1 {
		for a := range bc.active {
			culprit = a
		}
	}
	if bc.cfg.DisableOnViolation {
		bc.disabled = true
	}
	bc.os.ReportViolation(hostos.Violation{
		Accelerator: bc.name,
		ASID:        culprit,
		Addr:        addr,
		Kind:        kind,
	}, culprit)
	return Decision{Allowed: false, Done: at}
}

// OnDowngrade implements hostos.ShootdownListener: the memory-mapping
// update protocol of Figure 3d. If the page may be dirty in the
// accelerator (its table entry has the write bit), the accelerator caches
// are flushed BEFORE the table and BCC are updated, so the in-flight
// writebacks still pass the border under the old permissions.
func (bc *BorderControl) OnDowngrade(d hostos.Downgrade) {
	if !bc.active[d.ASID] || bc.table == nil || !bc.table.InBounds(d.PPN) {
		return
	}
	bc.Downgrades.Inc()
	now := bc.eng.Now()
	old := bc.table.Lookup(d.PPN)
	if old == arch.PermNone && d.New.Border() == arch.PermNone {
		// Never inserted; nothing cached, nothing to do — but the
		// accelerator TLB may still hold the stale translation.
		if bc.accel != nil {
			bc.accel.InvalidateTLBPage(d.ASID, d.VPN)
		}
		return
	}
	if old.CanWrite() {
		bc.CacheFlushes.Inc()
		start := now
		if bc.pr != nil {
			bc.pr.Enter("border/downgrade")
		}
		var done sim.Time
		if bc.cfg.SelectiveFlush {
			done = bc.flushPage(start, d.PPN)
			bc.table.Set(d.PPN, d.New)
			if bc.bcc != nil {
				bc.bcc.Downgrade(d.PPN, d.New)
			}
		} else {
			// Equivalent alternative from §3.2.4: flush everything, zero
			// the table, invalidate BCC and TLB wholesale.
			done = bc.flushAll(start)
			bc.table.Zero()
			if bc.bcc != nil {
				bc.bcc.InvalidateAll()
			}
			if bc.accel != nil {
				bc.accel.InvalidateTLBAll()
			}
		}
		bc.FlushStallsPs.Add(uint64(done - start))
		bc.FlushDuration.Record(uint64(done - start))
		if bc.pr != nil {
			bc.pr.Attribute(uint64(done - start))
			bc.pr.Exit()
		}
		if bc.tr != nil {
			bc.tr.Complete("border", "downgrade flush", uint64(start), uint64(done-start))
		}
	} else {
		// Read-only (e.g. copy-on-write) pages cannot be dirty: update in
		// place with no flush (paper §3.2.4).
		bc.table.Set(d.PPN, d.New)
		if bc.bcc != nil {
			bc.bcc.Downgrade(d.PPN, d.New)
		}
	}
	if bc.accel != nil && bc.cfg.SelectiveFlush {
		bc.accel.InvalidateTLBPage(d.ASID, d.VPN)
	}
}

func (bc *BorderControl) flushPage(at sim.Time, ppn arch.PPN) sim.Time {
	if bc.accel == nil {
		return at
	}
	return bc.accel.FlushPage(at, ppn)
}

func (bc *BorderControl) flushAll(at sim.Time) sim.Time {
	if bc.accel == nil {
		return at
	}
	return bc.accel.FlushAll(at)
}
