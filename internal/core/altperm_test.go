package core

import (
	"errors"
	"testing"

	"bordercontrol/internal/arch"
)

func TestInsertRequiresActiveProcess(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	if err := e.bc.Insert(0, p.ASID(), 5, arch.PermRead); err == nil {
		t.Error("insert before ProcessStart should fail")
	}
	e.bc.ProcessStart(p.ASID())
	if err := e.bc.Insert(0, p.ASID(), 5, arch.PermRead); err != nil {
		t.Fatal(err)
	}
	if !e.bc.Check(0, p.ASID(), arch.PPN(5).Base(), arch.Read).Allowed {
		t.Error("inserted permission not honored")
	}
	if err := e.bc.Insert(0, p.ASID(), arch.PPN(1<<40), arch.PermRead); err == nil {
		t.Error("out-of-bounds insert should fail")
	}
}

func TestSegmentSource(t *testing.T) {
	s := NewSegmentSource()
	s.Grant(1, Segment{Base: 0x2000, Len: 0x100, Perm: arch.PermRead})
	s.Grant(1, Segment{Base: 0x2100, Len: 0x100, Perm: arch.PermWrite})
	// Both segments live in page 2: the page projection is the union.
	if got := s.PermFor(1, 2); got != arch.PermRW {
		t.Errorf("page projection = %v, want rw", got)
	}
	if got := s.PermFor(1, 3); got != arch.PermNone {
		t.Errorf("uncovered page = %v", got)
	}
	if got := s.PermFor(2, 2); got != arch.PermNone {
		t.Errorf("other asid = %v", got)
	}
	if n := s.Revoke(1, 0x2000, 0x80); n != 1 {
		t.Errorf("revoked %d segments, want 1", n)
	}
	if got := s.PermFor(1, 2); got != arch.PermWrite {
		t.Errorf("after revoke = %v, want w", got)
	}
}

func TestPLBDrivesProtectionTable(t *testing.T) {
	// Paper §3.4.1: "On a PLB miss, Border Control can update the
	// Protection Table, just as it would on a TLB miss."
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	src := NewSegmentSource()
	src.Grant(p.ASID(), Segment{Base: 0x10000, Len: 2 * arch.PageSize, Perm: arch.PermRW})
	plb, err := NewPLB(src, e.bc, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Before any PLB activity the border fails closed.
	if e.bc.Check(0, p.ASID(), 0x10000, arch.Read).Allowed {
		t.Fatal("border should fail closed before the PLB miss")
	}
	perm, err := plb.Access(0, p.ASID(), 0x10040, arch.Read)
	if err != nil {
		t.Fatal(err)
	}
	if perm != arch.PermRW {
		t.Errorf("PLB returned %v", perm)
	}
	if plb.Misses != 1 {
		t.Error("first access should miss")
	}
	// The miss populated the Protection Table: the border now allows it.
	if !e.bc.Check(0, p.ASID(), 0x10000, arch.Write).Allowed {
		t.Error("PLB miss did not update the protection table")
	}
	// Second access hits the PLB.
	if _, err := plb.Access(0, p.ASID(), 0x10080, arch.Read); err != nil {
		t.Fatal(err)
	}
	if plb.Hits != 1 {
		t.Error("second access should hit")
	}
	// Ungranted ranges stay blocked even through the PLB.
	perm, err = plb.Access(0, p.ASID(), 0x90000, arch.Read)
	if err != nil || perm != arch.PermNone {
		t.Errorf("ungranted access: perm=%v err=%v", perm, err)
	}
	if e.bc.Check(0, p.ASID(), 0x90000, arch.Read).Allowed {
		t.Error("ungranted page leaked into the table")
	}
}

func TestPLBReplacement(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	src := NewSegmentSource()
	src.Grant(p.ASID(), Segment{Base: 0, Len: 64 * arch.PageSize, Perm: arch.PermRead})
	plb, _ := NewPLB(src, e.bc, 2)
	for i := 0; i < 3; i++ {
		if _, err := plb.Access(0, p.ASID(), arch.Phys(i)*arch.PageSize, arch.Read); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 was evicted (FIFO): touching it again misses.
	misses := plb.Misses
	if _, err := plb.Access(0, p.ASID(), 0, arch.Read); err != nil {
		t.Fatal(err)
	}
	if plb.Misses != misses+1 {
		t.Error("evicted entry should miss")
	}
	// Invalidation drops an entry.
	plb.InvalidatePage(p.ASID(), 0)
	misses = plb.Misses
	if _, err := plb.Access(0, p.ASID(), 0, arch.Read); err != nil {
		t.Fatal(err)
	}
	if plb.Misses != misses+1 {
		t.Error("invalidated entry should miss")
	}
}

func TestCapabilities(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	caps := NewCapabilityTable()
	id := caps.Mint(p.ASID(), Segment{Base: 0x40000, Len: 3 * arch.PageSize, Perm: arch.PermRW})

	if err := caps.Exercise(0, e.bc, p.ASID(), id); err != nil {
		t.Fatal(err)
	}
	for i := arch.Phys(0); i < 3; i++ {
		if !e.bc.Check(0, p.ASID(), 0x40000+i*arch.PageSize, arch.Write).Allowed {
			t.Errorf("capability page %d not granted", i)
		}
	}
	if e.bc.Check(0, p.ASID(), 0x40000+3*arch.PageSize, arch.Read).Allowed {
		t.Error("capability overshot its range")
	}
}

func TestForgedCapabilityRejected(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	other := e.newProc(t)
	e.bc.ProcessStart(p.ASID())
	e.bc.ProcessStart(other.ASID())
	caps := NewCapabilityTable()
	id := caps.Mint(other.ASID(), Segment{Base: 0x40000, Len: arch.PageSize, Perm: arch.PermRW})

	// A never-minted ID is a forgery.
	if err := caps.Exercise(0, e.bc, p.ASID(), 999); !errors.Is(err, ErrBadCapability) {
		t.Errorf("forged id = %v", err)
	}
	// Another process's capability cannot be exercised.
	if err := caps.Exercise(0, e.bc, p.ASID(), id); !errors.Is(err, ErrBadCapability) {
		t.Errorf("stolen capability = %v", err)
	}
	// Revoked capabilities stop working.
	caps.Revoke(id)
	if err := caps.Exercise(0, e.bc, other.ASID(), id); !errors.Is(err, ErrBadCapability) {
		t.Errorf("revoked capability = %v", err)
	}
}
