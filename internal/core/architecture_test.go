package core

import (
	"strings"
	"testing"

	"bordercontrol/internal/sim"
)

func TestDesignRegistry(t *testing.T) {
	got := Designs()
	want := []string{"flat", "range", "sparta"}
	if len(got) != len(want) {
		t.Fatalf("Designs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Designs() = %v, want %v (sorted)", got, want)
		}
	}
	if !KnownDesign(DefaultDesign) {
		t.Errorf("DefaultDesign %q not registered", DefaultDesign)
	}
	if KnownDesign("no-such-design") {
		t.Error("KnownDesign accepted an unregistered name")
	}
}

func TestNewArchitectureUnknownDesign(t *testing.T) {
	_, err := NewArchitecture("no-such-design", "gpu0", Config{}, nil, nil, nil)
	if err == nil {
		t.Fatal("unknown design accepted")
	}
	if !strings.Contains(err.Error(), "no-such-design") || !strings.Contains(err.Error(), "flat") {
		t.Errorf("error should name the bad design and list the registry, got: %v", err)
	}
}

// TestNewArchitectureDesigns checks every registered design constructs and
// reports its own name.
func TestNewArchitectureDesigns(t *testing.T) {
	for _, design := range Designs() {
		e := newDesignEnv(t, design, nil)
		if got := e.arch.Design(); got != design {
			t.Errorf("design %q reports Design() = %q", design, got)
		}
		if got := e.arch.Name(); got != "gpu0" {
			t.Errorf("design %q reports Name() = %q", design, got)
		}
	}
}

// TestConfigValidate is the construction-time companion of the
// BCCConfig.Validate table tests: impossible Config combinations must be
// rejected by Config.Validate and by every design's constructor.
func TestConfigValidate(t *testing.T) {
	clock := sim.MustClock(700e6)
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{
			name: "default config valid",
			cfg:  DefaultConfig(clock),
		},
		{
			name: "no BCC needs no geometry",
			cfg:  Config{UseBCC: false},
		},
		{
			name:    "UseBCC with zero BCCConfig",
			cfg:     Config{UseBCC: true},
			wantErr: "zero BCCConfig",
		},
		{
			name:    "UseBCC with no entries",
			cfg:     Config{UseBCC: true, BCC: BCCConfig{PagesPerEntry: 512, TagBits: 36}},
			wantErr: "entry",
		},
		{
			name:    "UseBCC with non-power-of-two sub-blocking",
			cfg:     Config{UseBCC: true, BCC: BCCConfig{Entries: 64, PagesPerEntry: 300, TagBits: 36}},
			wantErr: "not a power of two",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted an invalid config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
			// Every design's constructor must reject it too.
			for _, design := range Designs() {
				if _, cerr := NewArchitecture(design, "gpu0", tc.cfg, nil, nil, nil); cerr == nil {
					t.Errorf("design %q constructed with invalid config", design)
				}
			}
		})
	}
}
