package core

// Ordering tests for Figure 3d/3e: every flush a downgrade or completion
// orders must run BEFORE the Protection Table (and BCC) change, so the
// in-flight writebacks the flush produces are checked under the OLD
// permissions and reach memory. TestDowngradeFlushOrdering covers the
// selective-flush downgrade; these cover the full-flush variant and
// process completion.

import (
	"testing"

	"bordercontrol/internal/arch"
)

func TestFullFlushDowngradeOrdering(t *testing.T) {
	// SelectiveFlush=false (§3.2.4's alternative): the downgrade flushes
	// the WHOLE hierarchy, then zeroes the whole table. A dirty block of an
	// unrelated page written back mid-flush must still pass — its grant is
	// zeroed only after the flush returns.
	for _, useBCC := range []bool{true, false} {
		e := newBCEnv(t, func(c *Config) {
			c.SelectiveFlush = false
			c.UseBCC = useBCC
		})
		p := e.newProc(t)
		v, ppn := mapPage(t, p)
		v2, ppn2 := mapPage(t, p)
		e.bc.ProcessStart(p.ASID())
		e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)
		e.bc.OnTranslation(0, p.ASID(), v2.PageOf(), ppn2, arch.PermRW, false)

		downgraded, unrelated := false, false
		e.accel.onFlush = func(arch.PPN) {
			// Writebacks crossing mid-flush are hardware-initiated (ASID 0).
			downgraded = e.bc.Check(e.eng.Now(), 0, ppn.Base(), arch.Write).Allowed
			unrelated = e.bc.Check(e.eng.Now(), 0, ppn2.Base(), arch.Write).Allowed
		}
		if _, err := e.os.Protect(p, v, arch.PageSize, arch.PermRead); err != nil {
			t.Fatal(err)
		}
		if e.accel.fullFlushes != 1 {
			t.Fatalf("useBCC=%v: full flush not requested", useBCC)
		}
		if !downgraded {
			t.Errorf("useBCC=%v: mid-flush writeback of the downgraded page blocked (table updated before flush)", useBCC)
		}
		if !unrelated {
			t.Errorf("useBCC=%v: mid-flush writeback of an unrelated page blocked (table zeroed before flush)", useBCC)
		}
		// After the downgrade, the whole table is zero: both pages blocked.
		for _, page := range []arch.PPN{ppn, ppn2} {
			if e.bc.Check(e.eng.Now(), 0, page.Base(), arch.Write).Allowed {
				t.Errorf("useBCC=%v: write to %#x allowed after full-flush downgrade", useBCC, page)
			}
		}
	}
}

func TestProcessCompleteFlushUnderOldPerms(t *testing.T) {
	// Figure 3e: completion orders a full flush FIRST, then zeroes and
	// frees the table. The flush's in-flight writebacks carry no process
	// context (ASID 0) and must pass under the still-populated table;
	// afterwards nothing passes and the table is gone.
	for _, useBCC := range []bool{true, false} {
		e := newBCEnv(t, func(c *Config) { c.UseBCC = useBCC })
		p := e.newProc(t)
		v, ppn := mapPage(t, p)
		e.bc.ProcessStart(p.ASID())
		e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)

		wbAllowed := false
		e.accel.onFlush = func(arch.PPN) {
			wbAllowed = e.bc.Check(e.eng.Now(), 0, ppn.Base(), arch.Write).Allowed
		}
		e.bc.ProcessComplete(e.eng.Now(), p.ASID())
		if e.accel.fullFlushes != 1 || e.accel.tlbAll != 1 {
			t.Fatalf("useBCC=%v: completion must flush caches and TLB", useBCC)
		}
		if !wbAllowed {
			t.Errorf("useBCC=%v: completion's in-flight writeback blocked (table zeroed before flush)", useBCC)
		}
		if e.bc.Table() != nil {
			t.Errorf("useBCC=%v: table not freed after last process completed", useBCC)
		}
		if e.bc.Check(e.eng.Now(), p.ASID(), ppn.Base(), arch.Read).Allowed {
			t.Errorf("useBCC=%v: read allowed after completion revoked everything", useBCC)
		}
	}
}
