package core

import (
	"fmt"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/stats"
)

// BCCConfig describes a Border Control Cache geometry.
type BCCConfig struct {
	// Entries is the number of cache entries (64 in the paper's 8 KB BCC).
	Entries int
	// PagesPerEntry is the sub-blocking factor: how many consecutive
	// physical pages one entry covers (512 in the paper, i.e. one 128-byte
	// table block). Must be a power of two no larger than PagesPerBlock.
	PagesPerEntry int
	// TagBits sizes the per-entry tag for SizeBytes; the paper uses 36.
	TagBits int
}

// DefaultBCCConfig is the paper's 8 KB BCC: 64 entries of 512 pages.
func DefaultBCCConfig() BCCConfig {
	return BCCConfig{Entries: 64, PagesPerEntry: 512, TagBits: 36}
}

// Validate checks the configuration.
func (c BCCConfig) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("core: BCC needs at least one entry, got %d", c.Entries)
	}
	p := c.PagesPerEntry
	if p <= 0 || p > PagesPerBlock || p&(p-1) != 0 {
		return fmt.Errorf("core: BCC pages/entry %d not a power of two in [1,%d]", p, PagesPerBlock)
	}
	if c.TagBits <= 0 {
		return fmt.Errorf("core: BCC tag bits must be positive, got %d", c.TagBits)
	}
	return nil
}

// SizeBytes returns the BCC's storage cost: per entry, a tag plus two
// permission bits per covered page (the Figure 6 x-axis).
func (c BCCConfig) SizeBytes() float64 {
	bitsPerEntry := float64(c.TagBits + bitsPerPage*c.PagesPerEntry)
	return float64(c.Entries) * bitsPerEntry / 8
}

type bccEntry struct {
	valid bool
	tag   uint64 // ppn / PagesPerEntry
	lru   uint64
	perms []arch.Perm
}

// BCC is the Border Control Cache: a small, fully-associative,
// explicitly-managed cache of Protection Table blocks (paper §3.1.2). It
// requires no hardware coherence because Border Control itself performs
// every update (write-through to the table).
type BCC struct {
	cfg     BCCConfig
	entries []bccEntry
	tick    uint64

	// CheckHitMiss counts probes made while checking memory requests — the
	// Figure 6 miss ratio.
	CheckHitMiss stats.HitMiss
	// Fills counts entry allocations (each costs one table-block read).
	Fills stats.Counter
	// WriteThroughs counts permission updates propagated to the table.
	WriteThroughs stats.Counter
}

// NewBCC returns an empty BCC.
func NewBCC(cfg BCCConfig) (*BCC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &BCC{cfg: cfg, entries: make([]bccEntry, cfg.Entries)}
	for i := range b.entries {
		b.entries[i].perms = make([]arch.Perm, cfg.PagesPerEntry)
	}
	return b, nil
}

// Config returns the geometry.
func (b *BCC) Config() BCCConfig { return b.cfg }

func (b *BCC) tagOf(ppn arch.PPN) uint64 { return uint64(ppn) / uint64(b.cfg.PagesPerEntry) }
func (b *BCC) slotOf(ppn arch.PPN) int   { return int(uint64(ppn) % uint64(b.cfg.PagesPerEntry)) }

func (b *BCC) find(ppn arch.PPN) *bccEntry {
	t := b.tagOf(ppn)
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].tag == t {
			return &b.entries[i]
		}
	}
	return nil
}

// Probe looks up the cached permissions for ppn during a request check.
func (b *BCC) Probe(ppn arch.PPN) (arch.Perm, bool) {
	e := b.find(ppn)
	if e == nil {
		b.CheckHitMiss.Record(false)
		return arch.PermNone, false
	}
	b.tick++
	e.lru = b.tick
	b.CheckHitMiss.Record(true)
	return e.perms[b.slotOf(ppn)], true
}

// victim returns the LRU entry.
func (b *BCC) victim() *bccEntry {
	v := &b.entries[0]
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			return e
		}
		if e.lru < v.lru {
			v = e
		}
	}
	return v
}

// Fill allocates an entry for ppn's group, loading the permissions from the
// table. It returns the entry's cached permission for ppn. The caller
// charges the table-block read.
func (b *BCC) Fill(ppn arch.PPN, table *ProtectionTable) arch.Perm {
	b.Fills.Inc()
	e := b.victim()
	b.tick++
	e.valid = true
	e.tag = b.tagOf(ppn)
	e.lru = b.tick
	base := arch.PPN(e.tag * uint64(b.cfg.PagesPerEntry))
	for i := 0; i < b.cfg.PagesPerEntry; i++ {
		p := base + arch.PPN(i)
		if table.InBounds(p) {
			e.perms[i] = table.Lookup(p)
		} else {
			e.perms[i] = arch.PermNone
		}
	}
	return e.perms[b.slotOf(ppn)]
}

// Update applies a translation insertion (paper Figure 3b): widen the
// cached permissions for ppn, filling the entry first on a miss. It
// reports whether the cached bits changed (a change is written through to
// the table by the caller).
func (b *BCC) Update(ppn arch.PPN, perm arch.Perm, table *ProtectionTable) (changed bool, filled bool) {
	perm = perm.Border()
	e := b.find(ppn)
	if e == nil {
		b.Fill(ppn, table)
		e = b.find(ppn)
		filled = true
	}
	b.tick++
	e.lru = b.tick
	slot := b.slotOf(ppn)
	if e.perms[slot]|perm != e.perms[slot] {
		e.perms[slot] |= perm
		b.WriteThroughs.Inc()
		return true, filled
	}
	return false, filled
}

// Downgrade overwrites the cached permission for ppn, if present. The
// caller performs this only after the accelerator flush completes (paper
// §3.2.4).
func (b *BCC) Downgrade(ppn arch.PPN, perm arch.Perm) {
	if e := b.find(ppn); e != nil {
		e.perms[b.slotOf(ppn)] = perm.Border()
	}
}

// InvalidateAll empties the BCC (full-flush downgrades, process
// completion).
func (b *BCC) InvalidateAll() {
	for i := range b.entries {
		b.entries[i].valid = false
	}
}

// ValidEntries returns the number of valid entries (for tests).
func (b *BCC) ValidEntries() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

// RegisterMetrics publishes the BCC's counters under s ("hits", "misses",
// "miss_ratio", "fills", "write_throughs" within the given scope).
func (b *BCC) RegisterMetrics(s stats.Scope) {
	s.HitMiss("", &b.CheckHitMiss)
	s.Counter("fills", &b.Fills)
	s.Counter("write_throughs", &b.WriteThroughs)
}
