package core

import (
	"math"
	"testing"

	"bordercontrol/internal/arch"
)

func TestBCCConfigValidation(t *testing.T) {
	bad := []BCCConfig{
		{Entries: 0, PagesPerEntry: 512, TagBits: 36},
		{Entries: 4, PagesPerEntry: 0, TagBits: 36},
		{Entries: 4, PagesPerEntry: 3, TagBits: 36},    // not a power of two
		{Entries: 4, PagesPerEntry: 1024, TagBits: 36}, // beyond a table block
		{Entries: 4, PagesPerEntry: 512, TagBits: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if err := DefaultBCCConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestBCCSizeBytes(t *testing.T) {
	// The paper's 8 KB BCC: 64 entries x (36-bit tag + 1024 permission
	// bits) = 8480 bytes ~ 8 KB.
	got := DefaultBCCConfig().SizeBytes()
	if math.Abs(got-8480) > 1 {
		t.Errorf("default BCC size = %v bytes, want 8480", got)
	}
	// 1 page/entry: tag dominates (36+2 bits per entry).
	c := BCCConfig{Entries: 8, PagesPerEntry: 1, TagBits: 36}
	if math.Abs(c.SizeBytes()-38) > 0.01 {
		t.Errorf("tiny BCC size = %v, want 38", c.SizeBytes())
	}
}

func TestBCCProbeFill(t *testing.T) {
	pt, _ := newPT(t, 4096)
	pt.Set(100, arch.PermRW)
	pt.Set(101, arch.PermRead)
	bcc, err := NewBCC(DefaultBCCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := bcc.Probe(100); hit {
		t.Error("empty BCC should miss")
	}
	if got := bcc.Fill(100, pt); got != arch.PermRW {
		t.Errorf("fill returned %v", got)
	}
	// Page 101 lives in the same 512-page entry: sub-blocking makes it hit.
	p, hit := bcc.Probe(101)
	if !hit || p != arch.PermRead {
		t.Errorf("sub-blocked neighbor: hit=%v perm=%v", hit, p)
	}
	// Page 512 is the next entry: miss.
	if _, hit := bcc.Probe(512); hit {
		t.Error("different entry group should miss")
	}
	if bcc.CheckHitMiss.Misses.Value() != 2 || bcc.CheckHitMiss.Hits.Value() != 1 {
		t.Error("stats wrong")
	}
}

func TestBCCUpdate(t *testing.T) {
	pt, _ := newPT(t, 4096)
	bcc, _ := NewBCC(DefaultBCCConfig())
	// Miss -> fill, then widen.
	changed, filled := bcc.Update(7, arch.PermRead, pt)
	if !filled || !changed {
		t.Errorf("first update: changed=%v filled=%v", changed, filled)
	}
	// Same perm again: no change, no fill.
	changed, filled = bcc.Update(7, arch.PermRead, pt)
	if filled || changed {
		t.Errorf("redundant update: changed=%v filled=%v", changed, filled)
	}
	// Widening on a present entry: change, no fill.
	changed, filled = bcc.Update(7, arch.PermWrite, pt)
	if filled || !changed {
		t.Errorf("widening update: changed=%v filled=%v", changed, filled)
	}
	if p, hit := bcc.Probe(7); !hit || p != arch.PermRW {
		t.Errorf("after updates: hit=%v perm=%v", hit, p)
	}
}

func TestBCCDowngrade(t *testing.T) {
	pt, _ := newPT(t, 4096)
	bcc, _ := NewBCC(DefaultBCCConfig())
	bcc.Update(9, arch.PermRW, pt)
	bcc.Downgrade(9, arch.PermRead)
	if p, hit := bcc.Probe(9); !hit || p != arch.PermRead {
		t.Errorf("after downgrade: hit=%v perm=%v", hit, p)
	}
	// Downgrading an uncached page is a no-op, not a fill.
	bcc.Downgrade(5000, arch.PermNone)
	if bcc.ValidEntries() != 1 {
		t.Error("downgrade must not allocate entries")
	}
}

func TestBCCInvalidateAll(t *testing.T) {
	pt, _ := newPT(t, 4096)
	bcc, _ := NewBCC(DefaultBCCConfig())
	bcc.Update(1, arch.PermRead, pt)
	bcc.Update(600, arch.PermRead, pt)
	if bcc.ValidEntries() != 2 {
		t.Fatalf("valid = %d", bcc.ValidEntries())
	}
	bcc.InvalidateAll()
	if bcc.ValidEntries() != 0 {
		t.Error("invalidate all failed")
	}
	if _, hit := bcc.Probe(1); hit {
		t.Error("probe hit after invalidate")
	}
}

func TestBCCLRU(t *testing.T) {
	pt, _ := newPT(t, 1<<20)
	cfg := BCCConfig{Entries: 2, PagesPerEntry: 512, TagBits: 36}
	bcc, _ := NewBCC(cfg)
	bcc.Fill(0, pt)    // group 0
	bcc.Fill(512, pt)  // group 1
	bcc.Probe(0)       // touch group 0
	bcc.Fill(1024, pt) // group 2 evicts LRU (group 1)
	if _, hit := bcc.Probe(513); hit {
		t.Error("LRU group should have been evicted")
	}
	if _, hit := bcc.Probe(1); !hit {
		t.Error("recently used group should survive")
	}
}

func TestBCCFillReflectsTable(t *testing.T) {
	// A fill loads current table contents for the whole group; pages set
	// after the fill are not visible until a refill (Border Control
	// write-throughs keep them in sync in practice).
	pt, _ := newPT(t, 4096)
	pt.Set(10, arch.PermRW)
	bcc, _ := NewBCC(DefaultBCCConfig())
	bcc.Fill(0, pt)
	if p, hit := bcc.Probe(10); !hit || p != arch.PermRW {
		t.Errorf("fill missed table contents: hit=%v perm=%v", hit, p)
	}
}

func TestBCCBoundsClamped(t *testing.T) {
	// A group straddling the bounds register only caches in-bounds pages.
	pt, _ := newPT(t, 600) // bounds inside group 1 (512..1023)
	pt.Set(599, arch.PermRead)
	bcc, _ := NewBCC(DefaultBCCConfig())
	bcc.Fill(599, pt)
	if p, hit := bcc.Probe(599); !hit || p != arch.PermRead {
		t.Error("in-bounds page of boundary group wrong")
	}
	if p, hit := bcc.Probe(700); !hit || p != arch.PermNone {
		t.Error("out-of-bounds page of boundary group must read none")
	}
}
