package core

// The BCC is architecturally a pure cache over the Protection Table (paper
// §3.1.2): it may change when a check completes, never what it decides.
// These property tests drive a BCC-enabled border and a table-direct
// (BC-noBCC) border through identical random Figure 3 op sequences and
// require identical grant/deny logs; runBorderOps additionally pins both
// final table states to the flat-map oracle, so the tables agree too.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// purityLogs runs one op sequence on both configurations of one design and
// returns the two decision logs.
func purityLogs(t *testing.T, data []byte) (withBCC, noBCC []bool) {
	return purityLogsDesign(t, DefaultDesign, data)
}

func purityLogsDesign(t *testing.T, design string, data []byte) (withBCC, noBCC []bool) {
	t.Helper()
	var logs [2][]bool
	for i, use := range []bool{true, false} {
		e := newDesignEnv(t, design, func(c *Config) { c.UseBCC = use })
		p := e.newProc(t)
		if err := e.arch.ProcessStart(p.ASID()); err != nil {
			t.Fatal(err)
		}
		logs[i] = runBorderOps(t, e, p.ASID(), data)
	}
	return logs[0], logs[1]
}

func sameDecisions(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBCCIsPureCache is the quick-check form: arbitrary op bytes, run for
// every registered border design (each design's lookaside must be a pure
// cache over its own authoritative state).
func TestBCCIsPureCache(t *testing.T) {
	for _, design := range Designs() {
		design := design
		t.Run(design, func(t *testing.T) {
			f := func(data []byte) bool {
				a, b := purityLogsDesign(t, design, data)
				return sameDecisions(a, b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("design %q: BCC changed a security decision: %v", design, err)
			}
		})
	}
}

// TestBCCIsPureCacheLongSequences stresses longer seeded sequences than
// quick generates, with enough ops to force BCC evictions (the op domain
// spans two 512-page entries, the default BCC holds 64, but downgrade /
// complete churn exercises invalidation paths), across every design.
func TestBCCIsPureCacheLongSequences(t *testing.T) {
	for _, design := range Designs() {
		design := design
		t.Run(design, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewSource(seed))
				data := make([]byte, 2048)
				rng.Read(data)
				a, b := purityLogsDesign(t, design, data)
				if len(a) == 0 {
					t.Fatalf("seed %d: sequence made no checks", seed)
				}
				if !sameDecisions(a, b) {
					t.Errorf("seed %d: BCC-enabled and table-direct decisions diverge", seed)
				}
			}
		})
	}
}
