package core

import (
	"fmt"
	"sort"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
)

// RangeBorder is a range-compressed protection architecture: instead of
// walking a flat 2-bits-per-page Protection Table spread over megabytes of
// DRAM, the checker walks a compact balanced tree of coalesced permission
// ranges (the huge-page-aware encoding of ROADMAP item 4, grown from the
// Mondriaan-style Segment of altperm.go). Accelerator working sets are
// granted as a handful of contiguous buffers, so the whole structure stays
// a few DRAM rows wide: every walk level after the first hits the open
// row, and the walk is one or two narrow reads instead of a scattered
// block fetch.
//
// In front of the grant path sits a small declarative per-ASID Policy
// (default action + ordered rules, modeled on sbx's egress-policy schema),
// compiled once into disjoint breakpoints consulted in O(log rules) at
// grant-admission time. The policy clamps what a translation may insert
// into the union window; it never runs on the per-request fast path, so
// Check stays exactly the paper's Figure 3c decision.
//
// Functionally the flat Protection Table remains the authoritative
// decision store (decisions are byte-for-byte the flat design's under the
// default allow-all policy — the property the differential fuzz oracle
// checks); the range set mirrors it for the timing model and the
// compression metrics. See DESIGN.md §14 for the contract.
type RangeBorder struct {
	*BorderControl

	// ranges is the sorted, disjoint, coalesced mirror of the granted
	// union window; its cardinality drives the modeled walk depth.
	ranges []permRange
	// policies holds the compiled grant-admission policy per ASID; a nil
	// entry (or no entry) admits everything.
	policies map[arch.ASID]*CompiledPolicy

	// PolicyDrops counts grants fully refused by the policy; RangeUpdates
	// counts range-set mutations; NodesHighWater tracks the largest range
	// count seen (the compression result).
	PolicyDrops    stats.Counter
	RangeUpdates   stats.Counter
	NodesHighWater stats.Counter
	nodesHW        uint64
}

// permRange covers [lo, hi) with perm.
type permRange struct {
	lo, hi arch.PPN
	perm   arch.Perm
}

const (
	// rangeFanout is the modeled search-tree fan-out; walk depth grows by
	// one level per factor-of-rangeFanout ranges.
	rangeFanout = 16
	// maxWalkLevels caps the modeled walk depth.
	maxWalkLevels = 3
)

var _ ProtectionArchitecture = (*RangeBorder)(nil)

// NewRangeBorder returns the range/policy design for the named accelerator.
func NewRangeBorder(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (*RangeBorder, error) {
	bc, err := New(name, cfg, os, dram, eng)
	if err != nil {
		return nil, err
	}
	return &RangeBorder{BorderControl: bc, policies: make(map[arch.ASID]*CompiledPolicy)}, nil
}

// Design identifies this implementation in the design registry.
func (rb *RangeBorder) Design() string { return "range" }

// SetPolicy compiles and installs the grant-admission policy for one
// address space. It applies to future grants only: permissions already in
// the union window stay until downgraded (revocation is the OS's job,
// Figure 3d, not the policy's).
func (rb *RangeBorder) SetPolicy(asid arch.ASID, p Policy) error {
	cp, err := p.Compile()
	if err != nil {
		return err
	}
	rb.policies[asid] = cp
	return nil
}

// OnTranslation clamps the grant through the ASID's compiled policy, then
// widens the union window. A huge grant coalesces into one range node —
// one narrow posted write — instead of the flat design's block
// write-through.
func (rb *RangeBorder) OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	if !rb.active[asid] || rb.table == nil {
		return
	}
	pol := rb.policies[asid]
	if huge {
		head := ppn - ppn%arch.PagesPerHugePage
		rb.Insertions.Inc()
		granted := false
		for i := arch.PPN(0); i < arch.PagesPerHugePage; i++ {
			p := pol.Clamp(head+i, perm)
			if p.Border() == arch.PermNone {
				continue
			}
			granted = true
			rb.table.Merge(head+i, p)
			if rb.bcc != nil {
				rb.bcc.Update(head+i, p, rb.table)
			}
			rb.addRange(head+i, head+i+1, p)
		}
		if !granted {
			rb.PolicyDrops.Inc()
			return
		}
		rb.TableWrites.Inc()
		rb.dram.AccessDoneBytes(rb.eng.Now(), rb.tableBase.Base(), arch.Write, 8)
		return
	}
	p := pol.Clamp(ppn, perm)
	if p.Border() == arch.PermNone && perm.Border() != arch.PermNone {
		rb.PolicyDrops.Inc()
		return
	}
	rb.insertRange(at, ppn, p)
}

// insertRange is the base-page grant path: same widen-only table/BCC state
// transitions as the flat design's insert, but the bookkeeping traffic
// goes to the compact range structure at the table base (row-resident)
// instead of a scattered table entry.
func (rb *RangeBorder) insertRange(at sim.Time, ppn arch.PPN, perm arch.Perm) {
	rb.Insertions.Inc()
	if !rb.table.InBounds(ppn) {
		return
	}
	if rb.TraceSink != nil {
		rb.TraceSink(TraceEvent{Insert: true, PPN: ppn, Perm: perm})
	}
	changed := rb.table.Merge(ppn, perm)
	if rb.bcc != nil {
		if _, filled := rb.bcc.Update(ppn, perm, rb.table); filled {
			rb.TableReads.Inc()
			rb.dram.AccessDoneBytes(rb.eng.Now(), rb.tableBase.Base(), arch.Read, 8)
		}
	} else {
		rb.TableReads.Inc()
		rb.dram.AccessDoneBytes(rb.eng.Now(), rb.tableBase.Base(), arch.Read, 8)
	}
	if changed {
		rb.addRange(ppn, ppn+1, perm)
		rb.TableWrites.Inc()
		rb.dram.AccessDoneBytes(rb.eng.Now(), rb.tableBase.Base(), arch.Write, 8)
	}
}

// Check is the paper's Figure 3c decision over the authoritative table,
// with the walk cost of the compact range tree: one narrow row-resident
// read per level, depth logarithmic in the coalesced range count.
func (rb *RangeBorder) Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision {
	rb.Checks.Inc()
	if kind == arch.Write {
		rb.WriteChecks.Inc()
	} else {
		rb.ReadChecks.Inc()
	}
	if rb.pr != nil {
		rb.pr.Enter("border/check")
		defer rb.pr.Exit()
	}
	if rb.disabled || rb.table == nil {
		d := rb.deny(at, asid, addr, kind)
		rb.recordLatency(&rb.DeniedLatency, at, d.Done, asid)
		return d
	}
	ppn := addr.PageOf()
	if rb.TraceSink != nil {
		rb.TraceSink(TraceEvent{PPN: ppn, Kind: kind})
	}
	if !rb.table.InBounds(ppn) {
		d := rb.deny(at, asid, addr, kind)
		rb.recordLatency(&rb.DeniedLatency, at, d.Done, asid)
		return d
	}
	var perm arch.Perm
	walked := false
	done := at
	if rb.bcc != nil {
		done += rb.cfg.BCCLatency
		if rb.pr != nil {
			rb.pr.Span("border/bcc", uint64(rb.cfg.BCCLatency))
		}
		p, hit := rb.bcc.Probe(ppn)
		if hit {
			perm = p
		} else {
			perm = rb.bcc.Fill(ppn, rb.table)
			rb.TableReads.Inc()
			walked = true
			walkStart := done
			done = rb.rangeWalk(done)
			if rb.pr != nil {
				rb.pr.Span("host/rangewalk", uint64(done-walkStart))
			}
		}
	} else {
		rb.TableReads.Inc()
		perm = rb.table.Lookup(ppn)
		walked = true
		done = rb.rangeWalk(at)
		if rb.pr != nil {
			rb.pr.Span("host/rangewalk", uint64(done-at))
		}
	}
	if !perm.Allows(kind.Need()) {
		d := rb.deny(done, asid, addr, kind)
		rb.recordLatency(&rb.DeniedLatency, at, d.Done, asid)
		return d
	}
	if walked {
		rb.recordLatency(&rb.WalkLatency, at, done, asid)
	} else {
		rb.recordLatency(&rb.HitLatency, at, done, asid)
	}
	if rb.trChecks {
		name := "check read"
		if kind == arch.Write {
			name = "check write"
		}
		rb.tr.Complete("border.check", name, uint64(at), uint64(done-at))
	}
	return Decision{Allowed: true, Done: done}
}

// rangeWalk charges one narrow DRAM read per modeled tree level. The node
// array lives compactly at the table base, so successive levels land in
// the same DRAM row.
func (rb *RangeBorder) rangeWalk(at sim.Time) sim.Time {
	levels := 1
	for n := len(rb.ranges); n > rangeFanout && levels < maxWalkLevels; n /= rangeFanout {
		levels++
	}
	done := at
	for i := 0; i < levels; i++ {
		done = rb.dram.AccessDoneBytes(done, rb.tableBase.Base()+arch.Phys(i*arch.BlockSize), arch.Read, 8)
	}
	return done + rb.cfg.TableLatency
}

// OnDowngrade delegates the Figure 3d flush-before-narrow protocol to the
// embedded design (the table is authoritative), then narrows the range
// mirror to match.
func (rb *RangeBorder) OnDowngrade(d hostos.Downgrade) {
	if !rb.active[d.ASID] || rb.table == nil || !rb.table.InBounds(d.PPN) {
		rb.BorderControl.OnDowngrade(d)
		return
	}
	full := !rb.cfg.SelectiveFlush && rb.table.Lookup(d.PPN).CanWrite()
	rb.BorderControl.OnDowngrade(d)
	if full {
		// The full-flush variant zeroed the whole table.
		rb.ranges = rb.ranges[:0]
		rb.RangeUpdates.Inc()
		return
	}
	rb.setRange(d.PPN, d.PPN+1, d.New)
}

// ProcessComplete delegates Figure 3e (the range mirror, like the table,
// stays live through the completion flush) and then drops every range.
func (rb *RangeBorder) ProcessComplete(at sim.Time, asid arch.ASID) sim.Time {
	if !rb.active[asid] {
		return at
	}
	done := rb.BorderControl.ProcessComplete(at, asid)
	rb.ranges = rb.ranges[:0]
	return done
}

// RangeCount returns how many coalesced ranges currently encode the union
// window — the compression the design is racing on.
func (rb *RangeBorder) RangeCount() int { return len(rb.ranges) }

// RegisterMetrics publishes the flat counters plus the range/policy stats.
func (rb *RangeBorder) RegisterMetrics(st stats.Scope) {
	rb.BorderControl.RegisterMetrics(st)
	rs := st.Scope("range")
	rs.Counter("policy_drops", &rb.PolicyDrops)
	rs.Counter("updates", &rb.RangeUpdates)
	rs.Counter("nodes_high_water", &rb.NodesHighWater)
}

// addRange unions [lo, hi)×perm into the sorted disjoint range set,
// coalescing equal-permission neighbors.
func (rb *RangeBorder) addRange(lo, hi arch.PPN, perm arch.Perm) {
	perm = perm.Border()
	if perm == arch.PermNone || lo >= hi {
		return
	}
	var out []permRange
	add := func(l, h arch.PPN, p arch.Perm) {
		if l >= h || p == arch.PermNone {
			return
		}
		if n := len(out); n > 0 && out[n-1].hi == l && out[n-1].perm == p {
			out[n-1].hi = h
			return
		}
		out = append(out, permRange{l, h, p})
	}
	cur := permRange{lo: lo, hi: hi, perm: perm}
	placed := false
	for _, r := range rb.ranges {
		if placed || r.hi <= cur.lo {
			add(r.lo, r.hi, r.perm)
			continue
		}
		if r.lo >= cur.hi {
			add(cur.lo, cur.hi, cur.perm)
			placed = true
			add(r.lo, r.hi, r.perm)
			continue
		}
		// Overlap: emit the leading non-overlap, the unioned overlap, and
		// carry or emit the trailing piece.
		if r.lo < cur.lo {
			add(r.lo, cur.lo, r.perm)
		} else if cur.lo < r.lo {
			add(cur.lo, r.lo, cur.perm)
		}
		olo, ohi := max(r.lo, cur.lo), min(r.hi, cur.hi)
		add(olo, ohi, r.perm|cur.perm)
		switch {
		case r.hi > ohi:
			add(ohi, r.hi, r.perm)
			placed = true
		case cur.hi > ohi:
			cur = permRange{lo: ohi, hi: cur.hi, perm: cur.perm}
		default:
			placed = true
		}
	}
	if !placed {
		add(cur.lo, cur.hi, cur.perm)
	}
	rb.ranges = out
	rb.RangeUpdates.Inc()
	if n := uint64(len(out)); n > rb.nodesHW {
		rb.NodesHighWater.Add(n - rb.nodesHW)
		rb.nodesHW = n
	}
}

// setRange overwrites [lo, hi) with perm (PermNone removes coverage).
func (rb *RangeBorder) setRange(lo, hi arch.PPN, perm arch.Perm) {
	var out []permRange
	for _, r := range rb.ranges {
		if r.hi <= lo || r.lo >= hi {
			out = append(out, r)
			continue
		}
		if r.lo < lo {
			out = append(out, permRange{lo: r.lo, hi: lo, perm: r.perm})
		}
		if r.hi > hi {
			out = append(out, permRange{lo: hi, hi: r.hi, perm: r.perm})
		}
	}
	rb.ranges = out
	rb.RangeUpdates.Inc()
	if perm.Border() != arch.PermNone {
		rb.addRange(lo, hi, perm)
	}
}

// PolicyAction says what a policy rule (or the policy default) does with a
// grant: admit it, strip it to read-only, or refuse it.
type PolicyAction uint8

const (
	// PolicyAllow admits the grant unchanged.
	PolicyAllow PolicyAction = iota
	// PolicyReadOnly strips the write bit from the grant.
	PolicyReadOnly
	// PolicyDeny refuses the grant entirely.
	PolicyDeny
)

// Mask returns the most permissive border grant the action admits.
func (a PolicyAction) Mask() arch.Perm {
	switch a {
	case PolicyAllow:
		return arch.PermRW
	case PolicyReadOnly:
		return arch.PermRead
	default:
		return arch.PermNone
	}
}

// String names the action in policy error messages.
func (a PolicyAction) String() string {
	switch a {
	case PolicyAllow:
		return "allow"
	case PolicyReadOnly:
		return "read-only"
	case PolicyDeny:
		return "deny"
	default:
		return fmt.Sprintf("PolicyAction(%d)", uint8(a))
	}
}

// PolicyRule scopes an action to a physical page range. Rules are ordered:
// the first rule covering a page wins, as in sbx's egress rule list.
type PolicyRule struct {
	Base   arch.PPN
	Pages  uint64
	Action PolicyAction
}

// Policy is the declarative per-ASID grant-admission policy: a default
// action plus ordered first-match-wins rules, the sbx egress-policy shape
// applied to border grants. Compile it once; the result answers in
// O(log breakpoints) at grant time and never touches the check fast path.
type Policy struct {
	Default PolicyAction
	Rules   []PolicyRule
}

// CompiledPolicy is a Policy flattened into sorted disjoint breakpoints.
// The zero/nil CompiledPolicy admits everything.
type CompiledPolicy struct {
	segs []policySeg
	def  arch.Perm
}

type policySeg struct {
	lo, hi arch.PPN
	mask   arch.Perm
}

// Compile validates the policy and resolves rule order into disjoint
// intervals: each rule claims whatever part of its range no earlier rule
// already claimed.
func (p Policy) Compile() (*CompiledPolicy, error) {
	if p.Default > PolicyDeny {
		return nil, fmt.Errorf("core: policy default %v is not a valid action", p.Default)
	}
	cp := &CompiledPolicy{def: p.Default.Mask()}
	for i, r := range p.Rules {
		if r.Pages == 0 {
			return nil, fmt.Errorf("core: policy rule %d (%v at %#x) covers zero pages", i, r.Action, r.Base)
		}
		if r.Action > PolicyDeny {
			return nil, fmt.Errorf("core: policy rule %d has invalid action %v", i, r.Action)
		}
		lo, hi := r.Base, r.Base+arch.PPN(r.Pages)
		if hi < lo {
			return nil, fmt.Errorf("core: policy rule %d (%v at %#x + %d pages) wraps the address space", i, r.Action, r.Base, r.Pages)
		}
		for _, free := range cp.unclaimed(lo, hi) {
			cp.segs = append(cp.segs, policySeg{lo: free.lo, hi: free.hi, mask: r.Action.Mask()})
		}
	}
	sort.Slice(cp.segs, func(i, j int) bool { return cp.segs[i].lo < cp.segs[j].lo })
	// Coalesce equal-mask neighbors so Clamp's binary search stays tight.
	out := cp.segs[:0]
	for _, s := range cp.segs {
		if n := len(out); n > 0 && out[n-1].hi == s.lo && out[n-1].mask == s.mask {
			out[n-1].hi = s.hi
			continue
		}
		out = append(out, s)
	}
	cp.segs = out
	return cp, nil
}

// unclaimed returns the sub-intervals of [lo, hi) not covered by any
// already-compiled segment (earlier rules win).
func (cp *CompiledPolicy) unclaimed(lo, hi arch.PPN) []policySeg {
	free := []policySeg{{lo: lo, hi: hi}}
	for _, s := range cp.segs {
		var next []policySeg
		for _, f := range free {
			if s.hi <= f.lo || s.lo >= f.hi {
				next = append(next, f)
				continue
			}
			if f.lo < s.lo {
				next = append(next, policySeg{lo: f.lo, hi: s.lo})
			}
			if f.hi > s.hi {
				next = append(next, policySeg{lo: s.hi, hi: f.hi})
			}
		}
		free = next
	}
	return free
}

// Clamp restricts a grant to what the policy admits for the page. A nil
// policy admits everything.
func (cp *CompiledPolicy) Clamp(ppn arch.PPN, perm arch.Perm) arch.Perm {
	if cp == nil {
		return perm
	}
	i := sort.Search(len(cp.segs), func(k int) bool { return cp.segs[k].hi > ppn })
	if i < len(cp.segs) && cp.segs[i].lo <= ppn {
		return perm & cp.segs[i].mask
	}
	return perm & cp.def
}
