package core

// Differential fuzzing of the Figure 3 event protocol. The oracle is the
// simplest possible permission model — a flat map[PPN]Perm — updated by the
// paper's rules: translations widen, downgrades overwrite after a flush,
// process completion zeroes everything, and a page the ATS never produced
// has no permissions (fail-closed). BorderControl, with all its machinery
// (Protection Table bit-packing, BCC sub-blocking, write-throughs, flush
// protocol), must make the identical grant/deny decision on every check and
// end every sequence with table state identical to the map.

import (
	"testing"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
)

// fuzzPages is the PPN domain ops are folded into: small enough for heavy
// collisions (BCC entries cover 512 pages, so two entries' worth), large
// enough to cross table-block boundaries. Must stay a multiple of
// PagesPerHugePage so huge fan-outs stay in bounds.
const fuzzPages = 2 * PagesPerBlock // 1024

// borderOracle mirrors what the Figure 3 protocol should grant.
type borderOracle map[arch.PPN]arch.Perm

// runBorderOps drives e.bc with the op sequence encoded in data, checking
// every decision against the oracle as it goes, and returns the decision
// log. Each op consumes 4 bytes: opcode, then three operand bytes.
func runBorderOps(t *testing.T, e *bcEnv, asid arch.ASID, data []byte) []bool {
	t.Helper()
	oracle := borderOracle{}
	var decisions []bool
	bogus := asid + 1 // never started on this border
	for i := 0; i+4 <= len(data); i += 4 {
		op, a, b, c := data[i]%8, data[i+1], data[i+2], data[i+3]
		ppn := arch.PPN(a) | arch.PPN(b&3)<<8 // 0..fuzzPages-1
		perm := arch.Perm(c % 4)
		who := asid
		if c&8 != 0 {
			who = bogus
		}
		switch op {
		case 0, 1: // OnTranslation (Figure 3b): permissions only widen.
			huge := c&0xf0 == 0x10
			e.arch.OnTranslation(e.eng.Now(), who, arch.VPN(a), ppn, perm, huge)
			if who != asid {
				break // inactive process: the border must ignore it
			}
			if huge {
				head := ppn - ppn%arch.PagesPerHugePage
				for j := arch.PPN(0); j < arch.PagesPerHugePage; j++ {
					oracle[head+j] |= perm.Border()
				}
			} else {
				oracle[ppn] |= perm.Border()
			}
		case 2: // Check (Figure 3c) inside bounds.
			kind := arch.Read
			if c&1 != 0 {
				kind = arch.Write
			}
			addr := ppn.Base() + arch.Phys(b)
			d := e.arch.Check(e.eng.Now(), asid, addr, kind)
			want := oracle[ppn].Allows(kind.Need())
			if d.Allowed != want {
				t.Fatalf("op %d: Check(ppn=%#x, %v) = %v, oracle (perm %v) says %v",
					i/4, ppn, kind, d.Allowed, oracle[ppn], want)
			}
			decisions = append(decisions, d.Allowed)
		case 3: // Check outside the bounds register: always a violation.
			addr := arch.Phys(e.os.Store().Size()) + ppn.Base()
			d := e.arch.Check(e.eng.Now(), asid, addr, arch.Read)
			if d.Allowed {
				t.Fatalf("op %d: out-of-bounds check of %#x allowed", i/4, addr)
			}
			decisions = append(decisions, d.Allowed)
		case 4: // OnDowngrade (Figure 3d): overwrite, flushing dirty pages first.
			flushes := len(e.accel.pageFlushes)
			e.arch.OnDowngrade(hostos.Downgrade{ASID: who, VPN: arch.VPN(a), PPN: ppn, New: perm})
			if who != asid {
				break
			}
			old := oracle[ppn]
			if old == arch.PermNone && perm.Border() == arch.PermNone {
				break // never granted: nothing cached, nothing to update
			}
			if old.CanWrite() {
				// The page may be dirty in the accelerator: the protocol
				// must flush it (writebacks re-checked under the old
				// permissions) before the table changes.
				if len(e.accel.pageFlushes) != flushes+1 || e.accel.pageFlushes[flushes] != ppn {
					t.Fatalf("op %d: downgrade of writable ppn %#x did not flush it (flush log %v)",
						i/4, ppn, e.accel.pageFlushes[flushes:])
				}
			}
			oracle[ppn] = perm.Border()
		case 5: // ProcessComplete + restart (Figure 3e/3a): zero everything.
			full := e.accel.fullFlushes
			e.arch.ProcessComplete(e.eng.Now(), asid)
			if e.accel.fullFlushes != full+1 {
				t.Fatalf("op %d: process completion did not flush the accelerator", i/4)
			}
			if err := e.arch.ProcessStart(asid); err != nil {
				t.Fatal(err)
			}
			oracle = borderOracle{}
		case 6: // Downgrade with a mid-flush probe: Figure 3d ordering. The
			// flush's in-flight writebacks (hardware-initiated, ASID 0) must
			// pass under the OLD permissions — the table changes only after
			// the flush returns.
			old := oracle[ppn]
			probed, midAllowed := false, false
			e.accel.onFlush = func(arch.PPN) {
				probed = true
				midAllowed = e.arch.Check(e.eng.Now(), 0, ppn.Base(), arch.Write).Allowed
			}
			e.arch.OnDowngrade(hostos.Downgrade{ASID: who, VPN: arch.VPN(a), PPN: ppn, New: perm})
			e.accel.onFlush = nil
			if who != asid {
				break
			}
			if probed && !midAllowed {
				t.Fatalf("op %d: mid-flush writeback of ppn %#x blocked (table updated before the flush; old perm %v)",
					i/4, ppn, old)
			}
			if old == arch.PermNone && perm.Border() == arch.PermNone {
				break
			}
			oracle[ppn] = perm.Border()
		case 7: // Cross-ASID replay: a request carrying a foreign ASID is
			// judged by the union permissions — the wire ASID grants nothing
			// — but a denial is blamed on the foreign requester, not on the
			// active process.
			kind := arch.Read
			if c&1 != 0 {
				kind = arch.Write
			}
			addr := ppn.Base() + arch.Phys(b)
			nv := len(e.os.Violations)
			d := e.arch.Check(e.eng.Now(), bogus, addr, kind)
			want := oracle[ppn].Allows(kind.Need())
			if d.Allowed != want {
				t.Fatalf("op %d: foreign-ASID Check(ppn=%#x, %v) = %v, union oracle says %v",
					i/4, ppn, kind, d.Allowed, want)
			}
			if !d.Allowed {
				if len(e.os.Violations) != nv+1 {
					t.Fatalf("op %d: denial logged %d violations, want 1", i/4, len(e.os.Violations)-nv)
				}
				if got := e.os.Violations[nv].ASID; got != bogus {
					t.Fatalf("op %d: denial blamed asid %d, want foreign requester %d", i/4, got, bogus)
				}
			}
			decisions = append(decisions, d.Allowed)
		}
	}
	// Final state equivalence: the design's effective permissions must
	// encode exactly the oracle across the whole fuzzed domain. PermAt is
	// the design-independent view (the flat table for "flat", table ∪
	// deferred ranges for "sparta", ...).
	for p := arch.PPN(0); p < fuzzPages; p++ {
		if got, want := e.arch.PermAt(p), oracle[p]; got != want {
			t.Fatalf("final border state diverges at ppn %#x: design %v, oracle %v", p, got, want)
		}
	}
	return decisions
}

// FuzzBorderCheck fuzzes random Figure 3 op sequences against the flat-map
// oracle, once with the BCC and once without (the useBCC argument), so both
// the cached and the table-direct check paths stay protocol-correct. Extend
// the corpus under testdata/fuzz/FuzzBorderCheck, or run
// `go test -fuzz FuzzBorderCheck ./internal/core` and commit what it finds.
func FuzzBorderCheck(f *testing.F) {
	// translate ppn=5 RW; check read+write; downgrade to R (flush); check
	// write (deny); complete (zero); check read (deny).
	f.Add(true, []byte{
		0, 5, 0, 3,
		2, 5, 0, 0,
		2, 5, 0, 1,
		4, 5, 0, 1,
		2, 5, 0, 1,
		5, 0, 0, 0,
		2, 5, 0, 0,
	})
	// huge-page fan-out, then checks across the covered range and a
	// same-block neighbour, then an out-of-bounds probe.
	f.Add(false, []byte{
		0, 0, 0, 0x13,
		2, 0, 1, 0,
		2, 255, 1, 1,
		3, 9, 0, 0,
	})
	// inactive-ASID traffic must be ignored; downgrade of a never-granted
	// page is a no-op.
	f.Add(true, []byte{
		0, 7, 0, 11,
		2, 7, 0, 0,
		4, 9, 0, 8,
		2, 9, 0, 0,
	})
	// downgrade-during-flush (op 6): grant RW, dirty-downgrade to R with
	// the mid-flush ordering probe, then a foreign-ASID write replay of the
	// downgraded page (op 7): denied and blamed on the foreigner.
	f.Add(true, []byte{
		0, 5, 0, 3,
		6, 5, 0, 1,
		7, 5, 0, 1,
	})
	// cross-ASID replay after completion: grant, complete (table zeroed),
	// then foreign read and write replays — both denied, both attributed.
	f.Add(false, []byte{
		0, 9, 0, 3,
		5, 0, 0, 0,
		7, 9, 0, 0,
		7, 9, 0, 1,
	})
	// Range-grant boundaries, low edge: a huge grant covering pages
	// [0,512), then checks at page 0, at the last covered page (511 =
	// 255|1<<8), at the first uncovered page (512 = 0|2<<8, denied), and a
	// downgrade of the head page (deferred/range designs must split the
	// grant, not drop it).
	f.Add(true, []byte{
		0, 0, 0, 0x13,
		2, 0, 0, 0,
		2, 255, 1, 1,
		2, 0, 2, 0,
		4, 0, 0, 1,
		2, 255, 1, 1,
	})
	// Range-grant boundaries, high edge: a huge grant whose head folds to
	// page 512 (the top half of the fuzz domain), a single-page grant
	// abutting it from below at 511, checks straddling the 511|512 seam
	// and at the domain's last page (1023), then a downgrade to PermNone
	// at the seam.
	f.Add(false, []byte{
		0, 0, 2, 0x13,
		0, 255, 1, 1,
		2, 255, 1, 0,
		2, 0, 2, 1,
		2, 255, 3, 0,
		4, 0, 2, 0,
		2, 0, 2, 0,
	})
	f.Fuzz(func(t *testing.T, useBCC bool, data []byte) {
		if len(data) > 4096 {
			return
		}
		// Every registered design must pass the same op stream against the
		// same flat-map oracle — the API contract of DESIGN.md §14 — and
		// produce the identical decision log.
		var ref []bool
		refDesign := ""
		for _, design := range Designs() {
			e := newDesignEnv(t, design, func(c *Config) { c.UseBCC = useBCC })
			p := e.newProc(t)
			if err := e.arch.ProcessStart(p.ASID()); err != nil {
				t.Fatal(err)
			}
			log := runBorderOps(t, e, p.ASID(), data)
			if refDesign == "" {
				ref, refDesign = log, design
				continue
			}
			if len(log) != len(ref) {
				t.Fatalf("design %q made %d decisions, %q made %d", design, len(log), refDesign, len(ref))
			}
			for i := range log {
				if log[i] != ref[i] {
					t.Fatalf("design %q decision %d = %v, %q decided %v", design, i, log[i], refDesign, ref[i])
				}
			}
		}
	})
}
