package core

import (
	"testing"
	"testing/quick"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/memory"
)

func TestTableBytes(t *testing.T) {
	// The paper's headline: 16 GB of physical memory needs a 1 MB table —
	// 0.006% overhead.
	pages := uint64(16<<30) / arch.PageSize
	if got := TableBytes(pages); got != 1<<20 {
		t.Errorf("TableBytes(16GB) = %d, want 1 MiB", got)
	}
	overhead := float64(TableBytes(pages)) / float64(16<<30) * 100
	if overhead > 0.0062 || overhead < 0.0058 {
		t.Errorf("overhead = %f%%, want ~0.006%%", overhead)
	}
	if TableBytes(1) != 1 || TableBytes(4) != 1 || TableBytes(5) != 2 {
		t.Error("rounding wrong")
	}
}

func newPT(t testing.TB, pages uint64) (*ProtectionTable, *memory.Store) {
	t.Helper()
	store, err := memory.NewStore(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewProtectionTable(store, 0x1000, pages)
	if err != nil {
		t.Fatal(err)
	}
	return pt, store
}

func TestProtectionTableValidation(t *testing.T) {
	store, _ := memory.NewStore(1 << 20)
	if _, err := NewProtectionTable(store, 123, 100); err == nil {
		t.Error("unaligned base should fail")
	}
	if _, err := NewProtectionTable(store, 0, 1<<40); err == nil {
		t.Error("table beyond memory should fail")
	}
}

func TestProtectionTableDefaultsClosed(t *testing.T) {
	pt, _ := newPT(t, 1024)
	for _, p := range []arch.PPN{0, 1, 513, 1023} {
		if pt.Lookup(p) != arch.PermNone {
			t.Errorf("fresh table grants %v to %d", pt.Lookup(p), p)
		}
	}
	// Out of bounds is always no-permission.
	if pt.Lookup(1024) != arch.PermNone || pt.Lookup(1<<40) != arch.PermNone {
		t.Error("out-of-bounds lookup must fail closed")
	}
	if pt.InBounds(1024) || !pt.InBounds(1023) {
		t.Error("bounds register wrong")
	}
}

func TestProtectionTableSetMerge(t *testing.T) {
	pt, _ := newPT(t, 1024)
	pt.Set(5, arch.PermRead)
	if pt.Lookup(5) != arch.PermRead {
		t.Error("set/lookup mismatch")
	}
	if !pt.Merge(5, arch.PermWrite) {
		t.Error("merge should report a change")
	}
	if pt.Lookup(5) != arch.PermRW {
		t.Error("merge should widen")
	}
	if pt.Merge(5, arch.PermRead) {
		t.Error("redundant merge should report no change")
	}
	// Set can narrow.
	pt.Set(5, arch.PermNone)
	if pt.Lookup(5) != arch.PermNone {
		t.Error("set should overwrite")
	}
	// Exec bits never enter the table.
	pt.Set(6, arch.PermRead|arch.PermExec)
	if pt.Lookup(6) != arch.PermRead {
		t.Errorf("exec leaked into the table: %v", pt.Lookup(6))
	}
}

func TestProtectionTableNeighborIsolation(t *testing.T) {
	// Four pages share a byte: updating one must not disturb the others.
	pt, _ := newPT(t, 1024)
	pt.Set(8, arch.PermRead)
	pt.Set(9, arch.PermWrite)
	pt.Set(10, arch.PermRW)
	pt.Set(9, arch.PermNone)
	if pt.Lookup(8) != arch.PermRead || pt.Lookup(10) != arch.PermRW || pt.Lookup(11) != arch.PermNone {
		t.Error("neighbor bits disturbed")
	}
}

func TestProtectionTableQuick(t *testing.T) {
	pt, _ := newPT(t, 4096)
	ref := make(map[arch.PPN]arch.Perm)
	f := func(page uint16, perm uint8, set bool) bool {
		p := arch.PPN(page) % 4096
		pm := arch.Perm(perm & 3)
		if set {
			pt.Set(p, pm)
			ref[p] = pm
		} else {
			pt.Merge(p, pm)
			ref[p] |= pm
		}
		return pt.Lookup(p) == ref[p]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Sweep everything against the reference at the end.
	for p, want := range ref {
		if pt.Lookup(p) != want {
			t.Fatalf("final sweep: page %d = %v, want %v", p, pt.Lookup(p), want)
		}
	}
}

func TestProtectionTableZero(t *testing.T) {
	pt, _ := newPT(t, 2048)
	for p := arch.PPN(0); p < 2048; p += 7 {
		pt.Set(p, arch.PermRW)
	}
	pt.Zero()
	for p := arch.PPN(0); p < 2048; p++ {
		if pt.Lookup(p) != arch.PermNone {
			t.Fatalf("page %d survived zero", p)
		}
	}
}

func TestBlockAddr(t *testing.T) {
	pt, _ := newPT(t, 4096)
	// 512 pages per block: pages 0..511 share block 0 of the table.
	if pt.BlockAddr(0) != pt.BlockAddr(511) {
		t.Error("pages 0 and 511 should share a table block")
	}
	if pt.BlockAddr(511) == pt.BlockAddr(512) {
		t.Error("pages 511 and 512 must be in different table blocks")
	}
	if pt.EntryAddr(0) != pt.Base() {
		t.Error("entry 0 should be at the base")
	}
	var buf [arch.BlockSize]byte
	pt.Set(0, arch.PermRead)
	pt.ReadBlock(0, &buf)
	if buf[0]&3 != byte(arch.PermRead) {
		t.Error("ReadBlock contents wrong")
	}
}

func TestProtectionTableOutOfBoundsPanics(t *testing.T) {
	pt, _ := newPT(t, 100)
	for name, fn := range map[string]func(){
		"set":   func() { pt.Set(100, arch.PermRead) },
		"merge": func() { pt.Merge(200, arch.PermRead) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of bounds should panic", name)
				}
			}()
			fn()
		}()
	}
}
