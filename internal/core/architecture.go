package core

import (
	"fmt"
	"sort"
	"strings"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/prof"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// ProtectionArchitecture is the border-design seam: everything the rest of
// the system (harness assembly, the ATS observer path, the OS shootdown
// path, the adversary harness, the figures) needs from a protection
// architecture guarding one accelerator. The flat Protection-Table + BCC
// design of the paper is one implementation; competing designs register
// under their own names (see RegisterDesign) and race in the figures.
//
// The contract every implementation must honor — what keeps the PR-3
// differential fuzz oracle and the PR-4 shadow-memory oracle sound — is
// spelled out in DESIGN.md §14. In short: given the same OnTranslation /
// OnDowngrade / ProcessComplete event stream, Check must decide exactly as
// the paper's Figure 3 protocol (translations widen the union window,
// downgrades narrow it only after the dirty flush, completion revokes
// everything, never-granted pages fail closed, denials are attributed to
// the wire ASID). Designs are free to differ in WHEN state moves and WHAT
// it costs — that is the racing surface — never in what gets decided.
type ProtectionArchitecture interface {
	// Checker is the hot path: Figure 3c, one decision per crossing.
	Checker

	// Name returns the guarded accelerator's name.
	Name() string
	// Design returns the registered design name ("flat", "sparta", ...).
	Design() string

	// ProcessStart implements Figure 3a; ProcessComplete Figure 3e (flush
	// under the old permissions, then revoke everything, returning when the
	// completion protocol finishes).
	ProcessStart(asid arch.ASID) error
	ProcessComplete(at sim.Time, asid arch.ASID) sim.Time
	// OnTranslation implements ats.Observer (Figure 3b, widen-only).
	OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool)
	// OnDowngrade implements hostos.ShootdownListener (Figure 3d,
	// flush-before-narrow).
	OnDowngrade(d hostos.Downgrade)

	// PermAt returns the effective border permission for one physical page
	// — the union window a Check would be judged against right now. It is
	// an audit-only accessor for oracles and tests; implementations must
	// not charge simulated time for it.
	PermAt(ppn arch.PPN) arch.Perm

	// ActiveProcesses and Disabled expose protocol state the harness and
	// examples read.
	ActiveProcesses() int
	Disabled() bool
	// Cache returns the design's BCC, or nil when it has none (designs
	// reusing the sub-blocked BCC as their lookaside return it so Figure 4
	// style sweeps can report its miss ratio).
	Cache() *BCC
	// CrossingChecks returns how many requests the border has checked.
	CrossingChecks() uint64

	// Wiring, observation and metrics hooks (all pure observation except
	// SetAccelerator/SetTableAllocator, which are assembly-time wiring).
	SetAccelerator(a Sandboxed)
	SetTableAllocator(f *hostos.FrameAllocator)
	SetTraceSink(fn func(TraceEvent))
	SetTracer(t *trace.Tracer)
	SetProfiler(p *prof.Profiler)
	RegisterMetrics(s stats.Scope)
}

// DefaultDesign is the paper's flat Protection-Table + BCC architecture.
const DefaultDesign = "flat"

// NewArchFunc constructs one protection architecture for an accelerator.
type NewArchFunc func(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (ProtectionArchitecture, error)

// designs is the registry of border designs; the three in-tree designs are
// registered statically so Designs() is stable without init-order games.
var designs = map[string]NewArchFunc{
	"flat": func(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (ProtectionArchitecture, error) {
		return New(name, cfg, os, dram, eng)
	},
	"sparta": func(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (ProtectionArchitecture, error) {
		return NewSparta(name, cfg, os, dram, eng)
	},
	"range": func(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (ProtectionArchitecture, error) {
		return NewRangeBorder(name, cfg, os, dram, eng)
	},
}

// RegisterDesign adds (or replaces) a named border design. Registering at
// init time makes the design selectable through harness.Params.Border and
// `bctool -border`.
func RegisterDesign(name string, fn NewArchFunc) {
	if name == "" || fn == nil {
		panic("core: RegisterDesign needs a name and a constructor")
	}
	designs[name] = fn
}

// Designs lists the registered design names, sorted.
func Designs() []string {
	names := make([]string, 0, len(designs))
	for n := range designs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KnownDesign reports whether name is a registered border design.
func KnownDesign(name string) bool {
	_, ok := designs[name]
	return ok
}

// NewArchitecture constructs the named design. The Config is validated
// first, so an impossible configuration (UseBCC with a zero BCC geometry)
// fails here, at construction, for every design alike.
func NewArchitecture(design, name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (ProtectionArchitecture, error) {
	fn, ok := designs[design]
	if !ok {
		return nil, fmt.Errorf("core: unknown border design %q (have %s)", design, strings.Join(Designs(), ", "))
	}
	return fn(name, cfg, os, dram, eng)
}

// Validate rejects impossible Config combinations at construction time.
// The headline rule: enabling the BCC requires a real cache geometry — a
// zero-value BCCConfig is a forgotten field, not a tiny cache.
func (c Config) Validate() error {
	if c.UseBCC {
		if c.BCC == (BCCConfig{}) {
			return fmt.Errorf("core: Config.UseBCC is set but Config.BCC is the zero BCCConfig; fill in a geometry (see DefaultBCCConfig)")
		}
		if err := c.BCC.Validate(); err != nil {
			return fmt.Errorf("core: Config.BCC: %w", err)
		}
	}
	return nil
}
