package core

import (
	"sort"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
)

// Checker is anything that can adjudicate a physical request at the
// border. BorderControl is the paper's checker; TrustZone below implements
// the coarse-grained alternative of paper §2.3 / Table 1 so the comparison
// row is executable rather than cited.
//
// asid names the process the request was issued on behalf of, for
// violation ATTRIBUTION only — permission decisions stay union-based over
// every active process (paper §3.3). Hardware-initiated crossings with no
// process context (flush writebacks) pass 0, which real ASIDs never use.
type Checker interface {
	Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision
}

// TrustZone models ARM TrustZone's world partitioning as a border checker:
// physical memory is split into Secure regions and the Normal world. An
// untrusted accelerator lives in the Normal world, so any request into a
// Secure region is refused — but every Normal-world address is allowed,
// whichever process it belongs to. That is exactly the paper's critique
// (Table 1): protection FOR the OS/secure assets, no protection BETWEEN
// processes.
type TrustZone struct {
	secure  []Segment // sorted by base
	latency sim.Time

	// Blocked counts refused requests.
	Blocked uint64
	// OnViolation, when set, is invoked for each refusal.
	OnViolation func(addr arch.Phys, kind arch.AccessKind)
}

// NewTrustZone returns a checker with no secure regions (everything
// Normal) and the given check latency.
func NewTrustZone(latency sim.Time) *TrustZone {
	return &TrustZone{latency: latency}
}

// Secure marks [base, base+n) as Secure-world memory.
func (t *TrustZone) Secure(base arch.Phys, n uint64) {
	t.secure = append(t.secure, Segment{Base: base, Len: n})
	sort.Slice(t.secure, func(i, j int) bool { return t.secure[i].Base < t.secure[j].Base })
}

// IsSecure reports whether the address lies in a Secure region.
func (t *TrustZone) IsSecure(a arch.Phys) bool {
	for _, s := range t.secure {
		if a >= s.Base && a < s.End() {
			return true
		}
		if s.Base > a {
			break
		}
	}
	return false
}

// Check implements Checker: refuse Secure-world addresses, allow the rest
// of physical memory unconditionally. TrustZone has no notion of which
// process a request belongs to — that blindness is the paper's critique —
// so the ASID is ignored.
func (t *TrustZone) Check(at sim.Time, _ arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision {
	done := at + t.latency
	if t.IsSecure(addr) {
		t.Blocked++
		if t.OnViolation != nil {
			t.OnViolation(addr, kind)
		}
		return Decision{Allowed: false, Done: done}
	}
	return Decision{Allowed: true, Done: done}
}
