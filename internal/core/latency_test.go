package core

import (
	"testing"

	"bordercontrol/internal/arch"
)

// TestCheckLatencyHistogramClasses drives one crossing down each outcome
// path — BCC hit, BCC miss + table walk, denied — and requires each to land
// in exactly its own histogram.
func TestCheckLatencyHistogramClasses(t *testing.T) {
	e := newBCEnv(t, nil)
	p := e.newProc(t)
	v, ppn := mapPage(t, p)
	if err := e.bc.ProcessStart(p.ASID()); err != nil {
		t.Fatal(err)
	}
	e.bc.OnTranslation(0, p.ASID(), v.PageOf(), ppn, arch.PermRW, false)

	// First check: the BCC was just populated by the insertion, so this is
	// a hit; a denied probe of a never-translated page walks nothing.
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read); !dec.Allowed {
		t.Fatal("translated page blocked")
	}
	if got := e.bc.HitLatency.Count(); got != 1 {
		t.Errorf("bcc_hit count = %d, want 1", got)
	}
	if got := e.bc.WalkLatency.Count(); got != 0 {
		t.Errorf("pt_walk count = %d, want 0", got)
	}

	// Invalidate the BCC so the next allowed check must walk the table.
	e.bc.Cache().InvalidateAll()
	if dec := e.bc.Check(0, p.ASID(), ppn.Base(), arch.Read); !dec.Allowed {
		t.Fatal("translated page blocked after BCC reset")
	}
	if got := e.bc.WalkLatency.Count(); got != 1 {
		t.Errorf("pt_walk count = %d, want 1", got)
	}

	// Denied: a physical page the ATS never produced.
	other := e.newProc(t)
	_, foreign := mapPage(t, other)
	if dec := e.bc.Check(0, p.ASID(), foreign.Base(), arch.Write); dec.Allowed {
		t.Fatal("never-translated page allowed")
	}
	if got := e.bc.DeniedLatency.Count(); got != 1 {
		t.Errorf("denied count = %d, want 1", got)
	}
	if got := e.bc.HitLatency.Count(); got != 1 {
		t.Errorf("bcc_hit count moved to %d", got)
	}

	// A walk pays the table access on top of the BCC probe, so its recorded
	// latency must exceed the hit's.
	if e.bc.WalkLatency.Min() <= e.bc.HitLatency.Max() {
		t.Errorf("walk latency %d not above hit latency %d",
			e.bc.WalkLatency.Min(), e.bc.HitLatency.Max())
	}
}
