package core

import (
	"bordercontrol/internal/arch"
	"bordercontrol/internal/hostos"
	"bordercontrol/internal/memory"
	"bordercontrol/internal/sim"
	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// spartaGrain is the divide-and-conquer materialization unit in pages. It
// must divide arch.PagesPerHugePage so a huge grant splits into whole
// grains; 64 pages is 16 bytes of Protection Table (2 bits per page).
const spartaGrain = 64

// Sparta is a SPARTA-inspired protection architecture: instead of fanning
// a huge-page translation out into 512 eager Protection Table insertions
// (the flat design's Figure 3b), the grant is recorded as one deferred
// range and split divide-and-conquer style on first touch — only the
// grain-sized chunk around the touched page is materialized into the
// table, the remainder stays deferred. Sparse accelerators touch a few
// grains of each 2 MB grant and never pay the full fan-out's DRAM
// write-through; dense ones converge to the flat design plus a little
// bookkeeping.
//
// Decisions are identical to the flat design by construction: every Check
// and OnDowngrade first materializes the grain covering the page it is
// about to judge, then delegates to the embedded BorderControl, so the
// table the verdict reads always agrees with the union window of the
// grant stream (DESIGN.md §14). Only the timing and the DRAM traffic
// differ — that is the racing surface.
type Sparta struct {
	*BorderControl

	// pending holds granted-but-unmaterialized page ranges. Grants only
	// widen, so overlapping entries union at materialization time.
	pending []spartaRange

	// Deferred counts huge grants recorded as ranges instead of fan-outs;
	// Materializations counts grain splits forced by checks/downgrades.
	Deferred         stats.Counter
	Materializations stats.Counter
}

// spartaRange is one deferred grant covering [lo, hi).
type spartaRange struct {
	lo, hi arch.PPN
	perm   arch.Perm
}

var _ ProtectionArchitecture = (*Sparta)(nil)

// NewSparta returns the SPARTA-style design for the named accelerator.
func NewSparta(name string, cfg Config, os *hostos.OS, dram *memory.DRAM, eng *sim.Engine) (*Sparta, error) {
	bc, err := New(name, cfg, os, dram, eng)
	if err != nil {
		return nil, err
	}
	return &Sparta{BorderControl: bc}, nil
}

// Design identifies this implementation in the design registry.
func (s *Sparta) Design() string { return "sparta" }

// OnTranslation defers huge grants into the pending-range set; base-page
// grants insert exactly as in the flat design.
func (s *Sparta) OnTranslation(at sim.Time, asid arch.ASID, vpn arch.VPN, ppn arch.PPN, perm arch.Perm, huge bool) {
	if !huge {
		s.BorderControl.OnTranslation(at, asid, vpn, ppn, perm, huge)
		return
	}
	if !s.active[asid] || s.table == nil {
		return
	}
	head := ppn - ppn%arch.PagesPerHugePage
	s.Insertions.Inc()
	s.Deferred.Inc()
	s.pending = append(s.pending, spartaRange{lo: head, hi: head + arch.PagesPerHugePage, perm: perm.Border()})
	// Recording the deferred range is one narrow posted write to the range
	// store, not the flat design's 128-byte table-block write-through.
	s.TableWrites.Inc()
	s.dram.AccessDoneBytes(s.eng.Now(), s.table.BlockAddr(head), arch.Write, 8)
}

// materialize splits every pending range overlapping the grain around ppn,
// merging the overlap into the Protection Table (and BCC) and keeping the
// remainders deferred. One grain costs one narrow posted table write.
func (s *Sparta) materialize(ppn arch.PPN) {
	if len(s.pending) == 0 {
		return
	}
	g0 := ppn - ppn%spartaGrain
	g1 := g0 + spartaGrain
	overlap := false
	for _, r := range s.pending {
		if r.lo < g1 && r.hi > g0 {
			overlap = true
			break
		}
	}
	if !overlap {
		return
	}
	next := make([]spartaRange, 0, len(s.pending)+1)
	for _, r := range s.pending {
		if r.hi <= g0 || r.lo >= g1 {
			next = append(next, r)
			continue
		}
		lo, hi := max(r.lo, g0), min(r.hi, g1)
		for p := lo; p < hi; p++ {
			s.table.Merge(p, r.perm)
			if s.bcc != nil {
				s.bcc.Update(p, r.perm, s.table)
			}
		}
		if r.lo < g0 {
			next = append(next, spartaRange{lo: r.lo, hi: g0, perm: r.perm})
		}
		if r.hi > g1 {
			next = append(next, spartaRange{lo: g1, hi: r.hi, perm: r.perm})
		}
	}
	s.pending = next
	s.Materializations.Inc()
	// One grain is 16 bytes of table (spartaGrain pages at 2 bits each).
	s.TableWrites.Inc()
	s.dram.AccessDoneBytes(s.eng.Now(), s.table.BlockAddr(g0), arch.Write, spartaGrain/4)
}

// Check materializes the grain covering the checked page, then decides
// exactly as the flat design does.
func (s *Sparta) Check(at sim.Time, asid arch.ASID, addr arch.Phys, kind arch.AccessKind) Decision {
	if len(s.pending) > 0 && s.table != nil && !s.disabled {
		if ppn := addr.PageOf(); s.table.InBounds(ppn) {
			s.materialize(ppn)
		}
	}
	return s.BorderControl.Check(at, asid, addr, kind)
}

// OnDowngrade materializes the downgraded page's grain first — so the
// delegate sees the true old permission and runs the Figure 3d
// flush-before-narrow protocol against it — then delegates. The full-flush
// variant zeroes the whole table, so every deferred range must die with it
// or a later materialization would resurrect revoked permissions.
func (s *Sparta) OnDowngrade(d hostos.Downgrade) {
	clearAll := false
	if s.active[d.ASID] && s.table != nil && s.table.InBounds(d.PPN) {
		s.materialize(d.PPN)
		clearAll = !s.cfg.SelectiveFlush && s.table.Lookup(d.PPN).CanWrite()
	}
	s.BorderControl.OnDowngrade(d)
	if clearAll {
		s.pending = s.pending[:0]
	}
}

// ProcessComplete keeps deferred ranges live through the completion flush
// — mid-flush writebacks materialize on demand and pass under the old
// permissions, exactly as the flat design's still-populated table lets
// them — and revokes them only once the epoch is over.
func (s *Sparta) ProcessComplete(at sim.Time, asid arch.ASID) sim.Time {
	if !s.active[asid] {
		return at
	}
	done := s.BorderControl.ProcessComplete(at, asid)
	s.pending = s.pending[:0]
	return done
}

// PermAt unions the table entry with every deferred range covering ppn.
func (s *Sparta) PermAt(ppn arch.PPN) arch.Perm {
	p := s.BorderControl.PermAt(ppn)
	for _, r := range s.pending {
		if ppn >= r.lo && ppn < r.hi {
			p |= r.perm
		}
	}
	return p
}

// SetTracer forwards to the embedded design (kept explicit so the method
// set stays obvious at the seam).
func (s *Sparta) SetTracer(t *trace.Tracer) { s.BorderControl.SetTracer(t) }

// RegisterMetrics publishes the flat counters plus the deferral stats.
func (s *Sparta) RegisterMetrics(st stats.Scope) {
	s.BorderControl.RegisterMetrics(st)
	sp := st.Scope("sparta")
	sp.Counter("deferred_grants", &s.Deferred)
	sp.Counter("materializations", &s.Materializations)
}
