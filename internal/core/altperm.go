package core

import (
	"errors"
	"fmt"
	"sort"

	"bordercontrol/internal/arch"
	"bordercontrol/internal/sim"
)

// This file implements paper §3.4.1: Border Control with permission
// sources other than the process page tables. The requirement is only
// that permissions correspond to physical addresses; then the alternate
// source drives Protection Table insertions exactly like the ATS does on
// a TLB miss.

// Insert grants border permissions for ppn on behalf of an alternate
// permission source (a Mondriaan-style PLB miss handler, a capability
// system, a shadow page table). It follows the same rules as ATS-driven
// insertion: the address space must be active on the accelerator, and
// permissions only widen (revocation goes through the downgrade protocol).
func (bc *BorderControl) Insert(at sim.Time, asid arch.ASID, ppn arch.PPN, perm arch.Perm) error {
	if !bc.active[asid] || bc.table == nil {
		return fmt.Errorf("core: insert for asid %d not active on %q", asid, bc.name)
	}
	if !bc.table.InBounds(ppn) {
		return fmt.Errorf("core: insert for out-of-bounds page %#x", ppn)
	}
	bc.insert(at, ppn, perm)
	return nil
}

// Segment is one physical range with permissions — the unit of a
// Mondriaan-style protection table.
type Segment struct {
	Base arch.Phys
	Len  uint64
	Perm arch.Perm
}

// End returns one past the segment's last byte.
func (s Segment) End() arch.Phys { return s.Base + arch.Phys(s.Len) }

// SegmentSource is a Mondriaan-memory-protection-style permission table:
// fine-grained permissions over physical ranges, per address space. It is
// the trusted source a PLB consults on misses.
type SegmentSource struct {
	segs map[arch.ASID][]Segment
}

// NewSegmentSource returns an empty source.
func NewSegmentSource() *SegmentSource {
	return &SegmentSource{segs: make(map[arch.ASID][]Segment)}
}

// Grant adds a permission segment for the address space.
func (s *SegmentSource) Grant(asid arch.ASID, seg Segment) {
	s.segs[asid] = append(s.segs[asid], seg)
	sort.Slice(s.segs[asid], func(i, j int) bool {
		return s.segs[asid][i].Base < s.segs[asid][j].Base
	})
}

// Revoke removes every segment intersecting [base, base+n) for the
// address space and returns how many were dropped. (Partial revocation
// splits are not needed by the border: the downgrade protocol re-derives
// page permissions via PermFor.)
func (s *SegmentSource) Revoke(asid arch.ASID, base arch.Phys, n uint64) int {
	var kept []Segment
	dropped := 0
	for _, seg := range s.segs[asid] {
		if seg.Base < base+arch.Phys(n) && base < seg.End() {
			dropped++
			continue
		}
		kept = append(kept, seg)
	}
	s.segs[asid] = kept
	return dropped
}

// PermFor returns the union of segment permissions covering any byte of
// the physical page — the page-granularity projection Border Control's
// Protection Table stores. (Finer-grained enforcement would need the
// alternate table format the paper mentions; the projection is safe but
// coarser: it grants the page if any byte of it is granted.)
func (s *SegmentSource) PermFor(asid arch.ASID, ppn arch.PPN) arch.Perm {
	var p arch.Perm
	pageStart, pageEnd := ppn.Base(), ppn.Base()+arch.PageSize
	for _, seg := range s.segs[asid] {
		if seg.Base < pageEnd && pageStart < seg.End() {
			p |= seg.Perm.Border()
		}
	}
	return p
}

// PLB is the accelerator-side Protection Lookaside Buffer of a
// Mondriaan-style design. On a miss it consults the trusted SegmentSource
// and — mirroring the paper's "on a PLB miss, Border Control can update
// the Protection Table, just as it would on a TLB miss" — pushes the
// page's permissions into Border Control.
type PLB struct {
	src     *SegmentSource
	bc      *BorderControl
	entries map[plbKey]arch.Perm
	order   []plbKey // FIFO replacement; small and simple
	cap     int

	Hits   uint64
	Misses uint64
}

type plbKey struct {
	asid arch.ASID
	ppn  arch.PPN
}

// NewPLB returns a PLB of the given capacity over the source, feeding bc.
func NewPLB(src *SegmentSource, bc *BorderControl, capacity int) (*PLB, error) {
	if capacity <= 0 {
		return nil, errors.New("core: PLB needs positive capacity")
	}
	return &PLB{src: src, bc: bc, entries: make(map[plbKey]arch.Perm), cap: capacity}, nil
}

// Access resolves the accelerator's access through the PLB: hit returns
// the cached permission; miss consults the source, fills the PLB, and
// inserts into Border Control. The returned permission is what the
// accelerator may cache; the border remains the enforcement point.
func (p *PLB) Access(at sim.Time, asid arch.ASID, pa arch.Phys, kind arch.AccessKind) (arch.Perm, error) {
	k := plbKey{asid: asid, ppn: pa.PageOf()}
	if perm, ok := p.entries[k]; ok {
		p.Hits++
		return perm, nil
	}
	p.Misses++
	perm := p.src.PermFor(asid, k.ppn)
	if perm != arch.PermNone {
		if err := p.bc.Insert(at, asid, k.ppn, perm); err != nil {
			return arch.PermNone, err
		}
	}
	if len(p.entries) >= p.cap {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.entries, oldest)
	}
	p.entries[k] = perm
	p.order = append(p.order, k)
	return perm, nil
}

// InvalidatePage drops the PLB entry (the PLB-shootdown analogue).
func (p *PLB) InvalidatePage(asid arch.ASID, ppn arch.PPN) {
	delete(p.entries, plbKey{asid: asid, ppn: ppn})
}

// Capability is an unforgeable token granting permissions over a physical
// range. The accelerator never sees capability metadata (it could forge
// it, paper §3.4.1); it presents an ID, and the trusted CapabilityTable
// validates it before any Protection Table update.
type Capability struct {
	ID   uint64
	Seg  Segment
	ASID arch.ASID
}

// CapabilityTable is the trusted registry of minted capabilities.
type CapabilityTable struct {
	caps   map[uint64]Capability
	nextID uint64
}

// NewCapabilityTable returns an empty registry.
func NewCapabilityTable() *CapabilityTable {
	return &CapabilityTable{caps: make(map[uint64]Capability), nextID: 1}
}

// Mint creates a capability for the address space over the segment and
// returns its ID (the only thing the accelerator ever holds).
func (c *CapabilityTable) Mint(asid arch.ASID, seg Segment) uint64 {
	id := c.nextID
	c.nextID++
	c.caps[id] = Capability{ID: id, Seg: seg, ASID: asid}
	return id
}

// Revoke destroys a capability. Pages it granted are revoked from the
// border by the caller through the usual downgrade protocol.
func (c *CapabilityTable) Revoke(id uint64) { delete(c.caps, id) }

// ErrBadCapability is returned when an accelerator presents an ID that was
// never minted (a forgery attempt) or that belongs to another address
// space.
var ErrBadCapability = errors.New("core: invalid capability")

// Exercise validates the capability and inserts its pages' permissions
// into Border Control. The fan-out is page-granular, like the huge-page
// insertion path.
func (c *CapabilityTable) Exercise(at sim.Time, bc *BorderControl, asid arch.ASID, id uint64) error {
	cap, ok := c.caps[id]
	if !ok || cap.ASID != asid {
		return fmt.Errorf("%w: id %d for asid %d", ErrBadCapability, id, asid)
	}
	if cap.Seg.Len == 0 {
		return nil
	}
	first := cap.Seg.Base.PageOf()
	last := (cap.Seg.End() - 1).PageOf()
	for ppn := first; ppn <= last; ppn++ {
		if err := bc.Insert(at, asid, ppn, cap.Seg.Perm); err != nil {
			return err
		}
	}
	return nil
}
