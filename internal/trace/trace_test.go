package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeTrace mirrors the subset of the trace-event JSON container format
// the tests validate.
type chromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []json.RawMessage `json:"traceEvents"`
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func parseTrace(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, data)
	}
	events := make([]chromeEvent, len(ct.TraceEvents))
	for i, raw := range ct.TraceEvents {
		if err := json.Unmarshal(raw, &events[i]); err != nil {
			t.Fatalf("event %d does not parse: %v", i, err)
		}
	}
	return events
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled("engine") {
		t.Error("nil tracer should report disabled")
	}
	tr.Instant("engine", "x", 1)
	tr.Complete("engine", "x", 1, 2)
	tr.Counter("engine", "x", 1, 3)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
}

func TestCategoryFiltering(t *testing.T) {
	tr := New("border", "engine")
	if !tr.Enabled("border") || !tr.Enabled("engine") {
		t.Error("listed categories should be enabled")
	}
	if !tr.Enabled("border.check") {
		t.Error("parent category should enable children")
	}
	if tr.Enabled("gpu") {
		t.Error("unlisted category should be disabled")
	}
	tr.Instant("gpu", "dropped", 10)
	tr.Instant("border", "kept", 10)
	if tr.Len() != 1 {
		t.Errorf("len = %d, want 1", tr.Len())
	}
	// Comma-separated spec and the no-filter default.
	if tr := New("gpu, border.check"); !tr.Enabled("border.check") || tr.Enabled("border") {
		t.Error("child category must not enable its parent")
	}
	if tr := New(); !tr.Enabled("anything") {
		t.Error("no filter means everything enabled")
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New()
	tr.Complete("gpu", "phase 0", 1_000_000, 2_500_000) // 1µs start, 2.5µs dur
	tr.Instant("border", "violation", 3_000_001)
	tr.Counter("engine", "pending_events", 4_000_000, 17)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, buf.Bytes())
	// Metadata + 3 events.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Ph != "M" || events[0].Name != "process_name" {
		t.Errorf("first event should be process metadata: %+v", events[0])
	}
	x := events[1]
	if x.Ph != "X" || x.Cat != "gpu" || *x.Ts != 1.0 || *x.Dur != 2.5 {
		t.Errorf("complete event wrong: %+v", x)
	}
	i := events[2]
	if i.Ph != "i" || *i.Ts != 3.000001 {
		t.Errorf("instant event wrong: %+v (ts=%v)", i, *i.Ts)
	}
	c := events[3]
	if c.Ph != "C" || c.Args["value"].(float64) != 17 {
		t.Errorf("counter event wrong: %+v", c)
	}
}

func TestMultiMergesDeterministically(t *testing.T) {
	render := func(order []string) []byte {
		m := NewMulti()
		for _, name := range order {
			tr := m.New(name)
			tr.Instant("border", "ev "+name, 5)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render([]string{"b/job", "a/job"})
	b := render([]string{"a/job", "b/job"})
	if !bytes.Equal(a, b) {
		t.Errorf("multi trace depends on registration order:\n%s\n%s", a, b)
	}
	events := parseTrace(t, a)
	// Two metadata + two instants, pids 0 and 1 sorted by label.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Args["name"] != "a/job" || *events[0].Pid != 0 {
		t.Errorf("pid 0 should be a/job: %+v", events[0])
	}
	if got := *events[1].Pid; got != 0 {
		t.Errorf("a/job's event should carry pid 0, got %d", got)
	}
	if events[2].Args["name"] != "b/job" || *events[2].Pid != 1 {
		t.Errorf("pid 1 should be b/job: %+v", events[2])
	}
}

func TestMultiCategoryFilterPropagates(t *testing.T) {
	m := NewMulti("engine")
	tr := m.New("job")
	tr.Instant("border", "dropped", 1)
	tr.Instant("engine", "kept", 1)
	if m.Len() != 1 {
		t.Errorf("multi len = %d, want 1", m.Len())
	}
}

func BenchmarkDisabledInstant(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Instant("border.check", "check", uint64(i))
	}
}
