// Package trace records simulation events in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Design constraints, in order:
//
//  1. Off means free. Every emit helper is a method on *Tracer with an
//     explicit nil-receiver check, so instrumented components hold a plain
//     possibly-nil pointer and pay one predictable branch when tracing is
//     disabled. Hot paths (the border check) additionally gate on a bool
//     the component caches at attach time.
//  2. Observation only. Tracing must never perturb the simulated timeline:
//     the tracer takes timestamps as raw picosecond integers supplied by
//     the caller and never consults a clock of its own.
//  3. Determinism. Events are kept in emission order (which is itself
//     deterministic for a deterministic run), and JSON rendering is pure
//     formatting — identical runs produce identical trace bytes.
//
// Timestamps are uint64 picoseconds, not sim.Time, so that package sim can
// itself import trace without an import cycle. The JSON "ts"/"dur" fields
// are microseconds per the trace-event spec; values render with six
// decimal places, i.e. exact picosecond resolution.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Phase bytes from the trace-event format.
const (
	phaseComplete = 'X' // duration event: ts + dur
	phaseInstant  = 'i' // point event
	phaseCounter  = 'C' // sampled counter track
)

// event is one recorded trace entry.
type event struct {
	name  string
	cat   string
	ph    byte
	ts    uint64 // picoseconds
	dur   uint64 // picoseconds, phaseComplete only
	value float64
}

// Tracer collects events for one simulated run. A Tracer is not safe for
// concurrent use; parallel sweeps give each job its own Tracer via Multi.
// A nil *Tracer is valid and records nothing.
type Tracer struct {
	cats   map[string]bool // nil or empty: every category enabled
	events []event
	name   string // process label when rendered through Multi
}

// New returns a tracer that records only the listed categories; with no
// arguments every category is enabled. A category enables its
// sub-categories ("border" also enables "border.check").
func New(cats ...string) *Tracer {
	t := &Tracer{}
	if len(cats) > 0 {
		t.cats = make(map[string]bool, len(cats))
		for _, c := range cats {
			for _, part := range strings.Split(c, ",") {
				if part = strings.TrimSpace(part); part != "" {
					t.cats[part] = true
				}
			}
		}
	}
	return t
}

// Enabled reports whether events in cat would be recorded. It is safe on a
// nil receiver (false).
func (t *Tracer) Enabled(cat string) bool {
	if t == nil {
		return false
	}
	if len(t.cats) == 0 {
		return true
	}
	if t.cats[cat] {
		return true
	}
	// A parent category enables its children: "border" covers "border.check".
	for i := strings.LastIndexByte(cat, '.'); i > 0; i = strings.LastIndexByte(cat, '.') {
		cat = cat[:i]
		if t.cats[cat] {
			return true
		}
	}
	return false
}

// Len returns how many events are recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Instant records a point event at ps.
func (t *Tracer) Instant(cat, name string, ps uint64) {
	if !t.Enabled(cat) {
		return
	}
	t.events = append(t.events, event{name: name, cat: cat, ph: phaseInstant, ts: ps})
}

// Complete records a duration event spanning [startPs, startPs+durPs].
func (t *Tracer) Complete(cat, name string, startPs, durPs uint64) {
	if !t.Enabled(cat) {
		return
	}
	t.events = append(t.events, event{name: name, cat: cat, ph: phaseComplete, ts: startPs, dur: durPs})
}

// Counter records a sample on a counter track (rendered by Perfetto as a
// stepped area chart).
func (t *Tracer) Counter(cat, name string, ps uint64, value float64) {
	if !t.Enabled(cat) {
		return
	}
	t.events = append(t.events, event{name: name, cat: cat, ph: phaseCounter, ts: ps, value: value})
}

// WriteJSON renders the trace as a single-process Chrome trace-event JSON
// object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ns","traceEvents":[`)
	writeProcessMeta(bw, 0, t.label(), true)
	t.writeEvents(bw, 0, true)
	bw.str("]}\n")
	return bw.err
}

// label returns the process label for rendering.
func (t *Tracer) label() string {
	if t == nil || t.name == "" {
		return "sim"
	}
	return t.name
}

// writeEvents appends the tracer's events as JSON array elements.
func (t *Tracer) writeEvents(bw *errWriter, pid int, leadingComma bool) {
	if t == nil {
		return
	}
	for _, ev := range t.events {
		if leadingComma {
			bw.str(",")
		}
		leadingComma = true
		bw.str(`{"name":`)
		bw.quoted(ev.name)
		bw.str(`,"cat":`)
		bw.quoted(ev.cat)
		bw.str(`,"ph":"`)
		bw.byte(ev.ph)
		bw.str(`","pid":`)
		bw.int(pid)
		bw.str(`,"tid":0,"ts":`)
		bw.micros(ev.ts)
		switch ev.ph {
		case phaseComplete:
			bw.str(`,"dur":`)
			bw.micros(ev.dur)
		case phaseInstant:
			bw.str(`,"s":"t"`)
		case phaseCounter:
			bw.str(`,"args":{"value":`)
			bw.float(ev.value)
			bw.str("}")
		}
		bw.str("}")
	}
}

// writeProcessMeta emits the metadata event naming a pid's process track.
func writeProcessMeta(bw *errWriter, pid int, name string, first bool) {
	if !first {
		bw.str(",")
	}
	bw.str(`{"name":"process_name","ph":"M","pid":`)
	bw.int(pid)
	bw.str(`,"tid":0,"args":{"name":`)
	bw.quoted(name)
	bw.str("}}")
}

// Multi hands out one Tracer per job in a parallel sweep and merges them
// into a single multi-process trace, one pid per job. New is safe to call
// from concurrent workers; each returned Tracer is still single-goroutine.
type Multi struct {
	mu      sync.Mutex
	cats    []string
	tracers []*Tracer
}

// NewMulti returns an empty trace set; cats filter as in New.
func NewMulti(cats ...string) *Multi {
	return &Multi{cats: cats}
}

// New registers and returns a tracer labelled name (shown as the Perfetto
// process name). Safe for concurrent use.
func (m *Multi) New(name string) *Tracer {
	t := New(m.cats...)
	t.name = name
	m.mu.Lock()
	m.tracers = append(m.tracers, t)
	m.mu.Unlock()
	return t
}

// Len returns the total event count across all tracers.
func (m *Multi) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.tracers {
		n += len(t.events)
	}
	return n
}

// WriteJSON renders every job's events into one trace, jobs sorted by
// label for deterministic output regardless of worker completion order.
func (m *Multi) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	tracers := append([]*Tracer(nil), m.tracers...)
	m.mu.Unlock()
	sort.SliceStable(tracers, func(i, j int) bool { return tracers[i].label() < tracers[j].label() })

	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ns","traceEvents":[`)
	wrote := false
	for pid, t := range tracers {
		writeProcessMeta(bw, pid, t.label(), !wrote)
		wrote = true
		t.writeEvents(bw, pid, true)
	}
	bw.str("]}\n")
	return bw.err
}

// errWriter is a sticky-error writer with the few formatting helpers the
// renderer needs; a reused scratch buffer keeps the event loop free of
// per-event allocations.
type errWriter struct {
	w   io.Writer
	err error
	buf []byte
}

func (b *errWriter) write(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *errWriter) flush() {
	b.write(b.buf)
	b.buf = b.buf[:0]
}

func (b *errWriter) str(s string) {
	b.buf = append(b.buf, s...)
	b.flush()
}

func (b *errWriter) byte(c byte) {
	b.buf = append(b.buf, c)
	b.flush()
}

func (b *errWriter) int(n int) {
	b.buf = strconv.AppendInt(b.buf, int64(n), 10)
	b.flush()
}

func (b *errWriter) quoted(s string) {
	b.buf = strconv.AppendQuote(b.buf, s)
	b.flush()
}

// micros renders picoseconds as microseconds with full picosecond
// precision (six decimal places).
func (b *errWriter) micros(ps uint64) {
	b.buf = strconv.AppendUint(b.buf, ps/1_000_000, 10)
	b.buf = append(b.buf, '.')
	b.buf = append(b.buf, fmt.Sprintf("%06d", ps%1_000_000)...)
	b.flush()
}

func (b *errWriter) float(v float64) {
	b.buf = strconv.AppendFloat(b.buf, v, 'g', -1, 64)
	b.flush()
}
