package sim

// This file keeps the engine's original container/heap event queue as an
// unexported reference implementation. The production engine (an inlined
// 4-ary indexed heap with pooled slots) must fire events in exactly the
// order this one does — (timestamp, schedule sequence) — on any schedule,
// including same-timestamp bursts and events scheduled from inside a firing
// event. The cross-check below and FuzzEngineSchedule enforce that.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent is the reference queue's closure-carrying event.
type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refEngine is the pre-overhaul engine: a binary container/heap of events.
type refEngine struct {
	now    Time
	seq    uint64
	events refHeap
}

func (e *refEngine) Now() Time { return e.now }

func (e *refEngine) At(t Time, fn func()) {
	if t < e.now {
		panic("refEngine: scheduling in the past")
	}
	e.seq++
	heap.Push(&e.events, refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(refEvent)
	e.now = ev.at
	ev.fn()
	return true
}

// scheduler is the least common API of the two engines, for differential
// driving. The production adapter alternates the closure and pre-bound
// forms so their shared sequence counter is exercised too.
type scheduler interface {
	Now() Time
	At(t Time, fn func())
	Step() bool
}

// intoAdapter drives an Engine scheduling every other event through
// ScheduleInto instead of At, routing the payload word back to a closure
// table. Ordering must be indistinguishable from closures all the way down.
type intoAdapter struct {
	*Engine
	fns []func()
}

func (a *intoAdapter) At(t Time, fn func()) {
	if a.seq%2 == 0 {
		a.fns = append(a.fns, fn)
		a.Engine.ScheduleInto(t, func(_ Time, arg uint64) { a.fns[arg]() }, uint64(len(a.fns)-1))
		return
	}
	a.Engine.At(t, fn)
}

// fireRec is one observed firing: when, and which scheduled event.
type fireRec struct {
	at Time
	id int
}

// runScript drives a scheduler from a byte script: each firing event logs
// itself and spends script bytes to schedule children at small deltas (so
// same-timestamp collisions are common). The script is consumed in firing
// order, so two engines diverge loudly if their orders ever differ.
func runScript(s scheduler, data []byte) []fireRec {
	var log []fireRec
	pos, nextID := 0, 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	var schedule func(t Time)
	schedule = func(t Time) {
		id := nextID
		nextID++
		s.At(t, func() {
			log = append(log, fireRec{at: s.Now(), id: id})
			n, ok := next()
			if !ok {
				return
			}
			for j := byte(0); j < n%4; j++ {
				d, ok := next()
				if !ok {
					return
				}
				// %8 keeps deltas tiny, so same-timestamp bursts and
				// children scheduled exactly at Now() are common.
				schedule(s.Now() + Time(d%8))
			}
		})
	}
	for i := 0; i < 3; i++ {
		d, _ := next()
		schedule(Time(d % 8))
	}
	for s.Step() {
	}
	return log
}

// diffEngines runs the same script on the production engine (mixed At /
// ScheduleInto) and the container/heap reference and reports the first
// divergence.
func diffEngines(t testing.TB, data []byte) {
	t.Helper()
	got := runScript(&intoAdapter{Engine: &Engine{}}, data)
	want := runScript(&refEngine{}, data)
	if len(got) != len(want) {
		t.Fatalf("engines fired different event counts: new=%d ref=%d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("firing order diverges at event %d: new=(t=%d id=%d) ref=(t=%d id=%d)",
				i, got[i].at, got[i].id, want[i].at, want[i].id)
		}
	}
}

func TestEngineMatchesHeapReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 64+rng.Intn(512))
		rng.Read(data)
		diffEngines(t, data)
	}
}

// TestEngineMatchesReferenceSameTimestampBurst pins the FIFO contract for a
// pure burst: many events at one timestamp, half scheduled through each
// form, interleaved with nested scheduling at the already-current time.
func TestEngineMatchesReferenceSameTimestampBurst(t *testing.T) {
	newE := &intoAdapter{Engine: &Engine{}}
	ref := &refEngine{}
	var got, want []fireRec
	collect := func(s scheduler, log *[]fireRec) {
		id := 0
		for i := 0; i < 100; i++ {
			i := i
			s.At(9, func() {
				*log = append(*log, fireRec{at: s.Now(), id: id})
				id++
				if i%5 == 0 {
					s.At(s.Now(), func() { *log = append(*log, fireRec{at: s.Now(), id: -i}) })
				}
			})
		}
		for s.Step() {
		}
	}
	collect(newE, &got)
	collect(ref, &want)
	if len(got) != len(want) {
		t.Fatalf("burst fired %d events on the new engine, %d on the reference", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("burst order diverges at %d: new=%+v ref=%+v", i, got[i], want[i])
		}
	}
}

// TestEnginePoolRecycles checks the slot arena stops growing once the
// in-flight population peaks: a long self-rescheduling chain must reuse one
// slot, not leak one per event.
func TestEnginePoolRecycles(t *testing.T) {
	var e Engine
	n := 0
	var tick EventFunc
	tick = func(_ Time, _ uint64) {
		n++
		if n < 100000 {
			e.ScheduleIntoAfter(3, tick, 0)
		}
	}
	e.ScheduleIntoAfter(3, tick, 0)
	e.Run()
	if n != 100000 {
		t.Fatalf("chain fired %d times, want 100000", n)
	}
	if len(e.slots) > 4 {
		t.Errorf("slot arena grew to %d for a 1-deep chain; pool not recycling", len(e.slots))
	}
}

func TestScheduleIntoOrderingWithAt(t *testing.T) {
	var e Engine
	var got []int
	cb := func(_ Time, arg uint64) { got = append(got, int(arg)) }
	e.At(10, func() { got = append(got, 0) })
	e.ScheduleInto(10, cb, 1)
	e.At(10, func() { got = append(got, 2) })
	e.ScheduleInto(5, cb, 3)
	e.Run()
	want := []int{3, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleIntoPanics(t *testing.T) {
	var e Engine
	cb := func(Time, uint64) {}
	e.ScheduleInto(100, cb, 0)
	e.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleInto in the past should panic")
			}
		}()
		e.ScheduleInto(50, cb, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil ScheduleInto callback should panic")
			}
		}()
		e.ScheduleInto(200, nil, 0)
	}()
}
