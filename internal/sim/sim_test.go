package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClock(t *testing.T) {
	c, err := NewClock(700e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Period(); got != 1429 {
		t.Errorf("700 MHz period = %d ps, want 1429", got)
	}
	if got := c.Cycles(100); got != 142900 {
		t.Errorf("100 cycles = %d ps, want 142900", got)
	}
	if got := c.CyclesAt(142900); got != 100 {
		t.Errorf("CyclesAt(142900) = %d, want 100", got)
	}
}

func TestClockErrors(t *testing.T) {
	for _, hz := range []float64{0, -1, 2e12} {
		if _, err := NewClock(hz); err == nil {
			t.Errorf("NewClock(%v) should fail", hz)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustClock(0) should panic")
		}
	}()
	MustClock(0)
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time %d, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		var e Engine
		var log []Time
		rng := rand.New(rand.NewSource(seed))
		var spawn func(depth int)
		spawn = func(depth int) {
			log = append(log, e.Now())
			if depth < 4 {
				for i := 0; i < 3; i++ {
					e.After(Time(rng.Intn(100)+1), func() { spawn(depth + 1) })
				}
			}
		}
		e.At(0, func() { spawn(0) })
		e.Run()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineNilEventPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("nil event should panic")
		}
	}()
	e.At(1, nil)
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.RunUntil(25)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", n)
	}
	if e.Now() != 25 {
		t.Errorf("now = %d, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.RunFor(10)
	if len(fired) != 3 || e.Now() != 35 {
		t.Errorf("RunFor(10): fired=%v now=%d", fired, e.Now())
	}
}

func TestEventsNeverFireOutOfOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResource(t *testing.T) {
	r := NewResource(10)
	if done := r.Claim(0); done != 10 {
		t.Errorf("first claim done at %d, want 10", done)
	}
	if done := r.Claim(0); done != 20 {
		t.Errorf("queued claim done at %d, want 20", done)
	}
	if done := r.Claim(100); done != 110 {
		t.Errorf("idle claim done at %d, want 110", done)
	}
	if r.Grants() != 3 {
		t.Errorf("grants = %d, want 3", r.Grants())
	}
	if r.BusyTime() != 30 {
		t.Errorf("busy = %d, want 30", r.BusyTime())
	}
	if u := r.Utilization(300); u != 0.1 {
		t.Errorf("utilization = %v, want 0.1", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Errorf("utilization at t=0 = %v, want 0", u)
	}
}

func TestResourceClaimN(t *testing.T) {
	r := NewResource(10)
	if done := r.ClaimN(0, 5); done != 50 {
		t.Errorf("burst done at %d, want 50", done)
	}
	if r.Grants() != 5 {
		t.Errorf("grants = %d, want 5", r.Grants())
	}
}

func TestResourceClaimFor(t *testing.T) {
	r := NewResource(10)
	if done := r.ClaimFor(0, 2); done != 2 {
		t.Errorf("narrow claim done at %d, want 2", done)
	}
	if done := r.ClaimFor(0, 0); done != 3 {
		t.Errorf("zero-service claim should take 1, done at %d", done)
	}
	if r.Service() != 10 {
		t.Errorf("service = %d, want 10", r.Service())
	}
}

func TestResourceMonotoneUnderLoad(t *testing.T) {
	// Claims arriving in nondecreasing time order complete in order.
	f := func(gaps []uint8) bool {
		r := NewResource(7)
		var at, last Time
		for _, g := range gaps {
			at += Time(g)
			done := r.Claim(at)
			if done < last || done < at+7 {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
