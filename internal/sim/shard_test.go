package sim

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// shardedScheduler drives the heapref differential script through a
// ShardedEngine: events are scheduled on shard 0 through the same mixed
// At/ScheduleInto adapter, but execution goes through the conservative
// window loop instead of a bare Step loop. Any window width must fire the
// identical order — a window boundary leaves no timing residue.
type shardedScheduler struct {
	*intoAdapter
	se  *ShardedEngine
	ran bool
}

func (s *shardedScheduler) Step() bool {
	if s.ran {
		return false
	}
	s.ran = true
	s.se.Run()
	return true
}

// corpusScripts loads every checked-in FuzzEngineSchedule corpus entry, so
// the sharded engine replays exactly the schedules the fuzzer minimized
// against the serial reference.
func corpusScripts(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzEngineSchedule")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	scripts := make(map[string][]byte)
	for _, ent := range entries {
		blob, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(blob), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			q, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				t.Fatalf("%s: cannot unquote corpus line %q: %v", ent.Name(), line, err)
			}
			scripts[ent.Name()] = []byte(q)
		}
	}
	if len(scripts) == 0 {
		t.Fatal("no corpus scripts found")
	}
	return scripts
}

// diffSharded replays one schedule through the reference engine and through
// single-shard ShardedEngines of several lookahead widths, requiring the
// bit-identical firing order from each.
func diffSharded(t *testing.T, name string, data []byte) {
	t.Helper()
	want := runScript(&refEngine{}, data)
	for _, la := range []Time{1, 3, 64, Microsecond} {
		se := NewShardedEngine(1, la)
		got := runScript(&shardedScheduler{intoAdapter: &intoAdapter{Engine: se.Shard(0)}, se: se}, data)
		if len(got) != len(want) {
			t.Fatalf("%s lookahead=%d: sharded fired %d events, reference %d", name, la, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s lookahead=%d: order diverges at event %d: sharded=(t=%d id=%d) ref=(t=%d id=%d)",
					name, la, i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
	}
}

// TestShardedEngineReplaysFuzzCorpus replays the checked-in differential
// fuzz corpus through the sharded engine: the conservative window loop must
// fire every minimized schedule in exactly the serial reference order,
// whatever the window width.
func TestShardedEngineReplaysFuzzCorpus(t *testing.T) {
	for name, data := range corpusScripts(t) {
		diffSharded(t, name, data)
	}
}

// TestShardedEngineMatchesReferenceRandom is the randomized-schedule analog
// of TestEngineMatchesHeapReference for the window loop.
func TestShardedEngineMatchesReferenceRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 64+rng.Intn(512))
		rng.Read(data)
		diffSharded(t, "seed", data)
	}
}

// TestShardedEngineBurstNested replays the same-timestamp burst and
// zero-delta nested schedules (the heapref pinned cases) through the
// window loop.
func TestShardedEngineBurstNested(t *testing.T) {
	for name, data := range map[string][]byte{
		"burst-nested":     {1, 2, 3, 3, 0, 0, 0, 3, 1, 1, 1},
		"same-timestamp":   {7, 7, 7, 3, 7, 7, 7, 3, 7, 7, 7, 3, 7, 7, 7},
		"zero-delta-chain": []byte("\x05\x00\x05\x03\x08\x08\x08\x02\x01\x00\x03\x09\x00\x03\x00\x00\x00\x03\x00\x00\x00"),
	} {
		diffSharded(t, name, data)
	}
}

// shardRec is one observed shard-local firing or message receipt.
type shardRec struct {
	at   Time
	kind byte // 'l' local chain event, 'm' message receipt
	val  uint64
}

// fleetRun executes a synthetic multi-shard workload: every shard runs an
// LCG-driven self-rescheduling chain, and every few events sends a
// timestamped message to the next shard (carrying the sender's LCG state),
// whose receipt schedules a local follow-up. It returns the per-shard
// firing logs plus the engine's aggregate counters.
func fleetRun(shards, workers int, lookahead Time, events int) ([][]shardRec, *ShardedEngine) {
	se := NewShardedEngine(shards, lookahead)
	se.Workers = workers
	logs := make([][]shardRec, shards)
	for k := 0; k < shards; k++ {
		k := k
		e := se.Shard(k)
		lcg := uint64(k)*0x9e3779b97f4a7c15 + 1
		n := 0
		var chain, recv EventFunc
		recv = func(now Time, arg uint64) {
			logs[k] = append(logs[k], shardRec{at: now, kind: 'm', val: arg})
			// A receipt spawns local work at a data-dependent delta.
			e.ScheduleIntoAfter(Time(arg%97), func(now Time, arg uint64) {
				logs[k] = append(logs[k], shardRec{at: now, kind: 'l', val: arg})
			}, arg^0xff)
		}
		chain = func(now Time, _ uint64) {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			logs[k] = append(logs[k], shardRec{at: now, kind: 'l', val: lcg})
			n++
			if n >= events {
				return
			}
			if n%5 == 0 {
				dest := ShardID((k + 1) % shards)
				e.Send(dest, now+lookahead+Time(lcg%256), recv, lcg)
			}
			e.ScheduleIntoAfter(1+Time(lcg%128), chain, 0)
		}
		e.ScheduleInto(Time(k%7), chain, 0)
	}
	se.Run()
	return logs, se
}

// TestShardedEngineWorkerCountInvariance is the acceptance test for the
// conservative protocol: the same multi-shard workload, executed serially
// (Workers=1) and on 2 and 4 workers, must produce bit-identical per-shard
// event orders and identical window/message/event counts.
func TestShardedEngineWorkerCountInvariance(t *testing.T) {
	const shards, events = 5, 400
	wantLogs, wantEng := fleetRun(shards, 1, 500, events)
	if wantEng.Delivered() == 0 {
		t.Fatal("workload generated no cross-shard messages; the test is vacuous")
	}
	if wantEng.Windows() < 2 {
		t.Fatal("workload ran in a single window; the test is vacuous")
	}
	for _, workers := range []int{2, 4} {
		gotLogs, gotEng := fleetRun(shards, workers, 500, events)
		if gotEng.Fired() != wantEng.Fired() || gotEng.Windows() != wantEng.Windows() ||
			gotEng.Delivered() != wantEng.Delivered() {
			t.Fatalf("workers=%d counters diverge: fired %d/%d windows %d/%d messages %d/%d",
				workers, gotEng.Fired(), wantEng.Fired(), gotEng.Windows(), wantEng.Windows(),
				gotEng.Delivered(), wantEng.Delivered())
		}
		for k := range wantLogs {
			if len(gotLogs[k]) != len(wantLogs[k]) {
				t.Fatalf("workers=%d shard %d fired %d records, serial fired %d",
					workers, k, len(gotLogs[k]), len(wantLogs[k]))
			}
			for i := range wantLogs[k] {
				if gotLogs[k][i] != wantLogs[k][i] {
					t.Fatalf("workers=%d shard %d diverges at record %d: got %+v want %+v",
						workers, k, i, gotLogs[k][i], wantLogs[k][i])
				}
			}
		}
	}
}

// TestShardedEngineLookaheadInvariance: the same workload under different
// lookahead windows fires identically per shard — window width buys
// parallelism, never different physics. (Message timestamps here embed the
// lookahead, so compare only the local chain records' LCG values.)
func TestShardedEngineLookaheadInvariance(t *testing.T) {
	extract := func(logs [][]shardRec) [][]uint64 {
		out := make([][]uint64, len(logs))
		for k, l := range logs {
			for _, r := range l {
				if r.kind == 'l' && r.val != 0 {
					out[k] = append(out[k], r.val)
				}
			}
		}
		return out
	}
	base, _ := fleetRun(3, 1, 300, 200)
	want := extract(base)
	for _, la := range []Time{301, 1000} {
		logs, _ := fleetRun(3, 2, la, 200)
		got := extract(logs)
		for k := range want {
			if len(got[k]) != len(want[k]) {
				t.Fatalf("lookahead=%d shard %d chain length %d, want %d", la, k, len(got[k]), len(want[k]))
			}
		}
	}
}

// TestShardedEngineInterruptStopsAllShards: latching the interrupt mid-run
// halts every shard within one poll stride, leaving queues intact.
func TestShardedEngineInterruptStopsAllShards(t *testing.T) {
	const shards = 4
	se := NewShardedEngine(shards, 50)
	var fired atomic.Uint64
	for k := 0; k < shards; k++ {
		e := se.Shard(k)
		var chain EventFunc
		chain = func(_ Time, n uint64) {
			fired.Add(1)
			e.ScheduleIntoAfter(3, chain, n+1)
		}
		e.ScheduleInto(1, chain, 0)
	}
	const cutoff = 20000
	se.Interrupt = func() bool { return fired.Load() >= cutoff }
	se.Run()
	got := se.Fired()
	if got < cutoff {
		t.Fatalf("run stopped after %d events, before the %d-event cutoff", got, cutoff)
	}
	// Every shard polls at least every interruptStride events, so the
	// overshoot is bounded by one stride per shard.
	if max := uint64(cutoff + shards*interruptStride); got > max {
		t.Errorf("run fired %d events after a cutoff of %d; interrupt did not stop shards promptly (bound %d)",
			got, cutoff, max)
	}
	if se.Pending() == 0 {
		t.Error("interrupted run drained its queues; expected pending events to remain")
	}
	// A fresh Run picks the queues back up after the latch is cleared.
	se.stop.Store(false)
	se.Interrupt = func() bool { return fired.Load() >= 2*cutoff }
	se.Run()
	if se.Fired() <= got {
		t.Error("resumed run made no progress")
	}
}

// TestShardedEngineSetupSends: messages sent before Run (engine clocks at
// zero) are delivered even to shards with no local events.
func TestShardedEngineSetupSends(t *testing.T) {
	se := NewShardedEngine(3, 10)
	var got []uint64
	se.Shard(0).Send(2, 10, func(now Time, arg uint64) {
		got = append(got, arg)
	}, 7)
	se.Run()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("setup-time send not delivered: got %v", got)
	}
	if se.Delivered() != 1 {
		t.Fatalf("Delivered() = %d, want 1", se.Delivered())
	}
}

// TestShardedEngineSendContract pins the conservative-protocol panics: a
// remote send inside the lookahead window, to an unknown shard, or with a
// nil callback is always a component bug.
func TestShardedEngineSendContract(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	se := NewShardedEngine(2, 100)
	cb := func(Time, uint64) {}
	mustPanic("send inside lookahead", func() { se.Shard(0).Send(1, 99, cb, 0) })
	mustPanic("send to unknown shard", func() { se.Shard(0).Send(5, 1000, cb, 0) })
	mustPanic("nil send", func() { se.Shard(0).Send(1, 1000, nil, 0) })
	mustPanic("zero shards", func() { NewShardedEngine(0, 100) })
	mustPanic("zero lookahead", func() { NewShardedEngine(2, 0) })

	// Local sends (and standalone engines) fall back to ScheduleInto, with
	// its weaker at >= now contract.
	se.Shard(0).Send(0, 1, cb, 0)
	var standalone Engine
	standalone.Send(0, 1, cb, 0)
	if se.Shard(0).Pending() != 1 || standalone.Pending() != 1 {
		t.Error("local Send did not schedule")
	}
}

// TestShardedEngineRunUntilInterrupt covers the satellite fix: a bounded
// RunUntil on a plain engine now honors Interrupt instead of running to
// the deadline regardless.
func TestShardedEngineRunUntilInterrupt(t *testing.T) {
	var e Engine
	n := 0
	var chain EventFunc
	chain = func(_ Time, _ uint64) {
		n++
		e.ScheduleIntoAfter(1, chain, 0)
	}
	e.ScheduleInto(0, chain, 0)
	e.Interrupt = func() bool { return n >= 2*interruptStride }
	e.RunUntil(Time(100 * interruptStride))
	if n >= 100*interruptStride {
		t.Fatalf("RunUntil ignored Interrupt: fired %d events", n)
	}
}
