package sim

// Resource models a pipelined, bandwidth-limited shared resource such as a
// DRAM channel or a bus: each grant occupies the resource for a fixed
// service time, and requests queue FIFO. Claim returns the time at which a
// request arriving at 'at' finishes service.
//
// This is the classic "next free time" server model: latency under load is
// queueing delay + service time, which is what produces the full-IOMMU DRAM
// saturation behaviour in Figure 4.
type Resource struct {
	free    Time // next time the resource is idle
	service Time // occupancy per grant
	grants  uint64
	busy    Time // accumulated busy time, for utilization
}

// NewResource returns a resource whose each grant occupies it for service
// picoseconds.
func NewResource(service Time) *Resource {
	if service == 0 {
		service = 1
	}
	return &Resource{service: service}
}

// Claim reserves the next service slot at or after time at and returns the
// completion time of this grant.
func (r *Resource) Claim(at Time) Time {
	return r.ClaimFor(at, r.service)
}

// ClaimFor reserves the resource for a custom occupancy (e.g. a narrow
// DRAM access that does not fill a whole burst).
func (r *Resource) ClaimFor(at, service Time) Time {
	if service == 0 {
		service = 1
	}
	start := at
	if r.free > start {
		start = r.free
	}
	done := start + service
	r.free = done
	r.grants++
	r.busy += service
	return done
}

// ClaimN reserves n consecutive service slots (a burst) and returns the
// completion time of the burst.
func (r *Resource) ClaimN(at Time, n uint64) Time {
	start := at
	if r.free > start {
		start = r.free
	}
	done := start + Time(n)*r.service
	r.free = done
	r.grants += n
	r.busy += Time(n) * r.service
	return done
}

// Service returns the per-grant occupancy.
func (r *Resource) Service() Time { return r.service }

// Grants returns how many grants have been issued.
func (r *Resource) Grants() uint64 { return r.grants }

// BusyTime returns the accumulated service time granted.
func (r *Resource) BusyTime() Time { return r.busy }

// Utilization returns busy time divided by elapsed time (0 when elapsed==0).
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}
