package sim

// Sharded conservative-PDES execution: one simulated run, many cores.
//
// A ShardedEngine partitions a simulation into shard-local Engines — each
// keeping the pooled 4-ary indexed heap and its own (at, seq) total order —
// connected only by timestamped cross-shard messages (Engine.Send). Shards
// synchronize conservatively: messages must land at least the lookahead
// window past the sender's clock, so within any window of width lookahead
// starting at the global minimum next-event time, every shard can execute
// its local events without hearing from the others. The run loop is the
// synchronous-window (YAWNS-style) variant of the classic
// Chandy–Misra–Bryant protocol: the per-window earliest-output-time
// announcements that CMB carries in null messages are batched into one
// barrier per window. See DESIGN.md §13 for the determinism argument.
//
// Determinism: shard-local execution is sequential, so each shard's
// (at, seq) order is exactly the serial engine's; messages generated during
// a window are merged at the barrier in canonical (at, sender shard, sender
// sequence) order before delivery, so destination sequence numbers — and
// therefore every downstream artifact — are independent of how many worker
// goroutines executed the window. Workers only changes wall-clock time,
// never a single simulated outcome.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bordercontrol/internal/stats"
)

// ShardID identifies one shard-local engine within a ShardedEngine.
type ShardID int32

// xmsg is one in-flight cross-shard message: a pre-bound callback to fire
// on the destination shard at a timestamp at least lookahead past the
// sender's clock. from/seq give the canonical merge order at the barrier.
type xmsg struct {
	at   Time
	to   ShardID
	cb   EventFunc
	arg  uint64
	from ShardID
	seq  uint64
}

// ShardedEngine coordinates shard-local Engines under a conservative
// lookahead window. Build one with NewShardedEngine, bind each simulated
// component to exactly one shard (Shard(i)), and communicate across shards
// only through Engine.Send. The zero value is not usable.
type ShardedEngine struct {
	shards    []*Engine
	lookahead Time

	// Workers bounds how many shards execute concurrently within one
	// window: 0 = GOMAXPROCS, 1 = serial. It is pure execution policy —
	// every simulated outcome is bit-identical at any setting.
	Workers int

	// Interrupt, when non-nil, is polled between events on every shard and
	// at each window barrier; when it reports true the whole sharded run
	// stops promptly, leaving the remaining queues intact. Unlike a
	// single Engine's Interrupt it MUST be safe for concurrent use: shard
	// worker goroutines poll it in parallel (a context-cancellation poll
	// is; anything touching shared state must synchronize).
	Interrupt func() bool

	// stop latches the first true Interrupt poll (or an explicit Stop) so
	// every other shard halts at its next poll without re-invoking the
	// user's Interrupt.
	stop atomic.Bool

	// runnable and scratch are reused across windows; msgs is the barrier
	// merge buffer.
	runnable []int32
	msgs     []xmsg
	next     atomic.Int32 // window work-stealing cursor

	windows   uint64 // conservative windows executed
	delivered uint64 // cross-shard messages delivered
	maxSkew   Time   // widest now-spread observed at a barrier
}

// NewShardedEngine returns an engine of n shards under the given lookahead
// window. Every cross-shard message must be timestamped at least lookahead
// past its sender's clock; model it as the latency of the border crossing
// the message represents (a doorbell write, an IRQ, a DMA descriptor
// fetch). n must be at least 1 and lookahead at least 1 ps.
func NewShardedEngine(n int, lookahead Time) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardedEngine needs at least one shard, got %d", n))
	}
	if lookahead == 0 {
		panic("sim: ShardedEngine needs a non-zero lookahead window")
	}
	s := &ShardedEngine{lookahead: lookahead}
	s.shards = make([]*Engine, n)
	for i := range s.shards {
		s.shards[i] = &Engine{shard: ShardID(i), owner: s, outbox: make([]xmsg, 0)}
	}
	return s
}

// NumShards returns how many shard-local engines the run is partitioned
// into.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Shard returns shard i's local engine. Components bound to a shard
// schedule on it exactly as on a standalone Engine.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Lookahead returns the conservative window width.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// Now returns the maximum shard-local clock — the furthest point simulated
// time has reached anywhere. Individual shards may lag by up to the
// current window width.
func (s *ShardedEngine) Now() Time {
	var t Time
	for _, e := range s.shards {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Fired returns the total events executed across all shards.
func (s *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, e := range s.shards {
		n += e.fired
	}
	return n
}

// Pending returns the total events scheduled but not yet executed,
// including cross-shard messages not yet delivered.
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, e := range s.shards {
		n += len(e.heap) + len(e.outbox)
	}
	return n
}

// Windows returns how many conservative windows the run executed.
func (s *ShardedEngine) Windows() uint64 { return s.windows }

// Delivered returns how many cross-shard messages have been merged and
// delivered at window barriers.
func (s *ShardedEngine) Delivered() uint64 { return s.delivered }

// MaxSkew returns the widest spread between the fastest and slowest
// non-idle shard clock observed at any barrier — how much concurrency the
// lookahead window actually admitted.
func (s *ShardedEngine) MaxSkew() Time { return s.maxSkew }

// Stop makes every shard halt at its next interrupt poll. Safe to call
// concurrently with Run.
func (s *ShardedEngine) Stop() { s.stop.Store(true) }

// interrupted reports (and latches) whether the run should stop.
func (s *ShardedEngine) interrupted() bool {
	if s.stop.Load() {
		return true
	}
	if s.Interrupt != nil && s.Interrupt() {
		s.stop.Store(true)
		return true
	}
	return false
}

// workers resolves the effective window parallelism.
func (s *ShardedEngine) workers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// nextEventTime returns the minimum pending-event timestamp across shards.
func (s *ShardedEngine) nextEventTime() (Time, bool) {
	var min Time
	ok := false
	for _, e := range s.shards {
		if len(e.heap) == 0 {
			continue
		}
		if t := e.slots[e.heap[0]].at; !ok || t < min {
			min, ok = t, true
		}
	}
	return min, ok
}

// Run executes the sharded simulation to completion (or interruption) and
// returns the final simulated time. Each iteration computes the global
// lower bound t of pending-event time, executes every shard's events in
// [t, t+lookahead) — in parallel, bounded by Workers — and then merges and
// delivers the window's cross-shard messages in canonical order. Message
// timestamps are at least send-time + lookahead >= t + lookahead, so no
// message can land inside the window that produced it: every shard's
// window execution is independent, and the protocol never deadlocks.
func (s *ShardedEngine) Run() Time {
	for !s.interrupted() {
		// Deliver first so messages sent during setup (or by the previous
		// window) are visible to the lower-bound computation.
		s.deliver()
		t, ok := s.nextEventTime()
		if !ok {
			break
		}
		s.windows++
		s.runWindow(t + s.lookahead)
		s.observeSkew()
	}
	return s.Now()
}

// runWindow executes every shard's events with timestamps below horizon.
func (s *ShardedEngine) runWindow(horizon Time) {
	s.runnable = s.runnable[:0]
	for i, e := range s.shards {
		if len(e.heap) > 0 && e.slots[e.heap[0]].at < horizon {
			s.runnable = append(s.runnable, int32(i))
		}
	}
	workers := s.workers()
	if workers > len(s.runnable) {
		workers = len(s.runnable)
	}
	if workers <= 1 {
		for _, i := range s.runnable {
			s.shards[i].runWindow(horizon)
		}
		return
	}
	// Work-stealing over the runnable shards: workers pull the next index
	// from an atomic cursor. Shards touch only shard-local state during a
	// window, so the only synchronization needed is the barrier itself.
	s.next.Store(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := s.next.Add(1) - 1
				if int(k) >= len(s.runnable) {
					return
				}
				s.shards[s.runnable[k]].runWindow(horizon)
			}
		}()
	}
	wg.Wait()
}

// deliver merges every shard's outbox in canonical (at, sender, sender
// sequence) order and schedules the messages into their destination
// shards. The order is a pure function of simulated state, so destination
// sequence numbering is identical at any worker count.
func (s *ShardedEngine) deliver() {
	s.msgs = s.msgs[:0]
	for _, e := range s.shards {
		s.msgs = append(s.msgs, e.outbox...)
		e.outbox = e.outbox[:0]
	}
	if len(s.msgs) == 0 {
		return
	}
	sort.Slice(s.msgs, func(i, j int) bool {
		a, b := &s.msgs[i], &s.msgs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	for i := range s.msgs {
		m := &s.msgs[i]
		s.shards[m.to].ScheduleInto(m.at, m.cb, m.arg)
		m.cb = nil // release the callback reference
	}
	s.delivered += uint64(len(s.msgs))
}

// observeSkew records the now-spread across shards that fired any events.
func (s *ShardedEngine) observeSkew() {
	var lo, hi Time
	first := true
	for _, e := range s.shards {
		if e.fired == 0 {
			continue
		}
		if first || e.now < lo {
			lo = e.now
		}
		if first || e.now > hi {
			hi = e.now
		}
		first = false
	}
	if !first && hi-lo > s.maxSkew {
		s.maxSkew = hi - lo
	}
}

// RegisterMetrics publishes the coordinator's counters under sc
// ("...windows", "...messages", "...shards", "...max_skew_ps"). Per-shard
// engine counters register through each shard's own Engine.RegisterMetrics.
func (s *ShardedEngine) RegisterMetrics(sc stats.Scope) {
	sc.CounterFunc("windows", func() uint64 { return s.windows })
	sc.CounterFunc("messages", func() uint64 { return s.delivered })
	sc.CounterFunc("shards", func() uint64 { return uint64(len(s.shards)) })
	sc.CounterFunc("max_skew_ps", func() uint64 { return uint64(s.maxSkew) })
	sc.CounterFunc("events", s.Fired)
}

// ShardID returns which shard of a ShardedEngine this engine is; a
// standalone engine is shard 0.
func (e *Engine) ShardID() ShardID { return e.shard }

// Sharded returns the coordinating ShardedEngine, or nil for a standalone
// engine.
func (e *Engine) Sharded() *ShardedEngine { return e.owner }

// Send schedules the pre-bound callback cb to fire on shard `to` at
// absolute time at — the cross-shard border crossing of a sharded run. On
// a standalone engine, or when to is the local shard, it is exactly
// ScheduleInto. A genuinely remote send must satisfy the conservative
// contract at >= Now() + lookahead (model the crossing's real latency —
// doorbells, IRQs and DMA descriptor fetches are never free); violating it
// panics, because it would let a message land inside the window that
// produced it and break determinism.
//
// Call Send only from the sending shard's own events (or during setup,
// before Run): the outbox is shard-local and unsynchronized by design.
func (e *Engine) Send(to ShardID, at Time, cb EventFunc, arg uint64) {
	if e.owner == nil || to == e.shard {
		e.ScheduleInto(at, cb, arg)
		return
	}
	s := e.owner
	if int(to) < 0 || int(to) >= len(s.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d of %d", to, len(s.shards)))
	}
	if cb == nil {
		panic("sim: sending nil event")
	}
	if at < e.now+s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send at %d violates lookahead (now %d + %d)",
			at, e.now, s.lookahead))
	}
	e.sendSeq++
	e.outbox = append(e.outbox, xmsg{at: at, to: to, cb: cb, arg: arg, from: e.shard, seq: e.sendSeq})
}

// SendAfter is Send at d picoseconds from now; d must be at least the
// lookahead window for a remote destination.
func (e *Engine) SendAfter(to ShardID, d Time, cb EventFunc, arg uint64) {
	e.Send(to, e.now+d, cb, arg)
}

// runWindow executes events with timestamps strictly below limit, polling
// the interrupt chain on the usual stride. Unlike RunUntil it never
// advances the clock past the last fired event: a window boundary leaves
// no timing residue, so the same schedule fires identically whatever
// window boundaries sliced it.
func (e *Engine) runWindow(limit Time) uint64 {
	var n uint64
	for len(e.heap) > 0 && e.slots[e.heap[0]].at < limit {
		if e.fired%interruptStride == 0 && e.interrupted() {
			break
		}
		e.Step()
		n++
	}
	return n
}

// interrupted polls this shard's own Interrupt and the coordinator's
// latched stop flag, so one shard's cancellation halts every other shard
// at its next poll.
func (e *Engine) interrupted() bool {
	if e.Interrupt != nil && e.Interrupt() {
		if e.owner != nil {
			e.owner.stop.Store(true)
		}
		return true
	}
	return e.owner != nil && e.owner.interrupted()
}
