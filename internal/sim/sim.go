// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is kept in integer picoseconds so that components in different clock
// domains (a 3 GHz CPU, a 700 MHz GPU, a DRAM channel) can schedule events
// on one shared timeline without rounding drift. A Clock converts between a
// domain's cycles and picoseconds.
//
// Determinism: events at the same timestamp fire in the order they were
// scheduled (FIFO by sequence number), so a run is a pure function of its
// inputs.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// Time is a simulation timestamp in picoseconds.
type Time uint64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Clock describes a clock domain by its period. The zero Clock is invalid;
// use NewClock.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock domain running at hz cycles per second.
// Frequencies above 1 THz or below 1 Hz are rejected.
func NewClock(hz float64) (Clock, error) {
	if hz <= 0 || hz > 1e12 || math.IsNaN(hz) {
		return Clock{}, fmt.Errorf("sim: invalid clock frequency %v Hz", hz)
	}
	p := Time(math.Round(1e12 / hz))
	if p == 0 {
		p = 1
	}
	return Clock{period: p}, nil
}

// MustClock is NewClock for known-good constants; it panics on error.
func MustClock(hz float64) Clock {
	c, err := NewClock(hz)
	if err != nil {
		panic(err)
	}
	return c
}

// Period returns the picoseconds per cycle of this domain.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count in this domain to a duration.
func (c Clock) Cycles(n uint64) Time { return Time(n) * c.period }

// CyclesAt returns how many full cycles of this domain fit in t.
func (c Clock) CyclesAt(t Time) uint64 {
	if c.period == 0 {
		return 0
	}
	return uint64(t / c.period)
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero Engine is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64

	// Interrupt, when non-nil, is polled by Run every interruptStride
	// events; when it reports true, Run stops between events with the
	// remaining queue intact. It lets a caller abort a long simulation from
	// outside the simulated timeline (context cancellation, timeouts)
	// without affecting the determinism of runs that complete.
	Interrupt func() bool

	// Tracer, when non-nil, receives a queue-depth counter sample every
	// interruptStride events under the "engine" category. It is pure
	// observation: attaching a tracer never changes scheduling.
	Tracer *trace.Tracer
}

// interruptStride is how many events Run executes between Interrupt polls;
// a power of two so the check compiles to a mask.
const interruptStride = 4096

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a component bug, never valid input.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the single next event. It reports false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty (or Interrupt reports true)
// and returns the final time.
func (e *Engine) Run() Time {
	for {
		if e.fired%interruptStride == 0 {
			if e.Interrupt != nil && e.Interrupt() {
				break
			}
			if e.Tracer != nil {
				e.Tracer.Counter("engine", "pending_events", uint64(e.now), float64(len(e.events)))
			}
		}
		if !e.Step() {
			break
		}
	}
	return e.now
}

// RegisterMetrics publishes the engine's progress counters under s
// ("engine.events", "engine.pending", "engine.now_ps").
func (e *Engine) RegisterMetrics(s stats.Scope) {
	s.CounterFunc("events", e.Fired)
	s.CounterFunc("pending", func() uint64 { return uint64(e.Pending()) })
	s.CounterFunc("now_ps", func() uint64 { return uint64(e.now) })
}

// RunUntil executes events with timestamps <= deadline, then advances the
// simulated clock to the deadline. Events scheduled beyond the deadline stay
// queued. It reports how many events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor runs for d picoseconds past the current time (see RunUntil).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }
