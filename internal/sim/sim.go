// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is kept in integer picoseconds so that components in different clock
// domains (a 3 GHz CPU, a 700 MHz GPU, a DRAM channel) can schedule events
// on one shared timeline without rounding drift. A Clock converts between a
// domain's cycles and picoseconds.
//
// Determinism: events at the same timestamp fire in the order they were
// scheduled (FIFO by sequence number), so a run is a pure function of its
// inputs.
//
// The event queue is engineered for the hot path: an inlined 4-ary min-heap
// of int32 indexes into a flat slot arena, with freed slots recycled through
// a free list. Steady-state scheduling and firing allocates nothing — see
// DESIGN.md §10 for the layout and the determinism argument.
package sim

import (
	"fmt"
	"math"

	"bordercontrol/internal/stats"
	"bordercontrol/internal/trace"
)

// Time is a simulation timestamp in picoseconds.
type Time uint64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Clock describes a clock domain by its period. The zero Clock is invalid;
// use NewClock.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a clock domain running at hz cycles per second.
// Frequencies above 1 THz or below 1 Hz are rejected.
func NewClock(hz float64) (Clock, error) {
	if hz <= 0 || hz > 1e12 || math.IsNaN(hz) {
		return Clock{}, fmt.Errorf("sim: invalid clock frequency %v Hz", hz)
	}
	p := Time(math.Round(1e12 / hz))
	if p == 0 {
		p = 1
	}
	return Clock{period: p}, nil
}

// MustClock is NewClock for known-good constants; it panics on error.
func MustClock(hz float64) Clock {
	c, err := NewClock(hz)
	if err != nil {
		panic(err)
	}
	return c
}

// Period returns the picoseconds per cycle of this domain.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count in this domain to a duration.
func (c Clock) Cycles(n uint64) Time { return Time(n) * c.period }

// CyclesAt returns how many full cycles of this domain fit in t.
func (c Clock) CyclesAt(t Time) uint64 {
	if c.period == 0 {
		return 0
	}
	return uint64(t / c.period)
}

// EventFunc is the pre-bound event callback form: fired with the current
// simulation time and the payload word it was scheduled with. Bind the func
// value once (at component construction) and thread per-event state through
// arg — scheduling it then allocates nothing, unlike a fresh closure.
type EventFunc func(now Time, arg uint64)

// event is one scheduled callback, stored in the engine's slot arena.
// Exactly one of fn and cb is set: fn is the closure form (At/After), cb+arg
// the pre-bound form (ScheduleInto).
type event struct {
	at  Time
	seq uint64
	fn  func()
	cb  EventFunc
	arg uint64
}

// Engine is a discrete-event simulator. The zero Engine is ready to use.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// The pending-event queue: heap is a 4-ary min-heap of indexes into the
	// slots arena, ordered by (at, seq); free recycles retired slot indexes
	// LIFO so the arena stops growing once the in-flight population peaks.
	slots []event
	heap  []int32
	free  []int32

	// Interrupt, when non-nil, is polled by Run every interruptStride
	// events; when it reports true, Run stops between events with the
	// remaining queue intact. It lets a caller abort a long simulation from
	// outside the simulated timeline (context cancellation, timeouts)
	// without affecting the determinism of runs that complete.
	Interrupt func() bool

	// Tracer, when non-nil, receives a queue-depth counter sample every
	// interruptStride events under the "engine" category. It is pure
	// observation: attaching a tracer never changes scheduling.
	Tracer *trace.Tracer

	// depthHist distributes the pending-queue depth, sampled on a fixed
	// simulated-time cadence (depthCadence). The sample is taken inside
	// Step — no sampler event is ever scheduled, so the event count, the
	// sequence numbering, and every artifact derived from them are
	// identical with or without anyone reading the histogram.
	depthHist stats.Histogram
	nextDepth Time

	// Sharded execution (see shard.go): which shard of a ShardedEngine
	// this engine is, the coordinator, the shard-local outbox of pending
	// cross-shard messages, and the sender-side message sequence counter
	// used for the canonical barrier merge. All zero for a standalone
	// engine, which behaves exactly as before.
	shard   ShardID
	owner   *ShardedEngine
	outbox  []xmsg
	sendSeq uint64
}

// interruptStride is how many events Run executes between Interrupt polls;
// a power of two so the check compiles to a mask.
const interruptStride = 4096

// depthCadence is the simulated-time interval between queue-depth samples.
const depthCadence = Microsecond

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc returns a free slot index, growing the arena only when no retired
// slot is available.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slots = append(e.slots, event{})
	return int32(len(e.slots) - 1)
}

// siftUp restores heap order after an append at position i. The hole
// technique: hold the new index in a register and slide parents down.
func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	at, seq := e.slots[idx].at, e.slots[idx].seq
	for i > 0 {
		p := (i - 1) >> 2
		ps := &e.slots[h[p]]
		if ps.at < at || (ps.at == at && ps.seq < seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = idx
}

// siftDown re-inserts index idx starting from the root after a pop.
func (e *Engine) siftDown(idx int32) {
	h := e.heap
	n := len(h)
	at, seq := e.slots[idx].at, e.slots[idx].seq
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Pick the least of up to four children.
		m := c
		ms := &e.slots[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			js := &e.slots[h[j]]
			if js.at < ms.at || (js.at == ms.at && js.seq < ms.seq) {
				m, ms = j, js
			}
		}
		if at < ms.at || (at == ms.at && seq < ms.seq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = idx
}

// schedule files slot idx (whose at/seq are already set) into the heap.
func (e *Engine) schedule(idx int32) {
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a component bug, never valid input.
//
// The closure form is convenient for setup and low-frequency events; code on
// the per-request hot path should use ScheduleInto, whose pre-bound callback
// avoids allocating a closure per event.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	idx := e.alloc()
	s := &e.slots[idx]
	s.at, s.seq, s.fn, s.cb, s.arg = t, e.seq, fn, nil, 0
	e.schedule(idx)
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// ScheduleInto schedules the pre-bound callback cb to fire at absolute time
// t with payload arg. It is the allocation-free form of At: cb should be a
// long-lived func value (a field bound at component construction), with all
// per-event state packed into arg or reachable from cb's receiver. Ordering
// is identical to At — the two forms share one sequence counter.
func (e *Engine) ScheduleInto(t Time, cb EventFunc, arg uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	if cb == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	idx := e.alloc()
	s := &e.slots[idx]
	s.at, s.seq, s.fn, s.cb, s.arg = t, e.seq, nil, cb, arg
	e.schedule(idx)
}

// ScheduleIntoAfter is ScheduleInto at d picoseconds from now.
func (e *Engine) ScheduleIntoAfter(d Time, cb EventFunc, arg uint64) {
	e.ScheduleInto(e.now+d, cb, arg)
}

// Step executes the single next event. It reports false if no events remain.
func (e *Engine) Step() bool {
	h := e.heap
	n := len(h)
	if n == 0 {
		return false
	}
	idx := h[0]
	last := h[n-1]
	e.heap = h[:n-1]
	if n > 1 {
		e.siftDown(last)
	}
	s := &e.slots[idx]
	e.now = s.at
	e.fired++
	if e.now >= e.nextDepth {
		// One sample per elapsed cadence window, stamped at the first event
		// that crosses the boundary. Depth here still includes this event's
		// successors only — it was already popped above.
		e.depthHist.Record(uint64(len(e.heap)))
		e.nextDepth = e.now + depthCadence
	}
	fn, cb, arg := s.fn, s.cb, s.arg
	// Clear the callback references before firing: the slot is recycled (a
	// callback may immediately schedule into it) and must not pin closures
	// for the GC.
	s.fn, s.cb = nil, nil
	e.free = append(e.free, idx)
	if cb != nil {
		cb(e.now, arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty (or Interrupt reports true)
// and returns the final time. On a shard of a ShardedEngine the poll also
// covers the coordinator's stop flag, so a run driven directly through a
// shard still honors fleet-wide cancellation.
func (e *Engine) Run() Time {
	for {
		if e.fired%interruptStride == 0 {
			if e.interrupted() {
				break
			}
			if e.Tracer != nil {
				e.Tracer.Counter("engine", "pending_events", uint64(e.now), float64(len(e.heap)))
			}
		}
		if !e.Step() {
			break
		}
	}
	return e.now
}

// RegisterMetrics publishes the engine's progress counters under s
// ("engine.events", "engine.pending", "engine.now_ps", "engine.queue_depth").
func (e *Engine) RegisterMetrics(s stats.Scope) {
	s.CounterFunc("events", e.Fired)
	s.CounterFunc("pending", func() uint64 { return uint64(e.Pending()) })
	s.CounterFunc("now_ps", func() uint64 { return uint64(e.now) })
	s.Histogram("queue_depth", &e.depthHist)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// simulated clock to the deadline. Events scheduled beyond the deadline stay
// queued. It reports how many events fired. Like Run it polls Interrupt
// every interruptStride events, so a cancelled caller is not stuck behind a
// long bounded run.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
		if e.fired%interruptStride == 0 && e.interrupted() {
			break
		}
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor runs for d picoseconds past the current time (see RunUntil).
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }
