package sim

import "testing"

// FuzzEngineSchedule differentially fuzzes the 4-ary indexed heap against
// the container/heap reference in heapref_test.go: any byte script is a
// schedule (events spawning events at tiny deltas, heavy on same-timestamp
// collisions), and the two engines must fire it in the identical order.
// Extend the corpus by dropping files under testdata/fuzz/FuzzEngineSchedule
// or running `go test -fuzz FuzzEngineSchedule ./internal/sim` and
// committing what it minimizes into the same directory.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 3, 0, 0, 0, 3, 1, 1, 1})
	f.Add([]byte{7, 7, 7, 3, 7, 7, 7, 3, 7, 7, 7, 3, 7, 7, 7})
	f.Add([]byte("\x05\x00\x05\x03\x08\x08\x08\x02\x01\x00\x03\x09\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		diffEngines(t, data)
	})
}
