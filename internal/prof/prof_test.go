package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func TestFoldedAttribution(t *testing.T) {
	p := New()
	p.Enter("gpu/wavefront")
	p.Attribute(10)
	p.Enter("border/check")
	p.Attribute(5)
	p.Exit()
	p.Span("gpu/l1", 7)
	p.Exit()
	p.Span("border/downgrade", 3)

	want := "border/downgrade 3\n" +
		"gpu/wavefront 10\n" +
		"gpu/wavefront;border/check 5\n" +
		"gpu/wavefront;gpu/l1 7\n"
	if got := p.Folded(); got != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", got, want)
	}
	if p.Total() != 25 {
		t.Errorf("total = %d, want 25", p.Total())
	}
	if p.Depth() != 0 {
		t.Errorf("depth = %d after balanced enters/exits", p.Depth())
	}
}

func TestAttributeZeroAndEmptyStack(t *testing.T) {
	p := New()
	p.Enter("x")
	p.Attribute(0) // dropped: zero-width spans never appear
	p.Exit()
	if p.Folded() != "" {
		t.Errorf("zero attribution produced output: %q", p.Folded())
	}

	defer func() {
		if recover() == nil {
			t.Error("Exit on an empty stack did not panic")
		}
	}()
	p.Exit()
}

func TestAttributeEmptyStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Attribute on an empty stack did not panic")
		}
	}()
	New().Attribute(1)
}

// TestMergeCommutes checks the merge used by parallel sweeps: the same
// per-stack sums in any order, so folded output is byte-identical at any
// jobs count.
func TestMergeCommutes(t *testing.T) {
	mk := func(stacks map[string]uint64) *Profiler {
		p := New()
		for s, ps := range stacks {
			for _, frame := range strings.Split(s, ";") {
				p.Enter(frame)
			}
			p.Attribute(ps)
			for range strings.Split(s, ";") {
				p.Exit()
			}
		}
		return p
	}
	a := mk(map[string]uint64{"g;b": 5, "g": 2})
	b := mk(map[string]uint64{"g;b": 7, "h": 1})

	ab, ba := New(), New()
	ab.Merge(a)
	ab.Merge(b)
	ba.Merge(b)
	ba.Merge(a)
	if ab.Folded() != ba.Folded() {
		t.Errorf("merge is order-dependent:\n%s\n%s", ab.Folded(), ba.Folded())
	}
	want := "g 2\ng;b 12\nh 1\n"
	if got := ab.Folded(); got != want {
		t.Errorf("merged folded:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePprofDeterministic writes the same profile twice and requires
// identical bytes, and checks the output is a gzip stream with content.
func TestWritePprofDeterministic(t *testing.T) {
	p := New()
	p.Enter("gpu/wavefront")
	p.Span("border/bcc", 14000)
	p.Attribute(2_000_000)
	p.Exit()

	var b1, b2 bytes.Buffer
	if err := p.WritePprof(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("pprof output differs between identical writes")
	}
	zr, err := gzip.NewReader(&b1)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty pprof payload")
	}
	// The string table must carry the sample type and the frame names.
	for _, want := range []string{"sim", "nanoseconds", "gpu/wavefront", "border/bcc"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("pprof payload missing %q", want)
		}
	}
}
