// Package prof is a simulated-time profiler: it attributes simulated
// picoseconds — not host CPU time — to component stack paths like
// "gpu/wavefront;border/bcc". Components push a frame when a modeled
// operation begins and attribute the latency they add under the current
// stack; the profiler accumulates (stack, picoseconds) pairs and renders
// them as folded-stacks text (flamegraph.pl-ready) or a pprof protobuf
// keyed by simulated nanoseconds, so `go tool pprof` opens a profile of
// the model's time.
//
// The profiler is pure observation: it reads latencies the components
// already computed, schedules nothing, and never feeds a value back into
// the simulation. Attribution happens at the call sites that decide
// latencies, which in this codebase run synchronously inside one event
// callback — so a plain frame stack reconstructs true caller→callee paths
// without any event-engine cooperation.
package prof

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profiler accumulates simulated time by component stack. The zero value
// is not usable; call New. A Profiler is owned by one run (one goroutine),
// like every stats structure in this codebase; sweeps give each job its
// own Profiler and Merge them afterwards.
type Profiler struct {
	frames  []string
	cur     string
	samples map[string]uint64
	total   uint64
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{samples: make(map[string]uint64)}
}

// Enter pushes frame onto the attribution stack.
func (p *Profiler) Enter(frame string) {
	p.frames = append(p.frames, frame)
	if p.cur == "" {
		p.cur = frame
	} else {
		p.cur = p.cur + ";" + frame
	}
}

// Exit pops the innermost frame. Unbalanced Exit is a wiring bug and
// panics, like a duplicate metric registration.
func (p *Profiler) Exit() {
	if len(p.frames) == 0 {
		panic("prof: Exit with empty stack")
	}
	p.frames = p.frames[:len(p.frames)-1]
	p.cur = strings.Join(p.frames, ";")
}

// Attribute charges ps simulated picoseconds to the current stack.
// Attributing with an empty stack is a wiring bug and panics; zero
// durations are dropped so profiles only contain stacks that consumed
// modeled time.
func (p *Profiler) Attribute(ps uint64) {
	if ps == 0 {
		return
	}
	if p.cur == "" {
		panic("prof: Attribute with empty stack")
	}
	p.samples[p.cur] += ps
	p.total += ps
}

// Span is the common enter-charge-exit sequence for a leaf frame.
func (p *Profiler) Span(frame string, ps uint64) {
	p.Enter(frame)
	p.Attribute(ps)
	p.Exit()
}

// Depth returns the current stack depth (used by purity tests).
func (p *Profiler) Depth() int { return len(p.frames) }

// Total returns the total attributed simulated picoseconds.
func (p *Profiler) Total() uint64 { return p.total }

// Merge adds other's samples into p. Summation commutes, so merging
// per-job profilers in any order yields the same profile.
func (p *Profiler) Merge(other *Profiler) {
	for stack, ps := range other.samples {
		p.samples[stack] += ps
	}
	p.total += other.total
}

// stacks returns the accumulated (stack, ps) pairs sorted by stack name —
// the single deterministic order every output format derives from.
func (p *Profiler) stacks() []stackSample {
	out := make([]stackSample, 0, len(p.samples))
	for stack, ps := range p.samples {
		out = append(out, stackSample{stack: stack, ps: ps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].stack < out[j].stack })
	return out
}

type stackSample struct {
	stack string
	ps    uint64
}

// WriteFolded writes the profile in folded-stacks form: one
// "frame1;frame2;... value" line per stack, sorted by stack, values in
// simulated picoseconds. The output is byte-identical for identical
// sample sets.
func (p *Profiler) WriteFolded(w io.Writer) error {
	var b bytes.Buffer
	for _, s := range p.stacks() {
		fmt.Fprintf(&b, "%s %d\n", s.stack, s.ps)
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Folded returns the folded-stacks text as a string.
func (p *Profiler) Folded() string {
	var b strings.Builder
	for _, s := range p.stacks() {
		fmt.Fprintf(&b, "%s %d\n", s.stack, s.ps)
	}
	return b.String()
}
