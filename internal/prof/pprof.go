package prof

import (
	"compress/gzip"
	"io"
	"strings"
)

// This file emits the profile in pprof's profile.proto format without
// depending on a protobuf library: the message is small and flat enough
// that hand-rolled varint/length-delimited encoding is simpler than a
// generated binding, and it keeps the module dependency-free. The output
// is deterministic — string-table order follows the sorted stack order,
// time_nanos is zero, and the gzip header carries no mod time — so a
// fixed-seed run produces a byte-identical profile.
//
// Field numbers below are from
// https://github.com/google/pprof/blob/main/proto/profile.proto:
//
//	Profile:   sample_type=1 sample=2 location=4 function=5
//	           string_table=6 time_nanos=9 duration_nanos=10
//	ValueType: type=1 unit=2
//	Sample:    location_id=1 value=2
//	Location:  id=1 line=4
//	Line:      function_id=1 line=2
//	Function:  id=1 name=2 system_name=3 filename=4
type protoBuf struct {
	data []byte
}

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.data = append(b.data, byte(v)|0x80)
		v >>= 7
	}
	b.data = append(b.data, byte(v))
}

// tag writes a field key. Wire types: 0 = varint, 2 = length-delimited.
func (b *protoBuf) tag(field int, wire int) {
	b.varint(uint64(field)<<3 | uint64(wire))
}

func (b *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *protoBuf) int64Field(field int, v int64) {
	b.uint64Field(field, uint64(v))
}

func (b *protoBuf) bytesField(field int, raw []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(raw)))
	b.data = append(b.data, raw...)
}

// packedField writes a packed repeated varint field (proto3 default for
// repeated scalars, which pprof expects for Sample.location_id/value).
func (b *protoBuf) packedField(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	b.bytesField(field, inner.data)
}

// WritePprof writes the profile as gzipped pprof protobuf. The sample
// type is {"sim", "nanoseconds"}: every stack's simulated picoseconds are
// rounded to nanoseconds (minimum 1ns for non-empty stacks, so no sample
// vanishes), which is the granularity pprof's UI expects for time
// profiles.
func (p *Profiler) WritePprof(w io.Writer) error {
	strTab := []string{""} // string table index 0 must be ""
	strIndex := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIndex[s]; ok {
			return i
		}
		i := int64(len(strTab))
		strTab = append(strTab, s)
		strIndex[s] = i
		return i
	}

	// Sample type first so its strings lead the table deterministically.
	var sampleType protoBuf
	sampleType.int64Field(1, intern("sim"))
	sampleType.int64Field(2, intern("nanoseconds"))

	// One Function+Location per distinct frame name, ids assigned in
	// first-appearance order over the sorted stack list.
	locID := map[string]uint64{}
	var locOrder []string
	var samples []protoBuf
	var total uint64
	for _, s := range p.stacks() {
		frames := strings.Split(s.stack, ";")
		// pprof wants leaf-first location lists.
		locs := make([]uint64, 0, len(frames))
		for i := len(frames) - 1; i >= 0; i-- {
			f := frames[i]
			id, ok := locID[f]
			if !ok {
				id = uint64(len(locOrder) + 1)
				locID[f] = id
				locOrder = append(locOrder, f)
				intern(f)
			}
			locs = append(locs, id)
		}
		ns := (s.ps + 500) / 1000
		if ns == 0 {
			ns = 1
		}
		total += ns
		var smp protoBuf
		smp.packedField(1, locs)
		smp.packedField(2, []uint64{ns})
		samples = append(samples, smp)
	}

	var prof protoBuf
	prof.bytesField(1, sampleType.data)
	for _, smp := range samples {
		prof.bytesField(2, smp.data)
	}
	for _, f := range locOrder {
		id := locID[f]
		var line protoBuf
		line.uint64Field(1, id) // function_id (same id space as location)
		var loc protoBuf
		loc.uint64Field(1, id)
		loc.bytesField(4, line.data)
		prof.bytesField(4, loc.data)
	}
	for _, f := range locOrder {
		var fn protoBuf
		fn.uint64Field(1, locID[f])
		fn.int64Field(2, strIndex[f])
		fn.int64Field(3, strIndex[f])
		fn.int64Field(4, intern("sim"))
		prof.bytesField(5, fn.data)
	}
	for _, s := range strTab {
		prof.bytesField(6, []byte(s))
	}
	// time_nanos (field 9) stays zero for determinism.
	prof.int64Field(10, int64(total)) // duration_nanos

	// gzip with a zeroed header so the compressed bytes are reproducible.
	gz, err := gzip.NewWriterLevel(w, gzip.BestCompression)
	if err != nil {
		return err
	}
	if _, err := gz.Write(prof.data); err != nil {
		return err
	}
	return gz.Close()
}
