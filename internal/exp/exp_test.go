package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultOrdering submits jobs that finish in scrambled order and
// checks results land in submission order with the right values.
func TestResultOrdering(t *testing.T) {
	const n = 32
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%d", i),
			Run: func(ctx context.Context) (any, error) {
				// Later jobs sleep less, so completion order inverts
				// submission order under parallelism.
				time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
				return i * i, nil
			},
		}
	}
	r := &Runner{Workers: 8}
	results := r.Run(context.Background(), jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i || res.Name != fmt.Sprintf("job-%d", i) {
			t.Errorf("slot %d holds job %d (%s)", i, res.Index, res.Name)
		}
		if res.Err != nil {
			t.Errorf("job %d failed: %v", i, res.Err)
		}
		if v, ok := res.Value.(int); !ok || v != i*i {
			t.Errorf("job %d value = %v, want %d", i, res.Value, i*i)
		}
		if i > 0 && res.Elapsed <= 0 {
			t.Errorf("job %d has no elapsed time", i)
		}
	}
	if err := FirstErr(results); err != nil {
		t.Errorf("FirstErr = %v, want nil", err)
	}
}

// TestSerialMatchesParallel checks Workers=1 and Workers=8 produce
// identical result slices for deterministic jobs.
func TestSerialMatchesParallel(t *testing.T) {
	build := func() []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			i := i
			jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) {
				if i%5 == 4 {
					return nil, fmt.Errorf("planned failure %d", i)
				}
				return i * 3, nil
			}}
		}
		return jobs
	}
	serial := (&Runner{Workers: 1}).Run(context.Background(), build())
	parallel := (&Runner{Workers: 8}).Run(context.Background(), build())
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Index != p.Index || s.Name != p.Name || s.Value != p.Value ||
			(s.Err == nil) != (p.Err == nil) {
			t.Errorf("slot %d: serial %+v != parallel %+v", i, s, p)
		}
	}
	if err := FirstErr(serial); err == nil || err.Error() != "planned failure 4" {
		t.Errorf("FirstErr = %v, want planned failure 4", err)
	}
}

// TestCancellation cancels mid-run: started jobs finish (or honor ctx),
// unstarted jobs fail with ctx.Err() without running.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) {
			ran.Add(1)
			<-release
			return "done", nil
		}}
	}
	r := &Runner{Workers: 2}
	go func() {
		// Wait for both workers to pick up a job, then cancel and unblock.
		for ran.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	results := r.Run(ctx, jobs)
	var ok, cancelled int
	for _, res := range results {
		switch {
		case res.Err == nil:
			ok++
		case errors.Is(res.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("job %s: unexpected error %v", res.Name, res.Err)
		}
	}
	if ok == 0 || cancelled == 0 || ok+cancelled != len(jobs) {
		t.Errorf("ok=%d cancelled=%d, want both nonzero summing to %d", ok, cancelled, len(jobs))
	}
	if int(ran.Load()) != ok {
		t.Errorf("%d jobs ran but %d succeeded", ran.Load(), ok)
	}
}

// TestTimeout checks a context-honoring job fails with DeadlineExceeded
// when it exceeds the per-job timeout, without affecting fast jobs.
func TestTimeout(t *testing.T) {
	jobs := []Job{
		{Name: "fast", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{Name: "slow", Run: func(ctx context.Context) (any, error) {
			<-ctx.Done() // a cooperative job: the sim polls ctx between events
			return nil, ctx.Err()
		}},
	}
	r := &Runner{Workers: 2, Timeout: 20 * time.Millisecond}
	results := r.Run(context.Background(), jobs)
	if results[0].Err != nil {
		t.Errorf("fast job failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want DeadlineExceeded", results[1].Err)
	}
}

// TestPanicCapture checks a panicking job fails its own slot and the rest
// of the sweep completes.
func TestPanicCapture(t *testing.T) {
	jobs := []Job{
		{Name: "ok", Run: func(ctx context.Context) (any, error) { return "fine", nil }},
		{Name: "boom", Run: func(ctx context.Context) (any, error) { panic("simulated crash") }},
		{Name: "after", Run: func(ctx context.Context) (any, error) { return "also fine", nil }},
	}
	results := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("boom error = %T %v, want *PanicError", results[1].Err, results[1].Err)
	}
	if pe.Value != "simulated crash" || pe.Stack == "" {
		t.Errorf("panic detail lost: value=%v stack-len=%d", pe.Value, len(pe.Stack))
	}
}

// TestOnDoneSerialized checks the progress callback sees every job exactly
// once and is never called concurrently.
func TestOnDoneSerialized(t *testing.T) {
	const n = 24
	var inCb atomic.Int32
	seen := make(map[int]bool)
	r := &Runner{Workers: 8, OnDone: func(res Result) {
		if inCb.Add(1) != 1 {
			t.Error("OnDone called concurrently")
		}
		seen[res.Index] = true
		inCb.Add(-1)
	}}
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (any, error) { return i, nil }}
	}
	r.Run(context.Background(), jobs)
	if len(seen) != n {
		t.Errorf("OnDone saw %d jobs, want %d", len(seen), n)
	}
}

// TestMap checks the typed wrapper preserves input order and surfaces the
// first error in input order.
func TestMap(t *testing.T) {
	items := []int{5, 3, 8, 1}
	out, err := Map(context.Background(), &Runner{Workers: 4}, items,
		func(i int, v int) string { return fmt.Sprintf("sq-%d", v) },
		func(ctx context.Context, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if out[i] != v*v {
			t.Errorf("out[%d] = %d, want %d", i, out[i], v*v)
		}
	}

	_, err = Map(context.Background(), &Runner{Workers: 4}, items,
		func(i int, v int) string { return "x" },
		func(ctx context.Context, v int) (int, error) {
			if v < 4 {
				return 0, fmt.Errorf("reject %d", v)
			}
			return v, nil
		})
	// Input order is 5,3,8,1: the first error in input order is for 3.
	if err == nil || err.Error() != "reject 3" {
		t.Errorf("Map error = %v, want reject 3", err)
	}
}

// TestZeroRunner checks the zero Runner works with GOMAXPROCS workers.
func TestZeroRunner(t *testing.T) {
	var r Runner
	results := r.Run(context.Background(), []Job{
		{Name: "only", Run: func(ctx context.Context) (any, error) { return 42, nil }},
	})
	if results[0].Err != nil || results[0].Value != 42 {
		t.Errorf("zero runner: %+v", results[0])
	}
}
