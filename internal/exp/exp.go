// Package exp is the experiment-execution layer shared by every sweep in
// the repository: it runs lists of independent, named jobs on a bounded
// worker pool with deterministic, submission-order result collection.
//
// Each simulation in an evaluation sweep builds a fresh System and is a
// pure function of its inputs, so the experiment space is embarrassingly
// parallel. The runner exploits that while preserving the one property a
// serial sweep gives for free: because results land in submission order
// regardless of completion order, a parallel sweep's rendered artifact is
// byte-identical to the serial one.
//
// Jobs must be self-contained — everything a job touches is freshly built
// inside its closure or immutable. Cancellation is cooperative: a job
// receives a context and is expected to honor it (the simulator polls it
// between events via sim.Engine.Interrupt); the runner additionally
// refuses to start new jobs once the context is done.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one named unit of work. Run executes concurrently with other
// jobs, so it must not touch shared mutable state.
type Job struct {
	Name string
	Run  func(ctx context.Context) (any, error)
}

// Result is the outcome of one job. The runner collects results in
// submission order regardless of completion order.
type Result struct {
	// Index is the job's position in the submitted list.
	Index int
	Name  string
	// Value is what the job returned; nil when Err is non-nil.
	Value any
	Err   error
	// Elapsed is the host wall-clock time the job took (zero for jobs that
	// never started because the context was cancelled).
	Elapsed time.Duration
}

// PanicError reports a job whose closure panicked: the job fails instead
// of the panic killing the process and the rest of the sweep.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("exp: job panicked: %v", e.Value) }

// Runner executes job lists on a bounded worker pool. The zero Runner is
// ready to use: GOMAXPROCS workers, no per-job timeout.
type Runner struct {
	// Workers bounds how many jobs run concurrently. Zero or negative
	// means GOMAXPROCS; 1 executes the list serially.
	Workers int
	// Timeout, when positive, bounds each job's execution; a job that
	// honors its context fails with context.DeadlineExceeded when exceeded.
	Timeout time.Duration
	// OnDone, when non-nil, is called once per job as it finishes (or is
	// skipped), in completion order. Calls are serialized; the callback
	// must not block for long.
	OnDone func(Result)
}

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// Run executes the jobs and returns one Result per job, in submission
// order. Cancelling ctx stops new jobs from starting; jobs that never
// started fail with ctx.Err(). Run itself never fails — inspect the
// results, or use FirstErr for the serial-equivalent first failure.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var mu sync.Mutex // serializes OnDone
	done := func(res Result) {
		results[res.Index] = res
		if cb := r.onDone(); cb != nil {
			mu.Lock()
			cb(res)
			mu.Unlock()
		}
	}

	idxc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				done(r.runOne(ctx, i, jobs[i]))
			}
		}()
	}

feed:
	for i := range jobs {
		select {
		case idxc <- i:
		case <-ctx.Done():
			// Mark this job and every later one as never started. Workers
			// may still be finishing earlier jobs; they write other slots.
			for j := i; j < len(jobs); j++ {
				done(Result{Index: j, Name: jobs[j].Name, Err: ctx.Err()})
			}
			break feed
		}
	}
	close(idxc)
	wg.Wait()
	return results
}

func (r *Runner) onDone() func(Result) {
	if r == nil {
		return nil
	}
	return r.OnDone
}

// runOne executes a single job with panic capture and the per-job timeout.
func (r *Runner) runOne(ctx context.Context, i int, j Job) (res Result) {
	res = Result{Index: i, Name: j.Name}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Value = nil
			res.Err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	jctx := ctx
	if r != nil && r.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if err := jctx.Err(); err != nil {
		res.Err = err
		return res
	}
	res.Value, res.Err = j.Run(jctx)
	if res.Err != nil {
		res.Value = nil
	}
	return res
}

// FirstErr returns the error of the first failed result in submission
// order — the same error a serial sweep stopping at its first failure
// would have surfaced — or nil when every job succeeded.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Map runs fn over items on the runner and returns the typed outputs in
// input order. It fails with the first error in input order (the
// serial-equivalent failure). name labels each job for progress reporting.
func Map[I, O any](ctx context.Context, r *Runner, items []I, name func(int, I) string, fn func(ctx context.Context, item I) (O, error)) ([]O, error) {
	jobs := make([]Job, len(items))
	for i := range items {
		i := i
		item := items[i]
		jobs[i] = Job{
			Name: name(i, item),
			Run:  func(ctx context.Context) (any, error) { return fn(ctx, item) },
		}
	}
	results := r.Run(ctx, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]O, len(items))
	for i, res := range results {
		v, _ := res.Value.(O)
		out[i] = v
	}
	return out, nil
}
