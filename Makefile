GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the full-figure determinism sweeps.
test:
	$(GO) test ./...

# Race-enabled run; -short skips the multi-minute full sweeps but still
# exercises the concurrent runner (smoke sweeps run at Jobs=8).
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark prints each paper artifact once;
# BenchmarkExecFigure4 compares serial vs parallel sweep wall-clock.
bench:
	$(GO) test -bench . -benchtime 1x ./...

check: vet build test race
