GO ?= go

.PHONY: all build vet test race bench check trace-smoke bench-json

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full test suite, including the full-figure determinism sweeps.
test:
	$(GO) test ./...

# Race-enabled run; -short skips the multi-minute full sweeps but still
# exercises the concurrent runner (smoke sweeps run at Jobs=8).
race:
	$(GO) test -race -short ./...

# One iteration of every benchmark prints each paper artifact once;
# BenchmarkExecFigure4 compares serial vs parallel sweep wall-clock.
bench:
	$(GO) test -bench . -benchtime 1x ./...

# Observability smoke: record a Chrome trace and a stats snapshot on a
# short run, then validate the trace file with bctool's own checker.
trace-smoke:
	$(GO) run ./cmd/bctool run -mode bc-bcc -class moderate -workload pathfinder \
		-trace trace-smoke.json -stats-json stats-smoke.json >/dev/null
	$(GO) run ./cmd/bctool tracecheck trace-smoke.json
	rm -f trace-smoke.json stats-smoke.json

# Refresh the checked-in simulator-throughput snapshot (BENCH.json).
bench-json:
	$(GO) run ./cmd/bctool bench -json > BENCH.json

check: vet build test race trace-smoke
